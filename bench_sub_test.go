// Standing-query benchmarks: per-window evaluation cost of the
// subscription registry as the registered population and the worker
// count grow. A recorded baseline lives in BENCH_sub.json.
//
//	BenchmarkSubOffer/subsN/workersK — one window (8 new clusters)
//	    evaluated against N standing subscriptions across K workers;
//	    events_per_sec is the delivery rate implied by the eval time
//	    alone (delivery itself is asynchronous).
//	BenchmarkSubScanAll/subsN — the indexless baseline: every
//	    (subscription, new cluster) pair pays the cluster-feature gate,
//	    what a registry without the inverted index would do per window.
package streamsum

import (
	"fmt"
	"math/rand"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/grid"
	"streamsum/internal/match"
	"streamsum/internal/sgs"
	"streamsum/internal/sub"
)

// subBenchFixture builds the subscription targets and a rotating pool of
// "newly archived" windows from 32 cluster families of widely varying
// size and spread (so the feature index separates them) — window entries
// are cell-aligned translations of the family clouds, so same-family
// subscriptions fire at near-zero distance while cross-family pairs are
// pruned by the inverted index or the feature gate.
func subBenchFixture(tb testing.TB) (targets []*sgs.Summary, windows [][]*archive.Entry) {
	tb.Helper()
	rng := rand.New(rand.NewSource(2011))
	geo, err := grid.NewGeometry(2, matchThetaR)
	if err != nil {
		tb.Fatal(err)
	}
	side := geo.Side()
	const fams = 32
	clouds := make([][]Point, fams)
	summaryOf := func(pts []Point, id int64) *sgs.Summary {
		cls, err := SummarizeStatic(pts, matchThetaR, matchThetaC)
		if err != nil || len(cls) == 0 {
			tb.Fatalf("fixture cloud produced no cluster: %v", err)
		}
		best := 0
		for i := range cls {
			if len(cls[i].Members) > len(cls[best].Members) {
				best = i
			}
		}
		s := cls[best].Summary
		s.ID = id
		return s
	}
	for f := range clouds {
		n := 60 + 15*f // 60..525 points: features span several octaves
		spread := 0.5 + 0.05*float64(f)
		cx, cy := float64(f%8)*40, float64(f/8)*40
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
		}
		clouds[f] = pts
	}
	// One target in eight watches a family (it fires whenever that family
	// recurs); the rest watch independent random blobs of widely varying
	// size — registered and indexed, but never matching, like most of a
	// real monitoring deployment's standing queries at any given window.
	for i := 0; i < 256; i++ {
		if i%8 == 0 {
			targets = append(targets, summaryOf(clouds[i%fams], int64(1000+i)))
			continue
		}
		n := 40 + rng.Intn(560)
		spread := 0.4 + rng.Float64()*1.6
		cx, cy := 400+rng.Float64()*200, 400+rng.Float64()*200
		pts := make([]Point, n)
		for j := range pts {
			pts[j] = Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
		}
		targets = append(targets, summaryOf(pts, int64(1000+i)))
	}
	id := int64(0)
	for w := 0; w < 8; w++ {
		var win []*archive.Entry
		for c := 0; c < 8; c++ {
			f := (w*8 + c) % fams
			dx := float64((w+c)%5) * 3 * side // integer cell multiples
			dy := float64(c%3) * 2 * side
			pts := make([]Point, len(clouds[f]))
			for i, p := range clouds[f] {
				pts[i] = Point{p[0] + dx, p[1] + dy}
			}
			s := summaryOf(pts, id)
			id++
			win = append(win, &archive.Entry{
				ID: s.ID, Summary: s, MBR: s.MBR(), Features: s.Features(),
				Bytes: sgs.EncodedSize(s),
			})
		}
		windows = append(windows, win)
	}
	return targets, windows
}

func BenchmarkSubOffer(b *testing.B) {
	targets, windows := subBenchFixture(b)
	for _, nsubs := range []int{100, 1000, 4000} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("subs%d/workers%d", nsubs, workers), func(b *testing.B) {
				reg, err := sub.NewRegistry(sub.Config{Dim: 2, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < nsubs; i++ {
					s, err := reg.Subscribe(sub.Options{
						Target:      targets[i%len(targets)],
						Threshold:   0.08 + 0.04*float64(i%3),
						AlignBudget: 16,
					})
					if err != nil {
						b.Fatal(err)
					}
					go func() { // drain: delivery must not backlog the bench
						for range s.Events() {
						}
					}()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := reg.Offer(windows[i%len(windows)]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := reg.Stats()
				if st.Windows > 0 && st.TotalEval > 0 {
					b.ReportMetric(float64(st.Events)/st.TotalEval.Seconds(), "events/sec")
					b.ReportMetric(float64(st.Candidates)/float64(st.Windows), "pairs/window")
				}
				reg.Close()
			})
		}
	}
}

// BenchmarkSubScanAll is the indexless per-window cost: every
// (subscription, cluster) pair pays the exact cluster-feature gate (and
// survivors the refine), i.e. inverted matching with the index pruning
// turned off.
func BenchmarkSubScanAll(b *testing.B) {
	targets, windows := subBenchFixture(b)
	for _, nsubs := range []int{100, 1000, 4000} {
		b.Run(fmt.Sprintf("subs%d", nsubs), func(b *testing.B) {
			w := match.EqualWeights()
			type regd struct {
				feat   [4]float64
				target *sgs.Summary
				thresh float64
			}
			subs := make([]regd, nsubs)
			for i := range subs {
				t := targets[i%len(targets)]
				subs[i] = regd{t.Features().Vector(), t, 0.08 + 0.04*float64(i%3)}
			}
			b.ResetTimer()
			events := 0
			for i := 0; i < b.N; i++ {
				for _, e := range windows[i%len(windows)] {
					ev := e.Features.Vector()
					for _, s := range subs {
						if match.FeatureDistance(s.feat, ev, w) > s.thresh {
							continue
						}
						if match.RefineDistance(s.target, e.Summary, w, 16) <= s.thresh {
							events++
						}
					}
				}
			}
			if events == 0 && b.N > 8 {
				b.Fatal("fixture produced no events; baseline is vacuous")
			}
		})
	}
}
