package streamsum

import (
	"testing"

	"streamsum/internal/gen"
)

func TestNoveltyArchivingDeduplicates(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Convoys: 4, Seed: 13}, 20000)

	run := func(novelty float64) int {
		eng, err := New(Options{
			Dim: 2, ThetaR: 1.2, ThetaC: 6, Win: 4000, Slide: 1000,
			Archive:        &ArchiveOptions{MinPopulation: 15},
			ArchiveNovelty: novelty,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range b.Points {
			if _, err := eng.Push(p, b.TS[i]); err != nil {
				t.Fatal(err)
			}
		}
		return eng.PatternBase().Len()
	}

	// Same-pattern snapshots in consecutive windows sit at grid-level
	// distance ≈ 0.4-0.5 on this workload (fringe-cell churn and per-cell
	// density shifts), so 0.45 is the calibrated "same pattern" threshold.
	all := run(0)
	novel := run(0.45)
	if all == 0 {
		t.Fatal("no clusters archived at all")
	}
	if novel >= all {
		t.Fatalf("novelty archiving kept %d of %d — no deduplication", novel, all)
	}
	if novel == 0 {
		t.Fatal("novelty archiving kept nothing")
	}
	// Slowly drifting convoys recur across windows: expect substantial
	// deduplication.
	if float64(novel) > 0.8*float64(all) {
		t.Fatalf("novelty archiving kept %d of %d — deduplication too weak", novel, all)
	}
}

func TestTrackerFacade(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Convoys: 3, Seed: 17}, 12000)
	eng, err := New(Options{Dim: 2, ThetaR: 1.2, ThetaC: 6, Win: 3000, Slide: 1000})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker()
	var appeared, continued int
	for i, p := range b.Points {
		results, err := eng.Push(p, b.TS[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range results {
			for _, ev := range tr.Advance(w) {
				switch ev.Kind {
				case TrackAppeared:
					appeared++
				case TrackContinued:
					continued++
					if ev.Cluster == nil {
						t.Fatal("continued event without cluster")
					}
				}
			}
		}
	}
	if appeared == 0 {
		t.Fatal("no clusters ever appeared")
	}
	// Convoys persist across windows: continuations must dominate
	// appearances after the first window.
	if continued < appeared {
		t.Fatalf("appeared=%d continued=%d — tracking not linking windows", appeared, continued)
	}
}
