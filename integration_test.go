package streamsum

import (
	"sync"
	"sync/atomic"
	"testing"

	"streamsum/internal/gen"
)

// TestFigure4Pipeline exercises the paper's full deployment shape (Figure
// 4) in one process: the Pattern Extractor feeds windows to the analyst
// (tracker) and the Pattern Archiver, while a concurrent Pattern Analyzer
// issues matching queries against the live pattern base the whole time.
func TestFigure4Pipeline(t *testing.T) {
	feed := gen.GMTI(gen.GMTIConfig{Convoys: 6, Seed: 71}, 30000)
	eng, err := New(Options{
		Dim: 2, ThetaR: 1.2, ThetaC: 6,
		Win: 4000, Slide: 1000,
		Archive: &ArchiveOptions{MinPopulation: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	tracker := NewTracker()

	// Concurrent analyst: repeatedly match the latest summary against the
	// growing archive.
	var latest atomic.Pointer[Summary]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, matched int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := latest.Load()
			if s == nil || eng.PatternBase().Len() == 0 {
				continue
			}
			ms, _, err := eng.Match(MatchOptions{Target: s, Threshold: 0.5, Limit: 3})
			if err != nil {
				t.Error(err)
				return
			}
			atomic.AddInt64(&queries, 1)
			if len(ms) > 0 {
				atomic.AddInt64(&matched, 1)
			}
		}
	}()

	windows, events := 0, 0
	for i, p := range feed.Points {
		results, err := eng.Push(p, feed.TS[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range results {
			windows++
			events += len(tracker.Advance(w))
			for _, c := range w.Clusters {
				latest.Store(c.Summary)
			}
		}
	}
	close(stop)
	wg.Wait()

	if windows == 0 || events == 0 {
		t.Fatalf("windows=%d events=%d", windows, events)
	}
	if eng.PatternBase().Len() == 0 {
		t.Fatal("nothing archived")
	}
	if atomic.LoadInt64(&queries) == 0 {
		t.Fatal("analyst never ran a query")
	}
	if atomic.LoadInt64(&matched) == 0 {
		t.Fatal("analyst never found a match (recurring convoys must match)")
	}
	t.Logf("windows=%d track-events=%d archived=%d concurrent-queries=%d matched=%d",
		windows, events, eng.PatternBase().Len(), queries, matched)
}
