package streamsum

import (
	"bytes"
	"sync"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/gen"
	"streamsum/internal/match"
	"streamsum/internal/segstore"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

// tieredStreamEngines feeds the same GMTI stream into a memory-only
// engine and store-backed engines whose memory tiers are capped tightly
// enough that most of the archived history lives on disk. The tiered
// engines differ only in their decoded-summary cache: disabled, normal
// and pathologically small. The cached engines' StoreMaxMemBytes is
// raised by the cache budget — the cache's share is carved out of that
// bound, so this keeps the effective memory-tier cap (and therefore the
// tier split and segment layout) identical across all three.
func tieredStreamEngines(t *testing.T, maxMem int) (memEng *Engine, tierEngs []*Engine) {
	t.Helper()
	memEng = tieredEngine(t, Options{})
	for _, cache := range tieredCacheCfgs {
		tierEngs = append(tierEngs, tieredEngine(t, Options{
			StorePath:         t.TempDir(),
			StoreMaxMemBytes:  maxMem + cache,
			SummaryCacheBytes: cache,
		}))
	}
	data := gen.GMTI(gen.GMTIConfig{Seed: 11}, 16000)
	for lo := 0; lo < len(data.Points); lo += 1000 {
		hi := lo + 1000
		if hi > len(data.Points) {
			hi = len(data.Points)
		}
		for _, eng := range append([]*Engine{memEng}, tierEngs...) {
			if _, err := eng.PushBatch(data.Points[lo:hi], nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	return memEng, tierEngs
}

const (
	tieredCacheBudget = 8 << 10
	tieredCacheTiny   = 4 << 10 // a few entries per shard at most
)

// tieredCacheCfgs are the SummaryCacheBytes settings of the engines
// tieredStreamEngines returns, in order.
var tieredCacheCfgs = []int{0, tieredCacheBudget, tieredCacheTiny}

func tieredEngine(t *testing.T, extra Options) *Engine {
	t.Helper()
	// A small compaction target keeps the store at several segments even
	// after the background compactor fully catches up (the default
	// 256 KiB target would merge this test's whole history into one).
	opts := Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000,
		Archive:           &ArchiveOptions{StoreSegmentBytes: 8 << 10},
		StorePath:         extra.StorePath,
		StoreMaxMemBytes:  extra.StoreMaxMemBytes,
		SummaryCacheBytes: extra.SummaryCacheBytes,
	}
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestTieredMatchIdenticalAcrossWorkers is the acceptance criterion of
// the tiered store: a matching query over a base whose segments exceed
// StoreMaxMemBytes returns results identical to the all-in-memory run at
// every MatchWorkers count, while the memory tier stays within its cap.
func TestTieredMatchIdenticalAcrossWorkers(t *testing.T) {
	runTieredMatchIdentical(t)
}

// TestTieredMatchIdenticalPread repeats the tiered determinism check
// with memory mapping disabled, so the disk tier's whole read path —
// columnar scans off a heap copy, pooled pread blob loads — is the
// fallback one. Results must still be byte-identical to the all-
// in-memory run at every worker count.
func TestTieredMatchIdenticalPread(t *testing.T) {
	prev := segstore.SetMmapEnabled(false)
	defer segstore.SetMmapEnabled(prev)
	runTieredMatchIdentical(t)
}

func runTieredMatchIdentical(t *testing.T) {
	const maxMem = 32 << 10
	memEng, tierEngs := tieredStreamEngines(t, maxMem)
	defer func() {
		for _, eng := range tierEngs {
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}()

	memBase := memEng.PatternBase()
	if memBase.Len() == 0 {
		t.Fatal("empty pattern base")
	}
	for i, eng := range tierEngs {
		tierBase := eng.PatternBase()
		if memBase.Len() != tierBase.Len() {
			t.Fatalf("base sizes: mem %d, tiered %d", memBase.Len(), tierBase.Len())
		}
		// Settle the background demoter so the tier split is deterministic.
		if err := tierBase.DrainDemotions(); err != nil {
			t.Fatal(err)
		}
		ts := tierBase.TierStats()
		// The memory tier's effective cap is what the engine was configured
		// with minus the cache's actual carve-out — under SGS_SUMCACHE=off
		// the carve-out is zero and the whole bound goes to the tier.
		memCap := maxMem + tieredCacheCfgs[i] - ts.CacheBudget
		if ts.MemBytes > memCap {
			t.Fatalf("memory tier %d bytes exceeds cap %d", ts.MemBytes, memCap)
		}
		if ts.MemBytes+ts.SegBytes <= memCap {
			t.Fatalf("history (%d mem + %d disk bytes) did not grow past the cap %d",
				ts.MemBytes, ts.SegBytes, memCap)
		}
		if ts.Segments < 2 {
			t.Fatalf("want multiple segments, got %d", ts.Segments)
		}
	}

	type result struct {
		ids   []int64
		dists []float64
		blobs [][]byte
		cand  int
		ref   int
	}
	runOne := func(eng *Engine, target *sgs.Summary, workers int) result {
		ms, stats, err := eng.Match(MatchOptions{
			Target: target, Threshold: 0.35, Limit: 10, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var r result
		r.cand, r.ref = stats.IndexCandidates, stats.Refined
		for _, m := range ms {
			r.ids = append(r.ids, m.ID)
			r.dists = append(r.dists, m.Distance)
			if m.Entry.Summary == nil {
				t.Fatalf("match %d returned without a materialized summary", m.ID)
			}
			r.blobs = append(r.blobs, sgs.Marshal(m.Entry.Summary))
		}
		return r
	}

	for _, targetID := range []int64{0, int64(memBase.Len()) / 2, int64(memBase.Len()) - 1} {
		e := memBase.Get(targetID)
		if e == nil {
			t.Fatalf("no archived cluster %d", targetID)
		}
		want := runOne(memEng, e.Summary, 1)
		for _, workers := range []int{1, 2, 8} {
			for _, eng := range append([]*Engine{memEng}, tierEngs...) {
				got := runOne(eng, e.Summary, workers)
				if got.cand != want.cand || got.ref != want.ref {
					t.Fatalf("target %d workers %d: stats %d/%d want %d/%d",
						targetID, workers, got.cand, got.ref, want.cand, want.ref)
				}
				if len(got.ids) != len(want.ids) {
					t.Fatalf("target %d workers %d: %d matches want %d", targetID, workers, len(got.ids), len(want.ids))
				}
				for i := range want.ids {
					if got.ids[i] != want.ids[i] || got.dists[i] != want.dists[i] {
						t.Fatalf("target %d workers %d: match %d = (%d, %v) want (%d, %v)",
							targetID, workers, i, got.ids[i], got.dists[i], want.ids[i], want.dists[i])
					}
					if !bytes.Equal(got.blobs[i], want.blobs[i]) {
						t.Fatalf("target %d workers %d: match %d summary bytes differ", targetID, workers, i)
					}
				}
			}
		}
	}

	// The identical results above came from genuinely different residency
	// paths: the uncached engine reports no cache, the cached engines
	// served refine hits while staying inside their byte budgets. Under
	// SGS_SUMCACHE=off every engine is uncached — the determinism half
	// above is then the whole point of the run.
	for i, budget := range tieredCacheCfgs {
		ts := tierEngs[i].PatternBase().TierStats()
		if budget == 0 || !sumcache.Enabled() {
			if ts.CacheBudget != 0 || ts.CacheHits+ts.CacheMisses != 0 {
				t.Fatalf("uncached engine reports cache activity: %+v", ts)
			}
			continue
		}
		if ts.CacheBudget != budget {
			t.Fatalf("engine %d: cache budget %d want %d", i, ts.CacheBudget, budget)
		}
		if ts.CacheMisses == 0 || ts.CacheHits == 0 {
			t.Fatalf("engine %d: cache never exercised: %+v", i, ts)
		}
		if int64(ts.CacheBytes) > int64(budget) {
			t.Fatalf("engine %d: resident cache bytes %d exceed budget %d", i, ts.CacheBytes, budget)
		}
	}
}

// TestTieredConcurrentMatch drives store-backed ingestion (demotions,
// segment flushes, background compactions) while analyst goroutines
// match continuously against the same base — run under -race in CI.
func TestTieredConcurrentMatch(t *testing.T) {
	eng := tieredEngine(t, Options{StorePath: t.TempDir(), StoreMaxMemBytes: 24 << 10})
	data := gen.GMTI(gen.GMTIConfig{Seed: 5}, 12000)

	// A static target, independent of the stream.
	cls, err := SummarizeStatic(func() []Point {
		var pts []Point
		for i := 0; i < 400; i++ {
			pts = append(pts, Point{30 + float64(i%20)*0.3, 30 + float64(i/20)*0.3})
		}
		return pts
	}(), 1.0, 4)
	if err != nil || len(cls) == 0 {
		t.Fatalf("no static target: %v", err)
	}
	target := cls[0].Summary

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := 0; m < 3; m++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := eng.Match(MatchOptions{Target: target, Threshold: 0.4, Limit: 5, Workers: workers}); err != nil {
					panic(err)
				}
			}
		}(m%2 + 1)
	}
	for lo := 0; lo+1000 <= len(data.Points); lo += 1000 {
		if _, err := eng.PushBatch(data.Points[lo:lo+1000], nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	ts := eng.PatternBase().TierStats()
	if ts.SegEntries == 0 {
		t.Fatalf("history never spilled to disk: %+v", ts)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoveltyBatchEquivalence: the batched ArchiveNovelty pass (one
// match.Any over the window + intra-window resolution) archives exactly
// the same summaries as the per-cluster probe loop it replaced.
func TestNoveltyBatchEquivalence(t *testing.T) {
	const novelty = 0.4
	collect := func() [][]*sgs.Summary {
		eng, err := New(Options{Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000})
		if err != nil {
			t.Fatal(err)
		}
		data := gen.GMTI(gen.GMTIConfig{Seed: 17}, 14000)
		var windows [][]*sgs.Summary
		add := func(ws []*WindowResult) {
			for _, w := range ws {
				var sums []*sgs.Summary
				for _, c := range w.Clusters {
					if c.Summary != nil {
						sums = append(sums, c.Summary)
					}
				}
				windows = append(windows, sums)
			}
		}
		for lo := 0; lo+1000 <= len(data.Points); lo += 1000 {
			ws, err := eng.PushBatch(data.Points[lo:lo+1000], nil)
			if err != nil {
				t.Fatal(err)
			}
			add(ws)
		}
		w, err := eng.Flush()
		if err != nil {
			t.Fatal(err)
		}
		add([]*WindowResult{w})
		return windows
	}
	windows := collect()

	// Reference: the per-cluster sequential loop (one full query per
	// offered summary, each Put visible to the next probe).
	ref, err := archive.New(archive.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	offered := 0
	for _, sums := range windows {
		for _, s := range sums {
			offered++
			if ref.Len() > 0 {
				ms, _, err := match.Run(ref, match.Query{Target: s, Threshold: novelty, Limit: 1})
				if err != nil {
					t.Fatal(err)
				}
				if len(ms) > 0 {
					continue
				}
			}
			if _, _, err := ref.Put(s); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Engine under test: same stream, batched novelty path.
	eng, err := New(Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000,
		Archive: &ArchiveOptions{}, ArchiveNovelty: novelty,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.GMTI(gen.GMTIConfig{Seed: 17}, 14000)
	for lo := 0; lo+1000 <= len(data.Points); lo += 1000 {
		if _, err := eng.PushBatch(data.Points[lo:lo+1000], nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	base := eng.PatternBase()
	if ref.Len() == 0 || ref.Len() == offered {
		t.Fatalf("weak fixture: novelty filter kept %d of %d offered", ref.Len(), offered)
	}
	if base.Len() != ref.Len() {
		t.Fatalf("batched novelty archived %d, sequential reference %d", base.Len(), ref.Len())
	}
	var refBlobs, gotBlobs [][]byte
	ref.All(func(e *archive.Entry) bool { refBlobs = append(refBlobs, sgs.Marshal(e.Summary)); return true })
	base.All(func(e *archive.Entry) bool { gotBlobs = append(gotBlobs, sgs.Marshal(e.Summary)); return true })
	for i := range refBlobs {
		if !bytes.Equal(refBlobs[i], gotBlobs[i]) {
			t.Fatalf("archived summary %d differs from sequential reference", i)
		}
	}
}
