package streamsum_test

import (
	"fmt"
	"math/rand"

	"streamsum"
)

// Two compact clumps of tuples, pushed through a tumbling window.
func demoPoints() []streamsum.Point {
	rng := rand.New(rand.NewSource(7))
	pts := make([]streamsum.Point, 0, 400)
	for i := 0; i < 200; i++ {
		pts = append(pts, streamsum.Point{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4})
	}
	for i := 0; i < 200; i++ {
		pts = append(pts, streamsum.Point{10 + rng.NormFloat64()*0.4, 10 + rng.NormFloat64()*0.4})
	}
	return pts
}

// Example shows end-to-end continuous clustering: push tuples, receive
// per-window clusters in full and summarized representation.
func Example() {
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Win: 400, Slide: 400,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range demoPoints() {
		if _, err := eng.Push(p, 0); err != nil {
			panic(err)
		}
	}
	w, err := eng.Flush()
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(w.Clusters))
	for _, c := range w.Clusters {
		fmt.Printf("members=%d cells=%d\n", len(c.Members), c.Summary.NumCells())
	}
	// Output:
	// clusters: 2
	// members=200 cells=12
	// members=200 cells=15
}

// ExampleSummarizeStatic summarizes a static point set (no stream) and
// prints the clusters' features.
func ExampleSummarizeStatic() {
	clusters, err := streamsum.SummarizeStatic(demoPoints(), 1.0, 4)
	if err != nil {
		panic(err)
	}
	for _, c := range clusters {
		f := c.Summary.Features()
		fmt.Printf("pop=%d cells=%.0f core=%.0f\n",
			c.Summary.TotalPopulation(), f.Volume, f.StatusCount)
	}
	// Output:
	// pop=200 cells=12 core=12
	// pop=200 cells=15 core=15
}

// ExampleOptions configures an engine explicitly: query parameters (the
// DETECT clause of Figure 2) plus the execution-side knobs the query
// language does not cover. Workers and EmitWorkers only change how much
// hardware ingestion and the output stage use — never the output itself.
func ExampleOptions() {
	eng, err := streamsum.New(streamsum.Options{
		Dim:    2,   // tuple dimensionality
		ThetaR: 1.0, // neighbor range threshold θr
		ThetaC: 4,   // neighbor count threshold θc
		Win:    400, // window size, in tuples (TimeBased switches to ticks)
		Slide:  400, // slide size

		Workers:     4, // parallel neighbor discovery inside PushBatch
		EmitWorkers: 4, // parallel per-cluster summary construction
	})
	if err != nil {
		panic(err)
	}
	if _, err := eng.PushBatch(demoPoints(), nil); err != nil {
		panic(err)
	}
	w, err := eng.Flush()
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(w.Clusters))
	// Output:
	// clusters: 2
}

// ExampleEngine_PushBatch feeds a whole slide per call — the
// high-throughput ingest path. Results are byte-identical to pushing the
// tuples one at a time; batching only changes where neighbors are found
// (a parallel fan-out over frozen state), never how state is updated.
func ExampleEngine_PushBatch() {
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Win: 400, Slide: 200,
	})
	if err != nil {
		panic(err)
	}
	pts := demoPoints()
	for lo := 0; lo < len(pts); lo += 200 { // one slide per batch
		ws, err := eng.PushBatch(pts[lo:lo+200], nil)
		if err != nil {
			panic(err)
		}
		for _, w := range ws {
			fmt.Printf("window %d: %d clusters\n", w.Window, len(w.Clusters))
		}
	}
	w, err := eng.Flush() // the final window is still filling; force it
	if err != nil {
		panic(err)
	}
	fmt.Printf("window %d: %d clusters\n", w.Window, len(w.Clusters))
	// Output:
	// window 0: 2 clusters
}

// ExampleOptionsFromQuery parses a DETECT query in the paper's query
// language (Figure 2) and fills in the execution-side knobs before
// building the engine.
func ExampleOptionsFromQuery() {
	opts, err := streamsum.OptionsFromQuery(`
		DETECT DensityBasedClusters f+s FROM s
		USING theta_range = 1.0 AND theta_cnt = 4
		IN WINDOWS WITH win = 400 AND slide = 400`, 2)
	if err != nil {
		panic(err)
	}
	opts.Workers = 4     // knobs the query language leaves to the runtime
	opts.EmitWorkers = 4 //
	eng, err := streamsum.New(opts)
	if err != nil {
		panic(err)
	}
	if _, err := eng.PushBatch(demoPoints(), nil); err != nil {
		panic(err)
	}
	w, err := eng.Flush()
	if err != nil {
		panic(err)
	}
	fmt.Printf("win=%d slide=%d summarized=%v clusters=%d\n",
		opts.Win, opts.Slide, !opts.FullOnly, len(w.Clusters))
	// Output:
	// win=400 slide=400 summarized=true clusters=2
}

// ExampleEngine_MatchQuery archives extracted clusters and retrieves the
// ones similar to a target using the paper's query language.
func ExampleEngine_MatchQuery() {
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Win: 400, Slide: 400,
		Archive: &streamsum.ArchiveOptions{},
	})
	if err != nil {
		panic(err)
	}
	var target *streamsum.Summary
	for _, p := range demoPoints() {
		if _, err := eng.Push(p, 0); err != nil {
			panic(err)
		}
	}
	w, err := eng.Flush()
	if err != nil {
		panic(err)
	}
	for _, c := range w.Clusters {
		target = c.Summary
	}

	matches, _, err := eng.MatchQuery(`
		GIVEN DensityBasedCluster input
		SELECT DensityBasedClusters FROM History
		WHERE Distance <= 0.2 LIMIT 1`, target)
	if err != nil {
		panic(err)
	}
	fmt.Printf("archived=%d matches=%d distance=%.1f\n",
		eng.PatternBase().Len(), len(matches), matches[0].Distance)
	// Output:
	// archived=2 matches=1 distance=0.0
}
