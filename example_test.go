package streamsum_test

import (
	"fmt"
	"math/rand"

	"streamsum"
)

// Two compact clumps of tuples, pushed through a tumbling window.
func demoPoints() []streamsum.Point {
	rng := rand.New(rand.NewSource(7))
	pts := make([]streamsum.Point, 0, 400)
	for i := 0; i < 200; i++ {
		pts = append(pts, streamsum.Point{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4})
	}
	for i := 0; i < 200; i++ {
		pts = append(pts, streamsum.Point{10 + rng.NormFloat64()*0.4, 10 + rng.NormFloat64()*0.4})
	}
	return pts
}

// Example shows end-to-end continuous clustering: push tuples, receive
// per-window clusters in full and summarized representation.
func Example() {
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Win: 400, Slide: 400,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range demoPoints() {
		if _, err := eng.Push(p, 0); err != nil {
			panic(err)
		}
	}
	w, err := eng.Flush()
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(w.Clusters))
	for _, c := range w.Clusters {
		fmt.Printf("members=%d cells=%d\n", len(c.Members), c.Summary.NumCells())
	}
	// Output:
	// clusters: 2
	// members=200 cells=12
	// members=200 cells=15
}

// ExampleSummarizeStatic summarizes a static point set (no stream) and
// prints the clusters' features.
func ExampleSummarizeStatic() {
	clusters, err := streamsum.SummarizeStatic(demoPoints(), 1.0, 4)
	if err != nil {
		panic(err)
	}
	for _, c := range clusters {
		f := c.Summary.Features()
		fmt.Printf("pop=%d cells=%.0f core=%.0f\n",
			c.Summary.TotalPopulation(), f.Volume, f.StatusCount)
	}
	// Output:
	// pop=200 cells=12 core=12
	// pop=200 cells=15 core=15
}

// ExampleEngine_MatchQuery archives extracted clusters and retrieves the
// ones similar to a target using the paper's query language.
func ExampleEngine_MatchQuery() {
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Win: 400, Slide: 400,
		Archive: &streamsum.ArchiveOptions{},
	})
	if err != nil {
		panic(err)
	}
	var target *streamsum.Summary
	for _, p := range demoPoints() {
		if _, err := eng.Push(p, 0); err != nil {
			panic(err)
		}
	}
	w, err := eng.Flush()
	if err != nil {
		panic(err)
	}
	for _, c := range w.Clusters {
		target = c.Summary
	}

	matches, _, err := eng.MatchQuery(`
		GIVEN DensityBasedCluster input
		SELECT DensityBasedClusters FROM History
		WHERE Distance <= 0.2 LIMIT 1`, target)
	if err != nil {
		panic(err)
	}
	fmt.Printf("archived=%d matches=%d distance=%.1f\n",
		eng.PatternBase().Len(), len(matches), matches[0].Distance)
	// Output:
	// archived=2 matches=1 distance=0.0
}
