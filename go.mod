module streamsum

go 1.24
