package streamsum

import (
	"fmt"

	"streamsum/internal/query"
	"streamsum/internal/sub"
)

// Standing match queries (subscriptions): the inverse of Match. A
// one-shot Match scans the archived history for a given target; a
// subscription registers the target once and is notified whenever a
// *future* window archives a matching cluster. Evaluation is
// incremental and inverted — each window's new summaries are probed
// against an index of the registered subscriptions (internal/sub), so
// cost scales with the window's cluster count, not with the number of
// subscriptions or the archive size.

// Subscription is one registered standing query; read events from
// Events() and release it with Cancel or Engine.Unsubscribe.
type Subscription = sub.Subscription

// SubEvent is one notification on a subscription's channel.
type SubEvent = sub.Event

// SubEventKind classifies a SubEvent.
type SubEventKind = sub.EventKind

// Subscription event kinds.
const (
	// SubMatch: a newly archived cluster matched the subscription's
	// target within its threshold.
	SubMatch = sub.MatchEvent
	// SubEvolution: a cluster evolution transition (Track subscriptions).
	SubEvolution = sub.EvolutionEvent
)

// SubStats is a snapshot of the standing-query registry's activity.
type SubStats = sub.Stats

// SubscribeOptions configures a standing match query (the Figure 3
// template with FROM Stream).
type SubscribeOptions struct {
	// Target is the pattern template to watch for; required unless Track
	// is set (a Track-only subscription receives evolution events only).
	Target *Summary
	// Threshold is the maximum matching distance (0..1).
	Threshold float64
	// Weights configures the metric; nil means EqualWeights.
	Weights *Weights
	// Track additionally delivers cluster evolution events (appeared /
	// continued / merged / split / vanished) on the same channel —
	// merge/split alerts for the subscribed pattern's neighborhood.
	Track bool
	// Buffer is the event channel capacity (default 16); the channel is
	// fed from an unbounded queue, so ingestion never blocks on it.
	Buffer int
}

// Subscribe registers a standing match query against the engine's
// stream. Events arrive on the returned subscription's channel in
// deterministic order: windows in archive order; within a window, match
// hits by ascending archive id, then (for Track subscriptions) the
// window's evolution events. Evaluation is incremental — a subscription
// only sees clusters archived after it was registered; pair it with
// Match for "past and future" semantics. Subscribe is safe from any
// goroutine, including while ingestion is running.
func (e *Engine) Subscribe(o SubscribeOptions) (*Subscription, error) {
	if e.subs == nil {
		return nil, fmt.Errorf("streamsum: standing queries need a pattern base (set Options.Archive)")
	}
	return e.subs.Subscribe(sub.Options{
		Target:    o.Target,
		Threshold: o.Threshold,
		Weights:   o.Weights,
		Track:     o.Track,
		Buffer:    o.Buffer,
	})
}

// Unsubscribe cancels a subscription, closing its event channel
// (equivalent to s.Cancel). It reports whether the subscription was
// still registered.
func (e *Engine) Unsubscribe(s *Subscription) bool {
	if e.subs == nil || s == nil {
		return false
	}
	return e.subs.Unsubscribe(s.ID())
}

// SubscriptionStats returns the standing-query registry's activity
// counters (zero value when the engine has no pattern base).
func (e *Engine) SubscriptionStats() SubStats {
	if e.subs == nil {
		return SubStats{}
	}
	return e.subs.Stats()
}

// SubscriptionQueueDepth returns the number of subscription events
// enqueued but not yet handed to a consumer channel, summed across all
// subscriptions — the standing delivery backlog (0 without a pattern
// base).
func (e *Engine) SubscriptionQueueDepth() int {
	if e.subs == nil {
		return 0
	}
	return e.subs.QueueDepth()
}

// SubscribeOptionsFromQuery parses a standing matching query in the
// paper's query language — Figure 3 with FROM Stream — into
// SubscribeOptions plus the query's cluster reference (the GIVEN
// identifier or integer archive id, which the caller resolves to a
// Summary and assigns to Target before calling Subscribe). One-shot
// FROM History queries are rejected: run those through
// MatchOptionsFromQuery and Match.
func SubscribeOptionsFromQuery(q string) (SubscribeOptions, string, error) {
	mq, err := query.ParseMatch(q)
	if err != nil {
		return SubscribeOptions{}, "", err
	}
	if !mq.Standing {
		return SubscribeOptions{}, "", fmt.Errorf("streamsum: not a standing query (use FROM Stream, or run it through Match)")
	}
	return SubscribeOptions{
		Threshold: mq.Threshold,
		Weights:   weightsOf(mq),
	}, mq.Target, nil
}

// weightsOf converts a parsed weight clause to the metric configuration
// (nil when the query used the defaults).
func weightsOf(mq *query.MatchQuery) *Weights {
	if !mq.HasWeights && !mq.PositionSensitive {
		return nil
	}
	ws := EqualWeights()
	if mq.HasWeights {
		ws.Volume, ws.Status, ws.Density, ws.Connectivity =
			mq.Weights[0], mq.Weights[1], mq.Weights[2], mq.Weights[3]
	}
	ws.PositionSensitive = mq.PositionSensitive
	return &ws
}
