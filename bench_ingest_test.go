// Ingest-path benchmarks for the batched, sharded pipeline, alongside the
// Fig.7-style per-window benches of bench_test.go. These measure raw
// ingestion throughput (tuples/sec) rather than per-window response time:
//
//	BenchmarkPushSequential      — the single-tuple Push hot path (baseline)
//	BenchmarkPushBatch/...       — PushBatch with the parallel neighbor-
//	                               discovery phase, swept over worker counts
//	                               (EmitWorkers swept in lockstep)
//	BenchmarkEmit/...            — output-stage scaling in isolation,
//	                               swept over EmitWorkers
//	BenchmarkShardedIngest/...   — the sharded executor, swept over shard
//	                               counts (per-partition clustering)
//
// A recorded baseline lives in BENCH_ingest.json; the parallel speedup
// claims require >= 4 physical cores (single-core hosts will show the
// fan-out's coordination overhead instead).
package streamsum

import (
	"context"
	"fmt"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/experiments"
	"streamsum/internal/stream"
	"streamsum/internal/window"
)

const (
	ingestSlide = 1000
	ingestWin   = experiments.Fig7Win
)

func ingestConfig(workers int) core.Config {
	pc := experiments.Cases[1]
	return core.Config{
		Dim: 4, ThetaR: pc.ThetaR, ThetaC: pc.ThetaC,
		Window: window.Spec{Win: ingestWin, Slide: ingestSlide},
		// One knob drives both fan-outs in the sweep: discovery workers
		// during ingest and output-stage workers during the per-slide emit.
		Workers:     workers,
		EmitWorkers: workers,
	}
}

// BenchmarkPushSequential is the unbatched baseline: one Push per tuple,
// steady state, measured per slide of tuples.
func BenchmarkPushSequential(b *testing.B) {
	data := benchSTT(ingestWin + 60*ingestSlide)
	ex, err := core.New(ingestConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	pointAt := func(id int64) Point { return data.Points[id%int64(len(data.Points))] }
	var pushed int64
	for ; pushed < ingestWin; pushed++ {
		if _, _, err := ex.Push(pointAt(pushed), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for j := 0; j < ingestSlide; j++ {
			if _, _, err := ex.Push(pointAt(pushed), 0); err != nil {
				b.Fatal(err)
			}
			pushed++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*ingestSlide/b.Elapsed().Seconds(), "tuples/sec")
}

// BenchmarkPushBatch measures the batched ingest path: each iteration
// feeds one slide's worth of tuples through PushBatch (triggering exactly
// one window emission), with the neighbor-discovery phase fanned over the
// configured worker count. workers=1 isolates the batching overhead;
// higher counts add the parallel fan-out.
func BenchmarkPushBatch(b *testing.B) {
	data := benchSTT(ingestWin + 60*ingestSlide)
	pointAt := func(id int64) Point { return data.Points[id%int64(len(data.Points))] }
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			ex, err := core.New(ingestConfig(workers))
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]Point, ingestSlide)
			var pushed int64
			fill := func() {
				for j := range batch {
					batch[j] = pointAt(pushed)
					pushed++
				}
			}
			for pushed < ingestWin {
				fill()
				if _, err := ex.PushBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				fill()
				if _, err := ex.PushBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*ingestSlide/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}

// BenchmarkEmit isolates the output stage's scaling: discovery runs with
// one worker so each iteration's cost is dominated by the per-slide
// window emission (prune + DFS + parallel cluster/summary construction),
// swept over EmitWorkers.
func BenchmarkEmit(b *testing.B) {
	data := benchSTT(ingestWin + 60*ingestSlide)
	pointAt := func(id int64) Point { return data.Points[id%int64(len(data.Points))] }
	for _, emitWorkers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("emitWorkers%d", emitWorkers), func(b *testing.B) {
			cfg := ingestConfig(1)
			cfg.EmitWorkers = emitWorkers
			ex, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]Point, ingestSlide)
			var pushed int64
			fill := func() {
				for j := range batch {
					batch[j] = pointAt(pushed)
					pushed++
				}
			}
			for pushed < ingestWin {
				fill()
				if _, err := ex.PushBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				fill()
				if _, err := ex.PushBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*ingestSlide/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}

// BenchmarkShardedIngest measures the sharded executor end to end:
// hash-partitioned per-shard clustering with batched ingestion inside
// each shard. Throughput is tuples/sec over the whole (fixed-size) run.
func BenchmarkShardedIngest(b *testing.B) {
	const total = 100000
	data := benchSTT(total)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				procs := make([]stream.Processor, shards)
				for i := range procs {
					ex, err := core.New(ingestConfig(1))
					if err != nil {
						b.Fatal(err)
					}
					procs[i] = ex
				}
				sh := &stream.Sharded{Procs: procs, BatchSize: ingestSlide}
				b.StartTimer()
				if _, err := sh.Run(context.Background(), stream.FromSlice(data.Points, data.TS)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*total/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}
