package streamsum

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - BenchmarkGridSideAblation — the paper fixes the finest cell size at
//     diagonal = θr (§4.3). Larger cells mean fewer cells but more false
//     candidates per range query; smaller cells mean emptier probes. This
//     bench quantifies that trade-off on the range-query substrate.
//   - BenchmarkAlignmentBudget — §7.2's anytime alignment search trades
//     optimality for latency; this sweeps the expansion budget and reports
//     the mean distance found (lower = better alignment).
//   - BenchmarkCodec — encoding/decoding throughput and per-cell bytes of
//     the SGS codec (§8.2's 23 B/cell figure).
//   - BenchmarkRTreeVsScan — the locational index against a linear scan at
//     archive scale (why the pattern base has indices at all).

import (
	"fmt"
	"math/rand"
	"testing"

	"streamsum/internal/experiments"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/match"
	"streamsum/internal/rtree"
	"streamsum/internal/sgs"
)

func BenchmarkGridSideAblation(b *testing.B) {
	const thetaR = 0.8
	baseSide := thetaR / 1.4142135623730951 // θr/√2: the paper's choice in 2-D
	for _, mult := range []float64{0.5, 1.0, 2.0, 4.0} {
		b.Run(fmt.Sprintf("side%.1fx", mult), func(b *testing.B) {
			geo, err := grid.NewGeometryWithSide(2, thetaR, baseSide*mult)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			pts := make([]geom.Point, 20000)
			for i := range pts {
				pts[i] = geom.Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
			}
			ix := grid.NewPointIndex(geo)
			for i, p := range pts {
				ix.Insert(int64(i), p)
			}
			b.ResetTimer()
			found := 0
			for n := 0; n < b.N; n++ {
				q := pts[n%len(pts)]
				ix.RangeQuery(q, func(grid.Entry) bool { found++; return true })
			}
			b.ReportMetric(float64(found)/float64(b.N), "neighbors/query")
		})
	}
}

func BenchmarkAlignmentBudget(b *testing.B) {
	clusters := gen.Clusters(gen.ClustersConfig{Seed: 77}, 40)
	var sums []*Summary
	for _, gc := range clusters {
		sc, err := SummarizeStatic(gc.Points, experiments.MatchParams.ThetaR, experiments.MatchParams.ThetaC)
		if err != nil || len(sc) == 0 {
			b.Fatal(err)
		}
		sums = append(sums, sc[0].Summary)
	}
	for _, budget := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("budget%d", budget), func(b *testing.B) {
			var total float64
			pairs := 0
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				a := sums[n%len(sums)]
				c := sums[(n+7)%len(sums)]
				d, _ := match.BestAlignment(a, c, budget)
				total += d
				pairs++
			}
			b.ReportMetric(total/float64(pairs), "mean-distance")
		})
	}
}

func BenchmarkCodec(b *testing.B) {
	clusters := gen.Clusters(gen.ClustersConfig{Seed: 78, MinPoints: 400, MaxPoints: 900}, 20)
	var sums []*Summary
	for _, gc := range clusters {
		sc, err := SummarizeStatic(gc.Points, experiments.MatchParams.ThetaR, experiments.MatchParams.ThetaC)
		if err != nil || len(sc) == 0 {
			b.Fatal(err)
		}
		sums = append(sums, sc[0].Summary)
	}
	b.Run("Marshal", func(b *testing.B) {
		cells, bytes := 0, 0
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			s := sums[n%len(sums)]
			blob := sgs.Marshal(s)
			cells += s.NumCells()
			bytes += len(blob)
		}
		b.ReportMetric(float64(bytes)/float64(cells), "bytes/cell")
	})
	b.Run("Unmarshal", func(b *testing.B) {
		blobs := make([][]byte, len(sums))
		for i, s := range sums {
			blobs[i] = sgs.Marshal(s)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := sgs.Unmarshal(blobs[n%len(blobs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRTreeVsScan(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 10000
	boxes := make([]geom.MBR, n)
	tree := rtree.New(2)
	for i := range boxes {
		lo := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		hi := geom.Point{lo[0] + 2 + rng.Float64()*8, lo[1] + 2 + rng.Float64()*8}
		boxes[i] = geom.MBR{Min: lo, Max: hi}
		if err := tree.Insert(int64(i), boxes[i]); err != nil {
			b.Fatal(err)
		}
	}
	query := func(i int) geom.MBR { return boxes[i%n] }
	b.Run("rtree", func(b *testing.B) {
		hits := 0
		for n := 0; n < b.N; n++ {
			tree.SearchIntersect(query(n), func(rtree.Item) bool { hits++; return true })
		}
	})
	b.Run("scan", func(b *testing.B) {
		hits := 0
		for n := 0; n < b.N; n++ {
			q := query(n)
			for i := range boxes {
				if boxes[i].Intersects(q) {
					hits++
				}
			}
		}
	})
}
