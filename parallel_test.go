package streamsum

import (
	"context"
	"encoding/json"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/extran"
	"streamsum/internal/gen"
	"streamsum/internal/stream"
	"streamsum/internal/window"
)

// Both extractors must stay batch-capable: the facade's PushBatch and the
// sharded executor dispatch through this interface.
var (
	_ stream.BatchProcessor = (*core.Extractor)(nil)
	_ stream.BatchProcessor = (*extran.Extractor)(nil)
)

// TestEnginePushBatchMatchesPush is the facade-level determinism
// guarantee of the batched ingest path: Engine.PushBatch with parallel
// neighbor discovery must produce byte-identical WindowResults — members,
// cores, and summaries — to tuple-by-tuple Engine.Push on a fixed-seed
// stream, and archive the same pattern base. Run under -race this also
// exercises the discovery worker pool.
func TestEnginePushBatchMatchesPush(t *testing.T) {
	data := gen.STT(gen.STTConfig{Seed: 2011}, 6000)
	opts := Options{
		Dim: 4, ThetaR: 1.2, ThetaC: 6, Win: 2000, Slide: 500,
		Archive: &ArchiveOptions{},
	}

	seqEng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var seq []*WindowResult
	for i, p := range data.Points {
		ws, err := seqEng.Push(p, data.TS[i])
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, ws...)
	}

	for _, workers := range []int{1, 4} {
		bo := opts
		bo.Workers = workers
		batEng, err := New(bo)
		if err != nil {
			t.Fatal(err)
		}
		var bat []*WindowResult
		const batch = 500
		for lo := 0; lo < len(data.Points); lo += batch {
			hi := lo + batch
			if hi > len(data.Points) {
				hi = len(data.Points)
			}
			ws, err := batEng.PushBatch(data.Points[lo:hi], data.TS[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			bat = append(bat, ws...)
		}

		sb, err := json.Marshal(seq)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(bat)
		if err != nil {
			t.Fatal(err)
		}
		if string(sb) != string(bb) {
			t.Errorf("workers=%d: PushBatch windows differ from Push", workers)
		}
		if got, want := batEng.PatternBase().Len(), seqEng.PatternBase().Len(); got != want {
			t.Errorf("workers=%d: archived %d summaries, want %d", workers, got, want)
		}
	}
}

// TestEngineEmitWorkersMatchesSequential is the facade-level determinism
// guarantee of the parallel output stage: for EmitWorkers in {1, 2, 8}
// the emitted windows must be byte-identical to the fully sequential
// stage, for both the C-SGS and the Extra-N (FullOnly) engine. Run under
// -race this also exercises the output-stage fan-out.
func TestEngineEmitWorkersMatchesSequential(t *testing.T) {
	data := gen.STT(gen.STTConfig{Seed: 2011}, 6000)
	for _, fullOnly := range []bool{false, true} {
		opts := Options{
			Dim: 4, ThetaR: 1.2, ThetaC: 6, Win: 2000, Slide: 500,
			FullOnly: fullOnly, EmitWorkers: 1,
		}
		run := func(o Options) []byte {
			eng, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			var out []*WindowResult
			for i, p := range data.Points {
				ws, err := eng.Push(p, data.TS[i])
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, ws...)
			}
			w, err := eng.Flush()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, w)
			b, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		want := run(opts)
		for _, ew := range []int{1, 2, 8} {
			o := opts
			o.EmitWorkers = ew
			if got := run(o); string(got) != string(want) {
				t.Errorf("fullOnly=%v emitWorkers=%d: output differs from sequential emit", fullOnly, ew)
			}
		}
	}
}

// TestShardedEmitWorkersMatchesSequential: sharded ingestion with
// parallel output stages inside every shard must produce, shard for
// shard, byte-identical window sequences to shards running the fully
// sequential output stage. Across shards the consumer interleaving is
// nondeterministic by design, so windows are compared per shard.
func TestShardedEmitWorkersMatchesSequential(t *testing.T) {
	data := gen.STT(gen.STTConfig{Seed: 5}, 20000)
	const shards = 3

	run := func(emitWorkers int) [][]*WindowResult {
		procs := make([]stream.Processor, shards)
		for i := range procs {
			ex, err := core.New(core.Config{
				Dim: 4, ThetaR: 1.2, ThetaC: 6,
				Window:      window.Spec{Win: 2000, Slide: 500},
				Workers:     2,
				EmitWorkers: emitWorkers,
			})
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = ex
		}
		perShard := make([][]*WindowResult, shards)
		sh := &stream.Sharded{
			Procs:     procs,
			BatchSize: 500,
			FlushTail: true,
			OnWindow: func(shard int, w *WindowResult) error {
				perShard[shard] = append(perShard[shard], w)
				return nil
			},
		}
		if _, err := sh.Run(context.Background(), stream.FromSlice(data.Points, data.TS)); err != nil {
			t.Fatal(err)
		}
		return perShard
	}

	want := run(1)
	for _, ew := range []int{2, 8} {
		got := run(ew)
		for s := 0; s < shards; s++ {
			wb, err := json.Marshal(want[s])
			if err != nil {
				t.Fatal(err)
			}
			gb, err := json.Marshal(got[s])
			if err != nil {
				t.Fatal(err)
			}
			if string(wb) != string(gb) {
				t.Errorf("emitWorkers=%d shard=%d: windows differ from sequential emit", ew, s)
			}
		}
	}
}

// TestEnginePushBatchFullOnly covers the Extra-N (FullOnly) engine through
// the same facade path.
func TestEnginePushBatchFullOnly(t *testing.T) {
	data := gen.STT(gen.STTConfig{Seed: 7}, 4000)
	opts := Options{
		Dim: 4, ThetaR: 1.2, ThetaC: 6, Win: 1500, Slide: 500,
		FullOnly: true, Workers: 4,
	}
	seqEng, err := New(Options{Dim: 4, ThetaR: 1.2, ThetaC: 6, Win: 1500, Slide: 500, FullOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var seq []*WindowResult
	for i, p := range data.Points {
		ws, err := seqEng.Push(p, data.TS[i])
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, ws...)
	}
	batEng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := batEng.PushBatch(data.Points, data.TS)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := json.Marshal(seq)
	bb, _ := json.Marshal(bat)
	if string(sb) != string(bb) {
		t.Error("FullOnly PushBatch windows differ from Push")
	}
}
