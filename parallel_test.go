package streamsum

import (
	"encoding/json"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/extran"
	"streamsum/internal/gen"
	"streamsum/internal/stream"
)

// Both extractors must stay batch-capable: the facade's PushBatch and the
// sharded executor dispatch through this interface.
var (
	_ stream.BatchProcessor = (*core.Extractor)(nil)
	_ stream.BatchProcessor = (*extran.Extractor)(nil)
)

// TestEnginePushBatchMatchesPush is the facade-level determinism
// guarantee of the batched ingest path: Engine.PushBatch with parallel
// neighbor discovery must produce byte-identical WindowResults — members,
// cores, and summaries — to tuple-by-tuple Engine.Push on a fixed-seed
// stream, and archive the same pattern base. Run under -race this also
// exercises the discovery worker pool.
func TestEnginePushBatchMatchesPush(t *testing.T) {
	data := gen.STT(gen.STTConfig{Seed: 2011}, 6000)
	opts := Options{
		Dim: 4, ThetaR: 1.2, ThetaC: 6, Win: 2000, Slide: 500,
		Archive: &ArchiveOptions{},
	}

	seqEng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var seq []*WindowResult
	for i, p := range data.Points {
		ws, err := seqEng.Push(p, data.TS[i])
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, ws...)
	}

	for _, workers := range []int{1, 4} {
		bo := opts
		bo.Workers = workers
		batEng, err := New(bo)
		if err != nil {
			t.Fatal(err)
		}
		var bat []*WindowResult
		const batch = 500
		for lo := 0; lo < len(data.Points); lo += batch {
			hi := lo + batch
			if hi > len(data.Points) {
				hi = len(data.Points)
			}
			ws, err := batEng.PushBatch(data.Points[lo:hi], data.TS[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			bat = append(bat, ws...)
		}

		sb, err := json.Marshal(seq)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(bat)
		if err != nil {
			t.Fatal(err)
		}
		if string(sb) != string(bb) {
			t.Errorf("workers=%d: PushBatch windows differ from Push", workers)
		}
		if got, want := batEng.PatternBase().Len(), seqEng.PatternBase().Len(); got != want {
			t.Errorf("workers=%d: archived %d summaries, want %d", workers, got, want)
		}
	}
}

// TestEnginePushBatchFullOnly covers the Extra-N (FullOnly) engine through
// the same facade path.
func TestEnginePushBatchFullOnly(t *testing.T) {
	data := gen.STT(gen.STTConfig{Seed: 7}, 4000)
	opts := Options{
		Dim: 4, ThetaR: 1.2, ThetaC: 6, Win: 1500, Slide: 500,
		FullOnly: true, Workers: 4,
	}
	seqEng, err := New(Options{Dim: 4, ThetaR: 1.2, ThetaC: 6, Win: 1500, Slide: 500, FullOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var seq []*WindowResult
	for i, p := range data.Points {
		ws, err := seqEng.Push(p, data.TS[i])
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, ws...)
	}
	batEng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := batEng.PushBatch(data.Points, data.TS)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := json.Marshal(seq)
	bb, _ := json.Marshal(bat)
	if string(sb) != string(bb) {
		t.Error("FullOnly PushBatch windows differ from Push")
	}
}
