// Matching-path benchmarks: analyst query latency against the pattern
// base and — the contention metric PR 1 left open — ingest-side Put
// throughput while matching queries run concurrently against the same
// base. A recorded baseline lives in BENCH_match.json.
//
//	BenchmarkMatchRun            — one cluster matching query (filter +
//	                               refine) against a steady-state base
//	BenchmarkPutUnderMatch/...   — archiver Put throughput with K analyst
//	                               goroutines continuously matching
package streamsum

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/match"
	"streamsum/internal/sgs"
)

const (
	matchBaseSize  = 256
	matchThetaR    = 0.5
	matchThetaC    = 3
	matchThreshold = 0.25
)

// matchFixture builds n cluster summaries from deterministic Gaussian
// blobs (one summary per blob, largest cluster wins).
func matchFixture(tb testing.TB, n int) []*sgs.Summary {
	tb.Helper()
	rng := rand.New(rand.NewSource(2011))
	out := make([]*sgs.Summary, 0, n)
	for len(out) < n {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		spread := 0.5 + rng.Float64()
		pts := make([]Point, 150+rng.Intn(150))
		for i := range pts {
			pts[i] = Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
		}
		cls, err := SummarizeStatic(pts, matchThetaR, matchThetaC)
		if err != nil {
			tb.Fatal(err)
		}
		best := -1
		for i := range cls {
			if best < 0 || len(cls[i].Members) > len(cls[best].Members) {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		out = append(out, cls[best].Summary)
	}
	return out
}

// matchBaseOf archives every fixture summary into a fresh base whose
// capacity pins the steady-state size at matchBaseSize.
func matchBaseOf(tb testing.TB, sums []*sgs.Summary) *archive.Base {
	tb.Helper()
	b, err := archive.New(archive.Config{Dim: 2, Capacity: matchBaseSize})
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			tb.Fatalf("ok=%v err=%v", ok, err)
		}
	}
	return b
}

// BenchmarkMatchRun measures one matching query (position-insensitive,
// the paper's default) against a steady-state base, swept over the
// refine phase's worker count; targets cycle through the archived
// population so the filter phase returns real candidates. Multi-core
// hosts should see workersN beat workers1 for N > 1; results are
// byte-identical at every setting.
func BenchmarkMatchRun(b *testing.B) {
	sums := matchFixture(b, matchBaseSize)
	base := matchBaseOf(b, sums)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			snap := base.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := match.Query{
					Target: sums[i%len(sums)], Threshold: matchThreshold,
					Limit: 5, Workers: workers,
				}
				if _, _, err := match.Run(snap, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPutUnderMatch measures archiver-side Put latency while K
// analyst goroutines run matching queries against the same base in a
// closed loop — the mixed read/write traffic a shared pattern base sees
// when fed by sharded ingestion. matchers0 is the uncontended baseline.
func BenchmarkPutUnderMatch(b *testing.B) {
	for _, matchers := range []int{0, 2} {
		name := "matchers0"
		if matchers == 2 {
			name = "matchers2"
		}
		b.Run(name, func(b *testing.B) {
			sums := matchFixture(b, matchBaseSize)
			base := matchBaseOf(b, sums)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for m := 0; m < matchers; m++ {
				wg.Add(1)
				go func(m int) {
					defer wg.Done()
					for i := m; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						q := match.Query{Target: sums[i%len(sums)], Threshold: matchThreshold, Limit: 5}
						if _, _, err := match.Run(base, q); err != nil {
							panic(err)
						}
					}
				}(m)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := base.Put(sums[i%len(sums)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "puts/sec")
		})
	}
}

// BenchmarkPutBatchUnderMatch is the sharded-ingest append path: one op
// archives a window's worth of summaries via a single PutBatch while two
// analyst goroutines match continuously against the same base.
func BenchmarkPutBatchUnderMatch(b *testing.B) {
	const window = 8
	sums := matchFixture(b, matchBaseSize)
	base := matchBaseOf(b, sums)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := m; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := match.Query{Target: sums[i%len(sums)], Threshold: matchThreshold, Limit: 5}
				if _, _, err := match.Run(base, q); err != nil {
					panic(err)
				}
			}
		}(m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * window) % (len(sums) - window)
		if _, _, err := base.PutBatch(sums[lo : lo+window]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(b.N*window)/b.Elapsed().Seconds(), "puts/sec")
}
