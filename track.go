package streamsum

import (
	"streamsum/internal/track"
)

// Cluster evolution tracking (an extension of the paper's framework: §2
// motivates merge/split structural changes; §6.2 names evolution-driven
// archiving as future work).

// Tracker assigns stable identities to clusters across windows and
// classifies transitions (appeared / continued / merged / split /
// vanished). Feed it every WindowResult in order.
type Tracker = track.Tracker

// TrackEvent describes one cluster's transition into the current window.
type TrackEvent = track.Event

// TrackKind classifies a TrackEvent.
type TrackKind = track.EventKind

// Track event kinds.
const (
	TrackAppeared  = track.Appeared
	TrackContinued = track.Continued
	TrackMerged    = track.Merged
	TrackSplit     = track.Split
	TrackVanished  = track.Vanished
)

// NewTracker returns an empty cluster tracker.
func NewTracker() *Tracker { return track.New() }
