// Command experiments regenerates every figure of the paper's evaluation
// (§8) and prints paper-style result tables.
//
// Usage:
//
//	experiments fig7 [-windows N] [-case 1|2|3|all] [-slide N|all] [-seed S]
//	experiments fig8 [-sizes 100,1000,10000] [-queries N] [-seed S]
//	experiments fig9 [-archive N] [-targets N] [-seed S]
//	experiments timevar [-windows N] [-seed S]
//	experiments resolution [-levels N] [-theta N] [-seed S]
//	experiments all [-quick]
//
// Absolute numbers depend on the host; the shapes (who wins, by what
// factor, where the crossovers are) reproduce the paper. See
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"streamsum/internal/experiments"
	"streamsum/internal/gen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "fig7":
		err = runFig7(args)
	case "fig8":
		err = runFig8(args)
	case "fig9":
		err = runFig9(args)
	case "timevar":
		err = runTimeVar(args)
	case "resolution":
		err = runResolution(args)
	case "all":
		err = runAll(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <fig7|fig8|fig9|timevar|resolution|all> [flags]
run "experiments <subcommand> -h" for flags`)
}

func runFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ExitOnError)
	windows := fs.Int("windows", 20, "complete windows per configuration")
	caseSel := fs.String("case", "all", "parameter case: 1, 2, 3 or all")
	slideSel := fs.String("slide", "all", "slide size: 100, 1000, 5000 or all")
	seed := fs.Int64("seed", 2011, "workload seed")
	_ = fs.Parse(args)

	cases := experiments.Cases
	if *caseSel != "all" {
		i, err := strconv.Atoi(*caseSel)
		if err != nil || i < 1 || i > 3 {
			return fmt.Errorf("bad -case %q", *caseSel)
		}
		cases = cases[i-1 : i]
	}
	slides := experiments.Slides
	if *slideSel != "all" {
		v, err := strconv.ParseInt(*slideSel, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -slide %q", *slideSel)
		}
		slides = []int64{v}
	}

	fmt.Println("Figure 7 — response time and memory of cluster extraction + summarization")
	fmt.Printf("STT 4-D, win=%d, %d windows per cell, seed %d\n\n", experiments.Fig7Win, *windows, *seed)
	for _, pc := range cases {
		for _, slide := range slides {
			need := experiments.Fig7Win + int64(*windows)*slide
			data := gen.STT(gen.STTConfig{Seed: *seed}, int(need))
			fmt.Printf("%s (θr=%.2f θc=%d), slide=%d:\n", pc.Name, pc.ThetaR, pc.ThetaC, slide)
			fmt.Printf("  %-14s %14s %12s %12s %10s %10s\n", "method", "resp/window", "p95", "peak heap", "clusters", "overhead")
			var baseline experiments.Fig7Result
			byMethod := map[string]experiments.Fig7Result{}
			for _, m := range experiments.Methods {
				res, err := experiments.RunFig7(experiments.Fig7Config{
					Case: pc, Slide: slide, Method: m, Windows: *windows,
					Seed: *seed, Data: &data,
				})
				if err != nil {
					return err
				}
				byMethod[m] = res
				over := ""
				if m == "Extra-N" {
					baseline = res
				} else {
					over = fmt.Sprintf("%+.1f%%", 100*experiments.Fig7Overhead(res, baseline))
				}
				fmt.Printf("  %-14s %14v %12v %10.1fMB %10d %10s\n",
					m, res.AvgResponse.Round(time.Microsecond),
					res.P95Response.Round(time.Microsecond),
					float64(res.PeakHeapBytes)/(1<<20), res.Clusters, over)
			}
			fmt.Printf("  → summarization overhead of C-SGS over its own extraction: %+.1f%% (paper: ≤6%%)\n\n",
				100*experiments.Fig7Overhead(byMethod["C-SGS"], byMethod["C-SGS-full"]))
		}
	}
	return nil
}

func runFig8(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ExitOnError)
	sizes := fs.String("sizes", "100,1000,10000", "archive sizes, comma separated")
	queries := fs.Int("queries", 100, "to-be-matched clusters")
	expq := fs.Int("expensive-queries", 10, "queries for pairwise methods (RSP, SkPS)")
	seed := fs.Int64("seed", 2011, "workload seed")
	_ = fs.Parse(args)

	fmt.Println("Figure 8 — cluster matching query response time and storage")
	fmt.Printf("threshold 0.2, %d queries (%d for pairwise methods), seed %d\n\n", *queries, *expq, *seed)
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -sizes entry %q", s)
		}
		results, err := experiments.RunFig8(experiments.Fig8Config{
			ArchiveSize: n, Queries: *queries, ExpensiveQueries: *expq, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("archive of %d clusters:\n", n)
		fmt.Printf("  %-6s %14s %12s %10s %14s\n", "method", "avg query", "storage", "matches", "grid-level %")
		for _, r := range results {
			extra := ""
			if r.Method == "SGS" {
				extra = fmt.Sprintf("%.1f%%", 100*r.FilterFrac)
			}
			fmt.Printf("  %-6s %14v %10.2fMB %10d %14s\n",
				r.Method, r.AvgQuery.Round(time.Microsecond),
				float64(r.StoreBytes)/(1<<20), r.Matches, extra)
		}
		for _, r := range results {
			if r.Method == "SGS" {
				fmt.Printf("  SGS compression rate vs full representation: %.1f%% (avg %.0f cells/cluster)\n\n",
					100*r.CompressionRate, r.AvgCells)
			}
		}
	}
	return nil
}

func runFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ExitOnError)
	archiveN := fs.Int("archive", 300, "archived clusters")
	targets := fs.Int("targets", 24, "to-be-matched clusters")
	dim := fs.Int("dim", 2, "workload dimensionality (paper's STT matching is 4-D)")
	seed := fs.Int64("seed", 2011, "workload seed")
	_ = fs.Parse(args)

	fmt.Println("Figure 9 — matching quality (simulated analyst study; see DESIGN.md)")
	fmt.Printf("archive %d, %d targets, %d-D, top-3 matches per method, seed %d\n\n", *archiveN, *targets, *dim, *seed)
	results, err := experiments.RunFig9(experiments.Fig9Config{
		ArchiveSize: *archiveN, Targets: *targets, Dim: *dim, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s %12s %14s\n", "method", "very similar", "similar", "not similar", "similar rate")
	for _, r := range results {
		v, s, n := r.Tally.Rates()
		fmt.Printf("%-6s %11.0f%% %11.0f%% %11.0f%% %13.0f%%\n",
			r.Method, 100*v, 100*s, 100*n, 100*r.Tally.SimilarRate())
	}
	// Per-shape breakdown: where each summarization loses fidelity.
	shapes := map[string]bool{}
	for _, r := range results {
		for sh := range r.ByShape {
			shapes[sh] = true
		}
	}
	var order []string
	for sh := range shapes {
		order = append(order, sh)
	}
	sort.Strings(order)
	fmt.Printf("\nsimilar rate by target shape:\n%-6s", "method")
	for _, sh := range order {
		fmt.Printf(" %10s", sh)
	}
	fmt.Println()
	for _, r := range results {
		fmt.Printf("%-6s", r.Method)
		for _, sh := range order {
			if tl := r.ByShape[sh]; tl != nil && tl.Total() > 0 {
				fmt.Printf(" %9.0f%%", 100*tl.SimilarRate())
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}
	return nil
}

func runTimeVar(args []string) error {
	fs := flag.NewFlagSet("timevar", flag.ExitOnError)
	windows := fs.Int("windows", 20, "complete windows")
	seed := fs.Int64("seed", 2011, "workload seed")
	_ = fs.Parse(args)

	fmt.Println("Tech-report experiment — time-based windows, fluctuating input rate")
	results, err := experiments.RunTimeVar(experiments.TimeVarConfig{Windows: *windows, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %14s %14s %10s\n", "method", "avg resp", "max resp", "clusters")
	for _, r := range results {
		fmt.Printf("%-8s %14v %14v %10d\n", r.Method,
			r.AvgResponse.Round(time.Microsecond), r.MaxResponse.Round(time.Microsecond), r.Clusters)
	}
	return nil
}

func runResolution(args []string) error {
	fs := flag.NewFlagSet("resolution", flag.ExitOnError)
	levels := fs.Int("levels", 2, "max resolution level")
	theta := fs.Int("theta", 3, "compression rate θ")
	archiveN := fs.Int("archive", 200, "archived clusters")
	targets := fs.Int("targets", 16, "targets")
	seed := fs.Int64("seed", 2011, "workload seed")
	_ = fs.Parse(args)

	fmt.Println("Tech-report experiment — multi-resolution SGS matching (§6.1 trade-off)")
	results, err := experiments.RunResolution(experiments.ResolutionConfig{
		Levels: *levels, Theta: *theta, ArchiveSize: *archiveN, Targets: *targets, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %10s %14s %12s\n", "level", "storage", "avg cells", "avg query", "top-1 sim")
	for _, r := range results {
		fmt.Printf("L%-5d %10.2fKB %10.1f %14v %12.3f\n",
			r.Level, float64(r.StoreBytes)/1024, r.AvgCells,
			r.AvgQuery.Round(time.Microsecond), r.AvgTopSim)
	}
	return nil
}

func runAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced scales for a fast smoke run")
	_ = fs.Parse(args)
	if *quick {
		if err := runFig7([]string{"-windows", "5", "-case", "2", "-slide", "1000"}); err != nil {
			return err
		}
		if err := runFig8([]string{"-sizes", "100,1000", "-queries", "20", "-expensive-queries", "3"}); err != nil {
			return err
		}
		if err := runFig9([]string{"-archive", "100", "-targets", "10"}); err != nil {
			return err
		}
		if err := runTimeVar([]string{"-windows", "10"}); err != nil {
			return err
		}
		return runResolution([]string{"-archive", "60", "-targets", "8"})
	}
	for _, f := range []func([]string) error{runFig7, runFig8, runFig9, runTimeVar, runResolution} {
		if err := f(nil); err != nil {
			return err
		}
	}
	return nil
}
