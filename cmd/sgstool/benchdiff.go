package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// bench-diff compares `go test -bench` output against the repo's
// recorded BENCH_*.json baselines and fails (exit 1) on regressions
// beyond a tolerance. It reads the benchmark output from a file or
// stdin, so CI pipes the bench-smoke run straight through it:
//
//	go test -bench=. -benchtime=1x ./... | sgstool bench-diff BENCH_ingest.json,BENCH_match.json -warn-only
//
// Benchmarks are matched by name after normalization: the -GOMAXPROCS
// suffix go test appends is stripped from the output side, and the
// package prefix some baselines carry ("internal/core BenchmarkFoo")
// is stripped from the baseline side. Benchmarks present on only one
// side are reported but never fail the run — baselines legitimately
// outlive (and predate) individual benchmarks.

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkPushBatch/workers4-8   	      1	37447221 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOutput extracts ns/op per normalized benchmark name. A
// benchmark that ran more than once (multiple -count runs, or the same
// name in several packages) keeps its fastest run — the conventional
// noise floor for regression checks.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bench-diff: bad ns/op in %q: %v", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// loadBaseline reads one BENCH_*.json file's results into normalized
// name → ns/op. Entries without a positive ns_per_op are skipped (some
// baselines carry derived-metric-only rows).
func loadBaseline(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Results []struct {
			Bench   string  `json:"bench"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("bench-diff: %s: %v", path, err)
	}
	out := make(map[string]float64, len(doc.Results))
	for _, r := range doc.Results {
		name := r.Bench
		if at := strings.Index(name, "Benchmark"); at > 0 {
			name = name[at:]
		}
		if r.NsPerOp > 0 {
			out[name] = r.NsPerOp
		}
	}
	return out, nil
}

// benchDelta is one compared benchmark: current vs baseline ns/op.
type benchDelta struct {
	Name     string
	Base     float64
	Got      float64
	Ratio    float64 // Got / Base
	Regessed bool
}

// diffBench compares the benchmarks present on both sides. A benchmark
// regresses when its current ns/op exceeds the baseline by more than
// the tolerance fraction (0.25 = 25% slower).
func diffBench(base, got map[string]float64, tolerance float64) []benchDelta {
	var out []benchDelta
	for name, b := range base {
		g, ok := got[name]
		if !ok {
			continue
		}
		out = append(out, benchDelta{
			Name: name, Base: b, Got: g, Ratio: g / b,
			Regessed: g > b*(1+tolerance),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// benchDiffCmd is the subcommand entry: baselines is the comma-separated
// BENCH_*.json list (argv[2]), args the remaining flags. Returns the
// process exit code.
func benchDiffCmd(baselines string, args []string, stdin io.Reader, stdout io.Writer) int {
	fs := flag.NewFlagSet("bench-diff", flag.ExitOnError)
	input := fs.String("input", "-", "benchmark output to check: a file, or - for stdin")
	tolerance := fs.Float64("tolerance", 0.25, "allowed slowdown fraction before a benchmark counts as regressed (0.25 = 25%)")
	warnOnly := fs.Bool("warn-only", false, "report regressions but exit 0 (shared/noisy runners)")
	_ = fs.Parse(args)

	base := make(map[string]float64)
	for _, path := range strings.Split(baselines, ",") {
		m, err := loadBaseline(strings.TrimSpace(path))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgstool: %v\n", err)
			return 2
		}
		for k, v := range m {
			base[k] = v
		}
	}

	in := stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgstool: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	got, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgstool: %v\n", err)
		return 2
	}

	deltas := diffBench(base, got, *tolerance)
	regressions := 0
	for _, d := range deltas {
		mark := "ok"
		if d.Regessed {
			mark = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(stdout, "%-60s %14.0f ns/op -> %14.0f ns/op  %+6.1f%%  %s\n",
			d.Name, d.Base, d.Got, 100*(d.Ratio-1), mark)
	}
	fmt.Fprintf(stdout, "bench-diff: %d compared, %d regressed (tolerance %.0f%%), %d baseline-only, %d run-only\n",
		len(deltas), regressions, *tolerance*100, len(base)-len(deltas), len(got)-len(deltas))
	if regressions > 0 && !*warnOnly {
		return 1
	}
	return 0
}
