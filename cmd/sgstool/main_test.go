package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/segstore"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

// storeEntries builds n flush entries from real clustered summaries.
func storeEntries(t *testing.T, n int) []segstore.FlushEntry {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	thetaR := 0.5
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	var out []segstore.FlushEntry
	for len(out) < n {
		cx, cy := rng.Float64()*50, rng.Float64()*50
		var pts []geom.Point
		for i := 0; i < 100; i++ {
			pts = append(pts, geom.Point{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		}
		ids := make([]int64, len(pts))
		for i := range ids {
			ids[i] = int64(i)
		}
		res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, cl := range res.Clusters {
			var cpts []geom.Point
			var isCore []bool
			for _, id := range cl.Members {
				cpts = append(cpts, pts[id])
				isCore = append(isCore, res.IsCore[id])
			}
			id := int64(len(out))
			s, err := sgs.FromCluster(geo, cpts, isCore, id, 0)
			if err != nil {
				t.Fatal(err)
			}
			s.ID = id
			out = append(out, segstore.FlushEntry{
				ID: id, Blob: sgs.Marshal(s), MBR: s.MBR(), Feat: s.Features().Vector(),
			})
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// TestOpenStoreRefusesNonexistent: a read-only tool must not turn a typo
// into a fresh empty store directory (segstore.Open creates missing
// dirs for writers).
func TestOpenStoreRefusesNonexistent(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-store")
	if _, err := openStore(missing, 2); err == nil {
		t.Fatal("openStore accepted a nonexistent path")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("openStore created the missing directory")
	}
	// A plain file is refused too.
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := openStore(file, 2); err == nil {
		t.Fatal("openStore accepted a non-directory path")
	}
}

// TestInspectOutput pins the inspect listing: per-segment format
// version, columnar/blob region sizes and the zone filter line.
func TestInspectOutput(t *testing.T) {
	dir := t.TempDir()
	st, err := segstore.Open(dir, segstore.Options{Dim: 2, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	entries := storeEntries(t, 6)
	if err := st.Flush(entries[:3]); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(entries[3:]); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Tombstone(entries[1].ID); err != nil || !ok {
		t.Fatalf("tombstone: ok=%v err=%v", ok, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := openStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var buf bytes.Buffer
	printStore(&buf, st2)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, column header, two lines (stats + zone) per segment, then
	// the sumcache smoke line.
	if len(lines) != 2+2*2+1 {
		t.Fatalf("inspect printed %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "segments: 2  records: 5 live / 6 total") {
		t.Fatalf("summary line: %q", lines[0])
	}
	for _, seg := range []int{2, 4} {
		f := strings.Fields(lines[seg])
		// segment name, fmt, mapped, records, dead, col, blob, ids
		if len(f) != 8 {
			t.Fatalf("segment line %q: %d fields", lines[seg], len(f))
		}
		if f[1] != "v3" {
			t.Fatalf("freshly written segment reports format %q", f[1])
		}
		if f[5] == "0" || f[6] == "0" {
			t.Fatalf("zero-sized region in %q", lines[seg])
		}
		if !strings.Contains(lines[seg+1], "zone mbr=") || !strings.Contains(lines[seg+1], "feat=[") {
			t.Fatalf("zone line missing: %q", lines[seg+1])
		}
	}
	if !strings.Contains(lines[2], " 3 ") || !strings.Contains(lines[2], " 1 ") {
		t.Fatalf("first segment should show 3 records 1 dead: %q", lines[2])
	}
	// The cache smoke pass decodes every live record twice: the warm pass
	// hits for all of them (ratio 0.50) and they all stay resident.
	cacheLine := lines[len(lines)-1]
	if !strings.HasPrefix(cacheLine, "sumcache: warm hit ratio 0.50  resident 5 summaries") {
		t.Fatalf("cache line: %q", cacheLine)
	}

	// With the layer disabled the line degrades to "off" — the uncached
	// path an operator gets under SGS_SUMCACHE=off.
	prev := sumcache.SetEnabled(false)
	defer sumcache.SetEnabled(prev)
	buf.Reset()
	printStore(&buf, st2)
	lines = strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if got := lines[len(lines)-1]; got != "sumcache: off" {
		t.Fatalf("disabled cache line: %q", got)
	}
}
