package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: streamsum
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPushSequential 	       1	41000000 ns/op
BenchmarkPushBatch/workers1-8         	       1	42000000 ns/op
BenchmarkPushBatch/workers4-8         	       1	80000000 ns/op
BenchmarkMatchRun/workers1-8          	       2	60000000 ns/op
BenchmarkMatchRun/workers1-8          	       2	55000000 ns/op
PASS
ok  	streamsum	3.4s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkPushSequential":     41000000, // no GOMAXPROCS suffix
		"BenchmarkPushBatch/workers1": 42000000, // suffix stripped
		"BenchmarkPushBatch/workers4": 80000000,
		"BenchmarkMatchRun/workers1":  55000000, // fastest of two runs
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name], ns)
		}
	}
}

func TestLoadBaselineNormalizesPackagePrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	doc := `{
	  "results": [
	    {"bench": "BenchmarkPushBatch/workers1", "ns_per_op": 42115576, "tuples_per_sec": 23744},
	    {"bench": "internal/core BenchmarkParallelDiscovery/workers1", "ns_per_op": 22382914},
	    {"bench": "BenchmarkDerivedOnly", "tuples_per_sec": 100}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := base["BenchmarkParallelDiscovery/workers1"]; !ok {
		t.Error("package prefix not stripped from baseline name")
	}
	if _, ok := base["internal/core BenchmarkParallelDiscovery/workers1"]; ok {
		t.Error("raw prefixed name leaked through normalization")
	}
	if _, ok := base["BenchmarkDerivedOnly"]; ok {
		t.Error("entry without ns_per_op should be skipped")
	}
	if base["BenchmarkPushBatch/workers1"] != 42115576 {
		t.Errorf("plain name = %v, want 42115576", base["BenchmarkPushBatch/workers1"])
	}
}

func TestDiffBench(t *testing.T) {
	base := map[string]float64{
		"BenchmarkA": 100,
		"BenchmarkB": 100,
		"BenchmarkC": 100, // absent from the run
	}
	got := map[string]float64{
		"BenchmarkA": 110, // +10% — inside 25% tolerance
		"BenchmarkB": 200, // +100% — regressed
		"BenchmarkD": 50,  // absent from the baseline
	}
	deltas := diffBench(base, got, 0.25)
	if len(deltas) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(deltas))
	}
	// Sorted worst-first.
	if deltas[0].Name != "BenchmarkB" || !deltas[0].Regessed {
		t.Errorf("worst delta = %+v, want regressed BenchmarkB", deltas[0])
	}
	if deltas[1].Name != "BenchmarkA" || deltas[1].Regessed {
		t.Errorf("second delta = %+v, want non-regressed BenchmarkA", deltas[1])
	}
}

// TestBenchDiffCmd drives the subcommand end to end against a real
// baseline file: a clean run exits 0, a regressed run exits 1, and
// -warn-only downgrades the failure to exit 0 while still reporting.
func TestBenchDiffCmd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	doc := `{"results": [{"bench": "BenchmarkX/n1", "ns_per_op": 1000}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func(output string, args ...string) (int, string) {
		var out bytes.Buffer
		code := benchDiffCmd(path, args, strings.NewReader(output), &out)
		return code, out.String()
	}

	clean := "BenchmarkX/n1-8 \t 1 \t 1100 ns/op\n"
	if code, out := run(clean); code != 0 || !strings.Contains(out, "1 compared, 0 regressed") {
		t.Errorf("clean run: code %d, output %q", code, out)
	}
	slow := "BenchmarkX/n1-8 \t 1 \t 9000 ns/op\n"
	if code, out := run(slow); code != 1 || !strings.Contains(out, "REGRESSED") {
		t.Errorf("regressed run: code %d, output %q", code, out)
	}
	if code, out := run(slow, "-warn-only"); code != 0 || !strings.Contains(out, "REGRESSED") {
		t.Errorf("warn-only run: code %d, output %q", code, out)
	}
	if code, _ := run(slow, "-tolerance", "10"); code != 0 {
		t.Errorf("huge tolerance run: code %d, want 0", code)
	}
}
