// Command sgstool inspects pattern-base files written by sgsd or the
// archive API.
//
// Usage:
//
//	sgstool list  base.sgsb             # one line per archived cluster
//	sgstool show  base.sgsb -id 3       # details + ASCII rendering
//	sgstool stats base.sgsb             # aggregate statistics
//	sgstool match base.sgsb -id 3 -threshold 0.3 -limit 5
//	                                    # match one archived cluster
//	                                    # against the rest of the base
//
// All subcommands read through one pattern-base snapshot, the same
// read-only view matching queries use against a live archiver.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"streamsum/internal/archive"
	"streamsum/internal/match"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: sgstool <list|show|stats|match> <file> [flags]")
		os.Exit(2)
	}
	cmd, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	id := fs.Int64("id", 0, "archive id (show, match)")
	threshold := fs.Float64("threshold", 0.3, "distance threshold (match)")
	limit := fs.Int("limit", 5, "max matches (match)")
	matchWorkers := fs.Int("match-workers", 0, "parallel matching workers for the refine phase (0 = one per CPU, 1 = sequential)")
	dim := fs.Int("dim", 0, "data dimensionality (default: taken from the first record)")
	_ = fs.Parse(os.Args[3:])

	base, err := load(path, *dim)
	if err != nil {
		log.Fatal(err)
	}
	// One snapshot serves every subcommand: a consistent point-in-time
	// view, searched without ever taking the base lock.
	snap := base.Snapshot()

	switch cmd {
	case "list":
		fmt.Printf("%6s %8s %8s %8s %8s %10s %8s\n", "id", "window", "cells", "core", "pop", "density", "bytes")
		snap.All(func(e *archive.Entry) bool {
			f := e.Features
			fmt.Printf("%6d %8d %8.0f %8.0f %8d %10.2f %8d\n",
				e.ID, e.Summary.Window, f.Volume, f.StatusCount,
				e.Summary.TotalPopulation(), f.AvgDensity, e.Bytes)
			return true
		})
	case "show":
		e := snap.Get(*id)
		if e == nil {
			log.Fatalf("sgstool: no cluster %d", *id)
		}
		f := e.Features
		fmt.Printf("cluster %d (window %d, level %d)\n", e.ID, e.Summary.Window, e.Summary.Level)
		fmt.Printf("  cells=%0.f core=%0.f population=%d\n", f.Volume, f.StatusCount, e.Summary.TotalPopulation())
		fmt.Printf("  avg density=%.3f avg connectivity=%.3f\n", f.AvgDensity, f.AvgConnectivity)
		fmt.Printf("  MBR=%v\n  encoded=%d bytes\n\n", e.MBR, e.Bytes)
		fmt.Print(e.Summary.Render())
	case "stats":
		n, cells, pop, bytes := 0, 0, 0, 0
		snap.All(func(e *archive.Entry) bool {
			n++
			cells += e.Summary.NumCells()
			pop += e.Summary.TotalPopulation()
			bytes += e.Bytes
			return true
		})
		if n == 0 {
			fmt.Println("empty pattern base")
			return
		}
		fmt.Printf("clusters:        %d\n", n)
		fmt.Printf("total cells:     %d (avg %.1f per cluster)\n", cells, float64(cells)/float64(n))
		fmt.Printf("total population:%d\n", pop)
		fmt.Printf("summary bytes:   %d (avg %.0f per cluster, %.1f per cell)\n",
			bytes, float64(bytes)/float64(n), float64(bytes)/float64(cells))
		full := pop * 8 * dimOf(snap)
		fmt.Printf("full-rep bytes:  ~%d → compression %.1f%%\n", full, 100*(1-float64(bytes)/float64(full)))
	case "match":
		e := snap.Get(*id)
		if e == nil {
			log.Fatalf("sgstool: no cluster %d", *id)
		}
		ms, stats, err := match.Run(snap, match.Query{
			Target: e.Summary, Threshold: *threshold, Limit: *limit + 1,
			Workers: *matchWorkers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("filter: %d candidates, %d grid-level matches\n", stats.IndexCandidates, stats.Refined)
		shown := 0
		for _, m := range ms {
			if m.ID == *id {
				continue // skip the target itself
			}
			fmt.Printf("  cluster %6d  distance %.4f  (window %d, %d cells)\n",
				m.ID, m.Distance, m.Entry.Summary.Window, m.Entry.Summary.NumCells())
			shown++
			if shown >= *limit {
				break
			}
		}
		if shown == 0 {
			fmt.Println("  no matches within threshold")
		}
	default:
		log.Fatalf("sgstool: unknown subcommand %q", cmd)
	}
}

func load(path string, dim int) (*archive.Base, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("sgstool: %v", err)
	}
	isLog := string(magic[:]) == "SGSLOG1\n"

	try := func(d int) (*archive.Base, error) {
		b, err := archive.New(archive.Config{Dim: d})
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		if isLog {
			n, torn, err := b.LoadAppended(f)
			if err != nil {
				return nil, err
			}
			if torn {
				fmt.Fprintf(os.Stderr, "sgstool: log tail torn; recovered %d records\n", n)
			}
			if n == 0 {
				return nil, fmt.Errorf("sgstool: no records recovered")
			}
			return b, nil
		}
		if err := b.Load(f); err != nil {
			return nil, err
		}
		return b, nil
	}
	if dim != 0 {
		return try(dim)
	}
	// Peek the dimensionality: try each supported value.
	for d := 2; d <= 8; d++ {
		if b, err := try(d); err == nil {
			return b, nil
		}
	}
	return nil, fmt.Errorf("sgstool: could not determine dimensionality; pass -dim")
}

func dimOf(s *archive.Snapshot) int {
	d := 2
	s.All(func(e *archive.Entry) bool {
		d = e.Summary.Dim
		return false
	})
	return d
}
