// Command sgstool inspects pattern-base files written by sgsd or the
// archive API, and disk-tier store directories written with sgsd -store.
//
// Usage:
//
//	sgstool list  base.sgsb             # one line per archived cluster
//	sgstool show  base.sgsb -id 3       # details + ASCII rendering
//	sgstool stats base.sgsb             # aggregate statistics
//	sgstool match base.sgsb -id 3 -threshold 0.3 -limit 5
//	                                    # match one archived cluster
//	                                    # against the rest of the base
//	sgstool inspect store.dir           # per-segment stats of a disk tier
//	sgstool compact store.dir           # merge undersized segments, drop
//	                                    # tombstoned summaries
//	go test -bench=. ./... | sgstool bench-diff BENCH_ingest.json,BENCH_match.json
//	                                    # compare a bench run against the
//	                                    # recorded baselines; exit 1 on
//	                                    # regression beyond -tolerance
//
// File subcommands read through one pattern-base snapshot, the same
// read-only view matching queries use against a live archiver. inspect
// reads the segment footers for the per-segment lines, then decodes
// every live summary blob twice through a decoded-summary cache
// (internal/sumcache) — a validation pass whose warm hit ratio and
// resident bytes appear on the final "sumcache:" line (or "sumcache:
// off" under SGS_SUMCACHE=off).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"streamsum/internal/archive"
	"streamsum/internal/match"
	"streamsum/internal/segstore"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: sgstool <list|show|stats|match|inspect|compact|bench-diff> <file|storedir|baselines> [flags]")
		os.Exit(2)
	}
	cmd, path := os.Args[1], os.Args[2]
	if cmd == "bench-diff" {
		// Compares `go test -bench` output (stdin or -input) against the
		// comma-separated BENCH_*.json baselines; exits 1 on regression
		// beyond -tolerance unless -warn-only.
		os.Exit(benchDiffCmd(path, os.Args[3:], os.Stdin, os.Stdout))
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	id := fs.Int64("id", 0, "archive id (show, match)")
	threshold := fs.Float64("threshold", 0.3, "distance threshold (match)")
	limit := fs.Int("limit", 5, "max matches (match)")
	matchWorkers := fs.Int("match-workers", 0, "parallel matching workers for the filter and refine phases (0 = one per CPU, 1 = sequential)")
	dim := fs.Int("dim", 0, "data dimensionality (default: taken from the first record; inspect/compact probe 2..8)")
	_ = fs.Parse(os.Args[3:])

	switch cmd {
	case "inspect", "compact":
		if err := storeCmd(cmd, path, *dim); err != nil {
			log.Fatal(err)
		}
		return
	}

	base, err := load(path, *dim)
	if err != nil {
		log.Fatal(err)
	}
	// One snapshot serves every subcommand: a consistent point-in-time
	// view, searched without ever taking the base lock.
	snap := base.Snapshot()

	switch cmd {
	case "list":
		fmt.Printf("%6s %8s %8s %8s %8s %10s %8s\n", "id", "window", "cells", "core", "pop", "density", "bytes")
		snap.All(func(e *archive.Entry) bool {
			f := e.Features
			fmt.Printf("%6d %8d %8.0f %8.0f %8d %10.2f %8d\n",
				e.ID, e.Summary.Window, f.Volume, f.StatusCount,
				e.Summary.TotalPopulation(), f.AvgDensity, e.Bytes)
			return true
		})
	case "show":
		e := snap.Get(*id)
		if e == nil {
			log.Fatalf("sgstool: no cluster %d", *id)
		}
		f := e.Features
		fmt.Printf("cluster %d (window %d, level %d)\n", e.ID, e.Summary.Window, e.Summary.Level)
		fmt.Printf("  cells=%0.f core=%0.f population=%d\n", f.Volume, f.StatusCount, e.Summary.TotalPopulation())
		fmt.Printf("  avg density=%.3f avg connectivity=%.3f\n", f.AvgDensity, f.AvgConnectivity)
		fmt.Printf("  MBR=%v\n  encoded=%d bytes\n\n", e.MBR, e.Bytes)
		fmt.Print(e.Summary.Render())
	case "stats":
		n, cells, pop, bytes := 0, 0, 0, 0
		snap.All(func(e *archive.Entry) bool {
			n++
			cells += e.Summary.NumCells()
			pop += e.Summary.TotalPopulation()
			bytes += e.Bytes
			return true
		})
		if n == 0 {
			fmt.Println("empty pattern base")
			return
		}
		fmt.Printf("clusters:        %d\n", n)
		fmt.Printf("total cells:     %d (avg %.1f per cluster)\n", cells, float64(cells)/float64(n))
		fmt.Printf("total population:%d\n", pop)
		fmt.Printf("summary bytes:   %d (avg %.0f per cluster, %.1f per cell)\n",
			bytes, float64(bytes)/float64(n), float64(bytes)/float64(cells))
		full := pop * 8 * dimOf(snap)
		fmt.Printf("full-rep bytes:  ~%d → compression %.1f%%\n", full, 100*(1-float64(bytes)/float64(full)))
	case "match":
		e := snap.Get(*id)
		if e == nil {
			log.Fatalf("sgstool: no cluster %d", *id)
		}
		ms, stats, err := match.Run(snap, match.Query{
			Target: e.Summary, Threshold: *threshold, Limit: *limit + 1,
			Workers: *matchWorkers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("filter: %d candidates, %d grid-level matches\n", stats.IndexCandidates, stats.Refined)
		shown := 0
		for _, m := range ms {
			if m.ID == *id {
				continue // skip the target itself
			}
			fmt.Printf("  cluster %6d  distance %.4f  (window %d, %d cells)\n",
				m.ID, m.Distance, m.Entry.Summary.Window, m.Entry.Summary.NumCells())
			shown++
			if shown >= *limit {
				break
			}
		}
		if shown == 0 {
			fmt.Println("  no matches within threshold")
		}
	default:
		log.Fatalf("sgstool: unknown subcommand %q", cmd)
	}
}

// storeCmd handles the disk-tier subcommands. The store records its
// dimensionality in the manifest, so opening probes 2..8 unless -dim
// pins it.
func storeCmd(cmd, dir string, dim int) error {
	st, err := openStore(dir, dim)
	if err != nil {
		return err
	}
	defer st.Close()
	switch cmd {
	case "inspect":
		printStore(os.Stdout, st)
	case "compact":
		before := st.Stats()
		if err := st.CompactNow(); err != nil {
			return err
		}
		after := st.Stats()
		fmt.Printf("compacted: %d -> %d segments, %d -> %d records, %.1f -> %.1f KB, %d tombstones dropped\n",
			before.Segments, after.Segments, before.Records, after.Records,
			float64(before.Bytes)/1024, float64(after.Bytes)/1024,
			before.Tombstones-after.Tombstones)
	}
	return nil
}

func openStore(dir string, dim int) (*segstore.Store, error) {
	// segstore.Open creates missing directories (it serves writers); a
	// read-only tool must not turn a typo into a fresh empty store.
	st, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("sgstool: %v", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("sgstool: %s is not a store directory", dir)
	}
	try := func(d int) (*segstore.Store, error) {
		return segstore.Open(dir, segstore.Options{Dim: d, NoBackgroundCompaction: true})
	}
	if dim != 0 {
		return try(dim)
	}
	for d := 2; d <= 8; d++ {
		if st, err := try(d); err == nil {
			return st, nil
		}
	}
	return nil, fmt.Errorf("sgstool: could not determine store dimensionality; pass -dim")
}

func printStore(w io.Writer, st *segstore.Store) {
	s := st.Stats()
	fmt.Fprintf(w, "segments: %d  records: %d live / %d total  bytes: %.1f KB live / %.1f KB total  tombstones: %d\n",
		s.Segments, s.LiveRecords, s.Records,
		float64(s.LiveBytes)/1024, float64(s.Bytes)/1024, s.Tombstones)
	v := st.View()
	fmt.Fprintf(w, "%-24s %4s %6s %8s %8s %10s %10s %10s\n",
		"segment", "fmt", "mapped", "records", "dead", "col", "blob", "ids")
	for _, seg := range v.Segments() {
		recs := seg.Records()
		dead := 0
		lo, hi := int64(-1), int64(-1)
		for _, r := range recs {
			if v.Dead(r.ID) {
				dead++
			}
			if lo < 0 || r.ID < lo {
				lo = r.ID
			}
			if r.ID > hi {
				hi = r.ID
			}
		}
		col, blob := seg.Regions()
		fmt.Fprintf(w, "%-24s %4s %6v %8d %8d %10d %10d %4d..%-4d\n",
			filepath.Base(seg.Path()), fmt.Sprintf("v%d", seg.Format()),
			seg.Mapped(), len(recs), dead, col, blob, lo, hi)
		mbr, fmin, fmax := seg.Zone()
		fmt.Fprintf(w, "%24s zone mbr=%v feat=[%g..%g %g..%g %g..%g %g..%g]\n",
			"", mbr,
			fmin[0], fmax[0], fmin[1], fmax[1], fmin[2], fmax[2], fmin[3], fmax[3])
	}
	printCacheSmoke(w, v, s.LiveBytes)
}

// printCacheSmoke decodes every live record twice through a decoded-
// summary cache sized to hold them all — a blob-validation pass that
// doubles as a residency check: the warm pass must hit for every record
// the cache retained. The budget is scaled so each shard's share covers
// the full live payload (the cache stripes its bound across shards, and
// ids need not spread evenly). Reports "off" when SGS_SUMCACHE=off
// disables the layer.
func printCacheSmoke(w io.Writer, v *segstore.View, liveBytes int) {
	c := sumcache.New(sumcache.NumShards * (liveBytes + 1))
	if c == nil {
		fmt.Fprintln(w, "sumcache: off")
		return
	}
	decode := func() error {
		for _, seg := range v.Segments() {
			for _, r := range seg.Records() {
				if v.Dead(r.ID) {
					continue
				}
				if _, err := c.GetOrLoad(seg, r.ID, int(r.Len), func() (*sgs.Summary, error) {
					return seg.Load(r)
				}); err != nil {
					return fmt.Errorf("record %d: %v", r.ID, err)
				}
			}
		}
		return nil
	}
	for pass := 0; pass < 2; pass++ {
		if err := decode(); err != nil {
			fmt.Fprintf(w, "sumcache: decode failed: %v\n", err)
			return
		}
	}
	st := c.Stats()
	ratio := 0.0
	if st.Hits+st.Misses > 0 {
		ratio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	fmt.Fprintf(w, "sumcache: warm hit ratio %.2f  resident %d summaries, %.1f KB\n",
		ratio, st.Entries, float64(st.Bytes)/1024)
}

func load(path string, dim int) (*archive.Base, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("sgstool: %v", err)
	}
	isLog := string(magic[:]) == "SGSLOG1\n"

	try := func(d int) (*archive.Base, error) {
		b, err := archive.New(archive.Config{Dim: d})
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		if isLog {
			n, torn, err := b.LoadAppended(f)
			if err != nil {
				return nil, err
			}
			if torn {
				fmt.Fprintf(os.Stderr, "sgstool: log tail torn; recovered %d records\n", n)
			}
			if n == 0 {
				return nil, fmt.Errorf("sgstool: no records recovered")
			}
			return b, nil
		}
		if err := b.Load(f); err != nil {
			return nil, err
		}
		return b, nil
	}
	if dim != 0 {
		return try(dim)
	}
	// Peek the dimensionality: try each supported value.
	for d := 2; d <= 8; d++ {
		if b, err := try(d); err == nil {
			return b, nil
		}
	}
	return nil, fmt.Errorf("sgstool: could not determine dimensionality; pass -dim")
}

func dimOf(s *archive.Snapshot) int {
	d := 2
	s.All(func(e *archive.Entry) bool {
		d = e.Summary.Dim
		return false
	})
	return d
}
