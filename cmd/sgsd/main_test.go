package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamsum"
	"streamsum/internal/gen"
)

// testLogger discards everything; tests that assert on log output build
// their own buffer-backed logger instead.
func testLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// testEngine builds an archiving engine with some history so /match and
// /subscribe targets resolve.
func testEngine(t *testing.T) *streamsum.Engine {
	t.Helper()
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000,
		Archive: &streamsum.ArchiveOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.GMTI(gen.GMTIConfig{Seed: 21}, 8000)
	if _, err := eng.PushBatch(data.Points, nil); err != nil {
		t.Fatal(err)
	}
	if eng.PatternBase().Len() == 0 {
		t.Fatal("fixture archived nothing")
	}
	return eng
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHTTPErrorHygiene: malformed queries are 400s carrying the parse
// error, unknown archive ids are 404s — on both /match and /subscribe —
// and a standing query sent to /match (or a one-shot to /subscribe) is
// a 400 explaining the mismatch.
func TestHTTPErrorHygiene(t *testing.T) {
	eng := testEngine(t)
	mux := http.NewServeMux()
	shutdown := make(chan struct{})
	mux.HandleFunc("/match", matchHandler(eng, 0, testLogger()))
	mux.HandleFunc("/subscribe", subscribeHandler(eng, shutdown))
	mux.HandleFunc("/stats", statsHandler(eng))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	defer close(shutdown)

	cases := []struct {
		path     string
		wantCode int
		wantSub  string // substring the body must carry
	}{
		// Parse errors → 400 with the parser's message.
		{"/match?q=GIVEN+nonsense", 400, "query:"},
		{"/subscribe?q=GIVEN+nonsense", 400, "query:"},
		{"/match", 400, "missing q"},
		{"/subscribe", 400, "missing q"},
		// Wrong endpoint for the query form → 400 explaining it.
		{"/match?q=" + q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.2"), 400, "standing"},
		{"/subscribe?q=" + q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.2"), 400, "standing"},
		// Non-integer target → 400.
		{"/match?q=" + q("GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM History WHERE Distance <= 0.2"), 400, "archive id"},
		{"/subscribe?q=" + q("GIVEN DensityBasedCluster input SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.2"), 400, "archive id"},
		// Unknown archive id → 404.
		{"/match?q=" + q("GIVEN DensityBasedCluster 999999 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.2"), 404, "no archived cluster"},
		{"/subscribe?q=" + q("GIVEN DensityBasedCluster 999999 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.2"), 404, "no archived cluster"},
		// Well-formed requests still work.
		{"/match?q=" + q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3 LIMIT 2"), 200, `"matches"`},
		{"/stats", 200, `"subscriptions"`},
	}
	for _, c := range cases {
		code, body := get(t, srv, c.path)
		if code != c.wantCode {
			t.Errorf("GET %s = %d (%q), want %d", c.path, code, strings.TrimSpace(body), c.wantCode)
			continue
		}
		if !strings.Contains(body, c.wantSub) {
			t.Errorf("GET %s body %q missing %q", c.path, strings.TrimSpace(body), c.wantSub)
		}
	}
}

func q(s string) string {
	return strings.ReplaceAll(s, " ", "+")
}

// TestHTTPSubscribeStream: a /subscribe connection receives the
// subscribed handshake and then match events as new windows archive,
// newline-delimited JSON, ending cleanly at server shutdown.
func TestHTTPSubscribeStream(t *testing.T) {
	eng := testEngine(t)
	mux := http.NewServeMux()
	shutdown := make(chan struct{})
	mux.HandleFunc("/subscribe", subscribeHandler(eng, shutdown))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		srv.URL+"/subscribe?q="+q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.5"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	// Decode-side union of the per-type wire structs. Pointer fields
	// assert presence: ids, seq and distance are legitimately zero, so
	// the wire format must always carry them (no omitempty).
	type wireEvent struct {
		Type     string   `json:"type"`
		SubID    *int64   `json:"sub"`
		Seq      *uint64  `json:"seq"`
		ID       *int64   `json:"id"`
		Distance *float64 `json:"distance"`
		Cells    int      `json:"cells"`
	}
	readEvent := func() wireEvent {
		t.Helper()
		select {
		case ln, ok := <-lines:
			if !ok {
				t.Fatal("stream ended early")
			}
			var ev wireEvent
			if err := json.Unmarshal([]byte(ln), &ev); err != nil {
				t.Fatalf("bad event line %q: %v", ln, err)
			}
			return ev
		case <-time.After(20 * time.Second):
			t.Fatal("timed out waiting for an event")
		}
		panic("unreachable")
	}

	if ev := readEvent(); ev.Type != "subscribed" || ev.SubID == nil {
		t.Fatalf("first event = %+v, want subscribed handshake carrying \"sub\" (id 0 must serialize)", ev)
	}
	// Feed more stream: the archived target recurs across overlapping
	// windows, so a generous threshold must produce events.
	data := gen.GMTI(gen.GMTIConfig{Seed: 21}, 8000)
	if _, err := eng.PushBatch(data.Points, nil); err != nil {
		t.Fatal(err)
	}
	ev := readEvent()
	if ev.Type != "match" || ev.Cells == 0 {
		t.Fatalf("event = %+v, want a match with cells", ev)
	}
	if ev.ID == nil || ev.Distance == nil || ev.Seq == nil || ev.SubID == nil {
		t.Fatalf("match event %+v omits zero-valued fields; id/distance/seq/sub must always be present", ev)
	}

	// Server shutdown ends the stream (the connection would otherwise
	// never go idle).
	close(shutdown)
	deadline := time.After(20 * time.Second)
	for {
		select {
		case _, ok := <-lines:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream did not end at shutdown")
		}
	}
}
