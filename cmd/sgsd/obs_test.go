package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPMetrics: /metrics serves the Prometheus text exposition format
// and covers every instrumented subsystem — ingest, match, store, cache,
// subscriptions — plus the engine gauges bound at startup. The families
// are registered at init / server setup, so they must be present (if
// zero-valued) on the very first scrape.
func TestHTTPMetrics(t *testing.T) {
	eng := testEngine(t)
	registerEngineGauges(eng)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", metricsHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want text exposition format 0.0.4", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	// One family per subsystem the issue names, plus exposition-format
	// landmarks: HELP/TYPE headers, histogram bucket/sum/count series.
	for _, want := range []string{
		// ingest (testEngine pushed a batch, so these are live, not zero)
		"# TYPE sgs_ingest_tuples_total counter",
		"# TYPE sgs_ingest_discovery_seconds histogram",
		"sgs_ingest_apply_seconds_bucket{le=\"+Inf\"}",
		"sgs_ingest_emit_seconds_sum",
		"sgs_ingest_emit_seconds_count",
		// match
		"# TYPE sgs_match_queries_total counter",
		"# TYPE sgs_match_filter_seconds histogram",
		"sgs_match_refine_seconds_bucket",
		// store
		"# TYPE sgs_segstore_segment_scans_total counter",
		"sgs_segstore_record_loads_total{mode=\"mmap\"}",
		"sgs_archive_demote_flush_seconds_bucket",
		// cache
		"# TYPE sgs_sumcache_hits_total counter",
		"sgs_sumcache_evictions_total",
		// subscriptions
		"# TYPE sgs_sub_windows_total counter",
		"# TYPE sgs_sub_eval_seconds histogram",
		"sgs_sub_delivery_seconds_bucket",
		// engine gauges bound by registerEngineGauges
		"# TYPE sgs_base_clusters gauge",
		"sgs_store_segments{format=\"v3\"}",
		"sgs_sub_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// HELP precedes TYPE for each family, once.
	if strings.Count(body, "# HELP sgs_ingest_tuples_total ") != 1 {
		t.Error("sgs_ingest_tuples_total HELP line missing or repeated")
	}
	// The fixture archived clusters, so the base gauge must be nonzero.
	if strings.Contains(body, "sgs_base_clusters 0\n") {
		t.Error("sgs_base_clusters reads 0 after archiving fixture windows")
	}
}

// TestHTTPStatsFields: /stats carries the tier/cache/subscription fields
// monitoring relies on, including the ones folded in alongside /metrics
// (demotion queue depth, per-format segment counts, mapped segments,
// subscription queue depth).
func TestHTTPStatsFields(t *testing.T) {
	eng := testEngine(t)
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", statsHandler(eng))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body := get(t, srv, "/stats")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	for _, key := range []string{
		"clusters", "bytes", "mem_clusters", "mem_bytes",
		"demoting_clusters", "demoting_bytes", "demote_queue_batches",
		"segments", "segments_v1", "segments_v2", "segments_v3", "segments_mapped",
		"segment_clusters", "segment_bytes", "segment_dead", "segment_compactions",
		"cache_hits", "cache_misses", "cache_hit_ratio", "cache_evicted",
		"cache_entries", "cache_bytes", "cache_budget",
		"subscriptions", "sub_queue_depth", "sub_windows", "sub_candidates",
		"sub_events", "sub_eval_last_us", "sub_eval_total_us",
	} {
		if _, ok := st[key]; !ok {
			t.Errorf("/stats missing %q", key)
		}
	}
	if st["clusters"].(float64) == 0 {
		t.Error("/stats clusters reads 0 after archiving fixture windows")
	}
}

// TestHTTPMatchPhases: every /match response carries the query's phase
// trace — wall times per phase plus the pruning detail (segments probed
// vs zone-skipped, cache hits vs disk loads).
func TestHTTPMatchPhases(t *testing.T) {
	eng := testEngine(t)
	mux := http.NewServeMux()
	mux.HandleFunc("/match", matchHandler(eng, 0, testLogger()))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp0, err := srv.Client().Get(srv.URL + "/match?q=" + q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3 LIMIT 2"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp0.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp0.Body); err != nil {
		t.Fatal(err)
	}
	if resp0.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp0.StatusCode, body.String())
	}
	var resp struct {
		Refined int `json:"refined"`
		Phases  *struct {
			Trace     string `json:"trace"`
			FilterNS  int64  `json:"filter_ns"`
			RefineNS  int64  `json:"refine_ns"`
			OrderNS   int64  `json:"order_ns"`
			Probed    int    `json:"segments_probed"`
			Skipped   int    `json:"segments_skipped"`
			CacheHits int    `json:"cache_hits"`
			DiskLoads int    `json:"disk_loads"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /match JSON: %v", err)
	}
	if resp.Phases == nil {
		t.Fatal("/match response has no phases object")
	}
	if resp.Phases.FilterNS <= 0 || resp.Phases.RefineNS <= 0 || resp.Phases.OrderNS <= 0 {
		t.Errorf("phase timings not all positive: %+v", resp.Phases)
	}
	// All-memory fixture: every refined candidate is a memory-tier entry,
	// so no segment probes and no cache/disk attribution.
	if resp.Phases.Probed != 0 || resp.Phases.Skipped != 0 {
		t.Errorf("memory-only base reports segment probes: %+v", resp.Phases)
	}
	// The phase summary is derived from a span trace, whose id comes back
	// both in the body and as a W3C traceparent response header.
	if len(resp.Phases.Trace) != 32 {
		t.Errorf("phases trace id %q, want 32 hex chars", resp.Phases.Trace)
	}
	if tp := resp0.Header.Get("traceparent"); !strings.Contains(tp, resp.Phases.Trace) {
		t.Errorf("traceparent header %q does not carry trace id %q", tp, resp.Phases.Trace)
	}
}

// TestSlowQueryLog: a threshold every query exceeds makes the handler
// log the full phase breakdown; threshold 0 logs nothing.
func TestSlowQueryLog(t *testing.T) {
	eng := testEngine(t)
	for _, tc := range []struct {
		name    string
		slow    time.Duration // -slow-query value
		wantLog bool
	}{
		{name: "triggered", slow: time.Nanosecond, wantLog: true},
		{name: "disabled", slow: 0, wantLog: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var logBuf bytes.Buffer
			logger := slog.New(slog.NewTextHandler(&logBuf, nil))
			mux := http.NewServeMux()
			mux.HandleFunc("/match", matchHandler(eng, tc.slow, logger))
			srv := httptest.NewServer(mux)
			defer srv.Close()

			code, body := get(t, srv, "/match?q="+q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3 LIMIT 2"))
			if code != 200 {
				t.Fatalf("status %d: %s", code, body)
			}
			got := logBuf.String()
			if tc.wantLog {
				for _, want := range []string{"slow /match", "filter=", "refine=", "order=", "cache_hits=", "trace="} {
					if !strings.Contains(got, want) {
						t.Errorf("slow-query log %q missing %q", got, want)
					}
				}
			} else if strings.Contains(got, "slow /match") {
				t.Errorf("slow-query log fired with threshold 0: %q", got)
			}
		})
	}
}
