// Command sgsd runs a continuous clustering query (the paper's Figure 2)
// over a stream and emits one JSON line per window with the clusters in
// both representations. The stream comes from a CSV file or one of the
// built-in synthetic workloads.
//
// Usage:
//
//	sgsd -query "DETECT DensityBasedClusters f+s FROM s USING theta_range = 0.1 AND theta_cnt = 8 IN WINDOWS WITH win = 10000 AND slide = 1000" \
//	     -source stt -n 50000
//
//	sgsd -query "..." -source csv -csv data.csv -cols 0,1,2,3 -tscol 4
//
// With -archive FILE, every emitted summary is archived and the pattern
// base is saved on exit (inspect it with sgstool). With -store DIR the
// pattern base gains a disk tier: summaries evicted from memory (cap it
// with -store-mem) demote into immutable on-disk segments that stay
// matchable, so /match queries span the whole stream history while
// resident memory stays bounded; on clean exit the memory tier is
// flushed to the store, which then survives restarts. With -store-cache
// BYTES, decoded summaries of disk-resident clusters are cached (the
// budget is carved out of -store-mem), so repeated queries over the
// same history decode each summary once; /stats reports the hit ratio.
//
// With -batch N (N = the query's slide is a good choice), tuples are fed
// through the engine's batched ingest path, whose neighbor-discovery phase
// fans out across -workers goroutines; with -emit-workers M the output
// stage's per-cluster summary construction fans out across M goroutines.
// Output is identical to unbatched, sequential operation in every case.
//
// With -http ADDR, sgsd serves cluster matching queries over HTTP while
// the stream is still being ingested — the pattern base is
// snapshot-isolated, so analyst queries never stall archiving:
//
//	GET /match?q=GIVEN+DensityBasedCluster+3+SELECT+...   (target = archive id)
//	GET /subscribe?q=GIVEN+DensityBasedCluster+3+SELECT+...+FROM+Stream+...
//	GET /stats
//
// /match runs a one-shot FROM History query. /subscribe registers a
// standing FROM Stream query and holds the connection open, emitting one
// JSON event per matching cluster as windows are archived (NDJSON by
// default, Server-Sent Events with "Accept: text/event-stream"; add
// &track=1 for cluster evolution events on the same stream);
// evaluation is inverted and incremental, so each live subscription
// costs index probes per window, not a history scan. Error hygiene: a
// malformed query is a 400 carrying the parse error, an unknown archive
// id is a 404. The matcher's refine phase fans out across -match-workers
// goroutines and subscription evaluation across -sub-workers.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streamsum"
	"streamsum/internal/archive"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/obs"
	"streamsum/internal/sgs"
	"streamsum/internal/stream"
	"streamsum/internal/trace"
)

type cellJSON struct {
	Loc        []int32 `json:"loc"`
	Population uint32  `json:"pop"`
	Core       bool    `json:"core"`
	Conns      int     `json:"conns"`
}

type clusterJSON struct {
	ID      int64      `json:"id"`
	Size    int        `json:"size"`
	Cores   int        `json:"cores"`
	Members []int64    `json:"members,omitempty"`
	Cells   []cellJSON `json:"sgs,omitempty"`
}

type windowJSON struct {
	Window   int64         `json:"window"`
	Clusters []clusterJSON `json:"clusters"`
}

func main() {
	queryStr := flag.String("query", "", "DETECT query (Figure 2 syntax); required")
	source := flag.String("source", "stt", "stream source: stt, gmti or csv")
	n := flag.Int("n", 50000, "tuples to generate (stt/gmti sources)")
	seed := flag.Int64("seed", 1, "generator seed")
	csvPath := flag.String("csv", "", "CSV file (csv source)")
	cols := flag.String("cols", "0,1", "coordinate columns (csv source)")
	tsCol := flag.Int("tscol", -1, "timestamp column, -1 = row number (csv source)")
	members := flag.Bool("members", false, "include member ids in output")
	archivePath := flag.String("archive", "", "save the pattern base to this file on exit")
	logPath := flag.String("log", "", "append summaries to this crash-safe log as windows complete")
	workers := flag.Int("workers", 0, "parallel neighbor-discovery workers for batched ingest (0 = one per CPU, 1 = sequential)")
	batch := flag.Int("batch", 0, "ingest batch size; 0 pushes tuple-by-tuple, otherwise tuples are fed through PushBatch in batches of this size (the query's slide is a good value)")
	emitWorkers := flag.Int("emit-workers", 0, "parallel output-stage workers for per-cluster summary construction (0 = one per CPU, 1 = sequential); windows are byte-identical at every setting")
	matchWorkers := flag.Int("match-workers", 0, "parallel matching workers for the filter and refine phases of /match queries (0 = one per CPU, 1 = sequential); results are byte-identical at every setting")
	subWorkers := flag.Int("sub-workers", 0, "parallel standing-query evaluation workers for /subscribe (0 = one per CPU, 1 = sequential); events are byte-identical at every setting")
	httpAddr := flag.String("http", "", "serve matching queries over HTTP on this address (e.g. :8080) concurrently with ingestion; implies archiving")
	storePath := flag.String("store", "", "attach a disk tier to the pattern base under this directory; implies archiving. Evicted summaries demote into on-disk segments (inspect with sgstool inspect), stay matchable, and survive restarts — the memory tier is flushed to the store on clean exit")
	storeMem := flag.Int("store-mem", 0, "memory-tier byte budget for the pattern base (requires -store); overflow demotes the oldest summaries to disk. 0 = no byte bound")
	storeCache := flag.Int("store-cache", 0, "decoded-summary cache budget in bytes (requires -store); carved out of -store-mem when both are set, so it must be smaller. Repeat queries over disk-resident summaries then decode once per residency. 0 = off")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the -http server")
	slowQuery := flag.Duration("slow-query", 0, "log any /match query or standing-query window evaluation whose wall time meets this threshold, with a per-phase breakdown (e.g. 50ms); 0 = off")
	logFormat := flag.String("log-format", "text", "structured log format: text or json (logs go to stderr)")
	traceCap := flag.Int("trace", 32, "flight-recorder capacity: completed traces retained per pipeline category, browsable at /debug/traces on the -http server; 0 disables recording (span tracing on the hot paths then costs nothing)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `sgsd runs a continuous clustering query (the paper's Figure 2) over a
stream and emits one JSON line per window with the clusters in both
representations (full member list and Skeletal Grid Summarization).

The stream comes from a built-in synthetic workload (-source stt or gmti)
or a CSV file (-source csv with -csv, -cols, -tscol). With -archive FILE
every emitted summary is archived and the pattern base is saved on exit
(inspect it with sgstool). With -log FILE summaries are appended to a
crash-safe log as windows complete. With -store DIR the pattern base
tiers to disk: summaries evicted from the in-memory tier (bounded by
-store-mem bytes) demote into on-disk segments that remain fully
matchable, so the archived history outgrows RAM while /match latency
and resident memory stay flat (inspect segments with sgstool inspect).

With -http ADDR sgsd additionally serves cluster matching queries (the
paper's Figure 3 syntax, GIVEN target = an archive id) over HTTP while
ingesting — the pattern base is snapshot-isolated, so analyst traffic
never stalls the stream:

  curl 'localhost:8080/match?q=GIVEN+DensityBasedCluster+3+SELECT+DensityBasedClusters+FROM+History+WHERE+Distance+<=+0.2'

Performance knobs: -batch N feeds tuples through the batched ingest path
(parallel neighbor discovery across -workers goroutines; N = the query's
slide amortizes best), -emit-workers M fans the output stage's
per-cluster summary construction across M goroutines, and -match-workers
K fans the matcher's refine phase across K goroutines. All default to one
worker per CPU and never change the output: windows and match results are
byte-identical to sequential operation.

Example:

  sgsd -query "DETECT DensityBasedClusters f+s FROM s USING theta_range = 0.1 AND theta_cnt = 8 IN WINDOWS WITH win = 10000 AND slide = 1000" \
       -source stt -n 50000 -batch 1000 -workers 4 -emit-workers 4 -http :8080

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	baseLogger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sgsd: %v\n", err)
		os.Exit(2)
	}
	logger := baseLogger.With("component", "sgsd")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	trace.Default.SetCapacity(*traceCap)

	if *queryStr == "" {
		fatal("-query is required")
	}

	var src stream.Source
	var dim int
	switch *source {
	case "stt":
		b := gen.STT(gen.STTConfig{Seed: *seed}, *n)
		src = stream.FromSlice(b.Points, b.TS)
		dim = 4
	case "gmti":
		b := gen.GMTI(gen.GMTIConfig{Seed: *seed}, *n)
		src = stream.FromSlice(b.Points, b.TS)
		dim = 2
	case "csv":
		if *csvPath == "" {
			fatal("csv source requires -csv")
		}
		var colIdx []int
		for _, c := range strings.Split(*cols, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				fatal("bad -cols", "err", err)
			}
			colIdx = append(colIdx, v)
		}
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal("opening csv source", "err", err)
		}
		defer f.Close()
		src = stream.FromCSV(f, colIdx, *tsCol)
		dim = len(colIdx)
	default:
		fatal("unknown source", "source", *source)
	}

	opts, err := streamsum.OptionsFromQuery(*queryStr, dim)
	if err != nil {
		fatal("parsing -query", "err", err)
	}
	if *archivePath != "" || *httpAddr != "" || *storePath != "" {
		opts.Archive = &streamsum.ArchiveOptions{}
	}
	opts.Workers = *workers
	opts.EmitWorkers = *emitWorkers
	opts.MatchWorkers = *matchWorkers
	opts.SubWorkers = *subWorkers
	opts.StorePath = *storePath
	opts.StoreMaxMemBytes = *storeMem
	opts.SummaryCacheBytes = *storeCache
	opts.SlowQuery = *slowQuery
	opts.Logger = baseLogger
	eng, err := streamsum.New(opts)
	if err != nil {
		fatal("starting engine", "err", err)
	}

	var srv *http.Server
	// Closed before srv.Shutdown so open /subscribe streams end — an SSE
	// connection never goes idle on its own, and Shutdown waits for idle.
	shutdownCh := make(chan struct{})
	if *httpAddr != "" {
		// The pattern base is snapshot-isolated, so these handlers run
		// concurrently with the ingest loop below without coordination.
		mux := http.NewServeMux()
		mux.HandleFunc("/match", matchHandler(eng, *slowQuery, logger))
		mux.HandleFunc("/subscribe", subscribeHandler(eng, shutdownCh))
		mux.HandleFunc("/stats", statsHandler(eng))
		registerEngineGauges(eng)
		registerBuildGauges()
		mux.HandleFunc("/metrics", metricsHandler())
		mux.HandleFunc("/debug/traces", tracesHandler())
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal("binding -http listener", "addr", *httpAddr, "err", err)
		}
		srv = &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fatal("http server failed", "err", err)
			}
		}()
		logger.Info("serving matching queries", "addr", ln.Addr().String())
	}

	var appender *archive.Appender
	if *logPath != "" {
		lf, err := os.Create(*logPath)
		if err != nil {
			fatal("creating summary log", "path", *logPath, "err", err)
		}
		defer lf.Close()
		appender, err = archive.NewAppender(lf)
		if err != nil {
			fatal("starting summary log", "path", *logPath, "err", err)
		}
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)

	emit := func(w *streamsum.WindowResult) {
		if appender != nil {
			for _, c := range w.Clusters {
				if c.Summary == nil {
					continue
				}
				if err := appender.Append(c.Summary); err != nil {
					fatal("appending to summary log", "err", err)
				}
			}
			if err := appender.Flush(); err != nil { // crash-consistency point
				fatal("flushing summary log", "err", err)
			}
		}
		wj := windowJSON{Window: w.Window, Clusters: make([]clusterJSON, 0, len(w.Clusters))}
		for _, c := range w.Clusters {
			cj := clusterJSON{ID: c.ID, Size: len(c.Members), Cores: len(c.Cores)}
			if *members {
				cj.Members = c.Members
			}
			if c.Summary != nil {
				for i := range c.Summary.Cells {
					cell := &c.Summary.Cells[i]
					cj.Cells = append(cj.Cells, cellJSON{
						Loc:        cell.Coord.Slice(),
						Population: cell.Population,
						Core:       cell.Status == sgs.CoreCell,
						Conns:      len(cell.Conns),
					})
				}
			}
			wj.Clusters = append(wj.Clusters, cj)
		}
		if err := enc.Encode(wj); err != nil {
			fatal("writing window output", "err", err)
		}
	}

	tuples := 0
	if *batch > 0 {
		// Batched ingest: accumulate tuples and feed them through the
		// two-phase (parallel discovery + sequential apply) pipeline.
		pts := make([]geom.Point, 0, *batch)
		tss := make([]int64, 0, *batch)
		push := func() {
			if len(pts) == 0 {
				return
			}
			results, err := eng.PushBatch(pts, tss)
			// Windows completed before a mid-batch error are real output
			// (every earlier tuple was fully applied); emit them before
			// failing, exactly as the unbatched loop would have.
			for _, w := range results {
				emit(w)
			}
			if err != nil {
				fatal("batched ingest failed", "err", err)
			}
			tuples += len(pts)
			pts, tss = pts[:0], tss[:0]
		}
		for {
			t, ok := src.Next()
			if !ok {
				break
			}
			pts = append(pts, geom.Point(t.P))
			tss = append(tss, t.TS)
			if len(pts) == *batch {
				push()
			}
		}
		push()
	} else {
		for {
			t, ok := src.Next()
			if !ok {
				break
			}
			results, err := eng.Push(geom.Point(t.P), t.TS)
			if err != nil {
				fatal("ingest failed", "err", err)
			}
			tuples++
			for _, w := range results {
				emit(w)
			}
		}
	}
	if cs, ok := src.(*stream.CSVSource); ok && cs.Err() != nil {
		fatal("reading csv source", "err", cs.Err())
	}
	w, err := eng.Flush()
	if err != nil {
		fatal("flushing final window", "err", err)
	}
	emit(w)

	// Shutdown ordering: drain the HTTP server before touching the
	// pattern base's persistence. A /match in flight at interrupt time
	// holds a snapshot into the base (and, with -store, into its segment
	// files), so the final Save and the store teardown must wait until
	// Shutdown has returned — closing first would race the last queries
	// against the final flush. The drain has no deadline (a deadline
	// that fires would re-create exactly that race); a second interrupt
	// force-exits without the final store flush.
	if srv != nil {
		logger.Info("stream complete; still serving matching queries (interrupt to exit)", "tuples", tuples)
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		go func() {
			<-sig
			logger.Warn("second interrupt; exiting without draining or flushing the store")
			os.Exit(1)
		}()
		// End the standing-query streams first: their connections never go
		// idle on their own, and Shutdown's drain waits for idle.
		close(shutdownCh)
		if err := srv.Shutdown(context.Background()); err != nil {
			logger.Warn("http drain failed", "err", err)
		}
	}

	if *archivePath != "" {
		f, err := os.Create(*archivePath)
		if err != nil {
			fatal("creating archive file", "path", *archivePath, "err", err)
		}
		if err := eng.PatternBase().Save(f); err != nil {
			fatal("saving pattern base", "err", err)
		}
		if err := f.Close(); err != nil {
			fatal("closing archive file", "err", err)
		}
		logger.Info("pattern base archived",
			"tuples", tuples, "clusters", eng.PatternBase().Len(),
			"path", *archivePath, "bytes", eng.PatternBase().Bytes())
	}

	// With -store this demotes the memory tier as one final segment and
	// stops the compactor; the store directory is then a complete record
	// of the archived history.
	if err := eng.Close(); err != nil {
		fatal("closing engine", "err", err)
	}
	if *storePath != "" {
		ts := eng.PatternBase().TierStats()
		logger.Info("store flushed",
			"path", *storePath, "clusters", ts.SegEntries,
			"segments", ts.Segments, "bytes", ts.SegBytes)
	}
}

// newLogger builds the daemon's structured logger: text or JSON handler
// on stderr (stdout carries the window output stream, so logs must not
// share it). Callers tag it per component — the engine's subsystems add
// component=archive / component=sub themselves.
func newLogger(format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
	return slog.New(h), nil
}

type matchRespJSON struct {
	Candidates int             `json:"candidates"`
	Refined    int             `json:"refined"`
	Phases     matchPhasesJSON `json:"phases"`
	Matches    []matchJSON     `json:"matches"`
}

// matchPhasesJSON is the per-query trace summary: phase wall times plus
// the pruning detail that explains them (zone-skipped segments never
// paid a probe; cache hits never paid a disk read). It is derived from
// the query's span tree; Trace is the trace id, retrievable at
// /debug/traces?trace=ID while the flight recorder still holds it.
type matchPhasesJSON struct {
	Trace           string `json:"trace"`
	FilterNS        int64  `json:"filter_ns"`
	RefineNS        int64  `json:"refine_ns"`
	OrderNS         int64  `json:"order_ns"`
	SegmentsProbed  int    `json:"segments_probed"`
	SegmentsSkipped int    `json:"segments_skipped"`
	CacheHits       int    `json:"cache_hits"`
	DiskLoads       int    `json:"disk_loads"`
}

// phasesFromTrace flattens a /match span tree into the response's phase
// summary. Missing spans (a query that errored mid-flight) leave zeros.
func phasesFromTrace(td trace.TraceData) matchPhasesJSON {
	p := matchPhasesJSON{Trace: td.TraceID}
	if sd := td.Span("filter"); sd != nil {
		p.FilterNS = sd.DurNS
		probed, _ := sd.Int("segments_probed")
		skipped, _ := sd.Int("segments_skipped")
		p.SegmentsProbed, p.SegmentsSkipped = int(probed), int(skipped)
	}
	if sd := td.Span("refine"); sd != nil {
		p.RefineNS = sd.DurNS
		hits, _ := sd.Int("cache_hits")
		loads, _ := sd.Int("disk_loads")
		p.CacheHits, p.DiskLoads = int(hits), int(loads)
	}
	if sd := td.Span("order"); sd != nil {
		p.OrderNS = sd.DurNS
	}
	return p
}

type matchJSON struct {
	ID       int64   `json:"id"`
	Distance float64 `json:"distance"`
	Window   int64   `json:"window"`
	Cells    int     `json:"cells"`
}

// resolveTarget resolves a query's GIVEN reference as an archive id
// against the live pattern base — the shared preamble of /match and
// /subscribe. On failure it writes the response (400 for a non-integer
// reference, 404 for an unknown id) and reports ok=false.
func resolveTarget(eng *streamsum.Engine, w http.ResponseWriter, ref string) (*streamsum.ArchiveEntry, bool) {
	id, err := strconv.ParseInt(ref, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("target %q must be an archive id", ref), http.StatusBadRequest)
		return nil, false
	}
	e := eng.PatternBase().Get(id)
	if e == nil {
		http.Error(w, fmt.Sprintf("no archived cluster %d", id), http.StatusNotFound)
		return nil, false
	}
	return e, true
}

// startHTTPTrace begins the span trace for one HTTP-driven operation:
// recorded on the flight recorder when it is enabled, standalone (span
// tree still built, nothing retained) otherwise, so the response's phase
// breakdown is always available. An incoming W3C traceparent header
// supplies the trace id, letting callers correlate sgsd's trace with
// their own telemetry.
func startHTTPTrace(r *http.Request, cat trace.Category, name string) *trace.Trace {
	tid, _, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
	if trace.Default.Enabled() {
		return trace.Default.StartID(cat, name, tid)
	}
	return trace.New(cat, name, tid)
}

// matchHandler executes a Figure 3 matching query against the live
// pattern base. The query's GIVEN reference is resolved as an archive
// id, so analysts ask "what looks like cluster 17?" while the stream is
// still running. Like sgstool match, the target's own archived copy is
// excluded from the results rather than consuming LIMIT slots. Every
// response carries the query's phase breakdown (derived from its span
// trace) and a traceparent header echoing the trace id; a query at or
// above the slow threshold (when positive) is additionally logged with
// it.
func matchHandler(eng *streamsum.Engine, slow time.Duration, logger *slog.Logger) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		qs := r.URL.Query().Get("q")
		if qs == "" {
			http.Error(w, "missing q parameter (a GIVEN ... SELECT ... matching query)", http.StatusBadRequest)
			return
		}
		mo, ref, err := streamsum.MatchOptionsFromQuery(qs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		e, ok := resolveTarget(eng, w, ref)
		if !ok {
			return
		}
		id := e.ID
		mo.Target = e.Summary
		limit := mo.Limit
		if limit > 0 {
			mo.Limit = limit + 1 // the target itself matches at distance 0
		}
		tr := startHTTPTrace(r, trace.Match, "http.match")
		tr.Root().SetInt("target", id)
		mo.Trace = tr
		start := time.Now()
		ms, stats, err := eng.Match(mo)
		if err != nil {
			tr.Root().SetStr("error", err.Error())
			tr.Finish()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		root := tr.Root()
		root.SetInt("candidates", int64(stats.IndexCandidates))
		root.SetInt("matches", int64(len(ms)))
		tid := tr.ID()
		td, _ := tr.Finish()
		phases := phasesFromTrace(td)
		if elapsed := time.Since(start); slow > 0 && elapsed >= slow {
			logger.Warn("slow /match",
				"target", id, "took", elapsed, "threshold", slow,
				"filter", time.Duration(phases.FilterNS),
				"refine", time.Duration(phases.RefineNS),
				"order", time.Duration(phases.OrderNS),
				"segments_probed", phases.SegmentsProbed,
				"segments_skipped", phases.SegmentsSkipped,
				"cache_hits", phases.CacheHits,
				"disk_loads", phases.DiskLoads,
				"candidates", stats.IndexCandidates,
				"refined", stats.Refined,
				"trace", td.TraceID)
		}
		resp := matchRespJSON{
			Candidates: stats.IndexCandidates,
			Refined:    stats.Refined,
			Phases:     phases,
			Matches:    make([]matchJSON, 0, len(ms)),
		}
		for _, m := range ms {
			if m.ID == id {
				continue
			}
			if limit > 0 && len(resp.Matches) == limit {
				break
			}
			resp.Matches = append(resp.Matches, matchJSON{
				ID: m.ID, Distance: m.Distance,
				Window: m.Entry.Summary.Window, Cells: m.Entry.Summary.NumCells(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("traceparent", trace.Traceparent(tid, 1))
		_ = json.NewEncoder(w).Encode(resp)
	}
}

// The /subscribe stream's event shapes, one struct per event type so
// every field a type carries is always present on the wire (ids,
// sequence numbers and distances are all legitimately zero — omitempty
// would erase them for non-Go consumers). The first line of every
// stream is the "subscribed" handshake with the subscription id.
type subHandshakeJSON struct {
	Type  string `json:"type"` // "subscribed"
	SubID int64  `json:"sub"`
}

type subMatchJSON struct {
	Type     string  `json:"type"` // "match"
	SubID    int64   `json:"sub"`
	Seq      uint64  `json:"seq"`
	ID       int64   `json:"id"`
	Distance float64 `json:"distance"`
	Window   int64   `json:"window"`
	Cells    int     `json:"cells"`
}

type subEvolutionJSON struct {
	Type    string  `json:"type"` // "evolution"
	SubID   int64   `json:"sub"`
	Seq     uint64  `json:"seq"`
	Kind    string  `json:"kind"`
	TrackID int64   `json:"track"`
	Preds   []int64 `json:"predecessors,omitempty"`
}

// subscribeHandler registers a standing matching query (Figure 3 with
// FROM Stream, target = archive id) and streams its events until the
// client disconnects or the server shuts down. Events are NDJSON by
// default, SSE frames when the client sends Accept: text/event-stream.
// A malformed or non-standing query is a 400 with the parse error; an
// unknown archive id is a 404.
func subscribeHandler(eng *streamsum.Engine, shutdown <-chan struct{}) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		qs := r.URL.Query().Get("q")
		if qs == "" {
			http.Error(w, "missing q parameter (a GIVEN ... FROM Stream ... standing query)", http.StatusBadRequest)
			return
		}
		so, ref, err := streamsum.SubscribeOptionsFromQuery(qs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		e, ok := resolveTarget(eng, w, ref)
		if !ok {
			return
		}
		so.Target = e.Summary
		if tv := r.URL.Query().Get("track"); tv != "" {
			track, err := strconv.ParseBool(tv)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad track parameter %q: want a boolean", tv), http.StatusBadRequest)
				return
			}
			so.Track = track
		}
		s, err := eng.Subscribe(so)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer eng.Unsubscribe(s)

		// One trace spans the connection's lifetime: registration through
		// the last delivered event. The flight recorder only sees it once
		// the client disconnects (traces commit at Finish).
		tr := startHTTPTrace(r, trace.SubEval, "http.subscribe")
		tr.Root().SetInt("sub", s.ID())
		delivered := int64(0)
		defer func() {
			tr.Root().SetInt("events", delivered)
			tr.Finish()
		}()

		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("traceparent", trace.Traceparent(tr.ID(), 1))
		emit := func(ev any) bool {
			b, err := json.Marshal(ev)
			if err != nil {
				return false
			}
			if sse {
				_, err = fmt.Fprintf(w, "data: %s\n\n", b)
			} else {
				_, err = fmt.Fprintf(w, "%s\n", b)
			}
			if err != nil {
				return false
			}
			flusher.Flush()
			return true
		}
		if !emit(subHandshakeJSON{Type: "subscribed", SubID: s.ID()}) {
			return
		}
		for {
			select {
			case ev, ok := <-s.Events():
				if !ok {
					return
				}
				var out any
				switch ev.Kind {
				case streamsum.SubMatch:
					out = subMatchJSON{
						Type: "match", SubID: ev.SubID, Seq: ev.Seq,
						ID: ev.EntryID, Distance: ev.Distance,
						Window: ev.Entry.Summary.Window, Cells: ev.Entry.Summary.NumCells(),
					}
				case streamsum.SubEvolution:
					out = subEvolutionJSON{
						Type: "evolution", SubID: ev.SubID, Seq: ev.Seq,
						Kind: ev.Track.Kind.String(), TrackID: ev.Track.TrackID,
						Preds: ev.Track.Predecessors,
					}
				default:
					continue
				}
				if !emit(out) {
					return
				}
				delivered++
			case <-r.Context().Done():
				return
			case <-shutdown:
				return
			}
		}
	}
}

// registerEngineGauges binds this engine's instance state — base sizes,
// tier occupancy, cache budget, standing-query registry — into the
// process-wide metrics registry as gauge funcs read at scrape time.
// Registration replaces any previous binding, so the gauges always
// describe the engine currently serving (obs.RegisterGaugeFunc's
// replace semantics exist for exactly this).
func registerEngineGauges(eng *streamsum.Engine) {
	base := eng.PatternBase()
	obs.RegisterGaugeFunc("sgs_base_clusters",
		"Clusters in the pattern base (memory + disk tiers).",
		func() float64 { return float64(base.Len()) })
	obs.RegisterGaugeFunc("sgs_base_bytes",
		"Encoded summary bytes in the pattern base (memory + disk tiers).",
		func() float64 { return float64(base.Bytes()) })
	obs.RegisterGaugeFunc("sgs_store_mem_entries",
		"Summaries resident in the memory tier.",
		func() float64 { return float64(base.TierStats().MemEntries) })
	obs.RegisterGaugeFunc("sgs_store_mem_bytes",
		"Encoded bytes resident in the memory tier.",
		func() float64 { return float64(base.TierStats().MemBytes) })
	obs.RegisterGaugeFunc("sgs_store_demote_queue_batches",
		"Demotion batches queued or in flight to the disk tier.",
		func() float64 { return float64(base.TierStats().DemotingBatches) })
	obs.RegisterGaugeFunc("sgs_store_demote_queue_entries",
		"Summaries queued or in flight to the disk tier.",
		func() float64 { return float64(base.TierStats().DemotingEntries) })
	obs.RegisterGaugeFunc("sgs_store_segments",
		"Live on-disk segments by format version.",
		func() float64 { return float64(base.TierStats().SegmentsV1) }, obs.L{Key: "format", Value: "v1"})
	obs.RegisterGaugeFunc("sgs_store_segments",
		"Live on-disk segments by format version.",
		func() float64 { return float64(base.TierStats().SegmentsV2) }, obs.L{Key: "format", Value: "v2"})
	obs.RegisterGaugeFunc("sgs_store_segments",
		"Live on-disk segments by format version.",
		func() float64 { return float64(base.TierStats().SegmentsV3) }, obs.L{Key: "format", Value: "v3"})
	obs.RegisterGaugeFunc("sgs_store_segments_mapped",
		"On-disk segments currently served through mmap (the rest use pread).",
		func() float64 { return float64(base.TierStats().SegmentsMapped) })
	obs.RegisterGaugeFunc("sgs_store_segment_entries",
		"Summaries resident in the disk tier.",
		func() float64 { return float64(base.TierStats().SegEntries) })
	obs.RegisterGaugeFunc("sgs_store_segment_bytes",
		"Segment file bytes in the disk tier.",
		func() float64 { return float64(base.TierStats().SegBytes) })
	obs.RegisterGaugeFunc("sgs_sumcache_entries",
		"Decoded summaries resident in the summary cache.",
		func() float64 { return float64(base.TierStats().CacheEntries) })
	obs.RegisterGaugeFunc("sgs_sumcache_bytes",
		"Approximate bytes held by the summary cache.",
		func() float64 { return float64(base.TierStats().CacheBytes) })
	obs.RegisterGaugeFunc("sgs_sumcache_budget_bytes",
		"Summary cache byte budget (0 = cache disabled).",
		func() float64 { return float64(base.TierStats().CacheBudget) })
	obs.RegisterGaugeFunc("sgs_sub_subscriptions",
		"Standing-query subscriptions currently registered.",
		func() float64 { return float64(eng.SubscriptionStats().Subscriptions) })
	obs.RegisterGaugeFunc("sgs_sub_queue_depth",
		"Subscription events enqueued but not yet handed to a consumer channel.",
		func() float64 { return float64(eng.SubscriptionQueueDepth()) })
}

// metricsHandler serves the process-wide metrics registry in the
// Prometheus text exposition format.
func metricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default.WritePrometheus(w)
	}
}

// traceSummaryJSON is one flight-recorder trace in the /debug/traces
// listing; fetch the full span tree with ?trace=ID.
type traceSummaryJSON struct {
	Trace    string `json:"trace"`
	Category string `json:"category"`
	Name     string `json:"name"`
	StartNS  int64  `json:"start_unix_ns"`
	DurNS    int64  `json:"dur_ns"`
	Spans    int    `json:"spans"`
	Dropped  int    `json:"dropped_spans,omitempty"`
}

// tracesHandler serves the flight recorder. Without parameters it lists
// every retained trace (newest first within each category) as JSON
// summaries; ?category=NAME restricts to one pipeline category and
// ?trace=ID exports one trace's spans as NDJSON, one span per line, for
// piping into jq or a trace viewer.
func tracesHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("trace"); id != "" {
			td, ok := trace.Default.Find(id)
			if !ok {
				http.Error(w, fmt.Sprintf("no retained trace %q (the flight recorder keeps the last %d per category)", id, trace.Default.Capacity()), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc := json.NewEncoder(w)
			for _, sd := range td.Spans {
				_ = enc.Encode(sd)
			}
			return
		}
		var tds []trace.TraceData
		if c := r.URL.Query().Get("category"); c != "" {
			found := false
			for _, cat := range trace.Categories() {
				if cat.String() == c {
					tds = trace.Default.Traces(cat)
					found = true
					break
				}
			}
			if !found {
				http.Error(w, fmt.Sprintf("unknown category %q", c), http.StatusBadRequest)
				return
			}
		} else {
			tds = trace.Default.All()
		}
		out := make([]traceSummaryJSON, 0, len(tds))
		for _, td := range tds {
			out = append(out, traceSummaryJSON{
				Trace:    td.TraceID,
				Category: td.Category,
				Name:     td.Name,
				StartNS:  td.StartNS,
				DurNS:    td.DurNS,
				Spans:    len(td.Spans),
				Dropped:  td.Dropped,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	}
}

// processStart anchors the uptime gauges; package initialization runs
// before main, so this is as close to process birth as Go can observe.
var processStart = time.Now()

// buildIdentity reports the running binary's Go toolchain version and
// VCS revision ("unknown" outside a VCS checkout, e.g. module-cache
// builds or docker COPY contexts).
func buildIdentity() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	return goVersion, revision
}

// registerBuildGauges exposes the binary's build and process identity:
// which code is running (go version + VCS revision, as labels on a
// constant-1 info gauge, the Prometheus convention) and since when
// (start time + derived uptime).
func registerBuildGauges() {
	goVersion, revision := buildIdentity()
	obs.RegisterGaugeFunc("sgs_build_info",
		"Build identity; the value is always 1, the identity is in the labels.",
		func() float64 { return 1 },
		obs.L{Key: "go_version", Value: goVersion}, obs.L{Key: "revision", Value: revision})
	obs.RegisterGaugeFunc("sgs_process_start_time_seconds",
		"Unix time the process started.",
		func() float64 { return float64(processStart.UnixNano()) / 1e9 })
	obs.RegisterGaugeFunc("sgs_process_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(processStart).Seconds() })
}

// cacheHitRatio is the decoded-summary cache's hit fraction, 0 when the
// cache is disabled or untouched.
func cacheHitRatio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// statsHandler reports the pattern base's current size (split across the
// memory and disk tiers), the decoded-summary cache, the standing-query
// registry's activity, and the process's build and runtime identity.
func statsHandler(eng *streamsum.Engine) http.HandlerFunc {
	goVersion, revision := buildIdentity()
	return func(w http.ResponseWriter, r *http.Request) {
		base := eng.PatternBase()
		ts := base.TierStats()
		ss := eng.SubscriptionStats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"go_version":           goVersion,
			"revision":             revision,
			"start_time_unix":      processStart.Unix(),
			"uptime_seconds":       time.Since(processStart).Seconds(),
			"trace_capacity":       trace.Default.Capacity(),
			"clusters":             base.Len(),
			"bytes":                base.Bytes(),
			"mem_clusters":         ts.MemEntries,
			"mem_bytes":            ts.MemBytes,
			"demoting_clusters":    ts.DemotingEntries,
			"demoting_bytes":       ts.DemotingBytes,
			"demote_queue_batches": ts.DemotingBatches,
			"segments":             ts.Segments,
			"segments_v1":          ts.SegmentsV1,
			"segments_v2":          ts.SegmentsV2,
			"segments_v3":          ts.SegmentsV3,
			"segments_mapped":      ts.SegmentsMapped,
			"segment_clusters":     ts.SegEntries,
			"segment_bytes":        ts.SegBytes,
			"segment_dead":         ts.SegDead,
			"segment_compactions":  ts.Compactions,
			"cache_hits":           ts.CacheHits,
			"cache_misses":         ts.CacheMisses,
			"cache_hit_ratio":      cacheHitRatio(ts.CacheHits, ts.CacheMisses),
			"cache_evicted":        ts.CacheEvicted,
			"cache_entries":        ts.CacheEntries,
			"cache_bytes":          ts.CacheBytes,
			"cache_budget":         ts.CacheBudget,
			"subscriptions":        ss.Subscriptions,
			"sub_queue_depth":      eng.SubscriptionQueueDepth(),
			"sub_windows":          ss.Windows,
			"sub_candidates":       ss.Candidates,
			"sub_events":           ss.Events,
			"sub_eval_last_us":     ss.LastEval.Microseconds(),
			"sub_eval_total_us":    ss.TotalEval.Microseconds(),
		})
	}
}
