package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"streamsum"
	"streamsum/internal/gen"
	"streamsum/internal/trace"
)

// withRecorder enables the process flight recorder for one test and
// restores the previous capacity (tests in this package share
// trace.Default, so leaking an enabled recorder would change what the
// other tests measure).
func withRecorder(t *testing.T, capacity int) {
	t.Helper()
	old := trace.Default.Capacity()
	trace.Default.SetCapacity(capacity)
	t.Cleanup(func() { trace.Default.SetCapacity(old) })
}

// wellFormedTrace asserts the span tree invariants on a retained trace:
// unique span ids, a root with id 1 / parent 0, and every non-root
// parent id resolving to an earlier span.
func wellFormedTrace(t *testing.T, td trace.TraceData) {
	t.Helper()
	if len(td.Spans) == 0 {
		t.Fatalf("trace %s has no spans", td.TraceID)
	}
	ids := make(map[uint32]bool, len(td.Spans))
	for _, sd := range td.Spans {
		if ids[sd.ID] {
			t.Errorf("trace %s: duplicate span id %d", td.TraceID, sd.ID)
		}
		ids[sd.ID] = true
	}
	if td.Spans[0].ID != 1 || td.Spans[0].Parent != 0 {
		t.Errorf("trace %s: root span is %d/%d, want 1/0", td.TraceID, td.Spans[0].ID, td.Spans[0].Parent)
	}
	for _, sd := range td.Spans[1:] {
		if !ids[sd.Parent] {
			t.Errorf("trace %s: span %d (%s) has unresolved parent %d", td.TraceID, sd.ID, sd.Name, sd.Parent)
		}
	}
}

// TestHTTPTraceRetrieval: a /match request carrying a W3C traceparent
// header produces a trace under that id, retrievable at /debug/traces
// with the filter/refine/order phase spans and one child span per
// probed shard.
func TestHTTPTraceRetrieval(t *testing.T) {
	withRecorder(t, 8)
	eng := testEngine(t)
	mux := http.NewServeMux()
	mux.HandleFunc("/match", matchHandler(eng, 0, testLogger()))
	mux.HandleFunc("/debug/traces", tracesHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	req, err := http.NewRequest("GET", srv.URL+"/match?q="+q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3 LIMIT 2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+traceID+"-b7ad6b7169203331-01")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/match status %d", resp.StatusCode)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, traceID) {
		t.Fatalf("response traceparent %q does not continue trace %s", tp, traceID)
	}

	// The trace is retained under the caller's id and its span tree is
	// well-formed.
	td, ok := trace.Default.Find(traceID)
	if !ok {
		t.Fatalf("trace %s not retained by the flight recorder", traceID)
	}
	wellFormedTrace(t, td)
	var filterID uint32
	for _, name := range []string{"filter", "refine", "order"} {
		sd := td.Span(name)
		if sd == nil {
			t.Fatalf("trace %s has no %q span", traceID, name)
		}
		if name == "filter" {
			filterID = sd.ID
		}
	}
	shards := td.Children(filterID)
	if len(shards) == 0 {
		t.Error("filter span has no per-shard child spans")
	}

	// The same trace exports over HTTP as NDJSON, one span per line.
	code, body := get(t, srv, "/debug/traces?trace="+traceID)
	if code != 200 {
		t.Fatalf("/debug/traces?trace= status %d: %s", code, body)
	}
	var lines int
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var sd struct {
			ID   uint32 `json:"id"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &sd); err != nil {
			t.Fatalf("bad NDJSON span line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != len(td.Spans) {
		t.Errorf("NDJSON export has %d spans, recorder has %d", lines, len(td.Spans))
	}

	// The listing carries it too, and category filtering works.
	code, body = get(t, srv, "/debug/traces?category=match")
	if code != 200 || !strings.Contains(body, traceID) {
		t.Errorf("/debug/traces?category=match (status %d) missing trace %s", code, traceID)
	}
	if code, _ := get(t, srv, "/debug/traces?category=bogus"); code != 400 {
		t.Errorf("unknown category status %d, want 400", code)
	}
	if code, _ := get(t, srv, "/debug/traces?trace=ffffffffffffffffffffffffffffffff"); code != 404 {
		t.Errorf("unknown trace status %d, want 404", code)
	}
}

// TestFlightRecorderConcurrency: scrape /debug/traces and /metrics in a
// loop while ingest, one-shot matches, and subscription delivery run,
// then assert the ring bounded retention per category and every
// retained trace has a well-formed span tree. Run under -race this is
// the recorder's publication-safety test.
func TestFlightRecorderConcurrency(t *testing.T) {
	const capacity = 4
	withRecorder(t, capacity)
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000,
		Archive: &streamsum.ArchiveOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed enough history that /match targets resolve before the
	// concurrent phase starts.
	seedData := gen.GMTI(gen.GMTIConfig{Seed: 7}, 8000)
	if _, err := eng.PushBatch(seedData.Points, nil); err != nil {
		t.Fatal(err)
	}
	if eng.PatternBase().Len() == 0 {
		t.Fatal("fixture archived nothing")
	}

	shutdown := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/match", matchHandler(eng, 0, testLogger()))
	mux.HandleFunc("/subscribe", subscribeHandler(eng, shutdown))
	mux.HandleFunc("/metrics", metricsHandler())
	mux.HandleFunc("/debug/traces", tracesHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	defer close(shutdown)

	// A standing query whose events flow while the ingester below keeps
	// completing windows.
	subResp, err := srv.Client().Get(srv.URL + "/subscribe?q=" + q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer subResp.Body.Close()
	go func() {
		sc := bufio.NewScanner(subResp.Body)
		for sc.Scan() {
		}
	}()

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Ingester: single caller, pushing batches that complete windows and
	// drive archiving + subscription evaluation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		data := gen.GMTI(gen.GMTIConfig{Seed: 8}, 24000)
		for at := 0; at < len(data.Points); at += 1000 {
			if _, err := eng.PushBatch(data.Points[at:at+1000], nil); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()

	// Matchers: one-shot queries against the snapshot-isolated base.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				code, body := get(t, srv, "/match?q="+q("GIVEN DensityBasedCluster 0 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3 LIMIT 2"))
				if code != 200 {
					t.Errorf("/match status %d: %s", code, body)
					return
				}
			}
		}()
	}

	// Scrapers: the flight recorder and metrics registry read while every
	// pipeline writes.
	paths := []string{"/debug/traces", "/debug/traces?category=ingest", "/metrics"}
	for g := 0; g < len(paths); g++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if code, body := get(t, srv, path); code != 200 {
					t.Errorf("%s status %d: %s", path, code, body)
					return
				}
			}
		}(paths[g])
	}
	wg.Wait()

	// Ring eviction bounded retention, and everything retained is a
	// well-formed span tree.
	sawAny := false
	for _, cat := range trace.Categories() {
		tds := trace.Default.Traces(cat)
		if len(tds) > capacity {
			t.Errorf("category %s retains %d traces, capacity %d", cat, len(tds), capacity)
		}
		for _, td := range tds {
			sawAny = true
			wellFormedTrace(t, td)
			if td.Category != cat.String() {
				t.Errorf("trace %s filed under %s, labeled %s", td.TraceID, cat, td.Category)
			}
		}
	}
	if !sawAny {
		t.Error("no traces retained after concurrent ingest/match/delivery")
	}
	for _, cat := range []trace.Category{trace.Ingest, trace.Match, trace.SubEval} {
		if len(trace.Default.Traces(cat)) == 0 {
			t.Errorf("category %s retained no traces", cat)
		}
	}
}
