// Benchmark harness regenerating the paper's evaluation (§8), one bench
// family per figure. Absolute numbers depend on the host; the paper's
// claims are about *shapes* — which method wins, by what factor, and how
// costs scale with win/slide and archive size. cmd/experiments prints the
// full paper-style tables; these benches make the same measurements
// available to `go test -bench`.
//
//	BenchmarkFig7Window/...    — §8.1, per-window response time of
//	                             extraction + summarization (steady state)
//	BenchmarkFig8Match/...     — §8.2, matching query response time
//	BenchmarkFig9Quality       — §8.3, similar-rate per method (reported
//	                             as custom metrics)
//	BenchmarkTimeVar/...       — tech-report: time-based windows under
//	                             fluctuating arrival rate
//	BenchmarkResolution/...    — tech-report: multi-resolution matching
package streamsum

import (
	"fmt"
	"sync"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/crd"
	"streamsum/internal/experiments"
	"streamsum/internal/extran"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/match"
	"streamsum/internal/rsp"
	"streamsum/internal/skps"
	"streamsum/internal/window"
)

// benchWin is the window size used by the streaming benches. The paper
// uses 10K; 10K fill per bench setup is affordable, so we keep it.
const benchWin = experiments.Fig7Win

var sttCache = struct {
	sync.Mutex
	data map[int64]gen.Batch
}{data: map[int64]gen.Batch{}}

func benchSTT(n int) gen.Batch {
	sttCache.Lock()
	defer sttCache.Unlock()
	key := int64(n)
	if b, ok := sttCache.data[key]; ok {
		return b
	}
	b := gen.STT(gen.STTConfig{Seed: 2011}, n)
	sttCache.data[key] = b
	return b
}

type pusher interface {
	Push(p geom.Point, ts int64) (int64, []*core.WindowResult, error)
}

// benchFig7 measures steady-state per-window cost: each b.N iteration
// pushes one slide's worth of tuples (triggering exactly one window
// emission) and performs the method's summarization work.
func benchFig7(b *testing.B, method string, pc experiments.ParamCase, slide int64) {
	data := benchSTT(benchWin + 60*int(slide))
	wcfg := core.Config{
		Dim: 4, ThetaR: pc.ThetaR, ThetaC: pc.ThetaC,
		Window: window.Spec{Win: benchWin, Slide: slide},
	}
	var proc pusher
	var err error
	switch method {
	case "C-SGS":
		proc, err = core.New(wcfg)
	case "C-SGS-full":
		wcfg.SkipSummaries = true
		proc, err = core.New(wcfg)
	default:
		proc, err = extran.New(wcfg)
	}
	if err != nil {
		b.Fatal(err)
	}
	pointAt := func(id int64) geom.Point { return data.Points[id%int64(len(data.Points))] }

	summarize := func(w *core.WindowResult) {
		for _, c := range w.Clusters {
			switch method {
			case "Extra-N", "C-SGS", "C-SGS-full":
				// Summaries (if any) were produced inside the extractor.
			case "Extra-N+CRD":
				pts := make([]geom.Point, len(c.Members))
				for i, id := range c.Members {
					pts[i] = pointAt(id)
				}
				if _, err := crd.FromPoints(pts, c.ID, w.Window); err != nil {
					b.Fatal(err)
				}
			case "Extra-N+RSP":
				pts := make([]geom.Point, len(c.Members))
				for i, id := range c.Members {
					pts[i] = pointAt(id)
				}
				if _, err := rsp.FromPoints(pts, c.ID, w.Window, experiments.RSPBudgetBytes, nil); err != nil {
					b.Fatal(err)
				}
			case "Extra-N+SkPS":
				pts := make([]geom.Point, len(c.Members))
				coreSet := make(map[int64]bool, len(c.Cores))
				for _, id := range c.Cores {
					coreSet[id] = true
				}
				isCore := make([]bool, len(c.Members))
				for i, id := range c.Members {
					pts[i] = pointAt(id)
					isCore[i] = coreSet[id]
				}
				if _, err := skps.FromCluster(pts, isCore, pc.ThetaR, c.ID, w.Window); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// Fill the first window.
	var pushed int64
	for ; pushed < benchWin; pushed++ {
		if _, _, err := proc.Push(pointAt(pushed), 0); err != nil {
			b.Fatal(err)
		}
	}
	clusters := 0
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for j := int64(0); j < slide; j++ {
			_, emitted, err := proc.Push(pointAt(pushed), 0)
			if err != nil {
				b.Fatal(err)
			}
			pushed++
			for _, w := range emitted {
				summarize(w)
				clusters += len(w.Clusters)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(clusters)/float64(b.N), "clusters/window")
}

// BenchmarkFig7Window reproduces Figure 7's response-time comparison: five
// methods on the paper's case 2 at slide 1K, plus the slide sweep (the
// win/slide dependence) for the baseline and C-SGS, plus the other two
// parameter cases for the headline pair.
func BenchmarkFig7Window(b *testing.B) {
	case2 := experiments.Cases[1]
	for _, m := range experiments.Methods {
		b.Run(fmt.Sprintf("%s/case2/slide1000", m), func(b *testing.B) {
			benchFig7(b, m, case2, 1000)
		})
	}
	for _, slide := range []int64{100, 5000} {
		for _, m := range []string{"Extra-N", "C-SGS"} {
			b.Run(fmt.Sprintf("%s/case2/slide%d", m, slide), func(b *testing.B) {
				benchFig7(b, m, case2, slide)
			})
		}
	}
	for _, ci := range []int{0, 2} {
		for _, m := range []string{"Extra-N", "C-SGS"} {
			b.Run(fmt.Sprintf("%s/%s/slide1000", m, experiments.Cases[ci].Name), func(b *testing.B) {
				benchFig7(b, m, experiments.Cases[ci], 1000)
			})
		}
	}
}

// --- Figure 8 -----------------------------------------------------------------

var storeCache = struct {
	sync.Mutex
	stores  map[int]*experiments.MatchStores
	targets map[int]*targetBundle
}{stores: map[int]*experiments.MatchStores{}, targets: map[int]*targetBundle{}}

type targetBundle struct {
	sgs  []*Summary
	crd  []*crd.Summary
	rsp  []*rsp.Summary
	skps []*skps.Summary
}

func benchStores(b *testing.B, size int) (*experiments.MatchStores, *targetBundle) {
	storeCache.Lock()
	defer storeCache.Unlock()
	st, ok := storeCache.stores[size]
	if !ok {
		var err error
		st, err = experiments.BuildMatchStores(size, 2011)
		if err != nil {
			b.Fatal(err)
		}
		storeCache.stores[size] = st
	}
	tb, ok := storeCache.targets[size]
	if !ok {
		clusters := gen.Clusters(gen.ClustersConfig{Seed: 4022}, 16)
		tb = &targetBundle{}
		for i, gc := range clusters {
			sc, err := SummarizeStatic(gc.Points, experiments.MatchParams.ThetaR, experiments.MatchParams.ThetaC)
			if err != nil || len(sc) == 0 {
				b.Fatalf("target %d: %v", i, err)
			}
			best := 0
			for j := range sc {
				if len(sc[j].Members) > len(sc[best].Members) {
					best = j
				}
			}
			pts := make([]geom.Point, len(sc[best].Members))
			isCore := make([]bool, len(sc[best].Members))
			coreSet := map[int64]bool{}
			for _, id := range sc[best].Cores {
				coreSet[id] = true
			}
			for j, id := range sc[best].Members {
				pts[j] = gc.Points[id]
				isCore[j] = coreSet[id]
			}
			c, _ := crd.FromPoints(pts, int64(i), 0)
			r, _ := rsp.FromPoints(pts, int64(i), 0, experiments.RSPBudgetBytes, nil)
			k, err := skps.FromCluster(pts, isCore, experiments.MatchParams.ThetaR, int64(i), 0)
			if err != nil {
				b.Fatal(err)
			}
			tb.sgs = append(tb.sgs, sc[best].Summary)
			tb.crd = append(tb.crd, c)
			tb.rsp = append(tb.rsp, r)
			tb.skps = append(tb.skps, k)
		}
		storeCache.targets[size] = tb
	}
	return st, tb
}

// BenchmarkFig8Match reproduces Figure 8: one matching query per
// iteration, per method and archive size. (The paper's 10K size is
// reproduced by cmd/experiments; benches stop at 2000 to keep setup time
// reasonable.)
func BenchmarkFig8Match(b *testing.B) {
	const threshold = 0.2
	for _, size := range []int{100, 1000, 2000} {
		b.Run(fmt.Sprintf("SGS/archive%d", size), func(b *testing.B) {
			st, tb := benchStores(b, size)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				target := tb.sgs[n%len(tb.sgs)]
				if _, _, err := match.Run(st.Base, match.Query{Target: target, Threshold: threshold}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Base.Bytes()), "store-bytes")
		})
		b.Run(fmt.Sprintf("CRD/archive%d", size), func(b *testing.B) {
			st, tb := benchStores(b, size)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				target := tb.crd[n%len(tb.crd)]
				for _, s := range st.CRDs {
					_ = crd.Distance(target, s)
				}
			}
		})
		b.Run(fmt.Sprintf("RSP/archive%d", size), func(b *testing.B) {
			st, tb := benchStores(b, size)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				target := tb.rsp[n%len(tb.rsp)]
				for _, s := range st.RSPs {
					_ = rsp.Distance(target, s)
				}
			}
		})
		b.Run(fmt.Sprintf("SkPS/archive%d", size), func(b *testing.B) {
			st, tb := benchStores(b, size)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				target := tb.skps[n%len(tb.skps)]
				for _, s := range st.SkPSs {
					_ = skps.Distance(target, s)
				}
			}
		})
	}
}

// BenchmarkFig9Quality runs the §8.3 quality study once per iteration and
// reports the similar-rate of each method as custom metrics. One
// iteration is meaningful on its own (the study is deterministic given
// the seed).
func BenchmarkFig9Quality(b *testing.B) {
	for n := 0; n < b.N; n++ {
		results, err := experiments.RunFig9(experiments.Fig9Config{
			ArchiveSize: 100, Targets: 10, Seed: 2011,
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			for _, r := range results {
				b.ReportMetric(r.Tally.SimilarRate(), r.Method+"-similar-rate")
			}
		}
	}
}

// BenchmarkTimeVar reproduces the tech-report experiment: time-based
// windows under bursty arrivals, C-SGS vs Extra-N.
func BenchmarkTimeVar(b *testing.B) {
	for _, method := range []string{"Extra-N", "C-SGS"} {
		b.Run(method, func(b *testing.B) {
			data := gen.GMTI(gen.GMTIConfig{Seed: 2011}, 20000)
			wcfg := core.Config{
				Dim: 2, ThetaR: 1.2, ThetaC: 5,
				Window: window.Spec{Kind: window.TimeBased, Win: 600, Slide: 60},
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				var proc pusher
				var err error
				if method == "C-SGS" {
					proc, err = core.New(wcfg)
				} else {
					proc, err = extran.New(wcfg)
				}
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ts := int64(0)
				for i, p := range data.Points {
					if i%3 == 0 {
						ts++
					}
					if _, _, err := proc.Push(p, ts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkResolution measures matching cost at each SGS resolution level
// (§6.1): coarser summaries match faster but describe less.
func BenchmarkResolution(b *testing.B) {
	st, tb := benchStores(b, 500)
	for level := 0; level <= 2; level++ {
		b.Run(fmt.Sprintf("L%d", level), func(b *testing.B) {
			// Re-archive at this level.
			base, err := st.ReArchive(level, 3)
			if err != nil {
				b.Fatal(err)
			}
			targets := make([]*Summary, len(tb.sgs))
			for i, s := range tb.sgs {
				t, err := s.CompressTo(level, 3)
				if err != nil {
					b.Fatal(err)
				}
				targets[i] = t
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				target := targets[n%len(targets)]
				if _, _, err := match.Run(base, match.Query{Target: target, Threshold: 1, Limit: 3}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(base.Bytes()), "store-bytes")
		})
	}
}
