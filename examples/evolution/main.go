// Cluster evolution monitoring: track congestion areas across windows
// (stable identities, merge/split events) and archive each *distinct*
// pattern once using evolution-driven selective archiving — the paper's
// §6.2 future-work direction, built on SGS matching.
package main

import (
	"fmt"
	"log"

	"streamsum"
	"streamsum/internal/gen"
)

func main() {
	feed := gen.GMTI(gen.GMTIConfig{Convoys: 5, Seed: 31}, 40000)

	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.2, ThetaC: 6,
		Win: 4000, Slide: 1000,
		Archive:        &streamsum.ArchiveOptions{MinPopulation: 15},
		ArchiveNovelty: 0.45, // archive only patterns not yet represented
	})
	if err != nil {
		log.Fatal(err)
	}
	tracker := streamsum.NewTracker()

	counts := map[streamsum.TrackKind]int{}
	lifespan := map[int64]int{}
	for i, p := range feed.Points {
		results, err := eng.Push(p, feed.TS[i])
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range results {
			for _, ev := range tracker.Advance(w) {
				counts[ev.Kind]++
				if ev.Kind != streamsum.TrackVanished {
					lifespan[ev.TrackID]++
				}
				switch ev.Kind {
				case streamsum.TrackMerged:
					fmt.Printf("window %3d: tracks %v merged into track %d (%d vehicles)\n",
						w.Window, ev.Predecessors, ev.TrackID, len(ev.Cluster.Members))
				case streamsum.TrackSplit:
					fmt.Printf("window %3d: track %d split off from %v (%d vehicles)\n",
						w.Window, ev.TrackID, ev.Predecessors, len(ev.Cluster.Members))
				}
			}
		}
	}

	fmt.Println("\nevolution summary:")
	for _, k := range []streamsum.TrackKind{
		streamsum.TrackAppeared, streamsum.TrackContinued, streamsum.TrackMerged,
		streamsum.TrackSplit, streamsum.TrackVanished,
	} {
		fmt.Printf("  %-10v %4d\n", k, counts[k])
	}
	longest, lid := 0, int64(-1)
	for id, n := range lifespan {
		if n > longest {
			longest, lid = n, id
		}
	}
	fmt.Printf("  longest-lived track: %d (%d windows)\n", lid, longest)
	fmt.Printf("\npattern base: %d distinct patterns archived (novelty threshold 0.45)\n",
		eng.PatternBase().Len())
}
