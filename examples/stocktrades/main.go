// Stock trade analysis — the paper's STT workload (§8): detect
// "intensive-transaction areas" (dense regions in the 4-D space of
// transaction type, price, volume and time) over the most recent 10K
// trades, using the paper's query language and case-2 parameters.
package main

import (
	"fmt"
	"log"

	"streamsum"
	"streamsum/internal/gen"
)

func main() {
	trades := gen.STT(gen.STTConfig{Symbols: 40, Seed: 11}, 60000)

	// Figure 2 query, case 2 parameters (θr=0.1, θc=8), win=10K, slide=1K.
	eng, err := streamsum.NewFromQuery(`
		DETECT DensityBasedClusters f+s FROM stock_trades
		USING theta_range = 0.1 AND theta_cnt = 8
		IN WINDOWS WITH win = 10000 AND slide = 1000`,
		4, // (type, price, volume, time)
		&streamsum.ArchiveOptions{MinPopulation: 20},
	)
	if err != nil {
		log.Fatal(err)
	}

	totalClusters := 0
	for i, p := range trades.Points {
		results, err := eng.Push(p, trades.TS[i])
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range results {
			totalClusters += len(w.Clusters)
			if w.Window%10 != 0 {
				continue // print every 10th window
			}
			fmt.Printf("window %d: %d intensive-transaction area(s)\n", w.Window, len(w.Clusters))
			for _, c := range w.Clusters {
				f := c.Summary.Features()
				mbr := c.Summary.MBR()
				side := "buy"
				if mbr.Min[0] > 0.5 {
					side = "sell"
				}
				fmt.Printf("  area %d: %d trades, %s side, price band [%.3f, %.3f], "+
					"%d cells, avg connectivity %.2f\n",
					c.ID, len(c.Members), side, mbr.Min[1], mbr.Max[1],
					int(f.Volume), f.AvgConnectivity)
			}
		}
	}

	base := eng.PatternBase()
	fmt.Printf("\n%d clusters extracted; %d archived (population >= 20), %.1f KB of summaries\n",
		totalClusters, base.Len(), float64(base.Bytes())/1024)
}
