// Cluster matching — the paper's pattern-retrieval scenario (§1, §7):
// archive the clusters extracted from the stream history, then, when a new
// pattern arises, ask whether similar patterns were seen before.
//
// The example archives several thousand windows' clusters, takes a
// fresh cluster as the to-be-matched pattern, and runs matching queries
// both position-insensitively ("any congestion shaped like this?") and
// position-sensitively ("congestion shaped like this in the same area?"),
// reporting the filter-and-refine statistics of §8.2.
package main

import (
	"fmt"
	"log"

	"streamsum"
	"streamsum/internal/gen"
)

func main() {
	feed := gen.GMTI(gen.GMTIConfig{Convoys: 8, Seed: 23}, 60000)

	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.2, ThetaC: 6,
		Win: 4000, Slide: 1000,
		Archive: &streamsum.ArchiveOptions{MinPopulation: 15},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: build the stream history.
	var lastClusters []*streamsum.Cluster
	for i, p := range feed.Points {
		results, err := eng.Push(p, feed.TS[i])
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range results {
			lastClusters = w.Clusters
		}
	}
	base := eng.PatternBase()
	fmt.Printf("pattern base: %d archived clusters, %.1f KB\n",
		base.Len(), float64(base.Bytes())/1024)
	if len(lastClusters) == 0 {
		log.Fatal("no clusters in the final window")
	}

	// Phase 2: the analyst picks the newest big cluster as the target.
	target := lastClusters[0]
	for _, c := range lastClusters {
		if len(c.Members) > len(target.Members) {
			target = c
		}
	}
	fmt.Printf("\nto-be-matched cluster: %d vehicles, %d cells\n%s\n",
		len(target.Members), target.Summary.NumCells(), target.Summary.Render())

	// Position-insensitive matching (the default): shape/structure only.
	matches, stats, err := eng.MatchQuery(`
		GIVEN DensityBasedCluster input
		SELECT DensityBasedClusters FROM History
		WHERE Distance <= 0.35 LIMIT 5`, target.Summary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position-insensitive: %d/%d candidates passed the filter phase (%.1f%%), %d matches:\n",
		stats.Refined, stats.IndexCandidates,
		100*float64(stats.Refined)/float64(max(stats.IndexCandidates, 1)), len(matches))
	for _, m := range matches {
		e := m.Entry
		fmt.Printf("  cluster %d (window %d): distance %.3f, %d cells, pop %d\n",
			m.ID, e.Summary.Window, m.Distance, e.Summary.NumCells(), e.Summary.TotalPopulation())
	}

	// Position-sensitive matching: same place AND same structure.
	w := streamsum.EqualWeights()
	w.PositionSensitive = true
	psMatches, psStats, err := eng.Match(streamsum.MatchOptions{
		Target: target.Summary, Threshold: 0.35, Weights: &w, Limit: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nposition-sensitive: %d overlap candidates, %d matches:\n",
		psStats.IndexCandidates, len(psMatches))
	for _, m := range psMatches {
		fmt.Printf("  cluster %d (window %d): distance %.3f\n",
			m.ID, m.Entry.Summary.Window, m.Distance)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
