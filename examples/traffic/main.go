// Traffic congestion monitoring — the paper's motivating scenario (§1).
//
// A GMTI-style stream of vehicle position reports is clustered in sliding
// windows; each density-based cluster is a congestion area. The example
// shows what the SGS gives an analyst that raw member lists cannot:
//
//   - the congestion's shape and extent at a glance (ASCII rendering),
//   - its internal density distribution — the skeletal grid cells with the
//     highest population are "the key bottleneck causing the congestion",
//   - a ~98% compression of the cluster for archival.
package main

import (
	"fmt"
	"log"

	"streamsum"
	"streamsum/internal/gen"
	"streamsum/internal/sgs"
)

func main() {
	feed := gen.GMTI(gen.GMTIConfig{Stations: 24, Convoys: 6, Seed: 7}, 30000)

	eng, err := streamsum.New(streamsum.Options{
		Dim:    2,
		ThetaR: 1.2, // km: vehicles within 1.2km are "in the same congestion"
		ThetaC: 6,
		Win:    4000, // most recent 4000 position reports
		Slide:  2000,
	})
	if err != nil {
		log.Fatal(err)
	}

	var biggest *streamsum.Cluster
	fullBytes, sgsBytes := 0, 0
	for i, p := range feed.Points {
		results, err := eng.Push(p, feed.TS[i])
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range results {
			fmt.Printf("window %d: %d congestion area(s)\n", w.Window, len(w.Clusters))
			for _, c := range w.Clusters {
				// Storage accounting: full representation vs SGS.
				fullBytes += len(c.Members) * 16 // two float64 per report
				sgsBytes += sgs.EncodedSize(c.Summary)
				if biggest == nil || len(c.Members) > len(biggest.Members) {
					biggest = c
				}
				mbr := c.Summary.MBR()
				fmt.Printf("  area %d: %d vehicles, %.0f km² MBR, %d cells\n",
					c.ID, len(c.Members), mbr.Volume(), c.Summary.NumCells())
			}
		}
	}
	if biggest == nil {
		log.Fatal("no congestion detected")
	}

	fmt.Printf("\nLargest congestion area (%d vehicles):\n%s",
		len(biggest.Members), biggest.Summary.Render())

	// Density distribution: the bottleneck cells.
	var hot []sgs.Cell
	for _, cell := range biggest.Summary.Cells {
		hot = append(hot, cell)
	}
	for i := 0; i < len(hot); i++ {
		for j := i + 1; j < len(hot); j++ {
			if hot[j].Population > hot[i].Population {
				hot[i], hot[j] = hot[j], hot[i]
			}
		}
	}
	fmt.Println("Top bottleneck cells (highest vehicle density):")
	for i := 0; i < 3 && i < len(hot); i++ {
		min := biggest.Summary.CellMin(hot[i].Coord)
		fmt.Printf("  around (%.1f, %.1f) km: %d vehicles in one cell\n",
			min[0], min[1], hot[i].Population)
	}

	fmt.Printf("\nStorage: full representation %d bytes, SGS %d bytes (%.1f%% compression)\n",
		fullBytes, sgsBytes, 100*(1-float64(sgsBytes)/float64(fullBytes)))
}
