// Offline analysis of an archived stream history: persist the pattern
// base to disk during extraction, reload it later (raw tuples long gone),
// then analyze the archived patterns — regenerate approximate full
// representations, diff snapshots of the same tracked pattern, and run
// matching queries against the reloaded history.
package main

import (
	"bytes"
	"fmt"
	"log"

	"streamsum"
	"streamsum/internal/archive"
	"streamsum/internal/gen"
)

func main() {
	// --- Online phase: extract, archive, persist --------------------------
	feed := gen.GMTI(gen.GMTIConfig{Convoys: 5, Seed: 41}, 30000)
	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.2, ThetaC: 6, Win: 4000, Slide: 2000,
		Archive: &streamsum.ArchiveOptions{MinPopulation: 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range feed.Points {
		if _, err := eng.Push(p, feed.TS[i]); err != nil {
			log.Fatal(err)
		}
	}
	var file bytes.Buffer // stands in for a file on disk
	if err := eng.PatternBase().Save(&file); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online phase: archived %d clusters (%.1f KB persisted)\n",
		eng.PatternBase().Len(), float64(file.Len())/1024)

	// --- Offline phase: reload and analyze --------------------------------
	history, err := archive.New(archive.Config{Dim: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := history.Load(bytes.NewReader(file.Bytes())); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline phase: reloaded %d clusters\n\n", history.Len())

	// Pick two snapshots of (likely) the same drifting pattern: the pair of
	// entries from different windows with the highest cell overlap.
	var entries []*archive.Entry
	history.All(func(e *archive.Entry) bool {
		entries = append(entries, e)
		return true
	})
	var a, b *archive.Entry
	bestJ := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if entries[i].Summary.Window == entries[j].Summary.Window {
				continue // same window → different patterns by construction
			}
			if d, err := streamsum.DiffSummaries(entries[i].Summary, entries[j].Summary); err == nil {
				if d.CellJaccard > bestJ {
					bestJ, a, b = d.CellJaccard, entries[i], entries[j]
				}
			}
		}
	}
	if a == nil {
		log.Fatal("no comparable snapshots")
	}
	d, err := streamsum.DiffSummaries(a.Summary, b.Summary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolution of pattern %d → %d (windows %d → %d):\n  %v\n\n",
		a.ID, b.ID, a.Summary.Window, b.Summary.Window, d)

	// Regenerate an approximate full representation of an archived cluster
	// whose raw tuples no longer exist.
	pts := streamsum.Regenerate(b.Summary, streamsum.RegenOptions{})
	fmt.Printf("regenerated %d approximate member positions from %d cells (%d bytes of summary)\n",
		len(pts), b.Summary.NumCells(), b.Bytes)
	fmt.Print(b.Summary.Render())
}
