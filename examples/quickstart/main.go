// Quickstart: detect density-based clusters in a sliding window over a
// tiny synthetic stream and print both representations of each cluster.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamsum"
)

func main() {
	// Two drifting blobs plus background noise, 2-D.
	rng := rand.New(rand.NewSource(42))
	var points []streamsum.Point
	for i := 0; i < 3000; i++ {
		switch {
		case rng.Float64() < 0.1: // noise
			points = append(points, streamsum.Point{rng.Float64() * 30, rng.Float64() * 30})
		case rng.Float64() < 0.5: // blob A drifting right
			cx := 5 + float64(i)*0.002
			points = append(points, streamsum.Point{cx + rng.NormFloat64()*0.6, 10 + rng.NormFloat64()*0.6})
		default: // blob B stationary
			points = append(points, streamsum.Point{22 + rng.NormFloat64()*0.8, 20 + rng.NormFloat64()*0.4})
		}
	}

	// DETECT DensityBasedClusters f+s FROM stream
	// USING theta_range = 1.0 AND theta_cnt = 5
	// IN WINDOWS WITH win = 1000 AND slide = 500
	eng, err := streamsum.New(streamsum.Options{
		Dim:    2,
		ThetaR: 1.0,
		ThetaC: 5,
		Win:    1000,
		Slide:  500,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range points {
		results, err := eng.Push(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range results {
			fmt.Printf("=== window %d: %d cluster(s)\n", w.Window, len(w.Clusters))
			for _, c := range w.Clusters {
				full := len(c.Members)
				cells := c.Summary.NumCells()
				fmt.Printf("  cluster %d: %d members (full representation), "+
					"%d skeletal grid cells (%d core), population %d\n",
					c.ID, full, cells, c.Summary.NumCoreCells(), c.Summary.TotalPopulation())
			}
		}
	}

	// The final partial window, rendered.
	w, err := eng.Flush()
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range w.Clusters {
		fmt.Printf("\nfinal window cluster %d summary:\n%s", c.ID, c.Summary.Render())
	}
}
