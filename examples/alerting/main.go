// Standing-query alerting — the monitoring deployment the paper's
// matching queries point at (§1, §3.2): instead of an analyst asking
// "has a pattern like this been seen before?" after the fact, the
// pattern template is registered once and the system raises an alert the
// moment a matching cluster appears in the stream.
//
// The example runs a first tranche of the stream to learn a recurring
// pattern, registers two standing queries against it — one plain match
// subscription, one with evolution tracking (merge/split alerts) — and
// then streams the rest of the data while a consumer goroutine prints
// the alerts as they arrive. Evaluation is inverted and incremental:
// each window's new clusters are probed against an index of the
// registered subscriptions, so a thousand standing queries cost index
// probes per window, not a thousand history scans.
package main

import (
	"fmt"
	"log"
	"sync"

	"streamsum"
	"streamsum/internal/gen"
)

func main() {
	feed := gen.GMTI(gen.GMTIConfig{Convoys: 8, Seed: 23}, 60000)

	eng, err := streamsum.New(streamsum.Options{
		Dim: 2, ThetaR: 1.2, ThetaC: 6,
		Win: 4000, Slide: 1000,
		Archive: &streamsum.ArchiveOptions{MinPopulation: 15},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: a first tranche of stream history to learn a template from.
	third := len(feed.Points) / 3
	if _, err := eng.PushBatch(feed.Points[:third], feed.TS[:third]); err != nil {
		log.Fatal(err)
	}
	base := eng.PatternBase()
	if base.Len() == 0 {
		log.Fatal("no clusters archived in the first tranche")
	}
	// The newest archived cluster: the windows right after the tranche
	// boundary overlap the window it came from, so near-duplicates are
	// guaranteed to keep appearing for a while.
	template := base.Get(int64(base.Len() - 1)).Summary
	fmt.Printf("template: cluster %d (%d cells) from the first %d tuples\n",
		template.ID, template.NumCells(), third)

	// Phase 2: register the standing queries. The same query in the
	// paper's language would be
	//
	//	GIVEN DensityBasedCluster <id>
	//	SELECT DensityBasedClusters FROM Stream
	//	WHERE Distance <= 0.4
	//
	// (FROM Stream = standing, vs the one-shot FROM History).
	alerts, err := eng.Subscribe(streamsum.SubscribeOptions{
		Target: template, Threshold: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	evolution, err := eng.Subscribe(streamsum.SubscribeOptions{
		Target: template, Threshold: 0.4, Track: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n := 0
		for ev := range alerts.Events() {
			n++
			if n <= 5 || n%25 == 0 {
				fmt.Printf("alert #%d: window %d archived cluster %d at distance %.3f (%d cells)\n",
					n, ev.Seq, ev.EntryID, ev.Distance, ev.Entry.Summary.NumCells())
			}
		}
		fmt.Printf("alert subscription closed after %d alerts\n", n)
	}()
	go func() {
		defer wg.Done()
		var matches, transitions int
		for ev := range evolution.Events() {
			switch ev.Kind {
			case streamsum.SubMatch:
				matches++
			case streamsum.SubEvolution:
				transitions++
				if ev.Track.Kind == streamsum.TrackMerged || ev.Track.Kind == streamsum.TrackSplit {
					fmt.Printf("evolution: window %d track %d %s (predecessors %v)\n",
						ev.Seq, ev.Track.TrackID, ev.Track.Kind, ev.Track.Predecessors)
				}
			}
		}
		fmt.Printf("evolution subscription closed: %d matches, %d transitions\n", matches, transitions)
	}()

	// Phase 3: the rest of the stream, in slide-sized batches — alerts
	// fire concurrently as windows complete and archive.
	for lo := third; lo < len(feed.Points); lo += 1000 {
		hi := min(lo+1000, len(feed.Points))
		if _, err := eng.PushBatch(feed.Points[lo:hi], feed.TS[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}

	st := eng.SubscriptionStats()
	fmt.Printf("registry: %d windows evaluated, %d candidate pairs refined, %d events, last eval %v\n",
		st.Windows, st.Refined, st.Events, st.LastEval)

	// Graceful end: hand every delivered event to the consumers, then
	// close the channels.
	alerts.Sync()
	evolution.Sync()
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
}
