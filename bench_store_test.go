// Disk-tier benchmarks: matching latency when the archived history
// lives in on-disk segments rather than RAM. A recorded baseline lives
// in BENCH_store.json.
//
//	BenchmarkFilterSegments   — one matching query against a store-backed
//	                            base split across many segments, swept over
//	                            Query.Workers (the segment-parallel filter
//	                            plus lazy per-candidate refine reads)
//	BenchmarkRefineDiskCached — the same repeated-query workload cold
//	                            (every refine decodes from the segment)
//	                            vs warm (decodes served by the
//	                            decoded-summary cache)
package streamsum

import (
	"fmt"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/match"
)

// BenchmarkFilterSegments mirrors BenchmarkMatchRun but over a base
// whose memory tier is capped at a fraction of the history, so the
// filter phase probes one R-tree/feature-grid pair per segment (in
// parallel across workers) and the refine phase preads candidate
// summaries from disk. StoreSegmentBytes 1 pins the segment layout by
// disabling merges. Compare against BenchmarkMatchRun at equal workers
// for the cost of serving the same query from disk instead of RAM.
func BenchmarkFilterSegments(b *testing.B) {
	sums := matchFixture(b, matchBaseSize)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			base, err := archive.New(archive.Config{
				Dim:               2,
				StorePath:         b.TempDir(),
				MaxMemBytes:       16 << 10,
				StoreSegmentBytes: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer base.Close()
			for _, s := range sums {
				if _, ok, err := base.Put(s); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			ts := base.TierStats()
			if ts.Segments < 2 || ts.SegEntries == 0 {
				b.Fatalf("fixture stayed in memory: %+v", ts)
			}
			snap := base.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := match.Query{
					Target: sums[i%len(sums)], Threshold: matchThreshold,
					Limit: 5, Workers: workers,
				}
				if _, _, err := match.Run(snap, q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ts.Segments), "segments")
		})
	}
}

// BenchmarkRefineDiskCached isolates what the decoded-summary cache buys
// a repeated-query workload: the same disk-backed base and query mix as
// BenchmarkFilterSegments/workers1, run cold (no cache — every refine
// candidate re-decodes its summary blob) and warm (a cache big enough to
// hold the whole decoded history, pre-faulted before timing). The warm
// variant raises MaxMemBytes by the cache budget, so the memory-tier
// carve-out — and with it the tier split and segment layout — is
// identical to the cold one.
func BenchmarkRefineDiskCached(b *testing.B) {
	const memCap = 16 << 10
	const cacheBudget = 8 << 20
	sums := matchFixture(b, matchBaseSize)
	for _, bc := range []struct {
		name  string
		cache int
	}{
		{"cold", 0},
		{"warm", cacheBudget},
	} {
		b.Run(bc.name, func(b *testing.B) {
			base, err := archive.New(archive.Config{
				Dim:               2,
				StorePath:         b.TempDir(),
				MaxMemBytes:       memCap + bc.cache,
				SummaryCacheBytes: bc.cache,
				StoreSegmentBytes: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer base.Close()
			for _, s := range sums {
				if _, ok, err := base.Put(s); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			ts := base.TierStats()
			if ts.Segments < 2 || ts.SegEntries == 0 {
				b.Fatalf("fixture stayed in memory: %+v", ts)
			}
			snap := base.Snapshot()
			run := func(i int) {
				q := match.Query{
					Target: sums[i%len(sums)], Threshold: matchThreshold,
					Limit: 5, Workers: 1,
				}
				if _, _, err := match.Run(snap, q); err != nil {
					b.Fatal(err)
				}
			}
			// One full pass over the query mix faults every summary the
			// workload touches into the cache, so the timed region measures
			// the steady state of each configuration.
			for i := 0; i < len(sums); i++ {
				run(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(i)
			}
			b.StopTimer()
			cs := base.TierStats()
			if hm := cs.CacheHits + cs.CacheMisses; hm > 0 {
				b.ReportMetric(float64(cs.CacheHits)/float64(hm), "hit-ratio")
			}
		})
	}
}
