// Package streamsum is a streaming density-based cluster mining library
// with cluster summarization and matching, reproducing "Summarization and
// Matching of Density-Based Clusters in Streaming Environments" (Yang,
// Rundensteiner, Ward; PVLDB 5(2), 2011).
//
// The library detects arbitrarily shaped density-based clusters over
// periodic sliding windows (CQL semantics) and returns each window's
// clusters in two complementary representations:
//
//   - the full representation — every member tuple, for online monitoring;
//   - the Skeletal Grid Summarization (SGS) — a compact multi-resolution
//     summary preserving the cluster's location, shape, connectivity and
//     density distribution, for archival and retrieval.
//
// Summaries can be archived into a pattern base (R-tree + feature indices)
// and retrieved with cluster matching queries ("has a congestion like this
// one been seen before?") using a filter-and-refine strategy.
//
// # Ingestion: Push, PushBatch, sharding
//
// Push feeds one tuple at a time. For high-rate streams, PushBatch feeds a
// whole batch (typically one slide's worth) through a two-phase pipeline:
// the per-tuple range query search — the dominant per-insertion cost in
// the paper's analysis — runs as a read-only fan-out across Options.Workers
// goroutines over the frozen window state, and all state updates then
// replay sequentially in arrival order. The batch path is guaranteed to
// emit window-for-window identical results to sequential Push; it only
// reorganizes where neighbors are *found*, never how state is updated.
//
// For horizontally partitioned workloads, internal/stream's Sharded
// executor drives N independent engines (hash- or key-partitioned) with a
// serialized consumer stage, stacking shard-level parallelism on top of
// the per-batch discovery fan-out.
//
// # Output stage
//
// Whenever a window completes, the output stage extracts its clusters and
// builds their summaries. The stage mirrors ingestion's structure: a cheap
// sequential graph walk identifies the clusters, then per-cluster summary
// construction fans out across Options.EmitWorkers goroutines over frozen
// state, merged in deterministic cluster order — the emitted windows are
// byte-identical at every worker count.
//
// # Matching
//
// The pattern base is snapshot-isolated: matching queries (Match,
// MatchQuery) execute against an immutable read-only view and never
// block archiving, so they are safe from any number of goroutines
// concurrently with ingestion — including N sharded engines feeding one
// shared base. The matcher mirrors the output stage's structure: a
// parallel index-probe filter phase (one probe per tier shard), a
// parallel per-candidate refine phase across Options.MatchWorkers
// goroutines, and a sequential order/limit phase, with results
// byte-identical at every worker count.
//
// # Tiered history
//
// With Options.StorePath the pattern base tiers to disk: summaries
// evicted from the memory tier (bounded by Options.StoreMaxMemBytes
// and/or the archive Capacity) demote into immutable on-disk segments
// that remain fully matchable — the filter phase probes every segment's
// footer indexes in parallel and the refine phase reads candidate cells
// lazily, so the archived history can grow far past RAM while query
// results stay byte-identical to an all-in-memory base. Call Close at
// shutdown to flush the memory tier and make the store directory a
// complete, reopenable record of the stream history.
//
// # Quick start
//
//	eng, _ := streamsum.New(streamsum.Options{
//	    Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 1000, Slide: 200,
//	    Archive: &streamsum.ArchiveOptions{},
//	})
//	for _, p := range points {
//	    results, _ := eng.Push(p, 0)
//	    for _, w := range results {
//	        for _, c := range w.Clusters {
//	            fmt.Println(len(c.Members), c.Summary)
//	        }
//	    }
//	}
//	matches, _, _ := eng.Match(streamsum.MatchOptions{
//	    Target: someCluster.Summary, Threshold: 0.2, Limit: 3,
//	})
//
// Queries can also be expressed in the paper's query language; see
// NewFromQuery and MatchQuery.
package streamsum

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"streamsum/internal/archive"
	"streamsum/internal/core"
	"streamsum/internal/dbscan"
	"streamsum/internal/extran"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/match"
	"streamsum/internal/query"
	"streamsum/internal/sgs"
	"streamsum/internal/stream"
	"streamsum/internal/sub"
	"streamsum/internal/trace"
	"streamsum/internal/track"
	"streamsum/internal/window"
)

// Re-exported core types. The internal packages remain the implementation;
// these aliases are the public vocabulary.
type (
	// Point is a position in d-dimensional space.
	Point = geom.Point
	// MBR is an axis-aligned minimum bounding rectangle.
	MBR = geom.MBR
	// Summary is the Skeletal Grid Summarization of one cluster.
	Summary = sgs.Summary
	// Cluster is one extracted cluster (full + summarized representation).
	Cluster = core.Cluster
	// WindowResult holds all clusters of one completed window.
	WindowResult = core.WindowResult
	// ArchiveOptions configures the pattern archiver (resolution and
	// selective-archiving policy). The Dim field is filled in by New.
	ArchiveOptions = archive.Config
	// ArchiveEntry is one archived cluster.
	ArchiveEntry = archive.Entry
	// PatternBase is the archive of cluster summaries with its indices.
	PatternBase = archive.Base
	// Match is one result of a matching query.
	Match = match.Match
	// MatchStats reports filter-and-refine effectiveness.
	MatchStats = match.Stats
	// MatchTrace is a span-recording trace: MatchOptions.Trace records a
	// query's phase spans (filter/refine/order, per-shard children, cache
	// and zone attribution as attributes) into one. Obtain one with
	// NewMatchTrace, run the query, then call Finish for the immutable
	// MatchTraceData export.
	MatchTrace = trace.Trace
	// MatchTraceData is a finished trace's immutable span tree.
	MatchTraceData = trace.TraceData
	// Weights configures the cluster distance metric.
	Weights = match.Weights
)

// EqualWeights returns the paper's default metric weights (0.25 each,
// position-insensitive).
func EqualWeights() Weights { return match.EqualWeights() }

// NewMatchTrace returns a standalone trace for one matching query:
// set it as MatchOptions.Trace, run the query, then call Finish to
// obtain the span tree. Standalone traces live outside the engine's
// flight recorder (internal/trace.Default), which sgsd manages via its
// -trace flag.
func NewMatchTrace() *MatchTrace { return trace.New(trace.Match, "match", trace.ID{}) }

// Options configures a streaming clustering engine (the DETECT query of
// the paper's Figure 2).
type Options struct {
	// Dim is the tuple dimensionality (1..8).
	Dim int
	// ThetaR is the neighbor range threshold θr.
	ThetaR float64
	// ThetaC is the neighbor count threshold θc.
	ThetaC int
	// Win and Slide define the periodic sliding window, in tuples
	// (default) or time ticks (TimeBased).
	Win, Slide int64
	// TimeBased selects time-based windows; Push's ts argument is then the
	// tuple timestamp and must be non-decreasing.
	TimeBased bool
	// FullOnly disables summarization: clusters are extracted with the
	// Extra-N algorithm in full representation only. The default (false)
	// uses C-SGS, producing both representations at almost no extra cost.
	FullOnly bool
	// Archive, when non-nil, automatically archives every emitted summary
	// into a pattern base (nil disables archiving). Requires !FullOnly.
	Archive *ArchiveOptions
	// ArchiveNovelty, when positive, enables evolution-driven selective
	// archiving (the future-work direction of §6.2): a summary is archived
	// only if its matching distance to everything already archived exceeds
	// this threshold, so the pattern base stores each recurring pattern
	// once instead of once per window.
	ArchiveNovelty float64
	// Workers bounds the parallel neighbor-discovery fan-out used by
	// PushBatch: <= 0 means one worker per available CPU, 1 forces the
	// fully sequential batch path. Single-tuple Push is unaffected.
	Workers int
	// EmitWorkers bounds the output stage's parallel fan-out (connection
	// pruning, edge-attachment resolution, per-cluster summary
	// construction): <= 0 means one worker per available CPU, 1 forces the
	// fully sequential output stage. Applies to Push, PushBatch and Flush
	// alike — the output stage runs whenever a window completes — and
	// results are byte-identical at every setting.
	EmitWorkers int
	// MatchWorkers bounds the matching pipeline's parallel phases (the
	// per-shard filter probes and the per-candidate grid-cell-level
	// distance evaluations): <= 0 means one worker per available CPU, 1
	// forces the fully sequential matcher. Results are byte-identical at
	// every setting.
	MatchWorkers int
	// SubWorkers bounds the standing-query registry's per-window
	// evaluation fan-out (the inverted probe and refine phases; see
	// Subscribe): <= 0 means one worker per available CPU, 1 forces
	// sequential evaluation. Delivered events are byte-identical at
	// every setting.
	SubWorkers int
	// StorePath, when non-empty, attaches a disk tier to the pattern base
	// (requires Archive): entries evicted from the memory tier demote
	// into immutable on-disk segments under this directory and remain
	// fully matchable, so the archived history can grow past RAM.
	// Reopening an engine over an existing store resumes with the
	// on-disk history visible.
	StorePath string
	// StoreMaxMemBytes bounds the pattern base's memory tier (encoded
	// summary bytes); overflow demotes the oldest entries to the disk
	// tier. Requires StorePath; 0 means no byte bound (demotion then
	// happens only via Archive.Capacity pressure).
	StoreMaxMemBytes int
	// SlowQuery, when positive, logs any standing-query window
	// evaluation whose wall time meets it, with a per-phase breakdown
	// (probe/refine/deliver). One-shot match queries are the caller's to
	// time — MatchOptions.Trace carries their phase breakdown — so this
	// threshold only governs the engine-driven per-window evaluation.
	// Zero disables slow-window logging.
	SlowQuery time.Duration
	// SummaryCacheBytes bounds the decoded-summary cache that serves the
	// refine phase of queries over disk-resident entries: each summary
	// decodes once per residency, not once per query. Requires StorePath.
	// The budget is carved out of StoreMaxMemBytes (memory tier + cache
	// share that bound), so when both are set it must be strictly
	// smaller. 0 — or SGS_SUMCACHE=off — disables the cache; results are
	// identical either way, only repeated-query latency changes.
	SummaryCacheBytes int
	// Logger receives the engine's diagnostics (slow window evaluations,
	// background demotion failures), with a "component" attribute naming
	// the subsystem. Nil discards them — library embedders stay silent by
	// default; sgsd injects its daemon logger.
	Logger *slog.Logger
}

// Engine is the end-to-end system of the paper's Figure 4: pattern
// extractor + optional pattern archiver/base + pattern analyzer.
// Ingestion (Push, PushBatch, Flush) is single-caller, but the pattern
// base is snapshot-isolated: Match and MatchQuery are safe to call from
// any number of goroutines concurrently with ingestion — queries run
// against read-only snapshots and never block archiving.
type Engine struct {
	opts Options
	proc stream.Processor
	base *archive.Base
	// sink archives one completed window into base (one PutBatch per
	// window) and offers the new entries to the standing-query registry;
	// nil when archiving is off or novelty filtering is on.
	sink func(int, *core.WindowResult) error
	// subs is the standing-query registry (nil without a pattern base).
	subs *sub.Registry
	// tracker feeds evolution events to Track subscriptions; created on
	// demand (nil while no subscription asks for them), so tracking
	// starts at the first Track subscription.
	tracker *track.Tracker
}

// New creates an engine.
func New(opts Options) (*Engine, error) {
	spec := window.Spec{Win: opts.Win, Slide: opts.Slide}
	if opts.TimeBased {
		spec.Kind = window.TimeBased
	}
	cfg := core.Config{
		Dim: opts.Dim, ThetaR: opts.ThetaR, ThetaC: opts.ThetaC, Window: spec,
		Workers: opts.Workers, EmitWorkers: opts.EmitWorkers,
	}
	var (
		proc stream.Processor
		err  error
	)
	if opts.FullOnly {
		if opts.Archive != nil {
			return nil, fmt.Errorf("streamsum: archiving requires summarization (FullOnly must be false)")
		}
		proc, err = extran.New(cfg)
	} else {
		proc, err = core.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	e := &Engine{opts: opts, proc: proc}
	if opts.StorePath != "" && opts.Archive == nil {
		return nil, fmt.Errorf("streamsum: StorePath requires archiving (set Options.Archive)")
	}
	if opts.StoreMaxMemBytes > 0 && opts.StorePath == "" {
		return nil, fmt.Errorf("streamsum: StoreMaxMemBytes requires StorePath")
	}
	if opts.SummaryCacheBytes > 0 && opts.StorePath == "" {
		return nil, fmt.Errorf("streamsum: SummaryCacheBytes requires StorePath (memory-tier summaries are already decoded)")
	}
	if opts.Archive != nil {
		// Theta is passed through as configured: a Level or ByteBudget
		// that demands compression without a valid compression rate is a
		// misconfiguration archive.New reports, not one to paper over
		// (NewFromQuery, whose query language cannot express Theta,
		// defaults it explicitly instead).
		ac := *opts.Archive
		ac.Dim = opts.Dim
		ac.StorePath = opts.StorePath
		ac.MaxMemBytes = opts.StoreMaxMemBytes
		ac.SummaryCacheBytes = opts.SummaryCacheBytes
		if opts.Logger != nil {
			ac.Logger = opts.Logger.With("component", "archive")
		}
		e.base, err = archive.New(ac)
		if err != nil {
			return nil, err
		}
		sc := sub.Config{
			Dim: opts.Dim, Workers: opts.SubWorkers,
			SlowThreshold: opts.SlowQuery,
		}
		if opts.Logger != nil {
			sc.Logger = opts.Logger.With("component", "sub")
		}
		e.subs, err = sub.NewRegistry(sc)
		if err != nil {
			return nil, err
		}
		if opts.ArchiveNovelty <= 0 {
			// The same window-per-PutBatch wiring sharded consumers use,
			// with the window's new entries offered to the standing-query
			// registry off the same post-batch snapshot — and evaluated
			// inside the sink's window trace, so one recorded trace covers
			// archiving through delivery.
			e.sink = stream.ArchiveWindowsEval(e.base,
				func(_ int, _ *core.WindowResult, entries []*archive.Entry, tr *trace.Trace) error {
					return e.subs.OfferTraced(entries, tr)
				}, nil)
		}
	}
	return e, nil
}

// Close releases the engine. It cancels every standing subscription
// (their event channels close; events not yet consumed are dropped —
// drain with Subscription.Sync first when they matter). With a
// disk-backed pattern base (StorePath) it then demotes the memory tier
// to the store as one final segment — making the store directory alone
// a complete, reopenable record of the archived history — and stops the
// store's compactor and closes its files. Serve all in-flight matching
// queries before calling Close; snapshots must not be used afterwards.
func (e *Engine) Close() error {
	if e.subs != nil {
		e.subs.Close()
	}
	if e.base == nil {
		return nil
	}
	if e.opts.StorePath != "" {
		if err := e.base.FlushMem(); err != nil {
			_ = e.base.Close()
			return err
		}
	}
	return e.base.Close()
}

// OptionsFromQuery parses a DETECT query in the paper's query language
// (Figure 2) into engine Options. dim supplies the tuple dimensionality,
// which the query language leaves to the schema. Execution-side knobs the
// language does not cover (Workers, EmitWorkers, MatchWorkers, SubWorkers,
// Archive, ArchiveNovelty, StorePath, StoreMaxMemBytes,
// SummaryCacheBytes) can be set on the returned Options before calling
// New.
func OptionsFromQuery(q string, dim int) (Options, error) {
	cq, err := query.ParseCluster(q)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Dim:       dim,
		ThetaR:    cq.ThetaR,
		ThetaC:    cq.ThetaC,
		Win:       cq.Win,
		Slide:     cq.Slide,
		TimeBased: cq.TimeBased,
		FullOnly:  !cq.Summarized,
	}, nil
}

// NewFromQuery creates an engine from a DETECT query in the paper's query
// language (Figure 2). dim supplies the tuple dimensionality, which the
// query language leaves to the schema. archiveOpts may be nil.
//
// The query language has no syntax for the archive's compression rate,
// so when archiveOpts requests compression (Level > 0 or ByteBudget > 0)
// without setting Theta, NewFromQuery defaults Theta to 2 (the minimum
// valid rate); the caller's struct is not modified. The programmatic
// path (New) performs no such defaulting — it surfaces archive.New's
// validation error instead.
func NewFromQuery(q string, dim int, archiveOpts *ArchiveOptions) (*Engine, error) {
	opts, err := OptionsFromQuery(q, dim)
	if err != nil {
		return nil, err
	}
	if archiveOpts != nil {
		ac := *archiveOpts
		if (ac.Level > 0 || ac.ByteBudget > 0) && ac.Theta < 2 {
			ac.Theta = 2
		}
		archiveOpts = &ac
	}
	opts.Archive = archiveOpts
	return New(opts)
}

// Push feeds one tuple; ts is ignored for count-based windows. Completed
// windows are returned; their summaries are archived automatically when
// archiving is configured.
func (e *Engine) Push(p Point, ts int64) ([]*WindowResult, error) {
	_, emitted, err := e.proc.Push(p, ts)
	if err != nil {
		return nil, err
	}
	for _, w := range emitted {
		if err := e.archiveWindow(w); err != nil {
			return emitted, err
		}
	}
	return emitted, nil
}

// PushBatch feeds a batch of tuples with semantics identical to calling
// Push for each tuple in order: completed windows are returned in order
// and archived automatically when archiving is configured. tss supplies
// per-tuple timestamps for time-based windows and may be nil for
// count-based ones. The batch's neighbor-discovery phase fans out across
// Options.Workers goroutines; batching one slide's worth of tuples per
// call amortizes best.
func (e *Engine) PushBatch(pts []Point, tss []int64) ([]*WindowResult, error) {
	if tss != nil && len(tss) != len(pts) {
		return nil, fmt.Errorf("streamsum: PushBatch got %d timestamps for %d points", len(tss), len(pts))
	}
	bp, ok := e.proc.(stream.BatchProcessor)
	if !ok {
		// No batch-capable processor wired in: degrade to a Push loop.
		var out []*WindowResult
		for i, p := range pts {
			var ts int64
			if tss != nil {
				ts = tss[i]
			}
			emitted, err := e.Push(p, ts)
			out = append(out, emitted...)
			if err != nil {
				return out, err
			}
		}
		return out, nil
	}
	emitted, err := bp.PushBatch(pts, tss)
	// Windows completed before a mid-batch error are still real output and
	// get archived, exactly as a sequential Push loop would have done
	// before hitting the bad tuple. An archive failure must not mask the
	// ingest error (the caller needs to know the batch aborted), so the
	// two are joined.
	for _, w := range emitted {
		if aerr := e.archiveWindow(w); aerr != nil {
			return emitted, errors.Join(err, aerr)
		}
	}
	return emitted, err
}

// Flush force-emits the current (partial) window, archiving its summaries
// like Push does.
func (e *Engine) Flush() (*WindowResult, error) {
	w := e.proc.Flush()
	if err := e.archiveWindow(w); err != nil {
		return w, err
	}
	return w, nil
}

func (e *Engine) archiveWindow(w *WindowResult) error {
	if e.base == nil {
		return nil
	}
	var err error
	if e.opts.ArchiveNovelty > 0 {
		err = e.archiveNovelWindow(w)
	} else {
		err = e.sink(0, w)
	}
	if err != nil {
		return err
	}
	e.offerTrack(w)
	return nil
}

// offerTrack feeds the window through the evolution tracker and delivers
// the transitions to Track subscriptions. The tracker exists only while
// someone is listening: it starts (empty) at the first Track
// subscription, so evolution events describe transitions since then, and
// is dropped once the last Track subscription cancels.
func (e *Engine) offerTrack(w *WindowResult) {
	if e.subs == nil || !e.subs.WantsTrack() {
		e.tracker = nil
		return
	}
	if e.tracker == nil {
		e.tracker = track.New()
	}
	e.subs.OfferTrack(e.tracker.Advance(w))
}

// archiveNovelWindow is evolution-driven archiving: a summary enters the
// base only if nothing already archived matches it within the novelty
// threshold, so the base stores each recurring pattern once instead of
// once per window.
//
// The whole window is novelty-tested in one batched match.Any pass over
// a single pre-window snapshot (one filter-and-refine pipeline for all
// summaries, instead of one full query per summary), then a cheap
// sequential pass resolves novelty among the window's own survivors —
// summary i is also suppressed by a window-mate j < i that was archived,
// exactly as the per-cluster probe loop would have seen it. The one
// semantic difference from per-cluster probing: an old entry evicted by
// capacity pressure mid-window still suppresses later window-mates here
// (the pass pins the pre-window state), which matters only for
// capacity-bounded bases and is the price of running one pass.
func (e *Engine) archiveNovelWindow(w *WindowResult) error {
	sums := make([]*Summary, 0, len(w.Clusters))
	for _, c := range w.Clusters {
		if c.Summary != nil {
			sums = append(sums, c.Summary)
		}
	}
	if len(sums) == 0 {
		// Still one evaluated window: the registry's sequence counts
		// windows (and tags this window's evolution events), not
		// archivals.
		return e.subs.Offer(nil)
	}
	matched := make([]bool, len(sums))
	if e.base.Len() > 0 {
		var err error
		matched, err = match.Any(e.base.Snapshot(), sums, match.Query{
			Threshold: e.opts.ArchiveNovelty,
			Workers:   e.opts.MatchWorkers,
		})
		if err != nil {
			return err
		}
	}
	// Intra-window novelty among the survivors, against the summaries as
	// stored (the archiver may have re-compressed them): the same
	// cluster-feature gate + grid-level distance the matcher applies.
	ew := match.EqualWeights()
	var added []*Summary
	var newEntries []*ArchiveEntry
	for i, s := range sums {
		if matched[i] {
			continue
		}
		tf := s.Features().Vector()
		novel := true
		for _, a := range added {
			if match.FeatureDistance(tf, a.Features().Vector(), ew) <= e.opts.ArchiveNovelty &&
				match.RefineDistance(s, a, ew, match.DefaultAlignBudget) <= e.opts.ArchiveNovelty {
				novel = false
				break
			}
		}
		if !novel {
			continue
		}
		id, ok, err := e.base.Put(s)
		if err != nil {
			return err
		}
		if ok {
			if en := e.base.Get(id); en != nil {
				added = append(added, en.Summary)
				newEntries = append(newEntries, en)
			}
		}
	}
	// Standing queries see exactly what novelty archiving admitted — a
	// recurring pattern alerts once, not once per window.
	return e.subs.Offer(newEntries)
}

// PatternBase returns the engine's archive, or nil if archiving is
// disabled. The base is safe for concurrent use.
func (e *Engine) PatternBase() *PatternBase { return e.base }

// MatchOptions configures a cluster matching query (Figure 3).
type MatchOptions struct {
	// Target is the to-be-matched cluster's summary.
	Target *Summary
	// Threshold is the maximum distance (0..1) for a match.
	Threshold float64
	// Weights configures the metric; nil means EqualWeights.
	Weights *Weights
	// Limit, when positive, returns only the closest Limit matches.
	Limit int
	// Workers overrides the engine's Options.MatchWorkers for this query
	// when non-zero. Results are byte-identical at every setting.
	Workers int
	// Trace, when non-nil, records the query's span tree: per-phase wall
	// times and pruning detail (segments probed vs zone-skipped, summary
	// cache hits vs disk loads) as spans and attributes. The caller owns
	// the trace's lifetime (obtain one with NewMatchTrace, Finish it
	// after the query). Tracing never changes the results; it only adds
	// a few clock reads and zone re-checks.
	Trace *MatchTrace
}

// Match runs a cluster matching query against the engine's pattern base.
// The query executes against a read-only snapshot, so Match is safe from
// any goroutine concurrently with ingestion and never blocks archiving;
// its refine phase fans out across Options.MatchWorkers goroutines.
func (e *Engine) Match(opts MatchOptions) ([]Match, MatchStats, error) {
	if e.base == nil {
		return nil, MatchStats{}, fmt.Errorf("streamsum: engine has no pattern base (set Options.Archive)")
	}
	workers := opts.Workers
	if workers == 0 {
		workers = e.opts.MatchWorkers
	}
	return match.Run(e.base.Snapshot(), match.Query{
		Target:    opts.Target,
		Threshold: opts.Threshold,
		Weights:   opts.Weights,
		Limit:     opts.Limit,
		Workers:   workers,
		Trace:     opts.Trace,
	})
}

// MatchOptionsFromQuery parses a one-shot matching query in the paper's
// query language (Figure 3, FROM History) into MatchOptions plus the
// query's cluster reference — the GIVEN identifier (e.g. "input") or
// integer archive id, which the caller resolves to a Summary and assigns
// to the returned options' Target before calling Match. Standing queries
// (FROM Stream) are rejected: parse those with SubscribeOptionsFromQuery
// and register them with Subscribe.
func MatchOptionsFromQuery(q string) (MatchOptions, string, error) {
	mq, err := query.ParseMatch(q)
	if err != nil {
		return MatchOptions{}, "", err
	}
	if mq.Standing {
		return MatchOptions{}, "", fmt.Errorf("streamsum: standing query (FROM Stream): register it with Subscribe")
	}
	return MatchOptions{
		Threshold: mq.Threshold,
		Weights:   weightsOf(mq),
		Limit:     mq.Limit,
	}, mq.Target, nil
}

// MatchQuery runs a matching query written in the paper's query language
// (Figure 3) with the given target summary bound to the query's cluster
// reference. Like Match, it is safe to call concurrently with ingestion.
func (e *Engine) MatchQuery(q string, target *Summary) ([]Match, MatchStats, error) {
	mo, _, err := MatchOptionsFromQuery(q)
	if err != nil {
		return nil, MatchStats{}, err
	}
	mo.Target = target
	return e.Match(mo)
}

// StaticCluster is one cluster found by SummarizeStatic.
type StaticCluster struct {
	Members []int64 // indices into the input points
	Cores   []int64
	Summary *Summary
}

// SummarizeStatic clusters a static point set (Definition 3.1, the DBSCAN
// semantics) and builds the Basic SGS of each cluster. Use it to construct
// to-be-matched clusters from data outside the stream, or to summarize a
// finished window's data independently of the engine.
func SummarizeStatic(pts []Point, thetaR float64, thetaC int) ([]StaticCluster, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	geo, err := grid.NewGeometry(len(pts[0]), thetaR)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: thetaC})
	if err != nil {
		return nil, err
	}
	out := make([]StaticCluster, 0, len(res.Clusters))
	for ci, cl := range res.Clusters {
		cpts := make([]Point, len(cl.Members))
		isCore := make([]bool, len(cl.Members))
		for i, id := range cl.Members {
			cpts[i] = pts[id]
			isCore[i] = res.IsCore[id]
		}
		s, err := sgs.FromCluster(geo, cpts, isCore, int64(ci), 0)
		if err != nil {
			return nil, err
		}
		out = append(out, StaticCluster{Members: cl.Members, Cores: cl.Cores, Summary: s})
	}
	return out, nil
}
