package streamsum

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/core"
	"streamsum/internal/gen"
	"streamsum/internal/match"
	"streamsum/internal/stream"
	"streamsum/internal/window"
)

// TestShardedPutWithConcurrentMatching is the acceptance scenario for
// the snapshot-isolated pattern base: N sharded engines feed one base
// through stream.ArchiveWindows (one PutBatch per window) while analyst
// goroutines run matching queries against the same base the whole time.
// Run with -race; completion also proves the old reader/writer deadlock
// is gone.
func TestShardedPutWithConcurrentMatching(t *testing.T) {
	const shards = 4
	base, err := archive.New(archive.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}

	procs := make([]stream.Processor, shards)
	for i := range procs {
		eng, err := core.New(core.Config{
			Dim: 2, ThetaR: 1.0, ThetaC: 4,
			Window: window.Spec{Win: 600, Slide: 300},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = eng
	}
	sh := &stream.Sharded{
		Procs:     procs,
		OnWindow:  stream.ArchiveWindows(base, nil),
		FlushTail: true,
	}

	// Matching targets built independently of the stream.
	rng := rand.New(rand.NewSource(7))
	var pts []Point
	for i := 0; i < 300; i++ {
		pts = append(pts, Point{20 + rng.NormFloat64(), 20 + rng.NormFloat64()})
	}
	cls, err := SummarizeStatic(pts, 1.0, 4)
	if err != nil || len(cls) == 0 {
		t.Fatalf("no static target: %v", err)
	}
	target := cls[0].Summary

	data := gen.GMTI(gen.GMTIConfig{Seed: 3}, 12000)
	runDone := make(chan error, 1)
	go func() {
		_, err := sh.Run(context.Background(), stream.FromSlice(data.Points, data.TS))
		runDone <- err
	}()

	// Analysts hammer the base for the whole run: fresh-snapshot queries
	// and pinned-snapshot queries side by side.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := match.Query{Target: target, Threshold: 0.6, Limit: 5, Workers: 2}
				if m == 0 {
					if _, _, err := match.Run(base, q); err != nil {
						t.Error(err)
						return
					}
				} else {
					snap := base.Snapshot()
					r1, s1, err := match.Run(snap, q)
					if err != nil {
						t.Error(err)
						return
					}
					r2, s2, err := match.Run(snap, q)
					if err != nil {
						t.Error(err)
						return
					}
					if !reflect.DeepEqual(r1, r2) || s1 != s2 {
						t.Error("same snapshot, different answers")
						return
					}
				}
			}
		}(m)
	}

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if base.Len() == 0 {
		t.Fatal("sharded run archived nothing")
	}
}
