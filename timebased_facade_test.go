package streamsum

import (
	"testing"

	"streamsum/internal/gen"
)

func TestTimeBasedEngine(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 51}, 8000)
	// GMTI emits ~120 reports per tick; 8000 points span ~65 ticks, so the
	// window must be a few ticks wide.
	eng, err := New(Options{
		Dim: 2, ThetaR: 1.2, ThetaC: 5,
		Win: 30, Slide: 10, TimeBased: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	windows, clusters := 0, 0
	for i, p := range b.Points {
		results, err := eng.Push(p, b.TS[i])
		if err != nil {
			t.Fatal(err)
		}
		windows += len(results)
		for _, w := range results {
			clusters += len(w.Clusters)
		}
	}
	if windows == 0 || clusters == 0 {
		t.Fatalf("time-based engine: %d windows, %d clusters", windows, clusters)
	}
	// Out-of-order timestamps must be rejected.
	if _, err := eng.Push(Point{0, 0}, 0); err == nil {
		t.Fatal("out-of-order timestamp accepted")
	}
}

func TestNegativeTimestampDropped(t *testing.T) {
	eng, err := New(Options{Dim: 2, ThetaR: 1, ThetaC: 2, Win: 10, Slide: 10, TimeBased: true})
	if err != nil {
		t.Fatal(err)
	}
	// A tuple before the stream epoch can never appear in window >= 0; it
	// must be dropped, not mis-clustered or leaked. (Timestamps below -1
	// are additionally rejected as out-of-order by the monotonicity check.)
	if _, err := eng.Push(Point{0, 0}, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Push(Point{0, 0}, 5); err != nil {
		t.Fatal(err)
	}
	w, err := eng.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range w.Clusters {
		if len(c.Members) > 1 {
			t.Fatal("negative-timestamp tuple clustered")
		}
	}
}
