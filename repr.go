package streamsum

import (
	"streamsum/internal/regen"
	"streamsum/internal/sgs"
)

// Representation utilities built on SGS: approximate full-representation
// re-generation (§1 names it as a direct application of the
// summarization) and structural diffing between two snapshots of a
// tracked cluster.

// RegenOptions tunes Regenerate.
type RegenOptions = regen.Options

// Regenerate synthesizes an approximate full representation from a
// summary: each skeletal grid cell's exact population is scattered
// uniformly inside the cell, conserving total population and the density
// distribution at cell granularity. Every generated point lies within θr
// of a true member of the original cluster (Lemma 4.3).
func Regenerate(s *Summary, opts RegenOptions) []Point {
	return regen.Points(s, opts)
}

// SummaryDiff describes the structural change between two summaries of
// the same cluster at the same resolution.
type SummaryDiff = sgs.Diff

// DiffSummaries compares two summaries (old → new): cells added/removed,
// status promotions/demotions, population movement, and cell-set overlap.
func DiffSummaries(old, new *Summary) (SummaryDiff, error) {
	return sgs.Compare(old, new)
}
