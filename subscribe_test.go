package streamsum

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/core"
	"streamsum/internal/gen"
	"streamsum/internal/match"
	"streamsum/internal/sgs"
	"streamsum/internal/stream"
	"streamsum/internal/sub"
	"streamsum/internal/trace"
	"streamsum/internal/window"
)

// subTargets runs the stream once without subscriptions and returns a
// few archived summaries to use as standing-query targets.
func subTargets(t *testing.T, n int) []*Summary {
	t.Helper()
	eng, err := New(Options{Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000, Archive: &ArchiveOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.GMTI(gen.GMTIConfig{Seed: 21}, 12000)
	if _, err := eng.PushBatch(data.Points, nil); err != nil {
		t.Fatal(err)
	}
	base := eng.PatternBase()
	if base.Len() < n {
		t.Fatalf("fixture archived only %d clusters", base.Len())
	}
	var out []*Summary
	step := base.Len() / n
	for i := 0; i < n; i++ {
		e := base.Get(int64(i * step))
		if e == nil {
			t.Fatalf("no archived cluster %d", i*step)
		}
		out = append(out, e.Summary)
	}
	return out
}

type subRun struct {
	ids    []int64
	seqs   []uint64
	dists  []float64
	sums   [][]byte // marshaled entry summaries
	target *Summary
	thresh float64
	w      *Weights
}

// runSubscribed ingests the fixture stream with the given subscriptions
// registered up front and returns each one's delivered event stream.
func runSubscribed(t *testing.T, workers int, targets []*Summary, threshs []float64, weights []*Weights) []subRun {
	t.Helper()
	eng, err := New(Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000,
		Archive: &ArchiveOptions{}, SubWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]subRun, len(targets))
	subs := make([]*Subscription, len(targets))
	var wg sync.WaitGroup
	for i := range targets {
		runs[i] = subRun{target: targets[i], thresh: threshs[i], w: weights[i]}
		s, err := eng.Subscribe(SubscribeOptions{Target: targets[i], Threshold: threshs[i], Weights: weights[i]})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
		wg.Add(1)
		go func(i int, s *Subscription) {
			defer wg.Done()
			for ev := range s.Events() {
				runs[i].ids = append(runs[i].ids, ev.EntryID)
				runs[i].seqs = append(runs[i].seqs, ev.Seq)
				runs[i].dists = append(runs[i].dists, ev.Distance)
				sum := ev.Entry.Summary
				if sum == nil {
					t.Errorf("event for entry %d carries no summary", ev.EntryID)
					return
				}
				runs[i].sums = append(runs[i].sums, sgs.Marshal(sum))
			}
		}(i, s)
	}
	data := gen.GMTI(gen.GMTIConfig{Seed: 21}, 12000)
	for lo := 0; lo+1000 <= len(data.Points); lo += 1000 {
		if _, err := eng.PushBatch(data.Points[lo:lo+1000], nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		s.Sync()
		s.Cancel()
	}
	wg.Wait()

	// Cross-check against a full scan of the final archive: exactly the
	// entries within threshold (gate + grid-level refine, the matcher's
	// predicate) must have produced events, in archive order.
	snap := eng.PatternBase().Snapshot()
	for i := range runs {
		w := EqualWeights()
		if runs[i].w != nil {
			w = *runs[i].w
		}
		tf := runs[i].target.Features().Vector()
		tmbr := runs[i].target.MBR()
		var want []int64
		snap.All(func(e *ArchiveEntry) bool {
			if w.PositionSensitive && !tmbr.Intersects(e.MBR) {
				return true
			}
			if match.FeatureDistance(tf, e.Features.Vector(), w) > runs[i].thresh {
				return true
			}
			if match.RefineDistance(runs[i].target, e.Summary, w, match.DefaultAlignBudget) <= runs[i].thresh {
				want = append(want, e.ID)
			}
			return true
		})
		if !reflect.DeepEqual(runs[i].ids, want) {
			t.Fatalf("sub %d (workers=%d): events %v, full-scan expects %v", i, workers, runs[i].ids, want)
		}
		for j := 1; j < len(runs[i].seqs); j++ {
			if runs[i].seqs[j] < runs[i].seqs[j-1] {
				t.Fatalf("sub %d: window sequence went backwards at %d", i, j)
			}
		}
	}
	return runs
}

// TestSubscribeDeterministicAcrossSubWorkers: a standing query's event
// stream — ids, window sequence, distances, and the summaries the events
// carry — is byte-identical at SubWorkers 1, 2 and 8, and always equals
// what a one-shot full scan of the final archive would select.
func TestSubscribeDeterministicAcrossSubWorkers(t *testing.T) {
	targets := subTargets(t, 6)
	threshs := make([]float64, len(targets))
	weights := make([]*Weights, len(targets))
	pos := Weights{PositionSensitive: true, Volume: 0.25, Status: 0.25, Density: 0.25, Connectivity: 0.25}
	for i := range targets {
		threshs[i] = 0.2 + 0.1*float64(i%3)
		if i%3 == 2 {
			weights[i] = &pos
		}
	}
	ref := runSubscribed(t, 1, targets, threshs, weights)
	total := 0
	for _, r := range ref {
		total += len(r.ids)
	}
	if total == 0 {
		t.Fatal("fixture produced no subscription events; test is vacuous")
	}
	for _, workers := range []int{2, 8} {
		got := runSubscribed(t, workers, targets, threshs, weights)
		for i := range ref {
			if !reflect.DeepEqual(got[i].ids, ref[i].ids) ||
				!reflect.DeepEqual(got[i].seqs, ref[i].seqs) ||
				!reflect.DeepEqual(got[i].dists, ref[i].dists) {
				t.Fatalf("workers=%d sub %d: event stream diverges from workers=1", workers, i)
			}
			for j := range ref[i].sums {
				if !bytes.Equal(got[i].sums[j], ref[i].sums[j]) {
					t.Fatalf("workers=%d sub %d: event %d summary bytes differ", workers, i, j)
				}
			}
		}
	}
}

// TestSubscribeIncremental: a subscription registered mid-stream sees
// only clusters archived after it — never the history.
func TestSubscribeIncremental(t *testing.T) {
	targets := subTargets(t, 1)
	eng, err := New(Options{Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000, Archive: &ArchiveOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.GMTI(gen.GMTIConfig{Seed: 21}, 12000)
	half := len(data.Points) / 2
	if _, err := eng.PushBatch(data.Points[:half], nil); err != nil {
		t.Fatal(err)
	}
	already := int64(eng.PatternBase().Len())
	if already == 0 {
		t.Fatal("no history before subscribing")
	}
	s, err := eng.Subscribe(SubscribeOptions{Target: targets[0], Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range s.Events() {
			got = append(got, ev.EntryID)
		}
	}()
	if _, err := eng.PushBatch(data.Points[half:], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Sync()
	s.Cancel()
	<-done
	if len(got) == 0 {
		t.Fatal("no events after subscribing; fixture is vacuous")
	}
	for _, id := range got {
		if id < already {
			t.Fatalf("event for pre-subscription entry %d (history had %d entries)", id, already)
		}
	}
}

// TestSubscribeChurnSharded races subscribe/unsubscribe churn against
// 4-shard ingestion into one pattern base (run under -race in CI), and
// checks that the stable subscriptions' event multisets are identical
// at SubWorkers 1, 2 and 8 — shard interleaving may reorder archiving
// (and so archive ids), but never changes what a standing query sees.
func TestSubscribeChurnSharded(t *testing.T) {
	// Targets come from a plain run of the same sharded configuration, so
	// the standing queries actually fire against the churn runs' clusters.
	targets := func() []*Summary {
		base, err := archive.New(archive.Config{Dim: 2})
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]stream.Processor, 4)
		for i := range procs {
			eng, err := core.New(core.Config{
				Dim: 2, ThetaR: 1.0, ThetaC: 4,
				Window: window.Spec{Win: 2000, Slide: 500},
			})
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = eng
		}
		sh := &stream.Sharded{Procs: procs, OnWindow: stream.ArchiveWindows(base, nil), FlushTail: true}
		data := gen.GMTI(gen.GMTIConfig{Seed: 9}, 10000)
		if _, err := sh.Run(context.Background(), stream.FromSlice(data.Points, data.TS)); err != nil {
			t.Fatal(err)
		}
		if base.Len() < 4 {
			t.Fatalf("sharded fixture archived only %d clusters", base.Len())
		}
		var out []*Summary
		step := base.Len() / 4
		for i := 0; i < 4; i++ {
			out = append(out, base.Get(int64(i*step)).Summary)
		}
		return out
	}()
	run := func(workers int) [][]string {
		reg, err := sub.NewRegistry(sub.Config{Dim: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		base, err := archive.New(archive.Config{Dim: 2})
		if err != nil {
			t.Fatal(err)
		}
		stable := make([]*sub.Subscription, len(targets))
		collected := make([][]string, len(targets))
		var wg sync.WaitGroup
		for i, tgt := range targets {
			s, err := reg.Subscribe(sub.Options{Target: tgt, Threshold: 0.35})
			if err != nil {
				t.Fatal(err)
			}
			stable[i] = s
			wg.Add(1)
			go func(i int, s *sub.Subscription) {
				defer wg.Done()
				for ev := range s.Events() {
					sum, err := ev.Entry.LoadSummary()
					if err != nil {
						t.Error(err)
						return
					}
					// Canonical form: archive ids differ across shard
					// interleavings, the summaries do not.
					c := sum.Clone()
					c.ID = 0
					collected[i] = append(collected[i], fmt.Sprintf("%.9f/%x", ev.Distance, sgs.Marshal(c)))
				}
			}(i, s)
		}

		procs := make([]stream.Processor, 4)
		for i := range procs {
			eng, err := core.New(core.Config{
				Dim: 2, ThetaR: 1.0, ThetaC: 4,
				Window: window.Spec{Win: 2000, Slide: 500},
			})
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = eng
		}
		sh := &stream.Sharded{
			Procs: procs,
			OnWindow: stream.ArchiveWindowsEval(base,
				func(_ int, _ *core.WindowResult, entries []*archive.Entry, tr *trace.Trace) error {
					return reg.OfferTraced(entries, tr)
				}, nil),
			FlushTail: true,
		}

		// Churners: subscribe and unsubscribe continuously during the run,
		// each keeping a small rolling window of live subscriptions (an
		// unbounded backlog would make every window's refine phase scale
		// with the churn rate instead of the subscription population).
		stop := make(chan struct{})
		var churn sync.WaitGroup
		for g := 0; g < 3; g++ {
			churn.Add(1)
			go func(g int) {
				defer churn.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				var kept []*sub.Subscription
				defer func() {
					for _, s := range kept {
						s.Cancel()
					}
				}()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s, err := reg.Subscribe(sub.Options{
						Target:    targets[rng.Intn(len(targets))],
						Threshold: 0.1 + 0.2*rng.Float64(),
						Track:     i%2 == 0,
					})
					if err != nil {
						t.Error(err)
						return
					}
					go func() {
						for range s.Events() {
						}
					}()
					kept = append(kept, s)
					if len(kept) > 8 {
						kept[0].Cancel()
						kept = kept[1:]
					}
				}
			}(g)
		}

		data := gen.GMTI(gen.GMTIConfig{Seed: 9}, 10000)
		if _, err := sh.Run(context.Background(), stream.FromSlice(data.Points, data.TS)); err != nil {
			t.Fatal(err)
		}
		close(stop)
		churn.Wait()
		for i, s := range stable {
			s.Sync()
			s.Cancel()
			_ = i
		}
		wg.Wait()
		reg.Close()
		for i := range collected {
			sort.Strings(collected[i])
		}
		return collected
	}

	ref := run(1)
	total := 0
	for _, evs := range ref {
		total += len(evs)
	}
	if total == 0 {
		t.Fatal("stable subscriptions saw no events; fixture is vacuous")
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range ref {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Fatalf("workers=%d: stable sub %d event multiset diverges (%d vs %d events)",
					workers, i, len(got[i]), len(ref[i]))
			}
		}
	}
}

// TestSubscribeTrack: Track subscriptions receive evolution events;
// within a window, match events precede them; the tracker only runs
// while someone listens.
func TestSubscribeTrack(t *testing.T) {
	targets := subTargets(t, 1)
	eng, err := New(Options{Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 4000, Slide: 1000, Archive: &ArchiveOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Subscribe(SubscribeOptions{Target: targets[0], Threshold: 0.4, Track: true})
	if err != nil {
		t.Fatal(err)
	}
	var evs []SubEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range s.Events() {
			evs = append(evs, ev)
		}
	}()
	data := gen.GMTI(gen.GMTIConfig{Seed: 21}, 12000)
	if _, err := eng.PushBatch(data.Points, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Sync()
	s.Cancel()
	<-done

	var matches, evolutions int
	lastKindBySeq := map[uint64]SubEventKind{}
	for _, ev := range evs {
		switch ev.Kind {
		case SubMatch:
			matches++
			if lastKindBySeq[ev.Seq] == SubEvolution {
				t.Fatalf("match event after evolution event within window %d", ev.Seq)
			}
		case SubEvolution:
			evolutions++
			if ev.Track == nil {
				t.Fatal("evolution event without a track payload")
			}
		}
		lastKindBySeq[ev.Seq] = ev.Kind
	}
	if evolutions == 0 {
		t.Fatal("no evolution events delivered to a Track subscription")
	}
	if matches == 0 {
		t.Fatal("no match events delivered; fixture is vacuous")
	}
	st := eng.SubscriptionStats()
	if st.Subscriptions != 0 || st.Events == 0 || st.Windows == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeQueryLanguage: FROM Stream parses into SubscribeOptions;
// FROM History is rejected by the subscription path and FROM Stream by
// the one-shot path.
func TestSubscribeQueryLanguage(t *testing.T) {
	so, ref, err := SubscribeOptionsFromQuery(
		"GIVEN DensityBasedCluster 7 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.3 POSITION SENSITIVE")
	if err != nil {
		t.Fatal(err)
	}
	if ref != "7" || so.Threshold != 0.3 || so.Weights == nil || !so.Weights.PositionSensitive {
		t.Fatalf("parsed %+v ref %q", so, ref)
	}
	if _, _, err := SubscribeOptionsFromQuery(
		"GIVEN DensityBasedCluster 7 SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3"); err == nil {
		t.Fatal("SubscribeOptionsFromQuery accepted a one-shot query")
	}
	if _, _, err := MatchOptionsFromQuery(
		"GIVEN DensityBasedCluster 7 SELECT DensityBasedClusters FROM Stream WHERE Distance <= 0.3"); err == nil {
		t.Fatal("MatchOptionsFromQuery accepted a standing query")
	}
	// An engine without a pattern base cannot register standing queries.
	eng, err := New(Options{Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 400, Slide: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Subscribe(SubscribeOptions{Threshold: 0.2, Track: true}); err == nil {
		t.Fatal("Subscribe succeeded without a pattern base")
	}
}
