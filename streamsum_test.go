package streamsum

import (
	"math/rand"
	"reflect"
	"testing"

	"streamsum/internal/gen"
)

func TestEngineEndToEnd(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 1}, 4000)
	eng, err := New(Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 1000, Slide: 500,
		Archive: &ArchiveOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	windows, clusters := 0, 0
	var last *Cluster
	for _, p := range b.Points {
		results, err := eng.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range results {
			windows++
			clusters += len(w.Clusters)
			for _, c := range w.Clusters {
				if c.Summary == nil {
					t.Fatal("C-SGS cluster without summary")
				}
				last = c
			}
		}
	}
	if windows == 0 || clusters == 0 || last == nil {
		t.Fatalf("windows=%d clusters=%d", windows, clusters)
	}
	if eng.PatternBase().Len() != clusters {
		t.Fatalf("archived %d of %d clusters", eng.PatternBase().Len(), clusters)
	}
	// Matching an extracted cluster against the archive finds itself.
	matches, stats, err := eng.Match(MatchOptions{Target: last.Summary, Threshold: 0.2, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].Distance > 1e-9 {
		t.Fatalf("self match failed: %+v", matches)
	}
	if stats.IndexCandidates == 0 {
		t.Fatal("no index candidates")
	}
}

func TestEngineFullOnly(t *testing.T) {
	eng, err := New(Options{Dim: 2, ThetaR: 1, ThetaC: 3, Win: 500, Slide: 500, FullOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.GMTI(gen.GMTIConfig{Seed: 2}, 1200)
	sawCluster := false
	for _, p := range b.Points {
		results, err := eng.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range results {
			for _, c := range w.Clusters {
				sawCluster = true
				if c.Summary != nil {
					t.Fatal("FullOnly produced a summary")
				}
			}
		}
	}
	if !sawCluster {
		t.Fatal("no clusters")
	}
	if eng.PatternBase() != nil {
		t.Fatal("FullOnly engine should have no pattern base")
	}
	if _, _, err := eng.Match(MatchOptions{}); err == nil {
		t.Fatal("Match without pattern base should fail")
	}
	// FullOnly + Archive is contradictory.
	if _, err := New(Options{Dim: 2, ThetaR: 1, ThetaC: 3, Win: 10, Slide: 10,
		FullOnly: true, Archive: &ArchiveOptions{}}); err == nil {
		t.Fatal("FullOnly+Archive accepted")
	}
}

func TestNewFromQuery(t *testing.T) {
	eng, err := NewFromQuery(`DETECT DensityBasedClusters f+s FROM trades
		USING theta_range = 1.0 AND theta_cnt = 4
		IN WINDOWS WITH win = 800 AND slide = 400`, 2, &ArchiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.GMTI(gen.GMTIConfig{Seed: 3}, 2500)
	for _, p := range b.Points {
		if _, err := eng.Push(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if eng.PatternBase().Len() == 0 {
		t.Fatal("query-built engine archived nothing")
	}
	if _, err := NewFromQuery("garbage", 2, nil); err == nil {
		t.Fatal("bad query accepted")
	}
	// Full-only via query language.
	eng2, err := NewFromQuery(`DETECT DensityBasedClusters FULL FROM s
		USING theta_range = 1 AND theta_cnt = 3
		IN WINDOWS WITH win = 100 AND slide = 100`, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng2.PatternBase() != nil {
		t.Fatal("full-only query engine has pattern base")
	}
}

func TestMatchQueryLanguage(t *testing.T) {
	eng, err := New(Options{Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 1000, Slide: 500,
		Archive: &ArchiveOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.GMTI(gen.GMTIConfig{Seed: 4}, 4000)
	var target *Summary
	for _, p := range b.Points {
		results, err := eng.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range results {
			for _, c := range w.Clusters {
				target = c.Summary
			}
		}
	}
	if target == nil {
		t.Fatal("no clusters")
	}
	matches, _, err := eng.MatchQuery(`GIVEN DensityBasedCluster input
		SELECT DensityBasedClusters FROM History
		WHERE Distance <= 0.2 LIMIT 3`, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || len(matches) > 3 {
		t.Fatalf("%d matches", len(matches))
	}
	// With weights and position sensitivity.
	if _, _, err := eng.MatchQuery(`GIVEN DensityBasedCluster input
		SELECT DensityBasedClusters FROM History WHERE Distance <= 0.3
		WITH WEIGHTS volume = 0.4, status = 0.2, density = 0.2, connectivity = 0.2
		POSITION SENSITIVE`, target); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.MatchQuery("nonsense", target); err == nil {
		t.Fatal("bad match query accepted")
	}
}

func TestSummarizeStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []Point
	for i := 0; i < 200; i++ {
		pts = append(pts, Point{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
	}
	for i := 0; i < 200; i++ {
		pts = append(pts, Point{20 + rng.NormFloat64()*0.5, rng.NormFloat64() * 0.5})
	}
	clusters, err := SummarizeStatic(pts, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("%d clusters", len(clusters))
	}
	for _, c := range clusters {
		if c.Summary == nil || c.Summary.NumCells() == 0 {
			t.Fatal("missing summary")
		}
		if c.Summary.TotalPopulation() != len(c.Members) {
			t.Fatal("population mismatch")
		}
		if len(c.Cores) == 0 {
			t.Fatal("no cores")
		}
	}
	empty, err := SummarizeStatic(nil, 0.5, 4)
	if err != nil || empty != nil {
		t.Fatalf("empty input: %v %v", empty, err)
	}
}

func TestFlushArchives(t *testing.T) {
	eng, err := New(Options{Dim: 2, ThetaR: 1.0, ThetaC: 3, Win: 10000, Slide: 10000,
		Archive: &ArchiveOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.GMTI(gen.GMTIConfig{Seed: 6}, 500)
	for _, p := range b.Points {
		if _, err := eng.Push(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	w, err := eng.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Clusters) == 0 {
		t.Fatal("flush found no clusters")
	}
	if eng.PatternBase().Len() != len(w.Clusters) {
		t.Fatal("flush did not archive")
	}
}

// TestNewArchiveThetaValidation: New must surface archive.New's
// validation error when Level/ByteBudget demand compression without a
// valid Theta, instead of silently coercing Theta to 2.
func TestNewArchiveThetaValidation(t *testing.T) {
	base := Options{Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 1000, Slide: 500}

	o := base
	o.Archive = &ArchiveOptions{Level: 1}
	if _, err := New(o); err == nil {
		t.Fatal("Level without Theta accepted")
	}
	o = base
	o.Archive = &ArchiveOptions{ByteBudget: 100}
	if _, err := New(o); err == nil {
		t.Fatal("ByteBudget without Theta accepted")
	}
	o = base
	o.Archive = &ArchiveOptions{Level: 1, Theta: 3}
	if _, err := New(o); err != nil {
		t.Fatalf("valid compression config rejected: %v", err)
	}
}

// TestNewFromQueryThetaDefault: the query-language path defaults Theta
// explicitly (the language cannot express it) without mutating the
// caller's struct.
func TestNewFromQueryThetaDefault(t *testing.T) {
	q := `DETECT DensityBasedClusters f+s FROM s
		USING theta_range = 1.0 AND theta_cnt = 4
		IN WINDOWS WITH win = 800 AND slide = 400`
	ao := &ArchiveOptions{Level: 1}
	eng, err := NewFromQuery(q, 2, ao)
	if err != nil {
		t.Fatalf("NewFromQuery did not default Theta: %v", err)
	}
	if got := eng.PatternBase().Config().Theta; got != 2 {
		t.Fatalf("defaulted Theta = %d, want 2", got)
	}
	if ao.Theta != 0 {
		t.Fatalf("caller's ArchiveOptions mutated: Theta = %d", ao.Theta)
	}
	// An explicit Theta passes through untouched.
	eng2, err := NewFromQuery(q, 2, &ArchiveOptions{Level: 1, Theta: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.PatternBase().Config().Theta; got != 4 {
		t.Fatalf("explicit Theta = %d, want 4", got)
	}
}

// TestEngineMatchWorkersDeterminism: facade-level acceptance check that
// Match results are byte-identical at MatchWorkers 1/2/8.
func TestEngineMatchWorkersDeterminism(t *testing.T) {
	eng, err := New(Options{
		Dim: 2, ThetaR: 1.0, ThetaC: 4, Win: 1000, Slide: 500,
		Archive: &ArchiveOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.GMTI(gen.GMTIConfig{Seed: 5}, 5000)
	var target *Summary
	for _, p := range b.Points {
		results, err := eng.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range results {
			for _, c := range w.Clusters {
				if c.Summary != nil {
					target = c.Summary
				}
			}
		}
	}
	if target == nil || eng.PatternBase().Len() == 0 {
		t.Fatal("no archived clusters")
	}
	ref, refStats, err := eng.Match(MatchOptions{Target: target, Threshold: 1, Limit: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no matches")
	}
	for _, workers := range []int{2, 8} {
		got, gotStats, err := eng.Match(MatchOptions{Target: target, Threshold: 1, Limit: 10, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) || refStats != gotStats {
			t.Fatalf("MatchWorkers %d diverged from sequential", workers)
		}
	}
}
