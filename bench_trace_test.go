// Tracing-overhead benchmarks: the workers1 cases of BenchmarkPushBatch
// and BenchmarkMatchRun re-run with span recording active, so the cost
// of tracing a batch/query is a directly comparable ns/op delta (see
// BENCH.md's "Tracing overhead" note). Two knobs are measured:
//
//	.../recorder — the flight recorder enabled (the sgsd default):
//	               spans record into pooled fixed-size buffers and the
//	               completed trace commits to the per-category ring.
//	                With the recorder disabled (every other benchmark in
//	               this repo), ingest tracing short-circuits to nil and
//	               costs nothing — asserted by TestZeroAllocRecording's
//	               AllocsPerRun checks in internal/trace.
//
// The match benchmark threads its trace explicitly (Query.Trace), which
// also exercises the per-shard child spans of the filter fan-out.
package streamsum

import (
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/match"
	"streamsum/internal/trace"
)

// withBenchRecorder enables the process flight recorder for one
// benchmark and restores it after (other benchmarks in the package
// must keep measuring the untraced path).
func withBenchRecorder(b *testing.B) {
	b.Helper()
	old := trace.Default.Capacity()
	trace.Default.SetCapacity(32)
	b.Cleanup(func() { trace.Default.SetCapacity(old) })
}

// BenchmarkPushBatchTraced mirrors BenchmarkPushBatch/workers1 with the
// flight recorder on: each iteration records one ingest trace
// (discovery/apply spans per segment, an emit span per window).
func BenchmarkPushBatchTraced(b *testing.B) {
	withBenchRecorder(b)
	data := benchSTT(ingestWin + 60*ingestSlide)
	pointAt := func(id int64) Point { return data.Points[id%int64(len(data.Points))] }
	ex, err := core.New(ingestConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]Point, ingestSlide)
	var pushed int64
	fill := func() {
		for j := range batch {
			batch[j] = pointAt(pushed)
			pushed++
		}
	}
	for pushed < ingestWin {
		fill()
		if _, err := ex.PushBatch(batch, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		fill()
		if _, err := ex.PushBatch(batch, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*ingestSlide/b.Elapsed().Seconds(), "tuples/sec")
}

// BenchmarkMatchRunTraced mirrors BenchmarkMatchRun/workers1 with a
// recorded span trace per query: filter/refine/order phase spans plus
// one child span per probed shard.
func BenchmarkMatchRunTraced(b *testing.B) {
	withBenchRecorder(b)
	sums := matchFixture(b, matchBaseSize)
	base := matchBaseOf(b, sums)
	snap := base.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.Default.Start(trace.Match, "query")
		q := match.Query{
			Target: sums[i%len(sums)], Threshold: matchThreshold,
			Limit: 5, Workers: 1, Trace: tr,
		}
		if _, _, err := match.Run(snap, q); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}
