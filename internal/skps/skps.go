// Package skps implements the Skeletal Point Summarization of §4.2
// (Definition 4.1): a graph whose vertices are a minimal set of connected
// core objects (skeletal points) whose neighborhoods jointly cover the
// cluster, with edges between neighboring skeletal points.
//
// Finding a minimum such set is the connected dominating set problem
// (NP-complete); following the paper we compute an approximation with the
// greedy MG algorithm of Guha & Khuller [9]. The expense of this
// computation — and the instability of the resulting graphs — is exactly
// why the paper abandons SkPS in favor of SGS; this package exists to
// reproduce that comparison (Figs. 7-9).
//
// Matching uses a suboptimal beam-search graph edit distance after
// Neuhaus, Riesen & Bunke [13].
package skps

import (
	"fmt"
	"math"
	"sort"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// Summary is the SkPS of one cluster.
type Summary struct {
	ID     int64
	Window int64
	// Nodes are the skeletal points (positions of the selected cores).
	Nodes []geom.Point
	// Edges connect neighboring skeletal points, as index pairs into
	// Nodes with Edges[i][0] < Edges[i][1].
	Edges [][2]int32
}

// Size returns the storage footprint in bytes (positions + edge list).
func (s *Summary) Size() int {
	dim := 0
	if len(s.Nodes) > 0 {
		dim = len(s.Nodes[0])
	}
	return len(s.Nodes)*8*dim + len(s.Edges)*8
}

// Degree returns the degree sequence of the graph.
func (s *Summary) Degree() []int {
	deg := make([]int, len(s.Nodes))
	for _, e := range s.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg
}

// FromCluster computes the SkPS of a cluster given its full representation
// and core flags, using the greedy connected-dominating-set construction.
func FromCluster(pts []geom.Point, isCore []bool, thetaR float64, id, window int64) (*Summary, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("skps: empty cluster")
	}
	if len(pts) != len(isCore) {
		return nil, fmt.Errorf("skps: pts/isCore length mismatch")
	}
	geo, err := grid.NewGeometry(len(pts[0]), thetaR)
	if err != nil {
		return nil, err
	}
	ix := grid.NewPointIndex(geo)
	for i, p := range pts {
		ix.Insert(int64(i), p)
	}
	n := len(pts)
	nbrs := make([][]int32, n)
	for i, p := range pts {
		ix.RangeQuery(p, func(e grid.Entry) bool {
			if int(e.ID) != i {
				nbrs[i] = append(nbrs[i], int32(e.ID))
			}
			return true
		})
	}
	var cores []int
	for i := range pts {
		if isCore[i] {
			cores = append(cores, i)
		}
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("skps: cluster has no core objects")
	}

	covered := make([]bool, n)
	selected := make([]bool, n)
	coverCount := func(c int) int {
		cnt := 0
		if !covered[c] {
			cnt++
		}
		for _, j := range nbrs[c] {
			if !covered[j] {
				cnt++
			}
		}
		return cnt
	}
	cover := func(c int) {
		covered[c] = true
		for _, j := range nbrs[c] {
			covered[j] = true
		}
	}
	uncovered := n

	recount := func() {
		uncovered = 0
		for _, c := range covered {
			if !c {
				uncovered++
			}
		}
	}

	// Seed: the core covering the most objects (ties by index for
	// determinism).
	seed := cores[0]
	best := -1
	for _, c := range cores {
		if cc := coverCount(c); cc > best {
			best, seed = cc, c
		}
	}
	selected[seed] = true
	cover(seed)
	recount()
	var skeletal []int
	skeletal = append(skeletal, seed)

	// Frontier growth: repeatedly select the unselected core adjacent to
	// the selected set that covers the most uncovered objects; if the whole
	// frontier is useless, walk the core graph toward the nearest useful
	// core, selecting the path (keeps the set connected, as MG requires).
	for uncovered > 0 {
		bestGain, bestCore := 0, -1
		for _, s := range skeletal {
			for _, j := range nbrs[s] {
				if !isCore[j] || selected[j] {
					continue
				}
				if g := coverCount(int(j)); g > bestGain || (g == bestGain && bestCore >= 0 && int(j) < bestCore) {
					bestGain, bestCore = g, int(j)
				}
			}
		}
		if bestCore >= 0 && bestGain > 0 {
			selected[bestCore] = true
			cover(bestCore)
			uncovered -= bestGain
			skeletal = append(skeletal, bestCore)
			continue
		}
		// BFS through cores from the selected set to the nearest core with
		// positive gain.
		path := bfsToGain(skeletal, nbrs, isCore, selected, coverCount)
		if path == nil {
			// No reachable gain: remaining uncovered objects are not
			// attached to this cluster's cores (cannot happen for a
			// well-formed cluster, but guard against bad input).
			break
		}
		for _, c := range path {
			if !selected[c] {
				selected[c] = true
				cover(c)
				skeletal = append(skeletal, c)
			}
		}
		recount()
	}

	sort.Ints(skeletal)
	idx := make(map[int]int32, len(skeletal))
	s := &Summary{ID: id, Window: window}
	for i, c := range skeletal {
		idx[c] = int32(i)
		s.Nodes = append(s.Nodes, pts[c].Clone())
	}
	for _, c := range skeletal {
		for _, j := range nbrs[c] {
			if selected[j] && int(j) > c {
				s.Edges = append(s.Edges, [2]int32{idx[c], idx[int(j)]})
			}
		}
	}
	sort.Slice(s.Edges, func(i, j int) bool {
		if s.Edges[i][0] != s.Edges[j][0] {
			return s.Edges[i][0] < s.Edges[j][0]
		}
		return s.Edges[i][1] < s.Edges[j][1]
	})
	return s, nil
}

// bfsToGain finds a shortest core-graph path from the selected set to a
// core with positive coverage gain; it returns the path's cores (excluding
// the already-selected start).
func bfsToGain(skeletal []int, nbrs [][]int32, isCore, selected []bool, gain func(int) int) []int {
	parent := make(map[int]int)
	var queue []int
	for _, s := range skeletal {
		queue = append(queue, s)
		parent[s] = -1
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, j := range nbrs[x] {
			c := int(j)
			if !isCore[c] || selected[c] {
				continue
			}
			if _, seen := parent[c]; seen {
				continue
			}
			parent[c] = x
			if gain(c) > 0 {
				var path []int
				for v := c; v != -1 && !selected[v]; v = parent[v] {
					path = append(path, v)
				}
				// Reverse for root-to-leaf order.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, c)
		}
	}
	return nil
}

// Verify checks Definition 4.1 on a summary against the cluster it came
// from: every object is in the closed neighborhood of some skeletal point,
// every skeletal point is a core object, and the skeletal graph is
// connected. Used by tests.
func (s *Summary) Verify(pts []geom.Point, isCore []bool, thetaR float64) error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("skps: empty summary")
	}
	for _, p := range pts {
		ok := false
		for _, q := range s.Nodes {
			if geom.WithinDist(p, q, thetaR) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("skps: object %v uncovered", p)
		}
	}
	// Connectivity.
	if len(s.Nodes) > 1 {
		adj := make([][]int32, len(s.Nodes))
		for _, e := range s.Edges {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		seen := make([]bool, len(s.Nodes))
		stack := []int32{0}
		seen[0] = true
		cnt := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !seen[y] {
					seen[y] = true
					cnt++
					stack = append(stack, y)
				}
			}
		}
		if cnt != len(s.Nodes) {
			return fmt.Errorf("skps: skeletal graph disconnected (%d of %d reachable)", cnt, len(s.Nodes))
		}
	}
	return nil
}

// Distance is a suboptimal graph edit distance between two SkPS graphs
// (beam-search A* after [13]). Node substitution costs combine normalized
// positional displacement and degree difference; insertions and deletions
// cost 1. The result is normalized to [0,1] by the larger node count. The
// beam search is run in both directions and the smaller value returned, as
// the suboptimal search is not symmetric by itself.
func Distance(a, b *Summary) float64 {
	if len(a.Nodes) == 0 && len(b.Nodes) == 0 {
		return 0
	}
	if len(a.Nodes) == 0 || len(b.Nodes) == 0 {
		return 1
	}
	d1 := gedBeam(a, b, 8)
	d2 := gedBeam(b, a, 8)
	return math.Min(d1, d2)
}

type gedState struct {
	used uint64 // bitmask of assigned b-nodes (beam GED is capped at 64 nodes)
	cost float64
}

// gedBeam computes the beam-search GED from a to b, normalized to [0,1].
// Graphs larger than 64 nodes are truncated to their 64 highest-degree
// nodes (the suboptimal algorithm's contract allows this; it only weakens
// match quality, never crashes).
func gedBeam(a, b *Summary, beam int) float64 {
	na, nb := a.Nodes, b.Nodes
	da, db := a.Degree(), b.Degree()
	type nodeInfo struct {
		p   geom.Point
		deg int
	}
	prep := func(nodes []geom.Point, deg []int) []nodeInfo {
		// Center on the centroid so matching is position-insensitive, and
		// order by degree (high-degree nodes first makes the beam search
		// stable).
		c := geom.Centroid(nodes)
		out := make([]nodeInfo, len(nodes))
		for i, p := range nodes {
			out[i] = nodeInfo{p: p.Sub(c), deg: deg[i]}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].deg > out[j].deg })
		if len(out) > 64 {
			out = out[:64]
		}
		return out
	}
	A, B := prep(na, da), prep(nb, db)

	// Normalization scales.
	var scale float64
	for _, n := range A {
		scale = math.Max(scale, geom.Dist(n.p, make(geom.Point, len(n.p))))
	}
	for _, n := range B {
		scale = math.Max(scale, geom.Dist(n.p, make(geom.Point, len(n.p))))
	}
	if scale == 0 {
		scale = 1
	}
	maxDeg := 1
	for _, n := range append(append([]nodeInfo{}, A...), B...) {
		if n.deg > maxDeg {
			maxDeg = n.deg
		}
	}

	sub := func(x, y nodeInfo) float64 {
		pd := math.Min(1, geom.Dist(x.p, y.p)/(2*scale))
		dd := math.Abs(float64(x.deg-y.deg)) / float64(maxDeg)
		return 0.7*pd + 0.3*dd
	}

	states := []gedState{{}}
	for i := range A {
		var next []gedState
		for _, st := range states {
			// Delete A[i].
			next = append(next, gedState{used: st.used, cost: st.cost + 1})
			// Substitute with any unused B node.
			for j := range B {
				if st.used&(1<<uint(j)) != 0 {
					continue
				}
				next = append(next, gedState{
					used: st.used | 1<<uint(j),
					cost: st.cost + sub(A[i], B[j]),
				})
			}
		}
		sort.Slice(next, func(x, y int) bool { return next[x].cost < next[y].cost })
		if len(next) > beam {
			next = next[:beam]
		}
		states = next
	}
	best := math.Inf(1)
	for _, st := range states {
		c := st.cost
		for j := range B {
			if st.used&(1<<uint(j)) == 0 {
				c++ // insertion of unmatched B node
			}
		}
		if c < best {
			best = c
		}
	}
	norm := float64(len(A))
	if len(B) > len(A) {
		norm = float64(len(B))
	}
	v := best / norm
	if v > 1 {
		return 1
	}
	return v
}
