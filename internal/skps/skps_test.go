package skps

import (
	"math/rand"
	"testing"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
)

// clusterFixture builds one DBSCAN cluster from a random blob.
func clusterFixture(t *testing.T, seed int64, offset float64, n int) ([]geom.Point, []bool, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	thetaR := 0.5
	var pts []geom.Point
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Point{offset + rng.NormFloat64()*0.6, rng.NormFloat64() * 0.6})
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Skip("no cluster in fixture")
	}
	best := 0
	for i, c := range res.Clusters {
		if len(c.Members) > len(res.Clusters[best].Members) {
			best = i
		}
	}
	var cpts []geom.Point
	var isCore []bool
	for _, id := range res.Clusters[best].Members {
		cpts = append(cpts, pts[id])
		isCore = append(isCore, res.IsCore[id])
	}
	return cpts, isCore, thetaR
}

func TestFromClusterSatisfiesDefinition(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		pts, isCore, thetaR := clusterFixture(t, seed, 0, 150)
		s, err := FromCluster(pts, isCore, thetaR, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Definition 4.1: coverage + connectivity + all nodes core.
		if err := s.Verify(pts, isCore, thetaR); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Minimality in spirit: far fewer skeletal points than objects.
		if len(s.Nodes) >= len(pts) {
			t.Fatalf("seed %d: %d skeletal points for %d objects", seed, len(s.Nodes), len(pts))
		}
		if s.Size() <= 0 {
			t.Fatal("size must be positive")
		}
	}
}

func TestFromClusterErrors(t *testing.T) {
	if _, err := FromCluster(nil, nil, 1, 0, 0); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := FromCluster([]geom.Point{{0, 0}}, []bool{false}, 1, 0, 0); err == nil {
		t.Error("coreless cluster accepted")
	}
	if _, err := FromCluster([]geom.Point{{0, 0}}, []bool{true, false}, 1, 0, 0); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSingleCoreCluster(t *testing.T) {
	// One core with a few edges around it → a single skeletal point.
	pts := []geom.Point{{0, 0}, {0.3, 0}, {0, 0.3}, {-0.3, 0}}
	isCore := []bool{true, false, false, false}
	s, err := FromCluster(pts, isCore, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 1 || len(s.Edges) != 0 {
		t.Fatalf("nodes=%d edges=%d", len(s.Nodes), len(s.Edges))
	}
	if err := s.Verify(pts, isCore, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestChainClusterPath(t *testing.T) {
	// A long chain needs multiple skeletal points forming a connected path.
	var pts []geom.Point
	for i := 0; i < 30; i++ {
		pts = append(pts, geom.Point{float64(i) * 0.4, 0})
	}
	isCore := make([]bool, len(pts))
	for i := range isCore {
		isCore[i] = i > 0 && i < len(pts)-1 // endpoints are edges (θc=2, θr=0.5)
	}
	s, err := FromCluster(pts, isCore, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(pts, isCore, 0.5); err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) < 5 {
		t.Fatalf("chain of 30 covered by %d skeletal points?", len(s.Nodes))
	}
}

func TestDistanceProperties(t *testing.T) {
	ptsA, coreA, thetaR := clusterFixture(t, 1, 0, 150)
	a, err := FromCluster(ptsA, coreA, thetaR, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(a, a); d > 1e-9 {
		t.Errorf("self distance = %v", d)
	}
	// A same-shape cluster far away (position-insensitive matching should
	// still see it as similar) vs a different-shape cluster.
	ptsB, coreB, _ := clusterFixture(t, 1, 100, 150) // same seed → same shape, shifted
	b, err := FromCluster(ptsB, coreB, thetaR, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var chain []geom.Point
	for i := 0; i < 60; i++ {
		chain = append(chain, geom.Point{float64(i) * 0.3, 0})
	}
	chainCore := make([]bool, len(chain))
	for i := range chainCore {
		chainCore[i] = true
	}
	c, err := FromCluster(chain, chainCore, thetaR, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dab, dac := Distance(a, b), Distance(a, c)
	if dab < 0 || dab > 1 || dac < 0 || dac > 1 {
		t.Fatalf("out of range: %v %v", dab, dac)
	}
	if dab >= dac {
		t.Errorf("shifted twin (%v) should be closer than chain (%v)", dab, dac)
	}
	if Distance(a, b) != Distance(b, a) {
		t.Error("Distance not symmetric")
	}
}

func TestDistanceDegenerate(t *testing.T) {
	empty := &Summary{}
	one := &Summary{Nodes: []geom.Point{{0, 0}}}
	if d := Distance(empty, empty); d != 0 {
		t.Errorf("empty-empty = %v", d)
	}
	if d := Distance(empty, one); d != 1 {
		t.Errorf("empty-nonempty = %v", d)
	}
}

func TestDegree(t *testing.T) {
	s := &Summary{
		Nodes: []geom.Point{{0, 0}, {1, 0}, {2, 0}},
		Edges: [][2]int32{{0, 1}, {1, 2}},
	}
	deg := s.Degree()
	if deg[0] != 1 || deg[1] != 2 || deg[2] != 1 {
		t.Fatalf("degrees = %v", deg)
	}
}

func TestLargeGraphTruncation(t *testing.T) {
	// >64 nodes exercises the truncation path in the beam GED.
	var nodes []geom.Point
	var edges [][2]int32
	for i := 0; i < 80; i++ {
		nodes = append(nodes, geom.Point{float64(i), 0})
		if i > 0 {
			edges = append(edges, [2]int32{int32(i - 1), int32(i)})
		}
	}
	big := &Summary{Nodes: nodes, Edges: edges}
	if d := Distance(big, big); d > 0.01 {
		t.Errorf("self distance on big graph = %v", d)
	}
}
