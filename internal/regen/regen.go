// Package regen synthesizes an approximate full representation from a
// Skeletal Grid Summarization — the "full representation re-generation
// technique based on pattern summarizations" that §1 of the paper names as
// a direct application of SGS.
//
// Because an SGS records the exact population of every (non-overlapping)
// cell, regeneration can conserve both the total population and the
// density distribution at cell granularity: it scatters each cell's
// population uniformly inside that cell. By Lemma 4.3 every generated
// point is within θr of a true member of the original cluster, and
// re-summarizing the generated points under the same geometry reproduces
// the cell set and populations of the source summary exactly (tested).
//
// Uses: visualizing archived clusters whose raw members were discarded,
// approximating distance computations that need point sets (e.g. feeding
// archived history to point-based tooling), and generating test fixtures.
package regen

import (
	"math/rand"

	"streamsum/internal/geom"
	"streamsum/internal/sgs"
)

// Options tunes regeneration.
type Options struct {
	// MaxPerCell caps points per cell (0 = no cap). Capping produces a
	// lighter sketch whose per-cell densities remain proportional.
	MaxPerCell int
	// Seed makes generation reproducible; the default (0) derives a seed
	// from the summary id so repeated calls agree.
	Seed int64
}

// Points synthesizes member positions from the summary.
func Points(s *sgs.Summary, opts Options) []geom.Point {
	if s == nil || s.NumCells() == 0 {
		return nil
	}
	seed := opts.Seed
	if seed == 0 {
		seed = s.ID*0x9E3779B9 + s.Window + 1
	}
	rng := rand.New(rand.NewSource(seed))
	var out []geom.Point
	for i := range s.Cells {
		c := &s.Cells[i]
		n := int(c.Population)
		if opts.MaxPerCell > 0 && n > opts.MaxPerCell {
			n = opts.MaxPerCell
		}
		min := s.CellMin(c.Coord)
		for k := 0; k < n; k++ {
			p := make(geom.Point, s.Dim)
			for d := 0; d < s.Dim; d++ {
				p[d] = min[d] + rng.Float64()*s.Side
			}
			out = append(out, p)
		}
	}
	return out
}

// Centers returns one representative point per cell (the cell center),
// weighted implicitly by nothing — a minimal sketch for plotting.
func Centers(s *sgs.Summary) []geom.Point {
	var out []geom.Point
	for i := range s.Cells {
		min := s.CellMin(s.Cells[i].Coord)
		c := min.Clone()
		for d := range c {
			c[d] += s.Side / 2
		}
		out = append(out, c)
	}
	return out
}
