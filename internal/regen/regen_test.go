package regen

import (
	"math"
	"math/rand"
	"testing"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/quality"
	"streamsum/internal/sgs"
)

const thetaR = 0.6

func fixture(t *testing.T, seed int64) (*sgs.Summary, []geom.Point, *grid.Geometry) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	for i := 0; i < 400; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64() * 1.2, rng.NormFloat64() * 1.2})
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Skip("no cluster")
	}
	best := 0
	for i, c := range res.Clusters {
		if len(c.Members) > len(res.Clusters[best].Members) {
			best = i
		}
	}
	var member []geom.Point
	var isCore []bool
	for _, id := range res.Clusters[best].Members {
		member = append(member, pts[id])
		isCore = append(isCore, res.IsCore[id])
	}
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sgs.FromCluster(geo, member, isCore, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s, member, geo
}

func TestRoundTripPreservesCellsAndPopulations(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s, _, geo := fixture(t, seed)
		pts := Points(s, Options{})
		if len(pts) != s.TotalPopulation() {
			t.Fatalf("population not conserved: %d vs %d", len(pts), s.TotalPopulation())
		}
		// Re-rasterize: every generated point must fall in its source cell,
		// reproducing the exact cell set and populations.
		counts := make(map[grid.Coord]uint32)
		for _, p := range pts {
			counts[geo.CoordOf(p)]++
		}
		if len(counts) != s.NumCells() {
			t.Fatalf("cell set changed: %d vs %d", len(counts), s.NumCells())
		}
		for i := range s.Cells {
			c := &s.Cells[i]
			if counts[c.Coord] != c.Population {
				t.Fatalf("cell %v population %d != %d", c.Coord, counts[c.Coord], c.Population)
			}
		}
	}
}

func TestRegeneratedResemblesOriginal(t *testing.T) {
	s, member, geo := fixture(t, 9)
	pts := Points(s, Options{})
	sim := quality.CoverageSimilarity(geo, member, pts)
	// The regenerated cloud occupies the same cells with the same masses;
	// the only loss is sub-cell placement, so the coverage oracle must rate
	// it very similar.
	if sim < 0.8 {
		t.Fatalf("regenerated similarity %g", sim)
	}
}

func TestDeterminism(t *testing.T) {
	s, _, _ := fixture(t, 11)
	a := Points(s, Options{})
	b := Points(s, Options{})
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("default-seed regeneration not deterministic")
		}
	}
	c := Points(s, Options{Seed: 42})
	diff := false
	for i := range a {
		if !a[i].Equal(c[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("explicit seed had no effect")
	}
}

func TestMaxPerCell(t *testing.T) {
	s, _, geo := fixture(t, 13)
	pts := Points(s, Options{MaxPerCell: 2})
	counts := make(map[grid.Coord]int)
	for _, p := range pts {
		counts[geo.CoordOf(p)]++
	}
	for coord, n := range counts {
		if n > 2 {
			t.Fatalf("cell %v has %d points, cap 2", coord, n)
		}
	}
	if len(counts) != s.NumCells() {
		t.Fatal("capping dropped cells entirely")
	}
}

func TestCenters(t *testing.T) {
	s, _, geo := fixture(t, 15)
	cs := Centers(s)
	if len(cs) != s.NumCells() {
		t.Fatalf("%d centers for %d cells", len(cs), s.NumCells())
	}
	for _, c := range cs {
		cell := s.Find(geo.CoordOf(c))
		if cell == nil {
			t.Fatalf("center %v outside any summary cell", c)
		}
	}
}

func TestEmptyAndNil(t *testing.T) {
	if Points(nil, Options{}) != nil {
		t.Fatal("nil summary should regenerate nothing")
	}
	var empty sgs.Summary
	if Points(&empty, Options{}) != nil {
		t.Fatal("empty summary should regenerate nothing")
	}
	if got := math.Inf(1); got < 0 {
		t.Fatal("unreachable")
	}
}
