package conntab

// IDMap is an open-addressing int64 -> int64 map for non-negative keys,
// used for the per-view union-find parent tables of the Extra-N baseline
// (tuple ids are non-negative by construction). Like Table it stores
// key/value pairs inline, hashes with a fixed multiplier, and is therefore
// deterministic in layout and iteration for a given operation sequence.
// The zero value is an empty map ready for use.
//
// IDMap is single-writer; Get and Len are pure reads and may run
// concurrently from any number of goroutines provided no Set overlaps —
// the contract behind the read-only root lookups of the parallel output
// stage.
type IDMap struct {
	keys []int64 // power-of-two length; -1 marks a free slot
	vals []int64
	n    int
}

// hashID is Fibonacci hashing; fixed multiplier, deterministic layout.
func hashID(k int64) uint64 {
	return uint64(k) * 0x9E3779B97F4A7C15
}

// Len returns the number of stored keys.
func (m *IDMap) Len() int { return m.n }

// Get returns the value stored under k and whether it is present.
func (m *IDMap) Get(k int64) (int64, bool) {
	if m.n == 0 {
		return 0, false
	}
	shift := uint(64 - tblBits(len(m.keys)))
	mask := uint64(len(m.keys) - 1)
	for i := hashID(k) >> shift; ; i = (i + 1) & mask {
		if m.keys[i] == -1 {
			return 0, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// Set stores v under k (k must be non-negative), replacing any previous
// value.
func (m *IDMap) Set(k, v int64) {
	if k < 0 {
		panic("conntab: IDMap keys must be non-negative")
	}
	if len(m.keys) == 0 || (m.n+1)*4 > len(m.keys)*3 {
		m.growID()
	}
	shift := uint(64 - tblBits(len(m.keys)))
	mask := uint64(len(m.keys) - 1)
	for i := hashID(k) >> shift; ; i = (i + 1) & mask {
		if m.keys[i] == -1 {
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
}

// Range calls fn for every key/value pair in slot order and stops early if
// fn returns false. fn must not modify the map.
func (m *IDMap) Range(fn func(k, v int64) bool) {
	for i := range m.keys {
		if m.keys[i] != -1 {
			if !fn(m.keys[i], m.vals[i]) {
				return
			}
		}
	}
}

func (m *IDMap) growID() {
	newCap := minTableCap
	if len(m.keys) > 0 {
		newCap = len(m.keys) * 2
	}
	oldK, oldV := m.keys, m.vals
	m.keys = make([]int64, newCap)
	m.vals = make([]int64, newCap)
	for i := range m.keys {
		m.keys[i] = -1
	}
	shift := uint(64 - tblBits(newCap))
	mask := uint64(newCap - 1)
	for i := range oldK {
		if oldK[i] == -1 {
			continue
		}
		for j := hashID(oldK[i]) >> shift; ; j = (j + 1) & mask {
			if m.keys[j] == -1 {
				m.keys[j] = oldK[i]
				m.vals[j] = oldV[i]
				break
			}
		}
	}
}

// tblBits returns log2 of the (power-of-two) capacity.
func tblBits(c int) uint {
	b := uint(0)
	for c > 1 {
		c >>= 1
		b++
	}
	return b
}
