// Package conntab provides the cache-friendly hash tables behind the hot
// per-cell meta-data of the extractors: an open-addressing, coord-keyed
// table of connection lifespans (Table, replacing the former
// map[grid.Coord]*connEntry on every skeletal grid cell) and an
// open-addressing int64-keyed map (IDMap, replacing the per-view
// union-find parent maps of the Extra-N baseline).
//
// Both tables store their entries inline in a single flat slot array —
// no per-entry allocation, no pointer chasing — with plain linear
// probing, a fixed (seed-free) hash, and power-of-two capacities. That
// gives three properties the refresh/emit hot paths rely on:
//
//   - Locality: the refresh loop's dominant cost was Coord-keyed map
//     probing; inline entries turn each probe into a few contiguous
//     cache lines and each repeated access into a pointer compare
//     (see the memo in core's refresh).
//   - Tombstone-free pruning: Prune removes dead entries in place using
//     backward-shift deletion, so tables never accumulate tombstones and
//     probe chains re-tighten on every output stage.
//   - Deterministic iteration: the hash is fixed, so the slot layout —
//     and therefore Range/Prune order — is a pure function of the
//     operation sequence, never of process-level randomization. Two runs
//     (or two engines fed the same tuples) iterate identically, which
//     keeps the emit stage's cluster extraction reproducible without
//     re-sorting the connection lists.
//
// # Concurrency
//
// Tables are single-writer. All read methods (Get, Len, Range) perform no
// mutation of any kind, so any number of goroutines may read one table
// concurrently provided no Upsert/Prune overlaps. This is the contract the
// parallel output stage is built on: connection tables are frozen before
// the per-cluster fan-out and only read from inside it.
package conntab

import (
	"streamsum/internal/grid"
)

// Entry is one connection record: the adjacent cell's coordinate and the
// two lifespans the extractor maintains for the pair (see core's Lemma 5.2
// connection lifespan and the directional attachment lifespan). The
// zero Coord (dimension 0) marks an empty slot, so Entries must be keyed
// by real cell coordinates (dimension >= 1).
type Entry struct {
	Coord     grid.Coord
	CoreLast  int64
	AttachOut int64
}

// Table is an open-addressing hash table keyed by grid.Coord with inline
// Entry slots. The zero value is an empty table ready for use.
type Table struct {
	slots []Entry // power-of-two length; Coord.D == 0 marks a free slot
	n     int
}

const minTableCap = 8

// hashCoord is FNV-1a over the active components. Fixed seed: the layout
// of a table is a deterministic function of its operation history.
func hashCoord(c grid.Coord) uint64 {
	h := uint64(14695981039346656037)
	h ^= uint64(c.D)
	h *= 1099511628211
	for i := uint8(0); i < c.D; i++ {
		v := uint32(c.C[i])
		for s := uint(0); s < 32; s += 8 {
			h ^= uint64((v >> s) & 0xff)
			h *= 1099511628211
		}
	}
	return h
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// Get returns the entry for c, or nil if absent. The returned pointer is
// valid until the next Upsert or Prune on the table.
func (t *Table) Get(c grid.Coord) *Entry {
	if t.n == 0 {
		return nil
	}
	mask := uint64(len(t.slots) - 1)
	for i := hashCoord(c) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.Coord.D == 0 {
			return nil
		}
		if s.Coord == c {
			return s
		}
	}
}

// Upsert returns the entry for c, creating a zero-lifespan entry if absent;
// created reports whether the entry was just created (the caller is
// expected to initialize its lifespans then). The returned pointer is valid
// until the next Upsert or Prune on the same table — a growth rehash or a
// backward shift may relocate entries.
func (t *Table) Upsert(c grid.Coord) (e *Entry, created bool) {
	if c.D == 0 {
		panic("conntab: zero-dimension Coord cannot be a key")
	}
	if len(t.slots) == 0 || (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := hashCoord(c) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.Coord.D == 0 {
			s.Coord = c
			t.n++
			return s, true
		}
		if s.Coord == c {
			return s, false
		}
	}
}

func (t *Table) grow() {
	newCap := minTableCap
	if len(t.slots) > 0 {
		newCap = len(t.slots) * 2
	}
	old := t.slots
	t.slots = make([]Entry, newCap)
	mask := uint64(newCap - 1)
	for i := range old {
		if old[i].Coord.D == 0 {
			continue
		}
		for j := hashCoord(old[i].Coord) & mask; ; j = (j + 1) & mask {
			if t.slots[j].Coord.D == 0 {
				t.slots[j] = old[i]
				break
			}
		}
	}
}

// Range calls fn for every entry in slot order and stops early if fn
// returns false. fn must not add or remove entries; mutating the lifespans
// of the visited entry is fine.
func (t *Table) Range(fn func(*Entry) bool) {
	if t.n == 0 {
		return
	}
	for i := range t.slots {
		if t.slots[i].Coord.D != 0 {
			if !fn(&t.slots[i]) {
				return
			}
		}
	}
}

// Prune visits every entry exactly once and removes those for which keep
// returns false, compacting in place with backward-shift deletion — no
// tombstones are left behind and surviving probe chains re-tighten.
// Iteration starts just past an empty slot and proceeds cyclically, so
// entries relocated by a shift are still visited exactly once. keep must
// not add entries; it may mutate the lifespans of the entry it is given.
// All entry pointers into the table are invalidated.
func (t *Table) Prune(keep func(*Entry) bool) {
	if t.n == 0 {
		return
	}
	cap_ := len(t.slots)
	mask := uint64(cap_ - 1)
	// Load factor is bounded below 1, so an empty slot always exists.
	start := 0
	for t.slots[start].Coord.D != 0 {
		start++
	}
	for k := 1; k <= cap_; k++ {
		i := uint64(start+k) & mask
	reexamine:
		s := &t.slots[i]
		if s.Coord.D == 0 {
			continue
		}
		if keep(s) {
			continue
		}
		t.deleteAt(i, mask)
		// deleteAt may have shifted a not-yet-visited entry into slot i;
		// re-examine it before moving on. Shifts never move entries across
		// an empty slot, so nothing crosses the start sentinel.
		goto reexamine
	}
}

// deleteAt frees slot i and backward-shifts the following probe chain so
// no tombstone is needed.
func (t *Table) deleteAt(i, mask uint64) {
	t.n--
	for {
		t.slots[i] = Entry{}
		j := i
		for {
			j = (j + 1) & mask
			if t.slots[j].Coord.D == 0 {
				return
			}
			home := hashCoord(t.slots[j].Coord) & mask
			// Entry at j may move to the freed slot i iff its home does not
			// lie in the cyclic interval (i, j].
			if (j-home)&mask >= (j-i)&mask {
				t.slots[i] = t.slots[j]
				i = j
				break
			}
		}
	}
}
