package conntab

import (
	"math/rand"
	"testing"

	"streamsum/internal/grid"
)

func coordFor(r *rand.Rand, span int32) grid.Coord {
	return grid.CoordOf(r.Int31n(span)-span/2, r.Int31n(span)-span/2, r.Int31n(span)-span/2)
}

// TestTableAgainstMap drives a Table and a reference map through the same
// random operation sequence (upserts with lifespan mutations, periodic
// prunes) and checks full agreement after every phase.
func TestTableAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var tab Table
	ref := map[grid.Coord][2]int64{}

	check := func(step int) {
		t.Helper()
		if tab.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d want %d", step, tab.Len(), len(ref))
		}
		seen := 0
		tab.Range(func(e *Entry) bool {
			seen++
			v, ok := ref[e.Coord]
			if !ok {
				t.Fatalf("step %d: Range visited unknown coord %v", step, e.Coord)
			}
			if v[0] != e.CoreLast || v[1] != e.AttachOut {
				t.Fatalf("step %d: %v has (%d,%d) want (%d,%d)",
					step, e.Coord, e.CoreLast, e.AttachOut, v[0], v[1])
			}
			return true
		})
		if seen != len(ref) {
			t.Fatalf("step %d: Range visited %d entries, want %d", step, seen, len(ref))
		}
		for c, v := range ref {
			e := tab.Get(c)
			if e == nil {
				t.Fatalf("step %d: Get(%v) = nil", step, c)
			}
			if e.CoreLast != v[0] || e.AttachOut != v[1] {
				t.Fatalf("step %d: Get(%v) = (%d,%d) want (%d,%d)",
					step, c, e.CoreLast, e.AttachOut, v[0], v[1])
			}
		}
	}

	for step := 0; step < 200; step++ {
		// A burst of upserts.
		for i := 0; i < 40; i++ {
			c := coordFor(r, 12)
			cl, at := r.Int63n(100), r.Int63n(100)
			e, created := tab.Upsert(c)
			if _, ok := ref[c]; ok == created {
				t.Fatalf("step %d: created=%v but ref presence=%v for %v", step, created, ok, c)
			}
			if created {
				e.CoreLast, e.AttachOut = cl, at
			} else {
				if cl > e.CoreLast {
					e.CoreLast = cl
				}
				if at > e.AttachOut {
					e.AttachOut = at
				}
				cl, at = e.CoreLast, e.AttachOut
			}
			ref[c] = [2]int64{cl, at}
		}
		check(step)
		// Prune everything below a moving threshold.
		thr := r.Int63n(110)
		tab.Prune(func(e *Entry) bool {
			return e.CoreLast >= thr || e.AttachOut >= thr
		})
		for c, v := range ref {
			if v[0] < thr && v[1] < thr {
				delete(ref, c)
			}
		}
		check(step)
	}
	// Drain completely.
	tab.Prune(func(*Entry) bool { return false })
	if tab.Len() != 0 {
		t.Fatalf("drained table has Len=%d", tab.Len())
	}
	tab.Range(func(*Entry) bool {
		t.Fatal("Range visited an entry in a drained table")
		return false
	})
}

// TestTableZeroValue checks the zero value is usable and Get on an empty
// table is safe.
func TestTableZeroValue(t *testing.T) {
	var tab Table
	if e := tab.Get(grid.CoordOf(1, 2)); e != nil {
		t.Fatalf("Get on empty table = %v", e)
	}
	tab.Prune(func(*Entry) bool { return true }) // no-op, must not panic
	e, created := tab.Upsert(grid.CoordOf(1, 2))
	if !created || e.Coord != grid.CoordOf(1, 2) {
		t.Fatalf("first Upsert: created=%v coord=%v", created, e.Coord)
	}
}

// TestTableDeterministicLayout: two tables fed the same operation sequence
// iterate identically — the property the emit stage's reproducibility
// rests on.
func TestTableDeterministicLayout(t *testing.T) {
	build := func() *Table {
		var tab Table
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			c := coordFor(r, 20)
			e, created := tab.Upsert(c)
			if created {
				e.CoreLast = int64(i)
			}
			if i%97 == 0 {
				cut := int64(i / 2)
				tab.Prune(func(e *Entry) bool { return e.CoreLast >= cut })
			}
		}
		return &tab
	}
	a, b := build(), build()
	var orderA, orderB []grid.Coord
	a.Range(func(e *Entry) bool { orderA = append(orderA, e.Coord); return true })
	b.Range(func(e *Entry) bool { orderB = append(orderB, e.Coord); return true })
	if len(orderA) != len(orderB) {
		t.Fatalf("lengths differ: %d vs %d", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("iteration order diverges at %d: %v vs %v", i, orderA[i], orderB[i])
		}
	}
}

// TestTablePruneVisitsOnce: every entry is visited exactly once per Prune,
// even when backward shifts relocate entries mid-iteration.
func TestTablePruneVisitsOnce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var tab Table
		want := map[grid.Coord]bool{}
		for i := 0; i < 30+trial; i++ {
			c := coordFor(r, 10)
			tab.Upsert(c)
			want[c] = true
		}
		visited := map[grid.Coord]int{}
		tab.Prune(func(e *Entry) bool {
			visited[e.Coord]++
			return r.Intn(2) == 0
		})
		if len(visited) != len(want) {
			t.Fatalf("trial %d: visited %d distinct entries, want %d", trial, len(visited), len(want))
		}
		for c, n := range visited {
			if n != 1 {
				t.Fatalf("trial %d: %v visited %d times", trial, c, n)
			}
		}
	}
}

// TestIDMapAgainstMap drives IDMap and a reference map through the same
// operations.
func TestIDMapAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var m IDMap
	ref := map[int64]int64{}
	for i := 0; i < 5000; i++ {
		k := r.Int63n(800)
		v := r.Int63()
		m.Set(k, v)
		ref[k] = v
		if kq := r.Int63n(800); true {
			got, ok := m.Get(kq)
			want, wok := ref[kq]
			if ok != wok || (ok && got != want) {
				t.Fatalf("Get(%d) = (%d,%v) want (%d,%v)", kq, got, ok, want, wok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", m.Len(), len(ref))
	}
	seen := 0
	m.Range(func(k, v int64) bool {
		seen++
		if ref[k] != v {
			t.Fatalf("Range: key %d has %d want %d", k, v, ref[k])
		}
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d, want %d", seen, len(ref))
	}
}

func TestIDMapZeroKey(t *testing.T) {
	var m IDMap
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map reports key 0")
	}
	m.Set(0, 42)
	if v, ok := m.Get(0); !ok || v != 42 {
		t.Fatalf("Get(0) = (%d,%v), want (42,true)", v, ok)
	}
}
