package stream

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"streamsum/internal/core"
	"streamsum/internal/geom"
)

// Tuple is one stream element.
type Tuple struct {
	TS int64
	P  geom.Point
}

// Source yields tuples in arrival order.
type Source interface {
	// Next returns the next tuple, or ok=false at end of stream.
	Next() (t Tuple, ok bool)
}

// Processor is the streaming clustering interface implemented by both the
// C-SGS extractor (internal/core) and the Extra-N baseline
// (internal/extran).
type Processor interface {
	Push(p geom.Point, ts int64) (id int64, emitted []*core.WindowResult, err error)
	Flush() *core.WindowResult
}

// BatchProcessor is a Processor that can additionally ingest whole slide
// batches through the two-phase pipeline (parallel read-only neighbor
// discovery, sequential state update) with semantics identical to pushing
// the tuples one by one. Both extractors implement it.
type BatchProcessor interface {
	Processor
	PushBatch(pts []geom.Point, tss []int64) ([]*core.WindowResult, error)
}

// sliceSource iterates over in-memory points.
type sliceSource struct {
	pts []geom.Point
	tss []int64
	i   int
}

// FromSlice returns a Source over the given points; tss may be nil for
// count-based streams.
func FromSlice(pts []geom.Point, tss []int64) Source {
	return &sliceSource{pts: pts, tss: tss}
}

func (s *sliceSource) Next() (Tuple, bool) {
	if s.i >= len(s.pts) {
		return Tuple{}, false
	}
	t := Tuple{P: s.pts[s.i]}
	if s.tss != nil {
		t.TS = s.tss[s.i]
	}
	s.i++
	return t, true
}

// csvSource reads tuples from CSV rows.
type csvSource struct {
	r       *csv.Reader
	valCols []int
	tsCol   int
	row     int64
	err     error
}

// FromCSV returns a Source reading one tuple per CSV record. valCols are
// the 0-based columns holding the point coordinates; tsCol is the column
// holding an integer timestamp, or -1 to use the row number. A parse error
// ends the stream and is reported by Err.
func FromCSV(r io.Reader, valCols []int, tsCol int) *CSVSource {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	return &CSVSource{csvSource{r: cr, valCols: valCols, tsCol: tsCol}}
}

// CSVSource is a Source over CSV data; check Err after draining.
type CSVSource struct{ csvSource }

// Next implements Source.
func (s *CSVSource) Next() (Tuple, bool) {
	if s.err != nil {
		return Tuple{}, false
	}
	rec, err := s.r.Read()
	if err == io.EOF {
		return Tuple{}, false
	}
	if err != nil {
		s.err = err
		return Tuple{}, false
	}
	p := make(geom.Point, len(s.valCols))
	for i, c := range s.valCols {
		if c >= len(rec) {
			s.err = fmt.Errorf("stream: row %d has %d columns, need %d", s.row, len(rec), c+1)
			return Tuple{}, false
		}
		v, err := strconv.ParseFloat(rec[c], 64)
		if err != nil {
			s.err = fmt.Errorf("stream: row %d col %d: %v", s.row, c, err)
			return Tuple{}, false
		}
		p[i] = v
	}
	t := Tuple{P: p, TS: s.row}
	if s.tsCol >= 0 {
		if s.tsCol >= len(rec) {
			s.err = fmt.Errorf("stream: row %d missing ts column %d", s.row, s.tsCol)
			return Tuple{}, false
		}
		ts, err := strconv.ParseInt(rec[s.tsCol], 10, 64)
		if err != nil {
			s.err = fmt.Errorf("stream: row %d ts: %v", s.row, err)
			return Tuple{}, false
		}
		t.TS = ts
	}
	s.row++
	return t, true
}

// Err returns the first error encountered while reading, if any.
func (s *CSVSource) Err() error { return s.err }

// RunStats summarizes one executor run.
type RunStats struct {
	Tuples  int
	Windows int
	// Elapsed is total processing time (insertions + output stages).
	Elapsed time.Duration
	// PerWindow is Elapsed / Windows (the §8.1 response-time metric).
	PerWindow time.Duration
	// Clusters is the total number of clusters emitted.
	Clusters int
}

// Executor drives a Processor over a Source.
type Executor struct {
	Proc Processor
	// OnWindow receives each completed window's result. It may be nil.
	// Time spent in OnWindow is excluded from RunStats.Elapsed (it is the
	// consumer, e.g. the archiver, not the extractor).
	OnWindow func(*core.WindowResult) error
	// FlushTail emits the final partial window at end of stream.
	FlushTail bool
}

// Run drains the source.
func (e *Executor) Run(src Source) (RunStats, error) {
	var st RunStats
	deliver := func(results []*core.WindowResult) error {
		for _, r := range results {
			st.Windows++
			st.Clusters += len(r.Clusters)
			if e.OnWindow != nil {
				if err := e.OnWindow(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		start := time.Now()
		_, emitted, err := e.Proc.Push(t.P, t.TS)
		st.Elapsed += time.Since(start)
		if err != nil {
			return st, err
		}
		st.Tuples++
		if err := deliver(emitted); err != nil {
			return st, err
		}
	}
	if cs, ok := src.(*CSVSource); ok && cs.Err() != nil {
		return st, cs.Err()
	}
	if e.FlushTail {
		start := time.Now()
		r := e.Proc.Flush()
		st.Elapsed += time.Since(start)
		if err := deliver([]*core.WindowResult{r}); err != nil {
			return st, err
		}
	}
	if st.Windows > 0 {
		st.PerWindow = st.Elapsed / time.Duration(st.Windows)
	}
	return st, nil
}
