package stream

import (
	"streamsum/internal/archive"
	"streamsum/internal/core"
	"streamsum/internal/sgs"
)

// ArchiveWindows returns an OnWindow callback that archives every
// summary of every completed window into one shared pattern base — the
// standard wiring for "one pattern base fed by N shards". Each window is
// appended with a single PutBatch (one base lock acquisition per window,
// however many clusters it emitted), and because the base is
// snapshot-isolated, analysts matching against it never stall the
// shards' append path. Store-backed bases (archive.Config.StorePath)
// need no extra wiring: demotion to disk segments happens inside
// PutBatch when memory or capacity pressure hits, so N shards can feed
// one base whose history spills to disk. When next is non-nil it is
// invoked after archiving, preserving the Sharded executor's serialized
// consumer contract.
func ArchiveWindows(base *archive.Base, next func(shard int, w *core.WindowResult) error) func(int, *core.WindowResult) error {
	return func(shard int, w *core.WindowResult) error {
		sums := make([]*sgs.Summary, 0, len(w.Clusters))
		for _, c := range w.Clusters {
			if c.Summary != nil {
				sums = append(sums, c.Summary)
			}
		}
		if len(sums) > 0 {
			if _, _, err := base.PutBatch(sums); err != nil {
				return err
			}
		}
		if next != nil {
			return next(shard, w)
		}
		return nil
	}
}
