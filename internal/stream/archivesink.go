package stream

import (
	"streamsum/internal/archive"
	"streamsum/internal/core"
	"streamsum/internal/obs"
	"streamsum/internal/sgs"
	"streamsum/internal/trace"
)

// Archiving-sink metrics (obs.Default): the executor-level view of the
// window → pattern-base hand-off, complementing the per-batch demote and
// flush metrics the archive and store record internally.
var (
	metricArchivedWindows = obs.NewCounter("sgs_archive_sink_windows_total",
		"Completed windows handed to the archiving sink (empty ones included).")
	metricArchivedEntries = obs.NewCounter("sgs_archive_sink_entries_total",
		"Summaries the archiver accepted from sink windows (post selection policy).")
)

// ArchiveWindows returns an OnWindow callback that archives every
// summary of every completed window into one shared pattern base — the
// standard wiring for "one pattern base fed by N shards". Each window is
// appended with a single PutBatch (one base lock acquisition per window,
// however many clusters it emitted), and because the base is
// snapshot-isolated, analysts matching against it never stall the
// shards' append path. Store-backed bases (archive.Config.StorePath)
// need no extra wiring: demotion to disk segments happens inside
// PutBatch when memory or capacity pressure hits, so N shards can feed
// one base whose history spills to disk. When next is non-nil it is
// invoked after archiving, preserving the Sharded executor's serialized
// consumer contract.
func ArchiveWindows(base *archive.Base, next func(shard int, w *core.WindowResult) error) func(int, *core.WindowResult) error {
	return ArchiveWindowsEval(base, nil, next)
}

// ArchiveWindowsEval is ArchiveWindows with a standing-query hook: after
// each window's PutBatch, eval receives the window's newly archived
// entries — resolved from one snapshot taken right after the batch, so
// every entry reflects exactly what the archiver stored (post
// compression/selection) and the whole window is evaluated against a
// single archive state. The hook is the wiring point for incremental
// subscription evaluation (internal/sub's Registry.OfferTraced): it sees
// only the new entries, never the history. Entries the selection policy
// skipped (or that a capacity-bounded memory-only base already evicted
// again) are not passed. A nil eval is ignored.
//
// Each window's hand-off records one flight-recorder trace (category
// SubEval): an "archive" span around PutBatch, a "resolve" span around
// the snapshot resolution, and — via the trace passed to eval — the
// registry's probe/refine/deliver spans, so a single trace covers the
// window from archiving through event delivery.
func ArchiveWindowsEval(base *archive.Base,
	eval func(shard int, w *core.WindowResult, entries []*archive.Entry, tr *trace.Trace) error,
	next func(shard int, w *core.WindowResult) error) func(int, *core.WindowResult) error {
	return func(shard int, w *core.WindowResult) error {
		metricArchivedWindows.Inc()
		tr := trace.Default.Start(trace.SubEval, "window.eval")
		root := tr.Root()
		root.SetInt("shard", int64(shard))
		root.SetInt("clusters", int64(len(w.Clusters)))
		err := archiveOne(base, shard, w, eval, tr)
		if err != nil {
			root.SetStr("error", err.Error())
		}
		tr.Finish()
		if err != nil {
			return err
		}
		if next != nil {
			return next(shard, w)
		}
		return nil
	}
}

func archiveOne(base *archive.Base, shard int, w *core.WindowResult,
	eval func(shard int, w *core.WindowResult, entries []*archive.Entry, tr *trace.Trace) error,
	tr *trace.Trace) error {
	sums := make([]*sgs.Summary, 0, len(w.Clusters))
	for _, c := range w.Clusters {
		if c.Summary != nil {
			sums = append(sums, c.Summary)
		}
	}
	var entries []*archive.Entry
	if len(sums) > 0 {
		sp := tr.Start("archive")
		ids, archived, err := base.PutBatch(sums)
		if err != nil {
			sp.End()
			return err
		}
		accepted := uint64(0)
		for _, ok := range archived {
			if ok {
				accepted++
			}
		}
		metricArchivedEntries.Add(accepted)
		sp.SetInt("archived", int64(accepted))
		sp.End()
		if eval != nil {
			rsp := tr.Start("resolve")
			snap := base.Snapshot()
			entries = make([]*archive.Entry, 0, len(ids))
			for i, id := range ids {
				if !archived[i] {
					continue
				}
				if e := snap.Get(id); e != nil {
					entries = append(entries, e)
				}
			}
			rsp.End()
		}
	}
	// The hook runs for every window — empty ones included — so a
	// registry's window sequence counts windows, not just archivals.
	if eval != nil {
		if err := eval(shard, w, entries, tr); err != nil {
			return err
		}
	}
	return nil
}
