// Package stream provides the streaming plumbing around the pattern
// extractor (§3.3): tuple sources, executors, and the interfaces the two
// extractors (C-SGS in internal/core, Extra-N in internal/extran) plug
// into.
//
//   - Source yields tuples in arrival order; FromSlice wraps in-memory
//     data, FromCSV reads one tuple per CSV record.
//   - Processor is the single-tuple extractor interface;
//     BatchProcessor adds whole-slide ingestion through the two-phase
//     (parallel read-only discovery, sequential apply) pipeline with
//     semantics identical to pushing the tuples one by one.
//   - Executor drives one Processor sequentially over a Source with
//     response-time accounting — the metric of §8.1 ("the average CPU
//     time elapsed from the time that all new data have arrived to the
//     time that all clusters have been output").
//   - Sharded is the scale-out executor: it hash-partitions one source
//     across N independent Processors, each on its own goroutine with
//     micro-batched ingestion, plus a single consumer goroutine that
//     serializes every shard's completed windows into the OnWindow
//     callback.
//
// # Concurrency
//
// Each Processor is single-writer and owned by exactly one goroutine: the
// caller's for Executor, the shard's for Sharded. Any parallelism inside a
// Push/PushBatch call is the processor's own (discovery and output-stage
// fan-outs bounded by its Workers/EmitWorkers configuration) and never
// escapes the call. Sharded's stages communicate only through channels:
// feeder → per-shard input channels → results channel → consumer; within a
// shard, windows arrive at the consumer in emission order, while the
// interleaving *across* shards is nondeterministic by design (OnWindow
// receives the shard index so consumers can de-interleave).
package stream
