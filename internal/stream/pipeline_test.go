package stream

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamsum/internal/core"
	"streamsum/internal/gen"
	"streamsum/internal/window"
)

func pipelineConfig() core.Config {
	return core.Config{Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Window: window.Spec{Win: 1000, Slide: 500}}
}

func TestPipelineMatchesExecutor(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 4}, 4000)

	procA, err := core.New(pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	exec := &Executor{Proc: procA, FlushTail: true}
	stA, err := exec.Run(FromSlice(b.Points, nil))
	if err != nil {
		t.Fatal(err)
	}

	procB, err := core.New(pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var consumed int64
	pl := &Pipeline{
		Proc:      procB,
		FlushTail: true,
		OnWindow: func(w *core.WindowResult) error {
			atomic.AddInt64(&consumed, int64(len(w.Clusters)))
			return nil
		},
	}
	stB, err := pl.Run(context.Background(), FromSlice(b.Points, nil))
	if err != nil {
		t.Fatal(err)
	}
	if stA.Windows != stB.Windows || stA.Clusters != stB.Clusters {
		t.Fatalf("pipeline diverged: %+v vs %+v", stA, stB)
	}
	if int(consumed) != stB.Clusters {
		t.Fatalf("consumer saw %d clusters, emitted %d", consumed, stB.Clusters)
	}
}

func TestPipelineSlowConsumerStillCorrect(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 5}, 3000)
	proc, err := core.New(pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	windows := 0
	lastWindow := int64(-1)
	pl := &Pipeline{
		Proc:      proc,
		Buffer:    1,
		FlushTail: true,
		OnWindow: func(w *core.WindowResult) error {
			time.Sleep(2 * time.Millisecond) // slower than extraction
			if w.Window <= lastWindow {
				return errors.New("windows out of order")
			}
			lastWindow = w.Window
			windows++
			return nil
		},
	}
	st, err := pl.Run(context.Background(), FromSlice(b.Points, nil))
	if err != nil {
		t.Fatal(err)
	}
	if windows != st.Windows || windows == 0 {
		t.Fatalf("consumer processed %d of %d windows", windows, st.Windows)
	}
}

func TestPipelineConsumerError(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 6}, 3000)
	proc, err := core.New(pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("archiver down")
	pl := &Pipeline{
		Proc:      proc,
		FlushTail: true,
		OnWindow:  func(*core.WindowResult) error { return sentinel },
	}
	if _, err := pl.Run(context.Background(), FromSlice(b.Points, nil)); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineCancellation(t *testing.T) {
	// An endless source; cancellation must stop the run.
	proc, err := core.New(pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	src := sourceFunc(func() (Tuple, bool) {
		n++
		if n == 5000 {
			cancel()
		}
		return Tuple{P: []float64{float64(n % 50), float64(n % 37)}}, true
	})
	pl := &Pipeline{Proc: proc, OnWindow: func(*core.WindowResult) error { return nil }}
	_, err = pl.Run(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n > 6000 {
		t.Fatalf("ran %d tuples after cancellation", n)
	}
}

type sourceFunc func() (Tuple, bool)

func (f sourceFunc) Next() (Tuple, bool) { return f() }

func TestPipelineCSVError(t *testing.T) {
	proc, err := core.New(pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := &Pipeline{Proc: proc}
	src := FromCSV(strings.NewReader("1,2\nbad,row\n"), []int{0, 1}, -1)
	if _, err := pl.Run(context.Background(), src); err == nil {
		t.Fatal("CSV error not propagated")
	}
}
