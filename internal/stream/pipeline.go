package stream

import (
	"context"
	"sync"
	"time"

	"streamsum/internal/core"
)

// Pipeline runs extraction and result consumption (archiving, shipping to
// an analyst UI) in separate goroutines connected by a bounded channel, so
// a slow consumer does not stall tuple ingestion until the buffer fills —
// the deployment shape of the paper's Figure 4, where the Pattern Archiver
// and Analyzer run beside the Extractor.
//
// The Processor itself is single-threaded (its state is wildly mutable);
// only the consumer runs concurrently. The pattern base (archive.Base) is
// safe to use from the consumer while matching queries run elsewhere.
type Pipeline struct {
	Proc Processor
	// OnWindow consumes each completed window in emission order. It runs
	// on the consumer goroutine.
	OnWindow func(*core.WindowResult) error
	// Buffer is the channel capacity between extractor and consumer
	// (default 4 windows).
	Buffer int
	// FlushTail emits the final partial window at end of stream.
	FlushTail bool
}

// Run drains the source; it returns when the stream ends, the context is
// canceled, or either side fails.
func (pl *Pipeline) Run(ctx context.Context, src Source) (RunStats, error) {
	buf := pl.Buffer
	if buf <= 0 {
		buf = 4
	}
	results := make(chan *core.WindowResult, buf)

	var consumeErr error
	var wg sync.WaitGroup
	if pl.OnWindow != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := range results {
				if consumeErr != nil {
					continue // drain without processing after failure
				}
				if err := pl.OnWindow(w); err != nil {
					consumeErr = err
				}
			}
		}()
	}

	var st RunStats
	var runErr error
	send := func(ws []*core.WindowResult) bool {
		for _, w := range ws {
			st.Windows++
			st.Clusters += len(w.Clusters)
			if pl.OnWindow == nil {
				continue
			}
			select {
			case results <- w:
			case <-ctx.Done():
				runErr = ctx.Err()
				return false
			}
		}
		return true
	}

loop:
	for {
		select {
		case <-ctx.Done():
			runErr = ctx.Err()
			break loop
		default:
		}
		t, ok := src.Next()
		if !ok {
			break
		}
		start := time.Now()
		_, emitted, err := pl.Proc.Push(t.P, t.TS)
		st.Elapsed += time.Since(start)
		if err != nil {
			runErr = err
			break
		}
		st.Tuples++
		if !send(emitted) {
			break
		}
	}
	if runErr == nil {
		if cs, ok := src.(*CSVSource); ok && cs.Err() != nil {
			runErr = cs.Err()
		}
	}
	if runErr == nil && pl.FlushTail {
		start := time.Now()
		w := pl.Proc.Flush()
		st.Elapsed += time.Since(start)
		send([]*core.WindowResult{w})
	}
	close(results)
	wg.Wait()
	if st.Windows > 0 {
		st.PerWindow = st.Elapsed / time.Duration(st.Windows)
	}
	if runErr != nil {
		return st, runErr
	}
	return st, consumeErr
}
