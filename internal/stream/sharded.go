package stream

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"streamsum/internal/core"
	"streamsum/internal/geom"
)

// Sharded is the scale-out executor: it hash-partitions one source across
// N independent Processors (shards), each running on its own goroutine
// with micro-batched ingestion, plus the existing consumer stage (one
// goroutine receiving every shard's completed windows, serialized).
//
// Each shard is a fully independent clustering instance over its
// partition of the stream — the operator computes per-partition clusters,
// not a global clustering of the union. That is the intended semantics
// for horizontally partitioned workloads (per-region traffic feeds,
// per-symbol trade streams, ...): choose a Partition function whose
// classes are the units you want clustered together. Within a shard,
// results are emitted in window order; across shards the interleaving at
// the consumer is nondeterministic, so OnWindow receives the shard index.
//
// Combined with BatchProcessor shards (whose PushBatch fans neighbor
// discovery over a worker pool) and engines configured with EmitWorkers
// (whose output stage fans per-cluster summary construction the same
// way), this stacks three axes of parallelism: across shards, across
// cores inside each shard's discovery phase, and across cores inside each
// shard's output stage — only the consumer callback itself remains
// serialized.
type Sharded struct {
	// Procs are the per-shard processors; len(Procs) is the shard count.
	Procs []Processor
	// Partition maps a tuple to a shard in [0, len(Procs)). Nil selects
	// PartitionByPoint. Results outside the range are reduced modulo the
	// shard count.
	Partition func(Tuple) int
	// OnWindow consumes completed windows with their shard of origin. It
	// runs on a single consumer goroutine; an error stops the run.
	OnWindow func(shard int, w *core.WindowResult) error
	// BatchSize caps the micro-batch a shard hands to PushBatch (default
	// 512). Shards whose Processor is not a BatchProcessor fall back to
	// per-tuple Push.
	BatchSize int
	// Buffer is the per-shard input channel capacity (default 2×BatchSize).
	Buffer int
	// FlushTail force-emits each shard's final partial window at end of
	// stream.
	FlushTail bool
}

// PartitionByPoint returns the default deterministic partitioner: an
// FNV-1a hash of the point's coordinate bit patterns, reduced mod n. Equal
// points always land on the same shard, so a shard sees a consistent
// region of the space whenever the workload itself is spatially keyed.
func PartitionByPoint(n int) func(Tuple) int {
	return func(t Tuple) int {
		h := uint64(14695981039346656037)
		for _, v := range t.P {
			b := math.Float64bits(v)
			for s := uint(0); s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= 1099511628211
			}
		}
		return int(h % uint64(n))
	}
}

// shardWindow tags a completed window with its shard of origin.
type shardWindow struct {
	shard int
	w     *core.WindowResult
}

// Run drains the source across all shards; it returns when the stream
// ends, the context is canceled, or any stage fails. RunStats.Elapsed is
// wall-clock time of the whole run (the shards overlap, so per-shard CPU
// times do not add up); Windows and Clusters aggregate across shards.
func (s *Sharded) Run(ctx context.Context, src Source) (RunStats, error) {
	var st RunStats
	n := len(s.Procs)
	if n == 0 {
		return st, fmt.Errorf("stream: sharded executor needs at least one shard")
	}
	part := s.Partition
	if part == nil {
		part = PartitionByPoint(n)
	}
	batch := s.BatchSize
	if batch <= 0 {
		batch = 512
	}
	buf := s.Buffer
	if buf <= 0 {
		buf = 2 * batch
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var errOnce sync.Once
	var runErr error
	fail := func(err error) {
		if err != nil {
			errOnce.Do(func() {
				runErr = err
				cancel()
			})
		}
	}

	ins := make([]chan Tuple, n)
	for i := range ins {
		ins[i] = make(chan Tuple, buf)
	}
	results := make(chan shardWindow, 2*n)

	// Consumer stage: serialize every shard's windows into OnWindow.
	var windows, clusters int
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		failed := false
		for r := range results {
			windows++
			clusters += len(r.w.Clusters)
			if s.OnWindow != nil && !failed {
				if err := s.OnWindow(r.shard, r.w); err != nil {
					failed = true
					fail(err)
				}
			}
		}
	}()

	var shardWG sync.WaitGroup
	for i := range s.Procs {
		shardWG.Add(1)
		go func(i int) {
			defer shardWG.Done()
			s.runShard(ctx, i, ins[i], results, batch, fail)
		}(i)
	}

	start := time.Now()
feed:
	for {
		select {
		case <-ctx.Done():
			break feed
		default:
		}
		t, ok := src.Next()
		if !ok {
			break
		}
		sh := part(t) % n
		if sh < 0 {
			sh += n
		}
		select {
		case ins[sh] <- t:
			st.Tuples++
		case <-ctx.Done():
			break feed
		}
	}
	for _, ch := range ins {
		close(ch)
	}
	shardWG.Wait()
	close(results)
	consumerWG.Wait()

	st.Elapsed = time.Since(start)
	st.Windows = windows
	st.Clusters = clusters
	if st.Windows > 0 {
		st.PerWindow = st.Elapsed / time.Duration(st.Windows)
	}
	if runErr == nil {
		if cs, ok := src.(*CSVSource); ok && cs.Err() != nil {
			runErr = cs.Err()
		}
	}
	if runErr == nil && ctx.Err() != nil {
		runErr = ctx.Err()
	}
	return st, runErr
}

// runShard is one shard's ingest loop: blocking receive of the first
// tuple, opportunistic top-up to a full micro-batch, one PushBatch (or
// Push fallback), repeat.
func (s *Sharded) runShard(ctx context.Context, shard int, in <-chan Tuple,
	results chan<- shardWindow, batch int, fail func(error)) {

	proc := s.Procs[shard]
	bp, canBatch := proc.(BatchProcessor)
	pts := make([]geom.Point, 0, batch)
	tss := make([]int64, 0, batch)

	emit := func(ws []*core.WindowResult) bool {
		for _, w := range ws {
			select {
			case results <- shardWindow{shard, w}:
			case <-ctx.Done():
				return false
			}
		}
		return true
	}
	flush := func() bool {
		if len(pts) == 0 {
			return true
		}
		var ws []*core.WindowResult
		var err error
		if canBatch {
			ws, err = bp.PushBatch(pts, tss)
		} else {
			for j := range pts {
				var emitted []*core.WindowResult
				_, emitted, err = proc.Push(pts[j], tss[j])
				if err != nil {
					break
				}
				ws = append(ws, emitted...)
			}
		}
		pts, tss = pts[:0], tss[:0]
		if err != nil {
			fail(err)
			return false
		}
		return emit(ws)
	}
	tail := func() {
		if !s.FlushTail {
			return
		}
		emit([]*core.WindowResult{proc.Flush()})
	}

	for {
		select {
		case t, ok := <-in:
			if !ok {
				if flush() {
					tail()
				}
				return
			}
			pts = append(pts, t.P)
			tss = append(tss, t.TS)
		case <-ctx.Done():
			return
		}
		open := true
	fill:
		for open && len(pts) < batch {
			select {
			case t, ok := <-in:
				if !ok {
					open = false
					break fill
				}
				pts = append(pts, t.P)
				tss = append(tss, t.TS)
			default:
				break fill
			}
		}
		if !flush() {
			return
		}
		if !open {
			tail()
			return
		}
	}
}
