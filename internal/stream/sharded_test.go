package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/window"
)

func shardedTestStream(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		if rng.Float64() < 0.8 {
			cx, cy := float64(rng.Intn(3))*3, float64(rng.Intn(3))*3
			pts[i] = geom.Point{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}
		} else {
			pts[i] = geom.Point{rng.Float64() * 9, rng.Float64() * 9}
		}
	}
	return pts
}

// TestShardedMatchesPerShardSequential: every shard of the sharded
// executor must emit exactly the windows a sequential run over that
// shard's sub-stream would emit, in the same order.
func TestShardedMatchesPerShardSequential(t *testing.T) {
	const shards = 3
	pts := shardedTestStream(9000, 17)
	cfg := core.Config{
		Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window:  window.Spec{Win: 600, Slide: 200},
		Workers: 2,
	}

	procs := make([]Processor, shards)
	for i := range procs {
		ex, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = ex
	}
	got := make([][]*core.WindowResult, shards)
	sh := &Sharded{
		Procs:     procs,
		BatchSize: 128,
		FlushTail: true,
		OnWindow: func(shard int, w *core.WindowResult) error {
			got[shard] = append(got[shard], w)
			return nil
		},
	}
	st, err := sh.Run(context.Background(), FromSlice(pts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != len(pts) {
		t.Fatalf("fed %d tuples, want %d", st.Tuples, len(pts))
	}

	part := PartitionByPoint(shards)
	sub := make([][]geom.Point, shards)
	for _, p := range pts {
		i := part(Tuple{P: p})
		sub[i] = append(sub[i], p)
	}
	totalWindows := 0
	for i := 0; i < shards; i++ {
		ex, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var want []*core.WindowResult
		exec := &Executor{Proc: ex, FlushTail: true, OnWindow: func(w *core.WindowResult) error {
			want = append(want, w)
			return nil
		}}
		if _, err := exec.Run(FromSlice(sub[i], nil)); err != nil {
			t.Fatal(err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got[i])
		if string(wb) != string(gb) {
			t.Errorf("shard %d: sharded output differs from sequential over its sub-stream", i)
		}
		totalWindows += len(want)
	}
	if st.Windows != totalWindows {
		t.Errorf("aggregate Windows = %d, want %d", st.Windows, totalWindows)
	}
}

// TestShardedConsumerError checks an OnWindow failure stops the run and
// surfaces the error.
func TestShardedConsumerError(t *testing.T) {
	pts := shardedTestStream(4000, 5)
	cfg := core.Config{Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window: window.Spec{Win: 300, Slide: 100}}
	boom := fmt.Errorf("consumer exploded")
	procs := make([]Processor, 2)
	for i := range procs {
		ex, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = ex
	}
	sh := &Sharded{
		Procs:    procs,
		OnWindow: func(int, *core.WindowResult) error { return boom },
	}
	if _, err := sh.Run(context.Background(), FromSlice(pts, nil)); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestShardedCancel checks context cancellation terminates the run.
func TestShardedCancel(t *testing.T) {
	cfg := core.Config{Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window: window.Spec{Win: 300, Slide: 100}}
	ex, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	src := funcSource(func() (Tuple, bool) {
		n++
		if n == 1000 {
			cancel()
		}
		return Tuple{P: geom.Point{float64(n % 7), float64(n % 5)}}, true
	})
	sh := &Sharded{Procs: []Processor{ex}}
	if _, err := sh.Run(ctx, src); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type funcSource func() (Tuple, bool)

func (f funcSource) Next() (Tuple, bool) { return f() }
