package stream

import (
	"strings"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/extran"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/window"
)

func TestFromSlice(t *testing.T) {
	pts := []geom.Point{{1}, {2}, {3}}
	src := FromSlice(pts, []int64{10, 20, 30})
	var got []Tuple
	for {
		tu, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, tu)
	}
	if len(got) != 3 || got[1].TS != 20 || got[2].P[0] != 3 {
		t.Fatalf("got %+v", got)
	}
	// nil timestamps default to zero.
	src2 := FromSlice(pts, nil)
	tu, _ := src2.Next()
	if tu.TS != 0 {
		t.Fatal("nil tss should give TS 0")
	}
}

func TestFromCSV(t *testing.T) {
	csvData := "1.5,2.5,100\n3.0,4.0,200\n"
	src := FromCSV(strings.NewReader(csvData), []int{0, 1}, 2)
	t1, ok := src.Next()
	if !ok || !t1.P.Equal(geom.Point{1.5, 2.5}) || t1.TS != 100 {
		t.Fatalf("t1 = %+v ok=%v", t1, ok)
	}
	t2, ok := src.Next()
	if !ok || t2.TS != 200 {
		t.Fatalf("t2 = %+v", t2)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("expected EOF")
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	// Row number as timestamp.
	src2 := FromCSV(strings.NewReader("5,6\n7,8\n"), []int{0, 1}, -1)
	u1, _ := src2.Next()
	u2, _ := src2.Next()
	if u1.TS != 0 || u2.TS != 1 {
		t.Fatalf("row timestamps %d %d", u1.TS, u2.TS)
	}
}

func TestFromCSVErrors(t *testing.T) {
	// Non-numeric coordinate.
	src := FromCSV(strings.NewReader("a,b\n"), []int{0, 1}, -1)
	if _, ok := src.Next(); ok {
		t.Fatal("bad row accepted")
	}
	if src.Err() == nil {
		t.Fatal("Err not set")
	}
	// Missing column.
	src2 := FromCSV(strings.NewReader("1\n"), []int{0, 1}, -1)
	if _, ok := src2.Next(); ok {
		t.Fatal("short row accepted")
	}
	// Missing ts column.
	src3 := FromCSV(strings.NewReader("1,2\n"), []int{0, 1}, 5)
	if _, ok := src3.Next(); ok {
		t.Fatal("missing ts column accepted")
	}
}

func TestExecutorWithCSGS(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 1}, 3000)
	cfg := core.Config{Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Window: window.Spec{Win: 1000, Slide: 500}}
	proc, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows := 0
	ex := &Executor{
		Proc: proc,
		OnWindow: func(r *core.WindowResult) error {
			windows++
			return nil
		},
		FlushTail: true,
	}
	st, err := ex.Run(FromSlice(b.Points, nil))
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != 3000 {
		t.Fatalf("tuples = %d", st.Tuples)
	}
	if st.Windows != windows || st.Windows == 0 {
		t.Fatalf("windows = %d (callback saw %d)", st.Windows, windows)
	}
	if st.Clusters == 0 {
		t.Fatal("no clusters found on GMTI data")
	}
	if st.Elapsed <= 0 || st.PerWindow <= 0 {
		t.Fatal("timing not recorded")
	}
}

func TestExecutorWithExtraN(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 2}, 2000)
	cfg := core.Config{Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Window: window.Spec{Win: 1000, Slide: 1000}}
	proc, err := extran.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Proc: proc, FlushTail: true}
	st, err := ex.Run(FromSlice(b.Points, nil))
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows == 0 || st.Clusters == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestExecutorCallbackError(t *testing.T) {
	b := gen.GMTI(gen.GMTIConfig{Seed: 3}, 1500)
	cfg := core.Config{Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Window: window.Spec{Win: 500, Slide: 500}}
	proc, _ := core.New(cfg)
	wantErr := &csvErrSentinel{}
	ex := &Executor{
		Proc:     proc,
		OnWindow: func(*core.WindowResult) error { return wantErr },
	}
	_, err := ex.Run(FromSlice(b.Points, nil))
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
}

type csvErrSentinel struct{}

func (*csvErrSentinel) Error() string { return "sentinel" }

func TestExecutorPropagatesCSVError(t *testing.T) {
	cfg := core.Config{Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Window: window.Spec{Win: 500, Slide: 500}}
	proc, _ := core.New(cfg)
	ex := &Executor{Proc: proc}
	src := FromCSV(strings.NewReader("1,2\nbad,row\n"), []int{0, 1}, -1)
	if _, err := ex.Run(src); err == nil {
		t.Fatal("CSV error not propagated")
	}
}
