package experiments

import (
	"testing"
	"time"
)

// The experiment runners are exercised here at miniature scale — the point
// is to verify the harness is correct end to end; the full-scale numbers
// are produced by cmd/experiments and the benchmark suite.

func TestRunFig7AllMethodsSmall(t *testing.T) {
	data := sttData(Fig7Win+4*1000, 42)
	var baseline Fig7Result
	for _, method := range Methods {
		res, err := RunFig7(Fig7Config{
			Case: Cases[1], Slide: 1000, Method: method,
			Windows: 3, Seed: 42, Data: &data,
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if res.Windows != 3 {
			t.Fatalf("%s: %d windows", method, res.Windows)
		}
		if res.Clusters == 0 {
			t.Fatalf("%s: no clusters", method)
		}
		if res.AvgResponse <= 0 {
			t.Fatalf("%s: no timing", method)
		}
		switch method {
		case "Extra-N", "C-SGS-full":
			if method == "Extra-N" {
				baseline = res
			}
			if res.SummaryBytes != 0 {
				t.Fatalf("%s should produce no summaries", method)
			}
		default:
			if res.SummaryBytes == 0 {
				t.Fatalf("%s: no summary bytes", method)
			}
		}
	}
	if Fig7Overhead(baseline, baseline) != 0 {
		t.Fatal("self overhead must be zero")
	}
}

func TestRunFig7Validation(t *testing.T) {
	small := sttData(100, 1)
	if _, err := RunFig7(Fig7Config{Case: Cases[0], Slide: 1000, Method: "C-SGS",
		Windows: 5, Data: &small}); err == nil {
		t.Fatal("undersized data accepted")
	}
	data := sttData(Fig7Win+2000, 1)
	if _, err := RunFig7(Fig7Config{Case: Cases[0], Slide: 1000, Method: "bogus",
		Windows: 1, Data: &data}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunFig8Small(t *testing.T) {
	results, err := RunFig8(Fig8Config{ArchiveSize: 30, Queries: 5, ExpensiveQueries: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d methods", len(results))
	}
	byMethod := map[string]Fig8Result{}
	for _, r := range results {
		byMethod[r.Method] = r
		if r.AvgQuery <= 0 {
			t.Fatalf("%s: no timing", r.Method)
		}
		if r.StoreBytes <= 0 {
			t.Fatalf("%s: no storage accounting", r.Method)
		}
	}
	// The self-like targets come from the same generator; SGS should find
	// matches and use its filter.
	if byMethod["SGS"].FilterFrac <= 0 || byMethod["SGS"].FilterFrac > 1 {
		t.Fatalf("SGS filter fraction %g", byMethod["SGS"].FilterFrac)
	}
	if byMethod["RSP"].QueriesRun != 2 || byMethod["SkPS"].QueriesRun != 2 {
		t.Fatal("expensive query capping not applied")
	}
}

func TestMatchStoresStats(t *testing.T) {
	st, err := BuildMatchStores(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	cr := st.CompressionRate()
	if cr < 0.5 || cr >= 1 {
		t.Fatalf("compression rate %.3f implausible", cr)
	}
	if st.AvgCellsPerCluster() <= 1 {
		t.Fatalf("avg cells %.1f", st.AvgCellsPerCluster())
	}
	if len(st.Members) != 20 || len(st.Shapes) != 20 {
		t.Fatal("store bookkeeping wrong")
	}
}

func TestRunFig9Small(t *testing.T) {
	results, err := RunFig9(Fig9Config{ArchiveSize: 40, Targets: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d methods", len(results))
	}
	for _, r := range results {
		if r.Tally.Total() == 0 {
			t.Fatalf("%s: no rated matches", r.Method)
		}
		if r.Tally.Total() > 6*3 {
			t.Fatalf("%s: too many rated matches (%d)", r.Method, r.Tally.Total())
		}
	}
}

func TestRunTimeVarSmall(t *testing.T) {
	results, err := RunTimeVar(TimeVarConfig{Windows: 4, Tuples: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d methods", len(results))
	}
	for _, r := range results {
		if r.Windows == 0 || r.AvgResponse <= 0 {
			t.Fatalf("%s: %+v", r.Method, r)
		}
		if r.MaxResponse < r.AvgResponse {
			t.Fatalf("%s: max %v < avg %v", r.Method, r.MaxResponse, r.AvgResponse)
		}
	}
}

func TestRunResolutionSmall(t *testing.T) {
	results, err := RunResolution(ResolutionConfig{Levels: 2, Theta: 3,
		ArchiveSize: 25, Targets: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d levels", len(results))
	}
	// Coarser levels must store less and keep fewer cells.
	for i := 1; i < len(results); i++ {
		if results[i].StoreBytes >= results[i-1].StoreBytes {
			t.Fatalf("level %d stores %d >= level %d's %d",
				i, results[i].StoreBytes, i-1, results[i-1].StoreBytes)
		}
		if results[i].AvgCells >= results[i-1].AvgCells {
			t.Fatal("cells did not shrink with level")
		}
	}
	// Level 0 quality should be at least as good as the coarsest level.
	if results[0].AvgTopSim+1e-9 < results[len(results)-1].AvgTopSim-0.1 {
		t.Fatalf("finest level much worse than coarsest: %v", results)
	}
	_ = time.Duration(0)
}
