// Package experiments implements the reproduction harness for the paper's
// evaluation (§8): one runner per figure, shared by the `experiments`
// command-line tool and the repository's benchmark suite. EXPERIMENTS.md
// records paper-vs-measured results for each.
package experiments

import (
	"fmt"
	"runtime"

	"streamsum/internal/dbscan"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/sgs"
)

// ParamCase is one of the paper's three density parameter settings (§8.1).
type ParamCase struct {
	Name   string
	ThetaR float64
	ThetaC int
}

// Cases are the paper's STT parameter cases.
var Cases = []ParamCase{
	{"case1", 0.05, 10},
	{"case2", 0.10, 8},
	{"case3", 0.20, 5},
}

// Fig7Win is the window size used throughout §8.1.
const Fig7Win = 10000

// Slides are the §8.1 slide sizes (0.1K, 1K, 5K).
var Slides = []int64{100, 1000, 5000}

// Methods are the five §8.1 alternatives plus "C-SGS-full" — C-SGS's own
// extraction machinery with summarization output disabled. The paper
// measures its ≤6% summarization overhead against the Extra-N machinery
// C-SGS was built on; in this implementation the skeletal-grid approach
// *is* the extraction machinery, so the marginal summarization cost is
// C-SGS vs C-SGS-full.
var Methods = []string{"Extra-N", "Extra-N+CRD", "Extra-N+RSP", "Extra-N+SkPS", "C-SGS-full", "C-SGS"}

// MatchMethods are the four §8.2/§8.3 summarization formats under
// comparison.
var MatchMethods = []string{"SGS", "CRD", "RSP", "SkPS"}

// summarizeCluster runs the static clustering of Definition 3.1 on a
// generated cluster's points and returns the largest resulting cluster's
// members, core flags, and Basic SGS. Generated clusters are occasionally
// fragmented by sampling accidents; taking the largest fragment keeps the
// pipeline total.
func summarizeCluster(pts []geom.Point, thetaR float64, thetaC int, id int64) (
	member []geom.Point, isCore []bool, summary *sgs.Summary, err error) {

	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: thetaC})
	if err != nil {
		return nil, nil, nil, err
	}
	if len(res.Clusters) == 0 {
		return nil, nil, nil, fmt.Errorf("experiments: generated cluster dissolved into noise")
	}
	best := 0
	for i, c := range res.Clusters {
		if len(c.Members) > len(res.Clusters[best].Members) {
			best = i
		}
	}
	cl := res.Clusters[best]
	member = make([]geom.Point, len(cl.Members))
	isCore = make([]bool, len(cl.Members))
	for i, m := range cl.Members {
		member[i] = pts[m]
		isCore[i] = res.IsCore[m]
	}
	geo, err := grid.NewGeometry(len(pts[0]), thetaR)
	if err != nil {
		return nil, nil, nil, err
	}
	summary, err = sgs.FromCluster(geo, member, isCore, id, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	summary.ID = id
	return member, isCore, summary, nil
}

// heapAlloc returns the current live heap after a GC cycle, used for the
// memory-footprint measurements of Figure 7.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// heapSample returns the current heap without forcing a GC (cheap, used
// per window).
func heapSample() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// sttData generates (and caches per size/seed within one process run) the
// STT stream used by the Figure 7/8 experiments.
func sttData(n int, seed int64) gen.Batch {
	return gen.STT(gen.STTConfig{Seed: seed}, n)
}
