package experiments

import (
	"sort"
	"time"
)

// Latencies accumulates per-window response times and reports order
// statistics; stream processing papers (and SLOs) care about tails, not
// just means.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Len returns the number of samples.
func (l *Latencies) Len() int { return len(l.samples) }

func (l *Latencies) sort() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Mean returns the average sample.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank.
func (l *Latencies) Quantile(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	if q <= 0 {
		return l.samples[0]
	}
	if q >= 1 {
		return l.samples[len(l.samples)-1]
	}
	idx := int(q * float64(len(l.samples)))
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Max returns the largest sample.
func (l *Latencies) Max() time.Duration { return l.Quantile(1) }
