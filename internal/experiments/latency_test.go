package experiments

import (
	"testing"
	"time"
)

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.Quantile(0.5) != 0 || l.Max() != 0 || l.Len() != 0 {
		t.Fatal("empty latencies should report zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := l.Quantile(0.95); got < 95*time.Millisecond || got > 97*time.Millisecond {
		t.Fatalf("P95 = %v", got)
	}
	if got := l.Max(); got != 100*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if got := l.Quantile(0); got != 1*time.Millisecond {
		t.Fatalf("P0 = %v", got)
	}
	// Adding after a quantile read must re-sort.
	l.Add(200 * time.Millisecond)
	if got := l.Max(); got != 200*time.Millisecond {
		t.Fatalf("Max after Add = %v", got)
	}
}

func TestFig9ByShape(t *testing.T) {
	results, err := RunFig9(Fig9Config{ArchiveSize: 40, Targets: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.ByShape) == 0 {
			t.Fatalf("%s: no shape breakdown", r.Method)
		}
		total := 0
		for shape, tl := range r.ByShape {
			if shape == "" || shape == "unknown" {
				t.Fatalf("%s: bad shape key %q", r.Method, shape)
			}
			total += tl.Total()
		}
		if total != r.Tally.Total() {
			t.Fatalf("%s: shape tallies sum to %d, overall %d", r.Method, total, r.Tally.Total())
		}
	}
}

func TestFig7TailLatencies(t *testing.T) {
	data := sttData(Fig7Win+3*1000, 3)
	res, err := RunFig7(Fig7Config{Case: Cases[1], Slide: 1000, Method: "C-SGS",
		Windows: 3, Seed: 3, Data: &data})
	if err != nil {
		t.Fatal(err)
	}
	if res.P95Response <= 0 || res.MaxResponse <= 0 {
		t.Fatalf("tail latencies missing: %+v", res)
	}
	if res.MaxResponse < res.P95Response {
		t.Fatalf("max %v < p95 %v", res.MaxResponse, res.P95Response)
	}
}
