package experiments

import (
	"fmt"
	"time"

	"streamsum/internal/core"
	"streamsum/internal/crd"
	"streamsum/internal/extran"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/rsp"
	"streamsum/internal/sgs"
	"streamsum/internal/skps"
	"streamsum/internal/window"
)

// Figure 7 (§8.1): CPU time and memory for cluster extraction plus
// summarization, comparing
//
//	Extra-N        — extraction only, full representation (baseline),
//	Extra-N + CRD  — extraction, then CRD per cluster,
//	Extra-N + RSP  — extraction, then memory-matched random sample,
//	Extra-N + SkPS — extraction, then greedy connected-dominating-set,
//	C-SGS          — integrated extraction + SGS (full + summarized).
//
// Workload: STT 4-D (type, price, volume, time), win = 10K tuples, slide ∈
// {0.1K, 1K, 5K}, three density parameter cases. The response-time metric
// is the §8.1 definition: average CPU time per window from data arrival to
// all clusters output in the representations the method produces.

// RSPBudgetBytes is the per-cluster byte budget used for RSP samples. The
// paper sizes each cluster's sample to match its SGS; 1.5 KB is the
// paper's reported average SGS size per cluster (68 cells × 23 B).
const RSPBudgetBytes = 1500

// Fig7Config parameterizes one Figure 7 cell.
type Fig7Config struct {
	Case    ParamCase
	Slide   int64
	Method  string // one of Methods
	Windows int    // complete windows to process (paper: 10K; default 20)
	Seed    int64
	// Data optionally supplies a pre-generated stream (shared across
	// methods to keep comparisons paired); it must contain at least
	// Fig7Win + Windows·Slide tuples.
	Data *gen.Batch
}

// Fig7Result is one measured cell of Figure 7.
type Fig7Result struct {
	Method   string
	Case     string
	Slide    int64
	Windows  int
	Clusters int
	// AvgResponse is the per-window response time (extraction +
	// summarization where applicable).
	AvgResponse time.Duration
	// P95Response and MaxResponse are per-window tail latencies.
	P95Response time.Duration
	MaxResponse time.Duration
	// PeakHeapBytes is the peak live-heap growth over the run (the
	// memory-footprint metric; the shared input stream is excluded by
	// baselining before the run).
	PeakHeapBytes uint64
	// SummaryBytes is the total encoded size of all summaries produced.
	SummaryBytes int
}

// RunFig7 executes one cell of Figure 7.
func RunFig7(cfg Fig7Config) (Fig7Result, error) {
	if cfg.Windows <= 0 {
		cfg.Windows = 20
	}
	need := int(Fig7Win + int64(cfg.Windows)*cfg.Slide)
	var data gen.Batch
	if cfg.Data != nil {
		data = *cfg.Data
		if len(data.Points) < need {
			return Fig7Result{}, fmt.Errorf("experiments: supplied data has %d tuples, need %d", len(data.Points), need)
		}
	} else {
		data = sttData(need, cfg.Seed)
	}
	res := Fig7Result{Method: cfg.Method, Case: cfg.Case.Name, Slide: cfg.Slide}

	wcfg := core.Config{
		Dim: 4, ThetaR: cfg.Case.ThetaR, ThetaC: cfg.Case.ThetaC,
		Window: window.Spec{Win: Fig7Win, Slide: cfg.Slide},
	}

	type pusher interface {
		Push(p geom.Point, ts int64) (int64, []*core.WindowResult, error)
	}
	var proc pusher
	var err error
	switch cfg.Method {
	case "C-SGS":
		proc, err = core.New(wcfg)
	case "C-SGS-full":
		wcfg.SkipSummaries = true
		proc, err = core.New(wcfg)
	default:
		proc, err = extran.New(wcfg)
	}
	if err != nil {
		return res, err
	}

	baseline := heapAlloc()
	peak := uint64(0)
	var elapsed, sinceWindow time.Duration
	var lat Latencies

	summarize := func(w *core.WindowResult) error {
		for _, c := range w.Clusters {
			switch cfg.Method {
			case "Extra-N", "C-SGS", "C-SGS-full":
				if c.Summary != nil {
					res.SummaryBytes += sgs.EncodedSize(c.Summary)
				}
			case "Extra-N+CRD":
				pts := memberPoints(data.Points, c.Members)
				s, err := crd.FromPoints(pts, c.ID, w.Window)
				if err != nil {
					return err
				}
				res.SummaryBytes += s.Size()
			case "Extra-N+RSP":
				pts := memberPoints(data.Points, c.Members)
				s, err := rsp.FromPoints(pts, c.ID, w.Window, RSPBudgetBytes, nil)
				if err != nil {
					return err
				}
				res.SummaryBytes += s.Size()
			case "Extra-N+SkPS":
				pts := memberPoints(data.Points, c.Members)
				isCore := coreFlags(c)
				s, err := skps.FromCluster(pts, isCore, cfg.Case.ThetaR, c.ID, w.Window)
				if err != nil {
					return err
				}
				res.SummaryBytes += s.Size()
			default:
				return fmt.Errorf("experiments: unknown method %q", cfg.Method)
			}
		}
		return nil
	}

	for i := 0; i < need; i++ {
		start := time.Now()
		_, emitted, err := proc.Push(data.Points[i], 0)
		if err != nil {
			return res, err
		}
		// The two-stage methods summarize inside the response-time window:
		// the analyst sees clusters + summaries together.
		for _, w := range emitted {
			if err := summarize(w); err != nil {
				return res, err
			}
		}
		d := time.Since(start)
		elapsed += d
		sinceWindow += d
		for _, w := range emitted {
			res.Windows++
			res.Clusters += len(w.Clusters)
			lat.Add(sinceWindow)
			sinceWindow = 0
			if h := heapSample(); h > baseline && h-baseline > peak {
				peak = h - baseline
			}
			_ = w
		}
		if res.Windows >= cfg.Windows {
			break
		}
	}
	if res.Windows == 0 {
		return res, fmt.Errorf("experiments: no windows completed")
	}
	res.AvgResponse = elapsed / time.Duration(res.Windows)
	res.P95Response = lat.Quantile(0.95)
	res.MaxResponse = lat.Max()
	res.PeakHeapBytes = peak
	return res, nil
}

func memberPoints(all []geom.Point, members []int64) []geom.Point {
	pts := make([]geom.Point, len(members))
	for i, id := range members {
		pts[i] = all[id]
	}
	return pts
}

func coreFlags(c *core.Cluster) []bool {
	coreSet := make(map[int64]bool, len(c.Cores))
	for _, id := range c.Cores {
		coreSet[id] = true
	}
	flags := make([]bool, len(c.Members))
	for i, id := range c.Members {
		flags[i] = coreSet[id]
	}
	return flags
}

// Fig7Overhead computes the §8.1 headline number: the relative response
// time overhead of a method versus the Extra-N baseline for the same
// workload (paper: C-SGS consistently below 6%).
func Fig7Overhead(method, baseline Fig7Result) float64 {
	if baseline.AvgResponse == 0 {
		return 0
	}
	return float64(method.AvgResponse-baseline.AvgResponse) / float64(baseline.AvgResponse)
}
