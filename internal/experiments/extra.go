package experiments

import (
	"math"
	"math/rand"
	"time"

	"streamsum/internal/archive"
	"streamsum/internal/core"
	"streamsum/internal/extran"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/match"
	"streamsum/internal/quality"
	"streamsum/internal/window"
)

// This file reproduces the two experiments the paper delegates to its
// technical report: time-based windows under fluctuating input rates
// (§8.1) and matching with multi-resolution SGS (§8.3 / §6.1).

// TimeVarConfig parameterizes the fluctuating-rate experiment.
type TimeVarConfig struct {
	// Windows is the number of complete time windows to process.
	Windows int
	// WinTicks/SlideTicks define the time-based window (defaults 600/60).
	WinTicks, SlideTicks int64
	// Tuples is the stream length (default 60000).
	Tuples int
	Seed   int64
}

// TimeVarResult compares C-SGS and Extra-N under one fluctuating-rate run.
type TimeVarResult struct {
	Method      string
	Windows     int
	Clusters    int
	AvgResponse time.Duration
	MaxResponse time.Duration
}

// RunTimeVar runs both methods over the same bursty GMTI stream with
// time-based windows. Bursts make per-window tuple counts fluctuate by an
// order of magnitude, stressing the lifespan machinery (object lifespans
// vary per tuple instead of being uniform as in count-based windows).
func RunTimeVar(cfg TimeVarConfig) ([]TimeVarResult, error) {
	if cfg.Windows <= 0 {
		cfg.Windows = 20
	}
	if cfg.WinTicks <= 0 {
		cfg.WinTicks = 600
	}
	if cfg.SlideTicks <= 0 {
		cfg.SlideTicks = 60
	}
	if cfg.Tuples <= 0 {
		cfg.Tuples = 60000
	}
	data := gen.GMTI(gen.GMTIConfig{Seed: cfg.Seed}, cfg.Tuples)
	// Re-time the stream with bursts and lulls: stretches of dense traffic
	// followed by quiet periods.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	ts := make([]int64, len(data.Points))
	t := int64(0)
	burst := false
	for i := range ts {
		if rng.Float64() < 0.002 {
			burst = !burst
		}
		if burst {
			if rng.Float64() < 0.1 {
				t++
			}
		} else {
			t += int64(1 + rng.Intn(3))
		}
		ts[i] = t
	}

	wcfg := core.Config{
		Dim: 2, ThetaR: 1.2, ThetaC: 5,
		Window: window.Spec{Kind: window.TimeBased, Win: cfg.WinTicks, Slide: cfg.SlideTicks},
	}
	var out []TimeVarResult
	for _, method := range []string{"Extra-N", "C-SGS"} {
		var proc interface {
			Push(p geom.Point, ts int64) (int64, []*core.WindowResult, error)
		}
		var err error
		if method == "C-SGS" {
			proc, err = core.New(wcfg)
		} else {
			proc, err = extran.New(wcfg)
		}
		if err != nil {
			return nil, err
		}
		res := TimeVarResult{Method: method}
		var elapsed, sinceLastWindow time.Duration
		for i := range data.Points {
			start := time.Now()
			_, emitted, err := proc.Push(data.Points[i], ts[i])
			d := time.Since(start)
			elapsed += d
			sinceLastWindow += d
			if err != nil {
				return nil, err
			}
			for _, w := range emitted {
				res.Windows++
				res.Clusters += len(w.Clusters)
				// Per-window response: everything since the previous
				// emission (insertions of the slide + the output stage).
				if sinceLastWindow > res.MaxResponse {
					res.MaxResponse = sinceLastWindow
				}
				sinceLastWindow = 0
			}
			if res.Windows >= cfg.Windows {
				break
			}
		}
		if res.Windows > 0 {
			res.AvgResponse = elapsed / time.Duration(res.Windows)
		}
		out = append(out, res)
	}
	return out, nil
}

// ResolutionConfig parameterizes the multi-resolution matching experiment.
type ResolutionConfig struct {
	// Levels is the highest resolution level to test (default 2; level 0
	// is the Basic SGS).
	Levels int
	// Theta is the per-level compression rate (default 3, the paper's
	// Figure 5 example).
	Theta       int
	ArchiveSize int // default 200
	Targets     int // default 16
	Seed        int64
}

// ResolutionResult is one resolution level's cost/quality measurement.
type ResolutionResult struct {
	Level int
	// StoreBytes is the archive storage at this level.
	StoreBytes int
	// AvgCells is the mean skeletal grid cells per archived cluster.
	AvgCells float64
	// AvgQuery is the average matching query time.
	AvgQuery time.Duration
	// AvgTopSim is the mean oracle similarity of the best match per
	// target (quality retained at this resolution).
	AvgTopSim float64
}

// RunResolution archives the same clusters at increasingly coarse SGS
// resolutions and measures matching cost and quality at each (§6.1's
// budget/accuracy trade-off made concrete).
func RunResolution(cfg ResolutionConfig) ([]ResolutionResult, error) {
	if cfg.Levels <= 0 {
		cfg.Levels = 2
	}
	if cfg.Theta < 2 {
		cfg.Theta = 3
	}
	if cfg.ArchiveSize <= 0 {
		cfg.ArchiveSize = 200
	}
	if cfg.Targets <= 0 {
		cfg.Targets = 16
	}
	clusters := gen.Clusters(gen.ClustersConfig{Seed: cfg.Seed}, cfg.ArchiveSize)
	targets := gen.Clusters(gen.ClustersConfig{Seed: cfg.Seed + 999}, cfg.Targets)
	oracle, err := quality.NewOracle(2, MatchParams.ThetaR/math.Sqrt2, quality.DefaultThresholds())
	if err != nil {
		return nil, err
	}

	var out []ResolutionResult
	for level := 0; level <= cfg.Levels; level++ {
		base, err := archive.New(archive.Config{Dim: 2, Level: level, Theta: cfg.Theta})
		if err != nil {
			return nil, err
		}
		members := make(map[int64][]geom.Point)
		cellSum := 0
		for i, gc := range clusters {
			member, _, summary, err := summarizeCluster(gc.Points, MatchParams.ThetaR, MatchParams.ThetaC, int64(i))
			if err != nil {
				return nil, err
			}
			id, ok, err := base.Put(summary)
			if err != nil || !ok {
				return nil, err
			}
			members[id] = member
			cellSum += base.Get(id).Summary.NumCells()
		}
		for id, m := range members {
			oracle.AddCluster(offsetID(level, id), m)
		}

		res := ResolutionResult{Level: level, StoreBytes: base.Bytes(),
			AvgCells: float64(cellSum) / float64(cfg.ArchiveSize)}
		var simSum float64
		rated := 0
		start := time.Now()
		for ti, tc := range targets {
			member, _, summary, err := summarizeCluster(tc.Points, MatchParams.ThetaR, MatchParams.ThetaC, int64(3_000_000+ti))
			if err != nil {
				return nil, err
			}
			// Match at the archive's resolution.
			target, err := summary.CompressTo(level, cfg.Theta)
			if err != nil {
				return nil, err
			}
			ms, _, err := match.Run(base, match.Query{Target: target, Threshold: 1, Limit: 1})
			if err != nil {
				return nil, err
			}
			if len(ms) > 0 {
				sim, err := oracle.Similarity(member, offsetID(level, ms[0].ID))
				if err != nil {
					return nil, err
				}
				simSum += sim
				rated++
			}
		}
		res.AvgQuery = time.Since(start) / time.Duration(len(targets))
		if rated > 0 {
			res.AvgTopSim = simSum / float64(rated)
		}
		out = append(out, res)
	}
	return out, nil
}

// offsetID namespaces oracle cluster ids per level (each level re-archives
// the same clusters with fresh archive ids starting at 0).
func offsetID(level int, id int64) int64 {
	return int64(level)*10_000_000 + id
}
