package experiments

import (
	"math"
	"math/rand"
	"sort"

	"streamsum/internal/crd"
	"streamsum/internal/gen"
	"streamsum/internal/match"
	"streamsum/internal/quality"
	"streamsum/internal/rsp"
	"streamsum/internal/skps"
)

// Figure 9 (§8.3): quality of cluster matching. For each to-be-matched
// cluster, every summarization format returns its top-3 matches; each
// returned match is rated very-similar / similar / not-similar. The
// paper's 20 human analysts are replaced by the full-representation
// coverage oracle of internal/quality (see that package and DESIGN.md for
// why the substitution preserves the comparison's discriminating power).
//
// Targets mix perturbed copies of archived clusters (a good match exists;
// a faithful method should find it) with fresh clusters (no especially
// good match exists; returning confidently "similar" junk is penalized).

// Fig9Config parameterizes the quality study.
type Fig9Config struct {
	// ArchiveSize is the number of archived clusters (paper: matching
	// against the archive built in §8.2; default 300).
	ArchiveSize int
	// Targets is the number of to-be-matched clusters (default 24).
	Targets int
	// PerturbedFrac is the fraction of targets derived from archived
	// clusters (default 0.7).
	PerturbedFrac float64
	// TopK is how many matches each method returns per target (paper: 3).
	TopK int
	// Dim is the workload dimensionality (default 2; the paper's STT
	// matching workload is 4-D, where fixed byte budgets buy the sampling
	// and graph methods less fidelity).
	Dim  int
	Seed int64
}

// Fig9Result is one method's tally, overall and broken down by the
// target's shape family (which structures each summarization handles
// well — CRD typically collapses on rings and two-lobe clusters, whose
// statistical profile matches a plain blob).
type Fig9Result struct {
	Method  string
	Tally   quality.Tally
	ByShape map[string]*quality.Tally
}

// RunFig9 executes the quality study.
func RunFig9(cfg Fig9Config) ([]Fig9Result, error) {
	if cfg.ArchiveSize <= 0 {
		cfg.ArchiveSize = 300
	}
	if cfg.Targets <= 0 {
		cfg.Targets = 24
	}
	if cfg.PerturbedFrac <= 0 || cfg.PerturbedFrac > 1 {
		cfg.PerturbedFrac = 0.7
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 3
	}
	if cfg.Dim < 2 {
		cfg.Dim = 2
	}
	params := MatchParamsForDim(cfg.Dim)
	st, err := BuildMatchStoresDim(cfg.ArchiveSize, cfg.Seed, cfg.Dim)
	if err != nil {
		return nil, err
	}
	// The oracle rates using full representations, which no summarization
	// method sees. Its occupancy granularity matches the clustering
	// geometry in 2-D (cell side = θr/√2); in higher dimensions the raster
	// is kept at side = θr — with a few hundred members, finer 4-D cells
	// hold ≈1 point each and even an independent re-sample of the same
	// cluster would rate dissimilar, destroying the rating's meaning.
	cellSide := params.ThetaR / math.Sqrt2
	if cfg.Dim >= 3 {
		cellSide = params.ThetaR
	}
	oracle, err := quality.NewOracle(cfg.Dim, cellSide, quality.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	for id, member := range st.Members {
		oracle.AddCluster(int64(id), member)
	}

	// Build targets.
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	archived := gen.Clusters(gen.ClustersConfig{Seed: cfg.Seed, Dim: cfg.Dim}, cfg.ArchiveSize)
	fresh := gen.Clusters(gen.ClustersConfig{Seed: cfg.Seed + 999, Dim: cfg.Dim}, cfg.Targets)

	tallies := map[string]*quality.Tally{}
	byShape := map[string]map[string]*quality.Tally{}
	for _, m := range MatchMethods {
		tallies[m] = &quality.Tally{}
		byShape[m] = map[string]*quality.Tally{}
	}
	shapeTally := func(method, shape string) *quality.Tally {
		t := byShape[method][shape]
		if t == nil {
			t = &quality.Tally{}
			byShape[method][shape] = t
		}
		return t
	}

	for ti := 0; ti < cfg.Targets; ti++ {
		var pts = fresh[ti].Points
		shape := fresh[ti].Shape
		if rng.Float64() < cfg.PerturbedFrac {
			src := archived[rng.Intn(len(archived))]
			perturbed := gen.Perturb(src, 0.08, 30, cfg.Seed+int64(ti))
			pts, shape = perturbed.Points, perturbed.Shape
		}
		member, isCore, summary, err := summarizeCluster(pts, params.ThetaR, params.ThetaC, int64(2_000_000+ti))
		if err != nil {
			return nil, err
		}
		tCRD, err := crd.FromPoints(member, int64(ti), 0)
		if err != nil {
			return nil, err
		}
		tRSP, err := rsp.FromPoints(member, int64(ti), 0, RSPBudgetBytes, nil)
		if err != nil {
			return nil, err
		}
		tSkPS, err := skps.FromCluster(member, isCore, params.ThetaR, int64(ti), 0)
		if err != nil {
			return nil, err
		}

		// SGS: the real pipeline with threshold 1 (top-k regardless).
		ms, _, err := match.Run(st.Base, match.Query{Target: summary, Threshold: 1, Limit: cfg.TopK})
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			v, err := oracle.RateMatch(member, m.ID)
			if err != nil {
				return nil, err
			}
			tallies["SGS"].Add(v)
			shapeTally("SGS", shape.String()).Add(v)
		}

		// The alternatives: full scans, top-k by their own metric.
		rate := func(method string, ids []int64) error {
			for _, id := range ids {
				v, err := oracle.RateMatch(member, id)
				if err != nil {
					return err
				}
				tallies[method].Add(v)
				shapeTally(method, shape.String()).Add(v)
			}
			return nil
		}
		if err := rate("CRD", topK(len(st.CRDs), cfg.TopK, func(i int) float64 {
			return crd.Distance(tCRD, st.CRDs[i])
		})); err != nil {
			return nil, err
		}
		if err := rate("RSP", topK(len(st.RSPs), cfg.TopK, func(i int) float64 {
			return rsp.Distance(tRSP, st.RSPs[i])
		})); err != nil {
			return nil, err
		}
		if err := rate("SkPS", topK(len(st.SkPSs), cfg.TopK, func(i int) float64 {
			return skps.Distance(tSkPS, st.SkPSs[i])
		})); err != nil {
			return nil, err
		}
	}

	out := make([]Fig9Result, 0, len(MatchMethods))
	for _, m := range MatchMethods {
		out = append(out, Fig9Result{Method: m, Tally: *tallies[m], ByShape: byShape[m]})
	}
	return out, nil
}

// topK returns the indices (as archive ids) of the k smallest distances.
func topK(n, k int, dist func(int) float64) []int64 {
	type pair struct {
		id int64
		d  float64
	}
	ps := make([]pair, n)
	for i := 0; i < n; i++ {
		ps[i] = pair{int64(i), dist(i)}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].d < ps[b].d })
	if k > n {
		k = n
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].id
	}
	return out
}
