package experiments

import (
	"fmt"
	"time"

	"streamsum/internal/archive"
	"streamsum/internal/crd"
	"streamsum/internal/gen"
	"streamsum/internal/geom"
	"streamsum/internal/match"
	"streamsum/internal/rsp"
	"streamsum/internal/sgs"
	"streamsum/internal/skps"
)

// Figure 8 (§8.2): response time and storage of cluster matching queries
// against pattern bases of 0.1K, 1K and 10K archived clusters, for the
// four summarization formats.
//
// Where the paper archives clusters extracted from the STT stream, this
// harness archives independently generated clusters of varied shape
// families (see gen.Clusters) — the matching workload is identical, and
// the generator guarantees shape diversity at every archive size.

// MatchParams are the density parameters used to summarize the generated
// clusters for the matching experiments (the generator's clusters have
// σ ≈ 1 spreads, so θr = 0.8 is the analogue of the paper's case 2).
var MatchParams = ParamCase{Name: "match", ThetaR: 0.8, ThetaC: 5}

// MatchParamsForDim returns density parameters adjusted for the workload
// dimensionality: pairwise distances grow with added dimensions, so θr
// must grow for clusters to stay connected (the 4-D setting mirrors the
// paper's STT workload dimensionality).
func MatchParamsForDim(dim int) ParamCase {
	if dim >= 4 {
		return ParamCase{Name: "match4d", ThetaR: 1.4, ThetaC: 5}
	}
	if dim == 3 {
		return ParamCase{Name: "match3d", ThetaR: 1.1, ThetaC: 5}
	}
	return MatchParams
}

// Fig8Config parameterizes one archive-size column of Figure 8.
type Fig8Config struct {
	// ArchiveSize is the number of archived clusters (paper: 100, 1K, 10K).
	ArchiveSize int
	// Queries is the number of to-be-matched clusters (paper: 100).
	Queries int
	// ExpensiveQueries caps the number of queries run for the pairwise
	// methods (RSP, SkPS), whose linear-scan matching is orders of
	// magnitude slower; their average is taken over this many queries
	// (default: min(Queries, 10)).
	ExpensiveQueries int
	// Threshold is the matching distance threshold (default 0.2).
	Threshold float64
	Seed      int64
}

// Fig8Result is one (method, archive size) cell.
type Fig8Result struct {
	Method      string
	ArchiveSize int
	// AvgQuery is the average matching-query response time.
	AvgQuery time.Duration
	// QueriesRun is how many queries the average was taken over.
	QueriesRun int
	// StoreBytes is the storage consumed by the archived summaries.
	StoreBytes int
	// Matches is the total number of matches returned.
	Matches int
	// FilterFrac (SGS only) is the fraction of index candidates that
	// required the grid-level match (paper: ~6%).
	FilterFrac float64
	// CompressionRate (SGS only) is 1 − SGS bytes / full-representation
	// bytes (paper: ≈98%).
	CompressionRate float64
	// AvgCells (SGS only) is the mean skeletal grid cells per archived
	// cluster (paper: 68).
	AvgCells float64
}

// MatchStores holds the per-format archives built once per configuration,
// plus the full representations (for storage accounting and the Figure 9
// oracle).
type MatchStores struct {
	Dim     int
	Params  ParamCase
	Base    *archive.Base // SGS + indices
	CRDs    []*crd.Summary
	RSPs    []*rsp.Summary
	SkPSs   []*skps.Summary
	Members [][]geom.Point // full representations by archive id
	Shapes  []gen.ShapeFamily
	// FullBytes is the storage the full representations would need
	// (8 bytes per coordinate), the baseline of the ~98% compression
	// claim.
	FullBytes int
}

// BuildMatchStores generates and archives n 2-D clusters in all four
// formats.
func BuildMatchStores(n int, seed int64) (*MatchStores, error) {
	return BuildMatchStoresDim(n, seed, 2)
}

// BuildMatchStoresDim is BuildMatchStores for an arbitrary dimensionality
// (the paper's matching workload is 4-D STT; see MatchParamsForDim).
func BuildMatchStoresDim(n int, seed int64, dim int) (*MatchStores, error) {
	if dim < 2 {
		dim = 2
	}
	params := MatchParamsForDim(dim)
	clusters := gen.Clusters(gen.ClustersConfig{Seed: seed, Dim: dim}, n)
	base, err := archive.New(archive.Config{Dim: dim})
	if err != nil {
		return nil, err
	}
	st := &MatchStores{Dim: dim, Params: params, Base: base}
	for i, gc := range clusters {
		member, isCore, summary, err := summarizeCluster(gc.Points, params.ThetaR, params.ThetaC, int64(i))
		if err != nil {
			return nil, fmt.Errorf("cluster %d: %w", i, err)
		}
		id, ok, err := base.Put(summary)
		if err != nil || !ok {
			return nil, fmt.Errorf("cluster %d: archive rejected (%v)", i, err)
		}
		if int(id) != len(st.Members) {
			return nil, fmt.Errorf("cluster %d: unexpected archive id %d", i, id)
		}
		c, err := crd.FromPoints(member, id, 0)
		if err != nil {
			return nil, err
		}
		r, err := rsp.FromPoints(member, id, 0, RSPBudgetBytes, nil)
		if err != nil {
			return nil, err
		}
		k, err := skps.FromCluster(member, isCore, params.ThetaR, id, 0)
		if err != nil {
			return nil, err
		}
		st.CRDs = append(st.CRDs, c)
		st.RSPs = append(st.RSPs, r)
		st.SkPSs = append(st.SkPSs, k)
		st.Members = append(st.Members, member)
		st.Shapes = append(st.Shapes, gc.Shape)
		st.FullBytes += len(member) * 8 * dim
	}
	return st, nil
}

// targetSet builds query targets: summaries of fresh clusters from the
// same distribution.
func targetSet(n int, seed int64) ([]*sgs.Summary, []*crd.Summary, []*rsp.Summary, []*skps.Summary, [][]geom.Point, error) {
	clusters := gen.Clusters(gen.ClustersConfig{Seed: seed}, n)
	var ss []*sgs.Summary
	var cs []*crd.Summary
	var rs []*rsp.Summary
	var ks []*skps.Summary
	var full [][]geom.Point
	for i, gc := range clusters {
		member, isCore, summary, err := summarizeCluster(gc.Points, MatchParams.ThetaR, MatchParams.ThetaC, int64(1_000_000+i))
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		c, err := crd.FromPoints(member, int64(i), 0)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		r, err := rsp.FromPoints(member, int64(i), 0, RSPBudgetBytes, nil)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		k, err := skps.FromCluster(member, isCore, MatchParams.ThetaR, int64(i), 0)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		ss = append(ss, summary)
		cs = append(cs, c)
		rs = append(rs, r)
		ks = append(ks, k)
		full = append(full, member)
	}
	return ss, cs, rs, ks, full, nil
}

// RunFig8 executes one archive-size column of Figure 8, returning one
// result per method.
func RunFig8(cfg Fig8Config) ([]Fig8Result, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 100
	}
	if cfg.ExpensiveQueries <= 0 {
		cfg.ExpensiveQueries = cfg.Queries
		if cfg.ExpensiveQueries > 10 {
			cfg.ExpensiveQueries = 10
		}
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.2
	}
	st, err := BuildMatchStores(cfg.ArchiveSize, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ss, cs, rs, ks, _, err := targetSet(cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	var out []Fig8Result

	// SGS: the filter-and-refine pipeline.
	{
		r := Fig8Result{Method: "SGS", ArchiveSize: cfg.ArchiveSize, StoreBytes: st.Base.Bytes(),
			CompressionRate: st.CompressionRate(), AvgCells: st.AvgCellsPerCluster()}
		var cands, refined int
		start := time.Now()
		for _, target := range ss {
			ms, stats, err := match.Run(st.Base, match.Query{Target: target, Threshold: cfg.Threshold})
			if err != nil {
				return nil, err
			}
			r.Matches += len(ms)
			cands += stats.IndexCandidates
			refined += stats.Refined
		}
		r.QueriesRun = len(ss)
		r.AvgQuery = time.Since(start) / time.Duration(len(ss))
		if cands > 0 {
			r.FilterFrac = float64(refined) / float64(cands)
		}
		out = append(out, r)
	}

	// CRD: three subtractions per archived cluster (linear scan — the
	// paper notes its "extremely simple matching mechanism").
	{
		r := Fig8Result{Method: "CRD", ArchiveSize: cfg.ArchiveSize}
		for _, s := range st.CRDs {
			r.StoreBytes += s.Size()
		}
		start := time.Now()
		for _, target := range cs {
			for _, s := range st.CRDs {
				if crd.Distance(target, s) <= cfg.Threshold {
					r.Matches++
				}
			}
		}
		r.QueriesRun = len(cs)
		r.AvgQuery = time.Since(start) / time.Duration(len(cs))
		out = append(out, r)
	}

	// RSP: subset matching per pair.
	{
		r := Fig8Result{Method: "RSP", ArchiveSize: cfg.ArchiveSize}
		for _, s := range st.RSPs {
			r.StoreBytes += s.Size()
		}
		q := rs[:cfg.ExpensiveQueries]
		start := time.Now()
		for _, target := range q {
			for _, s := range st.RSPs {
				if rsp.Distance(target, s) <= cfg.Threshold {
					r.Matches++
				}
			}
		}
		r.QueriesRun = len(q)
		r.AvgQuery = time.Since(start) / time.Duration(len(q))
		out = append(out, r)
	}

	// SkPS: graph edit distance per pair.
	{
		r := Fig8Result{Method: "SkPS", ArchiveSize: cfg.ArchiveSize}
		for _, s := range st.SkPSs {
			r.StoreBytes += s.Size()
		}
		q := ks[:cfg.ExpensiveQueries]
		start := time.Now()
		for _, target := range q {
			for _, s := range st.SkPSs {
				if skps.Distance(target, s) <= cfg.Threshold {
					r.Matches++
				}
			}
		}
		r.QueriesRun = len(q)
		r.AvgQuery = time.Since(start) / time.Duration(len(q))
		out = append(out, r)
	}
	return out, nil
}

// ReArchive copies the store's summaries into a fresh pattern base at the
// given resolution level (used by the multi-resolution benches).
func (st *MatchStores) ReArchive(level, theta int) (*archive.Base, error) {
	base, err := archive.New(archive.Config{Dim: 2, Level: level, Theta: theta})
	if err != nil {
		return nil, err
	}
	var putErr error
	st.Base.All(func(e *archive.Entry) bool {
		if _, _, err := base.Put(e.Summary); err != nil {
			putErr = err
			return false
		}
		return true
	})
	return base, putErr
}

// CompressionRate returns the §8.2 headline metric for a store: 1 − SGS
// bytes / full representation bytes (paper: ≈ 98%).
func (st *MatchStores) CompressionRate() float64 {
	if st.FullBytes == 0 {
		return 0
	}
	return 1 - float64(st.Base.Bytes())/float64(st.FullBytes)
}

// AvgCellsPerCluster returns the §8.2 "average 68 skeletal grid cells per
// cluster" analogue for a store.
func (st *MatchStores) AvgCellsPerCluster() float64 {
	total, n := 0, 0
	st.Base.All(func(e *archive.Entry) bool {
		total += e.Summary.NumCells()
		n++
		return true
	})
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
