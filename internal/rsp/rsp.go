// Package rsp implements Random Sampling summarization (RSP), the second
// baseline of §8: each cluster is summarized by a uniform random sample of
// its members. Per the paper's protocol, the sampling rate is always chosen
// so that the RSP of a cluster consumes the same memory as the SGS of the
// same cluster, making the quality comparison budget-fair.
//
// Matching uses a subset-matching distance (after Yang et al., CIKM 2007
// [15]): the symmetric mean nearest-neighbor distance between the two
// samples, normalized into [0,1] by the combined extent of the samples.
package rsp

import (
	"fmt"
	"math"
	"math/rand"

	"streamsum/internal/geom"
)

// BytesPerPoint is the storage cost of one sampled member (float64 per
// dimension), used to size samples against an SGS byte budget.
func BytesPerPoint(dim int) int { return 8 * dim }

// Summary is the RSP of one cluster.
type Summary struct {
	ID     int64
	Window int64
	// Sample holds the sampled member positions.
	Sample []geom.Point
	// Count is the original cluster size (kept so the sampling rate is
	// recoverable; not counted toward the storage budget, mirroring the
	// paper's treatment of cluster ids).
	Count int
}

// FromPoints samples the cluster's full representation down to at most
// budgetBytes of point storage (at least one point). The rng makes
// sampling reproducible; pass nil for a deterministic prefix-free sample
// seeded by the cluster id.
func FromPoints(pts []geom.Point, id, window int64, budgetBytes int, rng *rand.Rand) (*Summary, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("rsp: empty cluster")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(id*0x9E3779B9 + window))
	}
	dim := len(pts[0])
	n := budgetBytes / BytesPerPoint(dim)
	if n < 1 {
		n = 1
	}
	if n > len(pts) {
		n = len(pts)
	}
	// Reservoir-free sampling: permute indices and keep the first n.
	idx := rng.Perm(len(pts))[:n]
	s := &Summary{ID: id, Window: window, Count: len(pts), Sample: make([]geom.Point, n)}
	for i, j := range idx {
		s.Sample[i] = pts[j].Clone()
	}
	return s, nil
}

// Size returns the storage footprint in bytes.
func (s *Summary) Size() int {
	if len(s.Sample) == 0 {
		return 0
	}
	return len(s.Sample) * BytesPerPoint(len(s.Sample[0]))
}

// MBR returns the bounding box of the sample.
func (s *Summary) MBR() geom.MBR { return geom.MBRFromPoints(s.Sample) }

// Distance is the subset-matching distance between two samples: the
// samples are centroid-aligned (matching, like the other summarization
// formats, is position-insensitive by default), then the symmetric Chamfer
// (mean nearest-neighbor) distance is computed and normalized by the mean
// extent of the two samples so the result lies in [0,1]. Identical samples
// have distance 0; shape/extent mismatches push toward 1.
func Distance(a, b *Summary) float64 {
	if len(a.Sample) == 0 || len(b.Sample) == 0 {
		return 1
	}
	// Center each sample on its own centroid; the comparison is then a
	// pure shape comparison and exactly symmetric.
	center := func(pts []geom.Point) []geom.Point {
		c := geom.Centroid(pts)
		out := make([]geom.Point, len(pts))
		for i, p := range pts {
			out[i] = p.Sub(c)
		}
		return out
	}
	as := center(a.Sample)
	bs := center(b.Sample)
	da := geom.MBRFromPoints(as)
	db := geom.MBRFromPoints(bs)
	scale := (geom.Dist(da.Min, da.Max) + geom.Dist(db.Min, db.Max)) / 2
	if scale == 0 {
		return 0 // both samples degenerate to single coincident points
	}
	d := (meanNN(as, bs) + meanNN(bs, as)) / 2
	v := d / scale
	if v > 1 {
		return 1
	}
	return v
}

// meanNN returns the mean, over points of xs, of the distance to the
// nearest point in ys.
func meanNN(xs, ys []geom.Point) float64 {
	var sum float64
	for _, x := range xs {
		best := math.Inf(1)
		for _, y := range ys {
			if d := geom.DistSq(x, y); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(xs))
}
