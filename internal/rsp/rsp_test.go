package rsp

import (
	"math/rand"
	"testing"

	"streamsum/internal/geom"
)

func cloud(rng *rand.Rand, n int, cx, cy float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.NormFloat64(), cy + rng.NormFloat64()}
	}
	return pts
}

func TestFromPointsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := cloud(rng, 500, 0, 0)
	budget := 1600 // bytes → 100 points at 2 dims
	s, err := FromPoints(pts, 1, 0, budget, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sample) != 100 {
		t.Fatalf("sample size = %d, want 100", len(s.Sample))
	}
	if s.Size() != budget {
		t.Fatalf("Size = %d, want %d", s.Size(), budget)
	}
	if s.Count != 500 {
		t.Fatalf("Count = %d", s.Count)
	}
	// Budget below one point still yields one point.
	s2, _ := FromPoints(pts, 1, 0, 3, rng)
	if len(s2.Sample) != 1 {
		t.Fatalf("minimum sample size violated: %d", len(s2.Sample))
	}
	// Budget above cluster size caps at the cluster.
	s3, _ := FromPoints(pts[:5], 1, 0, 1<<20, rng)
	if len(s3.Sample) != 5 {
		t.Fatalf("oversized budget should keep all points: %d", len(s3.Sample))
	}
	if _, err := FromPoints(nil, 0, 0, 100, rng); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestDeterministicWithoutRng(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := cloud(rng, 200, 0, 0)
	a, _ := FromPoints(pts, 7, 3, 800, nil)
	b, _ := FromPoints(pts, 7, 3, 800, nil)
	if len(a.Sample) != len(b.Sample) {
		t.Fatal("sample sizes differ")
	}
	for i := range a.Sample {
		if !a.Sample[i].Equal(b.Sample[i]) {
			t.Fatal("nil-rng sampling not deterministic")
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, _ := FromPoints(cloud(rng, 300, 0, 0), 0, 0, 800, rng)
	if d := Distance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// Matching is position-insensitive: a same-shape cloud far away must be
	// closer than a differently shaped (elongated) cluster.
	b, _ := FromPoints(cloud(rng, 300, 40, 40), 1, 0, 800, rng)
	var stretched []geom.Point
	for i := 0; i < 300; i++ {
		stretched = append(stretched, geom.Point{rng.NormFloat64() * 12, rng.NormFloat64() * 0.2})
	}
	c, _ := FromPoints(stretched, 2, 0, 800, rng)
	dab, dac := Distance(a, b), Distance(a, c)
	if dab < 0 || dab > 1 || dac < 0 || dac > 1 {
		t.Errorf("distances out of range: %v %v", dab, dac)
	}
	if dab >= dac {
		t.Errorf("same-shape twin (%v) should be closer than stretched cluster (%v)", dab, dac)
	}
	if Distance(a, b) != Distance(b, a) {
		t.Error("distance not symmetric")
	}
}

func TestDistanceDegenerate(t *testing.T) {
	one := &Summary{Sample: []geom.Point{{1, 1}}}
	same := &Summary{Sample: []geom.Point{{1, 1}}}
	if d := Distance(one, same); d != 0 {
		t.Errorf("coincident singleton distance = %v", d)
	}
	empty := &Summary{}
	if d := Distance(one, empty); d != 1 {
		t.Errorf("empty summary distance = %v", d)
	}
}
