package crd

import (
	"math"
	"testing"

	"streamsum/internal/geom"
)

func TestFromPoints(t *testing.T) {
	pts := []geom.Point{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	s, err := FromPoints(pts, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Centroid.Equal(geom.Point{1, 1}) {
		t.Errorf("centroid = %v", s.Centroid)
	}
	if math.Abs(s.Radius-math.Sqrt2) > 1e-12 {
		t.Errorf("radius = %v", s.Radius)
	}
	if s.Count != 4 || s.ID != 1 || s.Window != 2 {
		t.Errorf("metadata wrong: %+v", s)
	}
	if s.Size() <= 0 {
		t.Error("size must be positive")
	}
	if _, err := FromPoints(nil, 0, 0); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestDistanceIdentityAndRange(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 0}, {0, 1}}
	a, _ := FromPoints(pts, 0, 0)
	if d := Distance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	far := []geom.Point{{100, 100}, {101, 100}}
	b, _ := FromPoints(far, 1, 0)
	d := Distance(a, b)
	if d <= 0 || d > 1 {
		t.Errorf("distance out of range: %v", d)
	}
	if Distance(a, b) != Distance(b, a) {
		t.Error("distance not symmetric")
	}
}

func TestDistanceOrdersSimilarity(t *testing.T) {
	base := []geom.Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	near := []geom.Point{{0.1, 0}, {1.1, 0}, {0.1, 1}, {1.1, 1}}
	far := []geom.Point{{50, 50}, {58, 50}, {50, 58}}
	a, _ := FromPoints(base, 0, 0)
	b, _ := FromPoints(near, 1, 0)
	c, _ := FromPoints(far, 2, 0)
	if Distance(a, b) >= Distance(a, c) {
		t.Errorf("near cluster (%v) should be closer than far (%v)", Distance(a, b), Distance(a, c))
	}
}

func TestSinglePointCluster(t *testing.T) {
	s, err := FromPoints([]geom.Point{{3, 4}}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Radius != 0 {
		t.Errorf("radius = %v", s.Radius)
	}
	// Two coincident single-point clusters are identical.
	s2, _ := FromPoints([]geom.Point{{3, 4}}, 1, 0)
	if d := Distance(s, s2); d != 0 {
		t.Errorf("identical singletons distance = %v", d)
	}
	// Disjoint singletons have centroid distance but zero radii → max term.
	s3, _ := FromPoints([]geom.Point{{10, 10}}, 2, 0)
	if d := Distance(s, s3); d < 0.3 {
		t.Errorf("disjoint singletons too close: %v", d)
	}
}

func TestRelDiff(t *testing.T) {
	if relDiff(0, 0) != 0 {
		t.Error("relDiff(0,0)")
	}
	if relDiff(1, 2) != 0.5 {
		t.Error("relDiff(1,2)")
	}
	if relDiff(2, 1) != 0.5 {
		t.Error("relDiff not symmetric")
	}
	if relDiff(0, 5) != 1 {
		t.Error("relDiff(0,5)")
	}
}
