// Package crd implements the traditional "Centroid-Radius-Density"
// cluster summarization (CRD) used as a baseline in §8: the statistical
// description favored by k-means-style methods, which assumes spherical
// clusters and uniform density. It is cheap to build (one scan) and cheap
// to match (three subtractions) but blind to shape, connectivity and
// density distribution — the features SGS exists to preserve.
package crd

import (
	"fmt"
	"math"

	"streamsum/internal/geom"
)

// Summary is the CRD of one cluster.
type Summary struct {
	ID       int64
	Window   int64
	Centroid geom.Point
	// Radius is the maximum distance from the centroid to any member.
	Radius float64
	// Density is the member count divided by the volume of the bounding
	// ball (in the MBR-diagonal metric the paper's alternatives use, any
	// monotone convention works; matching uses relative differences only).
	Density float64
	// Count is the number of members summarized.
	Count int
}

// FromPoints builds the CRD of a cluster's full representation.
func FromPoints(pts []geom.Point, id, window int64) (*Summary, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("crd: empty cluster")
	}
	c := geom.Centroid(pts)
	var r float64
	for _, p := range pts {
		if d := geom.Dist(c, p); d > r {
			r = d
		}
	}
	dim := float64(len(pts[0]))
	vol := math.Pow(math.Max(r, 1e-9), dim)
	return &Summary{
		ID:       id,
		Window:   window,
		Centroid: c,
		Radius:   r,
		Density:  float64(len(pts)) / vol,
		Count:    len(pts),
	}, nil
}

// Size returns the storage footprint in bytes (centroid + radius + density
// + count), used for the Fig. 8 memory comparison.
func (s *Summary) Size() int { return 8*len(s.Centroid) + 8 + 8 + 8 }

// Distance implements the CRD matching metric of §8.2: a subtraction
// function giving equal weight to the three captured features (centroid,
// range, density), each normalized to [0,1].
func Distance(a, b *Summary) float64 {
	// Centroid term: distance relative to the combined radii.
	denom := a.Radius + b.Radius
	var dc float64
	if d := geom.Dist(a.Centroid, b.Centroid); d > 0 {
		if denom <= 0 {
			dc = 1
		} else {
			dc = math.Min(1, d/denom)
		}
	}
	return (dc + relDiff(a.Radius, b.Radius) + relDiff(a.Density, b.Density)) / 3
}

// relDiff is |x-y| / max(x,y) clamped to [0,1]; 0 when both are zero.
func relDiff(x, y float64) float64 {
	m := math.Max(math.Abs(x), math.Abs(y))
	if m == 0 {
		return 0
	}
	d := math.Abs(x-y) / m
	if d > 1 {
		return 1
	}
	return d
}
