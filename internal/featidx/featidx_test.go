package featidx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestInsertSearchRemove(t *testing.T) {
	ix := New()
	ix.Insert(1, [4]float64{10, 5, 2.5, 1.2})
	ix.Insert(2, [4]float64{100, 50, 25, 3})
	ix.Insert(3, [4]float64{12, 6, 2.4, 1.1})
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	var got []int64
	ix.Search([4]float64{8, 4, 2, 1}, [4]float64{15, 8, 3, 1.5}, func(e Entry) bool {
		got = append(got, e.ID)
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("search = %v", got)
	}
	if !ix.Remove(1, [4]float64{10, 5, 2.5, 1.2}) {
		t.Fatal("remove failed")
	}
	if ix.Remove(1, [4]float64{10, 5, 2.5, 1.2}) {
		t.Fatal("double remove succeeded")
	}
	if ix.Len() != 2 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
}

func TestUnboundedDimension(t *testing.T) {
	ix := New()
	for i := 0; i < 100; i++ {
		ix.Insert(int64(i), [4]float64{float64(i), float64(i % 10), 1, 1})
	}
	inf := math.Inf(1)
	count := 0
	ix.Search([4]float64{0, 3, 0, 0}, [4]float64{inf, 3, inf, inf}, func(e Entry) bool {
		count++
		if e.V[1] != 3 {
			t.Fatalf("entry outside range: %v", e.V)
		}
		return true
	})
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ix := New()
	type rec struct {
		id int64
		v  [4]float64
	}
	var all []rec
	for i := 0; i < 2000; i++ {
		v := [4]float64{
			math.Exp(rng.Float64() * 8), // volume: 1..3000
			math.Exp(rng.Float64() * 6), // status count
			rng.Float64() * 1000,        // density
			rng.Float64() * 8,           // connectivity
		}
		ix.Insert(int64(i), v)
		all = append(all, rec{int64(i), v})
	}
	for trial := 0; trial < 60; trial++ {
		f := all[rng.Intn(len(all))].v
		b := 0.1 + rng.Float64()
		var lo, hi [4]float64
		for d := 0; d < 4; d++ {
			lo[d] = f[d] / (1 + b)
			hi[d] = f[d] * (1 + b)
		}
		var got []int64
		ix.Search(lo, hi, func(e Entry) bool {
			got = append(got, e.ID)
			return true
		})
		var want []int64
		for _, r := range all {
			in := true
			for d := 0; d < 4; d++ {
				if r.v[d] < lo[d] || r.v[d] > hi[d] {
					in = false
					break
				}
			}
			if in {
				want = append(want, r.id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: results differ", trial)
			}
		}
	}
}

func TestEarlyStop(t *testing.T) {
	ix := New()
	for i := 0; i < 50; i++ {
		ix.Insert(int64(i), [4]float64{5, 5, 5, 5})
	}
	visits := 0
	ix.Search([4]float64{0, 0, 0, 0}, [4]float64{10, 10, 10, 10}, func(Entry) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("visits = %d", visits)
	}
}

func TestZeroAndNegativeValues(t *testing.T) {
	ix := New()
	ix.Insert(1, [4]float64{0, 0, 0, 0})
	ix.Insert(2, [4]float64{-1, 0, 0, 0}) // clamped to 0
	count := 0
	ix.Search([4]float64{0, 0, 0, 0}, [4]float64{0.5, 0.5, 0.5, 0.5}, func(Entry) bool {
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	if !ix.Remove(2, [4]float64{-1, 0, 0, 0}) {
		t.Fatal("remove with clamped vector failed")
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := int16(-1)
	for _, v := range []float64{0, 0.5, 1, 2, 4, 10, 100, 1e6, 1e30} {
		b := bucket(v)
		if b < prev {
			t.Fatalf("bucket not monotone at %g", v)
		}
		prev = b
	}
	if bucket(1e300) <= 0 {
		t.Fatal("huge value bucket overflowed")
	}
}
