// Package featidx implements the non-locational feature index of the
// Pattern Base (§7.1): a four-dimensional grid index over the cluster
// features captured by SGS — volume (number of skeletal grid cells),
// status count (number of core cells), average density, and average
// connectivity.
//
// Because the matcher's feature distance is *relative* (|x-f|/min(x,f),
// see §7.2's candidate-search example), the natural bucketing is
// logarithmic: a relative range [f/(1+b), f·(1+b)] spans a bounded number
// of log-scale buckets regardless of f's magnitude. Each dimension is
// bucketed at a fixed number of buckets per octave.
//
// Read-only traversal contract: an Index is not internally synchronized,
// but Search never mutates the grid, so any number of goroutines may
// search one index concurrently provided no Insert or Remove runs during
// the searches. internal/archive relies on exactly this: it publishes
// indices only inside frozen, immutable generations and mutates them
// never — writers build a replacement index instead.
package featidx

import (
	"math"
)

// bucketsPerOctave controls grid granularity: higher = finer buckets,
// more buckets probed per query but fewer false candidates per bucket.
const bucketsPerOctave = 4

// Entry is an indexed feature vector.
type Entry struct {
	ID int64
	V  [4]float64
}

type key [4]int16

// Index is the 4-D feature grid. The zero value is unusable; call New.
type Index struct {
	cells map[key][]Entry
	size  int
}

// New returns an empty feature index.
func New() *Index {
	return &Index{cells: make(map[key][]Entry)}
}

// Len returns the number of indexed entries.
func (ix *Index) Len() int { return ix.size }

// bucket maps a non-negative feature value to its log-scale bucket.
// Values in [0,1) share bucket 0 (features are counts and averages; sub-1
// fractional values are only meaningful for density, where the relative
// metric keeps them adjacent anyway).
func bucket(v float64) int16 {
	if v < 1 {
		return 0
	}
	b := math.Log2(v) * bucketsPerOctave
	if b > 32000 {
		return 32000
	}
	return int16(b) + 1
}

func keyOf(v [4]float64) key {
	return key{bucket(v[0]), bucket(v[1]), bucket(v[2]), bucket(v[3])}
}

// Insert adds a feature vector under the given id. Negative feature values
// are clamped to zero (features are non-negative by construction).
func (ix *Index) Insert(id int64, v [4]float64) {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	k := keyOf(v)
	ix.cells[k] = append(ix.cells[k], Entry{ID: id, V: v})
	ix.size++
}

// Remove deletes the entry with the given id and vector; it returns true
// if an entry was removed.
func (ix *Index) Remove(id int64, v [4]float64) bool {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	k := keyOf(v)
	cell := ix.cells[k]
	for i := range cell {
		if cell[i].ID == id {
			cell[i] = cell[len(cell)-1]
			cell = cell[:len(cell)-1]
			if len(cell) == 0 {
				delete(ix.cells, k)
			} else {
				ix.cells[k] = cell
			}
			ix.size--
			return true
		}
	}
	return false
}

// Search visits every entry whose vector lies inside the inclusive
// hyper-rectangle [lo, hi] (component-wise). Iteration stops early if
// visit returns false. Infinite hi bounds are supported (unweighted
// dimensions search the whole axis).
func (ix *Index) Search(lo, hi [4]float64, visit func(Entry) bool) {
	var bLo, bHi [4]int16
	probes := 1
	for d := 0; d < 4; d++ {
		l := lo[d]
		if l < 0 {
			l = 0
		}
		bLo[d] = bucket(l)
		if math.IsInf(hi[d], 1) {
			bHi[d] = -1 // sentinel: unbounded
		} else {
			bHi[d] = bucket(hi[d])
			probes *= int(bHi[d]-bLo[d]) + 1
		}
	}
	// If any dimension is unbounded or the probe box is larger than the
	// population, scanning all cells is cheaper than enumerating buckets.
	if bHi[0] < 0 || bHi[1] < 0 || bHi[2] < 0 || bHi[3] < 0 || probes > len(ix.cells) {
		for k, cell := range ix.cells {
			if !inKeyRange(k, bLo, bHi) {
				continue
			}
			if !visitCell(cell, lo, hi, visit) {
				return
			}
		}
		return
	}
	var k key
	for k[0] = bLo[0]; k[0] <= bHi[0]; k[0]++ {
		for k[1] = bLo[1]; k[1] <= bHi[1]; k[1]++ {
			for k[2] = bLo[2]; k[2] <= bHi[2]; k[2]++ {
				for k[3] = bLo[3]; k[3] <= bHi[3]; k[3]++ {
					if cell, ok := ix.cells[k]; ok {
						if !visitCell(cell, lo, hi, visit) {
							return
						}
					}
				}
			}
		}
	}
}

func inKeyRange(k key, lo, hi [4]int16) bool {
	for d := 0; d < 4; d++ {
		if k[d] < lo[d] {
			return false
		}
		if hi[d] >= 0 && k[d] > hi[d] {
			return false
		}
	}
	return true
}

func visitCell(cell []Entry, lo, hi [4]float64, visit func(Entry) bool) bool {
	for _, e := range cell {
		in := true
		for d := 0; d < 4; d++ {
			if e.V[d] < lo[d] || e.V[d] > hi[d] {
				in = false
				break
			}
		}
		if in && !visit(e) {
			return false
		}
	}
	return true
}
