package sub

import "streamsum/internal/obs"

// Process-wide standing-query metrics (obs.Default). Instance-scoped
// state — live subscription counts, queue depths — is exported at scrape
// time by the daemon through gauge funcs over Registry.Stats and
// Registry.QueueDepth, so a registry replaced mid-process never leaves a
// stale series behind.
var (
	metricWindows = obs.NewCounter("sgs_sub_windows_total",
		"Windows evaluated against the standing-query registry (Offer calls).")
	metricEntries = obs.NewCounter("sgs_sub_entries_total",
		"Newly archived entries offered across all windows.")
	metricEvents = obs.NewCounter("sgs_sub_events_total",
		"Events enqueued for delivery (match + evolution).")
	metricEvalSeconds = obs.NewHistogram("sgs_sub_eval_seconds",
		"Per-window standing-query evaluation wall time (probe + refine + enqueue).")
	metricDeliverySeconds = obs.NewHistogram("sgs_sub_delivery_seconds",
		"Per-event delivery latency: enqueue to hand-off on the subscription channel.")
)
