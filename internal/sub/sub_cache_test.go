package sub

import (
	"reflect"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/segstore"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

// runOfferDiskResident archives the fixture's windows into store-backed
// bases whose memory tier is capped tightly enough that most entries are
// disk-resident (nil Summary — Offer's refine loads them through the
// base's decoded-summary cache), then replays the windows as standing-
// query offers. Event streams must be identical across cache budgets
// (off / roomy / too-small-to-retain-anything) and worker counts.
func runOfferDiskResident(t *testing.T) {
	t.Helper()
	const memCap = 2 << 10
	targets, windows := fixture(t, 12, 5, 4)
	var flat []*sgs.Summary
	for _, win := range windows {
		for _, e := range win {
			flat = append(flat, e.Summary)
		}
	}

	var reference [][]Event
	for _, cache := range []int{0, 8 << 10, 1 << 10} {
		for _, workers := range []int{1, 2, 8} {
			// The cache's budget is carved out of MaxMemBytes; raising the
			// bound by it keeps the tier split identical across configs.
			// Under SGS_SUMCACHE=off no carve-out happens, so the bound
			// (and the configured budget, which New validates against it)
			// stays at the bare cap.
			carve := 0
			if sumcache.Enabled() {
				carve = cache
			}
			base, err := archive.New(archive.Config{
				Dim: 2, StorePath: t.TempDir(),
				MaxMemBytes: memCap + carve, SummaryCacheBytes: carve,
			})
			if err != nil {
				t.Fatal(err)
			}
			ids, archived, err := base.PutBatch(flat)
			if err != nil {
				t.Fatal(err)
			}
			for i, ok := range archived {
				if !ok || ids[i] != int64(i) {
					t.Fatalf("put %d: ok=%v id=%d", i, ok, ids[i])
				}
			}
			if err := base.DrainDemotions(); err != nil {
				t.Fatal(err)
			}
			ts := base.TierStats()
			if ts.SegEntries == 0 {
				t.Fatalf("fixture never demoted: %+v", ts)
			}

			// Rebuild the windows from the snapshot: disk-resident entries
			// surface summary-free, exactly what a facade offer looks like
			// for demoted history.
			byID := map[int64]*archive.Entry{}
			diskResident := 0
			base.Snapshot().All(func(e *archive.Entry) bool {
				byID[e.ID] = e
				if e.Summary == nil {
					diskResident++
				}
				return true
			})
			if diskResident == 0 {
				t.Fatal("every offered entry is memory-resident; test is vacuous")
			}

			reg, err := NewRegistry(Config{Dim: 2, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var gots []func() []Event
			var ss []*Subscription
			for i, tgt := range targets {
				s, err := reg.Subscribe(Options{Target: tgt, Threshold: 0.1 + 0.05*float64(i%6)})
				if err != nil {
					t.Fatal(err)
				}
				ss = append(ss, s)
				gots = append(gots, collect(s))
			}
			id := int64(0)
			for _, win := range windows {
				offer := make([]*archive.Entry, 0, len(win))
				for range win {
					offer = append(offer, byID[id])
					id++
				}
				if err := reg.Offer(offer); err != nil {
					t.Fatal(err)
				}
			}
			streams := make([][]Event, len(ss))
			for i, s := range ss {
				s.Sync()
				s.Cancel()
				streams[i] = stripPayload(gots[i]())
			}

			if cache > 0 && sumcache.Enabled() {
				if ts := base.TierStats(); ts.CacheMisses == 0 {
					t.Fatalf("cache %d: refine never consulted the cache: %+v", cache, ts)
				}
			}
			if err := base.Close(); err != nil {
				t.Fatal(err)
			}

			if reference == nil {
				reference = streams
				continue
			}
			for i := range streams {
				if !reflect.DeepEqual(streams[i], reference[i]) {
					t.Fatalf("cache=%d workers=%d sub %d: events diverge:\n got %v\nwant %v",
						cache, workers, i, streams[i], reference[i])
				}
			}
		}
	}
	total := 0
	for _, evs := range reference {
		total += len(evs)
	}
	if total == 0 {
		t.Fatal("fixture produced no match events at all; test is vacuous")
	}
}

// TestOfferDiskResidentCacheConfigs: standing-query delivery over
// disk-resident entries is byte-identical with the decoded-summary cache
// off, on, and too small to retain anything, at every worker count.
func TestOfferDiskResidentCacheConfigs(t *testing.T) {
	runOfferDiskResident(t)
}

// TestOfferDiskResidentPread repeats the check with memory mapping
// disabled, so cache misses decode off the pooled pread path.
func TestOfferDiskResidentPread(t *testing.T) {
	prev := segstore.SetMmapEnabled(false)
	defer segstore.SetMmapEnabled(prev)
	runOfferDiskResident(t)
}
