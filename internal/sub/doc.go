// Package sub is the standing-query subsystem: a registry of cluster
// matching queries (the paper's Figure 3 templates with FROM Stream in
// place of FROM History) evaluated incrementally against each window's
// newly archived summaries, instead of one-shot scans over the whole
// pattern base.
//
// # Inverted matching
//
// A one-shot matching query probes the archive's indices with one target.
// A standing query inverts that relationship: the registry indexes the
// *subscriptions* — grouped into classes by their metric weights, each
// class holding a feature-grid index (internal/featidx) over the
// subscription targets' feature vectors, or an R-tree (internal/rtree)
// over their MBRs for position-sensitive metrics — and each newly
// archived cluster is probed against those indices once. The probe range
// is the inversion of match.FeatureRanges: the relative feature distance
// is symmetric, so a subscription within threshold t of a new cluster
// with features v must have its target features inside the range computed
// from v at the class's maximum registered threshold. Most subscriptions
// are therefore pruned per cluster without a single distance computation;
// survivors pass the exact cluster-feature gate at their own threshold
// and only then pay the grid-cell-level match (match.RefineDistance).
//
// # Evaluation pipeline
//
// Offer evaluates one window in three phases, mirroring internal/match:
// a parallel probe phase (one task per new-entry × class pair, fanned
// across the registry's workers), a parallel refine phase (one
// grid-cell-level distance per surviving pair), and a sequential ordered
// delivery phase. Candidate pairs are sorted by (subscription id, entry
// id) between the phases, so the events each subscription receives — and
// their order — are byte-identical at every worker count.
//
// # Concurrency and ordering contract
//
//   - Subscribe, Unsubscribe, Len, WantsTrack and Stats are safe from any
//     goroutine at any time.
//   - Offer and OfferTrack are serialized by the registry (an internal
//     mutex): windows are evaluated in call order, and the sequence
//     number each event carries is the evaluation index of its window.
//   - A subscription's events are delivered to its channel in evaluation
//     order: windows in Offer order; within a window, match events by
//     ascending entry id, then (for Track subscriptions) the window's
//     evolution events in tracker order. Delivery is asynchronous through
//     an unbounded per-subscription queue, so a slow consumer never
//     stalls Offer — memory grows with the consumer's lag instead.
//   - Unsubscribe (or Subscription.Cancel) closes the event channel.
//     Events already handed to the channel stay readable (a closed
//     buffered channel drains before reporting closed); events still in
//     the internal queue are dropped — call Sync before Cancel to
//     guarantee every delivered event reaches the channel first. A
//     subscription canceled while a window is being evaluated receives
//     either all or none of that window's events for itself, never a
//     subset.
//
// The registry never rescans history: a subscription registered after a
// window was archived does not see that window's clusters. Pair a
// Subscribe with a one-shot match.Run over the same base when "past and
// future" semantics are needed.
package sub
