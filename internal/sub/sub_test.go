package sub

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/match"
	"streamsum/internal/sgs"
	"streamsum/internal/track"
)

const thetaR = 0.5

func blob(rng *rand.Rand, n int, cx, cy, spread float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
	}
	return pts
}

func translate(pts []geom.Point, dx, dy float64) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{p[0] + dx, p[1] + dy}
	}
	return out
}

// summarize builds the SGS of the largest cluster in a point cloud.
func summarize(t *testing.T, pts []geom.Point, id int64) *sgs.Summary {
	t.Helper()
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("fixture produced no cluster")
	}
	best := 0
	for i, c := range res.Clusters {
		if len(c.Members) > len(res.Clusters[best].Members) {
			best = i
		}
	}
	var cpts []geom.Point
	var isCore []bool
	for _, m := range res.Clusters[best].Members {
		cpts = append(cpts, pts[m])
		isCore = append(isCore, res.IsCore[m])
	}
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sgs.FromCluster(geo, cpts, isCore, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func entryOf(s *sgs.Summary) *archive.Entry {
	return &archive.Entry{
		ID: s.ID, Summary: s, MBR: s.MBR(), Features: s.Features(),
		Bytes: sgs.EncodedSize(s),
	}
}

// fixture builds nsubs subscription targets and nwin windows of entries
// from four families of clouds. Window entries are family clouds
// translated by integer cell multiples (a cell-aligned twin matches its
// family's targets at distance ~0) with occasional extra points mixed in,
// so some pairs match closely, some marginally, and cross-family pairs
// don't.
func fixture(t *testing.T, nsubs, nwin, perWin int) (targets []*sgs.Summary, windows [][]*archive.Entry) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	side := geo.Side()
	const fams = 4
	clouds := make([][]geom.Point, fams)
	for f := range clouds {
		clouds[f] = blob(rng, 80+20*f, float64(f)*40, float64(f)*25, 0.8)
	}
	for i := 0; i < nsubs; i++ {
		targets = append(targets, summarize(t, clouds[i%fams], int64(1000+i)))
	}
	id := int64(0)
	for w := 0; w < nwin; w++ {
		var win []*archive.Entry
		for c := 0; c < perWin; c++ {
			f := (w + c) % fams
			dx := float64((w*perWin+c)%5) * 3 * side
			dy := float64(c%3) * 2 * side
			pts := translate(clouds[f], dx, dy)
			if (w+c)%3 == 0 {
				// Perturbed twin: extra mass nudges the features and cells.
				pts = append(pts, blob(rng, 8, float64(f)*40+dx, float64(f)*25+dy, 0.5)...)
			}
			s := summarize(t, pts, id)
			id++
			win = append(win, entryOf(s))
		}
		windows = append(windows, win)
	}
	return targets, windows
}

// bruteMatches computes the expected (seq, entryID, distance) stream for
// one subscription the way a per-entry one-shot matcher would.
func bruteMatches(target *sgs.Summary, w match.Weights, thresh float64, windows [][]*archive.Entry) []Event {
	tf := target.Features().Vector()
	tmbr := target.MBR()
	var out []Event
	for seq, win := range windows {
		for _, e := range win {
			if w.PositionSensitive && !tmbr.Intersects(e.MBR) {
				continue
			}
			if match.FeatureDistance(tf, e.Features.Vector(), w) > thresh {
				continue
			}
			d := match.RefineDistance(target, e.Summary, w, match.DefaultAlignBudget)
			if d <= thresh {
				out = append(out, Event{Kind: MatchEvent, Seq: uint64(seq), EntryID: e.ID, Distance: d})
			}
		}
	}
	return out
}

// collect drains a subscription's channel into a slice on a goroutine;
// call the returned func after Sync+Cancel to get the events.
func collect(s *Subscription) func() []Event {
	var mu sync.Mutex
	var got []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range s.Events() {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		}
	}()
	return func() []Event {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return got
	}
}

// stripPayload reduces events to the comparable core (entries carry
// pointers that differ between runs).
func stripPayload(evs []Event) []Event {
	if len(evs) == 0 {
		return nil
	}
	out := make([]Event, len(evs))
	for i, ev := range evs {
		out[i] = Event{Kind: ev.Kind, Seq: ev.Seq, EntryID: ev.EntryID, Distance: ev.Distance}
		if ev.Track != nil {
			out[i].EntryID = int64(ev.Track.Kind)
			out[i].Track = &track.Event{Kind: ev.Track.Kind, TrackID: ev.Track.TrackID}
		}
	}
	return out
}

func TestOfferMatchesBruteForce(t *testing.T) {
	targets, windows := fixture(t, 12, 6, 4)
	reg, err := NewRegistry(Config{Dim: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ws := match.EqualWeights()
	pos := match.Weights{PositionSensitive: true, Volume: 0.25, Status: 0.25, Density: 0.25, Connectivity: 0.25}
	type regd struct {
		s      *Subscription
		target *sgs.Summary
		w      match.Weights
		thresh float64
		got    func() []Event
	}
	var subs []regd
	for i, tgt := range targets {
		w := ws
		if i%3 == 0 {
			w = pos
		}
		thresh := 0.15 + 0.1*float64(i%5)
		s, err := reg.Subscribe(Options{Target: tgt, Threshold: thresh, Weights: &w})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, regd{s, tgt, w, thresh, collect(s)})
	}
	for _, win := range windows {
		if err := reg.Offer(win); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range subs {
		r.s.Sync()
		r.s.Cancel()
	}
	total := 0
	for _, r := range subs {
		want := bruteMatches(r.target, r.w, r.thresh, windows)
		got := stripPayload(r.got())
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		// bruteMatches leaves SubID zero; align before comparing.
		for i := range got {
			got[i].SubID = 0
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sub %d: got %v, want %v", r.s.ID(), got, want)
		}
		total += len(got)
	}
	if total == 0 {
		t.Fatal("fixture produced no match events at all; test is vacuous")
	}
	st := reg.Stats()
	if st.Windows != uint64(len(windows)) || st.Events != uint64(total) {
		t.Fatalf("stats = %+v, want %d windows / %d events", st, len(windows), total)
	}
}

func TestOfferDeterministicAcrossWorkers(t *testing.T) {
	targets, windows := fixture(t, 16, 5, 4)
	var reference [][]Event
	for _, workers := range []int{1, 2, 8} {
		reg, err := NewRegistry(Config{Dim: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var gots []func() []Event
		var ss []*Subscription
		for i, tgt := range targets {
			s, err := reg.Subscribe(Options{Target: tgt, Threshold: 0.1 + 0.05*float64(i%6)})
			if err != nil {
				t.Fatal(err)
			}
			ss = append(ss, s)
			gots = append(gots, collect(s))
		}
		for _, win := range windows {
			if err := reg.Offer(win); err != nil {
				t.Fatal(err)
			}
		}
		streams := make([][]Event, len(ss))
		for i, s := range ss {
			s.Sync()
			s.Cancel()
			streams[i] = stripPayload(gots[i]())
		}
		if reference == nil {
			reference = streams
			continue
		}
		for i := range streams {
			if !reflect.DeepEqual(streams[i], reference[i]) {
				t.Fatalf("workers=%d sub %d: events diverge from workers=1:\n got %v\nwant %v",
					workers, i, streams[i], reference[i])
			}
		}
	}
}

func TestUnsubscribeAndClassMaintenance(t *testing.T) {
	targets, windows := fixture(t, 4, 2, 3)
	reg, err := NewRegistry(Config{Dim: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two subs in the same class; the wider threshold sets the class bound.
	wide, err := reg.Subscribe(Options{Target: targets[0], Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := reg.Subscribe(Options{Target: targets[1], Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	gotNarrow := collect(narrow)
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
	// Dropping the wide sub must shrink the class bound, not break the
	// narrow one's matching.
	if !reg.Unsubscribe(wide.ID()) {
		t.Fatal("Unsubscribe returned false for a live id")
	}
	if reg.Unsubscribe(wide.ID()) {
		t.Fatal("double Unsubscribe returned true")
	}
	if _, ok := <-wide.Events(); ok {
		t.Fatal("canceled subscription's channel still open")
	}
	for _, win := range windows {
		if err := reg.Offer(win); err != nil {
			t.Fatal(err)
		}
	}
	narrow.Sync()
	narrow.Cancel()
	want := bruteMatches(targets[1], match.EqualWeights(), 0.2, windows)
	got := stripPayload(gotNarrow())
	for i := range got {
		got[i].SubID = 0
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after unsubscribing class max: got %v, want %v", got, want)
	}
	if reg.Len() != 0 {
		t.Fatalf("Len = %d after cancels, want 0", reg.Len())
	}
}

func TestTrackOnlySubscription(t *testing.T) {
	reg, err := NewRegistry(Config{Dim: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Subscribe(Options{}); err == nil {
		t.Fatal("Subscribe with neither target nor Track succeeded")
	}
	if reg.WantsTrack() {
		t.Fatal("WantsTrack true on empty registry")
	}
	s, err := reg.Subscribe(Options{Track: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.WantsTrack() {
		t.Fatal("WantsTrack false with a track subscription")
	}
	got := collect(s)
	if err := reg.Offer(nil); err != nil { // window 0: no clusters
		t.Fatal(err)
	}
	evs := []track.Event{{Kind: track.Appeared, TrackID: 3}, {Kind: track.Merged, TrackID: 1}}
	reg.OfferTrack(evs)
	s.Sync()
	s.Cancel()
	stream := got()
	if len(stream) != 2 {
		t.Fatalf("got %d events, want 2", len(stream))
	}
	for i, ev := range stream {
		if ev.Kind != EvolutionEvent || ev.Seq != 0 || ev.Track.Kind != evs[i].Kind || ev.Track.TrackID != evs[i].TrackID {
			t.Fatalf("event %d = %+v, want evolution %v", i, ev, evs[i])
		}
	}
}

// TestChurnRace hammers subscribe/unsubscribe against a concurrent Offer
// loop; the race detector is the assertion.
func TestChurnRace(t *testing.T) {
	targets, windows := fixture(t, 8, 4, 3)
	reg, err := NewRegistry(Config{Dim: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s, err := reg.Subscribe(Options{Target: targets[(g+i)%len(targets)], Threshold: 0.3, Track: i%2 == 0})
				if err != nil {
					t.Error(err)
					return
				}
				go func() { // consumer that may or may not keep up
					for range s.Events() {
					}
				}()
				if i%3 != 0 {
					s.Cancel()
				}
			}
		}(g)
	}
	for round := 0; round < 20; round++ {
		for _, win := range windows {
			if err := reg.Offer(win); err != nil {
				t.Fatal(err)
			}
			reg.OfferTrack([]track.Event{{Kind: track.Continued, TrackID: int64(round)}})
		}
	}
	close(stop)
	wg.Wait()
	reg.Close()
	if reg.Len() != 0 {
		t.Fatalf("Len = %d after Close, want 0", reg.Len())
	}
}

func TestSubscribeValidation(t *testing.T) {
	targets, _ := fixture(t, 1, 0, 0)
	reg, err := NewRegistry(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{Target: targets[0], Threshold: -0.1},
		{Target: targets[0], Threshold: 1.5},
		{Target: &sgs.Summary{Dim: 2}, Threshold: 0.2},
		{Target: targets[0], Threshold: 0.2, Weights: &match.Weights{Volume: 2}},
	}
	for i, o := range cases {
		if _, err := reg.Subscribe(o); err == nil {
			t.Fatalf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	if _, err := NewRegistry(Config{}); err == nil {
		t.Fatal("NewRegistry without dimension succeeded")
	}
	// Dimension mismatch.
	if _, err := reg.Subscribe(Options{Target: &sgs.Summary{Dim: 3, Cells: targets[0].Cells, Side: 1}, Threshold: 0.2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if s := fmt.Sprint(MatchEvent, " ", EvolutionEvent, " ", EventKind(9)); s != "match evolution unknown" {
		t.Fatalf("EventKind strings = %q", s)
	}
}
