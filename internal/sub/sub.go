package sub

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"streamsum/internal/archive"
	"streamsum/internal/featidx"
	"streamsum/internal/match"
	"streamsum/internal/par"
	"streamsum/internal/rtree"
	"streamsum/internal/sgs"
	"streamsum/internal/trace"
	"streamsum/internal/track"
)

// EventKind classifies a subscription event.
type EventKind int

const (
	// MatchEvent: a newly archived cluster matched the subscription's
	// target within its threshold.
	MatchEvent EventKind = iota
	// EvolutionEvent: a cluster evolution transition (merged, split, ...)
	// from the engine's tracker, delivered to Track subscriptions.
	EvolutionEvent
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case MatchEvent:
		return "match"
	case EvolutionEvent:
		return "evolution"
	default:
		return "unknown"
	}
}

// Event is one notification delivered on a subscription's channel.
type Event struct {
	Kind EventKind
	// SubID is the receiving subscription's id.
	SubID int64
	// Seq is the evaluation sequence number of the window the event
	// belongs to (ascending; gaps mean windows with no events for this
	// subscription).
	Seq uint64

	// Match-event fields (Kind == MatchEvent).
	// EntryID is the matched cluster's archive id.
	EntryID int64
	// Distance is the grid-cell-level matching distance.
	Distance float64
	// Entry is the matched archive entry with its summary materialized.
	Entry *archive.Entry

	// Track is the evolution transition (Kind == EvolutionEvent).
	Track *track.Event
}

// Options configures one subscription.
type Options struct {
	// Target is the pattern template to watch for. Required for match
	// subscriptions; may be nil for a Track-only subscription.
	Target *sgs.Summary
	// Threshold is the maximum matching distance (0..1).
	Threshold float64
	// Weights configures the metric; nil means match.EqualWeights.
	Weights *match.Weights
	// AlignBudget bounds the alignment search per refine (default
	// match.DefaultAlignBudget).
	AlignBudget int
	// Track additionally delivers the engine's cluster evolution events
	// (merged/split/appeared/vanished alerts) on the same channel.
	Track bool
	// Buffer is the event channel's capacity (default 16). The channel
	// is fed from an unbounded queue, so the buffer only affects how far
	// the pump runs ahead of the consumer, never whether Offer blocks.
	Buffer int
}

// Subscription is one registered standing query. All fields fixed at
// Subscribe time are immutable; the delivery queue is internally
// synchronized.
type Subscription struct {
	id      int64
	reg     *Registry
	target  *sgs.Summary
	feat    [4]float64
	weights match.Weights
	thresh  float64
	budget  int
	trackEv bool
	matchEv bool // has a target: participates in inverted matching

	ch   chan Event
	done chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []Event
	qtimes    []time.Time // per-queued-event enqueue times (delivery latency)
	closed    bool
	enqueued  uint64 // events accepted into the queue
	delivered uint64 // events handed to the channel
}

// ID returns the registry-assigned subscription id.
func (s *Subscription) ID() int64 { return s.id }

// Events returns the ordered notification channel. It is closed after
// Cancel/Unsubscribe (pending undelivered events are dropped).
func (s *Subscription) Events() <-chan Event { return s.ch }

// Cancel unregisters the subscription; equivalent to Registry.Unsubscribe.
func (s *Subscription) Cancel() { s.reg.Unsubscribe(s.id) }

// enqueue appends events to the delivery queue (all-or-nothing per
// window: callers pass one window's events in a single call). Enqueue
// times ride in a parallel slice — never inside Event, whose values are
// compared byte-for-byte by determinism tests — so the pump can report
// each event's queue-to-channel delivery latency.
func (s *Subscription) enqueue(evs []Event) {
	if len(evs) == 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, evs...)
		for range evs {
			s.qtimes = append(s.qtimes, now)
		}
		s.enqueued += uint64(len(evs))
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Sync blocks until every event enqueued so far has been handed to the
// channel (buffered events still count as handed; Sync does not wait for
// the consumer to read them) or the subscription is canceled. Graceful
// drains use it: Sync then Cancel guarantees the consumer can read every
// delivered event before observing the channel close.
func (s *Subscription) Sync() {
	s.mu.Lock()
	for s.delivered < s.enqueued && !s.closed {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// close marks the subscription canceled and wakes the pump, which closes
// the channel.
func (s *Subscription) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// pump moves events from the unbounded queue to the channel, preserving
// order. It exits (closing the channel) once the subscription is
// canceled — without waiting for a consumer that may be gone.
func (s *Subscription) pump() {
	defer close(s.ch)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		batch, times := s.queue, s.qtimes
		s.queue, s.qtimes = nil, nil
		s.mu.Unlock()
		for i, ev := range batch {
			select {
			case s.ch <- ev:
				metricDeliverySeconds.Observe(time.Since(times[i]))
				s.mu.Lock()
				s.delivered++
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-s.done:
				return
			}
		}
	}
}

// class groups subscriptions sharing one metric weight vector. Within a
// class the inverted index holds every member's target: the feature grid
// for position-insensitive metrics, the R-tree for position-sensitive
// ones. maxThresh bounds the probe range — any member within its own
// threshold of a cluster necessarily falls inside the range computed at
// the class maximum.
type class struct {
	w         match.Weights
	feat      *featidx.Index
	loc       *rtree.Tree
	subs      map[int64]*Subscription
	maxThresh float64
}

// Stats is a point-in-time snapshot of registry activity for monitoring
// endpoints and tests.
type Stats struct {
	// Subscriptions currently registered (match + track-only).
	Subscriptions int
	// TrackSubscriptions currently registered with Track enabled.
	TrackSubscriptions int
	// Windows evaluated (Offer calls).
	Windows uint64
	// Entries offered across all windows.
	Entries uint64
	// Candidates that survived the index probe + feature gate (pairs).
	Candidates uint64
	// Refined pairs that paid the grid-cell-level match (== Candidates;
	// kept separate so future early-exit phases stay observable).
	Refined uint64
	// Events delivered (match + evolution).
	Events uint64
	// LastEval is the duration of the most recent Offer.
	LastEval time.Duration
	// TotalEval is the cumulative Offer duration.
	TotalEval time.Duration
}

// Registry is the standing-query registry. See the package comment for
// the concurrency and ordering contract.
type Registry struct {
	dim     int
	workers int
	slow    time.Duration
	logger  *slog.Logger

	offerMu sync.Mutex // serializes Offer/OfferTrack; windows evaluate in call order
	seq     uint64     // windows evaluated so far (last seq = seq-1)

	mu        sync.RWMutex // guards the subscription set and inverted indices
	nextID    int64
	subs      map[int64]*Subscription
	classes   map[match.Weights]*class
	trackSubs int

	statsMu sync.Mutex
	stats   Stats
}

// Config configures a registry.
type Config struct {
	// Dim is the data-space dimensionality (required; position-sensitive
	// subscriptions index their target MBRs in a Dim-dimensional R-tree).
	Dim int
	// Workers bounds the parallel probe and refine fan-out per Offer:
	// <= 0 means one worker per available CPU, 1 forces sequential
	// evaluation. Events are byte-identical at every setting.
	Workers int
	// SlowThreshold, when positive, logs any window evaluation (Offer)
	// whose wall time meets it, with a probe/refine/deliver phase
	// breakdown. Zero disables slow-window logging.
	SlowThreshold time.Duration
	// Logger receives the slow-evaluation diagnostics. Nil discards
	// them — the library never writes to the process-global logger; the
	// daemon injects its structured logger instead.
	Logger *slog.Logger
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("sub: dimension required")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Registry{
		dim:     cfg.Dim,
		workers: cfg.Workers,
		slow:    cfg.SlowThreshold,
		logger:  logger,
		subs:    make(map[int64]*Subscription),
		classes: make(map[match.Weights]*class),
	}, nil
}

// Subscribe registers a standing query and returns its subscription. The
// target (when non-nil) is validated like a match.Query target; Track
// without a target registers an evolution-events-only subscription.
func (r *Registry) Subscribe(o Options) (*Subscription, error) {
	if o.Target == nil && !o.Track {
		return nil, fmt.Errorf("sub: subscription needs a target or Track")
	}
	w := match.EqualWeights()
	if o.Weights != nil {
		w = *o.Weights
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if o.Target != nil {
		if o.Target.NumCells() == 0 {
			return nil, fmt.Errorf("sub: empty target")
		}
		if o.Threshold < 0 || o.Threshold > 1 {
			return nil, fmt.Errorf("sub: threshold %g out of [0,1]", o.Threshold)
		}
		if o.Target.Dim != r.dim {
			return nil, fmt.Errorf("sub: target dimension %d != registry dimension %d", o.Target.Dim, r.dim)
		}
	}
	budget := o.AlignBudget
	if budget <= 0 {
		budget = match.DefaultAlignBudget
	}
	buffer := o.Buffer
	if buffer <= 0 {
		buffer = 16
	}
	s := &Subscription{
		reg:     r,
		weights: w,
		thresh:  o.Threshold,
		budget:  budget,
		trackEv: o.Track,
		matchEv: o.Target != nil,
		ch:      make(chan Event, buffer),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if o.Target != nil {
		// The target is cloned so later caller mutations cannot skew the
		// index (the archiver makes the same promise for Put).
		s.target = o.Target.Clone()
		s.feat = s.target.Features().Vector()
	}

	r.mu.Lock()
	s.id = r.nextID
	r.nextID++
	r.subs[s.id] = s
	if s.trackEv {
		r.trackSubs++
	}
	if s.matchEv {
		c, ok := r.classes[w]
		if !ok {
			c = &class{w: w, subs: make(map[int64]*Subscription)}
			if w.PositionSensitive {
				c.loc = rtree.New(r.dim)
			} else {
				c.feat = featidx.New()
			}
			r.classes[w] = c
		}
		if c.loc != nil {
			if err := c.loc.Insert(s.id, s.target.MBR()); err != nil {
				delete(r.subs, s.id)
				if s.trackEv {
					r.trackSubs--
				}
				r.mu.Unlock()
				return nil, err
			}
		} else {
			c.feat.Insert(s.id, s.feat)
		}
		c.subs[s.id] = s
		if s.thresh > c.maxThresh {
			c.maxThresh = s.thresh
		}
	}
	r.mu.Unlock()

	go s.pump()
	return s, nil
}

// Unsubscribe removes the subscription with the given id, closing its
// event channel. It reports whether the id was registered.
func (r *Registry) Unsubscribe(id int64) bool {
	r.mu.Lock()
	s, ok := r.subs[id]
	if !ok {
		r.mu.Unlock()
		return false
	}
	delete(r.subs, id)
	if s.trackEv {
		r.trackSubs--
	}
	if s.matchEv {
		c := r.classes[s.weights]
		delete(c.subs, id)
		if c.loc != nil {
			c.loc.Delete(id, s.target.MBR())
		} else {
			c.feat.Remove(id, s.feat)
		}
		if len(c.subs) == 0 {
			delete(r.classes, s.weights)
		} else if s.thresh >= c.maxThresh {
			// The departing member may have set the class bound; rescan.
			c.maxThresh = 0
			for _, m := range c.subs {
				if m.thresh > c.maxThresh {
					c.maxThresh = m.thresh
				}
			}
		}
	}
	r.mu.Unlock()
	s.close()
	return true
}

// Len returns the number of registered subscriptions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.subs)
}

// WantsTrack reports whether any registered subscription asked for
// evolution events — the engine gates its tracker on this.
func (r *Registry) WantsTrack() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.trackSubs > 0
}

// Stats returns a snapshot of registry activity.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	subs, trackSubs := len(r.subs), r.trackSubs
	r.mu.RUnlock()
	r.statsMu.Lock()
	st := r.stats
	r.statsMu.Unlock()
	st.Subscriptions = subs
	st.TrackSubscriptions = trackSubs
	return st
}

// pair is one (subscription, new entry) combination that survived the
// inverted index probe and the exact cluster-feature gate.
type pair struct {
	s  *Subscription
	ei int
}

// Offer evaluates one window's newly archived entries against every
// registered subscription and delivers the resulting match events. It
// probes only the given entries — never the archive history — so its
// cost scales with the window's cluster count times the surviving
// candidate pairs, not with the archive size. Entries must be resolvable
// to summaries (LoadSummary); memory-tier entries always are.
//
// Offer calls are serialized; each call consumes one sequence number.
//
// Offer records its own flight-recorder trace (category SubEval); when
// the evaluation is already part of a larger window trace (the archive
// sink's), use OfferTraced instead.
func (r *Registry) Offer(entries []*archive.Entry) error {
	tr := trace.Default.Start(trace.SubEval, "sub.window")
	err := r.OfferTraced(entries, tr)
	if err != nil {
		tr.Root().SetStr("error", err.Error())
	}
	tr.Finish()
	return err
}

// OfferTraced is Offer recording probe/refine/deliver spans into tr
// (nil disables recording; the caller owns the trace's lifetime).
func (r *Registry) OfferTraced(entries []*archive.Entry, tr *trace.Trace) error {
	r.offerMu.Lock()
	defer r.offerMu.Unlock()
	start := time.Now()
	seq := r.seq
	r.seq++

	probeSpan := tr.Start("probe")
	var pairs []pair
	if len(entries) > 0 {
		r.mu.RLock()
		if len(r.classes) > 0 {
			pairs = r.probeLocked(entries)
		}
		r.mu.RUnlock()
	}
	probeDur := time.Since(start)
	probeSpan.SetInt("entries", int64(len(entries)))
	probeSpan.SetInt("candidates", int64(len(pairs)))
	probeSpan.End()

	// Refine: one grid-cell-level match per surviving pair, fanned across
	// the workers; each task writes only its own slot. Pairs were sorted
	// by (subscription id, entry index) after the probe, so slot order —
	// and therefore delivery order — is independent of worker count.
	// Disk-resident entries load through the archive's decoded-summary
	// cache (sumcache), so an entry matched by several subscriptions —
	// or by overlapping windows — still decodes once per residency.
	refineSpan := tr.Start("refine")
	dists := make([]float64, len(pairs))
	sums := make([]*sgs.Summary, len(pairs))
	errs := make([]error, len(pairs))
	par.ForEach(r.workers, len(pairs), func(i int) {
		p := pairs[i]
		sum, err := entries[p.ei].LoadSummary()
		if err != nil {
			errs[i] = err
			return
		}
		sums[i] = sum
		dists[i] = match.RefineDistance(p.s.target, sum, p.s.weights, p.budgetOf())
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	refineDur := time.Since(start) - probeDur
	refineSpan.SetInt("pairs", int64(len(pairs)))
	refineSpan.End()

	// Ordered delivery: pairs are grouped by subscription (the sort key's
	// major component), so one enqueue hands each subscription its whole
	// window atomically.
	deliverSpan := tr.Start("deliver")
	var delivered uint64
	for i := 0; i < len(pairs); {
		j := i
		var evs []Event
		for ; j < len(pairs) && pairs[j].s == pairs[i].s; j++ {
			if dists[j] > pairs[j].s.thresh {
				continue
			}
			e := entries[pairs[j].ei]
			evs = append(evs, Event{
				Kind:     MatchEvent,
				SubID:    pairs[j].s.id,
				Seq:      seq,
				EntryID:  e.ID,
				Distance: dists[j],
				// The refine phase read the summary anyway; events carry
				// it materialized even for disk-resident entries.
				Entry: e.WithSummary(sums[j]),
			})
		}
		pairs[i].s.enqueue(evs)
		delivered += uint64(len(evs))
		i = j
	}
	deliverSpan.SetInt("events", int64(delivered))
	deliverSpan.End()
	tr.Root().SetInt("seq", int64(seq))

	elapsed := time.Since(start)
	r.statsMu.Lock()
	r.stats.Windows++
	r.stats.Entries += uint64(len(entries))
	r.stats.Candidates += uint64(len(pairs))
	r.stats.Refined += uint64(len(pairs))
	r.stats.Events += delivered
	r.stats.LastEval = elapsed
	r.stats.TotalEval += elapsed
	r.statsMu.Unlock()
	metricWindows.Inc()
	metricEntries.Add(uint64(len(entries)))
	metricEvents.Add(delivered)
	metricEvalSeconds.Observe(elapsed)
	if r.slow > 0 && elapsed >= r.slow {
		r.logger.Warn("slow window eval",
			"seq", seq, "took", elapsed, "threshold", r.slow,
			"probe", probeDur, "refine", refineDur,
			"deliver", elapsed-probeDur-refineDur,
			"entries", len(entries), "candidates", len(pairs),
			"events", delivered, "trace", tr.ID().String())
	}
	return nil
}

// QueueDepth returns the number of events enqueued but not yet handed to
// a subscription channel, summed across all subscriptions — the standing
// backlog a monitoring gauge wants.
func (r *Registry) QueueDepth() int {
	r.mu.RLock()
	subs := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	r.mu.RUnlock()
	depth := 0
	for _, s := range subs {
		s.mu.Lock()
		depth += len(s.queue)
		s.mu.Unlock()
	}
	return depth
}

// budgetOf returns the pair's alignment budget (on the subscription).
func (p pair) budgetOf() int { return p.s.budget }

// probeLocked runs the inverted filter phase under the registry read
// lock: one task per (entry, class), each probing the class's index for
// subscription candidates and applying the exact cluster-feature gate at
// each candidate's own threshold. The surviving pairs are returned
// sorted by (subscription id, entry index) — a deterministic order
// whatever the probe timing or index iteration order was.
func (r *Registry) probeLocked(entries []*archive.Entry) []pair {
	classes := make([]*class, 0, len(r.classes))
	for _, c := range r.classes {
		classes = append(classes, c)
	}
	tasks := len(entries) * len(classes)
	perTask := make([][]pair, tasks)
	par.ForEach(r.workers, tasks, func(k int) {
		ei, ci := k/len(classes), k%len(classes)
		e, c := entries[ei], classes[ci]
		ev := e.Features.Vector()
		var out []pair
		if c.loc != nil {
			// Position-sensitive: non-overlapping MBRs put the location
			// term at its 1.0 maximum, so the overlap probe is exact for
			// any threshold < 1 (the same bound match.Run relies on).
			c.loc.SearchIntersect(e.MBR, func(it rtree.Item) bool {
				s := c.subs[it.ID]
				if match.FeatureDistance(s.feat, ev, c.w) <= s.thresh {
					out = append(out, pair{s, ei})
				}
				return true
			})
		} else {
			// The relative feature distance is symmetric, so the range of
			// target vectors within the class bound of this entry is the
			// same inversion the one-shot filter uses for candidates.
			lo, hi := match.FeatureRanges(ev, c.w, c.maxThresh)
			c.feat.Search(lo, hi, func(fe featidx.Entry) bool {
				s := c.subs[fe.ID]
				if match.FeatureDistance(s.feat, ev, c.w) <= s.thresh {
					out = append(out, pair{s, ei})
				}
				return true
			})
		}
		perTask[k] = out
	})
	var pairs []pair
	for _, part := range perTask {
		pairs = append(pairs, part...)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].s.id != pairs[j].s.id {
			return pairs[i].s.id < pairs[j].s.id
		}
		return pairs[i].ei < pairs[j].ei
	})
	return pairs
}

// OfferTrack delivers one window's evolution events to every Track
// subscription, tagged with the most recently offered window's sequence
// number. Call it after the window's Offer (the facade does); events
// arrive on each channel after that window's match events.
func (r *Registry) OfferTrack(events []track.Event) {
	if len(events) == 0 {
		return
	}
	r.offerMu.Lock()
	defer r.offerMu.Unlock()
	seq := r.seq // Offer already advanced past this window
	if seq > 0 {
		seq--
	}

	r.mu.RLock()
	targets := make([]*Subscription, 0, r.trackSubs)
	for _, s := range r.subs {
		if s.trackEv {
			targets = append(targets, s)
		}
	}
	r.mu.RUnlock()
	if len(targets) == 0 {
		return
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	var delivered uint64
	for _, s := range targets {
		evs := make([]Event, 0, len(events))
		for i := range events {
			evs = append(evs, Event{
				Kind:  EvolutionEvent,
				SubID: s.id,
				Seq:   seq,
				Track: &events[i],
			})
		}
		s.enqueue(evs)
		delivered += uint64(len(evs))
	}
	r.statsMu.Lock()
	r.stats.Events += delivered
	r.statsMu.Unlock()
	metricEvents.Add(delivered)
}

// Close cancels every subscription (closing their channels). The
// registry stays usable; Close is the bulk form of Unsubscribe for
// engine shutdown.
func (r *Registry) Close() {
	r.mu.Lock()
	subs := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	r.mu.Unlock()
	for _, s := range subs {
		r.Unsubscribe(s.id)
	}
}
