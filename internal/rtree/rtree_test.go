package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"streamsum/internal/geom"
)

func box(x1, y1, x2, y2 float64) geom.MBR {
	return geom.MBR{Min: geom.Point{x1, y1}, Max: geom.Point{x2, y2}}
}

func TestInsertErrors(t *testing.T) {
	tr := New(2)
	if err := tr.Insert(1, geom.MBR{}); err == nil {
		t.Error("empty MBR accepted")
	}
	if err := tr.Insert(1, geom.MBR{Min: geom.Point{0}, Max: geom.Point{1}}); err == nil {
		t.Error("wrong dimension accepted")
	}
}

func TestSearchSmall(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		f := float64(i) * 10
		if err := tr.Insert(int64(i), box(f, f, f+5, f+5)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []int64
	tr.SearchIntersect(box(3, 3, 12, 12), func(it Item) bool {
		got = append(got, it.ID)
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("search = %v, want [0 1]", got)
	}
	// Empty query region.
	hits := 0
	tr.SearchIntersect(box(100, 100, 101, 101), func(Item) bool { hits++; return true })
	if hits != 0 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(2)
	for i := 0; i < 50; i++ {
		_ = tr.Insert(int64(i), box(0, 0, 1, 1))
	}
	visits := 0
	tr.SearchIntersect(box(0, 0, 1, 1), func(Item) bool {
		visits++
		return visits < 7
	})
	if visits != 7 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	tr := New(3)
	type rec struct {
		id  int64
		box geom.MBR
	}
	var all []rec
	for i := 0; i < 1000; i++ {
		lo := geom.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		hi := lo.Clone()
		for d := range hi {
			hi[d] += rng.Float64() * 10
		}
		b := geom.MBR{Min: lo, Max: hi}
		if err := tr.Insert(int64(i), b); err != nil {
			t.Fatal(err)
		}
		all = append(all, rec{int64(i), b})
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		lo := geom.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		hi := lo.Clone()
		for d := range hi {
			hi[d] += rng.Float64() * 25
		}
		q := geom.MBR{Min: lo, Max: hi}
		var got []int64
		tr.SearchIntersect(q, func(it Item) bool {
			got = append(got, it.ID)
			return true
		})
		var want []int64
		for _, r := range all {
			if r.box.Intersects(q) {
				want = append(want, r.id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d hits, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: results differ", trial)
			}
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(2)
	var boxes []geom.MBR
	for i := 0; i < 300; i++ {
		lo := geom.Point{rng.Float64() * 50, rng.Float64() * 50}
		hi := geom.Point{lo[0] + 1, lo[1] + 1}
		b := geom.MBR{Min: lo, Max: hi}
		boxes = append(boxes, b)
		_ = tr.Insert(int64(i), b)
	}
	// Delete half.
	for i := 0; i < 150; i++ {
		if !tr.Delete(int64(i), boxes[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(0, boxes[0]) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Remaining items all still findable.
	for i := 150; i < 300; i++ {
		found := false
		tr.SearchIntersect(boxes[i], func(it Item) bool {
			if it.ID == int64(i) {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("item %d lost after deletions", i)
		}
	}
	// Deleted items are gone.
	for i := 0; i < 150; i++ {
		tr.SearchIntersect(boxes[i], func(it Item) bool {
			if it.ID == int64(i) {
				t.Fatalf("item %d still present", i)
			}
			return true
		})
	}
}

func TestDuplicateBoxes(t *testing.T) {
	tr := New(2)
	b := box(0, 0, 1, 1)
	for i := 0; i < 100; i++ {
		_ = tr.Insert(int64(i), b)
	}
	hits := 0
	tr.SearchIntersect(b, func(Item) bool { hits++; return true })
	if hits != 100 {
		t.Fatalf("hits = %d, want 100", hits)
	}
}
