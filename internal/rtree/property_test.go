package rtree

import (
	"math/rand"
	"testing"

	"streamsum/internal/geom"
)

// TestRandomizedOperations interleaves inserts, deletes and searches,
// cross-checking the tree against a naive shadow map after every batch —
// the archive's index must stay consistent through any mutation sequence.
func TestRandomizedOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	tr := New(2)
	shadow := map[int64]geom.MBR{}
	nextID := int64(0)

	randBox := func() geom.MBR {
		lo := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		return geom.MBR{Min: lo, Max: geom.Point{lo[0] + rng.Float64()*10, lo[1] + rng.Float64()*10}}
	}

	check := func() {
		t.Helper()
		if tr.Len() != len(shadow) {
			t.Fatalf("Len %d != shadow %d", tr.Len(), len(shadow))
		}
		// Three random region queries against the shadow.
		for q := 0; q < 3; q++ {
			box := randBox()
			got := map[int64]bool{}
			tr.SearchIntersect(box, func(it Item) bool {
				got[it.ID] = true
				return true
			})
			want := 0
			for id, b := range shadow {
				if b.Intersects(box) {
					want++
					if !got[id] {
						t.Fatalf("item %d missing from search", id)
					}
				}
			}
			if len(got) != want {
				t.Fatalf("search returned %d, want %d", len(got), want)
			}
		}
	}

	for round := 0; round < 60; round++ {
		// Insert a batch.
		for i := 0; i < 20; i++ {
			b := randBox()
			if err := tr.Insert(nextID, b); err != nil {
				t.Fatal(err)
			}
			shadow[nextID] = b
			nextID++
		}
		// Delete a random subset.
		for id, b := range shadow {
			if rng.Float64() < 0.25 {
				if !tr.Delete(id, b) {
					t.Fatalf("delete %d failed", id)
				}
				delete(shadow, id)
			}
		}
		check()
	}
	// Drain completely.
	for id, b := range shadow {
		if !tr.Delete(id, b) {
			t.Fatalf("final delete %d failed", id)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after drain", tr.Len())
	}
	hits := 0
	tr.SearchIntersect(geom.MBR{Min: geom.Point{-1e9, -1e9}, Max: geom.Point{1e9, 1e9}},
		func(Item) bool { hits++; return true })
	if hits != 0 {
		t.Fatalf("drained tree still returns %d items", hits)
	}
}
