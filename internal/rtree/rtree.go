// Package rtree implements a classic Guttman R-tree with quadratic split,
// the locational feature index of the Pattern Base (§7.1): archived
// clusters are indexed by the minimum bounding rectangles of their SGS so
// that position-sensitive matching queries can retrieve overlap candidates
// without scanning the archive.
//
// Read-only traversal contract: a Tree is not internally synchronized,
// but SearchIntersect never mutates any node, so any number of
// goroutines may search one tree concurrently provided no Insert or
// Delete runs during the searches. internal/archive relies on exactly
// this: it publishes trees only inside frozen, immutable generations and
// mutates them never — writers build a replacement tree instead.
package rtree

import (
	"fmt"

	"streamsum/internal/geom"
)

// Default node capacity; m = M/2 entries minimum per non-root node.
const (
	defaultMax = 16
)

// Item is an indexed entry: an id with its bounding rectangle.
type Item struct {
	ID  int64
	Box geom.MBR
}

type node struct {
	leaf     bool
	box      geom.MBR
	items    []Item  // leaf payload
	children []*node // internal children
}

// Tree is an R-tree over int64 ids. The zero value is not usable; call New.
type Tree struct {
	dim  int
	max  int
	min  int
	root *node
	size int
}

// New returns an empty R-tree for the given dimensionality.
func New(dim int) *Tree {
	return &Tree{
		dim:  dim,
		max:  defaultMax,
		min:  defaultMax / 2,
		root: &node{leaf: true},
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Insert adds an item. Inserting an empty box is an error.
func (t *Tree) Insert(id int64, box geom.MBR) error {
	if box.IsEmpty() {
		return fmt.Errorf("rtree: cannot insert empty MBR")
	}
	if box.Dim() != t.dim {
		return fmt.Errorf("rtree: MBR dimension %d != tree dimension %d", box.Dim(), t.dim)
	}
	it := Item{ID: id, Box: box.Clone()}
	leaf := t.chooseLeaf(t.root, it.Box)
	leaf.items = append(leaf.items, it)
	leaf.box.Extend(it.Box)
	t.size++
	t.splitUpward(leaf)
	return nil
}

// parentOf finds the parent of target (nil for root). The tree is shallow
// (fan-out 16), so the walk is cheap and avoids parent pointers.
func (t *Tree) parentOf(cur, target *node) *node {
	for _, c := range cur.children {
		if c == target {
			return cur
		}
		if !c.leaf {
			if p := t.parentOf(c, target); p != nil {
				return p
			}
		}
	}
	return nil
}

// splitUpward splits the node if overfull and propagates upward.
func (t *Tree) splitUpward(n *node) {
	for n != nil && t.overfull(n) {
		parent := t.parentOf(t.root, n)
		a, b := t.split(n)
		if parent == nil {
			// Grew a new root.
			t.root = &node{children: []*node{a, b}}
			t.root.box = a.box.Union(b.box)
			return
		}
		// Replace n with a, add b.
		for i, c := range parent.children {
			if c == n {
				parent.children[i] = a
				break
			}
		}
		parent.children = append(parent.children, b)
		recomputeBox(parent)
		n = parent
	}
}

func (t *Tree) overfull(n *node) bool {
	if n.leaf {
		return len(n.items) > t.max
	}
	return len(n.children) > t.max
}

func (t *Tree) chooseLeaf(n *node, box geom.MBR) *node {
	for !n.leaf {
		var best *node
		bestEnl, bestVol := 0.0, 0.0
		for _, c := range n.children {
			enl := c.box.Enlargement(box)
			vol := c.box.Volume()
			if best == nil || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
				best, bestEnl, bestVol = c, enl, vol
			}
		}
		n.box.Extend(box)
		n = best
	}
	return n
}

// split performs Guttman's quadratic split on an overfull node.
func (t *Tree) split(n *node) (*node, *node) {
	boxes := n.entryBoxes()
	s1, s2 := quadraticSeeds(boxes)
	g1, g2 := []int{s1}, []int{s2}
	b1, b2 := boxes[s1].Clone(), boxes[s2].Clone()
	remaining := make([]int, 0, len(boxes))
	for i := range boxes {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// If one group must take all remaining to reach the minimum, do so.
		if len(g1)+len(remaining) <= t.min {
			g1 = append(g1, remaining...)
			for _, i := range remaining {
				b1.Extend(boxes[i])
			}
			break
		}
		if len(g2)+len(remaining) <= t.min {
			g2 = append(g2, remaining...)
			for _, i := range remaining {
				b2.Extend(boxes[i])
			}
			break
		}
		// Pick the entry with the greatest preference for one group.
		bestIdx, bestDiff, into1 := -1, -1.0, true
		for k, i := range remaining {
			d1 := b1.Enlargement(boxes[i])
			d2 := b2.Enlargement(boxes[i])
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx, into1 = diff, k, d1 < d2
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if into1 {
			g1 = append(g1, i)
			b1.Extend(boxes[i])
		} else {
			g2 = append(g2, i)
			b2.Extend(boxes[i])
		}
	}
	a := &node{leaf: n.leaf, box: b1}
	b := &node{leaf: n.leaf, box: b2}
	if n.leaf {
		for _, i := range g1 {
			a.items = append(a.items, n.items[i])
		}
		for _, i := range g2 {
			b.items = append(b.items, n.items[i])
		}
	} else {
		for _, i := range g1 {
			a.children = append(a.children, n.children[i])
		}
		for _, i := range g2 {
			b.children = append(b.children, n.children[i])
		}
	}
	return a, b
}

func (n *node) entryBoxes() []geom.MBR {
	if n.leaf {
		out := make([]geom.MBR, len(n.items))
		for i, it := range n.items {
			out[i] = it.Box
		}
		return out
	}
	out := make([]geom.MBR, len(n.children))
	for i, c := range n.children {
		out[i] = c.box
	}
	return out
}

// quadraticSeeds picks the pair wasting the most volume together.
func quadraticSeeds(boxes []geom.MBR) (int, int) {
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			d := boxes[i].Union(boxes[j]).Volume() - boxes[i].Volume() - boxes[j].Volume()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	return s1, s2
}

func recomputeBox(n *node) {
	if n.leaf {
		m := geom.MBR{}
		for _, it := range n.items {
			m.Extend(it.Box)
		}
		n.box = m
		return
	}
	m := geom.MBR{}
	for _, c := range n.children {
		m.Extend(c.box)
	}
	n.box = m
}

// SearchIntersect visits every item whose box intersects query. Iteration
// stops early if visit returns false.
func (t *Tree) SearchIntersect(query geom.MBR, visit func(Item) bool) {
	t.search(t.root, query, visit)
}

func (t *Tree) search(n *node, q geom.MBR, visit func(Item) bool) bool {
	if !n.box.Intersects(q) && !(n == t.root) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(q) {
				if !visit(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if c.box.Intersects(q) {
			if !t.search(c, q, visit) {
				return false
			}
		}
	}
	return true
}

// Delete removes one item with the given id whose box equals box. It
// returns true if an item was removed. Underfull nodes are merged lazily:
// entries of a drained leaf stay searchable; classic condensation is not
// needed for the archive's append-mostly workload.
func (t *Tree) Delete(id int64, box geom.MBR) bool {
	return t.delete(t.root, id, box)
}

func (t *Tree) delete(n *node, id int64, box geom.MBR) bool {
	if !n.box.Intersects(box) && n != t.root {
		return false
	}
	if n.leaf {
		for i, it := range n.items {
			if it.ID == id && it.Box.Min.Equal(box.Min) && it.Box.Max.Equal(box.Max) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				recomputeBox(n)
				t.size--
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if t.delete(c, id, box) {
			recomputeBox(n)
			return true
		}
	}
	return false
}
