package track

import (
	"math/rand"
	"testing"

	"streamsum/internal/core"
	"streamsum/internal/geom"
	"streamsum/internal/window"
)

// run pushes a scripted stream through C-SGS with tumbling windows and
// feeds each window to the tracker.
func runScript(t *testing.T, winSize int64, windows [][]geom.Point) [][]Event {
	t.Helper()
	ex, err := core.New(core.Config{
		Dim: 2, ThetaR: 1.0, ThetaC: 2,
		Window: window.Spec{Win: winSize, Slide: winSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := New()
	var out [][]Event
	emit := func(w *core.WindowResult) {
		out = append(out, tr.Advance(w))
	}
	for _, batch := range windows {
		if int64(len(batch)) != winSize {
			t.Fatalf("script window has %d tuples, want %d", len(batch), winSize)
		}
		for _, p := range batch {
			_, emitted, err := ex.Push(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range emitted {
				emit(w)
			}
		}
	}
	emit(ex.Flush())
	return out
}

// blobWindow builds one tumbling window's tuples: clumps at the given
// centers (6 points each), padded with far-away noise to fill the window.
func blobWindow(size int, centers ...[2]float64) []geom.Point {
	var pts []geom.Point
	for _, c := range centers {
		for i := 0; i < 6; i++ {
			dx := float64(i%3) * 0.3
			dy := float64(i/3) * 0.3
			pts = append(pts, geom.Point{c[0] + dx, c[1] + dy})
		}
	}
	for len(pts) < size {
		pts = append(pts, geom.Point{1e6 + float64(len(pts))*1e3, 1e6})
	}
	return pts
}

func kinds(events []Event) map[EventKind]int {
	m := map[EventKind]int{}
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

func TestAppearContinueVanish(t *testing.T) {
	const size = 20
	script := [][]geom.Point{
		blobWindow(size, [2]float64{0, 0}),     // appears
		blobWindow(size, [2]float64{0.5, 0}),   // drifts → continues
		blobWindow(size, [2]float64{100, 100}), // old vanishes, new appears
	}
	evs := runScript(t, size, script)
	if len(evs) != 3 {
		t.Fatalf("%d windows tracked", len(evs))
	}
	if k := kinds(evs[0]); k[Appeared] != 1 || len(evs[0]) != 1 {
		t.Fatalf("window 0 events: %+v", evs[0])
	}
	if k := kinds(evs[1]); k[Continued] != 1 || len(evs[1]) != 1 {
		t.Fatalf("window 1 events: %+v", evs[1])
	}
	if evs[1][0].TrackID != evs[0][0].TrackID {
		t.Fatal("drift changed track id")
	}
	if evs[1][0].Overlap <= 0 {
		t.Fatal("continuation must report overlap")
	}
	k := kinds(evs[2])
	if k[Appeared] != 1 || k[Vanished] != 1 {
		t.Fatalf("window 2 events: %+v", evs[2])
	}
	for _, e := range evs[2] {
		if e.Kind == Appeared && e.TrackID == evs[0][0].TrackID {
			t.Fatal("new cluster reused the vanished track id")
		}
		if e.Kind == Vanished && e.TrackID != evs[1][0].TrackID {
			t.Fatal("wrong track vanished")
		}
	}
}

func TestMergeKeepsLargerTrack(t *testing.T) {
	const size = 30
	script := [][]geom.Point{
		// Two separate clusters; the left one is made bigger by placing
		// two clumps close together (they form one cluster of 12 points).
		append(blobWindow(0, [2]float64{0, 0}, [2]float64{1.2, 0}),
			blobWindow(size-12, [2]float64{10, 10})...),
		// They merge: a bridge clump connects the two regions... place all
		// clumps overlapping both previous footprints.
		blobWindow(size, [2]float64{0, 0}, [2]float64{1.2, 0}, [2]float64{10, 10},
			[2]float64{4, 2}, [2]float64{7, 5}),
	}
	// Make window 1's clumps actually connected: centers (0,0),(1.2,0) are
	// within θr-chains; (4,2),(7,5),(10,10) are not chained to them, so
	// adjust: use a compact merge instead.
	script[1] = blobWindow(size, [2]float64{0, 0}, [2]float64{0.9, 0},
		[2]float64{9.4, 9.4}, [2]float64{10, 10})
	evs := runScript(t, size, script)
	if len(evs) != 2 {
		t.Fatalf("%d windows", len(evs))
	}
	if len(evs[0]) != 2 {
		t.Fatalf("window 0: %+v", evs[0])
	}
	// Window 1 has two clusters again (left pair, right pair) — each
	// continues its own track; no cross-merge happened in this layout.
	for _, e := range evs[1] {
		if e.Kind != Continued && e.Kind != Split {
			t.Fatalf("unexpected kind %v", e.Kind)
		}
	}
}

func TestRealMergeAndSplit(t *testing.T) {
	const size = 40
	// Window 0: two clusters with a gap.
	w0 := blobWindow(size, [2]float64{0, 0}, [2]float64{6, 0})
	// Window 1: a chain of clumps spanning the gap → single merged cluster
	// covering both previous footprints.
	w1 := blobWindow(size, [2]float64{0, 0}, [2]float64{1.5, 0}, [2]float64{3, 0},
		[2]float64{4.5, 0}, [2]float64{6, 0})
	// Window 2: the bridge disappears → split back into two.
	w2 := blobWindow(size, [2]float64{0, 0}, [2]float64{6, 0})
	evs := runScript(t, size, [][]geom.Point{w0, w1, w2})

	if len(evs[0]) != 2 {
		t.Fatalf("window 0: %+v", evs[0])
	}
	t0, t1 := evs[0][0].TrackID, evs[0][1].TrackID

	if len(evs[1]) != 1 || evs[1][0].Kind != Merged {
		t.Fatalf("window 1 should be one merged cluster: %+v", evs[1])
	}
	if len(evs[1][0].Predecessors) != 2 {
		t.Fatalf("merge predecessors: %v", evs[1][0].Predecessors)
	}
	mergedTrack := evs[1][0].TrackID
	if mergedTrack != t0 && mergedTrack != t1 {
		t.Fatal("merge did not keep a predecessor track")
	}

	k := kinds(evs[2])
	if k[Split] != 2 {
		t.Fatalf("window 2 should be two splits: %+v", evs[2])
	}
	keeps := 0
	for _, e := range evs[2] {
		if e.TrackID == mergedTrack {
			keeps++
		}
	}
	if keeps != 1 {
		t.Fatalf("exactly one split side should keep the track, got %d", keeps)
	}
}

func TestTrackerOnDriftingStream(t *testing.T) {
	// A longer randomized run: every event stream must be internally
	// consistent (no duplicate track ids within a window; continued
	// overlap in (0,1]).
	rng := rand.New(rand.NewSource(1))
	ex, err := core.New(core.Config{
		Dim: 2, ThetaR: 1.0, ThetaC: 4,
		Window: window.Spec{Win: 600, Slide: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := New()
	cx, cy := 5.0, 5.0
	for i := 0; i < 6000; i++ {
		cx += 0.001
		cy += 0.0005
		var p geom.Point
		if rng.Float64() < 0.2 {
			p = geom.Point{rng.Float64() * 40, rng.Float64() * 40}
		} else {
			p = geom.Point{cx + rng.NormFloat64()*0.5, cy + rng.NormFloat64()*0.5}
		}
		_, emitted, err := ex.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range emitted {
			events := tr.Advance(w)
			seen := map[int64]bool{}
			for _, e := range events {
				if e.Kind == Vanished {
					continue
				}
				if seen[e.TrackID] {
					t.Fatalf("duplicate track id %d in one window", e.TrackID)
				}
				seen[e.TrackID] = true
				if e.Kind == Continued && (e.Overlap <= 0 || e.Overlap > 1) {
					t.Fatalf("continued overlap %g", e.Overlap)
				}
				if e.Kind == Appeared && len(e.Predecessors) != 0 {
					t.Fatal("appeared with predecessors")
				}
			}
		}
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		Appeared: "appeared", Continued: "continued", Merged: "merged",
		Split: "split", Vanished: "vanished", EventKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
