// Package track links the clusters of consecutive windows into evolution
// histories: a cluster in window n+1 may continue a window-n cluster, be
// the result of a merge of several, one side of a split, or newly
// appeared; window-n clusters with no successor vanish.
//
// The paper motivates exactly these "complex cluster structural changes,
// such as merge and split" (§2) as the reason simple aggregating summaries
// fail, and its framework matches clusters across the stream history; this
// package adds the continuous, window-to-window form of that analysis as a
// library feature (the paper's §6.2 names evolution-driven techniques as
// future work).
//
// Linking uses the SGS representations only — two clusters are related if
// their skeletal cells overlap — so tracking costs O(cells), not
// O(members), and works on archived summaries as well as live results.
package track

import (
	"sort"

	"streamsum/internal/core"
	"streamsum/internal/grid"
)

// EventKind classifies what happened to a tracked cluster between
// consecutive windows.
type EventKind int

const (
	// Appeared: no predecessor overlaps the cluster.
	Appeared EventKind = iota
	// Continued: exactly one predecessor, which has exactly this
	// successor.
	Continued
	// Merged: more than one predecessor flowed into the cluster.
	Merged
	// Split: the predecessor also flowed into other clusters.
	Split
	// Vanished: a predecessor with no successor (reported on the old
	// cluster).
	Vanished
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Appeared:
		return "appeared"
	case Continued:
		return "continued"
	case Merged:
		return "merged"
	case Split:
		return "split"
	case Vanished:
		return "vanished"
	default:
		return "unknown"
	}
}

// Event describes one cluster's transition into the current window.
type Event struct {
	Kind EventKind
	// TrackID is the stable identity assigned by the tracker. On a merge
	// the largest predecessor's track survives; on a split the largest
	// successor keeps the track.
	TrackID int64
	// Cluster is the current-window cluster (nil for Vanished events).
	Cluster *core.Cluster
	// Predecessors are the track ids that flowed into this cluster.
	Predecessors []int64
	// Overlap is the fraction of the cluster's cells shared with its
	// predecessors (0 for Appeared).
	Overlap float64
}

// Tracker assigns stable identities to clusters across windows.
// It is not safe for concurrent use.
type Tracker struct {
	nextTrack int64
	// prev maps each cell coordinate of the previous window to the track
	// that owned it.
	prevCells map[grid.Coord]int64
	prevSize  map[int64]int // track -> cell count in previous window
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{
		prevCells: make(map[grid.Coord]int64),
		prevSize:  make(map[int64]int),
	}
}

// Advance ingests the clusters of the next window and returns one event
// per current cluster plus one Vanished event per lost track. Clusters
// must carry summaries (C-SGS output).
func (t *Tracker) Advance(w *core.WindowResult) []Event {
	type link struct {
		track int64
		cells int
	}
	var events []Event
	curCells := make(map[grid.Coord]int64)
	curSize := make(map[int64]int)
	succCount := make(map[int64]int) // predecessor track -> #successors
	assigned := make(map[int64]bool) // predecessor tracks claimed this window

	// Deterministic processing order: larger clusters first, so on merges
	// and splits the biggest party keeps the track id.
	clusters := append([]*core.Cluster(nil), w.Clusters...)
	sort.Slice(clusters, func(i, j int) bool {
		a, b := clusters[i], clusters[j]
		if a.Summary.NumCells() != b.Summary.NumCells() {
			return a.Summary.NumCells() > b.Summary.NumCells()
		}
		return a.ID < b.ID
	})

	type pending struct {
		cluster *core.Cluster
		links   []link
		shared  int
	}
	var pend []pending
	for _, c := range clusters {
		counts := make(map[int64]int)
		shared := 0
		for i := range c.Summary.Cells {
			if tr, ok := t.prevCells[c.Summary.Cells[i].Coord]; ok {
				counts[tr]++
				shared++
			}
		}
		var links []link
		for tr, n := range counts {
			links = append(links, link{tr, n})
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].cells != links[j].cells {
				return links[i].cells > links[j].cells
			}
			return links[i].track < links[j].track
		})
		for _, l := range links {
			succCount[l.track]++
		}
		pend = append(pend, pending{c, links, shared})
	}

	for _, p := range pend {
		c := p.cluster
		ev := Event{Cluster: c}
		if len(p.links) > 0 {
			ev.Overlap = float64(p.shared) / float64(c.Summary.NumCells())
			for _, l := range p.links {
				ev.Predecessors = append(ev.Predecessors, l.track)
			}
		}
		switch {
		case len(p.links) == 0:
			ev.Kind = Appeared
			ev.TrackID = t.nextTrack
			t.nextTrack++
		default:
			main := p.links[0].track
			if !assigned[main] {
				ev.TrackID = main
				assigned[main] = true
			} else {
				// The best predecessor already continued into a bigger
				// cluster: this one is a split-off with a fresh identity.
				ev.TrackID = t.nextTrack
				t.nextTrack++
			}
			switch {
			case len(p.links) > 1:
				ev.Kind = Merged
			case succCount[main] > 1:
				ev.Kind = Split
			default:
				ev.Kind = Continued
			}
		}
		events = append(events, ev)
		for i := range c.Summary.Cells {
			curCells[c.Summary.Cells[i].Coord] = ev.TrackID
		}
		curSize[ev.TrackID] = c.Summary.NumCells()
	}

	// Vanished tracks: predecessors with no successor at all.
	var lost []int64
	for tr := range t.prevSize {
		if succCount[tr] == 0 {
			lost = append(lost, tr)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, tr := range lost {
		events = append(events, Event{Kind: Vanished, TrackID: tr})
	}

	t.prevCells = curCells
	t.prevSize = curSize
	return events
}
