// Package quality implements the matching-quality evaluation of §8.3.
//
// The paper invited 20 analysts to rate, for each to-be-matched cluster,
// the top-3 matches returned by each summarization method as "very
// similar", "similar" or "not similar" (visualized with ViStream). Human
// raters are unavailable to a library test suite, so this package provides
// a similarity oracle computed on the clusters' *full representations* —
// information none of the summarization methods can access. The oracle is
// a centroid-aligned spatial-coverage similarity (Jaccard over fine
// occupancy cells), which is exactly what a human looking at two
// multivariate cluster renderings judges: do the shapes, extents and
// masses coincide after mentally overlaying them?
//
// Because the oracle (a) sees the raw members, (b) is symmetric, and (c)
// is independent of every summarization under test, it preserves the
// discriminating power of the original study: a method earns a high
// "similar rate" only by returning matches that genuinely resemble the
// target.
package quality

import (
	"fmt"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// Verdict is a rater's category for one retrieved match (§8.3).
type Verdict int

const (
	// NotSimilar means the retrieved cluster does not resemble the target.
	NotSimilar Verdict = iota
	// Similar means noticeable resemblance in shape/extent/mass.
	Similar
	// VerySimilar means near-coincident clusters.
	VerySimilar
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerySimilar:
		return "very similar"
	case Similar:
		return "similar"
	default:
		return "not similar"
	}
}

// Thresholds maps oracle similarity to verdicts.
type Thresholds struct {
	Very    float64 // similarity >= Very → VerySimilar
	Similar float64 // similarity >= Similar → Similar
}

// DefaultThresholds are calibrated so that a cluster matched with itself
// is VerySimilar and an unrelated cluster is NotSimilar.
func DefaultThresholds() Thresholds { return Thresholds{Very: 0.55, Similar: 0.3} }

// Oracle rates matches using archived full representations.
type Oracle struct {
	geo  *grid.Geometry
	th   Thresholds
	full map[int64][]geom.Point
}

// NewOracle creates an oracle rating at the given occupancy-cell
// granularity (use the clustering θr for cellSide·√dim, i.e. the same
// geometry as the extraction, so "coverage" matches what the clusters
// mean).
func NewOracle(dim int, cellSide float64, th Thresholds) (*Oracle, error) {
	geo, err := grid.NewGeometryWithSide(dim, cellSide, cellSide)
	if err != nil {
		return nil, err
	}
	if th.Very < th.Similar {
		return nil, fmt.Errorf("quality: Very threshold below Similar")
	}
	return &Oracle{geo: geo, th: th, full: make(map[int64][]geom.Point)}, nil
}

// AddCluster registers the full representation of an archived cluster.
func (o *Oracle) AddCluster(id int64, pts []geom.Point) {
	cp := make([]geom.Point, len(pts))
	for i, p := range pts {
		cp[i] = p.Clone()
	}
	o.full[id] = cp
}

// Len returns the number of registered clusters.
func (o *Oracle) Len() int { return len(o.full) }

// Similarity computes the centroid-aligned coverage similarity between a
// target's full representation and archived cluster id, in [0,1].
func (o *Oracle) Similarity(target []geom.Point, id int64) (float64, error) {
	stored, ok := o.full[id]
	if !ok {
		return 0, fmt.Errorf("quality: unknown cluster %d", id)
	}
	return CoverageSimilarity(o.geo, target, stored), nil
}

// Rate converts a similarity into a verdict.
func (o *Oracle) Rate(sim float64) Verdict {
	switch {
	case sim >= o.th.Very:
		return VerySimilar
	case sim >= o.th.Similar:
		return Similar
	default:
		return NotSimilar
	}
}

// RateMatch is Similarity followed by Rate.
func (o *Oracle) RateMatch(target []geom.Point, id int64) (Verdict, error) {
	sim, err := o.Similarity(target, id)
	if err != nil {
		return NotSimilar, err
	}
	return o.Rate(sim), nil
}

// CoverageSimilarity is the oracle metric: translate b so the centroids
// coincide, rasterize both point sets onto the geometry's cells, and
// return the Jaccard coefficient of the occupied cell sets, weighted by
// per-cell mass overlap (min/max of normalized per-cell counts). This
// rewards coinciding shape and density distribution, ignores absolute
// position, and needs no alignment search thanks to the centroid shift.
func CoverageSimilarity(geo *grid.Geometry, a, b []geom.Point) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ca, cb := geom.Centroid(a), geom.Centroid(b)
	shift := ca.Sub(cb)
	occA := rasterize(geo, a, nil)
	occB := rasterize(geo, b, shift)
	na, nb := float64(len(a)), float64(len(b))
	var inter, union float64
	for c, wa := range occA {
		if wb, ok := occB[c]; ok {
			fa, fb := wa/na, wb/nb
			if fa < fb {
				inter += fa
				union += fb
			} else {
				inter += fb
				union += fa
			}
		} else {
			union += wa / na
		}
	}
	for c, wb := range occB {
		if _, ok := occA[c]; !ok {
			union += wb / nb
		}
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

func rasterize(geo *grid.Geometry, pts []geom.Point, shift geom.Point) map[grid.Coord]float64 {
	occ := make(map[grid.Coord]float64)
	for _, p := range pts {
		q := p
		if shift != nil {
			q = p.Add(shift)
		}
		occ[geo.CoordOf(q)]++
	}
	return occ
}

// Tally accumulates verdicts for one method (one bar group of Figure 9).
type Tally struct {
	Very, Sim, Not int
}

// Add records a verdict.
func (t *Tally) Add(v Verdict) {
	switch v {
	case VerySimilar:
		t.Very++
	case Similar:
		t.Sim++
	default:
		t.Not++
	}
}

// Total returns the number of rated matches.
func (t Tally) Total() int { return t.Very + t.Sim + t.Not }

// Rates returns the fractions (very, similar, not) of rated matches.
func (t Tally) Rates() (very, similar, not float64) {
	n := t.Total()
	if n == 0 {
		return 0, 0, 0
	}
	f := 1 / float64(n)
	return float64(t.Very) * f, float64(t.Sim) * f, float64(t.Not) * f
}

// SimilarRate is the headline number of Figure 9: the fraction of matches
// rated similar or better.
func (t Tally) SimilarRate() float64 {
	n := t.Total()
	if n == 0 {
		return 0
	}
	return float64(t.Very+t.Sim) / float64(n)
}
