package quality

import (
	"math/rand"
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

func mustOracle(t *testing.T) *Oracle {
	t.Helper()
	o, err := NewOracle(2, 0.25, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func blob(rng *rand.Rand, n int, cx, cy, sx, sy float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.NormFloat64()*sx, cy + rng.NormFloat64()*sy}
	}
	return pts
}

func TestOracleValidation(t *testing.T) {
	if _, err := NewOracle(2, 0.25, Thresholds{Very: 0.2, Similar: 0.5}); err == nil {
		t.Error("inverted thresholds accepted")
	}
	if _, err := NewOracle(0, 0.25, DefaultThresholds()); err == nil {
		t.Error("bad dim accepted")
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := mustOracle(t)
	pts := blob(rng, 300, 5, 5, 1, 1)
	o.AddCluster(1, pts)
	sim, err := o.Similarity(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 1 {
		t.Fatalf("self similarity = %g", sim)
	}
	if o.Rate(sim) != VerySimilar {
		t.Fatal("self should be very similar")
	}
}

func TestTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o := mustOracle(t)
	pts := blob(rng, 300, 0, 0, 1, 1)
	moved := make([]geom.Point, len(pts))
	for i, p := range pts {
		moved[i] = p.Add(geom.Point{123.4, -56.7})
	}
	o.AddCluster(1, pts)
	sim, err := o.Similarity(moved, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Centroid alignment makes a pure translation near-identical (cell
	// quantization costs a little).
	if sim < 0.7 {
		t.Fatalf("translated similarity = %g", sim)
	}
}

func TestShapeDiscrimination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := mustOracle(t)
	round := blob(rng, 400, 0, 0, 1, 1)
	roundTwin := blob(rng, 400, 50, 50, 1, 1)
	elongatedC := blob(rng, 400, -50, -50, 4, 0.3)
	o.AddCluster(1, roundTwin)
	o.AddCluster(2, elongatedC)
	simTwin, _ := o.Similarity(round, 1)
	simElong, _ := o.Similarity(round, 2)
	if simTwin <= simElong {
		t.Fatalf("twin %g should beat elongated %g", simTwin, simElong)
	}
	if o.Rate(simTwin) == NotSimilar {
		t.Fatalf("statistical twin rated not-similar (%g)", simTwin)
	}
	if o.Rate(simElong) != NotSimilar {
		t.Fatalf("different shape rated similar (%g)", simElong)
	}
}

func TestDensityDistributionMatters(t *testing.T) {
	// Same footprint, different mass distribution → lower similarity than
	// identical mass distribution.
	rng := rand.New(rand.NewSource(4))
	o := mustOracle(t)
	uniform := make([]geom.Point, 0, 400)
	for i := 0; i < 400; i++ {
		uniform = append(uniform, geom.Point{rng.Float64() * 4, rng.Float64() * 4})
	}
	skewed := make([]geom.Point, 0, 400)
	for i := 0; i < 400; i++ {
		// Concentrated in one corner, thin elsewhere.
		if i%4 == 0 {
			skewed = append(skewed, geom.Point{rng.Float64() * 4, rng.Float64() * 4})
		} else {
			skewed = append(skewed, geom.Point{rng.Float64(), rng.Float64()})
		}
	}
	uniform2 := make([]geom.Point, 0, 400)
	for i := 0; i < 400; i++ {
		uniform2 = append(uniform2, geom.Point{rng.Float64() * 4, rng.Float64() * 4})
	}
	o.AddCluster(1, skewed)
	o.AddCluster(2, uniform2)
	simSkewed, _ := o.Similarity(uniform, 1)
	simUniform, _ := o.Similarity(uniform, 2)
	if simUniform <= simSkewed {
		t.Fatalf("uniform twin %g should beat skewed %g", simUniform, simSkewed)
	}
}

func TestUnknownCluster(t *testing.T) {
	o := mustOracle(t)
	if _, err := o.Similarity([]geom.Point{{0, 0}}, 99); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := o.RateMatch([]geom.Point{{0, 0}}, 99); err == nil {
		t.Fatal("unknown id accepted by RateMatch")
	}
}

func TestCoverageSimilarityEdgeCases(t *testing.T) {
	geo, err := grid.NewGeometryWithSide(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := CoverageSimilarity(geo, nil, nil); got != 1 {
		t.Errorf("empty-empty = %g", got)
	}
	if got := CoverageSimilarity(geo, []geom.Point{{0, 0}}, nil); got != 0 {
		t.Errorf("empty-nonempty = %g", got)
	}
	// Identical singletons.
	if got := CoverageSimilarity(geo, []geom.Point{{0.5, 0.5}}, []geom.Point{{7.5, 3.5}}); got != 1 {
		t.Errorf("aligned singletons = %g", got)
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	tl.Add(VerySimilar)
	tl.Add(Similar)
	tl.Add(Similar)
	tl.Add(NotSimilar)
	if tl.Total() != 4 {
		t.Fatalf("total = %d", tl.Total())
	}
	v, s, n := tl.Rates()
	if v != 0.25 || s != 0.5 || n != 0.25 {
		t.Fatalf("rates = %g %g %g", v, s, n)
	}
	if tl.SimilarRate() != 0.75 {
		t.Fatalf("similar rate = %g", tl.SimilarRate())
	}
	var empty Tally
	if empty.SimilarRate() != 0 {
		t.Fatal("empty tally similar rate")
	}
	ev, es, en := empty.Rates()
	if ev != 0 || es != 0 || en != 0 {
		t.Fatal("empty tally rates")
	}
}

func TestVerdictString(t *testing.T) {
	if VerySimilar.String() != "very similar" || Similar.String() != "similar" || NotSimilar.String() != "not similar" {
		t.Fatal("verdict strings wrong")
	}
}
