package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// L is one metric label pair. Labels distinguish series within a
// family (e.g. format="v3" under sgs_segstore_segments_opened_total).
type L struct {
	Key, Value string
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use; Inc/Add are lock-free and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. The zero value is ready to
// use; Set/Add/Sub are lock-free and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: fixed upper bounds in nanoseconds,
// geometric ×4 from 1µs to ~67s, plus an implicit +Inf bucket. Fixed
// bounds keep Observe a bounded loop over an embedded array — no
// allocation, no lock — at the cost of ~2× worst-case relative error
// on quantile estimates, which is fine for phase latencies spanning
// six orders of magnitude.
const numBounds = 14

var bucketBounds = func() [numBounds]int64 {
	var b [numBounds]int64
	v := int64(1000) // 1µs
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use; Observe is lock-free and allocation-free.
type Histogram struct {
	counts [numBounds + 1]atomic.Uint64 // last slot is +Inf
	sum    atomic.Int64                 // total observed, ns
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < numBounds && ns > bucketBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Buckets are cumulative counts per upper bound (seconds), ending with
// the +Inf bucket, matching Prometheus exposition semantics.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds in seconds; last is +Inf
	Counts []uint64  // cumulative count per bound
	Sum    float64   // total observed, seconds
	Count  uint64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: make([]float64, numBounds+1),
		Counts: make([]uint64, numBounds+1),
	}
	var cum uint64
	for i := 0; i <= numBounds; i++ {
		if i < numBounds {
			s.Bounds[i] = float64(bucketBounds[i]) / 1e9
		} else {
			s.Bounds[i] = inf
		}
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum
	s.Sum = float64(h.sum.Load()) / 1e9
	return s
}

var inf = func() float64 {
	f, _ := strconv.ParseFloat("+Inf", 64)
	return f
}()

// metric kinds, in Prometheus TYPE vocabulary.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// metric is one registered series: a family name plus a rendered label
// set and a way to read its current value(s).
type metric struct {
	name   string
	labels string // pre-rendered `{k="v",...}` or ""
	kind   string
	help   string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // gauge funcs (scrape-time reads)
}

// Registry is a named collection of metrics with a snapshot API and a
// Prometheus text exposition writer. Registration takes a lock; reads
// of registered counters/gauges/histograms never do.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric // name+labels -> metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// Default is the process-wide registry used by the package-level
// constructors. All instrumented packages register here.
var Default = NewRegistry()

func renderLabels(labels []L) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds m, panicking on a duplicate series or a family whose
// kind disagrees with an earlier registration. Misregistration is a
// programming error caught at init time, not a runtime condition.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.name + m.labels
	if old, ok := r.index[key]; ok {
		if m.fn != nil && old.fn != nil {
			// Gauge funcs replace: they read external state (engine
			// sizes, queue depths) that is re-bound when a new engine
			// starts, tests included.
			old.fn = m.fn
			old.help = m.help
			return
		}
		panic(fmt.Sprintf("obs: duplicate metric %s", key))
	}
	for _, old := range r.metrics {
		if old.name == m.name && old.kind != m.kind {
			panic(fmt.Sprintf("obs: metric family %s registered as both %s and %s", m.name, old.kind, m.kind))
		}
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels ...L) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, labels: renderLabels(labels), kind: kindCounter, help: help, counter: c})
	return c
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...L) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, labels: renderLabels(labels), kind: kindGauge, help: help, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram series.
func (r *Registry) NewHistogram(name, help string, labels ...L) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, labels: renderLabels(labels), kind: kindHistogram, help: help, hist: h})
	return h
}

// RegisterGaugeFunc registers a gauge whose value is read by fn at
// snapshot time. Re-registering the same (name, labels) replaces the
// previous function — the hook for process-lifetime series backed by
// restartable state (an engine's queue depths, cache sizes).
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64, labels ...L) {
	r.register(&metric{name: name, labels: renderLabels(labels), kind: kindGauge, help: help, fn: fn})
}

// Package-level constructors on Default.

// NewCounter registers a counter series in the Default registry.
func NewCounter(name, help string, labels ...L) *Counter {
	return Default.NewCounter(name, help, labels...)
}

// NewGauge registers a gauge series in the Default registry.
func NewGauge(name, help string, labels ...L) *Gauge {
	return Default.NewGauge(name, help, labels...)
}

// NewHistogram registers a histogram series in the Default registry.
func NewHistogram(name, help string, labels ...L) *Histogram {
	return Default.NewHistogram(name, help, labels...)
}

// RegisterGaugeFunc registers a scrape-time gauge in the Default
// registry with replace semantics.
func RegisterGaugeFunc(name, help string, fn func() float64, labels ...L) {
	Default.RegisterGaugeFunc(name, help, fn, labels...)
}

// Sample is one flattened series value in a snapshot. Histogram series
// carry their full state in Hist; scalar series use Value.
type Sample struct {
	Name   string // family name
	Labels string // rendered label set, "" when unlabeled
	Kind   string // "counter", "gauge" or "histogram"
	Help   string
	Value  float64
	Hist   *HistogramSnapshot // non-nil iff Kind == "histogram"
}

// Gather returns a point-in-time snapshot of every registered series,
// sorted by family name then label set. Gauge funcs are invoked here.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind, Help: m.help}
		switch {
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = float64(m.gauge.Value())
		case m.fn != nil:
			s.Value = m.fn()
		case m.hist != nil:
			hs := m.hist.snapshot()
			s.Hist = &hs
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WritePrometheus writes the registry's current state in Prometheus
// text exposition format (version 0.0.4). HELP and TYPE are emitted
// once per family; series within a family are ordered by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	var b strings.Builder
	last := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != last {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, strings.ReplaceAll(s.Help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
			last = s.Name
		}
		if s.Hist != nil {
			writeHistogram(&b, s)
			continue
		}
		b.WriteString(s.Name)
		b.WriteString(s.Labels)
		b.WriteByte(' ')
		b.WriteString(formatValue(s.Value))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, s *Sample) {
	for i, bound := range s.Hist.Bounds {
		le := "+Inf"
		if bound != inf {
			le = formatValue(bound)
		}
		b.WriteString(s.Name)
		b.WriteString(mergeLabels(s.Labels, `le="`+le+`"`))
		fmt.Fprintf(b, " %d\n", s.Hist.Counts[i])
	}
	b.WriteString(s.Name + "_sum")
	b.WriteString(s.Labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Hist.Sum))
	b.WriteByte('\n')
	b.WriteString(s.Name + "_count")
	b.WriteString(s.Labels)
	fmt.Fprintf(b, " %d\n", s.Hist.Count)
}

// mergeLabels appends extra (an already-rendered `k="v"` pair) to a
// rendered label set, producing the _bucket series' label string.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "_bucket{" + extra + "}"
	}
	return "_bucket" + labels[:len(labels)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
