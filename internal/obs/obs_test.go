package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	g := r.NewGauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "a histogram")
	h.Observe(500 * time.Nanosecond) // below first bound -> bucket 0
	h.Observe(time.Microsecond)      // == first bound -> bucket 0
	h.Observe(2 * time.Microsecond)  // bucket 1
	h.Observe(100 * time.Second)     // +Inf bucket
	h.Observe(-time.Second)          // clamped to 0 -> bucket 0
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	s := h.snapshot()
	if s.Counts[0] != 3 {
		t.Fatalf("bucket 0 cumulative = %d, want 3", s.Counts[0])
	}
	if s.Counts[1] != 4 {
		t.Fatalf("bucket 1 cumulative = %d, want 4", s.Counts[1])
	}
	if s.Counts[len(s.Counts)-1] != 5 {
		t.Fatalf("+Inf cumulative = %d, want 5", s.Counts[len(s.Counts)-1])
	}
	wantSum := (500*time.Nanosecond + time.Microsecond + 2*time.Microsecond + 100*time.Second).Seconds()
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestZeroAllocRecording pins the hot-path contract: recording a
// counter, gauge, or histogram sample never allocates.
func TestZeroAllocRecording(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("za_total", "")
	g := r.NewGauge("za_gauge", "")
	h := r.NewHistogram("za_seconds", "")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Millisecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per call, want 0", n)
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate series did not panic")
			}
		}()
		r.NewCounter("dup_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mixed-type family did not panic")
			}
		}()
		r.NewGauge("dup_total", "", L{"k", "v"})
	}()
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.RegisterGaugeFunc("gf", "", func() float64 { return 1 })
	r.RegisterGaugeFunc("gf", "", func() float64 { return 2 })
	samples := r.Gather()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1 (replace semantics)", len(samples))
	}
	if samples[0].Value != 2 {
		t.Fatalf("gauge func value = %v, want 2 (latest registration)", samples[0].Value)
	}
}

// TestWritePrometheusGolden fixes the exposition format byte-for-byte
// for a small registry: HELP/TYPE once per family, series sorted by
// name then label set, histograms as cumulative _bucket/_sum/_count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("app_requests_total", "Requests served.", L{"code", "200"})
	c2 := r.NewCounter("app_requests_total", "Requests served.", L{"code", "500"})
	g := r.NewGauge("app_queue_depth", "Queued items.")
	h := r.NewHistogram("app_latency_seconds", "Request latency.")
	c.Add(3)
	c2.Inc()
	g.Set(7)
	h.Observe(2 * time.Microsecond)
	h.Observe(10 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="1e-06"} 0
app_latency_seconds_bucket{le="4e-06"} 1
app_latency_seconds_bucket{le="1.6e-05"} 1
app_latency_seconds_bucket{le="6.4e-05"} 1
app_latency_seconds_bucket{le="0.000256"} 1
app_latency_seconds_bucket{le="0.001024"} 1
app_latency_seconds_bucket{le="0.004096"} 1
app_latency_seconds_bucket{le="0.016384"} 1
app_latency_seconds_bucket{le="0.065536"} 1
app_latency_seconds_bucket{le="0.262144"} 1
app_latency_seconds_bucket{le="1.048576"} 1
app_latency_seconds_bucket{le="4.194304"} 1
app_latency_seconds_bucket{le="16.777216"} 2
app_latency_seconds_bucket{le="67.108864"} 2
app_latency_seconds_bucket{le="+Inf"} 2
app_latency_seconds_sum 10.000002
app_latency_seconds_count 2
# HELP app_queue_depth Queued items.
# TYPE app_queue_depth gauge
app_queue_depth 7
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "", L{"path", `a"b\c` + "\n"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 0`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series %q not found in:\n%s", want, b.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "")
	h := r.NewHistogram("ch_seconds", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	// Concurrent scrapes must be safe against in-flight recording.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
