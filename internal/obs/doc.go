// Package obs is the process-wide observability layer: dependency-free
// counters, gauges, and fixed-bucket latency histograms with a named
// registry, a snapshot API (Gather), and a hand-rolled Prometheus text
// exposition writer (WritePrometheus). It exists so every stage of the
// pipeline — ingest batch phases, match filter/refine/order, segment
// store reads, summary cache residency, demoter flushes, subscription
// delivery — reports where time goes from inside the running process,
// not only from offline benches.
//
// Concurrency contract:
//
//   - Recording is wait-free and allocation-free. Counter.Inc/Add,
//     Gauge.Set/Add and Histogram.Observe are single atomic operations
//     (Observe adds a bounded scan of an embedded bounds array); none
//     of them take locks, allocate, or block. They are safe from any
//     goroutine, including the ingest and match hot paths, and their
//     cost does not depend on the number of registered metrics.
//   - Registration is locked and meant for init time. NewCounter /
//     NewGauge / NewHistogram panic on a duplicate (name, labels)
//     series or on re-registering a family under a different type:
//     misregistration is a programming error, surfaced immediately.
//   - RegisterGaugeFunc is the exception: re-registering the same
//     (name, labels) replaces the previous function. Gauge funcs read
//     external state at scrape time (engine queue depths, cache
//     bytes), and that state is re-bound whenever a new engine starts
//     — including every test that builds one.
//   - Gather and WritePrometheus take the registry lock only to copy
//     the metric list, then read each series with the same atomics the
//     writers use. Snapshots are monitoring-grade under concurrency:
//     each individual value is atomically read, but the set is not a
//     consistent cut. Histogram snapshots may transiently disagree
//     between count and sum by in-flight observations.
//
// Histogram buckets are fixed: upper bounds grow geometrically ×4 from
// 1µs to ~67s (14 bounds plus +Inf), exported in seconds. Fixed bounds
// are what make Observe allocation-free; the ~2× worst-case relative
// quantile error is acceptable for phase latencies that span six
// orders of magnitude.
package obs
