// Package core implements C-SGS (§5), the paper's primary contribution: an
// integrated algorithm that extracts density-based clusters over periodic
// sliding windows and simultaneously maintains their Skeletal Grid
// Summarizations, returning each window's clusters in both full and
// summarized representation.
//
// The design follows the paper closely:
//
//   - The only persistent meta-data besides the raw window content is the
//     set of skeletal grid cells (§5.2): per cell a core-status lifespan
//     and per adjacent-cell connection lifespans, the latter held in an
//     open-addressing conntab.Table with inline entries.
//   - All expiry-driven changes are pre-computed at insertion using
//     lifespan analysis (§5.3): when an object arrives, its own "career"
//     (core / edge / noise phases, Observation 5.4) and its effect on its
//     neighbors' careers are projected onto future windows, so the
//     expiration stage needs no per-object work at all ("Handling
//     Expirations", §5.4).
//   - Each arriving object triggers exactly one range query search; career
//     prolongs discovered later reuse recorded neighbor references instead
//     of re-running range queries (the paper's auxiliary meta-data, §5.3).
//   - The output stage (§5.4) runs a DFS over the currently-core cells and
//     their live connections, yielding one connected cell group — one SGS —
//     per cluster, from which the full representation is collected.
//
// Where the paper's technical report (unavailable) left the connection
// prolong-propagation unspecified, we keep per-object neighbor references
// (ids only, pruned lazily at the same points the paper prunes its
// bucketed neighbor lists) so that every career growth refreshes the
// affected cell connections; DESIGN.md discusses this substitution.
//
// # Invariants
//
// Two monotonicity facts carry the whole implementation:
//
//   - Careers only ever grow. An arrival can promote or prolong a core
//     career, never shorten one; expirations were already accounted for
//     when the career was computed.
//   - Every cell-level lifespan (core status per Lemma 5.1, connection and
//     attachment lifespans per Lemma 5.2 / Definition 4.3) is a pure
//     max-accumulation over career values.
//
// Together they make deferred propagation exact: re-running refresh with
// final careers subsumes every intermediate refresh, which is what lets
// the batch pipeline defer to one refresh per touched object, and they
// make lifespans below the current window dead information that pruning
// may drop at any time.
//
// # Concurrency
//
// An Extractor is single-writer: Push, PushBatch, Flush and Stats must not
// be called concurrently. Inside one call, parallelism comes from two
// internal fan-outs built on a read-only-over-frozen-state contract:
//
//   - Ingest (batch.go): a batch is cut into emission-free segments; each
//     segment's range query searches and new-object career constructions
//     fan out across Config.Workers goroutines over the frozen window
//     state (discoverInto and scanCells perform no mutation of any kind),
//     then all shared-state mutation replays sequentially in arrival
//     order, with one deferred refresh per touched object.
//   - Output (emit.go): connection pruning fans out across cells, edge
//     attachment resolution across edge cells, and cluster/summary
//     construction across clusters, bounded by Config.EmitWorkers. Every
//     parallel work item writes only state it exclusively owns (its cell,
//     its edge cell's objects, its pre-assigned cluster slot) and reads
//     only state frozen by the preceding sequential phase.
//
// Both fan-outs are deterministic: emitted windows are byte-identical to
// the fully sequential paths (Workers = EmitWorkers = 1) at every setting,
// a property the tests assert under -race.
package core
