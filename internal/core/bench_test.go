package core

import (
	"math/rand"
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/window"
)

// BenchmarkPushSteadyState measures the per-tuple insertion cost of C-SGS
// (one range query search + lifespan analysis + cell updates) in steady
// state on a clustered 2-D stream.
func BenchmarkPushSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := clusteredStream(rng, 200000, 2)
	ex, err := New(Config{Dim: 2, ThetaR: 0.5, ThetaC: 4,
		Window: window.Spec{Win: 10000, Slide: 1000}})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, _, err := ex.Push(pts[i], 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, _, err := ex.Push(pts[(10000+n)%len(pts)], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutputStage isolates the per-window output DFS + cluster
// assembly (the summarization piggyback the ≤6% claim is about).
func BenchmarkOutputStage(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := clusteredStream(rng, 10000, 2)
	for _, skip := range []struct {
		name string
		v    bool
	}{{"withSGS", false}, {"fullOnly", true}} {
		b.Run(skip.name, func(b *testing.B) {
			ex, err := New(Config{Dim: 2, ThetaR: 0.5, ThetaC: 4,
				Window:        window.Spec{Win: 10000, Slide: 10000},
				SkipSummaries: skip.v})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pts {
				if _, _, err := ex.Push(p, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				// Emit repeatedly on the same state: emit() advances the
				// window, but with win == slide the content simply expires;
				// rebuild state every iteration is too slow, so measure the
				// emit of a full window once per fresh extractor.
				b.StopTimer()
				ex2, err := New(Config{Dim: 2, ThetaR: 0.5, ThetaC: 4,
					Window:        window.Spec{Win: 10000, Slide: 10000},
					SkipSummaries: skip.v})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pts {
					if _, _, err := ex2.Push(p, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				r := ex2.Flush()
				if len(r.Clusters) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
	_ = geom.Point{}
}
