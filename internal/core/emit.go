package core

import (
	"sort"
	"time"

	"streamsum/internal/conntab"
	"streamsum/internal/par"
	"streamsum/internal/sgs"
)

// The output stage of §5.4, restructured as a two-phase pipeline so that
// per-cluster work — the part that dominates once ingestion is batched —
// fans out across cores:
//
// Phase 1 (parallel over cells): pruneConns rebuilds each cell's live
// connection snapshot; every prune touches only its own cell, so the cells
// partition the work race-free.
//
// Phase 2 (sequential): the DFS over the core cells and their live
// core-core connections identifies the connected cell groups — one group
// per cluster — and discovers the attached edge cells. This is the cheap,
// inherently order-dependent part: group order (and therefore cluster id
// assignment) comes from the coordinate-sorted core cells.
//
// Phase 3 (parallel over edge cells): each edge cell resolves, for every
// group that reaches it through a live attachment, which of its objects
// are attached members. An edge cell can be shared between clusters but
// belongs to exactly one work item, so the single pass that also compacts
// its objects' neighbor lists is race-free.
//
// Phase 4 (parallel over clusters): full-representation assembly (member
// collection + sorting) and SGS construction run per cluster over frozen
// state, writing into pre-assigned result slots with pre-assigned cluster
// ids.
//
// Every phase reads state frozen by the previous ones and writes either
// cell-local, object-local (via the owning cell), or cluster-local data,
// so the stage is race-clean under any worker count; and because all
// user-visible orderings are canonicalized (members sorted, summaries
// normalized, groups ordered by sorted core cells), the output is
// byte-identical to the sequential stage at every EmitWorkers setting.

// emit runs the output stage for the current window, then performs the
// (trivial, thanks to lifespan analysis) expiration stage and advances the
// window.
func (e *Extractor) emit() *WindowResult {
	sp := e.tr.Start("emit")
	start := time.Now()
	n := e.cur
	res := &WindowResult{Window: n}
	workers := par.DefaultWorkers(e.cfg.EmitWorkers)

	// --- Output stage -----------------------------------------------------
	// The skeletal grid cells are the vertices of a graph, their live
	// connections the edges; a DFS over the core cells yields one connected
	// group — one cluster — at a time.

	// Phase 1: prune connection tables and snapshot live connections, in
	// parallel across cells.
	cellList := make([]*cell, 0, len(e.cells))
	for _, c := range e.cells {
		cellList = append(cellList, c)
	}
	par.For(workers, len(cellList), func(i int) {
		e.pruneConns(cellList[i], n)
	})

	// Phase 2a: deterministic DFS seed order — live core cells sorted by
	// coordinate.
	var coreCells []*cell
	for _, c := range cellList {
		if c.coreLast >= n {
			coreCells = append(coreCells, c)
		}
	}
	sort.Slice(coreCells, func(i, j int) bool {
		return sgs.CoordLess(coreCells[i].coord, coreCells[j].coord)
	})

	comp := make(map[*cell]int, len(coreCells))
	var groups [][]*cell
	for _, start := range coreCells {
		if _, seen := comp[start]; seen {
			continue
		}
		gi := len(groups)
		var group []*cell
		stack := []*cell{start}
		comp[start] = gi
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			group = append(group, c)
			for _, lc := range c.live {
				if !lc.coreConn {
					continue
				}
				nc, ok := e.cells[lc.coord]
				if !ok || nc.coreLast < n {
					continue
				}
				if _, seen := comp[nc]; !seen {
					comp[nc] = gi
					stack = append(stack, nc)
				}
			}
		}
		groups = append(groups, group)
	}

	// Phase 2b: discover the attached edge cells — non-core cells reachable
	// through a live attachment from a core cell of some group — and which
	// groups reach each of them. Group indices accumulate in ascending
	// order because the outer loop runs in group order.
	edgeIdx := make(map[*cell]int)
	var edgeCells []*emitEdgeCell
	for gi, group := range groups {
		for _, c := range group {
			for _, lc := range c.live {
				if !lc.attachOut {
					continue
				}
				nc, ok := e.cells[lc.coord]
				if !ok || nc.coreLast >= n {
					continue // core cells were handled by the DFS
				}
				ei, seen := edgeIdx[nc]
				if !seen {
					ei = len(edgeCells)
					edgeIdx[nc] = ei
					edgeCells = append(edgeCells, &emitEdgeCell{cell: nc})
				}
				ec := edgeCells[ei]
				if len(ec.groups) == 0 || ec.groups[len(ec.groups)-1] != gi {
					ec.groups = append(ec.groups, gi)
				}
			}
		}
	}

	// Phase 3: resolve edge attachments, in parallel across edge cells.
	par.For(workers, len(edgeCells), func(i int) {
		e.resolveEdgeCell(edgeCells[i], n, comp)
	})

	// Per-group views of the resolved edge cells, in discovery order.
	groupEdges := make([][]clusterEdge, len(groups))
	for _, ec := range edgeCells {
		for k, gi := range ec.groups {
			if len(ec.members[k]) == 0 {
				continue
			}
			groupEdges[gi] = append(groupEdges[gi], clusterEdge{cell: ec.cell, members: ec.members[k]})
		}
	}

	// Phase 4: assemble clusters in parallel, with pre-assigned ids so the
	// sequence matches the sequential stage exactly. An empty window keeps
	// res.Clusters nil, preserving the serialized shape of cluster-less
	// windows ("Clusters":null, not []).
	if len(groups) > 0 {
		res.Clusters = make([]*Cluster, len(groups))
		baseID := e.nextCID
		e.nextCID += int64(len(groups))
		par.For(workers, len(groups), func(gi int) {
			res.Clusters[gi] = e.buildCluster(n, baseID+int64(gi), groups[gi], groupEdges[gi])
		})
	}

	// --- Expiration stage ---------------------------------------------------
	// All structural impact of expiry was pre-computed at insertion; the
	// only work left is dropping the raw tuples whose lifespan ends with
	// this window (§5.4 "Handling Expirations").
	for _, o := range e.expiry[n] {
		e.removeObject(o)
	}
	delete(e.expiry, n)
	e.cur = n + 1
	MetricEmitSeconds.Observe(time.Since(start))
	MetricWindows.Inc()
	MetricClusters.Add(uint64(len(res.Clusters)))
	sp.SetInt("window", n)
	sp.SetInt("clusters", int64(len(res.Clusters)))
	sp.End()
	return res
}

// emitEdgeCell is one attached edge cell of the window being emitted, the
// groups reaching it through a live attachment (ascending), and — after
// resolution — the member objects each of those groups claims from it.
type emitEdgeCell struct {
	cell    *cell
	groups  []int
	members [][]int64 // parallel to groups
}

// clusterEdge is one edge cell's contribution to a single cluster.
type clusterEdge struct {
	cell    *cell
	members []int64
}

// resolveEdgeCell determines, for each object of an attached edge cell,
// which of the reaching groups it is an edge member of (Definition 3.1:
// some live core object of that group is its neighbor), compacting the
// object's neighbor list in the same pass. Per-object neighbor scans here
// are cheap: a non-core object has fewer than θc live neighbors by
// definition — the boundedness argument behind the paper's non-core-career
// neighbor lists. Each edge cell is resolved exactly once even when shared
// between clusters, so the neighbor-list compaction — the only mutation —
// stays single-writer under the parallel fan-out.
func (e *Extractor) resolveEdgeCell(ec *emitEdgeCell, n int64, comp map[*cell]int) {
	ec.members = make([][]int64, len(ec.groups))
	var gset []int // groups this object's core neighbors belong to
	for _, o := range ec.cell.objs {
		gset = gset[:0]
		live := 0
		for _, b := range o.nbrs {
			if b.last < e.cur {
				continue
			}
			o.nbrs[live] = b
			live++
			if b.coreLast < n {
				continue
			}
			if g, ok := comp[b.cell]; ok {
				dup := false
				for _, x := range gset {
					if x == g {
						dup = true
						break
					}
				}
				if !dup {
					gset = append(gset, g)
				}
			}
		}
		o.nbrs = o.nbrs[:live]
		for k, gi := range ec.groups {
			for _, g := range gset {
				if g == gi {
					ec.members[k] = append(ec.members[k], o.id)
					break
				}
			}
		}
	}
}

// buildCluster assembles one cluster (full + SGS representation) from its
// connected group of core cells and its resolved edge-cell contributions.
// It reads only frozen state and writes only the new cluster, so any
// number of buildCluster calls may run concurrently for distinct groups.
func (e *Extractor) buildCluster(n, id int64, group []*cell, edges []clusterEdge) *Cluster {
	cl := &Cluster{ID: id}

	// Core cells: every live object is a member (Lemma 4.1).
	for _, c := range group {
		for _, o := range c.objs {
			cl.Members = append(cl.Members, o.id)
			if o.coreLast >= n {
				cl.Cores = append(cl.Cores, o.id)
			}
		}
	}
	// Attached edge members resolved in phase 3. An edge cell can be shared
	// between clusters; its per-cluster population is the number of its
	// objects attached to this cluster.
	for _, ge := range edges {
		cl.Members = append(cl.Members, ge.members...)
	}

	sort.Slice(cl.Members, func(i, j int) bool { return cl.Members[i] < cl.Members[j] })
	sort.Slice(cl.Cores, func(i, j int) bool { return cl.Cores[i] < cl.Cores[j] })

	if !e.cfg.SkipSummaries {
		cl.Summary = e.buildSummary(n, group, edges, id)
	}
	return cl
}

// buildSummary assembles the SGS directly from the extractor's cell
// structures (Definition 4.4): one pass over the group's live connections,
// no intermediate builder maps — this is the "piggybacked" summarization
// whose marginal cost the paper bounds at 6%.
func (e *Extractor) buildSummary(n int64, group []*cell, edges []clusterEdge, id int64) *sgs.Summary {
	s := &sgs.Summary{ID: id, Window: n, Dim: e.cfg.Dim, Side: e.geo.Side()}
	s.Cells = make([]sgs.Cell, 0, len(group)+len(edges))
	var isEdge map[*cell]bool
	if len(edges) > 0 {
		isEdge = make(map[*cell]bool, len(edges))
		for _, ge := range edges {
			isEdge[ge.cell] = true
		}
	}
	for _, c := range group {
		sc := sgs.Cell{Coord: c.coord, Population: uint32(len(c.objs)), Status: sgs.CoreCell}
		for _, lc := range c.live {
			nc, ok := e.cells[lc.coord]
			if !ok {
				continue
			}
			if lc.coreConn && nc.coreLast >= n {
				// Symmetric: the other core cell records the mirror entry
				// from its own live list.
				sc.Conns = append(sc.Conns, lc.coord)
			} else if lc.attachOut && isEdge[nc] {
				sc.Conns = append(sc.Conns, lc.coord)
			}
		}
		s.Cells = append(s.Cells, sc)
	}
	for _, ge := range edges {
		s.Cells = append(s.Cells, sgs.Cell{
			Coord:      ge.cell.coord,
			Population: uint32(len(ge.members)),
			Status:     sgs.EdgeCell,
		})
	}
	s.Normalize()
	return s
}

// pruneConns drops connection entries whose every lifespan ended before
// window n and snapshots the surviving ones into the cell's live slice.
// (The mirrored fields on the opposite cell are pruned when that cell is
// visited.) It touches only the given cell, which is what lets the output
// stage prune all cells in parallel.
func (e *Extractor) pruneConns(c *cell, n int64) {
	c.live = c.live[:0]
	c.conns.Prune(func(ce *conntab.Entry) bool {
		coreLive, attachLive := ce.CoreLast >= n, ce.AttachOut >= n
		if !coreLive && !attachLive {
			return false
		}
		c.live = append(c.live, liveConn{coord: ce.Coord, coreConn: coreLive, attachOut: attachLive})
		return true
	})
}

// removeObject drops an expired tuple from its cell. No lifespan updates
// are needed: every effect of this expiry was accounted for at insertion.
func (e *Extractor) removeObject(o *object) {
	c := o.cell
	last := len(c.objs) - 1
	moved := c.objs[last]
	c.objs[o.cellIdx] = moved
	moved.cellIdx = o.cellIdx
	c.objs = c.objs[:last]
	e.objCount--
	o.nbrs = nil // break retention chains through expired objects
	o.cell = nil
	if len(c.objs) == 0 {
		for _, nc := range c.nbrCells {
			for i, x := range nc.nbrCells {
				if x == c {
					nc.nbrCells[i] = nc.nbrCells[len(nc.nbrCells)-1]
					nc.nbrCells = nc.nbrCells[:len(nc.nbrCells)-1]
					break
				}
			}
		}
		c.nbrCells = nil
		delete(e.cells, c.coord)
	}
}
