package core

import (
	"sort"

	"streamsum/internal/sgs"
)

// emit runs the output stage of §5.4 for the current window, then performs
// the (trivial, thanks to lifespan analysis) expiration stage and advances
// the window.
func (e *Extractor) emit() *WindowResult {
	n := e.cur
	res := &WindowResult{Window: n}

	// --- Output stage -----------------------------------------------------
	// The skeletal grid cells are the vertices of a graph, their live
	// connections the edges; a DFS over the core cells yields one connected
	// group — one cluster — at a time.

	// Deterministic iteration order: sort live core cells by coordinate.
	var coreCells []*cell
	for _, c := range e.cells {
		e.pruneConns(c, n)
		if c.coreLast >= n {
			coreCells = append(coreCells, c)
		}
	}
	sort.Slice(coreCells, func(i, j int) bool {
		return sgs.CoordLess(coreCells[i].coord, coreCells[j].coord)
	})

	comp := make(map[*cell]int, len(coreCells))
	var groups [][]*cell
	for _, start := range coreCells {
		if _, seen := comp[start]; seen {
			continue
		}
		gi := len(groups)
		var group []*cell
		stack := []*cell{start}
		comp[start] = gi
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			group = append(group, c)
			for _, lc := range c.live {
				if !lc.coreConn {
					continue
				}
				nc, ok := e.cells[lc.coord]
				if !ok || nc.coreLast < n {
					continue
				}
				if _, seen := comp[nc]; !seen {
					comp[nc] = gi
					stack = append(stack, nc)
				}
			}
		}
		groups = append(groups, group)
	}

	for _, group := range groups {
		res.Clusters = append(res.Clusters, e.buildCluster(n, group, comp))
	}

	// --- Expiration stage ---------------------------------------------------
	// All structural impact of expiry was pre-computed at insertion; the
	// only work left is dropping the raw tuples whose lifespan ends with
	// this window (§5.4 "Handling Expirations").
	for _, o := range e.expiry[n] {
		e.removeObject(o)
	}
	delete(e.expiry, n)
	e.cur = n + 1
	return res
}

// edgeInfo tracks one attached edge cell and the member objects this
// cluster claims from it.
type edgeInfo struct {
	cell    *cell
	members []int64
}

// buildCluster assembles one cluster (full + SGS representation) from its
// connected group of core cells.
func (e *Extractor) buildCluster(n int64, group []*cell, comp map[*cell]int) *Cluster {
	cl := &Cluster{ID: e.nextCID}
	e.nextCID++
	gi := comp[group[0]]

	// Core cells: every live object is a member (Lemma 4.1).
	for _, c := range group {
		for _, o := range c.objs {
			cl.Members = append(cl.Members, o.id)
			if o.coreLast >= n {
				cl.Cores = append(cl.Cores, o.id)
			}
		}
	}

	// Attached edge cells: reachable through a live attachment from a core
	// cell of this group, and not core themselves in this window. Their
	// per-cluster population is the number of their objects attached to
	// this cluster (an edge cell can be shared between clusters).
	edges := make(map[*cell]*edgeInfo)
	for _, c := range group {
		for _, lc := range c.live {
			if !lc.attachOut {
				continue
			}
			nc, ok := e.cells[lc.coord]
			if !ok || nc.coreLast >= n {
				continue // core cells were handled by the DFS
			}
			if _, seen := edges[nc]; !seen {
				edges[nc] = &edgeInfo{cell: nc}
			}
		}
	}
	for _, ei := range edges {
		for _, o := range ei.cell.objs {
			if e.attachedTo(o, n, gi, comp) {
				ei.members = append(ei.members, o.id)
			}
		}
		if len(ei.members) == 0 {
			continue
		}
		cl.Members = append(cl.Members, ei.members...)
	}

	sort.Slice(cl.Members, func(i, j int) bool { return cl.Members[i] < cl.Members[j] })
	sort.Slice(cl.Cores, func(i, j int) bool { return cl.Cores[i] < cl.Cores[j] })

	if !e.cfg.SkipSummaries {
		cl.Summary = e.buildSummary(n, group, edges, cl.ID)
	}
	return cl
}

// buildSummary assembles the SGS directly from the extractor's cell
// structures (Definition 4.4): one pass over the group's live connections,
// no intermediate builder maps — this is the "piggybacked" summarization
// whose marginal cost the paper bounds at 6%.
func (e *Extractor) buildSummary(n int64, group []*cell, edges map[*cell]*edgeInfo, id int64) *sgs.Summary {
	s := &sgs.Summary{ID: id, Window: n, Dim: e.cfg.Dim, Side: e.geo.Side()}
	s.Cells = make([]sgs.Cell, 0, len(group)+len(edges))
	for _, c := range group {
		sc := sgs.Cell{Coord: c.coord, Population: uint32(len(c.objs)), Status: sgs.CoreCell}
		for _, lc := range c.live {
			nc, ok := e.cells[lc.coord]
			if !ok {
				continue
			}
			if lc.coreConn && nc.coreLast >= n {
				// Symmetric: the other core cell records the mirror entry
				// from its own live list.
				sc.Conns = append(sc.Conns, lc.coord)
			} else if lc.attachOut {
				if ei, isEdge := edges[nc]; isEdge && len(ei.members) > 0 {
					sc.Conns = append(sc.Conns, lc.coord)
				}
			}
		}
		s.Cells = append(s.Cells, sc)
	}
	for _, ei := range edges {
		if len(ei.members) == 0 {
			continue
		}
		s.Cells = append(s.Cells, sgs.Cell{
			Coord:      ei.cell.coord,
			Population: uint32(len(ei.members)),
			Status:     sgs.EdgeCell,
		})
	}
	s.Normalize()
	return s
}

// attachedTo reports whether object o (living in a non-core cell) is an
// edge member of cluster group gi in window n: some live core object of
// that group is o's neighbor. Live-neighbor scans here are cheap: a
// non-core object has fewer than θc live neighbors by definition — this is
// the boundedness argument behind the paper's non-core-career neighbor
// lists.
func (e *Extractor) attachedTo(o *object, n int64, gi int, comp map[*cell]int) bool {
	live := 0
	found := false
	for _, b := range o.nbrs {
		if b.last < e.cur {
			continue
		}
		o.nbrs[live] = b
		live++
		if found || b.coreLast < n {
			continue
		}
		if g, ok := comp[b.cell]; ok && g == gi {
			found = true
		}
	}
	o.nbrs = o.nbrs[:live]
	return found
}

// pruneConns drops connection entries whose every lifespan ended before
// window n and snapshots the surviving ones into the cell's live slice.
// (The mirrored fields on the opposite cell are pruned when that cell is
// visited.)
func (e *Extractor) pruneConns(c *cell, n int64) {
	c.live = c.live[:0]
	for coord, ce := range c.conns {
		coreLive, attachLive := ce.coreLast >= n, ce.attachOut >= n
		if !coreLive && !attachLive {
			delete(c.conns, coord)
			continue
		}
		c.live = append(c.live, liveConn{coord: coord, coreConn: coreLive, attachOut: attachLive})
	}
}

// removeObject drops an expired tuple from its cell. No lifespan updates
// are needed: every effect of this expiry was accounted for at insertion.
func (e *Extractor) removeObject(o *object) {
	c := o.cell
	last := len(c.objs) - 1
	moved := c.objs[last]
	c.objs[o.cellIdx] = moved
	moved.cellIdx = o.cellIdx
	c.objs = c.objs[:last]
	e.objCount--
	o.nbrs = nil // break retention chains through expired objects
	o.cell = nil
	if len(c.objs) == 0 {
		for _, nc := range c.nbrCells {
			for i, x := range nc.nbrCells {
				if x == c {
					nc.nbrCells[i] = nc.nbrCells[len(nc.nbrCells)-1]
					nc.nbrCells = nc.nbrCells[:len(nc.nbrCells)-1]
					break
				}
			}
		}
		c.nbrCells = nil
		delete(e.cells, c.coord)
	}
}
