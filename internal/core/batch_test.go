package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/window"
)

// batchStream generates a fixed-seed stream with drifting dense blobs
// plus background noise, exercising promotions, prolongs, shared edge
// cells, and cell birth/death.
func batchStream(n, dim int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, 4)
	for i := range centers {
		centers[i] = make(geom.Point, dim)
		for d := range centers[i] {
			centers[i][d] = rng.Float64() * 8
		}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		if rng.Float64() < 0.85 {
			c := centers[rng.Intn(len(centers))]
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*0.4
			}
		} else {
			for d := range p {
				p[d] = rng.Float64() * 8
			}
		}
		pts[i] = p
		// Drift the centers slowly so clusters move across cells.
		for _, c := range centers {
			c[0] += rng.NormFloat64() * 0.01
		}
	}
	return pts
}

// encodeWindows renders window results to canonical JSON so "identical"
// means byte-identical, summaries included.
func encodeWindows(t *testing.T, ws []*WindowResult) []byte {
	t.Helper()
	b, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runSequential(t *testing.T, cfg Config, pts []geom.Point, tss []int64) []*WindowResult {
	t.Helper()
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*WindowResult
	for i, p := range pts {
		var ts int64
		if tss != nil {
			ts = tss[i]
		}
		_, emitted, err := ex.Push(p, ts)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, emitted...)
	}
	return append(out, ex.Flush())
}

func runBatched(t *testing.T, cfg Config, pts []geom.Point, tss []int64, batch int) []*WindowResult {
	t.Helper()
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*WindowResult
	for lo := 0; lo < len(pts); lo += batch {
		hi := lo + batch
		if hi > len(pts) {
			hi = len(pts)
		}
		var bt []int64
		if tss != nil {
			bt = tss[lo:hi]
		}
		emitted, err := ex.PushBatch(pts[lo:hi], bt)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, emitted...)
	}
	return append(out, ex.Flush())
}

// TestPushBatchMatchesSequential is the determinism guarantee of the
// batched ingest path: PushBatch with parallel discovery must emit
// byte-identical WindowResults (members, cores, summaries) to one-by-one
// Push on the same fixed-seed stream, across batch sizes that do and
// don't align with window boundaries. Run under -race this also verifies
// the discovery fan-out is race-clean.
func TestPushBatchMatchesSequential(t *testing.T) {
	pts := batchStream(6000, 2, 42)
	cfg := Config{
		Dim: 2, ThetaR: 0.7, ThetaC: 4,
		Window:  window.Spec{Win: 1500, Slide: 300},
		Workers: 4,
	}
	want := encodeWindows(t, runSequential(t, cfg, pts, nil))
	for _, batch := range []int{1, 7, 300, 1000, 6000} {
		got := encodeWindows(t, runBatched(t, cfg, pts, nil, batch))
		if string(got) != string(want) {
			t.Errorf("batch=%d: batched output differs from sequential", batch)
		}
	}
}

// TestPushBatchMatchesSequentialTimeBased repeats the guarantee for
// time-based windows with bursty timestamps (many tuples sharing a tick).
func TestPushBatchMatchesSequentialTimeBased(t *testing.T) {
	pts := batchStream(4000, 3, 7)
	rng := rand.New(rand.NewSource(99))
	tss := make([]int64, len(pts))
	tick := int64(0)
	for i := range tss {
		if rng.Float64() < 0.3 {
			tick += int64(rng.Intn(3))
		}
		tss[i] = tick
	}
	cfg := Config{
		Dim: 3, ThetaR: 0.9, ThetaC: 3,
		Window:  window.Spec{Kind: window.TimeBased, Win: 90, Slide: 30},
		Workers: 4,
	}
	want := encodeWindows(t, runSequential(t, cfg, pts, tss))
	for _, batch := range []int{13, 500, 4000} {
		got := encodeWindows(t, runBatched(t, cfg, pts, tss, batch))
		if string(got) != string(want) {
			t.Errorf("batch=%d: batched output differs from sequential (time-based)", batch)
		}
	}
}

// TestPushBatchNilTSSTimeBased checks a nil tss under time-based windows
// reads as all-zero timestamps, exactly like a Push(p, 0) loop: no window
// ever completes, every tuple lands in the current window.
func TestPushBatchNilTSSTimeBased(t *testing.T) {
	cfg := Config{Dim: 2, ThetaR: 1, ThetaC: 2,
		Window: window.Spec{Kind: window.TimeBased, Win: 10, Slide: 5}, Workers: 2}
	pts := batchStream(500, 2, 3)

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, _, err := seq.Push(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	bat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	emitted, err := bat.PushBatch(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 0 {
		t.Fatalf("nil-tss time-based batch emitted %d windows, Push(p, 0) emits none", len(emitted))
	}
	wb := encodeWindows(t, []*WindowResult{seq.Flush()})
	gb := encodeWindows(t, []*WindowResult{bat.Flush()})
	if string(wb) != string(gb) {
		t.Fatal("nil-tss time-based batch state differs from Push(p, 0) loop")
	}
}

// TestPushBatchErrors checks error semantics match a sequential Push loop:
// the batch stops at the offending tuple with every earlier tuple applied.
func TestPushBatchErrors(t *testing.T) {
	cfg := Config{Dim: 2, ThetaR: 1, ThetaC: 2, Window: window.Spec{Win: 10, Slide: 5}, Workers: 2}
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ex.PushBatch([]geom.Point{{1, 1}, {2, 2, 2}}, nil)
	if err == nil {
		t.Fatal("dimension mismatch not reported")
	}
	if got := ex.Stats().Objects; got != 1 {
		t.Fatalf("prefix before error not applied: %d objects, want 1", got)
	}

	tcfg := Config{Dim: 1, ThetaR: 1, ThetaC: 2,
		Window: window.Spec{Kind: window.TimeBased, Win: 10, Slide: 5}, Workers: 2}
	tex, err := New(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tex.PushBatch([]geom.Point{{1}, {2}, {3}}, []int64{5, 3, 4})
	if err == nil {
		t.Fatal("out-of-order position not reported")
	}
	if got := tex.Stats().Objects; got != 1 {
		t.Fatalf("prefix before order error not applied: %d objects, want 1", got)
	}
}
