package core

import (
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/window"
)

// TestEmitParallelMatchesSequential is the determinism guarantee of the
// parallel output stage: for every EmitWorkers setting the emitted
// WindowResult sequence — members, cores, and summaries — must be
// byte-identical to the fully sequential stage (EmitWorkers = 1), via
// both the Push and the PushBatch ingest paths. Run under -race this also
// verifies the prune / edge-resolution / cluster-build fan-outs are
// race-clean.
func TestEmitParallelMatchesSequential(t *testing.T) {
	pts := batchStream(6000, 2, 99)
	base := Config{
		Dim: 2, ThetaR: 0.7, ThetaC: 4,
		Window:      window.Spec{Win: 1500, Slide: 300},
		EmitWorkers: 1,
	}
	wantPush := encodeWindows(t, runSequential(t, base, pts, nil))

	for _, ew := range []int{1, 2, 8} {
		cfg := base
		cfg.EmitWorkers = ew

		if got := encodeWindows(t, runSequential(t, cfg, pts, nil)); string(got) != string(wantPush) {
			t.Errorf("emitWorkers=%d: Push output differs from sequential emit", ew)
		}
		cfg.Workers = 4
		if got := encodeWindows(t, runBatched(t, cfg, pts, nil, 700)); string(got) != string(wantPush) {
			t.Errorf("emitWorkers=%d: PushBatch output differs from sequential emit", ew)
		}
	}
}

// TestEmitEmptyWindowClustersNil pins the serialized shape of a
// cluster-less window: Clusters stays nil ("Clusters":null in JSON, as in
// releases before the parallel output stage), not an empty slice.
func TestEmitEmptyWindowClustersNil(t *testing.T) {
	ex, err := New(Config{
		Dim: 2, ThetaR: 0.5, ThetaC: 5,
		Window:      window.Spec{Win: 10, Slide: 10},
		EmitWorkers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // isolated points: no cluster forms
		if _, _, err := ex.Push(geom.Point{float64(i) * 100, 0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	_, ws, err := ex.Push(geom.Point{5000, 0}, 0) // crosses the boundary
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1", len(ws))
	}
	if ws[0].Clusters != nil {
		t.Fatalf("empty window Clusters = %#v, want nil", ws[0].Clusters)
	}
}

// TestEmitParallelSkipSummaries covers the SkipSummaries ablation path
// under the parallel output stage (cluster assembly still fans out; only
// summary construction is suppressed).
func TestEmitParallelSkipSummaries(t *testing.T) {
	pts := batchStream(4000, 3, 17)
	base := Config{
		Dim: 3, ThetaR: 0.9, ThetaC: 5,
		Window:        window.Spec{Win: 1000, Slide: 250},
		SkipSummaries: true,
		EmitWorkers:   1,
	}
	want := encodeWindows(t, runSequential(t, base, pts, nil))
	for _, ew := range []int{2, 8} {
		cfg := base
		cfg.EmitWorkers = ew
		if got := encodeWindows(t, runSequential(t, cfg, pts, nil)); string(got) != string(want) {
			t.Errorf("emitWorkers=%d: SkipSummaries output differs from sequential emit", ew)
		}
	}
}
