package core

import (
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/window"
)

// TestTimeGapEmitsEmptyWindows: a long quiet period in a time-based stream
// must emit the intervening (possibly empty) windows in order, expire all
// state, and resume cleanly.
func TestTimeGapEmitsEmptyWindows(t *testing.T) {
	ex, err := New(Config{Dim: 1, ThetaR: 1, ThetaC: 1,
		Window: window.Spec{Kind: window.TimeBased, Win: 10, Slide: 10}})
	if err != nil {
		t.Fatal(err)
	}
	// A clustered pair in window 0.
	if _, _, err := ex.Push(geom.Point{0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.Push(geom.Point{0.5}, 2); err != nil {
		t.Fatal(err)
	}
	// Next tuple arrives 10 windows later.
	_, emitted, err := ex.Push(geom.Point{5}, 105)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 10 {
		t.Fatalf("gap emitted %d windows, want 10", len(emitted))
	}
	if len(emitted[0].Clusters) != 1 {
		t.Fatalf("window 0 should hold the pair: %+v", emitted[0])
	}
	for i, w := range emitted[1:] {
		if w.Window != int64(i+1) {
			t.Fatalf("window order broken: got %d at %d", w.Window, i+1)
		}
		if len(w.Clusters) != 0 {
			t.Fatalf("window %d should be empty", w.Window)
		}
	}
	// All pre-gap state reclaimed; only the new tuple lives.
	if st := ex.Stats(); st.Objects != 1 {
		t.Fatalf("stats after gap: %+v", st)
	}
}

// TestSingleTupleWindows: θc=1 never met by singletons (self excluded), so
// sparse streams produce no clusters but must not leak state.
func TestSingleTupleWindows(t *testing.T) {
	ex, err := New(Config{Dim: 2, ThetaR: 1, ThetaC: 1,
		Window: window.Spec{Win: 1, Slide: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_, emitted, err := ex.Push(geom.Point{float64(i) * 100, 0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range emitted {
			if len(w.Clusters) != 0 {
				t.Fatalf("singleton window %d produced clusters", w.Window)
			}
		}
	}
	if st := ex.Stats(); st.Objects != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCoincidentPoints: many tuples at exactly the same position exercise
// zero-distance neighborships and single-cell clusters.
func TestCoincidentPoints(t *testing.T) {
	ex, err := New(Config{Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window: window.Spec{Win: 20, Slide: 10}})
	if err != nil {
		t.Fatal(err)
	}
	var last *WindowResult
	for i := 0; i < 60; i++ {
		_, emitted, err := ex.Push(geom.Point{1, 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range emitted {
			last = w
		}
	}
	if last == nil || len(last.Clusters) != 1 {
		t.Fatalf("coincident stream: %+v", last)
	}
	c := last.Clusters[0]
	if len(c.Members) != 20 || len(c.Cores) != 20 {
		t.Fatalf("cluster: %d members %d cores", len(c.Members), len(c.Cores))
	}
	if c.Summary.NumCells() != 1 || c.Summary.NumCoreCells() != 1 {
		t.Fatalf("summary: %v", c.Summary)
	}
	if err := c.Summary.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeCoordinates: cells with negative indices must behave
// identically (floor division, offsets, connections).
func TestNegativeCoordinates(t *testing.T) {
	ex, err := New(Config{Dim: 2, ThetaR: 1.0, ThetaC: 2,
		Window: window.Spec{Win: 12, Slide: 12}})
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{
		{-5.1, -5.1}, {-5.3, -5.2}, {-4.9, -5.0}, {-4.7, -4.8},
		{-4.5, -4.6}, {-4.3, -4.4},
	}
	for _, p := range pts {
		if _, _, err := ex.Push(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	w := ex.Flush()
	if len(w.Clusters) != 1 {
		t.Fatalf("clusters: %+v", w.Clusters)
	}
	if got := len(w.Clusters[0].Members); got != 6 {
		t.Fatalf("members: %d", got)
	}
	if err := w.Clusters[0].Summary.Validate(); err != nil {
		t.Fatal(err)
	}
	if comps := w.Clusters[0].Summary.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("summary components: %d", len(comps))
	}
}
