package core

import (
	"math/rand"
	"testing"

	"streamsum/internal/window"
)

// TestMetaDataBounded runs a long stream and asserts the extractor's
// meta-data stays proportional to the live window content — the paper's
// claim that C-SGS maintains no view-count-dependent or history-dependent
// state (§5.2, §8.1). A leak in cells, connections or neighbor references
// would grow without bound here.
func TestMetaDataBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 4,
		Window: window.Spec{Win: 500, Slide: 100}}
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := clusteredStream(rng, 30000, 2)
	var maxCells, maxConns int
	windows := 0
	for _, p := range pts {
		_, emitted, err := ex.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		for range emitted {
			windows++
			st := ex.Stats()
			if st.Objects > int(cfg.Window.Win) {
				t.Fatalf("window %d: %d live objects exceed win=%d", windows, st.Objects, cfg.Window.Win)
			}
			if st.Cells > st.Objects {
				t.Fatalf("window %d: more cells (%d) than objects (%d)", windows, st.Cells, st.Objects)
			}
			if st.Cells > maxCells {
				maxCells = st.Cells
			}
			if st.Connections > maxConns {
				maxConns = st.Connections
			}
		}
	}
	if windows < 200 {
		t.Fatalf("only %d windows", windows)
	}
	// Connection entries are per cell pair within neighbor offsets; in 2-D
	// a cell has at most 24 such neighbors. Allow the full bound.
	if maxConns > maxCells*25 {
		t.Fatalf("connection meta-data disproportionate: %d conns for %d cells", maxConns, maxCells)
	}
	// After the tail of windows at stream end, everything is reclaimed.
	for i := 0; i < cfg.Window.Views()+1; i++ {
		ex.Flush()
	}
	if st := ex.Stats(); st.Objects != 0 || st.Cells != 0 || st.Connections != 0 {
		t.Fatalf("state leak at end of stream: %+v", st)
	}
}
