package core

import (
	"math/rand"
	"testing"

	"streamsum/internal/window"
)

// TestSkipSummariesIdenticalClusters verifies the SkipSummaries ablation
// mode: full representations must be bit-identical with and without
// summarization, and summaries must be absent when skipped.
func TestSkipSummariesIdenticalClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := clusteredStream(rng, 1200, 2)
	base := Config{Dim: 2, ThetaR: 0.5, ThetaC: 4,
		Window: window.Spec{Win: 300, Slide: 100}}

	full := base
	full.SkipSummaries = true

	exA, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	exB, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	var ra, rb []*WindowResult
	for _, p := range pts {
		_, ea, err := exA.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, eb, err := exB.Push(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		ra = append(ra, ea...)
		rb = append(rb, eb...)
	}
	if len(ra) != len(rb) || len(ra) == 0 {
		t.Fatalf("window counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if len(ra[i].Clusters) != len(rb[i].Clusters) {
			t.Fatalf("window %d: cluster counts differ", i)
		}
		for j := range ra[i].Clusters {
			a, b := ra[i].Clusters[j], rb[i].Clusters[j]
			if a.Summary == nil {
				t.Fatal("summarizing extractor produced no summary")
			}
			if b.Summary != nil {
				t.Fatal("SkipSummaries produced a summary")
			}
			if len(a.Members) != len(b.Members) {
				t.Fatalf("member counts differ: %d vs %d", len(a.Members), len(b.Members))
			}
			for k := range a.Members {
				if a.Members[k] != b.Members[k] {
					t.Fatal("members differ")
				}
			}
			for k := range a.Cores {
				if a.Cores[k] != b.Cores[k] {
					t.Fatal("cores differ")
				}
			}
		}
	}
}
