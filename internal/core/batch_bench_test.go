package core

import (
	"fmt"
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/par"
	"streamsum/internal/window"
)

// BenchmarkParallelDiscovery isolates phase 1 of the batched ingest
// pipeline: the read-only range-query fan-out over frozen window state —
// the per-insertion cost the paper's analysis identifies as dominant, and
// the part PushBatch parallelizes. Each iteration discovers one slide's
// worth of tuples against a full window.
func BenchmarkParallelDiscovery(b *testing.B) {
	const (
		win   = 10000
		slide = 1000
	)
	pts := batchStream(win+slide, 2, 3)
	cfg := Config{
		Dim: 2, ThetaR: 0.7, ThetaC: 4,
		Window: window.Spec{Win: win, Slide: slide},
	}
	ex, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ex.PushBatch(pts[:win], nil); err != nil {
		b.Fatal(err)
	}
	batch := pts[win:]
	coords := make([]grid.Coord, len(batch))
	for k, p := range batch {
		coords[k] = ex.geo.CoordOf(p)
	}
	bufs := make([][]*object, len(batch))

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				par.For(workers, len(batch), func(k int) {
					bufs[k] = ex.discoverInto(coords[k], batch[k], bufs[k][:0])
				})
			}
			b.ReportMetric(float64(b.N)*slide/b.Elapsed().Seconds(), "lookups/sec")
		})
	}
}

// BenchmarkPushBatchCore measures the whole two-phase batch path at the
// extractor level (no facade overhead), one slide per iteration.
func BenchmarkPushBatchCore(b *testing.B) {
	const (
		win   = 10000
		slide = 1000
	)
	pts := batchStream(win+64*slide, 2, 9)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := Config{
				Dim: 2, ThetaR: 0.7, ThetaC: 4,
				Window:  window.Spec{Win: win, Slide: slide},
				Workers: workers,
			}
			ex, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			at := func(i int) int { return i % len(pts) }
			pushed := 0
			batch := make([]geom.Point, slide)
			fill := func() {
				for j := range batch {
					batch[j] = pts[at(pushed)]
					pushed++
				}
			}
			for pushed < win {
				fill()
				if _, err := ex.PushBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				fill()
				if _, err := ex.PushBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*slide/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}
