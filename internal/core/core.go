package core

import (
	"fmt"

	"streamsum/internal/conntab"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/sgs"
	"streamsum/internal/trace"
	"streamsum/internal/window"
)

// Config parameterizes a continuous clustering query (Figure 2):
// DETECT DensityBasedClusters FROM stream USING θrange, θcnt IN WINDOWS
// WITH win AND slide.
type Config struct {
	Dim    int
	ThetaR float64
	ThetaC int
	Window window.Spec
	// SkipSummaries suppresses SGS construction at the output stage
	// (Cluster.Summary stays nil). The skeletal-grid meta-data is still
	// maintained — it *is* the extraction mechanism — so this isolates
	// exactly the summarization output cost the paper's ≤6% overhead claim
	// is about. Used by ablation experiments; the public facade always
	// summarizes.
	SkipSummaries bool
	// Workers bounds the fan-out of PushBatch's parallel neighbor-discovery
	// phase. <= 0 means one worker per available CPU (GOMAXPROCS); 1 forces
	// the fully sequential batch path. It has no effect on single-tuple
	// Push, whose one range query search has nothing to fan out.
	Workers int
	// EmitWorkers bounds the fan-out of the output stage's parallel phases
	// (connection pruning, edge-attachment resolution, per-cluster summary
	// construction). <= 0 means one worker per available CPU; 1 forces the
	// fully sequential output stage. Results are byte-identical at every
	// setting — the fan-out only runs over frozen state and writes to
	// pre-assigned slots.
	EmitWorkers int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dim < 1 || c.Dim > grid.MaxDim {
		return fmt.Errorf("core: dimension %d out of range [1,%d]", c.Dim, grid.MaxDim)
	}
	if c.ThetaR <= 0 {
		return fmt.Errorf("core: θr must be positive, got %g", c.ThetaR)
	}
	if c.ThetaC < 1 {
		return fmt.Errorf("core: θc must be at least 1, got %d", c.ThetaC)
	}
	return c.Window.Validate()
}

// Cluster is one extracted cluster in both representations.
type Cluster struct {
	ID      int64
	Members []int64 // tuple ids, sorted (full representation)
	Cores   []int64 // core-object tuple ids, sorted
	Summary *sgs.Summary
}

// WindowResult holds all clusters of one window.
type WindowResult struct {
	Window   int64
	Clusters []*Cluster
}

// Stats reports the extractor's live meta-data sizes.
type Stats struct {
	Objects     int // objects in the current window state
	Cells       int // live skeletal grid cells
	Connections int // live connection entries across all cells
}

// object is one stream tuple inside the window state.
type object struct {
	id       int64
	p        geom.Point
	cell     *cell
	cellIdx  int   // index within cell.objs
	last     int64 // last window this object participates in
	coreLast int64 // predicted last core window (window.Never if none)
	grownSeg int64 // batch segment that last recorded a career growth (dedup)
	tracker  window.CoreTracker
	nbrs     []*object // neighbor refs; pruned lazily (see compactNbrs)
}

// cell is a skeletal grid cell with its live objects and lifespans
// (population is len(objs); location is coord; side length is the
// geometry's). nbrCells caches the occupied cells within neighbor offsets
// so the per-object range query search visits only occupied cells; the
// links are maintained on cell creation and deletion.
//
// conns is the cell's connection table: per adjacent cell one inline
// conntab.Entry whose CoreLast is the symmetric core-core connection
// lifespan (mirrored on both cells) and whose AttachOut is directional —
// the last window in which *this* cell is core and the other cell has an
// object attached to one of this cell's cores. The open-addressing layout
// keeps refresh's dominant probe traffic on contiguous memory instead of
// a pointer-per-entry map.
type cell struct {
	coord    grid.Coord
	objs     []*object
	coreLast int64 // last window this cell is a core cell (Lemma 5.1)
	conns    conntab.Table
	nbrCells []*cell
	// live caches the connections still alive in the window being
	// emitted; it is rebuilt by pruneConns at the start of every output
	// stage so the DFS and cluster assembly iterate a compact slice
	// instead of the conns table (twice).
	live []liveConn
}

// liveConn is one connection surviving into the current window.
type liveConn struct {
	coord     grid.Coord
	coreConn  bool // core-core connection live (Lemma 5.2)
	attachOut bool // this-cell-core attachment live
}

// conn returns the connection entry toward other, creating it with dead
// lifespans on first use. The pointer is valid until the next Upsert or
// Prune on this cell's table (see conntab's pointer-validity contract).
func (c *cell) conn(other grid.Coord) *conntab.Entry {
	e, created := c.conns.Upsert(other)
	if created {
		e.CoreLast, e.AttachOut = window.Never, window.Never
	}
	return e
}

// Extractor is the C-SGS pattern extractor. It is not safe for concurrent
// use; wrap it in the stream executor for pipelined operation.
type Extractor struct {
	cfg Config
	geo *grid.Geometry

	cur     int64 // index of the next window to emit
	lastPos int64 // highest position pushed so far (monotonicity check)
	nextID  int64 // next tuple id
	nextCID int64 // next cluster id
	segSeq  int64 // batch segment counter (career-growth dedup epoch)

	cells  map[grid.Coord]*cell
	expiry map[int64][]*object // window n -> objects with last == n

	objCount int

	// tr is the in-flight batch's span trace (flight recorder category
	// Ingest), set only for the duration of a PushBatch; nil otherwise
	// (single-tuple Push is untraced). Ingestion is single-caller, so no
	// synchronization is needed.
	tr *trace.Trace
}

// New returns an extractor for the given query.
func New(cfg Config) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo, err := grid.NewGeometry(cfg.Dim, cfg.ThetaR)
	if err != nil {
		return nil, err
	}
	return &Extractor{
		cfg:     cfg,
		geo:     geo,
		lastPos: -1,
		cells:   make(map[grid.Coord]*cell),
		expiry:  make(map[int64][]*object),
	}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() Config { return e.cfg }

// Geometry returns the grid geometry (finest resolution, diagonal = θr).
func (e *Extractor) Geometry() *grid.Geometry { return e.geo }

// CurrentWindow returns the index of the next window to be emitted.
func (e *Extractor) CurrentWindow() int64 { return e.cur }

// Stats returns live meta-data counts.
func (e *Extractor) Stats() Stats {
	s := Stats{Cells: len(e.cells), Objects: e.objCount}
	for _, c := range e.cells {
		s.Connections += c.conns.Len()
	}
	return s
}

// Push feeds one tuple. For count-based windows ts is ignored (the arrival
// sequence number is the position); for time-based windows ts is the
// tuple's timestamp and must be non-decreasing. Push returns the id
// assigned to the tuple and the results of any windows that were completed
// by this tuple's arrival (a tuple positioned past a window's end proves
// that window's content is complete).
func (e *Extractor) Push(p geom.Point, ts int64) (int64, []*WindowResult, error) {
	if len(p) != e.cfg.Dim {
		return 0, nil, fmt.Errorf("core: tuple dimension %d != query dimension %d", len(p), e.cfg.Dim)
	}
	id := e.nextID
	e.nextID++
	pos := id
	if e.cfg.Window.Kind == window.TimeBased {
		pos = ts
	}
	if pos < e.lastPos {
		return 0, nil, fmt.Errorf("core: out-of-order position %d after %d", pos, e.lastPos)
	}
	e.lastPos = pos
	MetricTuples.Inc()

	var out []*WindowResult
	for pos >= e.cfg.Window.End(e.cur) {
		out = append(out, e.emit())
	}
	if e.cfg.Window.LastWindow(pos) < e.cur {
		// The tuple's entire lifespan lies in already-emitted windows
		// (possible only after a mid-stream Flush); it can never appear in
		// an output and is dropped.
		return id, out, nil
	}
	e.insert(id, p, pos)
	return id, out, nil
}

// Flush force-emits the current (possibly still-filling) window, e.g. at
// end of stream, and returns its result.
func (e *Extractor) Flush() *WindowResult { return e.emit() }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
