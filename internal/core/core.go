// Package core implements C-SGS (§5), the paper's primary contribution: an
// integrated algorithm that extracts density-based clusters over periodic
// sliding windows and simultaneously maintains their Skeletal Grid
// Summarizations, returning each window's clusters in both full and
// summarized representation.
//
// The design follows the paper closely:
//
//   - The only persistent meta-data besides the raw window content is the
//     set of skeletal grid cells (§5.2): per cell a core-status lifespan
//     and per adjacent-cell connection lifespans.
//   - All expiry-driven changes are pre-computed at insertion using
//     lifespan analysis (§5.3): when an object arrives, its own "career"
//     (core / edge / noise phases, Observation 5.4) and its effect on its
//     neighbors' careers are projected onto future windows, so the
//     expiration stage needs no per-object work at all ("Handling
//     Expirations", §5.4).
//   - Each arriving object triggers exactly one range query search; career
//     prolongs discovered later reuse recorded neighbor references instead
//     of re-running range queries (the paper's auxiliary meta-data, §5.3).
//   - The output stage (§5.4) runs a DFS over the currently-core cells and
//     their live connections, yielding one connected cell group — one SGS —
//     per cluster, from which the full representation is collected.
//
// Where the paper's technical report (unavailable) left the connection
// prolong-propagation unspecified, we keep per-object neighbor references
// (ids only, pruned lazily at the same points the paper prunes its
// bucketed neighbor lists) so that every career growth refreshes the
// affected cell connections; DESIGN.md discusses this substitution.
package core

import (
	"fmt"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/sgs"
	"streamsum/internal/window"
)

// Config parameterizes a continuous clustering query (Figure 2):
// DETECT DensityBasedClusters FROM stream USING θrange, θcnt IN WINDOWS
// WITH win AND slide.
type Config struct {
	Dim    int
	ThetaR float64
	ThetaC int
	Window window.Spec
	// SkipSummaries suppresses SGS construction at the output stage
	// (Cluster.Summary stays nil). The skeletal-grid meta-data is still
	// maintained — it *is* the extraction mechanism — so this isolates
	// exactly the summarization output cost the paper's ≤6% overhead claim
	// is about. Used by ablation experiments; the public facade always
	// summarizes.
	SkipSummaries bool
	// Workers bounds the fan-out of PushBatch's parallel neighbor-discovery
	// phase. <= 0 means one worker per available CPU (GOMAXPROCS); 1 forces
	// the fully sequential batch path. It has no effect on single-tuple
	// Push, whose one range query search has nothing to fan out.
	Workers int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dim < 1 || c.Dim > grid.MaxDim {
		return fmt.Errorf("core: dimension %d out of range [1,%d]", c.Dim, grid.MaxDim)
	}
	if c.ThetaR <= 0 {
		return fmt.Errorf("core: θr must be positive, got %g", c.ThetaR)
	}
	if c.ThetaC < 1 {
		return fmt.Errorf("core: θc must be at least 1, got %d", c.ThetaC)
	}
	return c.Window.Validate()
}

// Cluster is one extracted cluster in both representations.
type Cluster struct {
	ID      int64
	Members []int64 // tuple ids, sorted (full representation)
	Cores   []int64 // core-object tuple ids, sorted
	Summary *sgs.Summary
}

// WindowResult holds all clusters of one window.
type WindowResult struct {
	Window   int64
	Clusters []*Cluster
}

// Stats reports the extractor's live meta-data sizes.
type Stats struct {
	Objects     int // objects in the current window state
	Cells       int // live skeletal grid cells
	Connections int // live connection entries across all cells
}

// object is one stream tuple inside the window state.
type object struct {
	id       int64
	p        geom.Point
	cell     *cell
	cellIdx  int   // index within cell.objs
	last     int64 // last window this object participates in
	coreLast int64 // predicted last core window (window.Never if none)
	grownSeg int64 // batch segment that last recorded a career growth (dedup)
	tracker  window.CoreTracker
	nbrs     []*object // neighbor refs; pruned lazily (see compactNbrs)
}

// connEntry is the connection meta-data one cell keeps about one adjacent
// cell. coreLast is symmetric (mirrored on both cells); attachOut is
// directional: the last window in which *this* cell is core and the other
// cell has an object attached to one of this cell's cores.
type connEntry struct {
	coreLast  int64
	attachOut int64
}

// cell is a skeletal grid cell with its live objects and lifespans
// (population is len(objs); location is coord; side length is the
// geometry's). nbrCells caches the occupied cells within neighbor offsets
// so the per-object range query search visits only occupied cells; the
// links are maintained on cell creation and deletion.
type cell struct {
	coord    grid.Coord
	objs     []*object
	coreLast int64 // last window this cell is a core cell (Lemma 5.1)
	conns    map[grid.Coord]*connEntry
	nbrCells []*cell
	// live caches the connections still alive in the window being
	// emitted; it is rebuilt by pruneConns at the start of every output
	// stage so the DFS and cluster assembly iterate a compact slice
	// instead of the conns map (twice).
	live []liveConn
}

// liveConn is one connection surviving into the current window.
type liveConn struct {
	coord     grid.Coord
	coreConn  bool // core-core connection live (Lemma 5.2)
	attachOut bool // this-cell-core attachment live
}

func (c *cell) conn(other grid.Coord) *connEntry {
	e := c.conns[other]
	if e == nil {
		e = &connEntry{coreLast: window.Never, attachOut: window.Never}
		c.conns[other] = e
	}
	return e
}

// Extractor is the C-SGS pattern extractor. It is not safe for concurrent
// use; wrap it in the stream executor for pipelined operation.
type Extractor struct {
	cfg Config
	geo *grid.Geometry

	cur     int64 // index of the next window to emit
	lastPos int64 // highest position pushed so far (monotonicity check)
	nextID  int64 // next tuple id
	nextCID int64 // next cluster id
	segSeq  int64 // batch segment counter (career-growth dedup epoch)

	cells  map[grid.Coord]*cell
	expiry map[int64][]*object // window n -> objects with last == n

	objCount int
}

// New returns an extractor for the given query.
func New(cfg Config) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo, err := grid.NewGeometry(cfg.Dim, cfg.ThetaR)
	if err != nil {
		return nil, err
	}
	return &Extractor{
		cfg:     cfg,
		geo:     geo,
		lastPos: -1,
		cells:   make(map[grid.Coord]*cell),
		expiry:  make(map[int64][]*object),
	}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() Config { return e.cfg }

// Geometry returns the grid geometry (finest resolution, diagonal = θr).
func (e *Extractor) Geometry() *grid.Geometry { return e.geo }

// CurrentWindow returns the index of the next window to be emitted.
func (e *Extractor) CurrentWindow() int64 { return e.cur }

// Stats returns live meta-data counts.
func (e *Extractor) Stats() Stats {
	s := Stats{Cells: len(e.cells), Objects: e.objCount}
	for _, c := range e.cells {
		s.Connections += len(c.conns)
	}
	return s
}

// Push feeds one tuple. For count-based windows ts is ignored (the arrival
// sequence number is the position); for time-based windows ts is the
// tuple's timestamp and must be non-decreasing. Push returns the id
// assigned to the tuple and the results of any windows that were completed
// by this tuple's arrival (a tuple positioned past a window's end proves
// that window's content is complete).
func (e *Extractor) Push(p geom.Point, ts int64) (int64, []*WindowResult, error) {
	if len(p) != e.cfg.Dim {
		return 0, nil, fmt.Errorf("core: tuple dimension %d != query dimension %d", len(p), e.cfg.Dim)
	}
	id := e.nextID
	e.nextID++
	pos := id
	if e.cfg.Window.Kind == window.TimeBased {
		pos = ts
	}
	if pos < e.lastPos {
		return 0, nil, fmt.Errorf("core: out-of-order position %d after %d", pos, e.lastPos)
	}
	e.lastPos = pos

	var out []*WindowResult
	for pos >= e.cfg.Window.End(e.cur) {
		out = append(out, e.emit())
	}
	if e.cfg.Window.LastWindow(pos) < e.cur {
		// The tuple's entire lifespan lies in already-emitted windows
		// (possible only after a mid-stream Flush); it can never appear in
		// an output and is dropped.
		return id, out, nil
	}
	e.insert(id, p, pos)
	return id, out, nil
}

// Flush force-emits the current (possibly still-filling) window, e.g. at
// end of stream, and returns its result.
func (e *Extractor) Flush() *WindowResult { return e.emit() }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
