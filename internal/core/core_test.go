package core

import (
	"math/rand"
	"sort"
	"testing"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/sgs"
	"streamsum/internal/window"
)

// tupleLog records every pushed tuple so tests can re-derive any window's
// exact content for the oracle.
type tupleLog struct {
	ids []int64
	pts []geom.Point
	pos []int64
}

func (l *tupleLog) add(id int64, p geom.Point, pos int64) {
	l.ids = append(l.ids, id)
	l.pts = append(l.pts, p)
	l.pos = append(l.pos, pos)
}

// windowContent returns the ids and points positioned inside window n.
func (l *tupleLog) windowContent(spec window.Spec, n int64) ([]geom.Point, []int64) {
	var pts []geom.Point
	var ids []int64
	for i := range l.ids {
		if spec.Covers(n, l.pos[i]) {
			pts = append(pts, l.pts[i])
			ids = append(ids, l.ids[i])
		}
	}
	return pts, ids
}

// signature converts a WindowResult into the oracle's canonical form:
// member id lists sorted, clusters ordered by smallest core id.
func signature(r *WindowResult) [][]int64 {
	cls := append([]*Cluster(nil), r.Clusters...)
	sort.Slice(cls, func(i, j int) bool { return cls[i].Cores[0] < cls[j].Cores[0] })
	sig := make([][]int64, len(cls))
	for i, c := range cls {
		sig[i] = c.Members
	}
	return sig
}

// verifyWindow cross-checks one emitted window against the from-scratch
// oracle and validates every SGS invariant.
func verifyWindow(t *testing.T, ex *Extractor, log *tupleLog, r *WindowResult) {
	t.Helper()
	cfg := ex.Config()
	pts, ids := log.windowContent(cfg.Window, r.Window)
	want, err := dbscan.RunCellAttached(pts, ids, dbscan.Params{ThetaR: cfg.ThetaR, ThetaC: cfg.ThetaC}, ex.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	got := signature(r)
	wantSig := want.Signature()
	if !dbscan.EqualSignature(got, wantSig) {
		t.Fatalf("window %d: clusters differ\n got: %v\nwant: %v", r.Window, got, wantSig)
	}
	// Core sets must match the oracle exactly (lifespan predictions, I7).
	oracleCore := want.IsCore
	for _, c := range r.Clusters {
		seen := make(map[int64]bool, len(c.Cores))
		for _, id := range c.Cores {
			if !oracleCore[id] {
				t.Fatalf("window %d: object %d reported core but oracle disagrees", r.Window, id)
			}
			seen[id] = true
		}
		for _, id := range c.Members {
			if oracleCore[id] && !seen[id] {
				// A core object must be reported core in the cluster it
				// belongs to.
				if containsID(c.Cores, id) {
					continue
				}
				t.Fatalf("window %d: core object %d missing from Cores", r.Window, id)
			}
		}
	}
	// SGS invariants.
	for _, c := range r.Clusters {
		s := c.Summary
		if err := s.Validate(); err != nil {
			t.Fatalf("window %d cluster %d: invalid SGS: %v", r.Window, c.ID, err)
		}
		if s.TotalPopulation() != len(c.Members) {
			t.Fatalf("window %d cluster %d: SGS population %d != members %d",
				r.Window, c.ID, s.TotalPopulation(), len(c.Members))
		}
		if s.NumCoreCells() == 0 {
			t.Fatalf("window %d cluster %d: SGS without core cells", r.Window, c.ID)
		}
		// Lemma 4.2 (adapted to exclusive neighbor counting): an edge cell
		// can hold at most θc objects.
		for i := range s.Cells {
			if s.Cells[i].Status == sgs.EdgeCell && int(s.Cells[i].Population) > cfg.ThetaC {
				t.Fatalf("window %d: edge cell population %d > θc=%d",
					r.Window, s.Cells[i].Population, cfg.ThetaC)
			}
		}
		// One cluster — one connected SGS.
		if comps := s.ConnectedComponents(); len(comps) != 1 {
			t.Fatalf("window %d cluster %d: SGS has %d components", r.Window, c.ID, len(comps))
		}
		// Every member lies inside a cell of the SGS (Lemma 4.3).
		memberSet := make(map[int64]bool, len(c.Members))
		for _, id := range c.Members {
			memberSet[id] = true
		}
		for i, id := range log.ids {
			if !memberSet[id] {
				continue
			}
			if s.Find(ex.Geometry().CoordOf(log.pts[i])) == nil {
				t.Fatalf("window %d: member %d not covered by SGS", r.Window, id)
			}
		}
	}
}

func containsID(ids []int64, id int64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// clusteredStream generates a stream with moving gaussian blobs so that
// windows contain clusters that drift, merge, split and dissolve.
func clusteredStream(rng *rand.Rand, n int, dim int) []geom.Point {
	centers := make([][]float64, 4)
	vel := make([][]float64, 4)
	for i := range centers {
		centers[i] = make([]float64, dim)
		vel[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			centers[i][d] = rng.Float64() * 8
			vel[i][d] = (rng.Float64() - 0.5) * 0.02
		}
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.15 { // background noise
			p := make(geom.Point, dim)
			for d := 0; d < dim; d++ {
				p[d] = rng.Float64() * 8
			}
			pts[i] = p
			continue
		}
		c := rng.Intn(len(centers))
		for d := 0; d < dim; d++ {
			centers[c][d] += vel[c][d]
		}
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = centers[c][d] + rng.NormFloat64()*0.35
		}
		pts[i] = p
	}
	return pts
}

func runStream(t *testing.T, cfg Config, pts []geom.Point, tss []int64) (*Extractor, *tupleLog, []*WindowResult) {
	t.Helper()
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := &tupleLog{}
	var results []*WindowResult
	for i, p := range pts {
		var ts int64
		if tss != nil {
			ts = tss[i]
		}
		id, emitted, err := ex.Push(p, ts)
		if err != nil {
			t.Fatal(err)
		}
		pos := id
		if cfg.Window.Kind == window.TimeBased {
			pos = ts
		}
		log.add(id, p, pos)
		results = append(results, emitted...)
	}
	return ex, log, results
}

func TestConfigValidation(t *testing.T) {
	good := Config{Dim: 2, ThetaR: 1, ThetaC: 3, Window: window.Spec{Win: 10, Slide: 5}}
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Dim: 0, ThetaR: 1, ThetaC: 3, Window: window.Spec{Win: 10, Slide: 5}},
		{Dim: 2, ThetaR: 0, ThetaC: 3, Window: window.Spec{Win: 10, Slide: 5}},
		{Dim: 2, ThetaR: 1, ThetaC: 0, Window: window.Spec{Win: 10, Slide: 5}},
		{Dim: 2, ThetaR: 1, ThetaC: 3, Window: window.Spec{Win: 0, Slide: 5}},
		{Dim: 2, ThetaR: 1, ThetaC: 3, Window: window.Spec{Win: 5, Slide: 6}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestEmptyStream(t *testing.T) {
	ex, err := New(Config{Dim: 2, ThetaR: 1, ThetaC: 2, Window: window.Spec{Win: 10, Slide: 10}})
	if err != nil {
		t.Fatal(err)
	}
	r := ex.Flush()
	if r.Window != 0 || len(r.Clusters) != 0 {
		t.Fatalf("empty flush: %+v", r)
	}
	if ex.CurrentWindow() != 1 {
		t.Fatal("window did not advance")
	}
}

func TestPushErrors(t *testing.T) {
	ex, _ := New(Config{Dim: 2, ThetaR: 1, ThetaC: 2, Window: window.Spec{Win: 10, Slide: 10}})
	if _, _, err := ex.Push(geom.Point{1, 2, 3}, 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
	ext, _ := New(Config{Dim: 1, ThetaR: 1, ThetaC: 2,
		Window: window.Spec{Kind: window.TimeBased, Win: 10, Slide: 10}})
	if _, _, err := ext.Push(geom.Point{0}, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ext.Push(geom.Point{0}, 50); err == nil {
		t.Error("out-of-order timestamp accepted")
	}
}

func TestLateTupleDroppedAfterFlush(t *testing.T) {
	ex, _ := New(Config{Dim: 1, ThetaR: 1, ThetaC: 1, Window: window.Spec{Win: 4, Slide: 4}})
	for i := 0; i < 2; i++ {
		if _, _, err := ex.Push(geom.Point{0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	ex.Flush() // window 0 emitted early; ids 2,3 would belong to it only
	if _, _, err := ex.Push(geom.Point{0}, 0); err != nil {
		t.Fatal(err)
	}
	if got := ex.Stats().Objects; got != 0 {
		t.Fatalf("late tuple was inserted: %d live objects", got)
	}
}

func TestTumblingWindowMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window: window.Spec{Win: 200, Slide: 200}}
	pts := clusteredStream(rng, 1200, 2)
	ex, log, results := runStream(t, cfg, pts, nil)
	if len(results) != 5 {
		t.Fatalf("expected 5 complete windows, got %d", len(results))
	}
	for _, r := range results {
		verifyWindow(t, ex, log, r)
	}
}

func TestSlidingWindowMatchesOracle(t *testing.T) {
	// The heart of the reproduction: C-SGS over truly sliding windows must
	// equal a from-scratch re-clustering of every window, across several
	// density parameter settings (the paper's cases 1-3 shape).
	cases := []struct {
		thetaR float64
		thetaC int
		win    int64
		slide  int64
	}{
		{0.4, 5, 300, 50},
		{0.6, 4, 300, 100},
		{0.9, 3, 200, 40},
		{0.5, 6, 250, 250},
		{0.6, 4, 300, 70}, // win not divisible by slide: ragged views
	}
	for ci, pc := range cases {
		rng := rand.New(rand.NewSource(int64(100 + ci)))
		cfg := Config{Dim: 2, ThetaR: pc.thetaR, ThetaC: pc.thetaC,
			Window: window.Spec{Win: pc.win, Slide: pc.slide}}
		pts := clusteredStream(rng, 1500, 2)
		ex, log, results := runStream(t, cfg, pts, nil)
		if len(results) == 0 {
			t.Fatalf("case %d: no windows emitted", ci)
		}
		for _, r := range results {
			verifyWindow(t, ex, log, r)
		}
	}
}

func TestHighDimensionalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := Config{Dim: 4, ThetaR: 0.9, ThetaC: 4,
		Window: window.Spec{Win: 150, Slide: 50}}
	pts := clusteredStream(rng, 700, 4)
	ex, log, results := runStream(t, cfg, pts, nil)
	for _, r := range results {
		verifyWindow(t, ex, log, r)
	}
}

func TestTimeBasedWindowsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 3,
		Window: window.Spec{Kind: window.TimeBased, Win: 100, Slide: 25}}
	pts := clusteredStream(rng, 1200, 2)
	// Fluctuating arrival rate: bursts followed by lulls (the tech-report
	// experiment's shape).
	tss := make([]int64, len(pts))
	ts := int64(0)
	for i := range tss {
		if rng.Float64() < 0.05 {
			ts += int64(rng.Intn(20)) // lull
		} else if rng.Float64() < 0.3 {
			ts++ // steady
		} // else burst: same timestamp
		tss[i] = ts
	}
	ex, log, results := runStream(t, cfg, pts, tss)
	if len(results) == 0 {
		t.Fatal("no windows emitted")
	}
	for _, r := range results {
		verifyWindow(t, ex, log, r)
	}
}

func TestProlongAcrossWindows(t *testing.T) {
	// Deterministic Figure-6 style scenario (count-based, win=4, slide=2,
	// θc=2): an early object q would stop being core once its initial
	// neighbors expire, but late arrivals prolong its core career; the
	// cluster must survive in the later window.
	cfg := Config{Dim: 1, ThetaR: 1.0, ThetaC: 2, Window: window.Spec{Win: 4, Slide: 2}}
	ex, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := &tupleLog{}
	push := func(x float64) []*WindowResult {
		id, emitted, err := ex.Push(geom.Point{x}, 0)
		if err != nil {
			t.Fatal(err)
		}
		log.add(id, geom.Point{x}, id)
		return emitted
	}
	var results []*WindowResult
	// Window 0: ids 0-3 all near x=0 → one cluster.
	results = append(results, push(0.0)...)
	results = append(results, push(0.2)...)
	results = append(results, push(0.4)...) // ids 2,3 survive into window 1
	results = append(results, push(0.6)...)
	// Window 1: ids 2-5; new arrivals keep id 2 and 3 core.
	results = append(results, push(0.5)...)
	results = append(results, push(0.3)...)
	// Complete window 1 and window 2 by pushing past their ends.
	results = append(results, push(50.0)...)
	results = append(results, push(51.0)...)
	results = append(results, push(52.0)...) // forces emit of window 2 as well
	for _, r := range results {
		verifyWindow(t, ex, log, r)
	}
	if len(results) < 2 {
		t.Fatalf("expected at least 2 windows, got %d", len(results))
	}
	// Window 1 must contain a cluster with the prolonged objects 2 and 3.
	w1 := results[1]
	if w1.Window != 1 || len(w1.Clusters) != 1 {
		t.Fatalf("window 1: %+v", w1)
	}
	m := w1.Clusters[0].Members
	if !containsID(m, 2) || !containsID(m, 3) || !containsID(m, 4) || !containsID(m, 5) {
		t.Fatalf("window 1 members = %v", m)
	}
}

func TestStateReclamation(t *testing.T) {
	// After every tuple expires, all cells and objects must be reclaimed.
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 3, Window: window.Spec{Win: 100, Slide: 50}}
	ex, _, _ := runStream(t, cfg, clusteredStream(rng, 500, 2), nil)
	// Push two far-future "driver" tuples... not possible in count-based;
	// instead flush enough windows to expire everything.
	for i := 0; i < 4; i++ {
		ex.Flush()
	}
	st := ex.Stats()
	if st.Objects != 0 || st.Cells != 0 || st.Connections != 0 {
		t.Fatalf("state not reclaimed: %+v", st)
	}
}

func TestClusterIDsMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 3, Window: window.Spec{Win: 200, Slide: 100}}
	_, _, results := runStream(t, cfg, clusteredStream(rng, 1000, 2), nil)
	last := int64(-1)
	for _, r := range results {
		for _, c := range r.Clusters {
			if c.ID <= last {
				t.Fatalf("cluster ids not strictly increasing: %d after %d", c.ID, last)
			}
			last = c.ID
		}
	}
	if last < 0 {
		t.Fatal("no clusters produced")
	}
}

func TestDeterminism(t *testing.T) {
	// Same input stream twice → byte-identical outputs (cluster order,
	// member order, SGS cells).
	rng1 := rand.New(rand.NewSource(9))
	pts := clusteredStream(rng1, 800, 2)
	cfg := Config{Dim: 2, ThetaR: 0.5, ThetaC: 3, Window: window.Spec{Win: 200, Slide: 50}}
	_, _, r1 := runStream(t, cfg, pts, nil)
	_, _, r2 := runStream(t, cfg, pts, nil)
	if len(r1) != len(r2) {
		t.Fatalf("window counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if len(r1[i].Clusters) != len(r2[i].Clusters) {
			t.Fatalf("window %d cluster counts differ", i)
		}
		for j := range r1[i].Clusters {
			a, b := r1[i].Clusters[j], r2[i].Clusters[j]
			if len(a.Members) != len(b.Members) {
				t.Fatalf("cluster member counts differ")
			}
			for k := range a.Members {
				if a.Members[k] != b.Members[k] {
					t.Fatalf("member order differs")
				}
			}
			sa, sb := sgs.Marshal(a.Summary), sgs.Marshal(b.Summary)
			if string(sa) != string(sb) {
				t.Fatalf("SGS encodings differ")
			}
		}
	}
}
