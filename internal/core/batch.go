package core

import (
	"fmt"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/par"
	"streamsum/internal/window"
)

// This file implements the batched ingest path: PushBatch feeds a whole
// slide's worth of tuples through a phased pipeline that fans the
// read-heavy work across cores while keeping every state mutation
// single-writer and the output window-for-window identical to Push.
//
// A batch is cut into segments at window boundaries (emit() runs
// sequentially between segments). Within one segment:
//
// Phase 1 (parallel, read-only): per tuple, the range query search — the
// dominant CPU cost of C-SGS per the paper's cost analysis — runs over
// the frozen window state; neighbors *within* the segment are found
// through a temporary per-segment cell map. Because a new object's career
// depends only on the immutable last-windows of its neighbors
// (Observation 5.4), the phase also builds the object's complete neighbor
// list and CoreTracker and computes its final core career, all on private
// state.
//
// Phase 2 (sequential): cell membership, reverse neighbor wiring, and the
// career growth of *existing* objects (their trackers are shared, so the
// θc-order-statistic updates replay in arrival order, exactly as the
// sequential path performs them).
//
// Phase 3 (sequential): one refresh per touched object — each new object
// plus each existing object whose career grew — using final careers.
//
// Why deferring refresh is exact: cell core-status and connection
// lifespans are pure max-accumulations over career values (Lemmas
// 5.1–5.2), and careers only ever grow. The sequential path's eager
// refreshes contribute a monotone sequence of values to each maximum
// whose last (largest) contribution uses exactly the final careers this
// phase sees; intermediate contributions are subsumed. No output stage
// can observe the difference because emit() only runs between segments,
// after phase 3.

// batchEntry is one admitted tuple of a segment, with its pre-assigned id
// and position.
type batchEntry struct {
	id  int64
	p   geom.Point
	pos int64
}

// segCell is one occupied cell of a segment. The per-cell work — finding
// the occupied existing cells to scan and the segment tuples in
// CanNeighbor cells — is computed once (in parallel across cells) and
// shared by every tuple of the cell, keeping coordinate-keyed map probing
// out of the per-tuple loop.
type segCell struct {
	coord grid.Coord
	idxs  []int32 // segment tuple indices located in this cell (ascending)
	scan  []*cell // occupied existing cells reachable from this cell
	cands []int32 // segment tuple indices in CanNeighbor cells (incl. own)
}

// PushBatch feeds a batch of tuples with semantics identical to calling
// Push for each tuple in order, returning the results of all windows the
// batch completed. tss supplies per-tuple timestamps for time-based
// windows and may be nil for count-based ones (a nil tss under time-based
// windows reads as all-zero timestamps, like Push(p, 0)).
//
// The neighbor-discovery phase fans out across Config.Workers goroutines;
// errors (dimension mismatch, out-of-order position) abort the batch at
// the offending tuple, with every earlier tuple fully applied — again
// matching a sequential Push loop that stops at the first error.
func (e *Extractor) PushBatch(pts []geom.Point, tss []int64) ([]*WindowResult, error) {
	if tss != nil && len(tss) != len(pts) {
		return nil, fmt.Errorf("core: PushBatch got %d timestamps for %d tuples", len(tss), len(pts))
	}
	var out []*WindowResult
	seg := make([]batchEntry, 0, len(pts))
	flush := func() {
		if len(seg) > 0 {
			e.insertSegment(seg)
			seg = seg[:0]
		}
	}
	for i, p := range pts {
		if len(p) != e.cfg.Dim {
			flush()
			return out, fmt.Errorf("core: tuple dimension %d != query dimension %d", len(p), e.cfg.Dim)
		}
		id := e.nextID
		e.nextID++
		pos := id
		if e.cfg.Window.Kind == window.TimeBased {
			pos = 0 // nil tss reads as all-zero timestamps, like Push(p, 0)
			if tss != nil {
				pos = tss[i]
			}
		}
		if pos < e.lastPos {
			flush()
			return out, fmt.Errorf("core: out-of-order position %d after %d", pos, e.lastPos)
		}
		e.lastPos = pos
		if pos >= e.cfg.Window.End(e.cur) {
			flush()
			for pos >= e.cfg.Window.End(e.cur) {
				out = append(out, e.emit())
			}
		}
		if e.cfg.Window.LastWindow(pos) < e.cur {
			// Entire lifespan lies in already-emitted windows (possible only
			// after a mid-stream Flush); dropped, same as Push.
			continue
		}
		seg = append(seg, batchEntry{id: id, p: p, pos: pos})
	}
	flush()
	return out, nil
}

// insertSegment inserts one emission-free run of tuples through the
// three-phase pipeline described in the file comment.
func (e *Extractor) insertSegment(seg []batchEntry) {
	n := len(seg)
	workers := par.DefaultWorkers(e.cfg.Workers)
	if n < 2 || workers == 1 {
		for _, t := range seg {
			e.insert(t.id, t.p, t.pos)
		}
		return
	}
	e.segSeq++

	// Phase 0: materialize the segment's objects (phase 1 reads them
	// cross-tuple for intra-segment careers) and group the segment by
	// occupied cell, in first-touch order. Index lists are ascending.
	objs := make([]*object, n)
	existing := make([][]*object, n)
	tupCell := make([]int32, n)
	var cells []segCell
	cellIdx := make(map[grid.Coord]int32, n)
	for k, t := range seg {
		objs[k] = &object{
			id:       t.id,
			p:        t.p,
			last:     e.cfg.Window.LastWindow(t.pos),
			coreLast: window.Never,
			tracker:  window.NewCoreTracker(e.cfg.ThetaC),
		}
		coord := e.geo.CoordOf(t.p)
		ci, ok := cellIdx[coord]
		if !ok {
			ci = int32(len(cells))
			cellIdx[coord] = ci
			cells = append(cells, segCell{coord: coord})
		}
		cells[ci].idxs = append(cells[ci].idxs, int32(k))
		tupCell[k] = ci
	}

	// Phase 1a (parallel over cells): resolve each occupied segment cell's
	// existing-state scan set and intra-segment candidate set once.
	par.For(workers, len(cells), func(i int) {
		sc := &cells[i]
		e.scanCells(sc.coord, func(c *cell) {
			sc.scan = append(sc.scan, c)
		})
		for j := range cells {
			if e.geo.CanNeighbor(sc.coord, cells[j].coord) {
				sc.cands = append(sc.cands, cells[j].idxs...)
			}
		}
	})

	// Phase 1b (parallel over tuples): the range query searches over the
	// frozen state + private career/neighbor-list construction.
	r2 := e.cfg.ThetaR * e.cfg.ThetaR
	par.For(workers, n, func(k int) {
		o := objs[k]
		p := seg[k].p
		sc := &cells[tupCell[k]]
		var ex []*object
		for _, c := range sc.scan {
			for _, q := range c.objs {
				if geom.DistSq(p, q.p) <= r2 {
					ex = append(ex, q)
				}
			}
		}
		existing[k] = ex
		var local []int32
		for _, m := range sc.cands {
			if int(m) != k && geom.DistSq(p, seg[m].p) <= r2 {
				local = append(local, m)
			}
		}
		o.nbrs = make([]*object, 0, len(ex)+len(local))
		for _, q := range ex {
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		for _, m := range local {
			q := objs[m]
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		o.coreLast = o.tracker.CoreLast(o.last)
	})

	// Phase 2 (sequential): cell membership and shared-state career
	// updates, in arrival order.
	var grown []*object
	for k := range seg {
		o := objs[k]
		coord := cells[tupCell[k]].coord
		c := e.cells[coord]
		if c == nil {
			c = &cell{
				coord:    coord,
				coreLast: window.Never,
				conns:    make(map[grid.Coord]*connEntry),
			}
			e.cells[coord] = c
			for _, off := range e.geo.NeighborOffsets() {
				if off.IsZero() {
					continue
				}
				if nc, ok := e.cells[coord.Add(off)]; ok {
					c.nbrCells = append(c.nbrCells, nc)
					nc.nbrCells = append(nc.nbrCells, c)
				}
			}
		}
		o.cell = c
		o.cellIdx = len(c.objs)
		c.objs = append(c.objs, o)
		e.objCount++
		e.expiry[o.last] = append(e.expiry[o.last], o)

		// Intra-segment pairs were fully handled in phase 1 (both sides'
		// trackers and neighbor lists); only pre-existing neighbors carry
		// shared trackers that must grow in arrival order.
		for _, q := range existing[k] {
			q.nbrs = append(q.nbrs, o)
			if q.tracker.Add(o.last) {
				if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
					q.coreLast = nl
					if q.grownSeg != e.segSeq {
						q.grownSeg = e.segSeq
						grown = append(grown, q)
					}
				}
			}
		}
	}

	// Phase 3 (sequential): propagate final careers to cell statuses and
	// connections, once per touched object.
	for _, o := range objs {
		e.refresh(o)
	}
	for _, q := range grown {
		e.refresh(q)
	}
}
