package core

import (
	"fmt"
	"time"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/par"
	"streamsum/internal/trace"
	"streamsum/internal/window"
)

// This file implements the batched ingest path: PushBatch feeds a whole
// slide's worth of tuples through a phased pipeline that fans the
// read-heavy work across cores while keeping every state mutation
// single-writer and the output window-for-window identical to Push.
//
// A batch is cut into segments at window boundaries (emit() runs
// sequentially between segments). Within one segment:
//
// Phase 1 (parallel, read-only): per tuple, the range query search — the
// dominant CPU cost of C-SGS per the paper's cost analysis — runs over
// the frozen window state; neighbors *within* the segment are found
// through a temporary per-segment cell map. Because a new object's career
// depends only on the immutable last-windows of its neighbors
// (Observation 5.4), the phase also builds the object's complete neighbor
// list and CoreTracker and computes its final core career, all on private
// state.
//
// Phase 2 (sequential): cell membership, reverse neighbor wiring, and the
// career growth of *existing* objects (their trackers are shared, so the
// θc-order-statistic updates replay in arrival order, exactly as the
// sequential path performs them).
//
// Phase 3 (sequential): one refresh per touched object — each new object
// plus each existing object whose career grew — using final careers.
//
// Why deferring refresh is exact: cell core-status and connection
// lifespans are pure max-accumulations over career values (Lemmas
// 5.1–5.2), and careers only ever grow. The sequential path's eager
// refreshes contribute a monotone sequence of values to each maximum
// whose last (largest) contribution uses exactly the final careers this
// phase sees; intermediate contributions are subsumed. No output stage
// can observe the difference because emit() only runs between segments,
// after phase 3.

// BatchEntry is one admitted tuple of an emission-free segment, with its
// pre-assigned id and position. It is the unit of work DriveBatch hands
// to an extractor's segment-insertion callback.
type BatchEntry struct {
	ID  int64
	P   geom.Point
	Pos int64
}

// BatchDriver is the per-extractor surface DriveBatch operates on. Both
// extractors (C-SGS here, Extra-N in internal/extran) share the exact
// same segment-cutting semantics — emission boundaries, error behavior,
// the nil-tss rule, the post-Flush drop check — so the driver loop exists
// once and the extractors supply only their state and callbacks.
type BatchDriver struct {
	Dim    int
	Window window.Spec
	// NextID, LastPos and Cur point at the extractor's id / monotonicity /
	// current-window counters; Emit (which advances *Cur) and Insert are
	// its output stage and segment-insertion pipeline.
	NextID  *int64
	LastPos *int64
	Cur     *int64
	Emit    func() *WindowResult
	Insert  func(seg []BatchEntry)
	// ErrDim and ErrOrder construct the extractor's package-specific
	// errors for a dimension mismatch / out-of-order position.
	ErrDim   func(got, want int) error
	ErrOrder func(pos, last int64) error
}

// DriveBatch feeds a batch of tuples with semantics identical to calling
// the extractor's Push for each tuple in order: the batch is cut into
// emission-free segments at window boundaries (Emit runs between
// segments), each segment goes through Insert as one unit, and errors
// abort the batch at the offending tuple with every earlier tuple fully
// applied — matching a sequential Push loop that stops at the first
// error. A nil tss under time-based windows reads as all-zero timestamps,
// like Push(p, 0).
func DriveBatch(d BatchDriver, pts []geom.Point, tss []int64) ([]*WindowResult, error) {
	MetricBatches.Inc()
	MetricTuples.Add(uint64(len(pts)))
	var out []*WindowResult
	seg := make([]BatchEntry, 0, len(pts))
	flush := func() {
		if len(seg) > 0 {
			d.Insert(seg)
			seg = seg[:0]
		}
	}
	for i, p := range pts {
		if len(p) != d.Dim {
			flush()
			return out, d.ErrDim(len(p), d.Dim)
		}
		id := *d.NextID
		*d.NextID++
		pos := id
		if d.Window.Kind == window.TimeBased {
			pos = 0 // nil tss reads as all-zero timestamps, like Push(p, 0)
			if tss != nil {
				pos = tss[i]
			}
		}
		if pos < *d.LastPos {
			flush()
			return out, d.ErrOrder(pos, *d.LastPos)
		}
		*d.LastPos = pos
		if pos >= d.Window.End(*d.Cur) {
			flush()
			for pos >= d.Window.End(*d.Cur) {
				out = append(out, d.Emit())
			}
		}
		if d.Window.LastWindow(pos) < *d.Cur {
			// Entire lifespan lies in already-emitted windows (possible only
			// after a mid-stream Flush); dropped, same as Push.
			continue
		}
		seg = append(seg, BatchEntry{ID: id, P: p, Pos: pos})
	}
	flush()
	return out, nil
}

// segCell is one occupied cell of a segment. The per-cell work — finding
// the occupied existing cells to scan and the segment tuples in
// CanNeighbor cells — is computed once (in parallel across cells) and
// shared by every tuple of the cell, keeping coordinate-keyed map probing
// out of the per-tuple loop.
type segCell struct {
	coord grid.Coord
	idxs  []int32 // segment tuple indices located in this cell (ascending)
	scan  []*cell // occupied existing cells reachable from this cell
	cands []int32 // segment tuple indices in CanNeighbor cells (incl. own)
}

// PushBatch feeds a batch of tuples with semantics identical to calling
// Push for each tuple in order, returning the results of all windows the
// batch completed. tss supplies per-tuple timestamps for time-based
// windows and may be nil for count-based ones (a nil tss under time-based
// windows reads as all-zero timestamps, like Push(p, 0)).
//
// The neighbor-discovery phase fans out across Config.Workers goroutines;
// errors (dimension mismatch, out-of-order position) abort the batch at
// the offending tuple, with every earlier tuple fully applied — again
// matching a sequential Push loop that stops at the first error.
func (e *Extractor) PushBatch(pts []geom.Point, tss []int64) ([]*WindowResult, error) {
	if tss != nil && len(tss) != len(pts) {
		return nil, fmt.Errorf("core: PushBatch got %d timestamps for %d tuples", len(tss), len(pts))
	}
	e.tr = trace.Default.Start(trace.Ingest, "ingest.batch")
	defer func() { e.tr = nil }()
	out, err := DriveBatch(BatchDriver{
		Dim: e.cfg.Dim, Window: e.cfg.Window,
		NextID: &e.nextID, LastPos: &e.lastPos, Cur: &e.cur,
		Emit: e.emit, Insert: e.insertSegment,
		ErrDim: func(got, want int) error {
			return fmt.Errorf("core: tuple dimension %d != query dimension %d", got, want)
		},
		ErrOrder: func(pos, last int64) error {
			return fmt.Errorf("core: out-of-order position %d after %d", pos, last)
		},
	}, pts, tss)
	FinishBatchTrace(e.tr, len(pts), len(out), err)
	return out, err
}

// FinishBatchTrace stamps the batch-level attributes on an ingest
// trace's root span and commits it to the flight recorder; both
// extractors' PushBatch call it (nil trace = recorder disabled).
func FinishBatchTrace(tr *trace.Trace, tuples, windows int, err error) {
	root := tr.Root()
	root.SetInt("tuples", int64(tuples))
	root.SetInt("windows", int64(windows))
	if err != nil {
		root.SetStr("error", err.Error())
	}
	tr.Finish()
}

// insertSegment inserts one emission-free run of tuples through the
// three-phase pipeline described in the file comment.
func (e *Extractor) insertSegment(seg []BatchEntry) {
	n := len(seg)
	workers := par.DefaultWorkers(e.cfg.Workers)
	if n < 2 || workers == 1 {
		// The sequential fallback has no discovery/apply split; its whole
		// insert loop is shared-state work, recorded under apply.
		sp := e.tr.Start("apply")
		start := time.Now()
		for _, t := range seg {
			e.insert(t.ID, t.P, t.Pos)
		}
		MetricApplySeconds.Observe(time.Since(start))
		sp.SetInt("tuples", int64(n))
		sp.End()
		return
	}
	e.segSeq++
	discoverySpan := e.tr.Start("discovery")
	discoveryStart := time.Now()

	// Phase 0: materialize the segment's objects (phase 1 reads them
	// cross-tuple for intra-segment careers) and group the segment by
	// occupied cell, in first-touch order. Index lists are ascending.
	objs := make([]*object, n)
	existing := make([][]*object, n)
	tupCell := make([]int32, n)
	var cells []segCell
	var coords []grid.Coord
	cellIdx := make(map[grid.Coord]int32, n)
	for k, t := range seg {
		objs[k] = &object{
			id:       t.ID,
			p:        t.P,
			last:     e.cfg.Window.LastWindow(t.Pos),
			coreLast: window.Never,
			tracker:  window.NewCoreTracker(e.cfg.ThetaC),
		}
		coord := e.geo.CoordOf(t.P)
		ci, ok := cellIdx[coord]
		if !ok {
			ci = int32(len(cells))
			cellIdx[coord] = ci
			cells = append(cells, segCell{coord: coord})
			coords = append(coords, coord)
		}
		cells[ci].idxs = append(cells[ci].idxs, int32(k))
		tupCell[k] = ci
	}

	// Phase 1a (parallel over cells): resolve each occupied segment cell's
	// existing-state scan set and intra-segment candidate set once.
	par.For(workers, len(cells), func(i int) {
		sc := &cells[i]
		e.scanCells(sc.coord, func(c *cell) {
			sc.scan = append(sc.scan, c)
		})
		for _, j := range e.geo.NeighborIndices(coords, cellIdx, i) {
			sc.cands = append(sc.cands, cells[j].idxs...)
		}
	})

	// Phase 1b (parallel over tuples): the range query searches over the
	// frozen state + private career/neighbor-list construction.
	r2 := e.cfg.ThetaR * e.cfg.ThetaR
	par.For(workers, n, func(k int) {
		o := objs[k]
		p := seg[k].P
		sc := &cells[tupCell[k]]
		var ex []*object
		for _, c := range sc.scan {
			for _, q := range c.objs {
				if geom.DistSq(p, q.p) <= r2 {
					ex = append(ex, q)
				}
			}
		}
		existing[k] = ex
		var local []int32
		for _, m := range sc.cands {
			if int(m) != k && geom.DistSq(p, seg[m].P) <= r2 {
				local = append(local, m)
			}
		}
		o.nbrs = make([]*object, 0, len(ex)+len(local))
		for _, q := range ex {
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		for _, m := range local {
			q := objs[m]
			o.nbrs = append(o.nbrs, q)
			o.tracker.Add(q.last)
		}
		o.coreLast = o.tracker.CoreLast(o.last)
	})
	MetricDiscoverySeconds.Observe(time.Since(discoveryStart))
	discoverySpan.SetInt("tuples", int64(n))
	discoverySpan.SetInt("cells", int64(len(cells)))
	discoverySpan.End()
	applySpan := e.tr.Start("apply")
	applyStart := time.Now()

	// Phase 2 (sequential): cell membership and shared-state career
	// updates, in arrival order.
	var grown []*object
	for k := range seg {
		o := objs[k]
		coord := cells[tupCell[k]].coord
		c := e.cells[coord]
		if c == nil {
			c = &cell{coord: coord, coreLast: window.Never}
			e.cells[coord] = c
			for _, off := range e.geo.NeighborOffsets() {
				if off.IsZero() {
					continue
				}
				if nc, ok := e.cells[coord.Add(off)]; ok {
					c.nbrCells = append(c.nbrCells, nc)
					nc.nbrCells = append(nc.nbrCells, c)
				}
			}
		}
		o.cell = c
		o.cellIdx = len(c.objs)
		c.objs = append(c.objs, o)
		e.objCount++
		e.expiry[o.last] = append(e.expiry[o.last], o)

		// Intra-segment pairs were fully handled in phase 1 (both sides'
		// trackers and neighbor lists); only pre-existing neighbors carry
		// shared trackers that must grow in arrival order.
		for _, q := range existing[k] {
			q.nbrs = append(q.nbrs, o)
			if q.tracker.Add(o.last) {
				if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
					q.coreLast = nl
					if q.grownSeg != e.segSeq {
						q.grownSeg = e.segSeq
						grown = append(grown, q)
					}
				}
			}
		}
	}

	// Phase 3 (sequential): propagate final careers to cell statuses and
	// connections, once per touched object.
	for _, o := range objs {
		e.refresh(o)
	}
	for _, q := range grown {
		e.refresh(q)
	}
	MetricApplySeconds.Observe(time.Since(applyStart))
	applySpan.SetInt("tuples", int64(n))
	applySpan.SetInt("grown", int64(len(grown)))
	applySpan.End()
}
