package core

import "streamsum/internal/obs"

// Process-wide ingest metrics (obs.Default), shared by both extractors:
// C-SGS records into them here, Extra-N (internal/extran) imports them —
// the two pipelines have the same phase structure, so their telemetry
// shares one set of families. Exported because extran needs them; no
// other package should record into them.
var (
	MetricTuples = obs.NewCounter("sgs_ingest_tuples_total",
		"Tuples admitted, via Push or PushBatch.")
	MetricBatches = obs.NewCounter("sgs_ingest_batches_total",
		"Ingest batches driven (PushBatch calls).")
	MetricWindows = obs.NewCounter("sgs_ingest_windows_total",
		"Windows emitted.")
	MetricClusters = obs.NewCounter("sgs_ingest_clusters_total",
		"Clusters reported across all emitted windows.")
	MetricDiscoverySeconds = obs.NewHistogram("sgs_ingest_discovery_seconds",
		"Per-segment discovery phase wall time (parallel range queries + private career construction).")
	MetricApplySeconds = obs.NewHistogram("sgs_ingest_apply_seconds",
		"Per-segment apply phase wall time (sequential shared-state wiring + refresh).")
	MetricEmitSeconds = obs.NewHistogram("sgs_ingest_emit_seconds",
		"Per-window output-stage wall time (prune, DFS, edge resolve, cluster assembly, expiry).")
)
