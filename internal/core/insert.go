package core

import (
	"streamsum/internal/conntab"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/window"
)

// The "Handling Insertions" stage of C-SGS (§5.4) is split into two halves
// so the batched ingest path (batch.go) can fan the first across cores:
//
//   - discoverInto — the range query search: a pure read of the current
//     window state that collects the new object's neighbors. Safe to run
//     concurrently with other discoverInto calls over frozen state.
//   - applyInsert — lifespan analysis and the status/connection updates on
//     the skeletal grid cells. Single-writer; mutates everything.
//
// Single-tuple insert is the trivial composition of the two.

// insert performs the full insertion stage for one tuple: one range query
// search, lifespan analysis of its own career and the careers it prolongs
// or promotes, and the corresponding status/connection updates.
func (e *Extractor) insert(id int64, p geom.Point, pos int64) {
	coord := e.geo.CoordOf(p)
	e.applyInsert(id, p, pos, coord, e.discoverInto(coord, p, nil))
}

// scanCells visits every occupied cell that can contain neighbors of a
// point in cell coord: the materialized cell plus its occupied-cell
// links, or — when the cell itself is unoccupied — the occupied cells at
// the neighbor offsets (the links only exist on materialized cells).
// Read-only; both the sequential range query search and the batch
// pipeline's per-cell scan resolution go through here so the two paths
// cannot diverge.
func (e *Extractor) scanCells(coord grid.Coord, visit func(*cell)) {
	if c := e.cells[coord]; c != nil {
		visit(c)
		for _, nc := range c.nbrCells {
			visit(nc)
		}
		return
	}
	for _, off := range e.geo.NeighborOffsets() {
		if off.IsZero() {
			continue
		}
		if nc, ok := e.cells[coord.Add(off)]; ok {
			visit(nc)
		}
	}
}

// discoverInto appends to buf every live object within θr of p — the
// single range query search of §5.3 ("we only run one rqs for each new
// object and never re-run rqs for existing objects"), visiting p's own
// cell plus the occupied cells linked to it. It reads but never writes the
// extractor state, so any number of discoverInto calls may run
// concurrently as long as no mutation (applyInsert, emit) overlaps — the
// contract the parallel discovery phase of PushBatch is built on.
func (e *Extractor) discoverInto(coord grid.Coord, p geom.Point, buf []*object) []*object {
	r2 := e.cfg.ThetaR * e.cfg.ThetaR
	e.scanCells(coord, func(nc *cell) {
		for _, q := range nc.objs {
			if geom.DistSq(p, q.p) <= r2 {
				buf = append(buf, q)
			}
		}
	})
	return buf
}

// applyInsert wires one tuple with pre-discovered neighbors cands into the
// window state: cell membership, neighbor references on both sides, career
// (re)computation, and propagation of every career growth to cell statuses
// and connections. It must see cands exactly as a fresh range query over
// the current state would produce them (order is immaterial: all
// downstream lifespan updates are max-accumulations).
func (e *Extractor) applyInsert(id int64, p geom.Point, pos int64, coord grid.Coord, cands []*object) *object {
	o := &object{
		id:       id,
		p:        p,
		last:     e.cfg.Window.LastWindow(pos),
		coreLast: window.Never,
		tracker:  window.NewCoreTracker(e.cfg.ThetaC),
	}

	c := e.cells[coord]
	if c == nil {
		c = &cell{coord: coord, coreLast: window.Never}
		e.cells[coord] = c
		for _, off := range e.geo.NeighborOffsets() {
			if off.IsZero() {
				continue
			}
			if nc, ok := e.cells[coord.Add(off)]; ok {
				c.nbrCells = append(c.nbrCells, nc)
				nc.nbrCells = append(nc.nbrCells, c)
			}
		}
	}
	o.cell = c
	o.cellIdx = len(c.objs)
	c.objs = append(c.objs, o)
	e.objCount++
	e.expiry[o.last] = append(e.expiry[o.last], o)

	var affected []*object
	for _, q := range cands {
		// Record the neighborship on both sides (Observation 5.3: its
		// lifespan is min of the two expiries, implicit in the refs).
		o.nbrs = append(o.nbrs, q)
		q.nbrs = append(q.nbrs, o)
		o.tracker.Add(q.last)
		// The arrival may promote q to core or prolong q's core career
		// (the "status promotion case 2"/"status prolong case 2" of
		// Figure 6).
		if q.tracker.Add(o.last) {
			if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
				q.coreLast = nl
				affected = append(affected, q)
			}
		}
	}
	o.coreLast = o.tracker.CoreLast(o.last)

	// Propagate career changes to cell statuses and connections. The new
	// object is always affected (its pairs carry fresh attachment info even
	// when it never becomes core).
	e.refresh(o)
	for _, q := range affected {
		e.refresh(q)
	}
	return o
}

// refresh re-derives, for every neighbor pair (a, b) incident to a, the
// cell-level lifespans that depend on a's (possibly just grown) career:
//
//   - cell(a)'s core-status lifespan (Lemma 5.1),
//   - the core-core connection lifespan between cell(a) and cell(b)
//     (Lemma 5.2),
//   - the attachment lifespans in both directions (an edge cell is
//     attached to a core cell while some object of it neighbors a live
//     core of that cell, Definition 4.3).
//
// Because careers only ever grow, refreshing on every growth event keeps
// the stored maxima exact; values below the current window are dead
// information and are skipped.
func (e *Extractor) refresh(a *object) {
	ca := a.cell
	if a.coreLast > ca.coreLast {
		ca.coreLast = a.coreLast
	}
	live := 0
	// Neighbor lists are built cell by cell, so consecutive entries
	// usually share a cell; memoizing the last neighbor cell's connection
	// entries turns the dominant Coord-keyed table probes into pointer
	// compares. Entries are still created exactly when a live lifespan
	// needs one, as before. The memoized pointers stay valid because a
	// table Upsert happens at most once per (cell pair, memo lifetime):
	// conntab entry pointers are only invalidated by a *later* Upsert on
	// the same table, and the memo is re-fetched whenever the neighbor
	// cell changes.
	var memoCell *cell
	var memoEA, memoEB *conntab.Entry
	for _, b := range a.nbrs {
		if b.last < e.cur { // expired neighbor: prune lazily
			continue
		}
		a.nbrs[live] = b
		live++
		cb := b.cell
		if cb == ca {
			continue // intra-cell pairs need no connection meta-data
		}
		if cb != memoCell {
			memoCell, memoEA, memoEB = cb, nil, nil
		}
		// Core-core connection (symmetric).
		if v := min64(a.coreLast, b.coreLast); v >= e.cur {
			if memoEA == nil {
				memoEA = ca.conn(cb.coord)
			}
			if v > memoEA.CoreLast {
				memoEA.CoreLast = v
			}
			if memoEB == nil {
				memoEB = cb.conn(ca.coord)
			}
			if v > memoEB.CoreLast {
				memoEB.CoreLast = v
			}
		}
		// a-core side attachment: b stays attached to cell(a) while b is
		// alive and a is core.
		if v := min64(a.coreLast, b.last); v >= e.cur {
			if memoEA == nil {
				memoEA = ca.conn(cb.coord)
			}
			if v > memoEA.AttachOut {
				memoEA.AttachOut = v
			}
		}
		// b-core side attachment.
		if v := min64(b.coreLast, a.last); v >= e.cur {
			if memoEB == nil {
				memoEB = cb.conn(ca.coord)
			}
			if v > memoEB.AttachOut {
				memoEB.AttachOut = v
			}
		}
	}
	a.nbrs = a.nbrs[:live]
}
