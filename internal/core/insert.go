package core

import (
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/window"
)

// insert performs the "Handling Insertions" stage of C-SGS (§5.4): one
// range query search for the new object, lifespan analysis of its own
// career and the careers it prolongs or promotes, and the corresponding
// status/connection updates on the skeletal grid cells.
func (e *Extractor) insert(id int64, p geom.Point, pos int64) {
	o := &object{
		id:       id,
		p:        p,
		last:     e.cfg.Window.LastWindow(pos),
		coreLast: window.Never,
		tracker:  window.NewCoreTracker(e.cfg.ThetaC),
	}

	coord := e.geo.CoordOf(p)
	c := e.cells[coord]
	if c == nil {
		c = &cell{
			coord:    coord,
			coreLast: window.Never,
			conns:    make(map[grid.Coord]*connEntry),
		}
		e.cells[coord] = c
		for _, off := range e.geo.NeighborOffsets() {
			if off.IsZero() {
				continue
			}
			if nc, ok := e.cells[coord.Add(off)]; ok {
				c.nbrCells = append(c.nbrCells, nc)
				nc.nbrCells = append(nc.nbrCells, c)
			}
		}
	}
	o.cell = c
	o.cellIdx = len(c.objs)
	c.objs = append(c.objs, o)
	e.objCount++
	e.expiry[o.last] = append(e.expiry[o.last], o)

	// The single range query search (§5.3: "we only run one rqs for each
	// new object and never re-run rqs for existing objects"), visiting the
	// object's own cell plus the occupied cells linked to it.
	var affected []*object
	r2 := e.cfg.ThetaR * e.cfg.ThetaR
	for ci := -1; ci < len(c.nbrCells); ci++ {
		nc := c
		if ci >= 0 {
			nc = c.nbrCells[ci]
		}
		for _, q := range nc.objs {
			if q == o || geom.DistSq(p, q.p) > r2 {
				continue
			}
			// Record the neighborship on both sides (Observation 5.3: its
			// lifespan is min of the two expiries, implicit in the refs).
			o.nbrs = append(o.nbrs, q)
			q.nbrs = append(q.nbrs, o)
			o.tracker.Add(q.last)
			// The arrival may promote q to core or prolong q's core career
			// (the "status promotion case 2"/"status prolong case 2" of
			// Figure 6).
			if q.tracker.Add(o.last) {
				if nl := q.tracker.CoreLast(q.last); nl > q.coreLast {
					q.coreLast = nl
					affected = append(affected, q)
				}
			}
		}
	}
	o.coreLast = o.tracker.CoreLast(o.last)

	// Propagate career changes to cell statuses and connections. The new
	// object is always affected (its pairs carry fresh attachment info even
	// when it never becomes core).
	e.refresh(o)
	for _, q := range affected {
		e.refresh(q)
	}
}

// refresh re-derives, for every neighbor pair (a, b) incident to a, the
// cell-level lifespans that depend on a's (possibly just grown) career:
//
//   - cell(a)'s core-status lifespan (Lemma 5.1),
//   - the core-core connection lifespan between cell(a) and cell(b)
//     (Lemma 5.2),
//   - the attachment lifespans in both directions (an edge cell is
//     attached to a core cell while some object of it neighbors a live
//     core of that cell, Definition 4.3).
//
// Because careers only ever grow, refreshing on every growth event keeps
// the stored maxima exact; values below the current window are dead
// information and are skipped.
func (e *Extractor) refresh(a *object) {
	ca := a.cell
	if a.coreLast > ca.coreLast {
		ca.coreLast = a.coreLast
	}
	live := 0
	for _, b := range a.nbrs {
		if b.last < e.cur { // expired neighbor: prune lazily
			continue
		}
		a.nbrs[live] = b
		live++
		cb := b.cell
		if cb == ca {
			continue // intra-cell pairs need no connection meta-data
		}
		// Core-core connection (symmetric).
		if v := min64(a.coreLast, b.coreLast); v >= e.cur {
			ea := ca.conn(cb.coord)
			if v > ea.coreLast {
				ea.coreLast = v
			}
			eb := cb.conn(ca.coord)
			if v > eb.coreLast {
				eb.coreLast = v
			}
		}
		// a-core side attachment: b stays attached to cell(a) while b is
		// alive and a is core.
		if v := min64(a.coreLast, b.last); v >= e.cur {
			ea := ca.conn(cb.coord)
			if v > ea.attachOut {
				ea.attachOut = v
			}
		}
		// b-core side attachment.
		if v := min64(b.coreLast, a.last); v >= e.cur {
			eb := cb.conn(ca.coord)
			if v > eb.attachOut {
				eb.attachOut = v
			}
		}
	}
	a.nbrs = a.nbrs[:live]
}
