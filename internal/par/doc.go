// Package par provides the minimal data-parallel primitive the extractors'
// internal fan-outs are built on: a bounded fork-join loop over an index
// range.
//
// Both parallel stages of the system use it — the batched ingest
// pipeline's neighbor-discovery phase (core.PushBatch, extran.PushBatch)
// and the output stage's prune / edge-resolution / per-cluster
// construction phases. It is deliberately tiny — no task stealing, no
// futures — because the work items (one range query search, one cell
// prune, one cluster build) are uniform enough that chunked scheduling
// over an atomic cursor balances well.
//
// # Concurrency
//
// For(workers, n, fn) is a strict fork-join barrier: it returns only after
// every fn(i) has completed, so callers may freely alternate parallel
// phases with sequential ones — each phase sees all effects of the
// previous phase (the WaitGroup edge orders memory). fn must be safe to
// call concurrently for distinct i; the usual pattern is that fn(i) writes
// only to slot i (or to state exclusively owned by item i) and reads only
// state frozen before the For. With workers <= 1, or n too small to be
// worth forking, the loop runs inline on the caller's goroutine — zero
// overhead for sequential configurations, and identical semantics.
package par
