package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 7} {
		for _, n := range []int{0, 1, 31, 32, 33, 100, 1000} {
			seen := make([]atomic.Int32, n)
			For(workers, n, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if DefaultWorkers(0) < 1 || DefaultWorkers(-1) < 1 {
		t.Fatal("defaulted worker count must be >= 1")
	}
}

func TestForConcurrentSum(t *testing.T) {
	const n = 5000
	var sum atomic.Int64
	For(8, n, func(i int) { sum.Add(int64(i)) })
	want := int64(n) * (n - 1) / 2
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}
