package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count setting: values <= 0 mean "one
// worker per available CPU" (GOMAXPROCS).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// chunk is the number of consecutive indices a worker claims per cursor
// bump. Small enough to balance skewed cells, large enough to amortize
// the atomic add.
const chunk = 32

// For runs fn(i) for every i in [0, n), fanned across at most workers
// goroutines, and returns when all calls have completed. fn must be safe
// to call concurrently for distinct i. With workers <= 1 (or tiny n) the
// loop runs inline on the caller's goroutine — zero overhead for the
// sequential configuration.
func For(workers, n int, fn func(i int)) {
	forChunked(workers, n, chunk, fn)
}

// ForEach is For with a claim granularity of one: workers grab single
// indices off the shared cursor, so even a handful of heavyweight,
// skewed tasks (index probes over segments of very different sizes, one
// alignment search per candidate) spread across the workers instead of
// being batched onto one. Use For when n is large and fn is cheap.
func ForEach(workers, n int, fn func(i int)) {
	forChunked(workers, n, 1, fn)
}

func forChunked(workers, n, step int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= step {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(step))) - step
				if lo >= n {
					return
				}
				hi := lo + step
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
