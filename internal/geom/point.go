// Package geom provides the d-dimensional geometric primitives shared by
// every layer of the system: points, Euclidean distances, and minimum
// bounding rectangles (MBRs).
//
// All coordinates are float64. Dimensionality is dynamic (a point is a
// []float64) because the paper's workloads range from 2-D GMTI positions to
// 4-D stock-trade vectors; callers are expected to keep dimensionality
// consistent within one stream.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in d-dimensional space.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point {
	r := p.Clone()
	for i := range q {
		r[i] += q[i]
	}
	return r
}

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point {
	r := p.Clone()
	for i := range q {
		r[i] -= q[i]
	}
	return r
}

// Scale returns p * s component-wise.
func (p Point) Scale(s float64) Point {
	r := p.Clone()
	for i := range r {
		r[i] *= s
	}
	return r
}

// String renders the point as "(x, y, ...)".
func (p Point) String() string {
	s := "("
	for i, v := range p {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%g", v)
	}
	return s + ")"
}

// Dist returns the Euclidean distance between p and q.
// It panics if the dimensionalities differ.
func Dist(p, q Point) float64 {
	return math.Sqrt(DistSq(p, q))
}

// DistSq returns the squared Euclidean distance between p and q.
// Squared distances avoid the Sqrt in the hot range-query path; neighbor
// predicates compare against θr² instead.
func DistSq(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// WithinDist reports whether Dist(p, q) <= r without computing a square
// root. This is the neighbor predicate of Definition 3.1.
func WithinDist(p, q Point, r float64) bool {
	return DistSq(p, q) <= r*r
}

// Centroid returns the arithmetic mean of the given points.
// It returns nil for an empty input.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return nil
	}
	c := make(Point, len(pts[0]))
	for _, p := range pts {
		for i := range c {
			c[i] += p[i]
		}
	}
	inv := 1.0 / float64(len(pts))
	for i := range c {
		c[i] *= inv
	}
	return c
}
