package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{1, 1}, 2 * math.Sqrt2},
		{Point{0}, Point{7}, 7},
		{Point{1, 2, 3, 4}, Point{1, 2, 3, 4}, 0},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSqPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	DistSq(Point{1, 2}, Point{1, 2, 3})
}

func TestWithinDist(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if !WithinDist(p, q, 5) {
		t.Error("distance 5 should be within 5 (inclusive)")
	}
	if WithinDist(p, q, 4.999) {
		t.Error("distance 5 should not be within 4.999")
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); !got.Equal(Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Equal(Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Equal(Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if p.Equal(q) || !p.Equal(Point{1, 2}) || p.Equal(Point{1}) {
		t.Error("Equal misbehaves")
	}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases underlying array")
	}
	if p.String() != "(1, 2)" {
		t.Errorf("String = %q", p.String())
	}
}

func TestCentroid(t *testing.T) {
	if Centroid(nil) != nil {
		t.Error("Centroid(nil) should be nil")
	}
	c := Centroid([]Point{{0, 0}, {2, 4}, {4, 2}})
	if !c.Equal(Point{2, 2}) {
		t.Errorf("Centroid = %v", c)
	}
}

// Property: distance is a metric — symmetric, non-negative, identity, and
// satisfies the triangle inequality.
func TestDistMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() Point {
		p := make(Point, 3)
		for i := range p {
			p[i] = rng.Float64()*200 - 100
		}
		return p
	}
	for i := 0; i < 500; i++ {
		p, q, r := gen(), gen(), gen()
		dpq, dqp := Dist(p, q), Dist(q, p)
		if dpq != dqp {
			t.Fatalf("not symmetric: %v vs %v", dpq, dqp)
		}
		if dpq < 0 {
			t.Fatalf("negative distance %v", dpq)
		}
		if Dist(p, p) != 0 {
			t.Fatalf("Dist(p,p) != 0")
		}
		if Dist(p, r) > dpq+Dist(q, r)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestMBRBasics(t *testing.T) {
	m := MBRFromPoints([]Point{{0, 0}, {2, 3}, {1, -1}})
	if !m.Min.Equal(Point{0, -1}) || !m.Max.Equal(Point{2, 3}) {
		t.Fatalf("MBR corners wrong: %v", m)
	}
	if m.IsEmpty() {
		t.Error("non-empty MBR reported empty")
	}
	if got := m.Volume(); got != 8 {
		t.Errorf("Volume = %v, want 8", got)
	}
	if got := m.Margin(); got != 6 {
		t.Errorf("Margin = %v, want 6", got)
	}
	if !m.Contains(Point{1, 1}) || m.Contains(Point{3, 0}) {
		t.Error("Contains misbehaves")
	}
	if !m.Center().Equal(Point{1, 1}) {
		t.Errorf("Center = %v", m.Center())
	}
}

func TestMBREmpty(t *testing.T) {
	var zero MBR
	if !zero.IsEmpty() {
		t.Error("zero MBR should be empty")
	}
	e := EmptyMBR(2)
	if !e.IsEmpty() {
		t.Error("EmptyMBR should be empty")
	}
	if e.Volume() != 0 || e.Margin() != 0 {
		t.Error("empty MBR should have zero volume and margin")
	}
	if e.Contains(Point{0, 0}) {
		t.Error("empty MBR contains nothing")
	}
	e.ExtendPoint(Point{1, 1})
	if e.IsEmpty() || !e.Contains(Point{1, 1}) {
		t.Error("extending an empty MBR should produce a point MBR")
	}
	var grown MBR
	grown.Extend(e)
	if !grown.Contains(Point{1, 1}) {
		t.Error("Extend from zero MBR failed")
	}
	var stillEmpty MBR
	stillEmpty.Extend(MBR{})
	if !stillEmpty.IsEmpty() {
		t.Error("extending with an empty MBR should be a no-op")
	}
}

func TestMBRIntersects(t *testing.T) {
	a := MBR{Min: Point{0, 0}, Max: Point{2, 2}}
	b := MBR{Min: Point{2, 2}, Max: Point{3, 3}} // touching corner counts
	c := MBR{Min: Point{2.1, 2.1}, Max: Point{3, 3}}
	if !a.Intersects(b) {
		t.Error("touching MBRs should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint MBRs should not intersect")
	}
	if got := a.OverlapVolume(b); got != 0 {
		t.Errorf("corner touch overlap volume = %v", got)
	}
	d := MBR{Min: Point{1, 1}, Max: Point{3, 3}}
	if got := a.OverlapVolume(d); got != 1 {
		t.Errorf("OverlapVolume = %v, want 1", got)
	}
}

func TestMBRUnionEnlargement(t *testing.T) {
	a := MBR{Min: Point{0, 0}, Max: Point{1, 1}}
	b := MBR{Min: Point{2, 0}, Max: Point{3, 1}}
	u := a.Union(b)
	if !u.Min.Equal(Point{0, 0}) || !u.Max.Equal(Point{3, 1}) {
		t.Fatalf("Union = %v", u)
	}
	if got := a.Enlargement(b); got != 2 {
		t.Errorf("Enlargement = %v, want 2", got)
	}
	var zero MBR
	if u2 := zero.Union(a); !u2.Min.Equal(a.Min) || !u2.Max.Equal(a.Max) {
		t.Errorf("Union with empty = %v", u2)
	}
}

func TestMBRMinDist(t *testing.T) {
	m := MBR{Min: Point{0, 0}, Max: Point{2, 2}}
	if got := m.MinDist(Point{1, 1}); got != 0 {
		t.Errorf("inside MinDist = %v", got)
	}
	if got := m.MinDist(Point{5, 2}); got != 3 {
		t.Errorf("MinDist = %v, want 3", got)
	}
	if got := m.MinDist(Point{5, 6}); math.Abs(got-5) > 1e-12 {
		t.Errorf("MinDist = %v, want 5", got)
	}
}

// Property: an MBR built from points contains every input point, and its
// volume never shrinks when extended.
func TestMBRQuickProperties(t *testing.T) {
	f := func(raw [][3]float64) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{r[0], r[1], r[2]}
		}
		m := MBRFromPoints(pts)
		for _, p := range pts {
			if !m.Contains(p) {
				return false
			}
		}
		v := m.Volume()
		m.ExtendPoint(Point{1000, 1000, 1000})
		return m.Volume() >= v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
