package geom

import (
	"fmt"
	"math"
)

// MBR is a minimum bounding rectangle (hyper-rectangle) in d dimensions.
// Min and Max are inclusive corner points. A zero-value MBR (nil corners)
// is "empty" and behaves as the identity for Extend operations.
type MBR struct {
	Min Point
	Max Point
}

// EmptyMBR returns an empty MBR of the given dimensionality, ready to be
// extended. Min starts at +Inf, Max at -Inf.
func EmptyMBR(dim int) MBR {
	m := MBR{Min: make(Point, dim), Max: make(Point, dim)}
	for i := 0; i < dim; i++ {
		m.Min[i] = math.Inf(1)
		m.Max[i] = math.Inf(-1)
	}
	return m
}

// MBRFromPoints returns the tightest MBR covering the given points.
func MBRFromPoints(pts []Point) MBR {
	if len(pts) == 0 {
		return MBR{}
	}
	m := EmptyMBR(len(pts[0]))
	for _, p := range pts {
		m.ExtendPoint(p)
	}
	return m
}

// IsEmpty reports whether the MBR covers nothing.
func (m MBR) IsEmpty() bool {
	if m.Min == nil {
		return true
	}
	for i := range m.Min {
		if m.Min[i] > m.Max[i] {
			return true
		}
	}
	return false
}

// Dim returns the dimensionality of the MBR.
func (m MBR) Dim() int { return len(m.Min) }

// Clone returns an independent copy.
func (m MBR) Clone() MBR {
	return MBR{Min: m.Min.Clone(), Max: m.Max.Clone()}
}

// ExtendPoint grows the MBR in place to cover p.
func (m *MBR) ExtendPoint(p Point) {
	if m.Min == nil {
		m.Min = p.Clone()
		m.Max = p.Clone()
		return
	}
	for i := range p {
		if p[i] < m.Min[i] {
			m.Min[i] = p[i]
		}
		if p[i] > m.Max[i] {
			m.Max[i] = p[i]
		}
	}
}

// Extend grows the MBR in place to cover o.
func (m *MBR) Extend(o MBR) {
	if o.IsEmpty() {
		return
	}
	m.ExtendPoint(o.Min)
	m.ExtendPoint(o.Max)
}

// Contains reports whether p lies inside the MBR (inclusive).
func (m MBR) Contains(p Point) bool {
	if m.IsEmpty() {
		return false
	}
	for i := range p {
		if p[i] < m.Min[i] || p[i] > m.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether m and o overlap (inclusive boundaries).
func (m MBR) Intersects(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() {
		return false
	}
	for i := range m.Min {
		if m.Max[i] < o.Min[i] || o.Max[i] < m.Min[i] {
			return false
		}
	}
	return true
}

// Volume returns the d-dimensional volume of the MBR (product of extents).
// An empty MBR has volume 0.
func (m MBR) Volume() float64 {
	if m.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := range m.Min {
		v *= m.Max[i] - m.Min[i]
	}
	return v
}

// Margin returns the sum of the edge lengths (used by R-tree split
// heuristics).
func (m MBR) Margin() float64 {
	if m.IsEmpty() {
		return 0
	}
	var s float64
	for i := range m.Min {
		s += m.Max[i] - m.Min[i]
	}
	return s
}

// Center returns the center point of the MBR.
func (m MBR) Center() Point {
	c := make(Point, len(m.Min))
	for i := range c {
		c[i] = (m.Min[i] + m.Max[i]) / 2
	}
	return c
}

// Union returns the tightest MBR covering both m and o.
func (m MBR) Union(o MBR) MBR {
	if m.IsEmpty() {
		return o.Clone()
	}
	u := m.Clone()
	u.Extend(o)
	return u
}

// Enlargement returns how much m's volume would grow to also cover o.
// This is the R-tree ChooseLeaf criterion.
func (m MBR) Enlargement(o MBR) float64 {
	return m.Union(o).Volume() - m.Volume()
}

// OverlapVolume returns the volume of the intersection of m and o.
func (m MBR) OverlapVolume(o MBR) float64 {
	if !m.Intersects(o) {
		return 0
	}
	v := 1.0
	for i := range m.Min {
		lo := math.Max(m.Min[i], o.Min[i])
		hi := math.Min(m.Max[i], o.Max[i])
		v *= hi - lo
	}
	return v
}

// MinDist returns the minimum Euclidean distance from p to any point of the
// MBR (0 if p is inside).
func (m MBR) MinDist(p Point) float64 {
	var s float64
	for i := range p {
		var d float64
		switch {
		case p[i] < m.Min[i]:
			d = m.Min[i] - p[i]
		case p[i] > m.Max[i]:
			d = p[i] - m.Max[i]
		}
		s += d * d
	}
	return math.Sqrt(s)
}

// String renders the MBR as "[min .. max]".
func (m MBR) String() string {
	return fmt.Sprintf("[%v .. %v]", m.Min, m.Max)
}
