package sgs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"streamsum/internal/grid"
)

// Binary codec for SGS summaries.
//
// The paper stores a 4-dimensional skeletal grid cell in 23 bytes
// (position 16 B, status 1 B, density 4 B, connections 2 B). Our format
// reaches comparable (usually better) density via delta-coded cell
// coordinates (cells are sorted, so successive coordinates are near each
// other), varint populations, and a connection bitmask over the 3^dim-1
// immediately adjacent offsets plus an explicit list for the rare
// "far" connections (cells up to ⌈√dim⌉ apart can host neighboring
// objects, which the paper's fixed 16-bit vector cannot represent).
//
// Layout:
//
//	magic "SGS1" | dim u8 | level u8 | side f64 | id i64 | window i64 |
//	numCells uvarint | cells...
//
// Each cell:
//
//	coordDelta dim×varint (delta from previous cell's coordinate)
//	flags u8 (bit0 = core, bit1 = has far conns, bit2 = has near mask)
//	population uvarint
//	[near connection bitmask, ceil((3^dim-1)/8) bytes]   if bit2
//	[farCount uvarint, then per conn dim×varint delta from cell coord] if bit1

var magic = [4]byte{'S', 'G', 'S', '1'}

// ErrCorrupt is returned when decoding fails structurally.
var ErrCorrupt = errors.New("sgs: corrupt encoding")

// nearOffsets returns the canonical ordering of the 3^dim-1 nonzero offsets
// in {-1,0,1}^dim, lexicographic by component.
func nearOffsets(dim int) []grid.Coord {
	var out []grid.Coord
	cur := make([]int32, dim)
	var rec func(i int)
	rec = func(i int) {
		if i == dim {
			c := grid.CoordOf(cur...)
			if !c.IsZero() {
				out = append(out, c)
			}
			return
		}
		for v := int32(-1); v <= 1; v++ {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// nearIndex maps an offset to its bitmask index, or -1 if not a near
// offset.
func nearIndex(off grid.Coord) int {
	idx := 0
	for i := uint8(0); i < off.D; i++ {
		v := off.C[i]
		if v < -1 || v > 1 {
			return -1
		}
		idx = idx*3 + int(v+1)
	}
	// idx enumerates {-1,0,1}^dim lexicographically including zero, which
	// sits exactly in the middle; entries after it shift down by one.
	zero := 0
	for i := uint8(0); i < off.D; i++ {
		zero = zero*3 + 1
	}
	switch {
	case idx == zero:
		return -1
	case idx > zero:
		return idx - 1
	default:
		return idx
	}
}

// Marshal encodes the summary.
func Marshal(s *Summary) []byte {
	buf := make([]byte, 0, 32+len(s.Cells)*16)
	buf = append(buf, magic[:]...)
	buf = append(buf, byte(s.Dim), byte(s.Level))
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(s.Side))
	buf = append(buf, f8[:]...)
	binary.LittleEndian.PutUint64(f8[:], uint64(s.ID))
	buf = append(buf, f8[:]...)
	binary.LittleEndian.PutUint64(f8[:], uint64(s.Window))
	buf = append(buf, f8[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(s.Cells)))

	near := nearOffsets(s.Dim)
	maskBytes := (len(near) + 7) / 8
	var prev grid.Coord
	prev.D = uint8(s.Dim)
	for i := range s.Cells {
		c := &s.Cells[i]
		for j := 0; j < s.Dim; j++ {
			buf = binary.AppendVarint(buf, int64(c.Coord.C[j]-prev.C[j]))
		}
		prev = c.Coord

		mask := make([]byte, maskBytes)
		var far []grid.Coord
		hasNear := false
		for _, t := range c.Conns {
			off := t.Sub(c.Coord)
			if ni := nearIndex(off); ni >= 0 {
				mask[ni/8] |= 1 << (ni % 8)
				hasNear = true
			} else {
				far = append(far, off)
			}
		}
		var flags byte
		if c.Status == CoreCell {
			flags |= 1
		}
		if len(far) > 0 {
			flags |= 2
		}
		if hasNear {
			flags |= 4
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(c.Population))
		if hasNear {
			buf = append(buf, mask...)
		}
		if len(far) > 0 {
			buf = binary.AppendUvarint(buf, uint64(len(far)))
			for _, off := range far {
				for j := 0; j < s.Dim; j++ {
					buf = binary.AppendVarint(buf, int64(off.C[j]))
				}
			}
		}
	}
	return buf
}

// EncodedSize returns the size in bytes Marshal would produce.
func EncodedSize(s *Summary) int { return len(Marshal(s)) }

type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.pos+n > len(r.b) {
		r.err = ErrCorrupt
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

// Unmarshal decodes a summary produced by Marshal and validates it.
func Unmarshal(b []byte) (*Summary, error) {
	r := &reader{b: b}
	m := r.bytes(4)
	if r.err != nil || [4]byte(m) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	hdr := r.bytes(2)
	if r.err != nil {
		return nil, r.err
	}
	dim, level := int(hdr[0]), int(hdr[1])
	if dim < 1 || dim > grid.MaxDim {
		return nil, fmt.Errorf("%w: dimension %d", ErrCorrupt, dim)
	}
	sideBits := r.bytes(8)
	idB := r.bytes(8)
	winB := r.bytes(8)
	if r.err != nil {
		return nil, r.err
	}
	s := &Summary{
		Dim:    dim,
		Level:  level,
		Side:   math.Float64frombits(binary.LittleEndian.Uint64(sideBits)),
		ID:     int64(binary.LittleEndian.Uint64(idB)),
		Window: int64(binary.LittleEndian.Uint64(winB)),
	}
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(len(b)) { // cheap sanity bound: >= 1 byte per cell
		return nil, fmt.Errorf("%w: cell count %d too large", ErrCorrupt, n)
	}
	near := nearOffsets(dim)
	maskBytes := (len(near) + 7) / 8
	var prev grid.Coord
	prev.D = uint8(dim)
	s.Cells = make([]Cell, 0, n)
	for i := uint64(0); i < n; i++ {
		var coord grid.Coord
		coord.D = uint8(dim)
		for j := 0; j < dim; j++ {
			coord.C[j] = prev.C[j] + int32(r.varint())
		}
		prev = coord
		flagsB := r.bytes(1)
		if r.err != nil {
			return nil, r.err
		}
		flags := flagsB[0]
		pop := r.uvarint()
		if pop > math.MaxUint32 {
			return nil, fmt.Errorf("%w: population overflow", ErrCorrupt)
		}
		c := Cell{Coord: coord, Population: uint32(pop)}
		if flags&1 != 0 {
			c.Status = CoreCell
		}
		if flags&4 != 0 {
			mask := r.bytes(maskBytes)
			if r.err != nil {
				return nil, r.err
			}
			for ni, off := range near {
				if mask[ni/8]&(1<<(ni%8)) != 0 {
					c.Conns = append(c.Conns, coord.Add(off))
				}
			}
		}
		if flags&2 != 0 {
			fc := r.uvarint()
			if fc > uint64(len(b)) {
				return nil, fmt.Errorf("%w: far conn count", ErrCorrupt)
			}
			for k := uint64(0); k < fc; k++ {
				var off grid.Coord
				off.D = uint8(dim)
				for j := 0; j < dim; j++ {
					off.C[j] = int32(r.varint())
				}
				c.Conns = append(c.Conns, coord.Add(off))
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		s.Cells = append(s.Cells, c)
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.pos)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
