package sgs

import (
	"fmt"

	"streamsum/internal/grid"
)

// Diff describes the structural change between two summaries of the same
// data space (typically two windows' snapshots of one tracked cluster).
// It powers evolution analysis: where a congestion grew, which sub-regions
// dissolved, how the total mass moved.
type Diff struct {
	// Added lists cells occupied in the new summary only; Removed lists
	// cells occupied in the old summary only (sorted by CoordLess).
	Added, Removed []grid.Coord
	// Promoted lists cells that turned from edge to core; Demoted the
	// reverse.
	Promoted, Demoted []grid.Coord
	// PopulationDelta is new total population minus old.
	PopulationDelta int
	// MassShift is the sum of |Δpopulation| over shared cells — how much
	// the internal density distribution rearranged even if totals held.
	MassShift int
	// CellJaccard is |shared| / |union| of the occupied cell sets.
	CellJaccard float64
}

// Compare computes the diff from old to new. Both summaries must be at the
// same resolution (equal Side); otherwise an error is returned.
func Compare(old, new *Summary) (Diff, error) {
	var d Diff
	if old.Side != new.Side || old.Dim != new.Dim {
		return d, fmt.Errorf("sgs: cannot diff summaries with different geometry (side %g/%g, dim %d/%d)",
			old.Side, new.Side, old.Dim, new.Dim)
	}
	shared := 0
	for i := range new.Cells {
		nc := &new.Cells[i]
		oc := old.Find(nc.Coord)
		if oc == nil {
			d.Added = append(d.Added, nc.Coord)
			continue
		}
		shared++
		if oc.Status == EdgeCell && nc.Status == CoreCell {
			d.Promoted = append(d.Promoted, nc.Coord)
		}
		if oc.Status == CoreCell && nc.Status == EdgeCell {
			d.Demoted = append(d.Demoted, nc.Coord)
		}
		delta := int(nc.Population) - int(oc.Population)
		if delta < 0 {
			d.MassShift -= delta
		} else {
			d.MassShift += delta
		}
	}
	for i := range old.Cells {
		if new.Find(old.Cells[i].Coord) == nil {
			d.Removed = append(d.Removed, old.Cells[i].Coord)
		}
	}
	d.PopulationDelta = new.TotalPopulation() - old.TotalPopulation()
	union := old.NumCells() + new.NumCells() - shared
	if union > 0 {
		d.CellJaccard = float64(shared) / float64(union)
	} else {
		d.CellJaccard = 1
	}
	return d, nil
}

// Unchanged reports whether the diff describes two structurally identical
// summaries (same cells, statuses and populations).
func (d Diff) Unchanged() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 &&
		len(d.Promoted) == 0 && len(d.Demoted) == 0 &&
		d.PopulationDelta == 0 && d.MassShift == 0
}

// String renders a one-line human description.
func (d Diff) String() string {
	return fmt.Sprintf("diff{+%d cells, -%d cells, %d promoted, %d demoted, Δpop %+d, shifted %d, jaccard %.2f}",
		len(d.Added), len(d.Removed), len(d.Promoted), len(d.Demoted),
		d.PopulationDelta, d.MassShift, d.CellJaccard)
}
