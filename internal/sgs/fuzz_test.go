package sgs

import (
	"math/rand"
	"testing"
)

// TestUnmarshalFuzz flips random bytes in valid encodings and feeds random
// garbage: Unmarshal must never panic and must either return an error or a
// summary that passes validation (failure injection for the archival
// path — archives are long-lived files, bit rot happens).
func TestUnmarshalFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := randomSummary(t, 99)
	good := Marshal(base)

	for trial := 0; trial < 2000; trial++ {
		var blob []byte
		if trial%4 == 0 {
			// Pure garbage of random length.
			blob = make([]byte, rng.Intn(200))
			rng.Read(blob)
		} else {
			// Corrupted valid encoding: 1-4 random byte flips and/or a
			// random truncation.
			blob = append([]byte(nil), good...)
			flips := 1 + rng.Intn(4)
			for i := 0; i < flips; i++ {
				blob[rng.Intn(len(blob))] ^= byte(1 << rng.Intn(8))
			}
			if rng.Intn(3) == 0 {
				blob = blob[:rng.Intn(len(blob)+1)]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Unmarshal panicked on corrupted input: %v", r)
				}
			}()
			s, err := Unmarshal(blob)
			if err == nil {
				if verr := s.Validate(); verr != nil {
					t.Fatalf("Unmarshal accepted invalid summary: %v", verr)
				}
			}
		}()
	}
}

// TestMarshalDecodeStability re-encodes a decoded summary and requires a
// byte-identical result (canonical encoding — needed so archives can be
// deduplicated and diffed byte-wise).
func TestMarshalDecodeStability(t *testing.T) {
	for seed := int64(50); seed < 56; seed++ {
		s := randomSummary(t, seed)
		b1 := Marshal(s)
		d, err := Unmarshal(b1)
		if err != nil {
			t.Fatal(err)
		}
		b2 := Marshal(d)
		if string(b1) != string(b2) {
			t.Fatalf("seed %d: re-encoding differs", seed)
		}
	}
}
