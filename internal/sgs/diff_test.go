package sgs

import (
	"testing"

	"streamsum/internal/grid"
)

func diffFixture(t *testing.T) (*Summary, *Summary) {
	t.Helper()
	b1 := NewBuilder(2, 1.0)
	b1.AddCell(grid.CoordOf(0, 0), 5, CoreCell)
	b1.AddCell(grid.CoordOf(1, 0), 4, CoreCell)
	b1.AddCell(grid.CoordOf(2, 0), 2, EdgeCell)
	if err := b1.Connect(grid.CoordOf(0, 0), grid.CoordOf(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b1.Connect(grid.CoordOf(1, 0), grid.CoordOf(2, 0)); err != nil {
		t.Fatal(err)
	}
	old := b1.Build(1, 10)

	// New window: cell (2,0) promoted to core and grown, (0,0) gone, a new
	// cell (3,0) appeared, (1,0) lost one object.
	b2 := NewBuilder(2, 1.0)
	b2.AddCell(grid.CoordOf(1, 0), 3, CoreCell)
	b2.AddCell(grid.CoordOf(2, 0), 6, CoreCell)
	b2.AddCell(grid.CoordOf(3, 0), 1, EdgeCell)
	if err := b2.Connect(grid.CoordOf(1, 0), grid.CoordOf(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b2.Connect(grid.CoordOf(2, 0), grid.CoordOf(3, 0)); err != nil {
		t.Fatal(err)
	}
	new := b2.Build(1, 11)
	return old, new
}

func TestCompare(t *testing.T) {
	old, new := diffFixture(t)
	d, err := Compare(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0] != grid.CoordOf(3, 0) {
		t.Fatalf("Added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != grid.CoordOf(0, 0) {
		t.Fatalf("Removed = %v", d.Removed)
	}
	if len(d.Promoted) != 1 || d.Promoted[0] != grid.CoordOf(2, 0) {
		t.Fatalf("Promoted = %v", d.Promoted)
	}
	if len(d.Demoted) != 0 {
		t.Fatalf("Demoted = %v", d.Demoted)
	}
	// Population: old 11, new 10.
	if d.PopulationDelta != -1 {
		t.Fatalf("PopulationDelta = %d", d.PopulationDelta)
	}
	// Shared cells (1,0): 4→3 (|Δ|=1), (2,0): 2→6 (|Δ|=4).
	if d.MassShift != 5 {
		t.Fatalf("MassShift = %d", d.MassShift)
	}
	// Shared 2, union 4.
	if d.CellJaccard != 0.5 {
		t.Fatalf("CellJaccard = %g", d.CellJaccard)
	}
	if d.Unchanged() {
		t.Fatal("changed diff reported unchanged")
	}
	if d.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCompareIdentical(t *testing.T) {
	old, _ := diffFixture(t)
	d, err := Compare(old, old)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Unchanged() {
		t.Fatalf("self diff not unchanged: %v", d)
	}
	if d.CellJaccard != 1 {
		t.Fatalf("self jaccard = %g", d.CellJaccard)
	}
}

func TestCompareGeometryMismatch(t *testing.T) {
	old, _ := diffFixture(t)
	coarse, err := old.Compress(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(old, coarse); err == nil {
		t.Fatal("differing side accepted")
	}
}

func TestCompareEmpty(t *testing.T) {
	a := &Summary{Dim: 2, Side: 1}
	b := &Summary{Dim: 2, Side: 1}
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Unchanged() || d.CellJaccard != 1 {
		t.Fatalf("empty diff: %v", d)
	}
}
