package sgs

import (
	"math"
	"math/rand"
	"testing"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// buildSimple returns a small hand-built valid summary:
//
//	core(0,0) — core(1,0) — edge(2,0)
func buildSimple(t *testing.T) *Summary {
	t.Helper()
	b := NewBuilder(2, 1.0)
	b.AddCell(grid.CoordOf(0, 0), 5, CoreCell)
	b.AddCell(grid.CoordOf(1, 0), 4, CoreCell)
	b.AddCell(grid.CoordOf(2, 0), 2, EdgeCell)
	if err := b.Connect(grid.CoordOf(0, 0), grid.CoordOf(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(grid.CoordOf(1, 0), grid.CoordOf(2, 0)); err != nil {
		t.Fatal(err)
	}
	s := b.Build(7, 42)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuilderAndBasicAccessors(t *testing.T) {
	s := buildSimple(t)
	if s.NumCells() != 3 || s.NumCoreCells() != 2 || s.TotalPopulation() != 11 {
		t.Fatalf("accessors wrong: %v", s)
	}
	if s.ID != 7 || s.Window != 42 {
		t.Fatal("id/window lost")
	}
	c := s.Find(grid.CoordOf(1, 0))
	if c == nil || c.Status != CoreCell || len(c.Conns) != 2 {
		t.Fatalf("Find(1,0) = %+v", c)
	}
	if !c.Connected(grid.CoordOf(0, 0)) || !c.Connected(grid.CoordOf(2, 0)) {
		t.Fatal("Connected lookups failed")
	}
	if c.Connected(grid.CoordOf(5, 5)) {
		t.Fatal("phantom connection")
	}
	if s.Find(grid.CoordOf(9, 9)) != nil {
		t.Fatal("Find returned cell for absent coord")
	}
	// Edge cell records no connections.
	e := s.Find(grid.CoordOf(2, 0))
	if len(e.Conns) != 0 {
		t.Fatal("edge cell must have empty connection list")
	}
}

func TestBuilderRejectsEdgeEdgeAndMissing(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddCell(grid.CoordOf(0, 0), 1, EdgeCell)
	b.AddCell(grid.CoordOf(1, 0), 1, EdgeCell)
	if err := b.Connect(grid.CoordOf(0, 0), grid.CoordOf(1, 0)); err == nil {
		t.Error("edge-edge connection must fail")
	}
	if err := b.Connect(grid.CoordOf(0, 0), grid.CoordOf(9, 9)); err == nil {
		t.Error("connection to missing cell must fail")
	}
	if err := b.Connect(grid.CoordOf(0, 0), grid.CoordOf(0, 0)); err == nil {
		t.Error("self connection must fail")
	}
}

func TestBuilderAccumulatesDuplicateCells(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddCell(grid.CoordOf(0, 0), 2, EdgeCell)
	b.AddCell(grid.CoordOf(0, 0), 3, CoreCell)
	s := b.Build(0, 0)
	if s.NumCells() != 1 || s.TotalPopulation() != 5 || s.Cells[0].Status != CoreCell {
		t.Fatalf("duplicate cell accumulation wrong: %+v", s.Cells)
	}
}

func TestMBRAndCellGeometry(t *testing.T) {
	s := buildSimple(t)
	m := s.MBR()
	if !m.Min.Equal(geom.Point{0, 0}) || !m.Max.Equal(geom.Point{3, 1}) {
		t.Fatalf("MBR = %v", m)
	}
	if got := s.CellVolume(); got != 1 {
		t.Fatalf("CellVolume = %v", got)
	}
	cm := s.CellMBR(grid.CoordOf(2, 0))
	if !cm.Min.Equal(geom.Point{2, 0}) || !cm.Max.Equal(geom.Point{3, 1}) {
		t.Fatalf("CellMBR = %v", cm)
	}
}

func TestFeatures(t *testing.T) {
	s := buildSimple(t)
	f := s.Features()
	if f.Volume != 3 || f.StatusCount != 2 {
		t.Fatalf("features = %+v", f)
	}
	if math.Abs(f.AvgDensity-11.0/3.0) > 1e-12 {
		t.Fatalf("AvgDensity = %v", f.AvgDensity)
	}
	// Connections: cell(0,0): 1, cell(1,0): 2, edge: 0 → avg 1.
	if math.Abs(f.AvgConnectivity-1.0) > 1e-12 {
		t.Fatalf("AvgConnectivity = %v", f.AvgConnectivity)
	}
	v := f.Vector()
	if v[0] != 3 || v[1] != 2 {
		t.Fatalf("Vector = %v", v)
	}
	var empty Summary
	if got := empty.Features(); got != (Features{}) {
		t.Fatalf("empty features = %+v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := buildSimple(t)
	// Edge cell with connections.
	bad := s.Clone()
	for i := range bad.Cells {
		if bad.Cells[i].Status == EdgeCell {
			bad.Cells[i].Conns = []grid.Coord{grid.CoordOf(0, 0)}
		}
	}
	if bad.Validate() == nil {
		t.Error("edge cell with conns passed validation")
	}
	// Dangling connection.
	bad2 := s.Clone()
	bad2.Cells[0].Conns = []grid.Coord{grid.CoordOf(9, 9)}
	if bad2.Validate() == nil {
		t.Error("dangling connection passed validation")
	}
	// Asymmetric core-core connection.
	bad3 := s.Clone()
	c := bad3.Find(grid.CoordOf(0, 0))
	c.Conns = nil
	if bad3.Validate() == nil {
		t.Error("asymmetric connection passed validation")
	}
	// Zero population.
	bad4 := s.Clone()
	bad4.Cells[0].Population = 0
	if bad4.Validate() == nil {
		t.Error("zero population passed validation")
	}
	// Unsorted cells.
	bad5 := s.Clone()
	bad5.Cells[0], bad5.Cells[1] = bad5.Cells[1], bad5.Cells[0]
	if bad5.Validate() == nil {
		t.Error("unsorted cells passed validation")
	}
}

func TestConnectedComponents(t *testing.T) {
	s := buildSimple(t)
	comps := s.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("components = %v", comps)
	}
	// Two disconnected cores.
	b := NewBuilder(2, 1)
	b.AddCell(grid.CoordOf(0, 0), 1, CoreCell)
	b.AddCell(grid.CoordOf(5, 5), 1, CoreCell)
	s2 := b.Build(0, 0)
	if got := len(s2.ConnectedComponents()); got != 2 {
		t.Fatalf("components = %d, want 2", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := buildSimple(t)
	c := s.Clone()
	c.Cells[0].Population = 999
	c.Cells[1].Conns[0] = grid.CoordOf(8, 8)
	if s.Cells[0].Population == 999 || s.Cells[1].Conns[0] == grid.CoordOf(8, 8) {
		t.Fatal("Clone shares memory with original")
	}
}

// TestFromClusterFidelity verifies Lemmas 4.1–4.5 on summaries built from
// real DBSCAN clusters over random data.
func TestFromClusterFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	thetaR := 0.4
	thetaC := 3
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		pts := make([]geom.Point, 0, 200)
		for i := 0; i < 200; i++ {
			cx, cy := float64(rng.Intn(2))*2, float64(rng.Intn(2))*2
			pts = append(pts, geom.Point{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3})
		}
		ids := make([]int64, len(pts))
		for i := range ids {
			ids[i] = int64(i)
		}
		res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: thetaC})
		if err != nil {
			t.Fatal(err)
		}
		for ci, cl := range res.Clusters {
			var cpts []geom.Point
			var isCore []bool
			for _, id := range cl.Members {
				cpts = append(cpts, pts[id])
				isCore = append(isCore, res.IsCore[id])
			}
			s, err := FromCluster(geo, cpts, isCore, int64(ci), 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d cluster %d: %v", trial, ci, err)
			}
			// Lemma 4.4 precondition: population is conserved exactly.
			if s.TotalPopulation() != len(cpts) {
				t.Fatalf("population %d != members %d", s.TotalPopulation(), len(cpts))
			}
			// Lemma 4.2: edge cell population < θc.
			for i := range s.Cells {
				if s.Cells[i].Status == EdgeCell && int(s.Cells[i].Population) >= thetaC {
					t.Fatalf("edge cell with population %d >= θc=%d", s.Cells[i].Population, thetaC)
				}
			}
			// Lemma 4.3: every member is inside the SGS coverage, and every
			// covered cell contains at least one member (so no point of the
			// covered space is farther than θr from a member).
			for _, p := range cpts {
				if s.Find(geo.CoordOf(p)) == nil {
					t.Fatalf("member %v not covered by SGS", p)
				}
			}
			// Lemma 4.5 / connectivity fidelity: the SGS of one cluster is
			// one connected component.
			if comps := s.ConnectedComponents(); len(comps) != 1 {
				t.Fatalf("trial %d cluster %d: SGS has %d components (cells=%d)", trial, ci, len(comps), s.NumCells())
			}
		}
	}
}

func TestRender2D(t *testing.T) {
	s := buildSimple(t)
	out := s.Render()
	if want := "##+"; !containsLine(out, want) {
		t.Fatalf("render missing %q:\n%s", want, out)
	}
	var empty Summary
	if empty.Render() == "" {
		t.Fatal("empty render should say something")
	}
}

func containsLine(s, line string) bool {
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if s[start:i] == line {
				return true
			}
			start = i + 1
		}
	}
	return false
}
