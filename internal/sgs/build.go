package sgs

import (
	"fmt"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// Builder assembles a Summary cell by cell, enforcing the connection rules
// of Definition 4.4 (core-core connections symmetric, attachments recorded
// on the core side only, edge cells never record connections).
type Builder struct {
	dim   int
	side  float64
	level int
	cells map[grid.Coord]*Cell
}

// NewBuilder returns a Builder for summaries with the given dimensionality
// and cell side length.
func NewBuilder(dim int, side float64) *Builder {
	return &Builder{dim: dim, side: side, cells: make(map[grid.Coord]*Cell)}
}

// SetLevel sets the resolution level recorded in the built summary.
func (b *Builder) SetLevel(level int) *Builder { b.level = level; return b }

// AddCell registers a cell. Adding the same coordinate twice accumulates
// population and upgrades status to core if either registration is core.
func (b *Builder) AddCell(coord grid.Coord, population uint32, status Status) {
	c := b.cells[coord]
	if c == nil {
		b.cells[coord] = &Cell{Coord: coord, Population: population, Status: status}
		return
	}
	c.Population += population
	if status == CoreCell {
		c.Status = CoreCell
	}
}

// Connect records a connection between two previously added cells per
// Definition 4.4. Connecting two edge cells is an error ("two edge cells
// are neither connected nor attached"). Duplicate Connect calls are
// allowed and cheap: Build deduplicates once during normalization.
func (b *Builder) Connect(a, c grid.Coord) error {
	ca, cc := b.cells[a], b.cells[c]
	if ca == nil || cc == nil {
		return fmt.Errorf("sgs: connect %v-%v: cell not added", a, c)
	}
	if a == c {
		return fmt.Errorf("sgs: self connection on %v", a)
	}
	switch {
	case ca.Status == CoreCell && cc.Status == CoreCell:
		ca.Conns = append(ca.Conns, c)
		cc.Conns = append(cc.Conns, a)
	case ca.Status == CoreCell:
		ca.Conns = append(ca.Conns, c)
	case cc.Status == CoreCell:
		cc.Conns = append(cc.Conns, a)
	default:
		return fmt.Errorf("sgs: cannot connect two edge cells %v-%v", a, c)
	}
	return nil
}

// Build finalizes the summary.
func (b *Builder) Build(id, window int64) *Summary {
	s := &Summary{ID: id, Window: window, Dim: b.dim, Side: b.side, Level: b.level}
	for _, c := range b.cells {
		s.Cells = append(s.Cells, *c)
	}
	s.Normalize()
	return s
}

// FromCluster builds the Basic SGS (Level 0) of one static cluster given
// its member points and which of them are core objects. It performs the
// neighborship analysis of Definitions 4.2–4.4 from scratch and is used to
// summarize clusters produced outside the integrated C-SGS pipeline (e.g.
// DBSCAN output, test fixtures, to-be-matched clusters supplied by an
// analyst).
func FromCluster(geo *grid.Geometry, pts []geom.Point, isCore []bool, id, window int64) (*Summary, error) {
	if len(pts) != len(isCore) {
		return nil, fmt.Errorf("sgs: pts/isCore length mismatch")
	}
	b := NewBuilder(geo.Dim(), geo.Side())
	ix := grid.NewPointIndex(geo)
	coords := make([]grid.Coord, len(pts))
	for i, p := range pts {
		coords[i] = geo.CoordOf(p)
		ix.Insert(int64(i), p)
	}
	// Cell registration.
	cellHasCore := make(map[grid.Coord]bool)
	for i := range pts {
		if isCore[i] {
			cellHasCore[coords[i]] = true
		}
	}
	counted := make(map[grid.Coord]uint32)
	for i := range pts {
		counted[coords[i]]++
	}
	for coord, pop := range counted {
		st := EdgeCell
		if cellHasCore[coord] {
			st = CoreCell
		}
		b.AddCell(coord, pop, st)
	}
	// Connections: direct core-core connections and core-edge attachments
	// (Definition 4.3), discovered by one range query per core object.
	for i, p := range pts {
		if !isCore[i] {
			continue
		}
		var err error
		ix.RangeQuery(p, func(e grid.Entry) bool {
			j := int(e.ID)
			if j == i || coords[j] == coords[i] {
				return true
			}
			if isCore[j] || !cellHasCore[coords[j]] {
				// core-core direct connection, or attachment of an edge
				// cell (a cell with no core of its own) to this core cell.
				if e := b.Connect(coords[i], coords[j]); e != nil {
					err = e
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return b.Build(id, window), nil
}
