package sgs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// randomSummary builds a structurally valid random summary from a random
// clustered point set.
func randomSummary(t *testing.T, seed int64) *Summary {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	thetaR := 0.5
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	var pts []geom.Point
	for i := 0; i < 150; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64() * 1.5, rng.NormFloat64() * 1.5})
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Skip("random data produced no cluster")
	}
	// Largest cluster.
	best := 0
	for i, c := range res.Clusters {
		if len(c.Members) > len(res.Clusters[best].Members) {
			best = i
		}
	}
	cl := res.Clusters[best]
	var cpts []geom.Point
	var isCore []bool
	for _, id := range cl.Members {
		cpts = append(cpts, pts[id])
		isCore = append(isCore, res.IsCore[id])
	}
	s, err := FromCluster(geo, cpts, isCore, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompressBasics(t *testing.T) {
	s := randomSummary(t, 11)
	c, err := s.Compress(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("compressed summary invalid: %v", err)
	}
	if c.Level != s.Level+1 {
		t.Errorf("Level = %d", c.Level)
	}
	if c.Side != s.Side*3 {
		t.Errorf("Side = %v, want %v", c.Side, s.Side*3)
	}
	// Population conservation (paper: population of a level-n cell is the
	// sum of covered level-(n-1) populations).
	if c.TotalPopulation() != s.TotalPopulation() {
		t.Errorf("population not conserved: %d -> %d", s.TotalPopulation(), c.TotalPopulation())
	}
	// Compression shrinks (or preserves) the cell count.
	if c.NumCells() > s.NumCells() {
		t.Errorf("cells grew: %d -> %d", s.NumCells(), c.NumCells())
	}
	// Core cells survive: each core cell of s maps to a core parent.
	for i := range s.Cells {
		if s.Cells[i].Status != CoreCell {
			continue
		}
		var p grid.Coord
		p.D = s.Cells[i].Coord.D
		for j := uint8(0); j < p.D; j++ {
			p.C[j] = int32(floorDiv(int64(s.Cells[i].Coord.C[j]), 3))
		}
		pc := c.Find(p)
		if pc == nil || pc.Status != CoreCell {
			t.Fatalf("core cell %v lost core status at parent %v", s.Cells[i].Coord, p)
		}
	}
	// Connectivity is preserved: still one component.
	if got := len(c.ConnectedComponents()); got != 1 {
		t.Errorf("compressed summary has %d components", got)
	}
}

func TestCompressRejectsBadTheta(t *testing.T) {
	s := randomSummary(t, 12)
	if _, err := s.Compress(1); err == nil {
		t.Error("theta=1 must fail")
	}
	if _, err := s.Compress(0); err == nil {
		t.Error("theta=0 must fail")
	}
}

func TestCompressToAndEstimate(t *testing.T) {
	s := randomSummary(t, 13)
	l2, err := s.CompressTo(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Level != 2 {
		t.Fatalf("Level = %d", l2.Level)
	}
	if err := l2.Validate(); err != nil {
		t.Fatal(err)
	}
	same, err := s.CompressTo(0, 2)
	if err != nil || same.NumCells() != s.NumCells() {
		t.Fatalf("CompressTo(0) should clone: %v", err)
	}
	if _, err := l2.CompressTo(1, 2); err == nil {
		t.Error("refining to a finer level must fail")
	}
	// EstimateCells predicts the exact next-level cell count (the §6.1
	// budget-aware space predictor).
	l1, err := s.Compress(4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.EstimateCells(4), l1.NumCells(); got != want {
		t.Fatalf("EstimateCells = %d, built = %d", got, want)
	}
	if got := s.EstimateCells(1); got != s.NumCells() {
		t.Fatalf("EstimateCells(theta<2) = %d", got)
	}
}

func TestCompressNegativeCoordinates(t *testing.T) {
	// floorDiv-based parenting must keep cells that straddle the origin in
	// distinct parents consistently.
	b := NewBuilder(1, 1.0)
	b.AddCell(grid.CoordOf(-3), 1, CoreCell)
	b.AddCell(grid.CoordOf(-2), 1, CoreCell)
	b.AddCell(grid.CoordOf(-1), 1, CoreCell)
	b.AddCell(grid.CoordOf(0), 1, CoreCell)
	b.AddCell(grid.CoordOf(1), 1, CoreCell)
	for i := -3; i < 1; i++ {
		if err := b.Connect(grid.CoordOf(int32(i)), grid.CoordOf(int32(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	s := b.Build(0, 0)
	c, err := s.Compress(2)
	if err != nil {
		t.Fatal(err)
	}
	// Parents: -3,-2 -> -2 ; -1 -> -1 ; 0,1 -> 0.  Three cells, connected.
	if c.NumCells() != 3 {
		t.Fatalf("cells = %d, want 3 (%v)", c.NumCells(), c.Cells)
	}
	if got := len(c.ConnectedComponents()); got != 1 {
		t.Fatalf("components = %d", got)
	}
	if c.TotalPopulation() != 5 {
		t.Fatalf("population = %d", c.TotalPopulation())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		s := randomSummary(t, seed)
		s.ID, s.Window = seed*100, seed
		b := Marshal(s)
		if EncodedSize(s) != len(b) {
			t.Fatal("EncodedSize inconsistent with Marshal")
		}
		d, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d.ID != s.ID || d.Window != s.Window || d.Dim != s.Dim || d.Side != s.Side || d.Level != s.Level {
			t.Fatalf("header mismatch: %+v vs %+v", d, s)
		}
		if len(d.Cells) != len(s.Cells) {
			t.Fatalf("cell count %d != %d", len(d.Cells), len(s.Cells))
		}
		for i := range s.Cells {
			a, bb := &s.Cells[i], &d.Cells[i]
			if a.Coord != bb.Coord || a.Population != bb.Population || a.Status != bb.Status || len(a.Conns) != len(bb.Conns) {
				t.Fatalf("cell %d differs: %+v vs %+v", i, a, bb)
			}
			for j := range a.Conns {
				if a.Conns[j] != bb.Conns[j] {
					t.Fatalf("cell %d conn %d differs", i, j)
				}
			}
		}
	}
}

func TestCodecCompactness(t *testing.T) {
	// The paper reports ~23 bytes per 4-d skeletal grid cell; our delta
	// codec should stay in that ballpark (allow 2x headroom) and far below
	// the raw full representation.
	s := randomSummary(t, 31)
	perCell := float64(EncodedSize(s)-38) / float64(s.NumCells())
	if perCell > 46 {
		t.Errorf("per-cell encoding %0.1f bytes exceeds 2x the paper's figure", perCell)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	s := randomSummary(t, 40)
	good := Marshal(s)
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Unmarshal(good[:3]); err == nil {
		t.Error("truncated magic accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Unmarshal(good[:len(good)-2]); err == nil {
		t.Error("truncated body accepted")
	}
	trailing := append(append([]byte(nil), good...), 0, 0)
	if _, err := Unmarshal(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Corrupt the dimension byte.
	bad2 := append([]byte(nil), good...)
	bad2[4] = 99
	if _, err := Unmarshal(bad2); err == nil {
		t.Error("bad dimension accepted")
	}
}

// Property: nearIndex is a bijection between the 3^d-1 near offsets and
// [0, 3^d-1), matching the enumeration order of nearOffsets.
func TestNearIndexBijection(t *testing.T) {
	for dim := 1; dim <= 4; dim++ {
		offs := nearOffsets(dim)
		seen := make(map[int]bool)
		for want, off := range offs {
			got := nearIndex(off)
			if got != want {
				t.Fatalf("dim %d: nearIndex(%v) = %d, want %d", dim, off, got, want)
			}
			if seen[got] {
				t.Fatalf("dim %d: duplicate index %d", dim, got)
			}
			seen[got] = true
		}
		var zero grid.Coord
		zero.D = uint8(dim)
		if nearIndex(zero) != -1 {
			t.Fatal("zero offset must not have an index")
		}
		far := grid.CoordOf(make([]int32, dim)...)
		far.C[0] = 2
		if nearIndex(far) != -1 {
			t.Fatal("far offset must not have a near index")
		}
	}
}

// Property: compressing any valid summary conserves population and yields
// a valid summary.
func TestCompressQuick(t *testing.T) {
	f := func(seed int64, rawTheta uint8) bool {
		theta := int(rawTheta%4) + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(2, 1.0)
		// Random connected blob of core cells plus some fringe edges.
		coords := []grid.Coord{grid.CoordOf(0, 0)}
		b.AddCell(coords[0], uint32(rng.Intn(9))+1, CoreCell)
		for i := 0; i < 30; i++ {
			base := coords[rng.Intn(len(coords))]
			off := grid.CoordOf(int32(rng.Intn(3)-1), int32(rng.Intn(3)-1))
			if off.IsZero() {
				continue
			}
			nc := base.Add(off)
			isNew := true
			for _, c := range coords {
				if c == nc {
					isNew = false
					break
				}
			}
			b.AddCell(nc, uint32(rng.Intn(9))+1, CoreCell)
			if isNew {
				coords = append(coords, nc)
			}
			if err := b.Connect(base, nc); err != nil {
				return false
			}
		}
		s := b.Build(0, 0)
		if s.Validate() != nil {
			return false
		}
		c, err := s.Compress(theta)
		if err != nil {
			return false
		}
		return c.Validate() == nil && c.TotalPopulation() == s.TotalPopulation()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
