// Package sgs defines the Skeletal Grid Summarization data model
// (Definition 4.4): the summarized representation of one density-based
// cluster as a set of skeletal grid cells, each carrying location, side
// length, population, status (core/edge) and connections to neighboring
// skeletal cells.
//
// The package also implements the multi-resolution hierarchy of §6.1
// (hierarchical combination of cells with compression rate θ), the cluster
// features used by the pattern base indices (§7.1), and a compact binary
// codec whose per-cell footprint matches the paper's ~23-byte figure.
package sgs

import (
	"fmt"
	"sort"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// Status of a skeletal grid cell (Definition 4.2). Noise cells are used
// only during cluster computation and never appear in an SGS.
type Status uint8

const (
	// EdgeCell contains no core object but at least one edge object.
	EdgeCell Status = iota
	// CoreCell contains at least one core object.
	CoreCell
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case CoreCell:
		return "core"
	case EdgeCell:
		return "edge"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Cell is one skeletal grid cell (Definition 4.4). The five attributes of
// the paper map as follows: location[] = Coord (scaled by the summary's
// side length), side length = Summary.Side, population = Population,
// status = Status, connection[] = Conns.
//
// Conns lists the coordinates of skeletal cells this cell is connected to:
// for a core cell, the directly-connected core cells plus the edge cells
// attached to it; for an edge cell the list is empty ("for any edge cell,
// all connection indicators are false").
type Cell struct {
	Coord      grid.Coord
	Population uint32
	Status     Status
	Conns      []grid.Coord // sorted by CoordLess; nil for edge cells
}

// Connected reports whether the cell records a connection to coordinate c.
func (cl *Cell) Connected(c grid.Coord) bool {
	i := sort.Search(len(cl.Conns), func(i int) bool { return !CoordLess(cl.Conns[i], c) })
	return i < len(cl.Conns) && cl.Conns[i] == c
}

// Summary is the SGS of one cluster: a set of skeletal grid cells at one
// resolution level. Level 0 is the "Basic SGS" produced by the extractor
// (cell diagonal = θr); higher levels are produced by Compress.
type Summary struct {
	// ID is assigned by the extractor/archiver; unique per archived cluster.
	ID int64
	// Window is the index of the window the cluster was extracted from.
	Window int64
	// Dim is the dimensionality of the data space.
	Dim int
	// Side is the side length of every cell in this summary.
	Side float64
	// Level is the resolution level (0 = basic, finest).
	Level int
	// Cells holds the skeletal grid cells sorted by CoordLess.
	Cells []Cell
}

// CoordLess is the canonical (lexicographic) order on cell coordinates.
func CoordLess(a, b grid.Coord) bool {
	d := a.D
	if b.D < d {
		d = b.D
	}
	for i := uint8(0); i < d; i++ {
		if a.C[i] != b.C[i] {
			return a.C[i] < b.C[i]
		}
	}
	return a.D < b.D
}

// Normalize sorts cells and each cell's connection list into canonical
// order and removes duplicate connections. Builders call it once after
// construction; all other methods assume normalized input.
func (s *Summary) Normalize() {
	sort.Slice(s.Cells, func(i, j int) bool { return CoordLess(s.Cells[i].Coord, s.Cells[j].Coord) })
	for i := range s.Cells {
		c := &s.Cells[i]
		sort.Slice(c.Conns, func(a, b int) bool { return CoordLess(c.Conns[a], c.Conns[b]) })
		// Compact duplicates in place (Connect may blind-append).
		out := c.Conns[:0]
		for _, t := range c.Conns {
			if len(out) == 0 || t != out[len(out)-1] {
				out = append(out, t)
			}
		}
		c.Conns = out
	}
}

// Find returns the cell with the given coordinate, or nil.
func (s *Summary) Find(c grid.Coord) *Cell {
	i := sort.Search(len(s.Cells), func(i int) bool { return !CoordLess(s.Cells[i].Coord, c) })
	if i < len(s.Cells) && s.Cells[i].Coord == c {
		return &s.Cells[i]
	}
	return nil
}

// NumCells returns the number of skeletal grid cells ("volume" feature).
func (s *Summary) NumCells() int { return len(s.Cells) }

// NumCoreCells returns the number of core cells ("status count" feature).
func (s *Summary) NumCoreCells() int {
	n := 0
	for i := range s.Cells {
		if s.Cells[i].Status == CoreCell {
			n++
		}
	}
	return n
}

// TotalPopulation returns the number of member objects summarized
// (Lemma 4.4: cells do not overlap, so populations are exact and additive).
func (s *Summary) TotalPopulation() int {
	n := 0
	for i := range s.Cells {
		n += int(s.Cells[i].Population)
	}
	return n
}

// CellVolume returns the volume of one cell of this summary.
func (s *Summary) CellVolume() float64 {
	v := 1.0
	for i := 0; i < s.Dim; i++ {
		v *= s.Side
	}
	return v
}

// CellMin returns the minimum corner of a cell (the paper's location
// vector).
func (s *Summary) CellMin(c grid.Coord) geom.Point {
	p := make(geom.Point, s.Dim)
	for i := 0; i < s.Dim; i++ {
		p[i] = float64(c.C[i]) * s.Side
	}
	return p
}

// CellMBR returns the bounding box of one cell of this summary.
func (s *Summary) CellMBR(c grid.Coord) geom.MBR {
	lo := s.CellMin(c)
	hi := lo.Clone()
	for i := range hi {
		hi[i] += s.Side
	}
	return geom.MBR{Min: lo, Max: hi}
}

// MBR returns the minimum bounding rectangle of the summarized cluster —
// the locational feature indexed by the pattern base's R-tree (§7.1).
func (s *Summary) MBR() geom.MBR {
	m := geom.EmptyMBR(s.Dim)
	for i := range s.Cells {
		m.Extend(s.CellMBR(s.Cells[i].Coord))
	}
	return m
}

// Features are the four non-locational features of §7.1, used by the
// 4-dimensional feature grid index and the cluster distance metric.
type Features struct {
	// Volume is the number of skeletal grid cells.
	Volume float64
	// StatusCount is the number of core cells.
	StatusCount float64
	// AvgDensity is the average object density over the summarized region:
	// total population divided by total covered volume (Lemma 4.4 makes
	// this exact).
	AvgDensity float64
	// AvgConnectivity is the mean number of recorded connections per cell.
	AvgConnectivity float64
}

// Features computes the non-locational features of the summary.
func (s *Summary) Features() Features {
	n := len(s.Cells)
	if n == 0 {
		return Features{}
	}
	conns := 0
	for i := range s.Cells {
		conns += len(s.Cells[i].Conns)
	}
	return Features{
		Volume:          float64(n),
		StatusCount:     float64(s.NumCoreCells()),
		AvgDensity:      float64(s.TotalPopulation()) / (float64(n) * s.CellVolume()),
		AvgConnectivity: float64(conns) / float64(n),
	}
}

// Vector returns the features as a fixed-order 4-vector (volume, status
// count, avg density, avg connectivity) for the feature grid index.
func (f Features) Vector() [4]float64 {
	return [4]float64{f.Volume, f.StatusCount, f.AvgDensity, f.AvgConnectivity}
}

// FeaturesFromVector is the inverse of Features.Vector, used when the
// features come back from an index that stores them in vector form
// (e.g. a segment footer) rather than from the summary itself.
func FeaturesFromVector(v [4]float64) Features {
	return Features{Volume: v[0], StatusCount: v[1], AvgDensity: v[2], AvgConnectivity: v[3]}
}

// Validate checks structural invariants of a summary: sorted unique cells,
// edge cells with no connections, connections referencing existing cells,
// and core-core connection symmetry. Used by tests and after decoding
// untrusted bytes.
func (s *Summary) Validate() error {
	if s.Dim < 1 || s.Dim > grid.MaxDim {
		return fmt.Errorf("sgs: bad dimension %d", s.Dim)
	}
	if s.Side <= 0 {
		return fmt.Errorf("sgs: non-positive side %g", s.Side)
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		if i > 0 && !CoordLess(s.Cells[i-1].Coord, c.Coord) {
			return fmt.Errorf("sgs: cells not sorted/unique at %d (%v after %v)", i, c.Coord, s.Cells[i-1].Coord)
		}
		if c.Population == 0 {
			return fmt.Errorf("sgs: cell %v has zero population", c.Coord)
		}
		if c.Status == EdgeCell && len(c.Conns) > 0 {
			return fmt.Errorf("sgs: edge cell %v has connections", c.Coord)
		}
		for j, t := range c.Conns {
			if j > 0 && !CoordLess(c.Conns[j-1], t) {
				return fmt.Errorf("sgs: connections of %v not sorted/unique", c.Coord)
			}
			target := s.Find(t)
			if target == nil {
				return fmt.Errorf("sgs: cell %v connected to nonexistent cell %v", c.Coord, t)
			}
			if target.Status == CoreCell && !target.Connected(c.Coord) {
				return fmt.Errorf("sgs: core-core connection %v->%v not symmetric", c.Coord, t)
			}
		}
	}
	return nil
}

// ConnectedComponents partitions the cells into groups connected through
// recorded connections (treating core→edge attachments as links). A
// well-formed SGS of a single cluster has exactly one component.
func (s *Summary) ConnectedComponents() [][]grid.Coord {
	idx := make(map[grid.Coord]int, len(s.Cells))
	for i := range s.Cells {
		idx[s.Cells[i].Coord] = i
	}
	visited := make([]bool, len(s.Cells))
	var comps [][]grid.Coord
	for i := range s.Cells {
		if visited[i] {
			continue
		}
		var comp []grid.Coord
		stack := []int{i}
		visited[i] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, s.Cells[x].Coord)
			for _, t := range s.Cells[x].Conns {
				if j, ok := idx[t]; ok && !visited[j] {
					visited[j] = true
					stack = append(stack, j)
				}
			}
			// Edge cells store no connections; follow reverse links.
			if s.Cells[x].Status == EdgeCell {
				for j := range s.Cells {
					if !visited[j] && s.Cells[j].Connected(s.Cells[x].Coord) {
						visited[j] = true
						stack = append(stack, j)
					}
				}
			}
		}
		sort.Slice(comp, func(a, b int) bool { return CoordLess(comp[a], comp[b]) })
		comps = append(comps, comp)
	}
	return comps
}

// Clone returns a deep copy of the summary.
func (s *Summary) Clone() *Summary {
	c := *s
	c.Cells = make([]Cell, len(s.Cells))
	for i := range s.Cells {
		c.Cells[i] = s.Cells[i]
		if s.Cells[i].Conns != nil {
			c.Cells[i].Conns = append([]grid.Coord(nil), s.Cells[i].Conns...)
		}
	}
	return &c
}

// String gives a one-line description for diagnostics.
func (s *Summary) String() string {
	return fmt.Sprintf("SGS{id=%d win=%d L%d cells=%d core=%d pop=%d}",
		s.ID, s.Window, s.Level, s.NumCells(), s.NumCoreCells(), s.TotalPopulation())
}
