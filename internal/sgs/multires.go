package sgs

import (
	"fmt"

	"streamsum/internal/grid"
)

// This file implements the multi-resolution cluster summarization of §6.1.
//
// The SGS produced by the extractor is the "Basic SGS" at Level 0 (finest
// cells, diagonal = θr). An SGS at level n is built by combining the cells
// of the level n-1 SGS within θ-sized hypercubes: each level-n cell covers
// θ^dim level-(n-1) cells. Per the paper:
//
//   - side length(n) = side length(n-1) × θ,
//   - a level-n cell is core iff at least one covered cell is core,
//   - population(n) = sum of covered populations,
//   - connections(n) are induced by connections between "boundary" covered
//     cells of neighboring level-n cells.
//
// Both the space consumption and the granularity of any level are exactly
// computable in advance (the "budget- and accuracy-aware resolution
// selection" of §6.1); see EstimateCells and the codec's EncodedSize.

// Compress returns the summary at the next resolution level using
// compression rate theta (θ >= 2). The receiver is unchanged.
func (s *Summary) Compress(theta int) (*Summary, error) {
	if theta < 2 {
		return nil, fmt.Errorf("sgs: compression rate must be >= 2, got %d", theta)
	}
	parent := func(c grid.Coord) grid.Coord {
		var p grid.Coord
		p.D = c.D
		for i := uint8(0); i < c.D; i++ {
			p.C[i] = int32(floorDiv(int64(c.C[i]), int64(theta)))
		}
		return p
	}

	type agg struct {
		pop  uint32
		core bool
	}
	cells := make(map[grid.Coord]*agg)
	for i := range s.Cells {
		c := &s.Cells[i]
		p := parent(c.Coord)
		a := cells[p]
		if a == nil {
			a = &agg{}
			cells[p] = a
		}
		a.pop += c.Population
		if c.Status == CoreCell {
			a.core = true
		}
	}

	// Induced links between distinct parents.
	type link struct{ a, b grid.Coord }
	links := make(map[link]bool)
	for i := range s.Cells {
		c := &s.Cells[i]
		pa := parent(c.Coord)
		for _, t := range c.Conns {
			pb := parent(t)
			if pa != pb {
				links[link{pa, pb}] = true
			}
		}
	}

	out := &Summary{
		ID:     s.ID,
		Window: s.Window,
		Dim:    s.Dim,
		Side:   s.Side * float64(theta),
		Level:  s.Level + 1,
	}
	// The links set holds unique (a, b) pairs; Normalize deduplicates the
	// symmetric double-insertions below.
	conns := make(map[grid.Coord][]grid.Coord)
	for l := range links {
		ca, cb := cells[l.a], cells[l.b]
		// Links originate from core cells only, so ca.core always holds;
		// keep the guard for defensive clarity.
		if ca == nil || cb == nil || !ca.core {
			continue
		}
		conns[l.a] = append(conns[l.a], l.b)
		if cb.core {
			// Core-core connections are symmetric (Definition 4.3).
			conns[l.b] = append(conns[l.b], l.a)
		}
	}
	for coord, a := range cells {
		st := EdgeCell
		if a.core {
			st = CoreCell
		}
		cl := Cell{Coord: coord, Population: a.pop, Status: st}
		if st == CoreCell {
			cl.Conns = conns[coord]
		}
		out.Cells = append(out.Cells, cl)
	}
	out.Normalize()
	return out, nil
}

// CompressTo returns the summary compressed to the given level (0 returns
// a clone) applying rate theta repeatedly.
func (s *Summary) CompressTo(level, theta int) (*Summary, error) {
	if level < s.Level {
		return nil, fmt.Errorf("sgs: cannot refine from level %d to %d", s.Level, level)
	}
	cur := s.Clone()
	for cur.Level < level {
		next, err := cur.Compress(theta)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// EstimateCells returns the exact number of skeletal grid cells the summary
// would have at the next level with rate theta, without building it. This
// is the space-consumption predictor used by the archiver's budget-aware
// resolution selection (§6.1).
func (s *Summary) EstimateCells(theta int) int {
	if theta < 2 {
		return len(s.Cells)
	}
	seen := make(map[grid.Coord]bool)
	for i := range s.Cells {
		var p grid.Coord
		c := s.Cells[i].Coord
		p.D = c.D
		for j := uint8(0); j < c.D; j++ {
			p.C[j] = int32(floorDiv(int64(c.C[j]), int64(theta)))
		}
		seen[p] = true
	}
	return len(seen)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
