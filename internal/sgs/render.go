package sgs

import (
	"fmt"
	"strings"
)

// Render draws a 2-D summary as ASCII art: '#' for core cells, '+' for
// edge cells, '.' for empty space. It is used by sgstool and the examples
// to let a human inspect a summarized cluster in a terminal, standing in
// for the ViStream visual frontend referenced by the paper (§8.3).
// Summaries with more than two dimensions are rendered as their projection
// onto the first two dimensions.
func (s *Summary) Render() string {
	if len(s.Cells) == 0 {
		return "(empty summary)\n"
	}
	minX, maxX := s.Cells[0].Coord.C[0], s.Cells[0].Coord.C[0]
	minY, maxY := s.Cells[0].Coord.C[1], s.Cells[0].Coord.C[1]
	if s.Dim == 1 {
		minY, maxY = 0, 0
	}
	type key struct{ x, y int32 }
	core := make(map[key]bool)
	edge := make(map[key]bool)
	for i := range s.Cells {
		c := &s.Cells[i]
		x := c.Coord.C[0]
		var y int32
		if s.Dim > 1 {
			y = c.Coord.C[1]
		}
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
		k := key{x, y}
		if c.Status == CoreCell {
			core[k] = true
		} else if !core[k] {
			edge[k] = true
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", s.String())
	for y := maxY; y >= minY; y-- {
		for x := minX; x <= maxX; x++ {
			switch {
			case core[key{x, y}]:
				sb.WriteByte('#')
			case edge[key{x, y}]:
				sb.WriteByte('+')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
