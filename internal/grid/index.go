package grid

import (
	"streamsum/internal/geom"
)

// Entry is a point stored in a PointIndex, identified by an opaque id.
type Entry struct {
	ID int64
	P  geom.Point
}

// pcell is one occupied cell with cached links to the occupied cells in
// its neighbor offsets. Maintaining the links costs one offset scan per
// cell creation; range queries then visit only occupied cells, which in
// high dimensions is far cheaper than probing all (2·reach+1)^dim offsets
// per query.
type pcell struct {
	coord   Coord
	entries []Entry
	nbrs    []*pcell // occupied cells within neighbor offsets, excluding self
}

// PointIndex is a grid-backed spatial index supporting insertion, removal
// and θr range queries. It is the range-query-search substrate used by the
// non-integrated algorithms (static DBSCAN, Extra-N, RSP generation); C-SGS
// embeds the same cell structure directly in its skeletal grid cells.
//
// PointIndex is single-writer with a read-only concurrent query path; see
// the package documentation for the full concurrency contract.
type PointIndex struct {
	geo   *Geometry
	cells map[Coord]*pcell
	size  int
}

// NewPointIndex returns an empty index over the given geometry.
func NewPointIndex(geo *Geometry) *PointIndex {
	return &PointIndex{geo: geo, cells: make(map[Coord]*pcell)}
}

// Geometry returns the geometry the index was built with.
func (ix *PointIndex) Geometry() *Geometry { return ix.geo }

// Len returns the number of stored points.
func (ix *PointIndex) Len() int { return ix.size }

func (ix *PointIndex) cellOf(c Coord, create bool) *pcell {
	pc := ix.cells[c]
	if pc != nil || !create {
		return pc
	}
	pc = &pcell{coord: c}
	ix.cells[c] = pc
	for _, off := range ix.geo.NeighborOffsets() {
		if off.IsZero() {
			continue
		}
		if nb, ok := ix.cells[c.Add(off)]; ok {
			pc.nbrs = append(pc.nbrs, nb)
			nb.nbrs = append(nb.nbrs, pc)
		}
	}
	return pc
}

func (ix *PointIndex) dropCell(pc *pcell) {
	for _, nb := range pc.nbrs {
		for i, x := range nb.nbrs {
			if x == pc {
				nb.nbrs[i] = nb.nbrs[len(nb.nbrs)-1]
				nb.nbrs = nb.nbrs[:len(nb.nbrs)-1]
				break
			}
		}
	}
	delete(ix.cells, pc.coord)
}

// Insert adds a point under the given id. Duplicate ids are the caller's
// responsibility.
func (ix *PointIndex) Insert(id int64, p geom.Point) {
	pc := ix.cellOf(ix.geo.CoordOf(p), true)
	pc.entries = append(pc.entries, Entry{ID: id, P: p})
	ix.size++
}

// BulkInsert adds a batch of entries. It is equivalent to calling Insert
// for each entry in order but amortizes the cell lookup across runs of
// spatially adjacent entries — streams are usually locality-heavy, so
// consecutive tuples often land in the same cell.
func (ix *PointIndex) BulkInsert(entries []Entry) {
	var pc *pcell
	var have Coord
	for _, en := range entries {
		c := ix.geo.CoordOf(en.P)
		if pc == nil || c != have {
			pc = ix.cellOf(c, true)
			have = c
		}
		pc.entries = append(pc.entries, en)
		ix.size++
	}
}

// Remove deletes the entry with the given id located at p. It returns true
// if an entry was removed.
func (ix *PointIndex) Remove(id int64, p geom.Point) bool {
	pc := ix.cellOf(ix.geo.CoordOf(p), false)
	if pc == nil {
		return false
	}
	for i := range pc.entries {
		if pc.entries[i].ID == id {
			pc.entries[i] = pc.entries[len(pc.entries)-1]
			pc.entries = pc.entries[:len(pc.entries)-1]
			if len(pc.entries) == 0 {
				ix.dropCell(pc)
			}
			ix.size--
			return true
		}
	}
	return false
}

// RangeQuery visits every stored entry within distance θr (the geometry's
// radius, inclusive) of q, including an entry at exactly q's position.
// Iteration stops early if visit returns false.
func (ix *PointIndex) RangeQuery(q geom.Point, visit func(Entry) bool) {
	r2 := ix.geo.Radius() * ix.geo.Radius()
	scan := func(pc *pcell) bool {
		for _, e := range pc.entries {
			if geom.DistSq(q, e.P) <= r2 {
				if !visit(e) {
					return false
				}
			}
		}
		return true
	}
	center := ix.cellOf(ix.geo.CoordOf(q), false)
	if center == nil {
		// The query point's own cell is unoccupied; fall back to probing
		// the offsets (queries are usually for stored points, so this path
		// is rare).
		c := ix.geo.CoordOf(q)
		for _, off := range ix.geo.NeighborOffsets() {
			if pc, ok := ix.cells[c.Add(off)]; ok {
				if !scan(pc) {
					return
				}
			}
		}
		return
	}
	if !scan(center) {
		return
	}
	for _, nb := range center.nbrs {
		if !scan(nb) {
			return
		}
	}
}

// CellScan visits the entry slice of every occupied cell that can contain
// points within θr of a point in cell c, including c's own cell. Like
// RangeQuery it is part of the read-only path; the batched ingest pipeline
// calls it once per occupied segment cell and shares the result across
// that cell's tuples, hoisting the offset probing out of the per-tuple
// loop. Iteration stops early if visit returns false.
func (ix *PointIndex) CellScan(c Coord, visit func([]Entry) bool) {
	if pc := ix.cells[c]; pc != nil {
		if !visit(pc.entries) {
			return
		}
		for _, nb := range pc.nbrs {
			if !visit(nb.entries) {
				return
			}
		}
		return
	}
	for _, off := range ix.geo.NeighborOffsets() {
		if pc, ok := ix.cells[c.Add(off)]; ok {
			if !visit(pc.entries) {
				return
			}
		}
	}
}

// Neighbors returns the ids of all entries within θr of q, excluding the
// entry with id self (pass a negative id to exclude nothing).
func (ix *PointIndex) Neighbors(q geom.Point, self int64) []int64 {
	var out []int64
	ix.RangeQuery(q, func(e Entry) bool {
		if e.ID != self {
			out = append(out, e.ID)
		}
		return true
	})
	return out
}

// CountNeighbors returns NumNeigh(q, θr) per §3.1, excluding self.
func (ix *PointIndex) CountNeighbors(q geom.Point, self int64) int {
	n := 0
	ix.RangeQuery(q, func(e Entry) bool {
		if e.ID != self {
			n++
		}
		return true
	})
	return n
}

// Cells visits every non-empty cell coordinate.
func (ix *PointIndex) Cells(visit func(Coord, []Entry) bool) {
	for c, pc := range ix.cells {
		if !visit(c, pc.entries) {
			return
		}
	}
}
