// Package grid implements the uniform grid over the data space that
// underlies Skeletal Grid Summarization (§4.3).
//
// The space is partitioned into axis-aligned hypercubic cells. Following
// the paper, the default cell size is chosen so that the cell *diagonal*
// equals the clustering range threshold θr; then any two objects in the
// same cell are neighbors of each other, which is what makes each cell
// "well-connected" (Lemmas 4.1–4.2). Coarser cells are used by the
// multi-resolution summarization (§6.1).
//
// The package provides cell coordinate arithmetic (Coord, a fixed-size
// comparable value usable directly as a hash key), enumeration of the cell
// offsets that can possibly contain neighbors of a point (used by the
// single range-query-search each arriving object performs in C-SGS), and a
// simple grid-backed point index used by the non-integrated baselines.
//
// # Concurrency
//
// Geometry is immutable after construction and safe for unrestricted
// concurrent use; its offset tables are computed once in NewGeometry.
//
// PointIndex is single-writer. Its read path — RangeQuery, CellScan,
// Neighbors, CountNeighbors, Cells, Len, Geometry — performs no mutation
// of any kind (no lazy cell creation, no rebalancing), so any number of
// goroutines may read concurrently provided no Insert/BulkInsert/Remove
// overlaps with them. This is the contract the batched ingest pipeline
// relies on: the parallel neighbor-discovery phase fans read-only range
// queries over a frozen index, and all writes happen in the sequential
// apply phase that follows.
package grid
