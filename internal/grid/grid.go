package grid

import (
	"fmt"
	"math"
	"sort"

	"streamsum/internal/geom"
)

// MaxDim is the largest supported dimensionality. Cell coordinates are
// fixed-size arrays so they can be used directly as map keys without
// allocation.
const MaxDim = 8

// Coord identifies one grid cell. It is comparable and usable as a map key.
type Coord struct {
	D uint8 // dimensionality actually used
	C [MaxDim]int32
}

// CoordOf builds a Coord from a slice of cell indices.
func CoordOf(idx ...int32) Coord {
	if len(idx) > MaxDim {
		panic(fmt.Sprintf("grid: %d dimensions exceeds MaxDim=%d", len(idx), MaxDim))
	}
	var c Coord
	c.D = uint8(len(idx))
	copy(c.C[:], idx)
	return c
}

// Add returns c translated by the offset o (component-wise).
func (c Coord) Add(o Coord) Coord {
	r := c
	for i := uint8(0); i < c.D; i++ {
		r.C[i] += o.C[i]
	}
	return r
}

// Sub returns the offset from o to c.
func (c Coord) Sub(o Coord) Coord {
	r := c
	for i := uint8(0); i < c.D; i++ {
		r.C[i] -= o.C[i]
	}
	return r
}

// IsZero reports whether every component is zero.
func (c Coord) IsZero() bool {
	for i := uint8(0); i < c.D; i++ {
		if c.C[i] != 0 {
			return false
		}
	}
	return true
}

// Slice returns the active components as an []int32.
func (c Coord) Slice() []int32 { return c.C[:c.D] }

// String renders the coordinate for diagnostics.
func (c Coord) String() string {
	s := "⟨"
	for i := uint8(0); i < c.D; i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", c.C[i])
	}
	return s + "⟩"
}

// Geometry captures the grid parameters for one resolution level: the
// dimensionality, the cell side length, and the neighbor radius θr it
// serves. It precomputes the set of relative cell offsets that can contain
// points within θr of a point in the origin cell.
type Geometry struct {
	dim     int
	side    float64
	radius  float64
	offsets []Coord // includes the zero offset
}

// NewGeometry returns the finest-resolution geometry of the paper: the cell
// diagonal equals radius (θr), i.e. side = θr/√dim, so all objects within
// one cell are mutual neighbors (basis of Lemmas 4.1 and 4.2).
func NewGeometry(dim int, radius float64) (*Geometry, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("grid: radius must be positive, got %g", radius)
	}
	return NewGeometryWithSide(dim, radius, radius/math.Sqrt(float64(dim)))
}

// NewGeometryWithSide returns a geometry with an explicit cell side length.
// It is used by the multi-resolution hierarchy (side grows by the
// compression rate θ per level) and by grid-size ablation experiments.
func NewGeometryWithSide(dim int, radius, side float64) (*Geometry, error) {
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("grid: dimension %d out of range [1,%d]", dim, MaxDim)
	}
	if side <= 0 || radius <= 0 {
		return nil, fmt.Errorf("grid: side and radius must be positive (side=%g radius=%g)", side, radius)
	}
	g := &Geometry{dim: dim, side: side, radius: radius}
	g.offsets = g.computeOffsets()
	return g, nil
}

// Dim returns the dimensionality.
func (g *Geometry) Dim() int { return g.dim }

// Side returns the cell side length.
func (g *Geometry) Side() float64 { return g.side }

// Radius returns the neighbor radius θr the geometry serves.
func (g *Geometry) Radius() float64 { return g.radius }

// Diagonal returns the cell diagonal length.
func (g *Geometry) Diagonal() float64 { return g.side * math.Sqrt(float64(g.dim)) }

// IntraCellNeighbors reports whether any two points in the same cell are
// guaranteed to be neighbors (diagonal <= radius). True for the paper's
// basic (finest) SGS geometry; false for coarser levels.
func (g *Geometry) IntraCellNeighbors() bool {
	// Allow for floating-point slack when side was derived from radius.
	return g.Diagonal() <= g.radius*(1+1e-12)
}

// CoordOf returns the coordinate of the cell containing p.
func (g *Geometry) CoordOf(p geom.Point) Coord {
	if len(p) != g.dim {
		panic(fmt.Sprintf("grid: point dim %d != geometry dim %d", len(p), g.dim))
	}
	var c Coord
	c.D = uint8(g.dim)
	for i := 0; i < g.dim; i++ {
		c.C[i] = int32(math.Floor(p[i] / g.side))
	}
	return c
}

// CellMin returns the minimum corner of cell c — the "location vector" of a
// skeletal grid cell (Definition 4.4).
func (g *Geometry) CellMin(c Coord) geom.Point {
	p := make(geom.Point, g.dim)
	for i := 0; i < g.dim; i++ {
		p[i] = float64(c.C[i]) * g.side
	}
	return p
}

// CellMBR returns the bounding box of cell c.
func (g *Geometry) CellMBR(c Coord) geom.MBR {
	lo := g.CellMin(c)
	hi := lo.Clone()
	for i := range hi {
		hi[i] += g.side
	}
	return geom.MBR{Min: lo, Max: hi}
}

// CellVolume returns the volume of a single cell.
func (g *Geometry) CellVolume() float64 {
	return math.Pow(g.side, float64(g.dim))
}

// MinDistBetween returns the minimum distance between any two points of
// cells a and b.
func (g *Geometry) MinDistBetween(a, b Coord) float64 {
	var s float64
	for i := 0; i < g.dim; i++ {
		gap := math.Abs(float64(a.C[i]-b.C[i])) - 1
		if gap > 0 {
			d := gap * g.side
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// NeighborOffsets returns the relative coordinates (including the zero
// offset) of every cell that can contain a point within radius θr of some
// point in the origin cell. C-SGS visits exactly these cells during the one
// range query search it runs per arriving object.
func (g *Geometry) NeighborOffsets() []Coord { return g.offsets }

// CanNeighbor reports whether cells a and b can contain points within
// radius θr of each other. It is exactly the membership rule behind
// NeighborOffsets applied to an arbitrary coordinate pair, so
// CanNeighbor(c, c.Add(off)) is true iff off is in NeighborOffsets. The
// batched ingest path uses it to relate the occupied cells of a segment
// pairwise instead of probing every offset through a map.
func (g *Geometry) CanNeighbor(a, b Coord) bool {
	reach := g.Reach()
	var s float64
	for i := 0; i < g.dim; i++ {
		d := a.C[i] - b.C[i]
		if d < 0 {
			d = -d
		}
		if d > reach {
			return false
		}
		gap := float64(d) - 1
		if gap > 0 {
			dd := gap * g.side
			s += dd * dd
		}
	}
	return s <= g.radius*g.radius*(1+1e-12)
}

// Reach returns the maximum per-dimension cell offset that can contain
// neighbors.
func (g *Geometry) Reach() int32 {
	return int32(math.Ceil(g.radius / g.side))
}

// NeighborIndices returns, in ascending order, the indices j of the
// occupied cells whose coords[j] can contain points within radius θr of
// points in cell coords[i], including i itself. idx must be the inverse
// of coords (idx[coords[j]] == j for every j). The batched ingest
// pipelines use it to relate a segment's occupied cells: for few cells a
// pairwise CanNeighbor scan is cheapest, but past |NeighborOffsets| cells
// (sparse bursts) the offsets are probed through idx instead, bounding
// the per-cell cost at O(|offsets|) rather than O(cells).
func (g *Geometry) NeighborIndices(coords []Coord, idx map[Coord]int32, i int) []int32 {
	var nbr []int32
	if len(coords) <= len(g.offsets) {
		for j := range coords {
			if g.CanNeighbor(coords[i], coords[j]) {
				nbr = append(nbr, int32(j))
			}
		}
		return nbr
	}
	for _, off := range g.offsets {
		if j, ok := idx[coords[i].Add(off)]; ok {
			nbr = append(nbr, j)
		}
	}
	sort.Slice(nbr, func(a, b int) bool { return nbr[a] < nbr[b] })
	return nbr
}

func (g *Geometry) computeOffsets() []Coord {
	reach := g.Reach()
	var out []Coord
	cur := make([]int32, g.dim)
	var rec func(i int)
	rec = func(i int) {
		if i == g.dim {
			// Minimum squared distance between origin cell and offset cell.
			var s float64
			for _, v := range cur {
				gap := math.Abs(float64(v)) - 1
				if gap > 0 {
					d := gap * g.side
					s += d * d
				}
			}
			if s <= g.radius*g.radius*(1+1e-12) {
				out = append(out, CoordOf(cur...))
			}
			return
		}
		for v := -reach; v <= reach; v++ {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
