package grid

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"streamsum/internal/geom"
)

func randomEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			ID: int64(i),
			P:  geom.Point{rng.Float64() * 10, rng.Float64() * 10},
		}
	}
	return out
}

// TestBulkInsertEquivalent checks BulkInsert produces an index answering
// range queries identically to one built with per-entry Insert.
func TestBulkInsertEquivalent(t *testing.T) {
	geo, err := NewGeometry(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	entries := randomEntries(2000, 7)

	one := NewPointIndex(geo)
	for _, en := range entries {
		one.Insert(en.ID, en.P)
	}
	bulk := NewPointIndex(geo)
	bulk.BulkInsert(entries)

	if one.Len() != bulk.Len() {
		t.Fatalf("Len mismatch: %d vs %d", one.Len(), bulk.Len())
	}
	for i := 0; i < 200; i++ {
		q := entries[i*7%len(entries)].P
		a := one.Neighbors(q, -1)
		b := bulk.Neighbors(q, -1)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			t.Fatalf("query %v: %d vs %d neighbors", q, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %v: neighbor sets differ at %d: %d vs %d", q, j, a[j], b[j])
			}
		}
	}
}

// TestCanNeighborMatchesOffsets checks CanNeighbor agrees exactly with
// NeighborOffsets membership over the full reach box (plus one ring
// beyond it, which must always be excluded).
func TestCanNeighborMatchesOffsets(t *testing.T) {
	for _, tc := range []struct {
		dim    int
		radius float64
		side   float64
	}{
		{2, 1.0, 1.0 / 1.4142135623730951},
		{3, 0.5, 0.5 / 1.7320508075688772},
		{4, 2.0, 0.7},
		{2, 1.0, 0.5}, // radius/side integral: exercises the reach boundary
	} {
		geo, err := NewGeometryWithSide(tc.dim, tc.radius, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		inOffsets := make(map[Coord]bool)
		for _, off := range geo.NeighborOffsets() {
			inOffsets[off] = true
		}
		origin := CoordOf(make([]int32, tc.dim)...)
		reach := geo.Reach() + 1
		cur := make([]int32, tc.dim)
		var rec func(i int)
		rec = func(i int) {
			if i == tc.dim {
				off := CoordOf(cur...)
				got := geo.CanNeighbor(origin, origin.Add(off))
				if got != inOffsets[off] {
					t.Errorf("dim=%d side=%g: CanNeighbor(%v) = %v, offsets membership = %v",
						tc.dim, tc.side, off, got, inOffsets[off])
				}
				return
			}
			for v := -reach; v <= reach; v++ {
				cur[i] = v
				rec(i + 1)
			}
		}
		rec(0)
	}
}

// TestConcurrentReaders exercises the documented read-path contract: many
// goroutines running RangeQuery/Neighbors/CountNeighbors/Cells against a
// frozen index must be race-free (run with -race) and observe consistent
// results.
func TestConcurrentReaders(t *testing.T) {
	geo, err := NewGeometry(3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	ix := NewPointIndex(geo)
	pts := make([]geom.Point, 3000)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 6, rng.Float64() * 6, rng.Float64() * 6}
		ix.Insert(int64(i), pts[i])
	}

	want := make([]int, len(pts))
	for i, p := range pts {
		want[i] = ix.CountNeighbors(p, int64(i))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pts); i += 8 {
				if got := ix.CountNeighbors(pts[i], int64(i)); got != want[i] {
					t.Errorf("point %d: concurrent count %d != sequential %d", i, got, want[i])
					return
				}
			}
			cells := 0
			ix.Cells(func(Coord, []Entry) bool { cells++; return true })
			if cells == 0 {
				t.Error("no cells visited")
			}
		}(w)
	}
	wg.Wait()
}
