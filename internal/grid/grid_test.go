package grid

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"streamsum/internal/geom"
)

func mustGeo(t *testing.T, dim int, radius float64) *Geometry {
	t.Helper()
	g, err := NewGeometry(dim, radius)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(0, 1); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewGeometry(9, 1); err == nil {
		t.Error("dim > MaxDim should fail")
	}
	if _, err := NewGeometry(2, 0); err == nil {
		t.Error("radius 0 should fail")
	}
	if _, err := NewGeometryWithSide(2, 1, -1); err == nil {
		t.Error("negative side should fail")
	}
}

func TestDiagonalEqualsRadius(t *testing.T) {
	for dim := 1; dim <= MaxDim; dim++ {
		g := mustGeo(t, dim, 0.5)
		if math.Abs(g.Diagonal()-0.5) > 1e-12 {
			t.Errorf("dim %d: diagonal %g != radius 0.5", dim, g.Diagonal())
		}
		if !g.IntraCellNeighbors() {
			t.Errorf("dim %d: finest geometry must guarantee intra-cell neighborship", dim)
		}
	}
}

func TestCoordOfAndCellMBR(t *testing.T) {
	g := mustGeo(t, 2, math.Sqrt2) // side = 1
	cases := []struct {
		p    geom.Point
		want Coord
	}{
		{geom.Point{0.5, 0.5}, CoordOf(0, 0)},
		{geom.Point{1.0, 0.0}, CoordOf(1, 0)},
		{geom.Point{-0.1, -1.0}, CoordOf(-1, -1)},
		{geom.Point{3.999, 2.0}, CoordOf(3, 2)},
	}
	for _, c := range cases {
		if got := g.CoordOf(c.p); got != c.want {
			t.Errorf("CoordOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	mbr := g.CellMBR(CoordOf(2, -1))
	if !mbr.Min.Equal(geom.Point{2, -1}) || !mbr.Max.Equal(geom.Point{3, 0}) {
		t.Errorf("CellMBR = %v", mbr)
	}
	// Every point maps into the MBR of its own cell.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := geom.Point{rng.Float64()*20 - 10, rng.Float64()*20 - 10}
		if !g.CellMBR(g.CoordOf(p)).Contains(p) {
			t.Fatalf("point %v outside its cell MBR", p)
		}
	}
}

func TestCoordArithmetic(t *testing.T) {
	a := CoordOf(1, 2, 3)
	b := CoordOf(0, -1, 5)
	if got := a.Add(b); got != CoordOf(1, 1, 8) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != CoordOf(1, 3, -2) {
		t.Errorf("Sub = %v", got)
	}
	if !CoordOf(0, 0).IsZero() || CoordOf(0, 1).IsZero() {
		t.Error("IsZero misbehaves")
	}
	if got := len(CoordOf(4, 5).Slice()); got != 2 {
		t.Errorf("Slice len = %d", got)
	}
}

func TestNeighborOffsetsComplete(t *testing.T) {
	// Brute-force check: for random point pairs within θr, the offset
	// between their cells must be in NeighborOffsets.
	for _, dim := range []int{1, 2, 3, 4} {
		g := mustGeo(t, dim, 1.0)
		offs := make(map[Coord]bool, len(g.NeighborOffsets()))
		for _, o := range g.NeighborOffsets() {
			offs[o] = true
		}
		rng := rand.New(rand.NewSource(int64(dim)))
		for i := 0; i < 3000; i++ {
			p := make(geom.Point, dim)
			q := make(geom.Point, dim)
			for j := 0; j < dim; j++ {
				p[j] = rng.Float64()*10 - 5
				// Sample q near p so many pairs are within θr.
				q[j] = p[j] + (rng.Float64()*2-1)*1.2
			}
			if !geom.WithinDist(p, q, 1.0) {
				continue
			}
			off := g.CoordOf(q).Sub(g.CoordOf(p))
			if !offs[off] {
				t.Fatalf("dim %d: neighbor pair %v,%v in offset %v missing from NeighborOffsets", dim, p, q, off)
			}
		}
	}
}

func TestNeighborOffsetsMinimal(t *testing.T) {
	// Every offset reported must be geometrically reachable: its min
	// distance to the origin cell must be <= θr.
	for _, dim := range []int{1, 2, 3, 4, 5} {
		g := mustGeo(t, dim, 1.0)
		zero := CoordOf(make([]int32, dim)...)
		for _, o := range g.NeighborOffsets() {
			if d := g.MinDistBetween(zero, o); d > 1.0+1e-9 {
				t.Errorf("dim %d: offset %v has min dist %g > θr", dim, o, d)
			}
		}
	}
}

func TestMinDistBetween(t *testing.T) {
	g := mustGeo(t, 2, math.Sqrt2) // side 1
	if d := g.MinDistBetween(CoordOf(0, 0), CoordOf(0, 0)); d != 0 {
		t.Errorf("same cell dist = %g", d)
	}
	if d := g.MinDistBetween(CoordOf(0, 0), CoordOf(1, 0)); d != 0 {
		t.Errorf("adjacent cells dist = %g", d)
	}
	if d := g.MinDistBetween(CoordOf(0, 0), CoordOf(2, 0)); math.Abs(d-1) > 1e-12 {
		t.Errorf("two-apart cells dist = %g, want 1", d)
	}
	if d := g.MinDistBetween(CoordOf(0, 0), CoordOf(2, 2)); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal two-apart dist = %g, want sqrt2", d)
	}
}

func TestPointIndexRangeQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := mustGeo(t, 3, 0.7)
	ix := NewPointIndex(g)
	type rec struct {
		id int64
		p  geom.Point
	}
	var all []rec
	for i := 0; i < 500; i++ {
		p := geom.Point{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		ix.Insert(int64(i), p)
		all = append(all, rec{int64(i), p})
	}
	if ix.Len() != 500 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		got := ix.Neighbors(q, -1)
		var want []int64
		for _, r := range all {
			if geom.WithinDist(q, r.p, 0.7) {
				want = append(want, r.id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("neighbor count %d != %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("neighbor sets differ at %d: %v vs %v", i, got, want)
			}
		}
	}
}

func TestPointIndexRemove(t *testing.T) {
	g := mustGeo(t, 2, 1)
	ix := NewPointIndex(g)
	p := geom.Point{1, 1}
	ix.Insert(1, p)
	ix.Insert(2, p)
	if !ix.Remove(1, p) {
		t.Fatal("Remove existing failed")
	}
	if ix.Remove(1, p) {
		t.Fatal("double Remove succeeded")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after removal", ix.Len())
	}
	ids := ix.Neighbors(p, -1)
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("Neighbors = %v", ids)
	}
	if !ix.Remove(2, p) {
		t.Fatal("Remove second failed")
	}
	cellCount := 0
	ix.Cells(func(Coord, []Entry) bool { cellCount++; return true })
	if cellCount != 0 {
		t.Fatalf("empty cells not reclaimed: %d", cellCount)
	}
}

func TestCountNeighborsExcludesSelf(t *testing.T) {
	g := mustGeo(t, 2, 1)
	ix := NewPointIndex(g)
	ix.Insert(7, geom.Point{0, 0})
	ix.Insert(8, geom.Point{0.1, 0})
	if n := ix.CountNeighbors(geom.Point{0, 0}, 7); n != 1 {
		t.Fatalf("CountNeighbors = %d, want 1", n)
	}
	if n := ix.CountNeighbors(geom.Point{0, 0}, -1); n != 2 {
		t.Fatalf("CountNeighbors without self-exclusion = %d, want 2", n)
	}
}

func TestRangeQueryEarlyStop(t *testing.T) {
	g := mustGeo(t, 1, 1)
	ix := NewPointIndex(g)
	for i := 0; i < 10; i++ {
		ix.Insert(int64(i), geom.Point{0})
	}
	visits := 0
	ix.RangeQuery(geom.Point{0}, func(Entry) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("early stop visited %d entries", visits)
	}
}

// Property: points sharing a cell under the finest geometry are always
// within θr of each other (the guarantee behind Lemma 4.1).
func TestIntraCellNeighborProperty(t *testing.T) {
	g := mustGeo(t, 4, 1.0)
	f := func(a, b [4]float64, cell [4]int8) bool {
		// Map both points into the same cell.
		p := make(geom.Point, 4)
		q := make(geom.Point, 4)
		for i := 0; i < 4; i++ {
			base := float64(cell[i]) * g.Side()
			p[i] = base + frac(a[i])*g.Side()
			q[i] = base + frac(b[i])*g.Side()
		}
		if g.CoordOf(p) != g.CoordOf(q) {
			return true // fell on boundary; not the property under test
		}
		return geom.WithinDist(p, q, g.Radius()*(1+1e-9))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	f := x - math.Floor(x)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0.5
	}
	return f
}

// TestNeighborIndicesBranchesAgree: NeighborIndices' two strategies — the
// pairwise CanNeighbor scan for few cells and the offset-probing path for
// many — must return the same ascending index lists.
func TestNeighborIndicesBranchesAgree(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		g, err := NewGeometry(dim, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(dim)))
		// Enough distinct coords to force the offset-probing branch.
		n := len(g.NeighborOffsets())*2 + 7
		var coords []Coord
		idx := make(map[Coord]int32)
		for len(coords) < n {
			c := make([]int32, dim)
			for d := range c {
				c[d] = rng.Int31n(20) - 10
			}
			co := CoordOf(c...)
			if _, ok := idx[co]; ok {
				continue
			}
			idx[co] = int32(len(coords))
			coords = append(coords, co)
		}
		for i := range coords {
			got := g.NeighborIndices(coords, idx, i)
			// Reference: the pairwise definition.
			var want []int32
			for j := range coords {
				if g.CanNeighbor(coords[i], coords[j]) {
					want = append(want, int32(j))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("dim=%d i=%d: got %v want %v", dim, i, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("dim=%d i=%d: got %v want %v", dim, i, got, want)
				}
			}
		}
	}
}
