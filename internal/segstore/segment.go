package segstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"

	"streamsum/internal/featidx"
	"streamsum/internal/geom"
	"streamsum/internal/rtree"
	"streamsum/internal/sgs"
)

var (
	// logMagic is the archive.Appender log magic: a segment's record
	// region is byte-identical to an append log, so a damaged segment is
	// still salvageable with LoadAppended.
	logMagic = [8]byte{'S', 'G', 'S', 'L', 'O', 'G', '1', '\n'}
	// footerMagicV1 footers predate zone filters; their zones are derived
	// from the records at open time.
	footerMagicV1 = [8]byte{'S', 'G', 'S', 'F', 'T', 'R', '1', '\n'}
	// footerMagic (v2) footers carry the segment's filter zone — the
	// union MBR and per-feature min/max bounds — after the record block.
	footerMagic = [8]byte{'S', 'G', 'S', 'F', 'T', 'R', '2', '\n'}
	endMagic    = [8]byte{'S', 'G', 'S', 'E', 'N', 'D', '1', '\n'}
)

const trailerSize = 8 + 4 + 4 + 8 // footerOff u64 | footerLen u32 | crc u32 | end magic

// ErrBadSegment is returned when a segment file fails validation. A
// truncated or otherwise damaged segment is rejected whole — the store
// never serves a torn segment.
var ErrBadSegment = errors.New("segstore: bad segment file")

// FlushEntry is one summary handed to the store for demotion: the
// encoded blob plus the index features the footer records, so the store
// never needs to decode what it writes.
type FlushEntry struct {
	ID   int64
	Blob []byte
	MBR  geom.MBR
	Feat [4]float64
}

// Record is one summary as indexed by a segment footer: its id, the byte
// range of its encoded blob within the segment file, and the filter-
// phase features (bounding rectangle and non-locational feature vector).
type Record struct {
	ID   int64
	Off  int64 // blob offset within the file (past the u32 length prefix)
	Len  uint32
	MBR  geom.MBR
	Feat [4]float64
}

// zone is a segment's filter zone: the union of its records' MBRs and
// the per-dimension min/max of their feature vectors. A query range that
// cannot intersect the zone cannot match any record, so the filter phase
// skips the whole segment without touching its indices.
type zone struct {
	mbr              geom.MBR
	featMin, featMax [4]float64
}

// zoneOf computes the filter zone of a record set.
func zoneOf(dim int, recs []Record) zone {
	z := zone{mbr: geom.EmptyMBR(dim)}
	for d := 0; d < 4; d++ {
		z.featMin[d] = math.Inf(1)
		z.featMax[d] = math.Inf(-1)
	}
	for _, r := range recs {
		z.mbr.Extend(r.MBR)
		for d := 0; d < 4; d++ {
			z.featMin[d] = math.Min(z.featMin[d], r.Feat[d])
			z.featMax[d] = math.Max(z.featMax[d], r.Feat[d])
		}
	}
	return z
}

// Segment is one immutable on-disk segment, opened for reading. All
// methods are safe for concurrent use: the in-memory probe structures
// are built once at open time and never mutated, and Load uses pread.
type Segment struct {
	path    string
	f       *os.File
	dim     int
	recs    []Record
	byID    map[int64]int
	payload int // sum of record blob lengths, cached at open
	zone    zone
	loc     *rtree.Tree
	feat    *featidx.Index
}

// writeSegment writes a complete segment file at path (no atomicity —
// the caller writes to a temp name and renames). Entries must be in
// archive (FIFO) order and share the store's dimensionality.
func writeSegment(path string, dim int, entries []FlushEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(logMagic[:]); err != nil {
		return err
	}
	off := int64(len(logMagic))
	recs := make([]Record, 0, len(entries))
	var n4 [4]byte
	for _, e := range entries {
		if e.MBR.Dim() != dim {
			return fmt.Errorf("segstore: entry %d dimension %d != store dimension %d", e.ID, e.MBR.Dim(), dim)
		}
		binary.LittleEndian.PutUint32(n4[:], uint32(len(e.Blob)))
		if _, err := w.Write(n4[:]); err != nil {
			return err
		}
		if _, err := w.Write(e.Blob); err != nil {
			return err
		}
		recs = append(recs, Record{ID: e.ID, Off: off + 4, Len: uint32(len(e.Blob)), MBR: e.MBR, Feat: e.Feat})
		off += 4 + int64(len(e.Blob))
	}
	footer := encodeFooter(dim, recs)
	if _, err := w.Write(footer); err != nil {
		return err
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(off))
	binary.LittleEndian.PutUint32(tr[8:], uint32(len(footer)))
	binary.LittleEndian.PutUint32(tr[12:], crc32.ChecksumIEEE(footer))
	copy(tr[16:], endMagic[:])
	if _, err := w.Write(tr[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

func encodeFooter(dim int, recs []Record) []byte {
	buf := make([]byte, 0, len(footerMagic)+5+len(recs)*(8+8+4+dim*16+32)+dim*16+64)
	buf = append(buf, footerMagic[:]...)
	buf = append(buf, byte(dim))
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(recs)))
	buf = append(buf, n4[:]...)
	var n8 [8]byte
	f64 := func(v float64) {
		binary.LittleEndian.PutUint64(n8[:], math.Float64bits(v))
		buf = append(buf, n8[:]...)
	}
	for _, r := range recs {
		binary.LittleEndian.PutUint64(n8[:], uint64(r.ID))
		buf = append(buf, n8[:]...)
		binary.LittleEndian.PutUint64(n8[:], uint64(r.Off))
		buf = append(buf, n8[:]...)
		binary.LittleEndian.PutUint32(n4[:], r.Len)
		buf = append(buf, n4[:]...)
		for d := 0; d < dim; d++ {
			f64(r.MBR.Min[d])
		}
		for d := 0; d < dim; d++ {
			f64(r.MBR.Max[d])
		}
		for d := 0; d < 4; d++ {
			f64(r.Feat[d])
		}
	}
	// v2 zone block: union MBR + per-feature min/max, so the filter phase
	// can skip the whole segment without reading the record block's
	// indices when the query range cannot intersect.
	z := zoneOf(dim, recs)
	for d := 0; d < dim; d++ {
		f64(z.mbr.Min[d])
	}
	for d := 0; d < dim; d++ {
		f64(z.mbr.Max[d])
	}
	for d := 0; d < 4; d++ {
		f64(z.featMin[d])
	}
	for d := 0; d < 4; d++ {
		f64(z.featMax[d])
	}
	return buf
}

// OpenSegment validates and opens a segment file. Validation is
// all-or-nothing: end magic, trailer geometry, footer CRC, header magic
// and every record's byte range must check out, so a file truncated at
// any byte offset is rejected with ErrBadSegment rather than partially
// loaded.
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	seg, err := openSegmentFile(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Keep pinned Views readable after a compaction unlinks the file:
	// the handle closes when the last reference drops, or at Store.Close.
	runtime.SetFinalizer(seg, func(s *Segment) { s.f.Close() })
	return seg, nil
}

func openSegmentFile(path string, f *os.File) (*Segment, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(logMagic))+trailerSize {
		return nil, fmt.Errorf("%w: %s: too short (%d bytes)", ErrBadSegment, path, size)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	if [8]byte(tr[16:24]) != endMagic {
		return nil, fmt.Errorf("%w: %s: bad end magic", ErrBadSegment, path)
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[8:]))
	crc := binary.LittleEndian.Uint32(tr[12:])
	if footerOff < int64(len(logMagic)) || footerOff+footerLen+trailerSize != size {
		return nil, fmt.Errorf("%w: %s: trailer geometry", ErrBadSegment, path)
	}
	footer := make([]byte, footerLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, footerOff, footerLen), footer); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	if crc32.ChecksumIEEE(footer) != crc {
		return nil, fmt.Errorf("%w: %s: footer CRC mismatch", ErrBadSegment, path)
	}
	var head [8]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	if head != logMagic {
		return nil, fmt.Errorf("%w: %s: bad header magic", ErrBadSegment, path)
	}
	dim, recs, z, err := decodeFooter(footer)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	seg := &Segment{
		path: path, f: f, dim: dim, recs: recs, zone: z,
		byID: make(map[int64]int, len(recs)),
		loc:  rtree.New(dim),
		feat: featidx.New(),
	}
	end := int64(len(logMagic))
	for i, r := range recs {
		if r.Off != end+4 || r.Off+int64(r.Len) > footerOff {
			return nil, fmt.Errorf("%w: %s: record %d byte range", ErrBadSegment, path, i)
		}
		end = r.Off + int64(r.Len)
		if _, dup := seg.byID[r.ID]; dup {
			return nil, fmt.Errorf("%w: %s: duplicate id %d", ErrBadSegment, path, r.ID)
		}
		seg.byID[r.ID] = i
		seg.payload += int(r.Len)
		if err := seg.loc.Insert(r.ID, r.MBR); err != nil {
			return nil, fmt.Errorf("%w: %s: record %d: %v", ErrBadSegment, path, i, err)
		}
		seg.feat.Insert(r.ID, r.Feat)
	}
	if end != footerOff {
		return nil, fmt.Errorf("%w: %s: record region does not meet footer", ErrBadSegment, path)
	}
	return seg, nil
}

func decodeFooter(b []byte) (dim int, recs []Record, z zone, err error) {
	if len(b) < len(footerMagic)+5 {
		return 0, nil, z, fmt.Errorf("bad footer magic")
	}
	v2 := [8]byte(b[:8]) == footerMagic
	if !v2 && [8]byte(b[:8]) != footerMagicV1 {
		return 0, nil, z, fmt.Errorf("bad footer magic")
	}
	dim = int(b[8])
	if dim < 1 || dim > 8 {
		return 0, nil, z, fmt.Errorf("footer dimension %d", dim)
	}
	count := binary.LittleEndian.Uint32(b[9:])
	recSize := 8 + 8 + 4 + dim*16 + 32
	zoneSize := 0
	if v2 {
		zoneSize = dim*16 + 64
	}
	body := b[13:]
	if uint64(len(body)) != uint64(count)*uint64(recSize)+uint64(zoneSize) {
		return 0, nil, z, fmt.Errorf("footer size %d != %d records", len(body), count)
	}
	recs = make([]Record, count)
	for i := range recs {
		p := body[i*recSize:]
		r := &recs[i]
		r.ID = int64(binary.LittleEndian.Uint64(p[0:]))
		r.Off = int64(binary.LittleEndian.Uint64(p[8:]))
		r.Len = binary.LittleEndian.Uint32(p[16:])
		p = p[20:]
		r.MBR = geom.MBR{Min: make(geom.Point, dim), Max: make(geom.Point, dim)}
		for d := 0; d < dim; d++ {
			r.MBR.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		p = p[dim*8:]
		for d := 0; d < dim; d++ {
			r.MBR.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		p = p[dim*8:]
		for d := 0; d < 4; d++ {
			r.Feat[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		if r.MBR.IsEmpty() {
			return 0, nil, z, fmt.Errorf("record %d has an empty MBR", i)
		}
	}
	if v2 {
		p := body[int(count)*recSize:]
		z.mbr = geom.MBR{Min: make(geom.Point, dim), Max: make(geom.Point, dim)}
		for d := 0; d < dim; d++ {
			z.mbr.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		p = p[dim*8:]
		for d := 0; d < dim; d++ {
			z.mbr.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		p = p[dim*8:]
		for d := 0; d < 4; d++ {
			z.featMin[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		p = p[4*8:]
		for d := 0; d < 4; d++ {
			z.featMax[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
	} else {
		// v1 footers predate the zone block; derive it from the records.
		z = zoneOf(dim, recs)
	}
	return dim, recs, z, nil
}

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// Dim returns the data-space dimensionality.
func (s *Segment) Dim() int { return s.dim }

// Len returns the number of records in the segment (tombstones are a
// store-level concept; the segment itself is immutable).
func (s *Segment) Len() int { return len(s.recs) }

// Bytes returns the total encoded size of the segment's record blobs.
func (s *Segment) Bytes() int { return s.payload }

// Records returns the segment's records in archive (FIFO) order. The
// returned slice is shared and must not be modified.
func (s *Segment) Records() []Record { return s.recs }

// Get returns the record with the given id.
func (s *Segment) Get(id int64) (Record, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Record{}, false
	}
	return s.recs[i], true
}

// Zone returns the segment's filter zone: the union MBR of its records
// and the per-dimension min/max of their feature vectors (from the v2
// footer, or derived at open for v1 segments).
func (s *Segment) Zone() (mbr geom.MBR, featMin, featMax [4]float64) {
	return s.zone.mbr, s.zone.featMin, s.zone.featMax
}

// SearchLocation visits records whose MBR intersects the query box.
// Iteration stops early if visit returns false. A query box outside the
// segment's zone returns immediately without touching the index.
func (s *Segment) SearchLocation(q geom.MBR, visit func(Record) bool) {
	if !s.zone.mbr.Intersects(q) {
		return
	}
	s.loc.SearchIntersect(q, func(it rtree.Item) bool {
		return visit(s.recs[s.byID[it.ID]])
	})
}

// SearchFeatures visits records whose feature vector lies inside the
// inclusive hyper-rectangle [lo, hi]. Iteration stops early if visit
// returns false. A range disjoint from the segment's feature zone
// returns immediately without touching the index.
func (s *Segment) SearchFeatures(lo, hi [4]float64, visit func(Record) bool) {
	for d := 0; d < 4; d++ {
		if hi[d] < s.zone.featMin[d] || lo[d] > s.zone.featMax[d] {
			return
		}
	}
	s.feat.Search(lo, hi, func(fe featidx.Entry) bool {
		return visit(s.recs[s.byID[fe.ID]])
	})
}

// Load reads and decodes one record's summary from disk (pread; safe
// for any number of concurrent callers).
func (s *Segment) Load(r Record) (*sgs.Summary, error) {
	blob := make([]byte, r.Len)
	if _, err := s.f.ReadAt(blob, r.Off); err != nil {
		return nil, fmt.Errorf("segstore: %s: read record %d: %w", s.path, r.ID, err)
	}
	sum, err := sgs.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("segstore: %s: record %d: %w", s.path, r.ID, err)
	}
	return sum, nil
}

// LoadBlob reads one record's raw encoded blob.
func (s *Segment) LoadBlob(r Record) ([]byte, error) {
	blob := make([]byte, r.Len)
	if _, err := s.f.ReadAt(blob, r.Off); err != nil {
		return nil, fmt.Errorf("segstore: %s: read record %d: %w", s.path, r.ID, err)
	}
	return blob, nil
}

func (s *Segment) close() error {
	runtime.SetFinalizer(s, nil)
	return s.f.Close()
}
