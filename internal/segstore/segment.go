package segstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"

	"streamsum/internal/featidx"
	"streamsum/internal/geom"
	"streamsum/internal/rtree"
	"streamsum/internal/sgs"
)

var (
	// logMagic is the archive.Appender log magic: a v1/v2 segment's record
	// region is byte-identical to an append log, so a damaged legacy
	// segment is still salvageable with LoadAppended. v3 segments use
	// segMagicV3 (format_v3.go) and give up that property for the
	// columnar layout.
	logMagic = [8]byte{'S', 'G', 'S', 'L', 'O', 'G', '1', '\n'}
	// footerMagicV1 footers predate zone filters; their zones are derived
	// from the records at open time.
	footerMagicV1 = [8]byte{'S', 'G', 'S', 'F', 'T', 'R', '1', '\n'}
	// footerMagicV2 footers carry the segment's filter zone — the
	// union MBR and per-feature min/max bounds — after the record block.
	footerMagicV2 = [8]byte{'S', 'G', 'S', 'F', 'T', 'R', '2', '\n'}
	endMagic      = [8]byte{'S', 'G', 'S', 'E', 'N', 'D', '1', '\n'}
)

const trailerSize = 8 + 4 + 4 + 8 // footerOff u64 | footerLen u32 | crc u32 | end magic

// ErrBadSegment is returned when a segment file fails validation. A
// truncated or otherwise damaged segment is rejected whole — the store
// never serves a torn segment.
var ErrBadSegment = errors.New("segstore: bad segment file")

// FlushEntry is one summary handed to the store for demotion: the
// encoded blob plus the index features the columnar region records, so
// the store never needs to decode what it writes.
type FlushEntry struct {
	ID   int64
	Blob []byte
	MBR  geom.MBR
	Feat [4]float64
}

// Record is one summary as indexed by a segment: its id, the byte range
// of its encoded blob within the segment file, and the filter-phase
// features (bounding rectangle and non-locational feature vector).
type Record struct {
	ID   int64
	Off  int64 // absolute blob offset within the file
	Len  uint32
	MBR  geom.MBR
	Feat [4]float64
}

// zone is a segment's filter zone: the union of its records' MBRs and
// the per-dimension min/max of their feature vectors. A query range that
// cannot intersect the zone cannot match any record, so the filter phase
// skips the whole segment without touching its columns or indices.
type zone struct {
	mbr              geom.MBR
	featMin, featMax [4]float64
}

// zoneOf computes the filter zone of a record set.
func zoneOf(dim int, recs []Record) zone {
	z := zone{mbr: geom.EmptyMBR(dim)}
	for d := 0; d < 4; d++ {
		z.featMin[d] = math.Inf(1)
		z.featMax[d] = math.Inf(-1)
	}
	for _, r := range recs {
		z.mbr.Extend(r.MBR)
		for d := 0; d < 4; d++ {
			z.featMin[d] = math.Min(z.featMin[d], r.Feat[d])
			z.featMax[d] = math.Max(z.featMax[d], r.Feat[d])
		}
	}
	return z
}

// Segment is one immutable on-disk segment, opened for reading. All
// methods are safe for concurrent use: the in-memory probe structures
// are built once at open time and never mutated, and blob reads go
// through the read-only mapping (or pread on the fallback path).
type Segment struct {
	path    string
	f       *os.File
	version int // 1, 2 or 3
	dim     int
	recs    []Record
	byID    map[int64]int
	payload int // sum of record blob lengths, cached at open
	zone    zone

	// v1/v2 probe structures (nil for v3 — the columnar scans replace
	// them).
	loc  *rtree.Tree
	feat *featidx.Index

	// v3 columnar state. col is the raw columnar region: a sub-slice of
	// mapped when the file is mmap'd, a heap copy read once at open on
	// the pread fallback. mapped is the whole-file read-only mapping
	// (nil on the fallback), which also serves zero-copy blob reads.
	col    []byte
	mapped []byte
	count  int
	lay    colLayout
}

// writeSegment writes a complete segment file at path in the current
// (v3, columnar) format. No atomicity — the caller writes to a temp name
// and renames. Entries must be in archive (FIFO) order and share the
// store's dimensionality.
func writeSegment(path string, dim int, entries []FlushEntry) error {
	return writeSegmentV3(path, dim, entries)
}

// writeSegmentV2 writes the legacy v2 format (Appender-framed records +
// serialized-index footer). Kept for mixed-format tests; the store only
// ever writes v3.
func writeSegmentV2(path string, dim int, entries []FlushEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(logMagic[:]); err != nil {
		return err
	}
	off := int64(len(logMagic))
	recs := make([]Record, 0, len(entries))
	var n4 [4]byte
	for _, e := range entries {
		if e.MBR.Dim() != dim {
			return fmt.Errorf("segstore: entry %d dimension %d != store dimension %d", e.ID, e.MBR.Dim(), dim)
		}
		binary.LittleEndian.PutUint32(n4[:], uint32(len(e.Blob)))
		if _, err := w.Write(n4[:]); err != nil {
			return err
		}
		if _, err := w.Write(e.Blob); err != nil {
			return err
		}
		recs = append(recs, Record{ID: e.ID, Off: off + 4, Len: uint32(len(e.Blob)), MBR: e.MBR, Feat: e.Feat})
		off += 4 + int64(len(e.Blob))
	}
	footer := encodeFooterV2(dim, recs)
	if _, err := w.Write(footer); err != nil {
		return err
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(off))
	binary.LittleEndian.PutUint32(tr[8:], uint32(len(footer)))
	binary.LittleEndian.PutUint32(tr[12:], crc32.ChecksumIEEE(footer))
	copy(tr[16:], endMagic[:])
	if _, err := w.Write(tr[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

func encodeFooterV2(dim int, recs []Record) []byte {
	buf := make([]byte, 0, len(footerMagicV2)+5+len(recs)*(8+8+4+dim*16+32)+dim*16+64)
	buf = append(buf, footerMagicV2[:]...)
	buf = append(buf, byte(dim))
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(recs)))
	buf = append(buf, n4[:]...)
	var n8 [8]byte
	f64 := func(v float64) {
		binary.LittleEndian.PutUint64(n8[:], math.Float64bits(v))
		buf = append(buf, n8[:]...)
	}
	for _, r := range recs {
		binary.LittleEndian.PutUint64(n8[:], uint64(r.ID))
		buf = append(buf, n8[:]...)
		binary.LittleEndian.PutUint64(n8[:], uint64(r.Off))
		buf = append(buf, n8[:]...)
		binary.LittleEndian.PutUint32(n4[:], r.Len)
		buf = append(buf, n4[:]...)
		for d := 0; d < dim; d++ {
			f64(r.MBR.Min[d])
		}
		for d := 0; d < dim; d++ {
			f64(r.MBR.Max[d])
		}
		for d := 0; d < 4; d++ {
			f64(r.Feat[d])
		}
	}
	// v2 zone block: union MBR + per-feature min/max, so the filter phase
	// can skip the whole segment without reading the record block's
	// indices when the query range cannot intersect.
	return appendZone(buf, dim, zoneOf(dim, recs))
}

// OpenSegment validates and opens a segment file (any format version).
// Validation is all-or-nothing: end magic, trailer geometry, footer CRC,
// header magic, the columnar-region CRC (v3) and every record's byte
// range must check out, so a file truncated at any byte offset is
// rejected with ErrBadSegment rather than partially loaded.
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	seg, err := openSegmentFile(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Keep pinned Views readable after a compaction unlinks the file: the
	// mapping and handle are released when the last reference drops, or
	// at Store.Close.
	runtime.SetFinalizer(seg, func(s *Segment) { s.release() })
	seg.countOpen()
	return seg, nil
}

func openSegmentFile(path string, f *os.File) (*Segment, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(logMagic))+trailerSize {
		return nil, fmt.Errorf("%w: %s: too short (%d bytes)", ErrBadSegment, path, size)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	if [8]byte(tr[16:24]) != endMagic {
		return nil, fmt.Errorf("%w: %s: bad end magic", ErrBadSegment, path)
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[8:]))
	crc := binary.LittleEndian.Uint32(tr[12:])
	if footerOff < int64(len(logMagic)) || footerOff+footerLen+trailerSize != size {
		return nil, fmt.Errorf("%w: %s: trailer geometry", ErrBadSegment, path)
	}
	footer := make([]byte, footerLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, footerOff, footerLen), footer); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	if crc32.ChecksumIEEE(footer) != crc {
		return nil, fmt.Errorf("%w: %s: footer CRC mismatch", ErrBadSegment, path)
	}
	if len(footer) >= 8 && [8]byte(footer[:8]) == footerMagicV3 {
		return openSegmentV3(path, f, size, footerOff, footer)
	}
	return openSegmentLegacy(path, f, footerOff, footer)
}

// openSegmentLegacy opens a v1/v2 segment: the footer is the serialized
// index, decoded into records and in-memory R-tree/feature-grid probe
// structures.
func openSegmentLegacy(path string, f *os.File, footerOff int64, footer []byte) (*Segment, error) {
	var head [8]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	if head != logMagic {
		return nil, fmt.Errorf("%w: %s: bad header magic", ErrBadSegment, path)
	}
	version, dim, recs, z, err := decodeFooterLegacy(footer)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	seg := &Segment{
		path: path, f: f, version: version, dim: dim, recs: recs, zone: z,
		byID: make(map[int64]int, len(recs)),
		loc:  rtree.New(dim),
		feat: featidx.New(),
	}
	end := int64(len(logMagic))
	for i, r := range recs {
		if r.Off != end+4 || r.Off+int64(r.Len) > footerOff {
			return nil, fmt.Errorf("%w: %s: record %d byte range", ErrBadSegment, path, i)
		}
		end = r.Off + int64(r.Len)
		if _, dup := seg.byID[r.ID]; dup {
			return nil, fmt.Errorf("%w: %s: duplicate id %d", ErrBadSegment, path, r.ID)
		}
		seg.byID[r.ID] = i
		seg.payload += int(r.Len)
		if err := seg.loc.Insert(r.ID, r.MBR); err != nil {
			return nil, fmt.Errorf("%w: %s: record %d: %v", ErrBadSegment, path, i, err)
		}
		seg.feat.Insert(r.ID, r.Feat)
	}
	if end != footerOff {
		return nil, fmt.Errorf("%w: %s: record region does not meet footer", ErrBadSegment, path)
	}
	return seg, nil
}

func decodeFooterLegacy(b []byte) (version, dim int, recs []Record, z zone, err error) {
	if len(b) < len(footerMagicV2)+5 {
		return 0, 0, nil, z, fmt.Errorf("bad footer magic")
	}
	version = 2
	if [8]byte(b[:8]) != footerMagicV2 {
		if [8]byte(b[:8]) != footerMagicV1 {
			return 0, 0, nil, z, fmt.Errorf("bad footer magic")
		}
		version = 1
	}
	dim = int(b[8])
	if dim < 1 || dim > 8 {
		return 0, 0, nil, z, fmt.Errorf("footer dimension %d", dim)
	}
	count := binary.LittleEndian.Uint32(b[9:])
	recSize := 8 + 8 + 4 + dim*16 + 32
	zs := 0
	if version == 2 {
		zs = zoneSize(dim)
	}
	body := b[13:]
	if uint64(len(body)) != uint64(count)*uint64(recSize)+uint64(zs) {
		return 0, 0, nil, z, fmt.Errorf("footer size %d != %d records", len(body), count)
	}
	recs = make([]Record, count)
	for i := range recs {
		p := body[i*recSize:]
		r := &recs[i]
		r.ID = int64(binary.LittleEndian.Uint64(p[0:]))
		r.Off = int64(binary.LittleEndian.Uint64(p[8:]))
		r.Len = binary.LittleEndian.Uint32(p[16:])
		p = p[20:]
		r.MBR = geom.MBR{Min: make(geom.Point, dim), Max: make(geom.Point, dim)}
		for d := 0; d < dim; d++ {
			r.MBR.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		p = p[dim*8:]
		for d := 0; d < dim; d++ {
			r.MBR.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		p = p[dim*8:]
		for d := 0; d < 4; d++ {
			r.Feat[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[d*8:]))
		}
		if r.MBR.IsEmpty() {
			return 0, 0, nil, z, fmt.Errorf("record %d has an empty MBR", i)
		}
	}
	if version == 2 {
		var rest []byte
		z, rest, err = decodeZone(body[int(count)*recSize:], dim)
		if err != nil || len(rest) != 0 {
			return 0, 0, nil, z, fmt.Errorf("zone block")
		}
	} else {
		// v1 footers predate the zone block; derive it from the records.
		z = zoneOf(dim, recs)
	}
	return version, dim, recs, z, nil
}

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// Format returns the segment's on-disk format version (1, 2 or 3).
func (s *Segment) Format() int { return s.version }

// Dim returns the data-space dimensionality.
func (s *Segment) Dim() int { return s.dim }

// Len returns the number of records in the segment (tombstones are a
// store-level concept; the segment itself is immutable).
func (s *Segment) Len() int { return len(s.recs) }

// Bytes returns the total encoded size of the segment's record blobs.
func (s *Segment) Bytes() int { return s.payload }

// Regions returns the byte sizes of the segment's columnar and blob
// regions. For v1/v2 segments the columnar size is the serialized-index
// footer (the closest analogue) and the blob size is the record region's
// payload.
func (s *Segment) Regions() (colBytes, blobBytes int) {
	if s.version == 3 {
		return s.lay.size, s.payload
	}
	return len(encodeFooterV2(s.dim, s.recs)), s.payload
}

// Mapped reports whether the segment serves reads from a memory mapping
// (false on the pread fallback path and for v1/v2 segments).
func (s *Segment) Mapped() bool { return s.mapped != nil }

// Records returns the segment's records in archive (FIFO) order. The
// returned slice is shared and must not be modified.
func (s *Segment) Records() []Record { return s.recs }

// Get returns the record with the given id.
func (s *Segment) Get(id int64) (Record, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Record{}, false
	}
	return s.recs[i], true
}

// Zone returns the segment's filter zone: the union MBR of its records
// and the per-dimension min/max of their feature vectors (from the v2/v3
// footer, or derived at open for v1 segments).
func (s *Segment) Zone() (mbr geom.MBR, featMin, featMax [4]float64) {
	return s.zone.mbr, s.zone.featMin, s.zone.featMax
}

// SearchLocation visits records whose MBR intersects the query box.
// Iteration stops early if visit returns false. A query box outside the
// segment's zone returns immediately without touching the index.
func (s *Segment) SearchLocation(q geom.MBR, visit func(Record) bool) {
	s.GatedSearchLocation(q, nil, visit)
}

// GatedSearchLocation visits records whose MBR intersects the query box
// AND whose feature vector passes gate (nil means no gate); it returns
// the number of intersecting records regardless of the gate, so callers
// can report index-candidate counts. On v3 segments the intersection
// test and the gate run directly over the columnar region — zero
// allocation, no per-record syscall; v1/v2 segments probe their R-tree
// and read the gate input from the decoded records. Iteration stops
// early if visit returns false (the returned count is then partial). A
// query box outside the segment's zone returns immediately.
func (s *Segment) GatedSearchLocation(q geom.MBR, gate func([4]float64) bool, visit func(Record) bool) int {
	if !s.zone.mbr.Intersects(q) {
		metricZoneSkips.Inc()
		return 0
	}
	metricScans.Inc()
	if s.version == 3 {
		return s.scanLocationV3(q, gate, visit)
	}
	probed := 0
	s.loc.SearchIntersect(q, func(it rtree.Item) bool {
		probed++
		r := s.recs[s.byID[it.ID]]
		if gate != nil && !gate(r.Feat) {
			return true
		}
		return visit(r)
	})
	return probed
}

// SearchFeatures visits records whose feature vector lies inside the
// inclusive hyper-rectangle [lo, hi]. Iteration stops early if visit
// returns false. A range disjoint from the segment's feature zone
// returns immediately without touching the index.
func (s *Segment) SearchFeatures(lo, hi [4]float64, visit func(Record) bool) {
	s.GatedSearchFeatures(lo, hi, nil, visit)
}

// GatedSearchFeatures visits records whose feature vector lies inside
// [lo, hi] AND passes gate (nil means no gate); it returns the number of
// in-range records regardless of the gate. On v3 segments this is the
// fused filter+gate pass: one sequential scan of the feats column from
// the mapping, zero allocation. Iteration stops early if visit returns
// false (the returned count is then partial). A range disjoint from the
// segment's feature zone returns immediately.
func (s *Segment) GatedSearchFeatures(lo, hi [4]float64, gate func([4]float64) bool, visit func(Record) bool) int {
	for d := 0; d < 4; d++ {
		if hi[d] < s.zone.featMin[d] || lo[d] > s.zone.featMax[d] {
			metricZoneSkips.Inc()
			return 0
		}
	}
	metricScans.Inc()
	if s.version == 3 {
		return s.scanFeaturesV3(lo, hi, gate, visit)
	}
	probed := 0
	s.feat.Search(lo, hi, func(fe featidx.Entry) bool {
		probed++
		r := s.recs[s.byID[fe.ID]]
		if gate != nil && !gate(r.Feat) {
			return true
		}
		return visit(r)
	})
	return probed
}

// blobPool recycles pread scratch buffers so the fallback refine path
// does not allocate a fresh blob per Load (the mmap path reads straight
// from the mapping and never needs one).
var blobPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// Load reads and decodes one record's summary. On the mmap path the blob
// is decoded directly from the mapping (zero copy, no syscall); on the
// pread fallback it is read into a pooled scratch buffer, so either way
// the only allocation is the decoded summary itself. Safe for any number
// of concurrent callers.
func (s *Segment) Load(r Record) (*sgs.Summary, error) {
	if s.mapped != nil {
		metricLoadsMmap.Inc()
		sum, err := sgs.Unmarshal(s.mapped[r.Off : r.Off+int64(r.Len)])
		if err != nil {
			return nil, fmt.Errorf("segstore: %s: record %d: %w", s.path, r.ID, err)
		}
		return sum, nil
	}
	metricLoadsPread.Inc()
	bp := blobPool.Get().(*[]byte)
	defer blobPool.Put(bp)
	if cap(*bp) < int(r.Len) {
		*bp = make([]byte, r.Len)
	}
	blob := (*bp)[:r.Len]
	if _, err := s.f.ReadAt(blob, r.Off); err != nil {
		return nil, fmt.Errorf("segstore: %s: read record %d: %w", s.path, r.ID, err)
	}
	sum, err := sgs.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("segstore: %s: record %d: %w", s.path, r.ID, err)
	}
	return sum, nil
}

// LoadBlob reads one record's raw encoded blob. On the mmap path the
// returned slice is a view into the mapping: it must not be modified and
// is valid only while the segment is reachable; copy it to retain it
// past the segment's lifetime.
func (s *Segment) LoadBlob(r Record) ([]byte, error) {
	if s.mapped != nil {
		return s.mapped[r.Off : r.Off+int64(r.Len)], nil
	}
	blob := make([]byte, r.Len)
	if _, err := s.f.ReadAt(blob, r.Off); err != nil {
		return nil, fmt.Errorf("segstore: %s: read record %d: %w", s.path, r.ID, err)
	}
	return blob, nil
}

// release unmaps and closes the segment's file. Idempotent; called by
// the open-failure paths, close, and the finalizer.
func (s *Segment) release() {
	if s.mapped != nil {
		_ = munmapFile(s.mapped)
		s.mapped = nil
		s.col = nil
	}
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
}

func (s *Segment) close() error {
	runtime.SetFinalizer(s, nil)
	if s.mapped != nil {
		_ = munmapFile(s.mapped)
		s.mapped = nil
		s.col = nil
	}
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
