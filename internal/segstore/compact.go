package segstore

import (
	"fmt"
	"os"
	"path/filepath"

	"streamsum/internal/trace"
)

// Compaction: merge runs of adjacent undersized segments (many small
// demotion batches → one segment near the target size) and rewrite
// tombstone-heavy segments to reclaim dead bytes. Sources are immutable,
// so the merge reads and writes entirely outside the store lock; only
// group selection and the manifest commit are serialized. Manifest order
// is archive (FIFO) order and a group is always an adjacent run replaced
// in place, so compaction never reorders the store-wide record sequence.

func (st *Store) signalCompactLocked() {
	if st.opts.NoBackgroundCompaction {
		return
	}
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

func (st *Store) compactLoop() {
	defer close(st.done)
	for range st.wake {
		for {
			did, err := st.compactOnce()
			if err != nil || !did {
				// Compaction failures only delay space reclamation; the
				// live state is untouched. Retry at the next signal.
				break
			}
		}
	}
}

// CompactNow runs compaction passes until none applies (sgstool compact,
// deterministic tests). Safe concurrently with flushes and tombstones.
func (st *Store) CompactNow() error {
	for {
		did, err := st.compactOnce()
		if err != nil || !did {
			return err
		}
	}
}

// compactOnce performs at most one merge. It reports whether it did any
// work. At most one compaction runs at a time (cmu); the store lock is
// held only for group selection and the commit. Each run that selected
// work records one flight-recorder trace (category Compact) with merge
// and commit spans; passes that found nothing to do record nothing.
func (st *Store) compactOnce() (bool, error) {
	st.cmu.Lock()
	defer st.cmu.Unlock()

	group, dead := st.selectGroupLocked()
	if len(group) == 0 {
		return false, nil
	}
	tr := trace.Default.Start(trace.Compact, "segstore.compact")
	did, err := st.compactGroup(group, dead, tr)
	root := tr.Root()
	root.SetInt("inputs", int64(len(group)))
	if err != nil {
		root.SetStr("error", err.Error())
	}
	tr.Finish()
	return did, err
}

func (st *Store) compactGroup(group []*Segment, dead map[int64]struct{}, tr *trace.Trace) (bool, error) {
	// Merge outside the store lock: sources are immutable.
	mergeSpan := tr.Start("merge")
	var merged []FlushEntry
	dropped := make(map[int64]struct{})
	for _, seg := range group {
		for _, r := range seg.recs {
			if _, gone := dead[r.ID]; gone {
				dropped[r.ID] = struct{}{}
				continue
			}
			blob, err := seg.LoadBlob(r)
			if err != nil {
				return false, err
			}
			merged = append(merged, FlushEntry{ID: r.ID, Blob: blob, MBR: r.MBR, Feat: r.Feat})
		}
	}
	var out *Segment
	if len(merged) > 0 {
		st.mu.Lock()
		name := fmt.Sprintf("seg-%08d%s", st.seq, segSuffix)
		st.seq++
		st.mu.Unlock()
		path := filepath.Join(st.dir, name)
		tmp := path + ".tmp"
		if err := writeSegment(tmp, st.opts.Dim, merged); err != nil {
			_ = os.Remove(tmp)
			return false, err
		}
		if err := os.Rename(tmp, path); err != nil {
			_ = os.Remove(tmp)
			return false, err
		}
		st.syncDir()
		var err error
		if out, err = OpenSegment(path); err != nil {
			_ = os.Remove(path)
			return false, err
		}
	}
	mergeSpan.SetInt("records", int64(len(merged)))
	mergeSpan.SetInt("dropped", int64(len(dropped)))
	mergeSpan.End()

	commitSpan := tr.Start("commit")
	defer commitSpan.End()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		if out != nil {
			_ = out.close()
			_ = os.Remove(out.path)
		}
		return false, nil
	}
	// Locate the group (flushes only append, and cmu excludes other
	// compactions, so the run is still present and contiguous).
	at := -1
	for i, s := range st.segs {
		if s == group[0] {
			at = i
			break
		}
	}
	if at < 0 || at+len(group) > len(st.segs) {
		return false, fmt.Errorf("segstore: compaction group vanished")
	}
	newSegs := make([]*Segment, 0, len(st.segs)-len(group)+1)
	newSegs = append(newSegs, st.segs[:at]...)
	if out != nil {
		newSegs = append(newSegs, out)
	}
	newSegs = append(newSegs, st.segs[at+len(group):]...)
	// Dropped records take their tombstones with them (ids are unique
	// across segments, so a dropped id exists nowhere else).
	for id := range dropped {
		delete(st.tombs, id)
	}
	if err := st.commitManifestLocked(newSegs); err != nil {
		for id := range dropped {
			st.tombs[id] = struct{}{}
		}
		if out != nil {
			_ = out.close()
			_ = os.Remove(out.path)
		}
		return false, err
	}
	st.segs = newSegs
	st.compactions++
	metricCompactions.Inc()
	// Retire the inputs: unlink now, close when the last pinned View
	// lets go (the finalizer set at OpenSegment). OnRetire lets callers
	// drop derived state keyed by the retired segments before any query
	// can observe the new segment set without them.
	for _, seg := range group {
		_ = os.Remove(seg.path)
		if st.opts.OnRetire != nil {
			st.opts.OnRetire(seg)
		}
	}
	return true, nil
}

// selectGroupLocked picks the next compaction group: the first adjacent
// run of >= 2 segments whose live payload is below the target (capped at
// 4x the target per merge), else the first tombstone-heavy segment
// (>= 1/2 dead bytes) rewritten alone. It returns the group plus a
// snapshot of the tombstoned ids to drop; records tombstoned after this
// snapshot survive the merge and are dropped by a later pass.
func (st *Store) selectGroupLocked() ([]*Segment, map[int64]struct{}) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, nil
	}
	target := st.opts.TargetSegmentBytes
	live := make([]int, len(st.segs))
	deadBytes := make([]int, len(st.segs))
	for i, seg := range st.segs {
		for _, r := range seg.recs {
			if _, gone := st.tombs[r.ID]; gone {
				deadBytes[i] += int(r.Len)
			} else {
				live[i] += int(r.Len)
			}
		}
	}
	snapshotTombs := func() map[int64]struct{} {
		m := make(map[int64]struct{}, len(st.tombs))
		for id := range st.tombs {
			m[id] = struct{}{}
		}
		return m
	}
	for i := 0; i < len(st.segs); i++ {
		if live[i] >= target {
			continue
		}
		j, total := i, 0
		for j < len(st.segs) && live[j] < target && total+live[j] <= 4*target {
			total += live[j]
			j++
		}
		if j-i >= 2 {
			return append([]*Segment(nil), st.segs[i:j]...), snapshotTombs()
		}
	}
	for i, seg := range st.segs {
		if deadBytes[i] > 0 && deadBytes[i]*2 >= deadBytes[i]+live[i] {
			return []*Segment{seg}, snapshotTombs()
		}
	}
	return nil, nil
}
