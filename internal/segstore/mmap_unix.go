//go:build unix

package segstore

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The mapping stays
// valid after the file is unlinked (compaction retires inputs that way)
// and is released with munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
