package segstore

import (
	"os"
	"sync/atomic"
)

// Segment reads prefer a read-only memory mapping of the segment file:
// the columnar filter/gate scans and the refine-phase blob decodes then
// touch the page cache directly, with no per-candidate syscall and no
// per-read allocation. When mapping is disabled (SGS_MMAP=off in the
// environment, SetMmapEnabled(false), or an unsupported platform) or the
// mmap syscall itself fails, OpenSegment falls back to pread: the
// columnar region is read into the heap once at open and blob reads go
// through ReadAt with a pooled scratch buffer. Both paths serve the
// identical bytes — every test and every matching result is unaffected
// by the toggle.
var mmapEnabled atomic.Bool

func init() {
	mmapEnabled.Store(os.Getenv("SGS_MMAP") != "off")
}

// SetMmapEnabled switches newly opened segments between the mmap read
// path and the pread fallback, returning the previous setting. Already
// open segments keep the path they were opened with. It exists for tests
// and tools that must exercise the fallback deterministically; production
// code should use the SGS_MMAP environment variable instead.
func SetMmapEnabled(on bool) bool {
	return mmapEnabled.Swap(on)
}

// MmapEnabled reports whether newly opened segments will try to mmap.
func MmapEnabled() bool { return mmapEnabled.Load() }
