// Package segstore is the disk tier of the pattern base: an LSM-style
// store of immutable on-disk segments beneath internal/archive's
// in-memory generation, so a long-running archiver can serve matching
// queries over unbounded stream history with bounded resident memory
// (the off-line analysis workload of §3.2 assumes the pattern base keeps
// every archived summary; the memory tier alone cannot).
//
// # On-disk format
//
// A segment file holds a batch of archived summaries demoted from the
// memory tier, in FIFO (archive) order:
//
//	header  "SGSLOG1\n"                          — the archive.Appender log magic
//	records repeat{ length u32 | sgs.Marshal blob }  — Appender record framing
//	footer  "SGSFTR2\n" | dim u8 | count u32 |
//	        per record: id i64 | blobOff u64 | blobLen u32 |
//	                    MBR min dim×f64 | MBR max dim×f64 | features 4×f64
//	        zone: union MBR min/max dim×f64 each | feature min 4×f64 | feature max 4×f64
//	trailer footerOff u64 | footerLen u32 | crc32(footer) u32 | "SGSEND1\n"
//
// The footer's zone block is the segment's filter zone — the union of
// its records' MBRs and the per-dimension min/max of their feature
// vectors. SearchLocation and SearchFeatures test the query range
// against the zone first and skip the segment's indices entirely when it
// cannot match, so a filter phase fanned across many segments touches
// only the segments whose range overlaps the query. v1 footers
// ("SGSFTR1\n", no zone block) still open; their zone is derived from
// the records.
//
// The record region is byte-identical to an archive.Appender log: a
// segment whose footer or trailer is damaged is still a recoverable
// append log (archive.Base.LoadAppended salvages the intact record
// prefix). The footer is the segment's serialized index: it carries the
// id, byte range, bounding rectangle and non-locational feature vector
// of every record, so OpenSegment rebuilds the segment's R-tree and
// feature-grid probe structures from the footer alone — record blobs are
// only read (lazily, via pread) when the refine phase of a matching
// query actually needs a candidate's cells.
//
// Validity is all-or-nothing: OpenSegment verifies the end magic, the
// trailer's geometry (footerOff + footerLen + trailer == file size), the
// footer CRC, the header magic and every record's byte range before
// exposing anything. A file truncated at any byte offset fails one of
// those checks and is rejected whole — a torn segment is never loaded
// (see the recovery sweep in segment_test.go).
//
// # Store, manifest, compaction
//
// A Store is a directory of segments tracked by a MANIFEST file (magic,
// next file sequence number, ordered segment list, tombstoned ids, CRC).
// The manifest is the commit point of every store mutation and is always
// replaced atomically: written to a temp file, fsynced, renamed over
// MANIFEST. Segments likewise become visible only by rename and only
// after their bytes are synced, so a crash anywhere leaves either the
// old store state or the new one, never a mix; segment files not listed
// in the manifest are leftovers of an uncommitted flush (the entries
// they hold were still owned by the memory tier when the crash hit) and
// are removed on Open.
//
// Flush appends a new segment; Tombstone marks an id deleted (the bytes
// are reclaimed later); both commit by manifest rewrite. Flush is also
// available split in two — PrepareFlush writes and fsyncs the segment
// payload without touching store state (no lock held through the I/O),
// and PendingSegment.Commit performs the cheap rename + manifest commit
// — which is how the archiver's background demoter keeps segment writes
// off its own lock. A background
// compactor merges runs of undersized or tombstone-heavy adjacent
// segments into one, dropping tombstoned records and retiring the
// inputs. Manifest order is archive (FIFO) order and compaction only
// ever replaces adjacent runs in place, so the store-wide record
// sequence is preserved.
//
// # Concurrency and the read contract
//
// Segments are immutable after OpenSegment: any number of goroutines may
// probe SearchLocation/SearchFeatures concurrently (the same read-only
// traversal contract as internal/rtree and internal/featidx) and Load
// records concurrently (pread). View pins the current segment set plus a
// copy of the tombstones — the store analogue of archive.Snapshot — and
// remains searchable while flushes, tombstones and compactions proceed:
// a compaction retires replaced segments by unlinking them, but their
// open file handles keep every pinned View readable until the View (and
// the Segments it pins) become unreachable. Store.Close stops the
// compactor and closes all live segments; Views must not be used after
// Close.
package segstore
