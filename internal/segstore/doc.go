// Package segstore is the disk tier of the pattern base: an LSM-style
// store of immutable on-disk segments beneath internal/archive's
// in-memory generation, so a long-running archiver can serve matching
// queries over unbounded stream history with bounded resident memory
// (the off-line analysis workload of §3.2 assumes the pattern base keeps
// every archived summary; the memory tier alone cannot).
//
// # On-disk format (v3, current)
//
// A segment file holds a batch of archived summaries demoted from the
// memory tier, in FIFO (archive) order. The current format is columnar:
// every fixed-width filter-phase feature lives in a densely packed
// array, laid out for sequential scanning, and the variable-width
// summary blobs follow in their own region:
//
//	header   "SGSSEG3\n"
//	columns  ids   count×i64      — record ids, archive order
//	         offs  count×u64      — absolute file offset of each blob
//	         lens  count×u32
//	         (pad to 8-byte alignment)
//	         mbrs  count × (min dim×f64 | max dim×f64)
//	         feats count × 4×f64  — non-locational feature vectors
//	blobs    count sgs.Marshal blobs, packed, no per-record framing
//	footer   "SGSFTR3\n" | dim u8 | count u32 |
//	         colOff u64 | colLen u64 | blobOff u64 | blobLen u64 |
//	         crc32(columns) u32 |
//	         zone: union MBR min/max dim×f64 each | feature min 4×f64 | feature max 4×f64
//	trailer  footerOff u64 | footerLen u32 | crc32(footer) u32 | "SGSEND1\n"
//
// OpenSegment maps the file read-only (mmap) and serves the filter
// phase straight from the mapping: GatedSearchLocation and
// GatedSearchFeatures are linear scans of the mbrs/feats columns that
// run the range test and the exact feature gate fused, with zero
// allocation and no per-candidate syscall — only gate survivors
// materialize anything, and only refine survivors decode a blob (Load
// decodes directly from the mapping). When mmap is unavailable or
// disabled (SetMmapEnabled, or SGS_MMAP=off in the environment) the
// columns are read into one heap copy at open and blob loads fall back
// to pread into a pooled scratch buffer; every result is bit-identical
// either way.
//
// The footer's zone block is the segment's filter zone — the union of
// its records' MBRs and the per-dimension min/max of their feature
// vectors. Searches test the query range against the zone first and
// skip the segment's columns entirely when it cannot match, so a filter
// phase fanned across many segments touches only the segments whose
// range overlaps the query.
//
// # Legacy formats
//
// v1/v2 segments ("SGSLOG1\n" header, length-prefixed blob records, a
// serialized-index footer — "SGSFTR2\n" with the zone block, "SGSFTR1\n"
// without) still open read-only: their footer rebuilds in-memory R-tree
// and feature-grid probe structures, and their record region remains
// byte-identical to an archive.Appender log (a damaged legacy segment is
// salvageable with archive.Base.LoadAppended). A store may hold any mix
// of versions; compaction rewrites whatever it merges into v3. All new
// segments are written v3.
//
// Validity is all-or-nothing in every format: OpenSegment verifies the
// end magic, the trailer's geometry (footerOff + footerLen + trailer ==
// file size), the footer CRC, the header magic, the columnar-region CRC
// (v3) and every record's byte range before exposing anything. A file
// truncated at any byte offset fails one of those checks and is rejected
// whole — a torn segment is never loaded (see the recovery sweep in
// segment_test.go, which CI runs with mmap both on and off).
//
// # Store, manifest, compaction
//
// A Store is a directory of segments tracked by a MANIFEST file (magic,
// next file sequence number, ordered segment list, tombstoned ids, CRC).
// The manifest is the commit point of every store mutation and is always
// replaced atomically: written to a temp file, fsynced, renamed over
// MANIFEST. Segments likewise become visible only by rename and only
// after their bytes are synced, so a crash anywhere leaves either the
// old store state or the new one, never a mix; segment files not listed
// in the manifest are leftovers of an uncommitted flush (the entries
// they hold were still owned by the memory tier when the crash hit) and
// are removed on Open.
//
// Flush appends a new segment; Tombstone marks an id deleted (the bytes
// are reclaimed later); both commit by manifest rewrite. Flush is also
// available split in two — PrepareFlush writes and fsyncs the segment
// payload without touching store state (no lock held through the I/O),
// and PendingSegment.Commit performs the cheap rename + manifest commit
// — which is how the archiver's background demoter keeps segment writes
// off its own lock. A background
// compactor merges runs of undersized or tombstone-heavy adjacent
// segments into one, dropping tombstoned records and retiring the
// inputs. Manifest order is archive (FIFO) order and compaction only
// ever replaces adjacent runs in place, so the store-wide record
// sequence is preserved.
//
// # Concurrency, mapping lifetime and the read contract
//
// Segments are immutable after OpenSegment: any number of goroutines may
// probe the search methods concurrently (the same read-only traversal
// contract as internal/rtree and internal/featidx) and Load records
// concurrently. View pins the current segment set plus a copy of the
// tombstones — the store analogue of archive.Snapshot — and remains
// searchable while flushes, tombstones and compactions proceed: a
// compaction retires replaced segments by unlinking them, but an mmap
// (like an open file handle) survives unlink, so every pinned View stays
// readable until the View (and the Segments it pins) become unreachable,
// at which point a finalizer unmaps and closes. Blob slices returned by
// LoadBlob on a mapped segment are views into that mapping and share its
// lifetime — copy them to retain them past the pinning View. Store.Close
// stops the compactor and unmaps/closes all live segments; Views must
// not be used after Close.
//
// Decoded summaries (Segment.Load) carry no such restriction: a decode
// copies everything it needs out of the mapping, so holders may retain
// them indefinitely. The archive's decoded-summary cache
// (internal/sumcache) does exactly that, keying decodes by the *Segment
// they came from — which pins the segment and its mapping like a View
// does. Options.OnRetire tells such derived-state holders, under the
// store lock, when compaction retires a segment, so they can drop their
// decodes and release the pin promptly instead of waiting for the
// finalizer.
package segstore
