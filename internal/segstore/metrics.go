package segstore

import "streamsum/internal/obs"

// Process-wide store metrics (obs.Default). Counters touched on the
// filter/refine hot paths are single atomic adds — see internal/obs for
// the zero-allocation contract.
var (
	metricOpenedV1 = obs.NewCounter("sgs_segstore_segments_opened_total",
		"Segment files opened, by on-disk format version.", obs.L{Key: "format", Value: "v1"})
	metricOpenedV2 = obs.NewCounter("sgs_segstore_segments_opened_total",
		"", obs.L{Key: "format", Value: "v2"})
	metricOpenedV3 = obs.NewCounter("sgs_segstore_segments_opened_total",
		"", obs.L{Key: "format", Value: "v3"})

	metricLoadsMmap = obs.NewCounter("sgs_segstore_record_loads_total",
		"Record blob reads, by access mode (mmap = decoded from the mapping, pread = syscall fallback).",
		obs.L{Key: "mode", Value: "mmap"})
	metricLoadsPread = obs.NewCounter("sgs_segstore_record_loads_total",
		"", obs.L{Key: "mode", Value: "pread"})

	metricScans = obs.NewCounter("sgs_segstore_segment_scans_total",
		"Gated segment probes that passed the zone filter and scanned the segment.")
	metricZoneSkips = obs.NewCounter("sgs_segstore_zone_skips_total",
		"Gated segment probes answered by the zone filter alone (whole segment skipped).")

	metricFlushes = obs.NewCounter("sgs_segstore_flushes_total",
		"Segments committed by flush (demotion).")
	metricCompactions = obs.NewCounter("sgs_segstore_compactions_total",
		"Committed compactions.")
)

func (s *Segment) countOpen() {
	switch s.version {
	case 1:
		metricOpenedV1.Inc()
	case 2:
		metricOpenedV2.Inc()
	default:
		metricOpenedV3.Inc()
	}
}
