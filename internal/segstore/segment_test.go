package segstore

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/sgs"
)

// makeEntries builds n flush entries from real clustered summaries, ids
// starting at firstID.
func makeEntries(t testing.TB, n int, seed, firstID int64) []FlushEntry {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	thetaR := 0.5
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	var out []FlushEntry
	for len(out) < n {
		cx, cy := rng.Float64()*50, rng.Float64()*50
		var pts []geom.Point
		for i := 0; i < 80+rng.Intn(80); i++ {
			pts = append(pts, geom.Point{cx + rng.NormFloat64()*0.8, cy + rng.NormFloat64()*0.8})
		}
		ids := make([]int64, len(pts))
		for i := range ids {
			ids[i] = int64(i)
		}
		res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, cl := range res.Clusters {
			var cpts []geom.Point
			var isCore []bool
			for _, id := range cl.Members {
				cpts = append(cpts, pts[id])
				isCore = append(isCore, res.IsCore[id])
			}
			id := firstID + int64(len(out))
			s, err := sgs.FromCluster(geo, cpts, isCore, id, 0)
			if err != nil {
				t.Fatal(err)
			}
			s.ID = id
			out = append(out, FlushEntry{
				ID: id, Blob: sgs.Marshal(s), MBR: s.MBR(), Feat: s.Features().Vector(),
			})
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestSegmentRoundTrip(t *testing.T) {
	entries := makeEntries(t, 8, 1, 100)
	path := filepath.Join(t.TempDir(), "seg-00000000"+segSuffix)
	if err := writeSegment(path, 2, entries); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.close()
	if seg.Len() != len(entries) || seg.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", seg.Len(), seg.Dim())
	}
	for i, e := range entries {
		r := seg.Records()[i]
		if r.ID != e.ID || int(r.Len) != len(e.Blob) {
			t.Fatalf("record %d: id=%d len=%d", i, r.ID, r.Len)
		}
		got, ok := seg.Get(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("Get(%d) missing", e.ID)
		}
		s, err := seg.Load(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(sgs.Marshal(s)) != string(e.Blob) {
			t.Fatalf("record %d: loaded summary does not round-trip", i)
		}
	}
	// Index probes agree with a linear scan.
	want := 0
	q := entries[3].MBR
	for _, e := range entries {
		if e.MBR.Intersects(q) {
			want++
		}
	}
	got := 0
	seg.SearchLocation(q, func(Record) bool { got++; return true })
	if got != want {
		t.Fatalf("SearchLocation: %d hits, linear scan %d", got, want)
	}
	lo := [4]float64{0, 0, 0, 0}
	hi := entries[0].Feat
	want = 0
	for _, e := range entries {
		in := true
		for d := 0; d < 4; d++ {
			if e.Feat[d] < lo[d] || e.Feat[d] > hi[d] {
				in = false
			}
		}
		if in {
			want++
		}
	}
	got = 0
	seg.SearchFeatures(lo, hi, func(Record) bool { got++; return true })
	if got != want {
		t.Fatalf("SearchFeatures: %d hits, linear scan %d", got, want)
	}
}

func TestStoreFlushTombstoneCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Dim: 2, TargetSegmentBytes: 1 << 20, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var all []FlushEntry
	for i := 0; i < 4; i++ {
		batch := makeEntries(t, 5, int64(10+i), int64(100*i))
		all = append(all, batch...)
		if err := st.Flush(batch); err != nil {
			t.Fatal(err)
		}
	}
	if s := st.Stats(); s.Segments != 4 || s.LiveRecords != 20 {
		t.Fatalf("stats after flush: %+v", s)
	}

	// Tombstone a few ids; view pinned before sees them gone already
	// (views copy tombstones at creation, not lazily)? No — pin first.
	before := st.View()
	dead := []int64{all[0].ID, all[7].ID, all[13].ID}
	for _, id := range dead {
		ok, err := st.Tombstone(id)
		if err != nil || !ok {
			t.Fatalf("Tombstone(%d): ok=%v err=%v", id, ok, err)
		}
	}
	if ok, _ := st.Tombstone(dead[0]); ok {
		t.Fatal("double tombstone reported live")
	}
	if ok, _ := st.Tombstone(999999); ok {
		t.Fatal("unknown id tombstoned")
	}
	if before.Len() != 20 {
		t.Fatalf("pinned view shrank: %d", before.Len())
	}
	after := st.View()
	if after.Len() != 17 {
		t.Fatalf("view after tombstones: %d", after.Len())
	}
	if _, _, ok := after.Get(dead[0]); ok {
		t.Fatal("tombstoned id visible through view")
	}

	// Compact: all four segments are under the target, so they merge into
	// one, dropping the tombstoned records and their tombstones.
	if err := st.CompactNow(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Segments != 1 || s.LiveRecords != 17 || s.Records != 17 || s.Tombstones != 0 {
		t.Fatalf("stats after compaction: %+v", s)
	}
	// Order preserved, dead ids gone.
	v := st.View()
	var got []int64
	for _, seg := range v.Segments() {
		for _, r := range seg.Records() {
			got = append(got, r.ID)
		}
	}
	var want []int64
	deadSet := map[int64]bool{dead[0]: true, dead[1]: true, dead[2]: true}
	for _, e := range all {
		if !deadSet[e.ID] {
			want = append(want, e.ID)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("merged ids: %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order broken at %d: %v want %v", i, got, want)
		}
	}
	// The pinned pre-compaction view still reads records whose files were
	// unlinked by the merge.
	seg0 := before.Segments()[0]
	sum, err := seg0.Load(seg0.Records()[0])
	if err != nil {
		t.Fatalf("pinned view read after compaction: %v", err)
	}
	if sum.NumCells() == 0 {
		t.Fatal("empty summary from pinned view")
	}
}

func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := makeEntries(t, 6, 2, 40)
	if err := st.Flush(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Tombstone(batch[2].ID); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Orphans from an uncommitted flush must be swept on open.
	orphan := filepath.Join(dir, "seg-00000099"+segSuffix)
	if err := os.WriteFile(orphan, []byte("torn junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "seg-00000100"+segSuffix+".tmp")
	if err := os.WriteFile(tmp, []byte("tmp junk"), 0o666); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan segment not removed")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("tmp file not removed")
	}
	s := st2.Stats()
	if s.Segments != 1 || s.Records != 6 || s.LiveRecords != 5 || s.Tombstones != 1 {
		t.Fatalf("reopened stats: %+v", s)
	}
	if got, want := st2.MaxID(), batch[5].ID; got != want {
		t.Fatalf("MaxID = %d, want %d", got, want)
	}
	v := st2.View()
	if _, _, ok := v.Get(batch[2].ID); ok {
		t.Fatal("tombstone not persisted")
	}
	seg, r, ok := v.Get(batch[4].ID)
	if !ok {
		t.Fatal("live record missing after reopen")
	}
	if _, err := seg.Load(r); err != nil {
		t.Fatal(err)
	}
	// Dimension mismatch is refused.
	if _, err := Open(dir, Options{Dim: 3, NoBackgroundCompaction: true}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestSegstoreRecovery is the crash-consistency sweep (run twice in CI):
// a segment or manifest truncated at any byte offset must be rejected
// whole — recovery never loads a torn segment or trusts a torn manifest.
func TestSegstoreRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(makeEntries(t, 4, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(makeEntries(t, 3, 4, 50)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	segPath := filepath.Join(dir, "seg-00000000"+segSuffix)
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	sweepDir := t.TempDir()
	cutPath := filepath.Join(sweepDir, "cut"+segSuffix)
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(cutPath, full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		if seg, err := OpenSegment(cutPath); err == nil {
			seg.close()
			t.Fatalf("segment truncated at byte %d/%d accepted", cut, len(full))
		}
	}
	if err := os.WriteFile(cutPath, full, 0o666); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(cutPath)
	if err != nil {
		t.Fatalf("intact segment rejected: %v", err)
	}
	seg.close()

	// A torn segment listed by an intact manifest fails store recovery.
	if err := os.WriteFile(segPath, full[:len(full)-1], 0o666); err != nil {
		t.Fatal(err)
	}
	if st, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true}); err == nil {
		st.Close()
		t.Fatal("store opened over a torn segment")
	}
	if err := os.WriteFile(segPath, full, 0o666); err != nil {
		t.Fatal(err)
	}

	// Manifest sweep: any truncation (including to zero bytes) fails the
	// CRC or structure checks; the intact manifest opens clean.
	manPath := filepath.Join(dir, manifestName)
	man, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(man); cut++ {
		if err := os.WriteFile(manPath, man[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		if st, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true}); err == nil {
			st.Close()
			t.Fatalf("manifest truncated at byte %d/%d accepted", cut, len(man))
		}
	}
	if err := os.WriteFile(manPath, man, 0o666); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatalf("intact store rejected after sweep: %v", err)
	}
	defer st2.Close()
	if s := st2.Stats(); s.Segments != 2 || s.LiveRecords != 7 {
		t.Fatalf("recovered stats: %+v", s)
	}
}

// TestSegmentZone checks the footer's filter zone across all three
// formats: it must bound every record, disjoint queries must return
// nothing (the skip path), a v2 footer must carry the same zone, and a
// v1 footer (no zone block) must still open with a derived zone.
func TestSegmentZone(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 12, 3, 0)
	path := filepath.Join(dir, "zone.sgsseg")
	if err := writeSegment(path, 2, entries); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Format() != 3 {
		t.Fatalf("current writer produced format %d", seg.Format())
	}
	mbr, fmin, fmax := seg.Zone()
	for _, r := range seg.Records() {
		if !mbr.Intersects(r.MBR) {
			t.Fatalf("zone MBR %v misses record %d MBR %v", mbr, r.ID, r.MBR)
		}
		for d := 0; d < 4; d++ {
			if r.Feat[d] < fmin[d] || r.Feat[d] > fmax[d] {
				t.Fatalf("record %d feature %d = %g outside zone [%g, %g]", r.ID, d, r.Feat[d], fmin[d], fmax[d])
			}
		}
	}

	// A feature range strictly above the zone max must visit nothing.
	var lo, hi [4]float64
	for d := 0; d < 4; d++ {
		lo[d], hi[d] = fmax[d]+1, fmax[d]+2
	}
	seg.SearchFeatures(lo, hi, func(r Record) bool {
		t.Fatalf("disjoint feature range visited record %d", r.ID)
		return false
	})
	// A location box outside the union MBR must visit nothing.
	far := geom.MBR{Min: geom.Point{mbr.Max[0] + 10, mbr.Max[1] + 10}, Max: geom.Point{mbr.Max[0] + 11, mbr.Max[1] + 11}}
	seg.SearchLocation(far, func(r Record) bool {
		t.Fatalf("disjoint location box visited record %d", r.ID)
		return false
	})
	// In-zone queries still work: probing each record's own feature
	// vector must find it.
	for _, r := range seg.Records() {
		found := false
		seg.SearchFeatures(r.Feat, r.Feat, func(got Record) bool {
			if got.ID == r.ID {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("point probe missed record %d", r.ID)
		}
	}

	// Rewrite the same records as a legacy v2 file, then under a v1
	// footer (records only, v1 magic): OpenSegment must derive an
	// identical zone.
	v2path := filepath.Join(dir, "zone-v2.sgsseg")
	if err := writeSegmentV2(v2path, 2, entries); err != nil {
		t.Fatal(err)
	}
	seg2, err := OpenSegment(v2path)
	if err != nil {
		t.Fatalf("v2 segment rejected: %v", err)
	}
	if seg2.Format() != 2 {
		t.Fatalf("v2 segment reports format %d", seg2.Format())
	}
	mbr2, fmin2, fmax2 := seg2.Zone()
	if !reflect.DeepEqual(mbr2, mbr) || fmin2 != fmin || fmax2 != fmax {
		t.Fatalf("v2 zone differs from v3: %v %v %v vs %v %v %v", mbr2, fmin2, fmax2, mbr, fmin, fmax)
	}
	recs := seg2.Records()
	v1 := encodeFooterV2(2, recs)
	copy(v1[:8], footerMagicV1[:])
	v1 = v1[:len(v1)-(2*16+64)] // drop the zone block
	raw, err := os.ReadFile(v2path)
	if err != nil {
		t.Fatal(err)
	}
	footerOff := int64(len(raw)) - trailerSize
	// Recover the original footer offset from the trailer to find where
	// the record region ends.
	origOff := int64(binary.LittleEndian.Uint64(raw[footerOff:]))
	body := raw[:origOff]
	out := append(append([]byte{}, body...), v1...)
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(origOff))
	binary.LittleEndian.PutUint32(tr[8:], uint32(len(v1)))
	binary.LittleEndian.PutUint32(tr[12:], crc32.ChecksumIEEE(v1))
	copy(tr[16:], endMagic[:])
	out = append(out, tr[:]...)
	v1path := filepath.Join(dir, "zone-v1.sgsseg")
	if err := os.WriteFile(v1path, out, 0o666); err != nil {
		t.Fatal(err)
	}
	seg1, err := OpenSegment(v1path)
	if err != nil {
		t.Fatalf("v1 footer rejected: %v", err)
	}
	if seg1.Format() != 1 {
		t.Fatalf("v1 segment reports format %d", seg1.Format())
	}
	mbr1, fmin1, fmax1 := seg1.Zone()
	if !reflect.DeepEqual(mbr1, mbr) || fmin1 != fmin || fmax1 != fmax {
		t.Fatalf("derived v1 zone differs: %v %v %v vs %v %v %v", mbr1, fmin1, fmax1, mbr, fmin, fmax)
	}
	if seg1.Len() != seg.Len() {
		t.Fatalf("v1 reopen lost records: %d vs %d", seg1.Len(), seg.Len())
	}
}
