//go:build !unix

package segstore

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("segstore: mmap unsupported on this platform")

// mmapFile always fails on platforms without Unix mmap; OpenSegment
// falls back to the pread path.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile(b []byte) error { return nil }
