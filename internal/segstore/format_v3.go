package segstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"streamsum/internal/geom"
)

// v3 segment format: the filter-phase features live in a densely packed
// fixed-width columnar region at the front of the file, laid out for
// sequential scanning straight out of a read-only mmap, and the
// variable-width summary blobs follow in their own region, touched only
// by refine survivors. See doc.go for the full layout.
var (
	segMagicV3    = [8]byte{'S', 'G', 'S', 'S', 'E', 'G', '3', '\n'}
	footerMagicV3 = [8]byte{'S', 'G', 'S', 'F', 'T', 'R', '3', '\n'}
)

// v3 fixed footer head: magic | dim u8 | count u32 | colOff u64 |
// colLen u64 | blobOff u64 | blobLen u64 | colCRC u32, then the v2-style
// zone block (union MBR + per-feature min/max).
const footerV3Head = 8 + 1 + 4 + 8*4 + 4

// colLayout describes the byte offsets of the six columns inside the
// columnar region for a given record count and dimensionality. Columns
// are arrays, one value (or one fixed-width group) per record: scanning
// the feature gate touches only the feats column, a location scan only
// the mbrs column.
type colLayout struct {
	ids   int // count × i64
	offs  int // count × u64 (absolute file offset of the record's blob)
	lens  int // count × u32
	mbrs  int // count × dim×f64 min, dim×f64 max
	feats int // count × 4×f64
	size  int
}

func layoutV3(count, dim int) colLayout {
	var l colLayout
	l.ids = 0
	l.offs = l.ids + count*8
	l.lens = l.offs + count*8
	end := l.lens + count*4
	end += (8 - end%8) % 8 // pad so the f64 columns stay 8-byte aligned
	l.mbrs = end
	l.feats = l.mbrs + count*dim*16
	l.size = l.feats + count*32
	return l
}

// writeSegmentV3 writes a complete v3 segment file at path (no atomicity
// — the caller writes to a temp name and renames). Entries must be in
// archive (FIFO) order and share the store's dimensionality.
func writeSegmentV3(path string, dim int, entries []FlushEntry) error {
	count := len(entries)
	l := layoutV3(count, dim)
	col := make([]byte, l.size)
	blobOff := int64(len(segMagicV3)) + int64(l.size)
	off := blobOff
	for i, e := range entries {
		if e.MBR.Dim() != dim {
			return fmt.Errorf("segstore: entry %d dimension %d != store dimension %d", e.ID, e.MBR.Dim(), dim)
		}
		binary.LittleEndian.PutUint64(col[l.ids+i*8:], uint64(e.ID))
		binary.LittleEndian.PutUint64(col[l.offs+i*8:], uint64(off))
		binary.LittleEndian.PutUint32(col[l.lens+i*4:], uint32(len(e.Blob)))
		m := col[l.mbrs+i*dim*16:]
		for d := 0; d < dim; d++ {
			binary.LittleEndian.PutUint64(m[d*8:], math.Float64bits(e.MBR.Min[d]))
			binary.LittleEndian.PutUint64(m[(dim+d)*8:], math.Float64bits(e.MBR.Max[d]))
		}
		ft := col[l.feats+i*32:]
		for d := 0; d < 4; d++ {
			binary.LittleEndian.PutUint64(ft[d*8:], math.Float64bits(e.Feat[d]))
		}
		off += int64(len(e.Blob))
	}
	footerOff := off

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(segMagicV3[:]); err != nil {
		return err
	}
	if _, err := w.Write(col); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := w.Write(e.Blob); err != nil {
			return err
		}
	}

	footer := make([]byte, 0, footerV3Head+zoneSize(dim))
	footer = append(footer, footerMagicV3[:]...)
	footer = append(footer, byte(dim))
	var n4 [4]byte
	var n8 [8]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(count))
	footer = append(footer, n4[:]...)
	for _, v := range []uint64{
		uint64(len(segMagicV3)),     // colOff
		uint64(l.size),              // colLen
		uint64(blobOff),             // blobOff
		uint64(footerOff - blobOff), // blobLen
	} {
		binary.LittleEndian.PutUint64(n8[:], v)
		footer = append(footer, n8[:]...)
	}
	binary.LittleEndian.PutUint32(n4[:], crc32.ChecksumIEEE(col))
	footer = append(footer, n4[:]...)
	footer = appendZone(footer, dim, zoneOfEntries(dim, entries))
	if _, err := w.Write(footer); err != nil {
		return err
	}

	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(footerOff))
	binary.LittleEndian.PutUint32(tr[8:], uint32(len(footer)))
	binary.LittleEndian.PutUint32(tr[12:], crc32.ChecksumIEEE(footer))
	copy(tr[16:], endMagic[:])
	if _, err := w.Write(tr[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// zoneSize is the encoded size of a zone block.
func zoneSize(dim int) int { return dim*16 + 64 }

// appendZone encodes the zone block (identical layout in v2 and v3
// footers: union MBR min/max, then per-feature min/max).
func appendZone(buf []byte, dim int, z zone) []byte {
	var n8 [8]byte
	f64 := func(v float64) {
		binary.LittleEndian.PutUint64(n8[:], math.Float64bits(v))
		buf = append(buf, n8[:]...)
	}
	for d := 0; d < dim; d++ {
		f64(z.mbr.Min[d])
	}
	for d := 0; d < dim; d++ {
		f64(z.mbr.Max[d])
	}
	for d := 0; d < 4; d++ {
		f64(z.featMin[d])
	}
	for d := 0; d < 4; d++ {
		f64(z.featMax[d])
	}
	return buf
}

// decodeZone decodes a zone block, returning the remaining bytes.
func decodeZone(b []byte, dim int) (zone, []byte, error) {
	var z zone
	if len(b) < zoneSize(dim) {
		return z, nil, fmt.Errorf("truncated zone block")
	}
	z.mbr = geom.MBR{Min: make(geom.Point, dim), Max: make(geom.Point, dim)}
	for d := 0; d < dim; d++ {
		z.mbr.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(b[d*8:]))
	}
	b = b[dim*8:]
	for d := 0; d < dim; d++ {
		z.mbr.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(b[d*8:]))
	}
	b = b[dim*8:]
	for d := 0; d < 4; d++ {
		z.featMin[d] = math.Float64frombits(binary.LittleEndian.Uint64(b[d*8:]))
	}
	b = b[4*8:]
	for d := 0; d < 4; d++ {
		z.featMax[d] = math.Float64frombits(binary.LittleEndian.Uint64(b[d*8:]))
	}
	return z, b[4*8:], nil
}

func zoneOfEntries(dim int, entries []FlushEntry) zone {
	z := zone{mbr: geom.EmptyMBR(dim)}
	for d := 0; d < 4; d++ {
		z.featMin[d] = math.Inf(1)
		z.featMax[d] = math.Inf(-1)
	}
	for _, e := range entries {
		z.mbr.Extend(e.MBR)
		for d := 0; d < 4; d++ {
			z.featMin[d] = math.Min(z.featMin[d], e.Feat[d])
			z.featMax[d] = math.Max(z.featMax[d], e.Feat[d])
		}
	}
	return z
}

// openSegmentV3 validates a v3 segment and builds its in-memory state:
// the columnar region either as a sub-slice of the file mapping (zero
// copy) or, on the pread fallback, as one heap copy read at open. The
// caller has already verified the trailer geometry and footer CRC.
func openSegmentV3(path string, f *os.File, size, footerOff int64, footer []byte) (*Segment, error) {
	var head [8]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadSegment, path, err)
	}
	if head != segMagicV3 {
		return nil, fmt.Errorf("%w: %s: bad header magic for v3 footer", ErrBadSegment, path)
	}
	if len(footer) < footerV3Head {
		return nil, fmt.Errorf("%w: %s: short v3 footer", ErrBadSegment, path)
	}
	p := footer[8:]
	dim := int(p[0])
	if dim < 1 || dim > 8 {
		return nil, fmt.Errorf("%w: %s: footer dimension %d", ErrBadSegment, path, dim)
	}
	count := int(binary.LittleEndian.Uint32(p[1:]))
	colOff := int64(binary.LittleEndian.Uint64(p[5:]))
	colLen := int64(binary.LittleEndian.Uint64(p[13:]))
	blobOff := int64(binary.LittleEndian.Uint64(p[21:]))
	blobLen := int64(binary.LittleEndian.Uint64(p[29:]))
	colCRC := binary.LittleEndian.Uint32(p[37:])
	l := layoutV3(count, dim)
	if colOff != int64(len(segMagicV3)) || colLen != int64(l.size) ||
		blobOff != colOff+colLen || blobOff+blobLen != footerOff {
		return nil, fmt.Errorf("%w: %s: v3 region geometry", ErrBadSegment, path)
	}
	zone, rest, err := decodeZone(footer[footerV3Head:], dim)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("%w: %s: v3 zone block", ErrBadSegment, path)
	}

	seg := &Segment{
		path: path, f: f, version: 3, dim: dim, zone: zone,
		payload: int(blobLen),
		byID:    make(map[int64]int, count),
	}
	if MmapEnabled() {
		if m, err := mmapFile(f, size); err == nil {
			seg.mapped = m
			seg.col = m[colOff : colOff+colLen]
		}
	}
	if seg.col == nil {
		col := make([]byte, colLen)
		if _, err := f.ReadAt(col, colOff); err != nil {
			return nil, fmt.Errorf("%w: %s: read columnar region: %v", ErrBadSegment, path, err)
		}
		seg.col = col
	}
	if crc32.ChecksumIEEE(seg.col) != colCRC {
		seg.release()
		return nil, fmt.Errorf("%w: %s: columnar region CRC mismatch", ErrBadSegment, path)
	}
	seg.count = count
	seg.lay = l

	// Materialize the record directory (Get, Records, compaction). The
	// scans below never touch it for range tests — they read the columns —
	// but survivors are surfaced as Records.
	seg.recs = make([]Record, count)
	next := blobOff
	for i := 0; i < count; i++ {
		r := &seg.recs[i]
		r.ID = seg.idAt(i)
		r.Off = seg.offAt(i)
		r.Len = seg.lenAt(i)
		if r.Off != next || r.Off+int64(r.Len) > footerOff {
			seg.release()
			return nil, fmt.Errorf("%w: %s: record %d byte range", ErrBadSegment, path, i)
		}
		next = r.Off + int64(r.Len)
		if _, dup := seg.byID[r.ID]; dup {
			seg.release()
			return nil, fmt.Errorf("%w: %s: duplicate id %d", ErrBadSegment, path, r.ID)
		}
		seg.byID[r.ID] = i
		r.MBR = geom.MBR{Min: make(geom.Point, dim), Max: make(geom.Point, dim)}
		for d := 0; d < dim; d++ {
			r.MBR.Min[d] = seg.colF64(seg.lay.mbrs + (i*2*dim+d)*8)
			r.MBR.Max[d] = seg.colF64(seg.lay.mbrs + (i*2*dim+dim+d)*8)
		}
		if r.MBR.IsEmpty() {
			seg.release()
			return nil, fmt.Errorf("%w: %s: record %d has an empty MBR", ErrBadSegment, path, i)
		}
		for d := 0; d < 4; d++ {
			r.Feat[d] = seg.colF64(seg.lay.feats + (i*4+d)*8)
		}
	}
	if next != footerOff {
		seg.release()
		return nil, fmt.Errorf("%w: %s: blob region does not meet footer", ErrBadSegment, path)
	}
	return seg, nil
}

// Column accessors. The columnar region is a flat byte slice (mapped or
// heap-resident); these are straight loads, no allocation.

func (s *Segment) colF64(off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(s.col[off:]))
}

func (s *Segment) idAt(i int) int64 {
	return int64(binary.LittleEndian.Uint64(s.col[s.lay.ids+i*8:]))
}

func (s *Segment) offAt(i int) int64 {
	return int64(binary.LittleEndian.Uint64(s.col[s.lay.offs+i*8:]))
}

func (s *Segment) lenAt(i int) uint32 {
	return binary.LittleEndian.Uint32(s.col[s.lay.lens+i*4:])
}

// featAt reads record i's feature vector from the feats column.
func (s *Segment) featAt(i int) [4]float64 {
	ft := s.col[s.lay.feats+i*32:]
	return [4]float64{
		math.Float64frombits(binary.LittleEndian.Uint64(ft[0:])),
		math.Float64frombits(binary.LittleEndian.Uint64(ft[8:])),
		math.Float64frombits(binary.LittleEndian.Uint64(ft[16:])),
		math.Float64frombits(binary.LittleEndian.Uint64(ft[24:])),
	}
}

// scanFeaturesV3 linearly scans the feats column for records inside
// [lo, hi], applying gate (when non-nil) before visiting — the fused
// filter+gate pass. It returns the number of in-range records (the index
// candidates), so callers report the same filter statistics the indexed
// v1/v2 path would. The scan reads only the mapped (or heap) columns:
// zero allocation, no syscall.
func (s *Segment) scanFeaturesV3(lo, hi [4]float64, gate func([4]float64) bool, visit func(Record) bool) int {
	probed := 0
	for i := 0; i < s.count; i++ {
		v := s.featAt(i)
		if v[0] < lo[0] || v[0] > hi[0] || v[1] < lo[1] || v[1] > hi[1] ||
			v[2] < lo[2] || v[2] > hi[2] || v[3] < lo[3] || v[3] > hi[3] {
			continue
		}
		probed++
		if gate != nil && !gate(v) {
			continue
		}
		if !visit(s.recs[i]) {
			break
		}
	}
	return probed
}

// scanLocationV3 linearly scans the mbrs column for records whose MBR
// intersects q (inclusive bounds, exactly geom.MBR.Intersects), applying
// gate before visiting. Returns the number of intersecting records.
func (s *Segment) scanLocationV3(q geom.MBR, gate func([4]float64) bool, visit func(Record) bool) int {
	if q.IsEmpty() {
		return 0
	}
	probed := 0
	dim := s.dim
	stride := 2 * dim * 8
	for i := 0; i < s.count; i++ {
		base := s.lay.mbrs + i*stride
		hit := true
		for d := 0; d < dim; d++ {
			min := s.colF64(base + d*8)
			max := s.colF64(base + (dim+d)*8)
			if max < q.Min[d] || q.Max[d] < min {
				hit = false
				break
			}
		}
		if !hit {
			continue
		}
		probed++
		if gate != nil && !gate(s.featAt(i)) {
			continue
		}
		if !visit(s.recs[i]) {
			break
		}
	}
	return probed
}
