package segstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

var manifestMagic = [8]byte{'S', 'G', 'S', 'M', 'A', 'N', '1', '\n'}

const (
	manifestName = "MANIFEST"
	segSuffix    = ".sgsseg"
)

// ErrBadManifest is returned when the store's MANIFEST file fails
// validation (bad magic, torn bytes, CRC mismatch). The manifest is
// replaced atomically, so a damaged one signals external interference,
// not a crash — recovery refuses to guess.
var ErrBadManifest = errors.New("segstore: bad manifest")

// Options configures a store.
type Options struct {
	// Dim is the data-space dimensionality (required).
	Dim int
	// TargetSegmentBytes is the compaction goal: adjacent runs of
	// segments whose live payload is below this merge into one.
	// Default 256 KiB.
	TargetSegmentBytes int
	// NoBackgroundCompaction disables the compactor goroutine; CompactNow
	// still works (tools, deterministic tests).
	NoBackgroundCompaction bool
	// OnRetire, if set, is called once per source segment retired by a
	// committed compaction, under the store lock — callers use it to drop
	// derived state keyed by the segment (the archive's decoded-summary
	// cache). It must not call back into the store.
	OnRetire func(*Segment)
}

func (o *Options) fill() {
	if o.TargetSegmentBytes <= 0 {
		o.TargetSegmentBytes = 256 << 10
	}
}

// Stats is a point-in-time summary of the store for diagnostics and
// monitoring endpoints.
type Stats struct {
	Segments    int
	Records     int // including tombstoned records not yet compacted away
	LiveRecords int
	Bytes       int // encoded payload bytes on disk, including tombstoned
	LiveBytes   int
	Tombstones  int
	Compactions uint64

	// Per-format and access-mode composition of the live segment set.
	SegmentsV1     int
	SegmentsV2     int
	SegmentsV3     int
	SegmentsMapped int // segments serving reads from a memory mapping
}

// Store is a directory of immutable segments tracked by an atomically
// rewritten manifest. All exported methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	cmu sync.Mutex // serializes compactions (background loop vs CompactNow)

	mu          sync.Mutex
	seq         uint64 // next segment file number
	segs        []*Segment
	tombs       map[int64]struct{}
	maxID       int64
	compactions uint64
	closed      bool

	wake chan struct{} // buffered(1) compactor signal
	done chan struct{} // closed when the compactor exits
}

// Open opens (or creates) the store rooted at dir. Segment files present
// in the directory but not listed in the manifest are leftovers of an
// uncommitted flush or compaction and are removed; a segment the
// manifest does list must validate, or Open fails.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Dim < 1 {
		return nil, fmt.Errorf("segstore: dimension required")
	}
	opts.fill()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	st := &Store{
		dir: dir, opts: opts,
		maxID: -1,
		tombs: make(map[int64]struct{}),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	names, err := st.loadManifest()
	if err != nil {
		return nil, err
	}
	listed := make(map[string]bool, len(names))
	for _, name := range names {
		listed[name] = true
		seg, err := OpenSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if seg.dim != opts.Dim {
			return nil, fmt.Errorf("segstore: %s: dimension %d != store dimension %d", name, seg.dim, opts.Dim)
		}
		st.segs = append(st.segs, seg)
		for _, r := range seg.recs {
			if r.ID > st.maxID {
				st.maxID = r.ID
			}
		}
	}
	// Remove uncommitted leftovers (their entries were still owned by the
	// memory tier when the crash hit).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range entries {
		name := de.Name()
		if listed[name] || name == manifestName {
			continue
		}
		if strings.HasSuffix(name, segSuffix) || strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	if opts.NoBackgroundCompaction {
		close(st.done)
	} else {
		go st.compactLoop()
	}
	return st, nil
}

// loadManifest parses MANIFEST, returning the listed segment file names
// in archive order. A missing manifest means a fresh store.
func (st *Store) loadManifest() ([]string, error) {
	b, err := os.ReadFile(filepath.Join(st.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	} else if err != nil {
		return nil, err
	}
	if len(b) < len(manifestMagic)+1+8+4+4+4 || [8]byte(b[:8]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	if crc32.ChecksumIEEE(b[:len(b)-4]) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadManifest)
	}
	p := b[8 : len(b)-4]
	if int(p[0]) != st.opts.Dim {
		return nil, fmt.Errorf("segstore: manifest dimension %d != store dimension %d", p[0], st.opts.Dim)
	}
	st.seq = binary.LittleEndian.Uint64(p[1:])
	p = p[9:]
	nsegs := binary.LittleEndian.Uint32(p)
	p = p[4:]
	names := make([]string, 0, nsegs)
	for i := uint32(0); i < nsegs; i++ {
		if len(p) < 2 {
			return nil, fmt.Errorf("%w: truncated segment list", ErrBadManifest)
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return nil, fmt.Errorf("%w: truncated segment name", ErrBadManifest)
		}
		names = append(names, string(p[:n]))
		p = p[n:]
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: truncated tombstones", ErrBadManifest)
	}
	ntombs := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if len(p) != int(ntombs)*8 {
		return nil, fmt.Errorf("%w: tombstone list size", ErrBadManifest)
	}
	for i := uint32(0); i < ntombs; i++ {
		st.tombs[int64(binary.LittleEndian.Uint64(p[i*8:]))] = struct{}{}
	}
	return names, nil
}

// commitManifestLocked atomically replaces MANIFEST with one describing
// segs + st.tombs. It is the commit point of every store mutation: only
// after it returns does the caller install segs as st.segs.
func (st *Store) commitManifestLocked(segs []*Segment) error {
	buf := make([]byte, 0, 64+len(segs)*40+len(st.tombs)*8)
	buf = append(buf, manifestMagic[:]...)
	buf = append(buf, byte(st.opts.Dim))
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], st.seq)
	buf = append(buf, n8[:]...)
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(segs)))
	buf = append(buf, n4[:]...)
	for _, s := range segs {
		name := filepath.Base(s.path)
		var n2 [2]byte
		binary.LittleEndian.PutUint16(n2[:], uint16(len(name)))
		buf = append(buf, n2[:]...)
		buf = append(buf, name...)
	}
	// Sorted tombstones keep the manifest bytes deterministic for a given
	// logical state.
	tombs := make([]int64, 0, len(st.tombs))
	for id := range st.tombs {
		tombs = append(tombs, id)
	}
	sort.Slice(tombs, func(i, j int) bool { return tombs[i] < tombs[j] })
	binary.LittleEndian.PutUint32(n4[:], uint32(len(tombs)))
	buf = append(buf, n4[:]...)
	for _, id := range tombs {
		binary.LittleEndian.PutUint64(n8[:], uint64(id))
		buf = append(buf, n8[:]...)
	}
	binary.LittleEndian.PutUint32(n4[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, n4[:]...)

	tmp := filepath.Join(st.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, manifestName)); err != nil {
		return err
	}
	st.syncDir()
	return nil
}

// syncDir makes renames durable (best effort: some filesystems refuse
// directory fsync).
func (st *Store) syncDir() {
	if d, err := os.Open(st.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Flush writes entries (archive order) as one new immutable segment and
// commits it to the manifest. On error nothing is committed: the store's
// live state is unchanged and any partial file is an orphan the next
// Open removes.
func (st *Store) Flush(entries []FlushEntry) error {
	if len(entries) == 0 {
		return nil
	}
	p, err := st.PrepareFlush(entries)
	if err != nil {
		return err
	}
	return p.Commit()
}

// PendingSegment is a fully written and fsynced segment file that is not
// yet part of the store: until Commit, readers cannot see it, and a
// crash leaves only an orphan the next Open removes. The split lets the
// expensive phase — writing and syncing the record payload — run without
// any caller-side lock, while Commit (rename + manifest) stays cheap
// enough to serialize with readers.
type PendingSegment struct {
	st        *Store
	tmp, path string
	entries   int
	maxID     int64
	done      bool
}

// PrepareFlush writes entries (archive order) as an uncommitted segment
// file. The store lock is held only to reserve the file name — the
// payload write and fsync, the bulk of a demotion's cost, run
// concurrently with every other store operation.
func (st *Store) PrepareFlush(entries []FlushEntry) (*PendingSegment, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("segstore: empty flush")
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, fmt.Errorf("segstore: store is closed")
	}
	name := fmt.Sprintf("seg-%08d%s", st.seq, segSuffix)
	st.seq++
	st.mu.Unlock()
	p := &PendingSegment{st: st, path: filepath.Join(st.dir, name), entries: len(entries), maxID: -1}
	p.tmp = p.path + ".tmp"
	for _, e := range entries {
		if e.ID > p.maxID {
			p.maxID = e.ID
		}
	}
	if err := writeSegment(p.tmp, st.opts.Dim, entries); err != nil {
		_ = os.Remove(p.tmp)
		return nil, err
	}
	return p, nil
}

// Commit renames the prepared file into place and commits it to the
// manifest — the commit point. On error nothing is committed and the
// pending file is cleaned up (or left as an orphan the next Open
// removes). Commit or Abort must be called exactly once.
func (p *PendingSegment) Commit() error {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if p.done {
		return fmt.Errorf("segstore: pending segment already resolved")
	}
	p.done = true
	if st.closed {
		_ = os.Remove(p.tmp)
		return fmt.Errorf("segstore: store is closed")
	}
	if err := os.Rename(p.tmp, p.path); err != nil {
		_ = os.Remove(p.tmp)
		return err
	}
	st.syncDir()
	seg, err := OpenSegment(p.path)
	if err != nil {
		return err
	}
	newSegs := append(append([]*Segment(nil), st.segs...), seg)
	if err := st.commitManifestLocked(newSegs); err != nil {
		_ = seg.close()
		return err
	}
	st.segs = newSegs
	if p.maxID > st.maxID {
		st.maxID = p.maxID
	}
	metricFlushes.Inc()
	st.signalCompactLocked()
	return nil
}

// Abort discards the prepared segment file.
func (p *PendingSegment) Abort() {
	if p.done {
		return
	}
	p.done = true
	_ = os.Remove(p.tmp)
}

// Tombstone marks an id deleted. It reports whether the id was live in
// some segment; the bytes are reclaimed by a later compaction.
func (st *Store) Tombstone(id int64) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false, fmt.Errorf("segstore: store is closed")
	}
	if _, dead := st.tombs[id]; dead {
		return false, nil
	}
	found := false
	for _, s := range st.segs {
		if _, ok := s.byID[id]; ok {
			found = true
			break
		}
	}
	if !found {
		return false, nil
	}
	st.tombs[id] = struct{}{}
	if err := st.commitManifestLocked(st.segs); err != nil {
		delete(st.tombs, id)
		return false, err
	}
	st.signalCompactLocked()
	return true, nil
}

// Find returns the record holding the given live (non-tombstoned) id.
func (st *Store) Find(id int64) (Record, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dead := st.tombs[id]; dead {
		return Record{}, false
	}
	for _, seg := range st.segs {
		if r, ok := seg.Get(id); ok {
			return r, true
		}
	}
	return Record{}, false
}

// MaxID returns the largest record id ever committed to the store (-1
// for an empty store); the archiver resumes id assignment above it.
func (st *Store) MaxID() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.maxID
}

// Stats returns current store statistics.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{Segments: len(st.segs), Tombstones: len(st.tombs), Compactions: st.compactions}
	for _, seg := range st.segs {
		s.Records += len(seg.recs)
		s.Bytes += seg.payload
		switch seg.version {
		case 1:
			s.SegmentsV1++
		case 2:
			s.SegmentsV2++
		default:
			s.SegmentsV3++
		}
		if seg.Mapped() {
			s.SegmentsMapped++
		}
	}
	s.LiveRecords, s.LiveBytes = s.Records, s.Bytes
	st.subtractTombsLocked(&s.LiveRecords, &s.LiveBytes)
	return s
}

// subtractTombsLocked deducts every tombstoned record still present in a
// live segment from the given live totals — O(tombstones × segments),
// never O(records); tombstones are rare and compaction reclaims them.
func (st *Store) subtractTombsLocked(count, bytes *int) {
	for id := range st.tombs {
		for _, seg := range st.segs {
			if r, ok := seg.Get(id); ok {
				*count--
				*bytes -= int(r.Len)
				break
			}
		}
	}
}

// View is an immutable point-in-time view of the store: the segment set
// and tombstones as of its creation. Flushes, tombstones and compactions
// committed later are not visible. A View needs no explicit release —
// segments it pins stay readable (even after compaction unlinks their
// files) until the View becomes unreachable.
type View struct {
	segs  []*Segment
	tombs map[int64]struct{}
	count int
	bytes int
}

// View pins the current store state.
func (st *Store) View() *View {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := &View{segs: st.segs}
	if len(st.tombs) > 0 {
		v.tombs = make(map[int64]struct{}, len(st.tombs))
		for id := range st.tombs {
			v.tombs[id] = struct{}{}
		}
	}
	for _, seg := range st.segs {
		v.count += len(seg.recs)
		v.bytes += seg.payload
	}
	// Views are pinned on the snapshot path (every Base.Snapshot after a
	// mutation), so totals come from the cached per-segment sums rather
	// than a rescan of the history.
	st.subtractTombsLocked(&v.count, &v.bytes)
	return v
}

// Segments returns the pinned segments in archive (FIFO) order. The
// slice is shared and must not be modified.
func (v *View) Segments() []*Segment { return v.segs }

// Dead reports whether the id was tombstoned as of the view.
func (v *View) Dead(id int64) bool {
	_, dead := v.tombs[id]
	return dead
}

// Len returns the number of live records in the view.
func (v *View) Len() int { return v.count }

// Bytes returns the total encoded size of the view's live records.
func (v *View) Bytes() int { return v.bytes }

// Get returns the segment and record holding the given live id.
func (v *View) Get(id int64) (*Segment, Record, bool) {
	if v.Dead(id) {
		return nil, Record{}, false
	}
	for _, seg := range v.segs {
		if r, ok := seg.Get(id); ok {
			return seg, r, true
		}
	}
	return nil, Record{}, false
}

// Close stops the compactor and closes every live segment. Views pinned
// before Close must not be used afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	close(st.wake)
	st.mu.Unlock()
	<-st.done
	st.mu.Lock()
	defer st.mu.Unlock()
	var err error
	for _, seg := range st.segs {
		if cerr := seg.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	// The segment list stays: Stats keeps answering from the in-memory
	// footers after Close (shutdown reporting); reads do not.
	return err
}
