package segstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"streamsum/internal/geom"
)

// reformatSegment rewrites an existing segment file in place in the
// given legacy format, preserving its records (the manifest lists file
// names only, so a store reopens the rewritten file transparently).
func reformatSegment(t *testing.T, path string, version int) {
	t.Helper()
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []FlushEntry
	for _, r := range seg.Records() {
		blob, err := seg.LoadBlob(r)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, FlushEntry{
			ID: r.ID, Blob: append([]byte{}, blob...), MBR: r.MBR, Feat: r.Feat,
		})
	}
	dim := seg.Dim()
	if err := seg.close(); err != nil {
		t.Fatal(err)
	}
	tmp := path + ".tmp"
	if err := writeSegmentV2(tmp, dim, entries); err != nil {
		t.Fatal(err)
	}
	if version == 1 {
		// Strip the v2 zone block and restamp the footer as v1 — the
		// same rewrite TestSegmentZone performs.
		raw, err := os.ReadFile(tmp)
		if err != nil {
			t.Fatal(err)
		}
		footerOff := int64(len(raw)) - trailerSize
		origOff := footerOffOf(t, raw)
		footer := append([]byte{}, raw[origOff:footerOff]...)
		copy(footer[:8], footerMagicV1[:])
		footer = footer[:len(footer)-zoneSize(dim)]
		out := append(append([]byte{}, raw[:origOff]...), footer...)
		var tr [trailerSize]byte
		binary.LittleEndian.PutUint64(tr[0:], uint64(origOff))
		binary.LittleEndian.PutUint32(tr[8:], uint32(len(footer)))
		binary.LittleEndian.PutUint32(tr[12:], crc32.ChecksumIEEE(footer))
		copy(tr[16:], endMagic[:])
		out = append(out, tr[:]...)
		if err := os.WriteFile(tmp, out, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// footerOffOf reads a segment file's footer offset from its trailer.
func footerOffOf(t *testing.T, raw []byte) int64 {
	t.Helper()
	if len(raw) < trailerSize {
		t.Fatal("segment too short")
	}
	return int64(binary.LittleEndian.Uint64(raw[len(raw)-trailerSize:]))
}

// TestMixedFormatStore: a store holding v1, v2 and v3 segments at once
// must open, serve queries from every segment, compact into the current
// format and reopen clean.
func TestMixedFormatStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Dim: 2, TargetSegmentBytes: 1 << 20, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	var all []FlushEntry
	for i := 0; i < 3; i++ {
		batch := makeEntries(t, 4, int64(20+i), int64(100*i))
		all = append(all, batch...)
		if err := st.Flush(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite segment 0 as v2 and segment 1 as v1; segment 2 stays v3.
	reformatSegment(t, filepath.Join(dir, "seg-00000000"+segSuffix), 2)
	reformatSegment(t, filepath.Join(dir, "seg-00000001"+segSuffix), 1)

	st2, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatalf("mixed-format store rejected: %v", err)
	}
	v := st2.View()
	var formats []int
	for _, seg := range v.Segments() {
		formats = append(formats, seg.Format())
	}
	if !reflect.DeepEqual(formats, []int{2, 1, 3}) {
		t.Fatalf("segment formats = %v", formats)
	}
	// Every record is reachable and loads across all three formats, and
	// gated probes agree with a linear scan.
	for _, e := range all {
		seg, r, ok := v.Get(e.ID)
		if !ok {
			t.Fatalf("id %d missing from mixed store", e.ID)
		}
		blob, err := seg.LoadBlob(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(e.Blob) {
			t.Fatalf("id %d: blob mismatch after reformat", e.ID)
		}
	}
	for _, seg := range v.Segments() {
		for _, r := range seg.Records() {
			hit := false
			probed := seg.GatedSearchFeatures(r.Feat, r.Feat, nil, func(got Record) bool {
				if got.ID == r.ID {
					hit = true
					return false
				}
				return true
			})
			if !hit || probed == 0 {
				t.Fatalf("format v%d: point probe missed record %d", seg.Format(), r.ID)
			}
		}
	}

	// Compaction rewrites the mixed set into one current-format segment.
	if err := st2.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.Segments != 1 {
		t.Fatalf("segments after compaction: %d", s.Segments)
	}
	if got := st2.View().Segments()[0].Format(); got != 3 {
		t.Fatalf("compacted segment format = v%d", got)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir, Options{Dim: 2, NoBackgroundCompaction: true})
	if err != nil {
		t.Fatalf("reopen after mixed compaction: %v", err)
	}
	defer st3.Close()
	var ids []int64
	for _, seg := range st3.View().Segments() {
		for _, r := range seg.Records() {
			ids = append(ids, r.ID)
		}
	}
	if len(ids) != len(all) {
		t.Fatalf("records after reopen: %d want %d", len(ids), len(all))
	}
	for i, e := range all {
		if ids[i] != e.ID {
			t.Fatalf("FIFO order broken at %d: %d want %d", i, ids[i], e.ID)
		}
	}
}

// TestV3CorruptionRejected flips bytes inside the columnar region and
// the footer: the region CRCs must reject the file whole. (The
// recovery sweep in TestSegstoreRecovery covers truncation — torn
// columnar and torn blob regions — at every byte offset.)
func TestV3CorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 6, 9, 0)
	path := filepath.Join(dir, "flip"+segSuffix)
	if err := writeSegment(path, 2, entries); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	colLen, _ := seg.Regions()
	if err := seg.close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// One flip near the start, middle and end of the columnar region,
	// and one in the footer's zone block.
	footerOff := footerOffOf(t, raw)
	flips := []int{
		len(segMagicV3),
		len(segMagicV3) + colLen/2,
		len(segMagicV3) + colLen - 1,
		int(footerOff) + footerV3Head + 3,
	}
	for _, off := range flips {
		bad := append([]byte{}, raw...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o666); err != nil {
			t.Fatal(err)
		}
		if seg, err := OpenSegment(path); err == nil {
			seg.close()
			t.Fatalf("byte %d corrupted but segment accepted", off)
		}
	}
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	seg2, err := OpenSegment(path)
	if err != nil {
		t.Fatalf("intact segment rejected after flips: %v", err)
	}
	seg2.close()
}

// TestV3PreadFallback disables mmap and checks the full read path —
// open, probe, load — behaves identically on the pread fallback.
func TestV3PreadFallback(t *testing.T) {
	prev := SetMmapEnabled(false)
	defer SetMmapEnabled(prev)

	entries := makeEntries(t, 8, 11, 0)
	path := filepath.Join(t.TempDir(), "fallback"+segSuffix)
	if err := writeSegment(path, 2, entries); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.close()
	if seg.Mapped() {
		t.Fatal("segment mapped with mmap disabled")
	}
	if seg.Format() != 3 {
		t.Fatalf("format = v%d", seg.Format())
	}
	for _, e := range entries {
		r, ok := seg.Get(e.ID)
		if !ok {
			t.Fatalf("id %d missing", e.ID)
		}
		blob, err := seg.LoadBlob(r)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(e.Blob) {
			t.Fatalf("id %d: blob mismatch on pread path", e.ID)
		}
		if _, err := seg.Load(r); err != nil {
			t.Fatal(err)
		}
	}
	// Scans read the heap copy of the columns; results must match the
	// mapped path (checked against a linear scan here).
	q := entries[2].MBR
	want := 0
	for _, e := range entries {
		if e.MBR.Intersects(q) {
			want++
		}
	}
	got := 0
	probed := seg.GatedSearchLocation(q, nil, func(Record) bool { got++; return true })
	if got != want || probed != want {
		t.Fatalf("pread location scan: got=%d probed=%d want=%d", got, probed, want)
	}
}

// TestV3ScanZeroAlloc pins the headline property: a fused filter+gate
// scan over a mapped v3 segment performs zero allocations when the gate
// rejects every candidate.
func TestV3ScanZeroAlloc(t *testing.T) {
	entries := makeEntries(t, 16, 13, 0)
	path := filepath.Join(t.TempDir(), "alloc"+segSuffix)
	if err := writeSegment(path, 2, entries); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.close()

	lo := [4]float64{0, 0, 0, 0}
	hi := [4]float64{1e9, 1e9, 1e9, 1e9}
	gate := func([4]float64) bool { return false }
	visit := func(Record) bool { return true }
	mbr, _, _ := seg.Zone()
	q := geom.MBR{Min: append(geom.Point{}, mbr.Min...), Max: append(geom.Point{}, mbr.Max...)}

	if n := testing.AllocsPerRun(100, func() {
		if seg.GatedSearchFeatures(lo, hi, gate, visit) != len(entries) {
			t.Fatal("feature scan missed records")
		}
	}); n != 0 {
		t.Fatalf("feature filter+gate scan allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if seg.GatedSearchLocation(q, gate, visit) != len(entries) {
			t.Fatal("location scan missed records")
		}
	}); n != 0 {
		t.Fatalf("location filter+gate scan allocates %.1f/op", n)
	}
}
