package segstore

import (
	"path/filepath"
	"testing"
)

// BenchmarkFlushSegment measures one demotion flush: writing a segment
// of 64 summaries (records + footer + trailer, fsynced) and committing
// the manifest. This is the disk cost a store-backed archiver pays per
// demotion batch, amortized over the Puts that filled the batch.
func BenchmarkFlushSegment(b *testing.B) {
	proto := makeEntries(b, 64, 7, 0)
	bytes := 0
	for _, e := range proto {
		bytes += len(e.Blob)
	}
	st, err := Open(b.TempDir(), Options{Dim: 2, NoBackgroundCompaction: true, TargetSegmentBytes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries := make([]FlushEntry, len(proto))
		for j, e := range proto {
			e.ID = int64(i*len(proto) + j) // ids are globally unique in a store
			entries[j] = e
		}
		if err := st.Flush(entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes*b.N)/b.Elapsed().Seconds()/(1<<20), "MB/sec")
}

// BenchmarkScanSegment measures the fused filter+gate scan over one
// segment — the per-segment cost of the disk tier's filter phase — in
// both formats: v3 (linear scan of the mapped feats column) against v2
// (the legacy serialized-index probe rebuilt into an in-memory feature
// grid). The gate rejects everything, so allocs/op pins the
// zero-allocation property of the v3 scan itself.
func BenchmarkScanSegment(b *testing.B) {
	entries := makeEntries(b, 256, 7, 0)
	for _, f := range []struct {
		name  string
		write func(string, int, []FlushEntry) error
	}{{"v3", writeSegment}, {"v2", writeSegmentV2}} {
		b.Run(f.name, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "scan"+segSuffix)
			if err := f.write(path, 2, entries); err != nil {
				b.Fatal(err)
			}
			seg, err := OpenSegment(path)
			if err != nil {
				b.Fatal(err)
			}
			defer seg.close()
			lo := [4]float64{0, 0, 0, 0}
			hi := [4]float64{1e9, 1e9, 1e9, 1e9}
			gate := func([4]float64) bool { return false }
			visit := func(Record) bool { return true }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if seg.GatedSearchFeatures(lo, hi, gate, visit) != len(entries) {
					b.Fatal("scan missed records")
				}
			}
		})
	}
}

// BenchmarkLoadRecord measures one refine-phase summary load from a
// segment, mmap (zero-copy decode) vs pread (pooled scratch buffer).
func BenchmarkLoadRecord(b *testing.B) {
	entries := makeEntries(b, 64, 7, 0)
	path := filepath.Join(b.TempDir(), "load"+segSuffix)
	if err := writeSegment(path, 2, entries); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"mmap", true}, {"pread", false}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := SetMmapEnabled(mode.on)
			defer SetMmapEnabled(prev)
			seg, err := OpenSegment(path)
			if err != nil {
				b.Fatal(err)
			}
			defer seg.close()
			if seg.Mapped() != mode.on {
				b.Skipf("mmap availability mismatch (mapped=%v)", seg.Mapped())
			}
			recs := seg.Records()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := seg.Load(recs[i%len(recs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
