package segstore

import (
	"testing"
)

// BenchmarkFlushSegment measures one demotion flush: writing a segment
// of 64 summaries (records + footer + trailer, fsynced) and committing
// the manifest. This is the disk cost a store-backed archiver pays per
// demotion batch, amortized over the Puts that filled the batch.
func BenchmarkFlushSegment(b *testing.B) {
	proto := makeEntries(b, 64, 7, 0)
	bytes := 0
	for _, e := range proto {
		bytes += len(e.Blob)
	}
	st, err := Open(b.TempDir(), Options{Dim: 2, NoBackgroundCompaction: true, TargetSegmentBytes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries := make([]FlushEntry, len(proto))
		for j, e := range proto {
			e.ID = int64(i*len(proto) + j) // ids are globally unique in a store
			entries[j] = e
		}
		if err := st.Flush(entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes*b.N)/b.Elapsed().Seconds()/(1<<20), "MB/sec")
}
