// Package dbscan implements density-based clustering per Definition 3.1 of
// the paper (after Ester et al., KDD 96): given a range threshold θr and a
// count threshold θc, core objects are those with at least θc neighbors,
// clusters are maximal groups of transitively connected core objects plus
// the edge objects attached to them.
//
// This is the *static, from-scratch* algorithm. The streaming system never
// runs it per window (that would be prohibitively expensive, §5); it exists
// as the semantics oracle that the incremental algorithms (C-SGS, Extra-N)
// are verified against, and as a "re-cluster every window" baseline for
// ablation benchmarks.
//
// One deliberate deviation from classic DBSCAN: an edge ("border") object
// that is a neighbor of core objects from several clusters is reported as a
// member of *all* of them, exactly as Definition 3.1 states ("the edge
// objects attached to them"), rather than being assigned arbitrarily to
// whichever cluster reaches it first. This makes cluster membership a pure
// function of the input — a requirement for cross-algorithm equality tests.
//
// Neighbor counting excludes the object itself: NumNeigh(p, θr) counts
// *other* objects within θr. All algorithms in this module follow the same
// convention.
package dbscan

import (
	"sort"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// Params are the density thresholds of a clustering query (Figure 2).
type Params struct {
	ThetaR float64 // range threshold θr
	ThetaC int     // count threshold θc
}

// Cluster is one density-based cluster in full representation: the ids of
// its member objects. Members and Cores are sorted ascending.
type Cluster struct {
	Members []int64 // all objects in the cluster (cores + edges)
	Cores   []int64 // the core objects only
}

// Result of clustering one window.
type Result struct {
	Clusters []Cluster
	Noise    []int64 // objects belonging to no cluster, sorted
	IsCore   map[int64]bool
}

// Run clusters the given points. ids[i] identifies pts[i]; ids must be
// unique. Points with fewer than θc neighbors that are not attached to any
// core are reported as noise.
func Run(pts []geom.Point, ids []int64, p Params) (*Result, error) {
	if len(pts) != len(ids) {
		panic("dbscan: pts and ids length mismatch")
	}
	if len(pts) == 0 {
		return &Result{IsCore: map[int64]bool{}}, nil
	}
	geo, err := grid.NewGeometry(len(pts[0]), p.ThetaR)
	if err != nil {
		return nil, err
	}
	ix := grid.NewPointIndex(geo)
	for i, pt := range pts {
		ix.Insert(int64(i), pt)
	}

	// Neighbor lists by slot index (not id) for cache-friendly union-find.
	nbs := make([][]int32, len(pts))
	for i, pt := range pts {
		var l []int32
		ix.RangeQuery(pt, func(e grid.Entry) bool {
			if e.ID != int64(i) {
				l = append(l, int32(e.ID))
			}
			return true
		})
		nbs[i] = l
	}

	isCore := make([]bool, len(pts))
	for i := range pts {
		isCore[i] = len(nbs[i]) >= p.ThetaC
	}

	// Union connected core objects.
	uf := newUnionFind(len(pts))
	for i := range pts {
		if !isCore[i] {
			continue
		}
		for _, j := range nbs[i] {
			if isCore[j] {
				uf.union(i, int(j))
			}
		}
	}

	// Collect clusters of cores.
	clusterOf := make(map[int]int) // root slot -> cluster index
	var clusters []Cluster
	for i := range pts {
		if !isCore[i] {
			continue
		}
		r := uf.find(i)
		ci, ok := clusterOf[r]
		if !ok {
			ci = len(clusters)
			clusterOf[r] = ci
			clusters = append(clusters, Cluster{})
		}
		clusters[ci].Cores = append(clusters[ci].Cores, ids[i])
		clusters[ci].Members = append(clusters[ci].Members, ids[i])
	}

	// Attach edge objects: every non-core neighbor of a core joins that
	// core's cluster (possibly several clusters).
	inCluster := make(map[int64]bool, len(pts))
	edgeSeen := make([]map[int]bool, len(pts))
	for i := range pts {
		if !isCore[i] {
			continue
		}
		inCluster[ids[i]] = true
		ci := clusterOf[uf.find(i)]
		for _, j := range nbs[i] {
			if isCore[j] {
				continue
			}
			if edgeSeen[j] == nil {
				edgeSeen[j] = make(map[int]bool, 2)
			}
			if !edgeSeen[j][ci] {
				edgeSeen[j][ci] = true
				clusters[ci].Members = append(clusters[ci].Members, ids[j])
				inCluster[ids[j]] = true
			}
		}
	}

	res := &Result{Clusters: clusters, IsCore: make(map[int64]bool, len(pts))}
	for i := range pts {
		if isCore[i] {
			res.IsCore[ids[i]] = true
		}
		if !inCluster[ids[i]] {
			res.Noise = append(res.Noise, ids[i])
		}
	}
	sort.Slice(res.Noise, func(a, b int) bool { return res.Noise[a] < res.Noise[b] })
	for ci := range res.Clusters {
		c := &res.Clusters[ci]
		sort.Slice(c.Members, func(a, b int) bool { return c.Members[a] < c.Members[b] })
		sort.Slice(c.Cores, func(a, b int) bool { return c.Cores[a] < c.Cores[b] })
	}
	// Canonical cluster order: by smallest core id.
	sort.Slice(res.Clusters, func(a, b int) bool {
		return res.Clusters[a].Cores[0] < res.Clusters[b].Cores[0]
	})
	return res, nil
}

// Signature returns a canonical, comparable representation of the
// clustering: for each cluster the sorted member ids, clusters sorted by
// their smallest core id. Two algorithms produce the same clustering iff
// their signatures are equal.
func (r *Result) Signature() [][]int64 {
	sig := make([][]int64, len(r.Clusters))
	for i, c := range r.Clusters {
		sig[i] = c.Members
	}
	return sig
}

// EqualSignature compares two signatures for exact equality.
func EqualSignature(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// unionFind is a standard disjoint-set forest with path halving and union
// by size.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for int(u.parent[x]) != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = int(u.parent[x])
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	u.size[ra] += u.size[rb]
}
