package dbscan

import (
	"sort"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

// RunCellAttached clusters with the cell-granularity attachment semantics
// of the paper's output stage (§5.4): the full representation of a cluster
// Ci is "all objects covered by core cells in Ci.SGS plus the objects
// covered by the edge cells in Ci.SGS that are connected to at least one
// core object of Ci".
//
// This refines Definition 3.1 in exactly one corner case: a non-core object
// x that lives in a *core cell* of cluster A while also neighboring a core
// object of cluster B. Definition 3.1 would make x an edge member of both
// clusters; the paper's cell-based reconstruction assigns x only to A
// (Lemma 4.1: every object in a core cell belongs to that cell's cluster,
// and a core cell of A is never part of B's summarization). C-SGS
// implements the paper's semantics, so this oracle exists to verify it
// bit-for-bit. For objects in non-core cells the two semantics coincide.
func RunCellAttached(pts []geom.Point, ids []int64, p Params, geo *grid.Geometry) (*Result, error) {
	base, err := Run(pts, ids, p)
	if err != nil {
		return nil, err
	}
	if len(base.Clusters) == 0 {
		return base, nil
	}
	// Identify, per grid cell, whether it hosts a core object and if so
	// which cluster that cell belongs to.
	pos := make(map[int64]geom.Point, len(pts))
	for i, id := range ids {
		pos[id] = pts[i]
	}
	cellCluster := make(map[grid.Coord]int) // core cell -> cluster index
	for ci, c := range base.Clusters {
		for _, id := range c.Cores {
			cellCluster[geo.CoordOf(pos[id])] = ci
		}
	}
	// Rebuild membership: cores keep their clusters; a non-core member in
	// a core cell belongs only to that cell's cluster.
	out := &Result{IsCore: base.IsCore, Noise: base.Noise}
	out.Clusters = make([]Cluster, len(base.Clusters))
	for ci := range base.Clusters {
		out.Clusters[ci].Cores = base.Clusters[ci].Cores
	}
	seen := make(map[int64]map[int]bool)
	for ci, c := range base.Clusters {
		for _, id := range c.Members {
			target := ci
			if !base.IsCore[id] {
				if host, ok := cellCluster[geo.CoordOf(pos[id])]; ok {
					target = host
				}
			}
			if seen[id] == nil {
				seen[id] = make(map[int]bool, 1)
			}
			if !seen[id][target] {
				seen[id][target] = true
				out.Clusters[target].Members = append(out.Clusters[target].Members, id)
			}
		}
	}
	for ci := range out.Clusters {
		m := out.Clusters[ci].Members
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	}
	sort.Slice(out.Clusters, func(a, b int) bool {
		return out.Clusters[a].Cores[0] < out.Clusters[b].Cores[0]
	})
	return out, nil
}
