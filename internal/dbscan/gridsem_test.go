package dbscan

import (
	"math/rand"
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/grid"
)

func TestRunCellAttachedCornerCase(t *testing.T) {
	// Construct the exact corner case the cell-granular semantics refines:
	// a non-core object x inside a core cell of cluster A while also
	// neighboring a core of cluster B.
	//
	// Geometry: θr = 1, 1-D, cell side = 1 (diagonal = θr).
	geo, err := grid.NewGeometry(1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster A: cores at -0.4..0.05; its core a=0.05 sits in cell [0,1).
	// x at 0.95 shares that cell, has exactly two neighbors (a and B's
	// core b=1.9) so it is non-core — an edge object of both clusters at
	// object level, but hosted by A's core cell.
	// Cluster B: cores at 1.9..2.9 (cells [1,2) and [2,3)); no core pair
	// across A and B is within θr, so only non-core x bridges them.
	// y at 3.9 is an ordinary edge object of B in its own non-core cell.
	pts := []geom.Point{
		{-0.40}, {-0.30}, {-0.20}, {-0.10}, {0.05}, // A: ids 0-4, all core
		{0.95},                                 // x: id 5
		{1.90}, {2.30}, {2.50}, {2.70}, {2.90}, // B: ids 6-10, all core
		{3.90}, // y: id 11
	}
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	p := Params{ThetaR: 1.0, ThetaC: 4}

	objLevel, err := Run(pts, ids, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(objLevel.Clusters) != 2 {
		t.Fatalf("expected 2 clusters, got %+v", objLevel.Clusters)
	}
	// Object-level: x (id 4) is a member of both clusters.
	inBoth := 0
	for _, c := range objLevel.Clusters {
		for _, m := range c.Members {
			if m == 5 {
				inBoth++
			}
		}
	}
	if inBoth != 2 {
		t.Fatalf("object-level: x in %d clusters, want 2", inBoth)
	}

	cellLevel, err := RunCellAttached(pts, ids, p, geo)
	if err != nil {
		t.Fatal(err)
	}
	if len(cellLevel.Clusters) != 2 {
		t.Fatalf("cell-level: expected 2 clusters, got %+v", cellLevel.Clusters)
	}
	// Cell-level: x belongs only to A (the cluster of its host core cell).
	var clusterA, clusterB *Cluster
	for i := range cellLevel.Clusters {
		c := &cellLevel.Clusters[i]
		if c.Cores[0] == 0 {
			clusterA = c
		} else {
			clusterB = c
		}
	}
	if clusterA == nil || clusterB == nil {
		t.Fatal("cluster identification failed")
	}
	if !containsID(clusterA.Members, 5) {
		t.Fatal("cell-level: x missing from its host cell's cluster")
	}
	if containsID(clusterB.Members, 5) {
		t.Fatal("cell-level: x still in the foreign cluster")
	}
	// y (id 9) lives in a non-core cell: both semantics agree it belongs
	// to B.
	if !containsID(clusterB.Members, 11) {
		t.Fatal("cell-level: ordinary edge object lost")
	}
	// Noise and core sets unchanged by the refinement.
	if len(cellLevel.Noise) != len(objLevel.Noise) {
		t.Fatal("noise changed")
	}
}

func containsID(ids []int64, id int64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func TestRunCellAttachedAgreesWhenNoCornerCase(t *testing.T) {
	// On random data where no shared edge object sits in a foreign core
	// cell, the two semantics coincide most of the time; verify they agree
	// on cores and total membership counts always, and compare exact
	// signatures when no retargeting occurred.
	rng := rand.New(rand.NewSource(6))
	geo, err := grid.NewGeometry(2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		var pts []geom.Point
		for i := 0; i < 150; i++ {
			cx, cy := float64(rng.Intn(2))*3, float64(rng.Intn(2))*3
			pts = append(pts, geom.Point{cx + rng.NormFloat64()*0.4, cy + rng.NormFloat64()*0.4})
		}
		ids := make([]int64, len(pts))
		for i := range ids {
			ids[i] = int64(i)
		}
		p := Params{ThetaR: 0.4, ThetaC: 3}
		a, err := Run(pts, ids, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunCellAttached(pts, ids, p, geo)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Clusters) != len(b.Clusters) {
			t.Fatalf("cluster counts differ: %d vs %d", len(a.Clusters), len(b.Clusters))
		}
		for i := range a.Clusters {
			if len(a.Clusters[i].Cores) != len(b.Clusters[i].Cores) {
				t.Fatal("core sets differ")
			}
			// Membership can only shrink (dedup of shared edges).
			if len(b.Clusters[i].Members) > len(a.Clusters[i].Members) {
				t.Fatal("cell-level membership grew")
			}
		}
	}
}

func TestRunCellAttachedEmpty(t *testing.T) {
	geo, err := grid.NewGeometry(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunCellAttached(nil, nil, Params{ThetaR: 1, ThetaC: 2}, geo)
	if err != nil || len(r.Clusters) != 0 {
		t.Fatalf("empty input: %v %v", r, err)
	}
}
