package dbscan

import (
	"math/rand"
	"testing"

	"streamsum/internal/geom"
)

func run(t *testing.T, pts []geom.Point, p Params) *Result {
	t.Helper()
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	r, err := Run(pts, ids, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEmptyInput(t *testing.T) {
	r := run(t, nil, Params{ThetaR: 1, ThetaC: 2})
	if len(r.Clusters) != 0 || len(r.Noise) != 0 {
		t.Fatalf("empty input produced %+v", r)
	}
}

func TestAllNoise(t *testing.T) {
	pts := []geom.Point{{0, 0}, {10, 10}, {20, 20}}
	r := run(t, pts, Params{ThetaR: 1, ThetaC: 1})
	if len(r.Clusters) != 0 {
		t.Fatalf("expected no clusters, got %d", len(r.Clusters))
	}
	if len(r.Noise) != 3 {
		t.Fatalf("expected 3 noise points, got %v", r.Noise)
	}
}

func TestSingleCluster(t *testing.T) {
	// A tight clump of 5 points, θc=3: every point has 4 neighbors → all core.
	pts := []geom.Point{{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {0.05, 0.05}}
	r := run(t, pts, Params{ThetaR: 0.5, ThetaC: 3})
	if len(r.Clusters) != 1 {
		t.Fatalf("expected 1 cluster, got %d", len(r.Clusters))
	}
	if len(r.Clusters[0].Members) != 5 || len(r.Clusters[0].Cores) != 5 {
		t.Fatalf("cluster = %+v", r.Clusters[0])
	}
	if len(r.Noise) != 0 {
		t.Fatalf("noise = %v", r.Noise)
	}
}

func TestTwoClustersAndNoise(t *testing.T) {
	var pts []geom.Point
	// Cluster A around (0,0), cluster B around (10,10), one lone point.
	for i := 0; i < 6; i++ {
		pts = append(pts, geom.Point{float64(i) * 0.1, 0})
	}
	for i := 0; i < 6; i++ {
		pts = append(pts, geom.Point{10 + float64(i)*0.1, 10})
	}
	pts = append(pts, geom.Point{5, 5})
	r := run(t, pts, Params{ThetaR: 0.3, ThetaC: 2})
	if len(r.Clusters) != 2 {
		t.Fatalf("expected 2 clusters, got %d", len(r.Clusters))
	}
	if len(r.Noise) != 1 || r.Noise[0] != 12 {
		t.Fatalf("noise = %v", r.Noise)
	}
}

func TestChainConnectivity(t *testing.T) {
	// A chain of points each within θr of the next; θc=2 makes interior
	// points core, transitively connecting the whole chain (Def. 3.1).
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Point{float64(i) * 0.9, 0})
	}
	r := run(t, pts, Params{ThetaR: 1.0, ThetaC: 2})
	if len(r.Clusters) != 1 {
		t.Fatalf("chain should form one cluster, got %d", len(r.Clusters))
	}
	if got := len(r.Clusters[0].Members); got != 20 {
		t.Fatalf("chain cluster has %d members", got)
	}
	// Endpoints have only 1 neighbor each → edge, interior → core.
	if r.IsCore[0] || r.IsCore[19] {
		t.Error("chain endpoints should be edge objects")
	}
	if !r.IsCore[10] {
		t.Error("chain interior should be core")
	}
}

func TestSharedEdgeObjectBelongsToBothClusters(t *testing.T) {
	// Two dense clumps with one point in the middle that neighbors a core
	// of each but has too few neighbors to be core itself. Definition 3.1
	// attaches it to both clusters.
	var pts []geom.Point
	for i := 0; i < 4; i++ {
		pts = append(pts, geom.Point{float64(i) * 0.1, 0}) // ids 0-3, around x≈0.15
	}
	for i := 0; i < 4; i++ {
		pts = append(pts, geom.Point{2 + float64(i)*0.1, 0}) // ids 4-7, x≈2.15
	}
	pts = append(pts, geom.Point{1.15, 0}) // id 8: within 1.0 of id 3 (x=0.3)? no —
	// distance to x=0.3 is 0.85 ≤ 0.9, to x=2.0 is 0.85 ≤ 0.9.
	r := run(t, pts, Params{ThetaR: 0.9, ThetaC: 3})
	if len(r.Clusters) != 2 {
		t.Fatalf("expected 2 clusters, got %d: %+v", len(r.Clusters), r.Clusters)
	}
	found := 0
	for _, c := range r.Clusters {
		for _, m := range c.Members {
			if m == 8 {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("shared edge object in %d clusters, want 2", found)
	}
	if r.IsCore[8] {
		t.Error("bridge point must not be core (it would merge the clusters)")
	}
}

func TestNeighborCountExcludesSelf(t *testing.T) {
	// Two coincident points with θc=1: each has exactly 1 neighbor (the
	// other), so both are core.
	pts := []geom.Point{{0, 0}, {0, 0}}
	r := run(t, pts, Params{ThetaR: 0.1, ThetaC: 1})
	if len(r.Clusters) != 1 || len(r.Clusters[0].Cores) != 2 {
		t.Fatalf("coincident pair: %+v", r)
	}
	// A single isolated point with θc=1 must NOT be core (self excluded).
	r2 := run(t, []geom.Point{{0, 0}}, Params{ThetaR: 0.1, ThetaC: 1})
	if len(r2.Clusters) != 0 || len(r2.Noise) != 1 {
		t.Fatalf("single point: %+v", r2)
	}
}

// naive is a quadratic reference implementation of Definition 3.1 used to
// cross-check the grid-accelerated version on random inputs.
func naive(pts []geom.Point, p Params) [][]int64 {
	n := len(pts)
	nbs := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && geom.WithinDist(pts[i], pts[j], p.ThetaR) {
				nbs[i] = append(nbs[i], j)
			}
		}
	}
	core := make([]bool, n)
	for i := range core {
		core[i] = len(nbs[i]) >= p.ThetaC
	}
	// Connected components over cores.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	for i := 0; i < n; i++ {
		if !core[i] || comp[i] != -1 {
			continue
		}
		stack := []int{i}
		comp[i] = nc
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range nbs[x] {
				if core[y] && comp[y] == -1 {
					comp[y] = nc
					stack = append(stack, y)
				}
			}
		}
		nc++
	}
	clusters := make(map[int]map[int64]bool)
	minCore := make(map[int]int64)
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		c := comp[i]
		if clusters[c] == nil {
			clusters[c] = map[int64]bool{}
			minCore[c] = int64(i)
		}
		clusters[c][int64(i)] = true
		for _, j := range nbs[i] {
			if !core[j] {
				clusters[c][int64(j)] = true
			}
		}
	}
	// Canonicalize.
	order := make([]int, 0, len(clusters))
	for c := range clusters {
		order = append(order, c)
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if minCore[order[j]] < minCore[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	var sig [][]int64
	for _, c := range order {
		var mem []int64
		for id := range clusters[c] {
			mem = append(mem, id)
		}
		for i := range mem {
			for j := i + 1; j < len(mem); j++ {
				if mem[j] < mem[i] {
					mem[i], mem[j] = mem[j], mem[i]
				}
			}
		}
		sig = append(sig, mem)
	}
	return sig
}

func TestAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		n := 30 + rng.Intn(120)
		pts := make([]geom.Point, n)
		for i := range pts {
			// Mixture: a few gaussian blobs plus uniform noise.
			if rng.Float64() < 0.8 {
				cx := float64(rng.Intn(3)) * 3
				cy := float64(rng.Intn(3)) * 3
				pts[i] = geom.Point{cx + rng.NormFloat64()*0.4, cy + rng.NormFloat64()*0.4}
			} else {
				pts[i] = geom.Point{rng.Float64() * 9, rng.Float64() * 9}
			}
		}
		p := Params{ThetaR: 0.3 + rng.Float64()*0.5, ThetaC: 2 + rng.Intn(4)}
		r := run(t, pts, p)
		want := naive(pts, p)
		if !EqualSignature(r.Signature(), want) {
			t.Fatalf("trial %d (θr=%.3f θc=%d): grid=%v naive=%v", trial, p.ThetaR, p.ThetaC, r.Signature(), want)
		}
	}
}

func TestEqualSignature(t *testing.T) {
	a := [][]int64{{1, 2}, {3}}
	if !EqualSignature(a, [][]int64{{1, 2}, {3}}) {
		t.Error("equal signatures reported unequal")
	}
	if EqualSignature(a, [][]int64{{1, 2}}) {
		t.Error("different lengths reported equal")
	}
	if EqualSignature(a, [][]int64{{1, 2}, {4}}) {
		t.Error("different members reported equal")
	}
	if EqualSignature(a, [][]int64{{1}, {3, 4}}) {
		t.Error("different shapes reported equal")
	}
}
