package archive

import "streamsum/internal/obs"

// Process-wide demoter metrics (obs.Default). The queue-depth gauge is
// deliberately absent here: depth is per-base state, exported at scrape
// time by the daemon via TierStats.DemotingBatches.
var (
	metricDemoteBatches = obs.NewCounter("sgs_archive_demote_batches_total",
		"Demotion batches flushed to the disk tier.")
	metricDemoteEntries = obs.NewCounter("sgs_archive_demote_entries_total",
		"Entries demoted from the memory tier to the disk tier.")
	metricDemoteFailures = obs.NewCounter("sgs_archive_demote_failures_total",
		"Demotion batches that failed to flush (the base fail-stops).")
	metricDemoteSeconds = obs.NewHistogram("sgs_archive_demote_flush_seconds",
		"Wall time to serialize, write, fsync and commit one demotion batch.")
)
