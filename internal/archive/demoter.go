package archive

import (
	"time"

	"streamsum/internal/segstore"
	"streamsum/internal/sgs"
	"streamsum/internal/trace"
)

// maxPendingDemotions bounds the demotion queue: beyond this many
// batches the writer blocks until the demoter catches up (backpressure
// under sustained disk overload). The bound keeps worst-case extra
// residency at a handful of segment-sized batches.
const maxPendingDemotions = 4

// demoteBatch is one segment's worth of entries handed to the background
// demoter. Until the segment commits, the entries remain visible to
// snapshots through the pending queue (they have already left the
// memory-tier accounting); on failure they are restored exactly where
// they came from.
type demoteBatch struct {
	entries []*Entry // FIFO
	count   int
	bytes   int

	// Restore bookkeeping: which entries came from the frozen generation
	// (marked dead at collection) vs the delta (spliced out of its
	// front), and where the FIFO eviction cursor stood before.
	frozenIDs         []int64
	deltaEnts         []*Entry
	frozenEvictBefore int
}

// flushEntries serializes the batch for the store. Entries are immutable
// after Put, so callers may (and the demoter does) run this without the
// base lock — the encoding is the CPU half of a demotion's cost and
// would otherwise stall writers exactly like the write+fsync it
// accompanies.
func (batch *demoteBatch) flushEntries() []segstore.FlushEntry {
	fl := make([]segstore.FlushEntry, 0, len(batch.entries))
	for _, e := range batch.entries {
		fl = append(fl, segstore.FlushEntry{
			ID: e.ID, Blob: sgs.Marshal(e.Summary), MBR: e.MBR, Feat: e.Features.Vector(),
		})
	}
	return fl
}

// demoteLoop is the background demoter: it takes batches off the pending
// queue in FIFO order and, for each, writes + fsyncs the segment payload
// entirely outside b.mu (segstore.PrepareFlush), then commits it (rename
// + manifest, serialized only with the store's own lock). Only the
// post-commit bookkeeping — dropping the batch from the pending queue —
// runs under b.mu, so PutBatch and snapshot creation never wait on the
// payload I/O.
func (b *Base) demoteLoop() {
	b.mu.Lock()
	for {
		for len(b.demotePending) == 0 && !b.demoteStop {
			b.demoteCond.Wait()
		}
		if len(b.demotePending) == 0 {
			// Stop requested and the queue is drained.
			b.demoteExited = true
			b.demoteCond.Broadcast()
			b.mu.Unlock()
			return
		}
		batch := b.demotePending[0]
		store := b.store
		b.mu.Unlock()

		tr := trace.Default.Start(trace.Demote, "archive.demote")
		root := tr.Root()
		root.SetInt("entries", int64(batch.count))
		root.SetInt("bytes", int64(batch.bytes))
		start := time.Now()
		sp := tr.Start("flush") // serialize + write + fsync, off the base lock
		p, err := store.PrepareFlush(batch.flushEntries())
		sp.End()
		if err == nil {
			sp = tr.Start("commit") // rename + manifest publish
			err = p.Commit()
			sp.End()
		}
		metricDemoteSeconds.Observe(time.Since(start))
		if err == nil {
			metricDemoteBatches.Inc()
			metricDemoteEntries.Add(uint64(batch.count))
		} else {
			metricDemoteFailures.Inc()
			root.SetStr("error", err.Error())
			b.logger.Error("demotion flush failed; restoring queued batches to the memory tier",
				"err", err, "entries", batch.count, "bytes", batch.bytes,
				"trace", tr.ID().String())
		}
		tr.Finish()

		b.mu.Lock()
		if err != nil {
			// Restore every queued batch (this one and any behind it):
			// later batches must not commit after an earlier one failed,
			// or disk segments would stop predating memory entries.
			b.restoreDemotionsLocked(b.demotePending, err)
			b.demotePending = nil
		} else {
			b.demotePending = b.demotePending[1:]
		}
		b.snap = nil
		// Fold only once the queue is idle (maybeRebuildLocked refuses
		// while demotions pend, so failure restore can rely on the frozen
		// generation being exactly as it was at collection time).
		_ = b.maybeRebuildLocked()
		b.demoteCond.Broadcast()
	}
}

// restoreDemotionsLocked puts the batches' entries back where they came
// from — frozen ids are un-tombstoned, delta entries spliced back onto
// the delta's front, counters and the eviction cursor rewound — and
// latches err (when non-nil) so subsequent Puts fail instead of growing
// past the memory bound. Batches must be in queue (age) order; they are
// restored back-to-front so the reassembled delta stays FIFO.
func (b *Base) restoreDemotionsLocked(batches []*demoteBatch, err error) {
	if len(batches) == 0 {
		return
	}
	if err != nil && b.demoteErr == nil {
		b.demoteErr = err
	}
	for i := len(batches) - 1; i >= 0; i-- {
		batch := batches[i]
		for _, id := range batch.frozenIDs {
			delete(b.dead, id)
		}
		if len(batch.deltaEnts) > 0 {
			b.delta = append(append([]*Entry(nil), batch.deltaEnts...), b.delta...)
		}
		b.memCount += batch.count
		b.memBytes += batch.bytes
	}
	// The oldest batch's cursor predates every other batch's.
	b.frozenEvict = batches[0].frozenEvictBefore
	b.snap = nil
}

// DrainDemotions blocks until every queued demotion batch has committed
// (or failed), then reports the latched demotion error, if any. Tests
// and shutdown paths use it to make tier accounting deterministic; it
// never triggers new demotions.
func (b *Base) DrainDemotions() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.store == nil {
		return nil
	}
	for len(b.demotePending) > 0 {
		b.demoteCond.Wait()
	}
	return b.demoteErr
}

// pendingDemotionHasLocked reports whether the id is part of an
// in-flight demotion batch.
func (b *Base) pendingDemotionHasLocked(id int64) bool {
	for _, batch := range b.demotePending {
		for _, e := range batch.entries {
			if e.ID == id {
				return true
			}
		}
	}
	return false
}
