package archive

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"streamsum/internal/sgs"
)

// Appender streams archived summaries to a log as they are extracted,
// so the stream history survives a crash mid-run (Save writes only a
// complete snapshot at shutdown). The format is self-delimiting:
//
//	magic "SGSLOG1\n" | records...
//	record: length u32 | crc-less payload (sgs.Marshal blob)
//
// A torn final record (crash mid-write) is detected by its length prefix
// running past EOF and is skipped by LoadAppended; everything before it is
// recovered.
//
// The appender is fail-stop: the first write error is latched, and every
// subsequent Append or Flush returns it. Without the latch, an Append
// that wrote its length prefix but failed mid-blob (or vice versa) could
// be followed by a "successful" Append whose record lands misaligned in
// the log — LoadAppended would then silently truncate the recovery at
// the damage, discarding the later, intact records.
type Appender struct {
	w     *bufio.Writer
	count int
	err   error
}

var logMagic = [8]byte{'S', 'G', 'S', 'L', 'O', 'G', '1', '\n'}

// NewAppender writes the log header and returns an appender. The caller
// owns the underlying writer (flush/close via Flush and the writer's own
// Close).
func NewAppender(w io.Writer) (*Appender, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(logMagic[:]); err != nil {
		return nil, err
	}
	return &Appender{w: bw}, nil
}

// Append writes one summary record. After any write error the appender
// is dead: the error is latched and returned by every later Append and
// Flush (see Err).
func (a *Appender) Append(s *sgs.Summary) error {
	if a.err != nil {
		return a.err
	}
	blob := sgs.Marshal(s)
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(blob)))
	if _, err := a.w.Write(n4[:]); err != nil {
		a.err = err
		return err
	}
	if _, err := a.w.Write(blob); err != nil {
		a.err = err
		return err
	}
	a.count++
	return nil
}

// Count returns the number of records appended.
func (a *Appender) Count() int { return a.count }

// Err returns the latched first write error, or nil if the appender is
// still healthy.
func (a *Appender) Err() error { return a.err }

// Flush pushes buffered records to the underlying writer. Call it at
// window boundaries for crash-consistency points. A flush error is
// latched like a write error.
func (a *Appender) Flush() error {
	if a.err != nil {
		return a.err
	}
	if err := a.w.Flush(); err != nil {
		a.err = err
		return err
	}
	return nil
}

// LoadAppended replays an append log into an empty pattern base, applying
// the base's selection policy to each record (so a log written with a
// permissive policy can be re-archived under a stricter one). It returns
// the number of records recovered and whether the log ended with a torn
// record that was discarded.
//
// Truncation at any byte offset of a valid log is recovered, never
// rejected: the complete-record prefix is archived, torn is reported
// when the cut fell inside a record (or inside the header — a crash can
// hit before the first flush), and err is reserved for logs that are not
// damaged-but-genuine, i.e. whose present header bytes disagree with the
// magic.
func (b *Base) LoadAppended(r io.Reader) (recovered int, torn bool, err error) {
	if b.Len() != 0 {
		return 0, false, fmt.Errorf("archive: LoadAppended requires an empty base")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	n, err := io.ReadFull(br, magic[:])
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		if bytes.Equal(magic[:n], logMagic[:n]) {
			return 0, true, nil // torn header: crash before the first flush
		}
		return 0, false, fmt.Errorf("%w: bad log magic", ErrBadFile)
	} else if err != nil {
		return 0, false, fmt.Errorf("%w: %v", ErrBadFile, err)
	}
	if magic != logMagic {
		return 0, false, fmt.Errorf("%w: bad log magic", ErrBadFile)
	}
	for {
		var n4 [4]byte
		if _, err := io.ReadFull(br, n4[:]); err == io.EOF {
			return recovered, false, nil
		} else if err != nil {
			return recovered, true, nil // torn length prefix
		}
		size := binary.LittleEndian.Uint32(n4[:])
		if size > 1<<30 {
			return recovered, true, nil // corrupt length: treat as torn tail
		}
		blob := make([]byte, size)
		if _, err := io.ReadFull(br, blob); err != nil {
			return recovered, true, nil // torn payload
		}
		s, err := sgs.Unmarshal(blob)
		if err != nil {
			return recovered, true, nil // corrupt record: stop at last good one
		}
		if _, _, err := b.Put(s); err != nil {
			return recovered, false, err
		}
		recovered++
	}
}
