package archive

import (
	"bytes"
	"os"
	"testing"

	"streamsum/internal/geom"
	"streamsum/internal/sgs"
)

// tieredPair archives the same summaries into a memory-only base and a
// store-backed base whose memory tier is capped tightly enough to force
// most of the history onto disk.
func tieredPair(t *testing.T, n int, maxMem int) (mem, tiered *Base, cleanup func()) {
	t.Helper()
	sums := fixtureSummaries(t, n, 91)
	mem, err := New(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	tiered, err = New(Config{Dim: 2, StorePath: t.TempDir(), MaxMemBytes: maxMem})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if _, ok, err := mem.Put(s); err != nil || !ok {
			t.Fatalf("mem put: ok=%v err=%v", ok, err)
		}
		if _, ok, err := tiered.Put(s); err != nil || !ok {
			t.Fatalf("tiered put: ok=%v err=%v", ok, err)
		}
	}
	// Settle the background demoter so tier accounting is deterministic.
	if err := tiered.DrainDemotions(); err != nil {
		t.Fatal(err)
	}
	return mem, tiered, func() {
		if err := tiered.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTieredEquivalence: a store-backed base whose history exceeds its
// memory cap answers every read — Len, Bytes, Get, All, both searches —
// identically to an all-in-memory base, while its memory tier stays
// within the cap.
func TestTieredEquivalence(t *testing.T) {
	const maxMem = 8 << 10
	mem, tiered, cleanup := tieredPair(t, 40, maxMem)
	defer cleanup()

	if mem.Len() != tiered.Len() || mem.Bytes() != tiered.Bytes() {
		t.Fatalf("totals diverge: mem %d/%d tiered %d/%d", mem.Len(), mem.Bytes(), tiered.Len(), tiered.Bytes())
	}
	ts := tiered.TierStats()
	if ts.MemBytes > maxMem {
		t.Fatalf("memory tier %d bytes exceeds cap %d", ts.MemBytes, maxMem)
	}
	if ts.SegEntries == 0 || ts.Segments == 0 {
		t.Fatalf("history did not spill to disk: %+v", ts)
	}
	if ts.MemBytes+ts.SegBytes != tiered.Bytes() {
		t.Fatalf("tier bytes %d+%d != total %d", ts.MemBytes, ts.SegBytes, tiered.Bytes())
	}

	// Get returns the same summary from whichever tier holds it.
	memSnap, tierSnap := mem.Snapshot(), tiered.Snapshot()
	for id := int64(0); id < int64(mem.Len()); id++ {
		a, b := memSnap.Get(id), tierSnap.Get(id)
		if a == nil || b == nil {
			t.Fatalf("Get(%d): mem=%v tiered=%v", id, a != nil, b != nil)
		}
		if b.Summary == nil {
			t.Fatalf("Get(%d): tiered entry not materialized", id)
		}
		if !bytes.Equal(marshal(t, a), marshal(t, b)) {
			t.Fatalf("Get(%d): summaries differ across tiers", id)
		}
	}

	// All: same FIFO order, same contents; disk-resident entries load.
	var aIDs, bIDs []int64
	memSnap.All(func(e *Entry) bool { aIDs = append(aIDs, e.ID); return true })
	tierSnap.All(func(e *Entry) bool {
		if _, err := e.LoadSummary(); err != nil {
			t.Fatalf("LoadSummary(%d): %v", e.ID, err)
		}
		bIDs = append(bIDs, e.ID)
		return true
	})
	if len(aIDs) != len(bIDs) {
		t.Fatalf("All: %d vs %d entries", len(aIDs), len(bIDs))
	}
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			t.Fatalf("All order diverges at %d: %d vs %d", i, aIDs[i], bIDs[i])
		}
	}

	// Searches return the same candidate sets.
	probe := memSnap.Get(3)
	ids := func(s *Snapshot, q geom.MBR) map[int64]bool {
		out := map[int64]bool{}
		s.SearchLocation(q, func(e *Entry) bool { out[e.ID] = true; return true })
		return out
	}
	am, bm := ids(memSnap, probe.MBR), ids(tierSnap, probe.MBR)
	if len(am) != len(bm) {
		t.Fatalf("SearchLocation: %d vs %d hits", len(am), len(bm))
	}
	for id := range am {
		if !bm[id] {
			t.Fatalf("SearchLocation: id %d missing from tiered", id)
		}
	}
	lo := [4]float64{0, 0, 0, 0}
	hi := probe.Features.Vector()
	fids := func(s *Snapshot) map[int64]bool {
		out := map[int64]bool{}
		s.SearchFeatures(lo, hi, func(e *Entry) bool { out[e.ID] = true; return true })
		return out
	}
	af, bf := fids(memSnap), fids(tierSnap)
	if len(af) != len(bf) {
		t.Fatalf("SearchFeatures: %d vs %d hits", len(af), len(bf))
	}
	for id := range af {
		if !bf[id] {
			t.Fatalf("SearchFeatures: id %d missing from tiered", id)
		}
	}

	// FilterShards covers both tiers disjointly.
	shards := tierSnap.FilterShards()
	if len(shards) < 2 {
		t.Fatalf("expected memory + segment shards, got %d", len(shards))
	}
	seen := map[int64]int{}
	for _, sh := range shards {
		sh.SearchFeatures([4]float64{0, 0, 0, 0}, probe.Features.Vector(), func(e *Entry) bool {
			seen[e.ID]++
			return true
		})
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("id %d appears in %d shards", id, n)
		}
	}
}

func marshal(t *testing.T, e *Entry) []byte {
	t.Helper()
	sum, err := e.LoadSummary()
	if err != nil {
		t.Fatal(err)
	}
	return sgs.Marshal(sum)
}

// TestTieredSave: Save of a tiered base is byte-identical to Save of the
// equivalent memory base (the dump is tier-agnostic).
func TestTieredSave(t *testing.T) {
	mem, tiered, cleanup := tieredPair(t, 24, 8<<10)
	defer cleanup()
	var a, b bytes.Buffer
	if err := mem.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := tiered.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("tiered Save diverges from memory Save")
	}
}

// TestTieredRemove: removal works in both tiers, disk removals persist
// across reopen, and totals track.
func TestTieredRemove(t *testing.T) {
	dir := t.TempDir()
	sums := fixtureSummaries(t, 20, 92)
	b, err := New(Config{Dim: 2, StorePath: dir, MaxMemBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatalf("put: ok=%v err=%v", ok, err)
		}
	}
	if err := b.DrainDemotions(); err != nil {
		t.Fatal(err)
	}
	ts := b.TierStats()
	if ts.SegEntries == 0 {
		t.Fatal("setup: nothing on disk")
	}
	// id 0 is the oldest — demoted to disk; the newest id is in memory.
	if !b.Remove(0) {
		t.Fatal("disk-tier remove failed")
	}
	if b.Remove(0) {
		t.Fatal("double remove succeeded")
	}
	newest := int64(len(sums) - 1)
	if !b.Remove(newest) {
		t.Fatal("memory-tier remove failed")
	}
	if b.Len() != len(sums)-2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Get(0) != nil || b.Get(newest) != nil {
		t.Fatal("removed ids still visible")
	}
	if err := b.FlushMem(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: tombstone persisted, contents intact, ids keep growing.
	b2, err := New(Config{Dim: 2, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Len() != len(sums)-2 {
		t.Fatalf("reopened Len = %d", b2.Len())
	}
	if b2.Get(0) != nil {
		t.Fatal("disk tombstone lost on reopen")
	}
	if e := b2.Get(5); e == nil || e.Summary == nil {
		t.Fatal("reopened entry unreadable")
	}
	id, ok, err := b2.Put(sums[0].Clone())
	if err != nil || !ok {
		t.Fatalf("put after reopen: ok=%v err=%v", ok, err)
	}
	// Ids resume past everything ever committed to the store. The removed
	// newest entry (id 19) never reached disk, so its id is free again —
	// what matters is that no live entry's id is ever reissued.
	if id != int64(len(sums))-1 {
		t.Fatalf("id after reopen = %d, want %d", id, len(sums)-1)
	}
	if e := b2.Get(id); e == nil {
		t.Fatal("reissued id not visible")
	}
}

// TestTieredOversizedEntries: summaries each larger than 7/8 of the
// byte budget must still trigger demotion (regression: a negative
// demotion goal used to read as "unbounded", letting the memory tier
// grow past the cap without bound). At most the incoming entry may be
// resident after each Put.
func TestTieredOversizedEntries(t *testing.T) {
	sums := fixtureSummaries(t, 12, 94)
	maxEntry := 0
	for _, s := range sums {
		if n := len(sgs.Marshal(s)); n > maxEntry {
			maxEntry = n
		}
	}
	cap := maxEntry + maxEntry/16 // > any one entry, < any two
	b, err := New(Config{Dim: 2, StorePath: t.TempDir(), MaxMemBytes: cap})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatalf("put: ok=%v err=%v", ok, err)
		}
		if ts := b.TierStats(); ts.MemBytes > cap {
			t.Fatalf("memory tier %d bytes exceeds cap %d", ts.MemBytes, cap)
		}
	}
	if b.Len() != len(sums) {
		t.Fatalf("Len = %d", b.Len())
	}
}

// TestTieredCapacityDemotes: with a store attached, Capacity pressure
// demotes instead of deleting — total history keeps growing while the
// memory tier stays at the cap.
func TestTieredCapacityDemotes(t *testing.T) {
	sums := fixtureSummaries(t, 30, 93)
	b, err := New(Config{Dim: 2, StorePath: t.TempDir(), Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatalf("put: ok=%v err=%v", ok, err)
		}
	}
	if b.Len() != len(sums) {
		t.Fatalf("history shrank: Len = %d", b.Len())
	}
	if err := b.DrainDemotions(); err != nil {
		t.Fatal(err)
	}
	ts := b.TierStats()
	if ts.MemEntries > 8 {
		t.Fatalf("memory tier %d entries exceeds capacity 8", ts.MemEntries)
	}
	if ts.SegEntries != len(sums)-ts.MemEntries {
		t.Fatalf("tier split %d+%d != %d", ts.MemEntries, ts.SegEntries, len(sums))
	}
	// Oldest entries remain matchable from disk.
	if e := b.Get(0); e == nil || e.Summary == nil {
		t.Fatal("oldest entry lost after capacity demotion")
	}
}

// TestDemoterFailureRestores: when a background demotion flush fails,
// the batch's entries must come back to the memory tier (nothing lost,
// every entry still readable), the error must latch, and subsequent
// Puts must surface it instead of growing past the cap.
func TestDemoterFailureRestores(t *testing.T) {
	dir := t.TempDir()
	sums := fixtureSummaries(t, 30, 95)
	b, err := New(Config{Dim: 2, StorePath: dir, MaxMemBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; n < 15; n++ {
		if _, ok, err := b.Put(sums[n]); err != nil || !ok {
			t.Fatalf("put %d: ok=%v err=%v", n, ok, err)
		}
	}
	if err := b.DrainDemotions(); err != nil {
		t.Fatal(err)
	}
	before := b.Len()

	// Pull the directory out from under the store: open segment fds keep
	// their data readable, but every new segment write fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	var putErr error
	for ; n < len(sums); n++ {
		_, ok, err := b.Put(sums[n])
		if err != nil {
			putErr = err
			break
		}
		if !ok {
			t.Fatalf("put %d skipped", n)
		}
	}
	drainErr := b.DrainDemotions()
	if drainErr == nil && putErr == nil {
		t.Skip("no demotion was triggered against the broken store")
	}
	if drainErr == nil {
		t.Fatal("DrainDemotions reports no error after a failed flush")
	}
	// Every successfully archived entry is still there and readable —
	// the failed batch was restored, not dropped.
	want := before + (n - 15)
	if b.Len() != want {
		t.Fatalf("Len = %d after failed demotion, want %d", b.Len(), want)
	}
	snap := b.Snapshot()
	seen := 0
	snap.All(func(e *Entry) bool {
		if _, err := e.LoadSummary(); err != nil {
			t.Fatalf("entry %d unreadable after restore: %v", e.ID, err)
		}
		seen++
		return true
	})
	if seen != want {
		t.Fatalf("All visited %d entries, want %d", seen, want)
	}
	// The error is latched: the base fail-stops instead of growing.
	if _, _, err := b.Put(sums[0].Clone()); err == nil {
		t.Fatal("Put succeeded after a latched demotion failure")
	}
	_ = b.Close()
}
