package archive

import (
	"sync"
	"testing"
)

// TestSnapshotIsolation pins a snapshot and verifies later mutations are
// invisible to it while a fresh snapshot sees them.
func TestSnapshotIsolation(t *testing.T) {
	b, _ := New(Config{Dim: 2})
	sums := fixtureSummaries(t, 20, 31)
	for _, s := range sums[:10] {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
	}
	snap := b.Snapshot()
	if snap.Len() != 10 {
		t.Fatalf("snapshot Len = %d", snap.Len())
	}
	if again := b.Snapshot(); again != snap {
		t.Fatal("unchanged base must return the cached snapshot")
	}

	var removedID int64 = 3
	for _, s := range sums[10:] {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
	}
	if !b.Remove(removedID) {
		t.Fatal("Remove failed")
	}

	// The pinned view is frozen in time.
	if snap.Len() != 10 {
		t.Fatalf("pinned snapshot Len changed to %d", snap.Len())
	}
	if snap.Get(removedID) == nil {
		t.Fatal("pinned snapshot lost a removed entry")
	}
	count := 0
	snap.All(func(e *Entry) bool { count++; return true })
	if count != 10 {
		t.Fatalf("pinned snapshot All visited %d", count)
	}

	// A fresh snapshot observes everything.
	fresh := b.Snapshot()
	if fresh == snap {
		t.Fatal("mutation did not invalidate the cached snapshot")
	}
	if fresh.Len() != 19 {
		t.Fatalf("fresh snapshot Len = %d, want 19", fresh.Len())
	}
	if fresh.Get(removedID) != nil {
		t.Fatal("fresh snapshot still has the removed entry")
	}
}

// TestMutateDuringVisit is the regression test for the callback
// self-deadlock: Put and Remove called from inside All / SearchLocation /
// SearchFeatures visits must work (they used to deadlock on b.mu).
func TestMutateDuringVisit(t *testing.T) {
	sums := fixtureSummaries(t, 30, 32)
	b, _ := New(Config{Dim: 2})
	for _, s := range sums[:10] {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
	}

	next := 10
	put := func(e *Entry) bool {
		if next < len(sums) {
			if _, ok, err := b.Put(sums[next]); err != nil || !ok {
				t.Fatalf("Put inside visit: ok=%v err=%v", ok, err)
			}
			next++
		}
		return true
	}
	b.All(put)
	b.SearchLocation(b.Get(0).MBR, put)
	b.SearchFeatures([4]float64{0, 0, 0, 0}, [4]float64{1e9, 1e9, 1e9, 1e9}, put)
	if b.Len() <= 10 {
		t.Fatalf("Len = %d, puts from visits were lost", b.Len())
	}

	// Remove from inside a visit; the running iteration still sees the
	// snapshot it started from.
	seen := 0
	b.All(func(e *Entry) bool {
		seen++
		b.Remove(e.ID)
		return true
	})
	if seen == 0 {
		t.Fatal("no entries visited")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after removing every visited entry", b.Len())
	}
}

// TestPutBatchMatchesSequentialPut verifies PutBatch is byte-for-byte
// equivalent to a Put loop: same policy decisions (including the
// sampling RNG sequence), same ids, same eviction outcomes.
func TestPutBatchMatchesSequentialPut(t *testing.T) {
	sums := fixtureSummaries(t, 40, 33)
	cfg := Config{Dim: 2, SampleRate: 0.7, Seed: 99, Capacity: 15}

	seq, _ := New(cfg)
	var wantIDs []int64
	var wantOK []bool
	for _, s := range sums {
		id, ok, err := seq.Put(s)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			wantIDs = append(wantIDs, id)
		}
		wantOK = append(wantOK, ok)
	}

	bat, _ := New(cfg)
	ids, oks, err := bat.PutBatch(sums)
	if err != nil {
		t.Fatal(err)
	}
	if len(oks) != len(wantOK) {
		t.Fatalf("batch processed %d of %d", len(oks), len(wantOK))
	}
	gotIDs := ids[:0]
	for i, ok := range oks {
		if ok != wantOK[i] {
			t.Fatalf("summary %d: batch archived=%v, sequential=%v", i, ok, wantOK[i])
		}
		if ok {
			gotIDs = append(gotIDs, ids[i])
		}
	}
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("archived %d vs %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("id %d: batch %d, sequential %d", i, gotIDs[i], wantIDs[i])
		}
	}
	if seq.Len() != bat.Len() || seq.Bytes() != bat.Bytes() {
		t.Fatalf("Len/Bytes diverge: %d/%d vs %d/%d", seq.Len(), seq.Bytes(), bat.Len(), bat.Bytes())
	}
	var a, b []int64
	seq.All(func(e *Entry) bool { a = append(a, e.ID); return true })
	bat.All(func(e *Entry) bool { b = append(b, e.ID); return true })
	if len(a) != len(b) {
		t.Fatalf("All lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("All order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestGenerationFoldConsistency drives the base across several
// delta-fold rebuilds with interleaved removals and capacity evictions,
// checking the visible state against a mirror model after every phase.
func TestGenerationFoldConsistency(t *testing.T) {
	sums := fixtureSummaries(t, 30, 34)
	b, _ := New(Config{Dim: 2, Capacity: 120})

	type live struct{ id int64 }
	var fifo []live
	present := make(map[int64]bool)
	check := func(stage string) {
		t.Helper()
		if b.Len() != len(fifo) {
			t.Fatalf("%s: Len = %d, mirror %d", stage, b.Len(), len(fifo))
		}
		var got []int64
		b.All(func(e *Entry) bool { got = append(got, e.ID); return true })
		if len(got) != len(fifo) {
			t.Fatalf("%s: All visited %d, mirror %d", stage, len(got), len(fifo))
		}
		for i, l := range fifo {
			if got[i] != l.id {
				t.Fatalf("%s: All[%d] = %d, mirror %d", stage, i, got[i], l.id)
			}
		}
		for _, l := range fifo {
			if b.Get(l.id) == nil {
				t.Fatalf("%s: Get(%d) lost a live entry", stage, l.id)
			}
		}
	}

	// 400 puts: crosses the fold threshold and the capacity bound many
	// times (threshold at 120 live entries is 32+120/8 = 47 pending).
	for i := 0; i < 400; i++ {
		id, ok, err := b.Put(sums[i%len(sums)])
		if err != nil || !ok {
			t.Fatal(err)
		}
		fifo = append(fifo, live{id})
		present[id] = true
		if len(fifo) > 120 { // capacity eviction, FIFO
			delete(present, fifo[0].id)
			fifo = fifo[1:]
		}
		// Interleave removals: every 7th put removes the current middle.
		if i%7 == 3 {
			victim := fifo[len(fifo)/2]
			if !b.Remove(victim.id) {
				t.Fatalf("Remove(%d) failed", victim.id)
			}
			delete(present, victim.id)
			fifo = append(fifo[:len(fifo)/2], fifo[len(fifo)/2+1:]...)
		}
		if i%53 == 0 {
			check("interleaved")
		}
	}
	check("final")

	// Every live entry is findable through both indices.
	for _, l := range fifo[:20] {
		e := b.Get(l.id)
		found := false
		b.SearchLocation(e.MBR, func(x *Entry) bool {
			if x.ID == l.id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("entry %d missing from location search after folds", l.id)
		}
		v := e.Features.Vector()
		var lo, hi [4]float64
		for d := 0; d < 4; d++ {
			lo[d], hi[d] = v[d]*0.99, v[d]*1.01+1e-9
		}
		found = false
		b.SearchFeatures(lo, hi, func(x *Entry) bool {
			if x.ID == l.id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("entry %d missing from feature search after folds", l.id)
		}
	}
}

// TestConcurrentPutBatchSearch hammers one base from writer and reader
// goroutines; run with -race it proves the snapshot path shares no
// mutable state with the append path.
func TestConcurrentPutBatchSearch(t *testing.T) {
	sums := fixtureSummaries(t, 24, 35)
	b, _ := New(Config{Dim: 2, Capacity: 200})
	const writers, readers, rounds = 3, 3, 40

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := sums[(w+r)%12 : (w+r)%12+8]
				if _, _, err := b.PutBatch(batch); err != nil {
					t.Error(err)
					return
				}
				if r%5 == 0 {
					b.Remove(int64(w*rounds + r))
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := b.Snapshot()
				n := 0
				snap.All(func(e *Entry) bool { n++; return true })
				if n != snap.Len() {
					t.Errorf("snapshot All visited %d, Len %d", n, snap.Len())
					return
				}
				snap.SearchFeatures([4]float64{0, 0, 0, 0},
					[4]float64{1e9, 1e9, 1e9, 1e9}, func(e *Entry) bool { return true })
			}
		}(r)
	}
	rg.Wait()
	if b.Len() == 0 {
		t.Fatal("nothing archived")
	}
}
