package archive

import (
	"streamsum/internal/featidx"
	"streamsum/internal/geom"
	"streamsum/internal/rtree"
)

// Snapshot is an immutable point-in-time view of the pattern base: the
// frozen generation's indices (shared, never mutated after publication),
// a private copy of the delta, and the tombstone set as of the snapshot.
// Any number of goroutines may search one snapshot concurrently, and no
// snapshot operation ever takes the base lock — matching queries run
// entirely off the archiver's append path.
//
// A snapshot does not see mutations made after it was taken; pin one
// snapshot per query when the filter phases must agree on a single
// archive state, or go through the Base convenience wrappers when
// per-call freshness is enough.
type Snapshot struct {
	gen   *generation
	delta []*Entry
	dead  map[int64]struct{}
	count int
	bytes int
}

// Snapshot returns a read-only view of the base's current contents. The
// view is cached: repeated calls between mutations return the same
// Snapshot, and taking one after a mutation costs O(delta + tombstones)
// — the frozen generation is shared, not copied.
func (b *Base) Snapshot() *Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.snap != nil {
		return b.snap
	}
	s := &Snapshot{gen: b.frozen, count: b.count, bytes: b.bytes}
	if len(b.delta) > 0 {
		s.delta = append(make([]*Entry, 0, len(b.delta)), b.delta...)
	}
	if len(b.dead) > 0 {
		s.dead = make(map[int64]struct{}, len(b.dead))
		for id := range b.dead {
			s.dead[id] = struct{}{}
		}
	}
	b.snap = s
	return s
}

// Len returns the number of archived clusters in the snapshot.
func (s *Snapshot) Len() int { return s.count }

// Bytes returns the total encoded size of the snapshot's summaries.
func (s *Snapshot) Bytes() int { return s.bytes }

func (s *Snapshot) isDead(id int64) bool {
	_, gone := s.dead[id]
	return gone
}

// Get returns the entry with the given id, or nil.
func (s *Snapshot) Get(id int64) *Entry {
	if s.isDead(id) {
		return nil
	}
	if e, ok := s.gen.entries[id]; ok {
		return e
	}
	for _, e := range s.delta {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// SearchLocation visits entries whose MBR intersects the query box: the
// frozen generation via its R-tree, then the delta by linear scan (the
// delta is bounded by the base's fold threshold). Iteration stops early
// if visit returns false.
func (s *Snapshot) SearchLocation(q geom.MBR, visit func(*Entry) bool) {
	stopped := false
	s.gen.loc.SearchIntersect(q, func(it rtree.Item) bool {
		if s.isDead(it.ID) {
			return true
		}
		if !visit(s.gen.entries[it.ID]) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, e := range s.delta {
		if e.MBR.Intersects(q) && !visit(e) {
			return
		}
	}
}

// SearchFeatures visits entries whose feature vector lies inside the
// inclusive hyper-rectangle [lo, hi]: the frozen generation via its 4-D
// grid index, then the delta by linear scan. Iteration stops early if
// visit returns false.
func (s *Snapshot) SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool) {
	stopped := false
	s.gen.feat.Search(lo, hi, func(fe featidx.Entry) bool {
		if s.isDead(fe.ID) {
			return true
		}
		if !visit(s.gen.entries[fe.ID]) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, e := range s.delta {
		v := e.Features.Vector()
		in := true
		for d := 0; d < 4; d++ {
			if v[d] < lo[d] || v[d] > hi[d] {
				in = false
				break
			}
		}
		if in && !visit(e) {
			return
		}
	}
}

// All visits every entry in FIFO order: the frozen generation's order
// minus tombstones, then the delta (every delta entry postdates every
// frozen one). Iteration stops early if visit returns false.
func (s *Snapshot) All(visit func(*Entry) bool) {
	for _, id := range s.gen.order {
		if s.isDead(id) {
			continue
		}
		if !visit(s.gen.entries[id]) {
			return
		}
	}
	for _, e := range s.delta {
		if !visit(e) {
			return
		}
	}
}
