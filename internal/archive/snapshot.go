package archive

import (
	"path/filepath"
	"sync"

	"streamsum/internal/featidx"
	"streamsum/internal/geom"
	"streamsum/internal/rtree"
	"streamsum/internal/segstore"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

// Snapshot is an immutable point-in-time view of the pattern base: the
// frozen generation's indices (shared, never mutated after publication),
// a private copy of the delta, the tombstone set as of the snapshot, and
// — for store-backed bases — a pinned view of the disk tier's segment
// set. Any number of goroutines may search one snapshot concurrently,
// and no snapshot operation ever takes the base lock — matching queries
// run entirely off the archiver's append path.
//
// A snapshot does not see mutations made after it was taken; pin one
// snapshot per query when the filter phases must agree on a single
// archive state, or go through the Base convenience wrappers when
// per-call freshness is enough.
type Snapshot struct {
	gen      *generation
	demoting []*Entry // in-flight demotions not yet visible in view, oldest first
	delta    []*Entry
	dead     map[int64]struct{}
	view     *segstore.View  // disk tier; nil for memory-only bases
	cache    *sumcache.Cache // decoded-summary residency layer; nil when disabled
	count    int             // live entries across both tiers
	bytes    int             // live encoded bytes across both tiers

	// unindexed maps the delta + demoting entries by id, built lazily on
	// the first Get so per-id lookups (the standing-query wiring resolves
	// every newly archived id per window) cost O(1) instead of a delta
	// scan. Searches keep scanning: they need range predicates anyway.
	idxOnce   sync.Once
	unindexed map[int64]*Entry
}

// memByID resolves an id in the snapshot's unindexed memory portion
// (delta + in-flight demotions).
func (s *Snapshot) memByID(id int64) (*Entry, bool) {
	s.idxOnce.Do(func() {
		m := make(map[int64]*Entry, len(s.delta)+len(s.demoting))
		for _, e := range s.delta {
			m[e.ID] = e
		}
		for _, e := range s.demoting {
			m[e.ID] = e
		}
		s.unindexed = m
	})
	e, ok := s.unindexed[id]
	return e, ok
}

// Snapshot returns a read-only view of the base's current contents. The
// view is cached: repeated calls between mutations return the same
// Snapshot, and taking one after a mutation costs O(delta + tombstones)
// — the frozen generation and the disk segments are shared, not copied.
func (b *Base) Snapshot() *Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.snap != nil {
		return b.snap
	}
	s := &Snapshot{gen: b.frozen, cache: b.cache, count: b.count, bytes: b.bytes}
	if len(b.delta) > 0 {
		s.delta = append(make([]*Entry, 0, len(b.delta)), b.delta...)
	}
	if len(b.dead) > 0 {
		s.dead = make(map[int64]struct{}, len(b.dead))
		for id := range b.dead {
			s.dead[id] = struct{}{}
		}
	}
	if b.store != nil {
		s.view = b.store.View()
	}
	// Entries in flight to the disk tier stay visible exactly once: via
	// the pinned store view when their segment committed before the view
	// was taken, via the snapshot's demoting list otherwise (the demoter
	// commits outside b.mu, so a batch can be committed but not yet
	// dequeued — both the view and the queue are captured here, under
	// b.mu, making the membership test race-free).
	for _, batch := range b.demotePending {
		for _, e := range batch.entries {
			if s.view != nil {
				if _, _, ok := s.view.Get(e.ID); ok {
					continue
				}
			}
			s.demoting = append(s.demoting, e)
		}
	}
	b.snap = s
	return s
}

// Len returns the number of archived clusters in the snapshot (both
// tiers).
func (s *Snapshot) Len() int { return s.count }

// Bytes returns the total encoded size of the snapshot's summaries
// (both tiers).
func (s *Snapshot) Bytes() int { return s.bytes }

func (s *Snapshot) isDead(id int64) bool {
	_, gone := s.dead[id]
	return gone
}

// segEntry wraps one disk-resident record as an Entry: the filter-phase
// features come from the segment footer; the summary loads lazily
// through the decoded-summary cache (keyed by the segment — immutable,
// so its decodes never go stale — and the record id). A nil cache means
// every load decodes from the segment. This closure is the single
// residency choke point: match refine, batch novelty probes, standing-
// query evaluation, Snapshot.Get and base dumps all load through it.
func segEntry(cache *sumcache.Cache, seg *segstore.Segment, r segstore.Record) *Entry {
	return &Entry{
		ID:       r.ID,
		MBR:      r.MBR,
		Features: sgs.FeaturesFromVector(r.Feat),
		Bytes:    int(r.Len),
		load: func() (*sgs.Summary, bool, error) {
			return cache.GetOrLoadHit(seg, r.ID, int(r.Len), func() (*sgs.Summary, error) {
				return seg.Load(r)
			})
		},
	}
}

// Get returns the entry with the given id, or nil. Disk-resident entries
// are returned with the summary materialized (one segment read); if that
// read fails, Get reports the entry absent — run a matching query when
// the I/O error itself matters, its refine phase surfaces it.
func (s *Snapshot) Get(id int64) *Entry {
	if !s.isDead(id) {
		if e, ok := s.gen.entries[id]; ok {
			return e
		}
	}
	// Delta and in-flight demotions (frozen-origin demoting ids are in
	// the dead set, so the gen lookup above skipped them; neither delta
	// nor demoting entries are ever in the dead set themselves).
	if e, ok := s.memByID(id); ok {
		return e
	}
	// The memory tier marks demoted ids dead, so a dead id may still be
	// live on disk.
	if s.view != nil {
		if seg, r, ok := s.view.Get(id); ok {
			e := segEntry(s.cache, seg, r)
			sum, err := e.LoadSummary()
			if err != nil {
				return nil
			}
			return e.WithSummary(sum)
		}
	}
	return nil
}

// memShard is the memory tier as a filter shard: the frozen generation's
// indices plus linear scans of the in-flight demotions and the delta.
type memShard struct{ s *Snapshot }

// SearchLocation visits memory-tier entries whose MBR intersects the
// query box. Iteration stops early if visit returns false.
func (m memShard) SearchLocation(q geom.MBR, visit func(*Entry) bool) {
	m.GatedSearchLocation(q, nil, visit)
}

// GatedSearchLocation visits memory-tier entries whose MBR intersects
// the query box and whose feature vector passes gate; it returns the
// number of live intersecting entries regardless of the gate.
func (m memShard) GatedSearchLocation(q geom.MBR, gate func([4]float64) bool, visit func(*Entry) bool) int {
	s := m.s
	probed := 0
	stopped := false
	s.gen.loc.SearchIntersect(q, func(it rtree.Item) bool {
		if s.isDead(it.ID) {
			return true
		}
		probed++
		e := s.gen.entries[it.ID]
		if gate != nil && !gate(e.Features.Vector()) {
			return true
		}
		if !visit(e) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return probed
	}
	for _, list := range [2][]*Entry{s.demoting, s.delta} {
		for _, e := range list {
			if !e.MBR.Intersects(q) {
				continue
			}
			probed++
			if gate != nil && !gate(e.Features.Vector()) {
				continue
			}
			if !visit(e) {
				return probed
			}
		}
	}
	return probed
}

// SearchFeatures visits memory-tier entries whose feature vector lies
// inside [lo, hi]. Iteration stops early if visit returns false.
func (m memShard) SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool) {
	m.GatedSearchFeatures(lo, hi, nil, visit)
}

// GatedSearchFeatures visits memory-tier entries whose feature vector
// lies inside [lo, hi] and passes gate; it returns the number of live
// in-range entries regardless of the gate.
func (m memShard) GatedSearchFeatures(lo, hi [4]float64, gate func([4]float64) bool, visit func(*Entry) bool) int {
	s := m.s
	probed := 0
	stopped := false
	s.gen.feat.Search(lo, hi, func(fe featidx.Entry) bool {
		if s.isDead(fe.ID) {
			return true
		}
		probed++
		e := s.gen.entries[fe.ID]
		if gate != nil && !gate(e.Features.Vector()) {
			return true
		}
		if !visit(e) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return probed
	}
	inRange := func(v [4]float64) bool {
		for d := 0; d < 4; d++ {
			if v[d] < lo[d] || v[d] > hi[d] {
				return false
			}
		}
		return true
	}
	for _, list := range [2][]*Entry{s.demoting, s.delta} {
		for _, e := range list {
			v := e.Features.Vector()
			if !inRange(v) {
				continue
			}
			probed++
			if gate != nil && !gate(v) {
				continue
			}
			if !visit(e) {
				return probed
			}
		}
	}
	return probed
}

// segShard is one disk segment as a filter shard, masked by the store
// tombstones pinned in the snapshot's view. Entries it surfaces load
// their summaries through the snapshot's decoded-summary cache.
type segShard struct {
	seg   *segstore.Segment
	view  *segstore.View
	cache *sumcache.Cache
}

// SearchLocation visits the segment's live records whose MBR intersects
// the query box.
func (g segShard) SearchLocation(q geom.MBR, visit func(*Entry) bool) {
	g.seg.SearchLocation(q, func(r segstore.Record) bool {
		if g.view.Dead(r.ID) {
			return true
		}
		return visit(segEntry(g.cache, g.seg, r))
	})
}

// SearchFeatures visits the segment's live records whose feature vector
// lies inside [lo, hi].
func (g segShard) SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool) {
	g.seg.SearchFeatures(lo, hi, func(r segstore.Record) bool {
		if g.view.Dead(r.ID) {
			return true
		}
		return visit(segEntry(g.cache, g.seg, r))
	})
}

// GatedSearchLocation visits the segment's live records whose MBR
// intersects the query box and whose feature vector passes gate; it
// returns the number of live intersecting records regardless of the
// gate. On v3 segments the range test and the gate both run off the
// columnar scan, and gate rejections never materialize an Entry.
func (g segShard) GatedSearchLocation(q geom.MBR, gate func([4]float64) bool, visit func(*Entry) bool) int {
	probed := 0
	g.seg.GatedSearchLocation(q, nil, func(r segstore.Record) bool {
		if g.view.Dead(r.ID) {
			return true
		}
		probed++
		if gate != nil && !gate(r.Feat) {
			return true
		}
		return visit(segEntry(g.cache, g.seg, r))
	})
	return probed
}

// GatedSearchFeatures visits the segment's live records whose feature
// vector lies inside [lo, hi] and passes gate; it returns the number of
// live in-range records regardless of the gate.
func (g segShard) GatedSearchFeatures(lo, hi [4]float64, gate func([4]float64) bool, visit func(*Entry) bool) int {
	probed := 0
	g.seg.GatedSearchFeatures(lo, hi, nil, func(r segstore.Record) bool {
		if g.view.Dead(r.ID) {
			return true
		}
		probed++
		if gate != nil && !gate(r.Feat) {
			return true
		}
		return visit(segEntry(g.cache, g.seg, r))
	})
	return probed
}

// ZoneIntersectsLocation reports whether the query box can intersect
// the segment's zone (the union MBR of its records). A false answer is
// exactly the condition under which the segment's own gated search
// skips the whole scan; exposing it separately lets per-query tracing
// attribute skips without re-running the probe.
func (g segShard) ZoneIntersectsLocation(q geom.MBR) bool {
	mbr, _, _ := g.seg.Zone()
	return mbr.Intersects(q)
}

// ZoneIntersectsFeatures reports whether the feature range [lo, hi] can
// intersect the segment's per-feature zone bounds; see
// ZoneIntersectsLocation for the tracing contract.
func (g segShard) ZoneIntersectsFeatures(lo, hi [4]float64) bool {
	_, fmin, fmax := g.seg.Zone()
	for d := 0; d < 4; d++ {
		if hi[d] < fmin[d] || lo[d] > fmax[d] {
			return false
		}
	}
	return true
}

// ShardInfo identifies a filter shard for per-query span tracing: a
// human-readable label (the segment file's basename, or "mem" for the
// memory tier) and the segment format version (0 when the shard is not
// a disk segment). Purely descriptive — it never affects matching.
type ShardInfo interface {
	ShardInfo() (label string, format int)
}

// ShardInfo labels the memory-tier shard.
func (m memShard) ShardInfo() (string, int) { return "mem", 0 }

// ShardInfo labels a disk-segment shard with its file basename and
// on-disk format version.
func (g segShard) ShardInfo() (string, int) {
	return filepath.Base(g.seg.Path()), g.seg.Format()
}

// ZoneSearcher is implemented by disk-segment filter shards: a cheap,
// probe-free answer to "could this query touch the shard at all?",
// mirroring the zone test the shard's own gated searches apply. The
// matcher type-asserts for it to count segments probed vs skipped per
// query; shards without zones (the memory tier) simply don't implement
// it.
type ZoneSearcher interface {
	ZoneIntersectsLocation(q geom.MBR) bool
	ZoneIntersectsFeatures(lo, hi [4]float64) bool
}

// FilterShards splits the snapshot into independently searchable filter
// shards: the memory tier first, then one shard per disk segment in
// archive order. Shards are disjoint (an id appears in exactly one) and
// each is safe for concurrent probing, so a matcher may fan its filter
// phase out across them — internal/match does exactly that.
func (s *Snapshot) FilterShards() []Searcher {
	segs := s.segShards()
	shards := make([]Searcher, 0, 1+len(segs))
	shards = append(shards, memShard{s})
	for _, sh := range segs {
		shards = append(shards, sh)
	}
	return shards
}

// segShards returns the disk tier's filter shards (nil for memory-only
// bases).
func (s *Snapshot) segShards() []segShard {
	if s.view == nil {
		return nil
	}
	segs := s.view.Segments()
	out := make([]segShard, len(segs))
	for i, seg := range segs {
		out[i] = segShard{seg: seg, view: s.view, cache: s.cache}
	}
	return out
}

// SearchLocation visits entries whose MBR intersects the query box: the
// disk segments (oldest history first), then the frozen generation via
// its R-tree, then the delta by linear scan. Iteration stops early if
// visit returns false.
func (s *Snapshot) SearchLocation(q geom.MBR, visit func(*Entry) bool) {
	stopped := false
	wrapped := func(e *Entry) bool {
		stopped = !visit(e)
		return !stopped
	}
	for _, sh := range s.segShards() {
		sh.SearchLocation(q, wrapped)
		if stopped {
			return
		}
	}
	memShard{s}.SearchLocation(q, wrapped)
}

// SearchFeatures visits entries whose feature vector lies inside the
// inclusive hyper-rectangle [lo, hi], disk segments first, then the
// memory tier. Iteration stops early if visit returns false.
func (s *Snapshot) SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool) {
	stopped := false
	wrapped := func(e *Entry) bool {
		stopped = !visit(e)
		return !stopped
	}
	for _, sh := range s.segShards() {
		sh.SearchFeatures(lo, hi, wrapped)
		if stopped {
			return
		}
	}
	memShard{s}.SearchFeatures(lo, hi, wrapped)
}

// All visits every entry in FIFO order: the disk segments (all disk
// entries predate all memory entries — demotion always takes the oldest),
// then in-flight demotions (the oldest memory entries), then the frozen
// generation's order minus tombstones, then the delta. Disk-resident
// entries are visited summary-free; call LoadSummary on them when the
// cells are needed. Iteration stops early if visit returns false.
func (s *Snapshot) All(visit func(*Entry) bool) {
	if s.view != nil {
		for _, seg := range s.view.Segments() {
			for _, r := range seg.Records() {
				if s.view.Dead(r.ID) {
					continue
				}
				if !visit(segEntry(s.cache, seg, r)) {
					return
				}
			}
		}
	}
	for _, e := range s.demoting {
		if !visit(e) {
			return
		}
	}
	for _, id := range s.gen.order {
		if s.isDead(id) {
			continue
		}
		if !visit(s.gen.entries[id]) {
			return
		}
	}
	for _, e := range s.delta {
		if !visit(e) {
			return
		}
	}
}
