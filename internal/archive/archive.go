// Package archive implements the Pattern Archiver and Pattern Base of the
// framework (§3.3, §6, §7.1).
//
// The archiver decides which extracted clusters enter the pattern base
// (selective archiving: sampling and feature predicates, §6.2) and at
// which resolution they are stored (budget- and accuracy-aware resolution
// selection over the multi-resolution SGS hierarchy, §6.1). The pattern
// base organizes the archived summaries under two indices: an R-tree over
// cluster MBRs (locational feature index) and a 4-D grid over the
// non-locational features (volume, status count, average density, average
// connectivity), so matching queries can locate candidates without
// scanning the archive (§7.1).
package archive

import (
	"fmt"
	"math/rand"
	"sync"

	"streamsum/internal/featidx"
	"streamsum/internal/geom"
	"streamsum/internal/rtree"
	"streamsum/internal/sgs"
)

// Config controls archiving policy.
type Config struct {
	// Dim is the data-space dimensionality (required).
	Dim int
	// Level is the resolution level to archive at (0 = basic SGS).
	Level int
	// Theta is the compression rate between resolution levels (>= 2;
	// ignored when Level == 0 and ByteBudget == 0).
	Theta int
	// ByteBudget, when positive, overrides Level: each summary is stored
	// at the finest level whose encoding fits the budget (§6.1).
	ByteBudget int
	// SampleRate archives only this fraction of offered clusters
	// (selective archiving by sampling, §6.2). 0 or 1 keeps everything.
	SampleRate float64
	// MinPopulation drops clusters with fewer member objects (selective
	// archiving by feature, §6.2). 0 keeps everything.
	MinPopulation int
	// MinCells drops clusters whose SGS has fewer cells. 0 keeps all.
	MinCells int
	// Capacity bounds the number of archived clusters; once full, the
	// oldest archived cluster is evicted (0 = unlimited).
	Capacity int
	// Seed makes sampling reproducible.
	Seed int64
}

// Entry is one archived cluster.
type Entry struct {
	ID       int64
	Summary  *sgs.Summary
	MBR      geom.MBR
	Features sgs.Features
	// Bytes is the summary's encoded size, maintained so the archive can
	// report its exact storage footprint (Fig. 8's memory metric).
	Bytes int
}

// Base is the pattern base. It is safe for concurrent use: the extractor
// appends while analysts run matching queries.
type Base struct {
	mu      sync.RWMutex
	cfg     Config
	rng     *rand.Rand
	nextID  int64
	entries map[int64]*Entry
	order   []int64 // FIFO for capacity eviction
	loc     *rtree.Tree
	feat    *featidx.Index
	bytes   int
}

// New returns an empty pattern base.
func New(cfg Config) (*Base, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("archive: dimension required")
	}
	if cfg.Level < 0 {
		return nil, fmt.Errorf("archive: negative level")
	}
	if (cfg.Level > 0 || cfg.ByteBudget > 0) && cfg.Theta < 2 {
		return nil, fmt.Errorf("archive: compression requires theta >= 2, got %d", cfg.Theta)
	}
	if cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("archive: sample rate %g out of [0,1]", cfg.SampleRate)
	}
	return &Base{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		entries: make(map[int64]*Entry),
		loc:     rtree.New(cfg.Dim),
		feat:    featidx.New(),
	}, nil
}

// Config returns the archiving policy.
func (b *Base) Config() Config { return b.cfg }

// Len returns the number of archived clusters.
func (b *Base) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entries)
}

// Bytes returns the total encoded size of all archived summaries.
func (b *Base) Bytes() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bytes
}

// Put offers one extracted cluster summary to the archiver. It returns the
// archive id and true if the cluster was archived, or false if the
// selection policy skipped it. The summary is cloned/compressed; the
// caller's copy is never retained.
func (b *Base) Put(s *sgs.Summary) (int64, bool, error) {
	if s == nil || s.NumCells() == 0 {
		return 0, false, fmt.Errorf("archive: empty summary")
	}
	if s.Dim != b.cfg.Dim {
		return 0, false, fmt.Errorf("archive: summary dimension %d != base dimension %d", s.Dim, b.cfg.Dim)
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	// Selective archiving (§6.2).
	if b.cfg.MinPopulation > 0 && s.TotalPopulation() < b.cfg.MinPopulation {
		return 0, false, nil
	}
	if b.cfg.MinCells > 0 && s.NumCells() < b.cfg.MinCells {
		return 0, false, nil
	}
	if b.cfg.SampleRate > 0 && b.cfg.SampleRate < 1 && b.rng.Float64() >= b.cfg.SampleRate {
		return 0, false, nil
	}

	// Resolution selection (§6.1).
	stored, err := b.selectResolution(s)
	if err != nil {
		return 0, false, err
	}

	id := b.nextID
	b.nextID++
	stored.ID = id
	e := &Entry{
		ID:       id,
		Summary:  stored,
		MBR:      stored.MBR(),
		Features: stored.Features(),
		Bytes:    sgs.EncodedSize(stored),
	}
	if err := b.loc.Insert(id, e.MBR); err != nil {
		return 0, false, err
	}
	b.feat.Insert(id, e.Features.Vector())
	b.entries[id] = e
	b.order = append(b.order, id)
	b.bytes += e.Bytes

	if b.cfg.Capacity > 0 {
		for len(b.entries) > b.cfg.Capacity {
			oldest := b.order[0]
			b.order = b.order[1:]
			b.removeLocked(oldest)
		}
	}
	return id, true, nil
}

// selectResolution applies §6.1: fixed level, or finest level fitting the
// byte budget.
func (b *Base) selectResolution(s *sgs.Summary) (*sgs.Summary, error) {
	if b.cfg.ByteBudget > 0 {
		cur := s.Clone()
		// Compress until the encoding fits; a single-cell summary is the
		// coarsest possible representation, so the loop always terminates.
		for i := 0; i < 64 && sgs.EncodedSize(cur) > b.cfg.ByteBudget && cur.NumCells() > 1; i++ {
			next, err := cur.Compress(b.cfg.Theta)
			if err != nil {
				return nil, err
			}
			cur = next
		}
		return cur, nil
	}
	if b.cfg.Level == 0 {
		return s.Clone(), nil
	}
	return s.CompressTo(b.cfg.Level, b.cfg.Theta)
}

// Get returns the archived entry with the given id, or nil.
func (b *Base) Get(id int64) *Entry {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.entries[id]
}

// Remove deletes an archived cluster. It returns true if it existed.
func (b *Base) Remove(id int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.entries[id]; !ok {
		return false
	}
	for i, x := range b.order {
		if x == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	b.removeLocked(id)
	return true
}

func (b *Base) removeLocked(id int64) {
	e, ok := b.entries[id]
	if !ok {
		return
	}
	b.loc.Delete(id, e.MBR)
	b.feat.Remove(id, e.Features.Vector())
	b.bytes -= e.Bytes
	delete(b.entries, id)
}

// SearchLocation visits archived entries whose MBR intersects the query
// box (the position-sensitive filter phase).
func (b *Base) SearchLocation(q geom.MBR, visit func(*Entry) bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.loc.SearchIntersect(q, func(it rtree.Item) bool {
		return visit(b.entries[it.ID])
	})
}

// SearchFeatures visits archived entries whose feature vector lies inside
// [lo, hi] (the non-position-sensitive filter phase).
func (b *Base) SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.feat.Search(lo, hi, func(fe featidx.Entry) bool {
		return visit(b.entries[fe.ID])
	})
}

// All visits every archived entry (diagnostics, persistence, linear-scan
// baselines).
func (b *Base) All(visit func(*Entry) bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, id := range b.order {
		if !visit(b.entries[id]) {
			return
		}
	}
}
