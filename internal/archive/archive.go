package archive

import (
	"fmt"
	"math/rand"
	"sync"

	"streamsum/internal/featidx"
	"streamsum/internal/geom"
	"streamsum/internal/rtree"
	"streamsum/internal/sgs"
)

// Config controls archiving policy.
type Config struct {
	// Dim is the data-space dimensionality (required).
	Dim int
	// Level is the resolution level to archive at (0 = basic SGS).
	Level int
	// Theta is the compression rate between resolution levels (>= 2;
	// ignored when Level == 0 and ByteBudget == 0).
	Theta int
	// ByteBudget, when positive, overrides Level: each summary is stored
	// at the finest level whose encoding fits the budget (§6.1).
	ByteBudget int
	// SampleRate archives only this fraction of offered clusters
	// (selective archiving by sampling, §6.2). 0 or 1 keeps everything.
	SampleRate float64
	// MinPopulation drops clusters with fewer member objects (selective
	// archiving by feature, §6.2). 0 keeps everything.
	MinPopulation int
	// MinCells drops clusters whose SGS has fewer cells. 0 keeps all.
	MinCells int
	// Capacity bounds the number of archived clusters; once full, the
	// oldest archived cluster is evicted (0 = unlimited).
	Capacity int
	// Seed makes sampling reproducible.
	Seed int64
}

// Entry is one archived cluster. Entries are immutable once archived:
// they are shared by reference between the base and every snapshot, and
// no field is ever modified after Put returns.
type Entry struct {
	ID       int64
	Summary  *sgs.Summary
	MBR      geom.MBR
	Features sgs.Features
	// Bytes is the summary's encoded size, maintained so the archive can
	// report its exact storage footprint (Fig. 8's memory metric).
	Bytes int
}

// generation is the frozen, fully indexed portion of the base. A
// generation is immutable once published: its indices are only ever
// traversed after publication, never mutated, so any number of snapshot
// readers may search them concurrently without synchronization (the
// read-only traversal contract documented in internal/rtree and
// internal/featidx).
type generation struct {
	entries map[int64]*Entry
	order   []int64 // FIFO
	loc     *rtree.Tree
	feat    *featidx.Index
}

func newGeneration(dim int) *generation {
	return &generation{
		entries: make(map[int64]*Entry),
		loc:     rtree.New(dim),
		feat:    featidx.New(),
	}
}

// Base is the pattern base. It is safe for concurrent use: any number of
// extractor shards append (Put/PutBatch/Remove) while analysts run
// matching queries against read-only snapshots.
//
// Internally the base is generational: a frozen, index-backed generation
// absorbs the bulk of the archive, recent mutations accumulate in a small
// unindexed delta (appends) plus a tombstone set (removals), and the
// writer folds both into a fresh generation once they outgrow an
// amortized threshold. Queries never traverse live indices — they pin a
// Snapshot, so a mutation never blocks on a reader and a reader never
// observes a half-applied write.
type Base struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	nextID int64

	frozen      *generation
	frozenEvict int                // frozen.order index of the next FIFO eviction candidate
	delta       []*Entry           // archived since the last rebuild, FIFO, unindexed
	dead        map[int64]struct{} // frozen ids removed since the last rebuild
	count       int                // live entries (frozen minus dead, plus delta)
	bytes       int                // live encoded bytes
	snap        *Snapshot          // cached read view; nil after any mutation
}

// New returns an empty pattern base.
func New(cfg Config) (*Base, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("archive: dimension required")
	}
	if cfg.Level < 0 {
		return nil, fmt.Errorf("archive: negative level")
	}
	if (cfg.Level > 0 || cfg.ByteBudget > 0) && cfg.Theta < 2 {
		return nil, fmt.Errorf("archive: compression requires theta >= 2, got %d", cfg.Theta)
	}
	if cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("archive: sample rate %g out of [0,1]", cfg.SampleRate)
	}
	return &Base{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		frozen: newGeneration(cfg.Dim),
		dead:   make(map[int64]struct{}),
	}, nil
}

// Config returns the archiving policy.
func (b *Base) Config() Config { return b.cfg }

// Len returns the number of archived clusters.
func (b *Base) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Bytes returns the total encoded size of all archived summaries.
func (b *Base) Bytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// validatePut checks a summary before it is offered to the selection
// policy. It reads only the immutable config, so callers may invoke it
// with or without the base lock held.
func (b *Base) validatePut(s *sgs.Summary) error {
	if s == nil || s.NumCells() == 0 {
		return fmt.Errorf("archive: empty summary")
	}
	if s.Dim != b.cfg.Dim {
		return fmt.Errorf("archive: summary dimension %d != base dimension %d", s.Dim, b.cfg.Dim)
	}
	return nil
}

// Put offers one extracted cluster summary to the archiver. It returns the
// archive id and true if the cluster was archived, or false if the
// selection policy skipped it. The summary is cloned/compressed; the
// caller's copy is never retained.
func (b *Base) Put(s *sgs.Summary) (int64, bool, error) {
	if err := b.validatePut(s); err != nil {
		return 0, false, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.putLocked(s)
}

// PutBatch offers a window's worth of summaries with semantics identical
// to calling Put for each in order (same policy decisions, same ids, same
// evictions), but under a single base lock acquisition — the intended
// append path for sharded ingestion, where N engines feed one base and
// per-cluster locking would multiply contention. It returns the per-
// summary archive ids and archived flags. On error the prefix already
// archived stays archived (exactly as a sequential Put loop would leave
// it) and the returned slices cover that prefix.
func (b *Base) PutBatch(ss []*sgs.Summary) (ids []int64, archived []bool, err error) {
	ids = make([]int64, 0, len(ss))
	archived = make([]bool, 0, len(ss))
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range ss {
		if err := b.validatePut(s); err != nil {
			return ids, archived, err
		}
		id, ok, err := b.putLocked(s)
		if err != nil {
			return ids, archived, err
		}
		ids = append(ids, id)
		archived = append(archived, ok)
	}
	return ids, archived, nil
}

func (b *Base) putLocked(s *sgs.Summary) (int64, bool, error) {
	// Selective archiving (§6.2).
	if b.cfg.MinPopulation > 0 && s.TotalPopulation() < b.cfg.MinPopulation {
		return 0, false, nil
	}
	if b.cfg.MinCells > 0 && s.NumCells() < b.cfg.MinCells {
		return 0, false, nil
	}
	if b.cfg.SampleRate > 0 && b.cfg.SampleRate < 1 && b.rng.Float64() >= b.cfg.SampleRate {
		return 0, false, nil
	}

	// Resolution selection (§6.1).
	stored, err := b.selectResolution(s)
	if err != nil {
		return 0, false, err
	}

	id := b.nextID
	b.nextID++
	stored.ID = id
	e := &Entry{
		ID:       id,
		Summary:  stored,
		MBR:      stored.MBR(),
		Features: stored.Features(),
		Bytes:    sgs.EncodedSize(stored),
	}
	if e.MBR.IsEmpty() {
		return 0, false, fmt.Errorf("archive: summary has empty MBR")
	}
	// Fold before committing the entry: a fold error then reports a
	// genuinely un-archived summary (the error path is unreachable for
	// entries that passed the validation above, but the contract — Put
	// fails means not archived — must not depend on that).
	if err := b.maybeRebuildLocked(); err != nil {
		return 0, false, err
	}
	b.delta = append(b.delta, e)
	b.count++
	b.bytes += e.Bytes
	b.snap = nil

	if b.cfg.Capacity > 0 {
		for b.count > b.cfg.Capacity {
			b.evictOldestLocked()
		}
	}
	return id, true, nil
}

// selectResolution applies §6.1: fixed level, or finest level fitting the
// byte budget.
func (b *Base) selectResolution(s *sgs.Summary) (*sgs.Summary, error) {
	if b.cfg.ByteBudget > 0 {
		cur := s.Clone()
		// Compress until the encoding fits; a single-cell summary is the
		// coarsest possible representation, so the loop always terminates.
		for i := 0; i < 64 && sgs.EncodedSize(cur) > b.cfg.ByteBudget && cur.NumCells() > 1; i++ {
			next, err := cur.Compress(b.cfg.Theta)
			if err != nil {
				return nil, err
			}
			cur = next
		}
		return cur, nil
	}
	if b.cfg.Level == 0 {
		return s.Clone(), nil
	}
	return s.CompressTo(b.cfg.Level, b.cfg.Theta)
}

// evictOldestLocked removes the oldest live entry (FIFO). All frozen
// entries predate all delta entries, so the candidate is the first
// non-tombstoned frozen id, falling back to the delta head once the
// frozen generation is exhausted.
func (b *Base) evictOldestLocked() {
	for b.frozenEvict < len(b.frozen.order) {
		id := b.frozen.order[b.frozenEvict]
		b.frozenEvict++
		if _, gone := b.dead[id]; gone {
			continue
		}
		e := b.frozen.entries[id]
		b.dead[id] = struct{}{}
		b.count--
		b.bytes -= e.Bytes
		return
	}
	if len(b.delta) > 0 {
		e := b.delta[0]
		b.delta = b.delta[1:]
		b.count--
		b.bytes -= e.Bytes
	}
}

// Get returns the archived entry with the given id, or nil. It reads
// through the (cached) snapshot so its visibility always matches what
// searches see.
func (b *Base) Get(id int64) *Entry {
	return b.Snapshot().Get(id)
}

// Remove deletes an archived cluster. It returns true if it existed.
func (b *Base) Remove(id int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, gone := b.dead[id]; gone {
		return false
	}
	if e, ok := b.frozen.entries[id]; ok {
		b.dead[id] = struct{}{}
		b.count--
		b.bytes -= e.Bytes
		b.snap = nil
		// A failed fold here would only delay compaction, never lose the
		// removal (the tombstone is already recorded).
		_ = b.maybeRebuildLocked()
		return true
	}
	for i, e := range b.delta {
		if e.ID == id {
			b.delta = append(b.delta[:i], b.delta[i+1:]...)
			b.count--
			b.bytes -= e.Bytes
			b.snap = nil
			return true
		}
	}
	return false
}

// rebuildLimitLocked is the pending-mutation threshold beyond which the
// writer folds delta + tombstones into a fresh frozen generation. Scaling
// with the live population amortizes the O(n) fold to O(1) index work per
// mutation; the cap bounds the linear delta scan every query pays. The
// scan checks one MBR or feature vector per delta entry — microseconds
// even at the cap, noise next to the refine phase — so the threshold
// leans generous to keep the append path cheap (a capacity-bounded base
// generates two pending mutations per Put: the append and the eviction
// tombstone).
func (b *Base) rebuildLimitLocked() int {
	limit := 64 + b.count/2
	if limit > 4096 {
		limit = 4096
	}
	return limit
}

func (b *Base) maybeRebuildLocked() error {
	if len(b.delta)+len(b.dead) <= b.rebuildLimitLocked() {
		return nil
	}
	return b.rebuildLocked()
}

// rebuildLocked publishes a fresh generation holding every live entry in
// FIFO order. The old generation is never mutated — snapshots pinned to
// it stay valid and simply age.
func (b *Base) rebuildLocked() error {
	g := newGeneration(b.cfg.Dim)
	g.order = make([]int64, 0, b.count)
	add := func(e *Entry) error {
		if err := g.loc.Insert(e.ID, e.MBR); err != nil {
			return err
		}
		g.feat.Insert(e.ID, e.Features.Vector())
		g.entries[e.ID] = e
		g.order = append(g.order, e.ID)
		return nil
	}
	for _, id := range b.frozen.order {
		if _, gone := b.dead[id]; gone {
			continue
		}
		if err := add(b.frozen.entries[id]); err != nil {
			return err
		}
	}
	for _, e := range b.delta {
		if err := add(e); err != nil {
			return err
		}
	}
	b.frozen = g
	b.frozenEvict = 0
	b.delta = nil
	b.dead = make(map[int64]struct{})
	b.snap = nil
	return nil
}

// SearchLocation visits archived entries whose MBR intersects the query
// box (the position-sensitive filter phase). The callback runs against a
// snapshot — never under the base lock — so it may freely call Put,
// Remove, or further searches; mutations it makes are not reflected in
// the iteration in progress.
func (b *Base) SearchLocation(q geom.MBR, visit func(*Entry) bool) {
	b.Snapshot().SearchLocation(q, visit)
}

// SearchFeatures visits archived entries whose feature vector lies inside
// [lo, hi] (the non-position-sensitive filter phase). The callback runs
// against a snapshot; see SearchLocation for the reentrancy contract.
func (b *Base) SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool) {
	b.Snapshot().SearchFeatures(lo, hi, visit)
}

// All visits every archived entry in FIFO order (diagnostics,
// persistence, linear-scan baselines). The callback runs against a
// snapshot; see SearchLocation for the reentrancy contract.
func (b *Base) All(visit func(*Entry) bool) {
	b.Snapshot().All(visit)
}
