package archive

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sync"

	"streamsum/internal/featidx"
	"streamsum/internal/geom"
	"streamsum/internal/rtree"
	"streamsum/internal/segstore"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

// Config controls archiving policy.
type Config struct {
	// Dim is the data-space dimensionality (required).
	Dim int
	// Level is the resolution level to archive at (0 = basic SGS).
	Level int
	// Theta is the compression rate between resolution levels (>= 2;
	// ignored when Level == 0 and ByteBudget == 0).
	Theta int
	// ByteBudget, when positive, overrides Level: each summary is stored
	// at the finest level whose encoding fits the budget (§6.1).
	ByteBudget int
	// SampleRate archives only this fraction of offered clusters
	// (selective archiving by sampling, §6.2). 0 or 1 keeps everything.
	SampleRate float64
	// MinPopulation drops clusters with fewer member objects (selective
	// archiving by feature, §6.2). 0 keeps everything.
	MinPopulation int
	// MinCells drops clusters whose SGS has fewer cells. 0 keeps all.
	MinCells int
	// Capacity bounds the number of archived clusters; once full, the
	// oldest archived cluster is evicted (0 = unlimited). With a disk
	// tier attached (StorePath), eviction demotes to disk instead of
	// deleting, so Capacity bounds the memory tier's entry count while
	// the archived history keeps growing on disk.
	Capacity int
	// Seed makes sampling reproducible.
	Seed int64

	// StorePath, when non-empty, attaches a disk tier (internal/segstore)
	// rooted at this directory: entries demoted from the memory tier are
	// flushed as immutable on-disk segments and remain fully matchable.
	// Reopening a base over an existing store resumes with the on-disk
	// history visible and id assignment continuing past it.
	StorePath string
	// MaxMemBytes bounds the memory tier's encoded summary bytes; when a
	// Put would exceed it, the oldest entries are demoted to the disk
	// tier (requires StorePath). 0 means no byte bound.
	MaxMemBytes int
	// StoreSegmentBytes overrides the disk tier's compaction target
	// segment size (0 = segstore default). Mostly for tests and
	// benchmarks that need a specific segment layout.
	StoreSegmentBytes int
	// SummaryCacheBytes bounds the decoded-summary cache
	// (internal/sumcache): disk-resident summaries decoded by
	// Entry.LoadSummary stay resident — charged at their encoded size,
	// the same unit as MaxMemBytes — until evicted LRU, so repeated
	// queries decode each summary once per residency instead of once per
	// query. Requires StorePath. With MaxMemBytes set the cache's budget
	// is carved out of it (memory tier demotes down to MaxMemBytes -
	// SummaryCacheBytes, so tier + cache together stay under the one
	// bound) and must therefore be smaller than MaxMemBytes. 0 — or
	// SGS_SUMCACHE=off in the environment — disables the cache; every
	// load then decodes from disk.
	SummaryCacheBytes int
	// Logger receives background diagnostics (demotion flush failures,
	// correlated with their flight-recorder trace ids). Nil discards
	// them.
	Logger *slog.Logger
}

// Entry is one archived cluster. Entries are immutable once archived:
// they are shared by reference between the base and every snapshot, and
// no field is ever modified after Put returns.
//
// For memory-tier entries Summary is always non-nil. Entries surfaced
// from the disk tier by the filter-phase searches carry only the
// footer-indexed features (ID, MBR, Features, Bytes) and a nil Summary;
// call LoadSummary to read the cells from disk. Get and All-visited
// entries follow the same contract, so code that never configures a
// StorePath never observes a nil Summary.
type Entry struct {
	ID       int64
	Summary  *sgs.Summary
	MBR      geom.MBR
	Features sgs.Features
	// Bytes is the summary's encoded size, maintained so the archive can
	// report its exact storage footprint (Fig. 8's memory metric).
	Bytes int

	// load reads a disk-resident summary (nil for memory-tier entries);
	// the bool reports whether the decoded-summary cache served it.
	load func() (*sgs.Summary, bool, error)
}

// LoadSummary returns the entry's summary, reading it from the disk tier
// when the entry is disk-resident. With a decoded-summary cache
// configured (Config.SummaryCacheBytes) the read consults the residency
// layer first — concurrent loads of one record singleflight into one
// decode, and repeated loads hit until eviction. Without one, repeated
// calls repeat the read, keeping resident memory bounded by what callers
// actually hold. Either way the returned summary is shared and immutable:
// callers must never mutate it (the same contract memory-tier summaries
// already carry).
func (e *Entry) LoadSummary() (*sgs.Summary, error) {
	sum, _, err := e.LoadSummaryTracked()
	return sum, err
}

// LoadSummaryTracked is LoadSummary plus residency attribution: it
// additionally reports whether the summary came from the decoded-summary
// cache (true) rather than a disk decode or the memory tier (false).
// Per-query tracing uses it to split refine-phase reads into cache hits
// and disk loads.
func (e *Entry) LoadSummaryTracked() (*sgs.Summary, bool, error) {
	if e.Summary != nil {
		return e.Summary, false, nil
	}
	if e.load == nil {
		return nil, false, fmt.Errorf("archive: entry %d has no summary source", e.ID)
	}
	return e.load()
}

// WithSummary returns a copy of the entry with the given summary
// materialized (the original stays summary-free so shared disk-tier
// entries never grow resident state).
func (e *Entry) WithSummary(sum *sgs.Summary) *Entry {
	if e.Summary == sum {
		return e
	}
	c := *e
	c.Summary = sum
	return &c
}

// generation is the frozen, fully indexed portion of the base. A
// generation is immutable once published: its indices are only ever
// traversed after publication, never mutated, so any number of snapshot
// readers may search them concurrently without synchronization (the
// read-only traversal contract documented in internal/rtree and
// internal/featidx).
type generation struct {
	entries map[int64]*Entry
	order   []int64 // FIFO
	loc     *rtree.Tree
	feat    *featidx.Index
}

func newGeneration(dim int) *generation {
	return &generation{
		entries: make(map[int64]*Entry),
		loc:     rtree.New(dim),
		feat:    featidx.New(),
	}
}

// Base is the pattern base. It is safe for concurrent use: any number of
// extractor shards append (Put/PutBatch/Remove) while analysts run
// matching queries against read-only snapshots.
//
// Internally the base is generational: a frozen, index-backed generation
// absorbs the bulk of the archive, recent mutations accumulate in a small
// unindexed delta (appends) plus a tombstone set (removals), and the
// writer folds both into a fresh generation once they outgrow an
// amortized threshold. Queries never traverse live indices — they pin a
// Snapshot, so a mutation never blocks on a reader and a reader never
// observes a half-applied write.
type Base struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	logger *slog.Logger
	nextID int64

	frozen      *generation
	frozenEvict int                // frozen.order index of the next FIFO eviction/demotion candidate
	delta       []*Entry           // archived since the last rebuild, FIFO, unindexed
	dead        map[int64]struct{} // frozen ids removed (or demoted to disk) since the last rebuild
	count       int                // live entries across both tiers
	bytes       int                // live encoded bytes across both tiers
	memCount    int                // live entries in the memory tier (excluding in-flight demotions)
	memBytes    int                // live encoded bytes in the memory tier (excluding in-flight demotions)
	memBudget   int                // memory-tier byte bound: MaxMemBytes minus the cache's share (0 = unbounded)
	store       *segstore.Store    // disk tier; nil when StorePath is unset
	cache       *sumcache.Cache    // decoded-summary residency layer; nil when disabled
	snap        *Snapshot          // cached read view; nil after any mutation

	// Background demoter state (store-backed bases only). Batches queue
	// in demotePending; the demoter goroutine writes and fsyncs each
	// batch's segment entirely outside b.mu, so PutBatch and snapshot
	// readers never stall behind the payload I/O. Entries of a pending
	// batch stay snapshot-visible through the batch until its segment
	// commits.
	demotePending []*demoteBatch
	demoteCond    *sync.Cond // signaled on queue and demoter state changes; guarded by mu
	demoteStop    bool       // Close requested: drain and exit
	demoteExited  bool       // the demoter goroutine has returned
	demoteErr     error      // first background demotion failure (fail-stop: latched, surfaced by Put)
}

// New returns an empty pattern base.
func New(cfg Config) (*Base, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("archive: dimension required")
	}
	if cfg.Level < 0 {
		return nil, fmt.Errorf("archive: negative level")
	}
	if (cfg.Level > 0 || cfg.ByteBudget > 0) && cfg.Theta < 2 {
		return nil, fmt.Errorf("archive: compression requires theta >= 2, got %d", cfg.Theta)
	}
	if cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("archive: sample rate %g out of [0,1]", cfg.SampleRate)
	}
	if cfg.MaxMemBytes > 0 && cfg.StorePath == "" {
		return nil, fmt.Errorf("archive: MaxMemBytes requires StorePath")
	}
	if cfg.SummaryCacheBytes > 0 && cfg.StorePath == "" {
		return nil, fmt.Errorf("archive: SummaryCacheBytes requires StorePath (memory-tier entries are already decoded)")
	}
	if cfg.MaxMemBytes > 0 && cfg.SummaryCacheBytes >= cfg.MaxMemBytes {
		return nil, fmt.Errorf("archive: SummaryCacheBytes %d must be below MaxMemBytes %d (tier and cache share that bound)",
			cfg.SummaryCacheBytes, cfg.MaxMemBytes)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	b := &Base{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		logger: logger,
		frozen: newGeneration(cfg.Dim),
		dead:   make(map[int64]struct{}),
	}
	if cfg.StorePath != "" {
		// The cache share is carved out of MaxMemBytes up front (not
		// tracked live) so the sum of memory-tier bytes and cache
		// residency is bounded at all times, not just at demotion points.
		// With the cache disabled (env/off or zero budget) the memory
		// tier gets the whole bound back.
		b.cache = sumcache.New(cfg.SummaryCacheBytes)
		if cfg.MaxMemBytes > 0 {
			b.memBudget = cfg.MaxMemBytes - b.cache.Budget()
		}
		sopts := segstore.Options{
			Dim:                cfg.Dim,
			TargetSegmentBytes: cfg.StoreSegmentBytes,
		}
		if b.cache != nil {
			// Compaction rewrites records into fresh segments; the retired
			// sources' cached decodes are stale keys that would otherwise
			// hold bytes (and pin mappings) until LRU pressure found them.
			cache := b.cache
			sopts.OnRetire = func(seg *segstore.Segment) { cache.InvalidateOwner(seg) }
		}
		st, err := segstore.Open(cfg.StorePath, sopts)
		if err != nil {
			return nil, err
		}
		b.store = st
		b.nextID = st.MaxID() + 1
		v := st.View()
		b.count = v.Len()
		b.bytes = v.Bytes()
		b.demoteCond = sync.NewCond(&b.mu)
		go b.demoteLoop()
	}
	return b, nil
}

// Close stops the background demoter (after it drains any queued
// demotion batches) and releases the disk tier (stops its compactor and
// closes segment files); the memory tier needs no teardown. Snapshots
// taken earlier must not be used afterwards. Close is a no-op for
// memory-only bases.
func (b *Base) Close() error {
	b.mu.Lock()
	if b.store == nil {
		b.mu.Unlock()
		return nil
	}
	b.demoteStop = true
	b.demoteCond.Broadcast()
	for !b.demoteExited {
		b.demoteCond.Wait()
	}
	b.snap = nil
	store := b.store
	b.mu.Unlock()
	return store.Close()
}

// Config returns the archiving policy.
func (b *Base) Config() Config { return b.cfg }

// Len returns the number of archived clusters.
func (b *Base) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Bytes returns the total encoded size of all archived summaries.
func (b *Base) Bytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// validatePut checks a summary before it is offered to the selection
// policy. It reads only the immutable config, so callers may invoke it
// with or without the base lock held.
func (b *Base) validatePut(s *sgs.Summary) error {
	if s == nil || s.NumCells() == 0 {
		return fmt.Errorf("archive: empty summary")
	}
	if s.Dim != b.cfg.Dim {
		return fmt.Errorf("archive: summary dimension %d != base dimension %d", s.Dim, b.cfg.Dim)
	}
	return nil
}

// Put offers one extracted cluster summary to the archiver. It returns the
// archive id and true if the cluster was archived, or false if the
// selection policy skipped it. The summary is cloned/compressed; the
// caller's copy is never retained.
func (b *Base) Put(s *sgs.Summary) (int64, bool, error) {
	if err := b.validatePut(s); err != nil {
		return 0, false, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.putLocked(s)
}

// PutBatch offers a window's worth of summaries with semantics identical
// to calling Put for each in order (same policy decisions, same ids, same
// evictions), but under a single base lock acquisition — the intended
// append path for sharded ingestion, where N engines feed one base and
// per-cluster locking would multiply contention. It returns the per-
// summary archive ids and archived flags. On error the prefix already
// archived stays archived (exactly as a sequential Put loop would leave
// it) and the returned slices cover that prefix.
func (b *Base) PutBatch(ss []*sgs.Summary) (ids []int64, archived []bool, err error) {
	ids = make([]int64, 0, len(ss))
	archived = make([]bool, 0, len(ss))
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range ss {
		if err := b.validatePut(s); err != nil {
			return ids, archived, err
		}
		id, ok, err := b.putLocked(s)
		if err != nil {
			return ids, archived, err
		}
		ids = append(ids, id)
		archived = append(archived, ok)
	}
	return ids, archived, nil
}

func (b *Base) putLocked(s *sgs.Summary) (int64, bool, error) {
	// A failed background demotion means the base can no longer honor its
	// memory bound; like a failed Appender it latches and fail-stops
	// rather than silently growing past the cap.
	if b.demoteErr != nil {
		return 0, false, b.demoteErr
	}
	// Selective archiving (§6.2).
	if b.cfg.MinPopulation > 0 && s.TotalPopulation() < b.cfg.MinPopulation {
		return 0, false, nil
	}
	if b.cfg.MinCells > 0 && s.NumCells() < b.cfg.MinCells {
		return 0, false, nil
	}
	if b.cfg.SampleRate > 0 && b.cfg.SampleRate < 1 && b.rng.Float64() >= b.cfg.SampleRate {
		return 0, false, nil
	}

	// Resolution selection (§6.1).
	stored, err := b.selectResolution(s)
	if err != nil {
		return 0, false, err
	}

	id := b.nextID
	b.nextID++
	stored.ID = id
	e := &Entry{
		ID:       id,
		Summary:  stored,
		MBR:      stored.MBR(),
		Features: stored.Features(),
		Bytes:    sgs.EncodedSize(stored),
	}
	if e.MBR.IsEmpty() {
		return 0, false, fmt.Errorf("archive: summary has empty MBR")
	}
	// Fold before committing the entry: a fold error then reports a
	// genuinely un-archived summary (the error path is unreachable for
	// entries that passed the validation above, but the contract — Put
	// fails means not archived — must not depend on that).
	if err := b.maybeRebuildLocked(); err != nil {
		return 0, false, err
	}
	// Hand overflow to the demoter before committing the entry: the
	// batch leaves the memory-tier accounting here, the flush itself
	// happens in the background (a flush failure surfaces on a LATER
	// Put via the latched error — see demoteLoop — not this one).
	if err := b.demoteLocked(e.Bytes); err != nil {
		return 0, false, err
	}
	b.delta = append(b.delta, e)
	b.count++
	b.bytes += e.Bytes
	b.memCount++
	b.memBytes += e.Bytes
	b.snap = nil

	if b.store == nil && b.cfg.Capacity > 0 {
		for b.count > b.cfg.Capacity {
			b.evictOldestLocked()
		}
	}
	return id, true, nil
}

// demoteLocked hands the oldest memory-tier entries to the background
// demoter when admitting an entry of incoming bytes would push the
// memory tier past its byte budget (MaxMemBytes minus the decoded-
// summary cache's share) or Capacity. It demotes down to 7/8 of the
// violated bound (hysteresis: one segment absorbs many Puts). The
// batch's entries leave the memory-tier accounting immediately but stay
// snapshot-visible until their segment commits, so queries never observe
// a gap; the segment write and fsync happen on the demoter goroutine,
// outside the base lock.
func (b *Base) demoteLocked(incoming int) error {
	if b.store == nil {
		return nil
	}
	overBytes := b.memBudget > 0 && b.memBytes+incoming > b.memBudget
	overCount := b.cfg.Capacity > 0 && b.memCount+1 > b.cfg.Capacity
	if !overBytes && !overCount {
		return nil
	}
	byteGoal, countGoal := -1, -1
	if b.memBudget > 0 {
		// Clamp at 0: an incoming entry near (or beyond) the whole budget
		// must demote everything resident, not disable the bound — a
		// negative goal would read as the "unbounded" sentinel below.
		byteGoal = max(b.memBudget-b.memBudget/8-incoming, 0)
	}
	if b.cfg.Capacity > 0 {
		countGoal = max(b.cfg.Capacity-b.cfg.Capacity/8-1, 0)
	}
	batch := b.collectDemotionLocked(byteGoal, countGoal)
	if batch == nil {
		return nil
	}
	// Enqueue before applying backpressure so queue order always equals
	// collection (entry age) order — segments must stay FIFO.
	b.demotePending = append(b.demotePending, batch)
	b.demoteCond.Broadcast()
	// Backpressure: with the disk persistently slower than ingest, the
	// pending queue would otherwise grow without bound — beyond a few
	// batches the writer waits for the demoter, reintroducing the stall
	// only under sustained overload.
	for len(b.demotePending) > maxPendingDemotions && b.demoteErr == nil {
		b.demoteCond.Wait()
	}
	return b.demoteErr
}

// collectDemotionLocked selects the oldest memory-tier entries until the
// tier is within the goals (a negative goal means unbounded; goals of 0
// take everything), removes them from the memory-tier accounting, and
// returns them as one FIFO demotion batch — ready to flush as a segment,
// preserving the tier invariant that every disk entry predates every
// memory entry. It returns nil when nothing needs to move.
func (b *Base) collectDemotionLocked(byteGoal, countGoal int) *demoteBatch {
	batch := &demoteBatch{frozenEvictBefore: b.frozenEvict}
	cur := b.frozenEvict
	deltaTaken := 0
	over := func() bool {
		if byteGoal >= 0 && b.memBytes-batch.bytes > byteGoal {
			return true
		}
		if countGoal >= 0 && b.memCount-batch.count > countGoal {
			return true
		}
		return false
	}
	for over() && batch.count < b.memCount {
		var e *Entry
		for cur < len(b.frozen.order) {
			id := b.frozen.order[cur]
			cur++
			if _, gone := b.dead[id]; gone {
				continue
			}
			e = b.frozen.entries[id]
			batch.frozenIDs = append(batch.frozenIDs, id)
			break
		}
		if e == nil {
			if deltaTaken >= len(b.delta) {
				break
			}
			e = b.delta[deltaTaken]
			deltaTaken++
		}
		// Only the selection happens here; serializing the summaries
		// (flushEntries) is deferred to the flusher, off this lock —
		// entries are immutable, so the encoding needs no protection.
		batch.entries = append(batch.entries, e)
		batch.count++
		batch.bytes += e.Bytes
	}
	if batch.count == 0 {
		return nil
	}
	batch.deltaEnts = b.delta[:deltaTaken]
	for _, id := range batch.frozenIDs {
		b.dead[id] = struct{}{}
	}
	b.frozenEvict = cur
	b.delta = b.delta[deltaTaken:]
	b.memCount -= batch.count
	b.memBytes -= batch.bytes
	b.snap = nil
	// Totals are unchanged: the entries are moving tiers, not dying. The
	// tombstones above are memory-tier bookkeeping only.
	return batch
}

// FlushMem demotes the entire memory tier to the disk tier (one final
// segment), making the store alone a complete record of the archived
// history — the shutdown path for store-backed daemons. It first drains
// any in-flight background demotions, then flushes synchronously. It
// requires a disk tier.
func (b *Base) FlushMem() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.store == nil {
		return fmt.Errorf("archive: FlushMem requires a disk tier (StorePath)")
	}
	for len(b.demotePending) > 0 {
		b.demoteCond.Wait()
	}
	if b.demoteErr != nil {
		return b.demoteErr
	}
	batch := b.collectDemotionLocked(0, 0)
	if batch == nil {
		return nil
	}
	if err := b.store.Flush(batch.flushEntries()); err != nil {
		b.restoreDemotionsLocked([]*demoteBatch{batch}, nil)
		return err
	}
	return b.maybeRebuildLocked()
}

// selectResolution applies §6.1: fixed level, or finest level fitting the
// byte budget.
func (b *Base) selectResolution(s *sgs.Summary) (*sgs.Summary, error) {
	if b.cfg.ByteBudget > 0 {
		cur := s.Clone()
		// Compress until the encoding fits; a single-cell summary is the
		// coarsest possible representation, so the loop always terminates.
		for i := 0; i < 64 && sgs.EncodedSize(cur) > b.cfg.ByteBudget && cur.NumCells() > 1; i++ {
			next, err := cur.Compress(b.cfg.Theta)
			if err != nil {
				return nil, err
			}
			cur = next
		}
		return cur, nil
	}
	if b.cfg.Level == 0 {
		return s.Clone(), nil
	}
	return s.CompressTo(b.cfg.Level, b.cfg.Theta)
}

// evictOldestLocked removes the oldest live entry (FIFO) — the
// memory-only capacity policy; store-backed bases demote instead. All
// frozen entries predate all delta entries, so the candidate is the
// first non-tombstoned frozen id, falling back to the delta head once
// the frozen generation is exhausted.
func (b *Base) evictOldestLocked() {
	for b.frozenEvict < len(b.frozen.order) {
		id := b.frozen.order[b.frozenEvict]
		b.frozenEvict++
		if _, gone := b.dead[id]; gone {
			continue
		}
		e := b.frozen.entries[id]
		b.dead[id] = struct{}{}
		b.count--
		b.bytes -= e.Bytes
		b.memCount--
		b.memBytes -= e.Bytes
		return
	}
	if len(b.delta) > 0 {
		e := b.delta[0]
		b.delta = b.delta[1:]
		b.count--
		b.bytes -= e.Bytes
		b.memCount--
		b.memBytes -= e.Bytes
	}
}

// Get returns the archived entry with the given id, or nil. It reads
// through the (cached) snapshot so its visibility always matches what
// searches see.
func (b *Base) Get(id int64) *Entry {
	return b.Snapshot().Get(id)
}

// Remove deletes an archived cluster from whichever tier holds it. It
// returns true if it existed. Disk-tier removals persist a tombstone in
// the store manifest; the bytes are reclaimed by a later compaction. An
// id that is part of an in-flight demotion batch is removed after that
// batch resolves (Remove briefly waits for the demoter).
func (b *Base) Remove(id int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.pendingDemotionHasLocked(id) {
		b.demoteCond.Wait()
	}
	if _, gone := b.dead[id]; gone {
		// Dead in the memory tier means removed or demoted; a demoted id
		// lives on in the store and can still be removed from there.
		return b.removeFromStoreLocked(id)
	}
	if e, ok := b.frozen.entries[id]; ok {
		b.dead[id] = struct{}{}
		b.count--
		b.bytes -= e.Bytes
		b.memCount--
		b.memBytes -= e.Bytes
		b.snap = nil
		// A failed fold here would only delay compaction, never lose the
		// removal (the tombstone is already recorded).
		_ = b.maybeRebuildLocked()
		return true
	}
	for i, e := range b.delta {
		if e.ID == id {
			b.delta = append(b.delta[:i], b.delta[i+1:]...)
			b.count--
			b.bytes -= e.Bytes
			b.memCount--
			b.memBytes -= e.Bytes
			b.snap = nil
			return true
		}
	}
	return b.removeFromStoreLocked(id)
}

func (b *Base) removeFromStoreLocked(id int64) bool {
	if b.store == nil {
		return false
	}
	rec, ok := b.store.Find(id)
	if !ok {
		return false
	}
	ok, err := b.store.Tombstone(id)
	if err != nil || !ok {
		return false
	}
	// A removed record is never legitimately loaded again; drop its
	// cached decode now rather than letting it occupy budget until LRU
	// pressure finds it.
	b.cache.InvalidateID(id)
	b.count--
	b.bytes -= int(rec.Len)
	b.snap = nil
	return true
}

// rebuildLimitLocked is the pending-mutation threshold beyond which the
// writer folds delta + tombstones into a fresh frozen generation. Scaling
// with the live population amortizes the O(n) fold to O(1) index work per
// mutation; the cap bounds the linear delta scan every query pays. The
// scan checks one MBR or feature vector per delta entry — microseconds
// even at the cap, noise next to the refine phase — so the threshold
// leans generous to keep the append path cheap (a capacity-bounded base
// generates two pending mutations per Put: the append and the eviction
// tombstone).
func (b *Base) rebuildLimitLocked() int {
	limit := 64 + b.memCount/2
	if limit > 4096 {
		limit = 4096
	}
	return limit
}

func (b *Base) maybeRebuildLocked() error {
	// Never fold while demotion batches are in flight: the failure path
	// restores frozen-origin entries by un-tombstoning their ids, which
	// requires the frozen generation to still be the one they were
	// collected from. The demoter retries the fold once the queue drains.
	if len(b.demotePending) > 0 {
		return nil
	}
	if len(b.delta)+len(b.dead) <= b.rebuildLimitLocked() {
		return nil
	}
	return b.rebuildLocked()
}

// rebuildLocked publishes a fresh generation holding every live entry in
// FIFO order. The old generation is never mutated — snapshots pinned to
// it stay valid and simply age.
func (b *Base) rebuildLocked() error {
	g := newGeneration(b.cfg.Dim)
	g.order = make([]int64, 0, b.memCount)
	add := func(e *Entry) error {
		if err := g.loc.Insert(e.ID, e.MBR); err != nil {
			return err
		}
		g.feat.Insert(e.ID, e.Features.Vector())
		g.entries[e.ID] = e
		g.order = append(g.order, e.ID)
		return nil
	}
	for _, id := range b.frozen.order {
		if _, gone := b.dead[id]; gone {
			continue
		}
		if err := add(b.frozen.entries[id]); err != nil {
			return err
		}
	}
	for _, e := range b.delta {
		if err := add(e); err != nil {
			return err
		}
	}
	b.frozen = g
	b.frozenEvict = 0
	b.delta = nil
	b.dead = make(map[int64]struct{})
	b.snap = nil
	return nil
}

// SearchLocation visits archived entries whose MBR intersects the query
// box (the position-sensitive filter phase). The callback runs against a
// snapshot — never under the base lock — so it may freely call Put,
// Remove, or further searches; mutations it makes are not reflected in
// the iteration in progress.
func (b *Base) SearchLocation(q geom.MBR, visit func(*Entry) bool) {
	b.Snapshot().SearchLocation(q, visit)
}

// SearchFeatures visits archived entries whose feature vector lies inside
// [lo, hi] (the non-position-sensitive filter phase). The callback runs
// against a snapshot; see SearchLocation for the reentrancy contract.
func (b *Base) SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool) {
	b.Snapshot().SearchFeatures(lo, hi, visit)
}

// All visits every archived entry in FIFO order (diagnostics,
// persistence, linear-scan baselines). The callback runs against a
// snapshot; see SearchLocation for the reentrancy contract.
func (b *Base) All(visit func(*Entry) bool) {
	b.Snapshot().All(visit)
}

// Searcher is one filter-phase shard of the pattern base: something the
// matcher can probe for location or feature candidates. A Snapshot's
// FilterShards splits the base into one memory-tier shard plus one per
// disk segment, each independently searchable, so the filter phase can
// fan out across them in parallel.
type Searcher interface {
	SearchLocation(q geom.MBR, visit func(*Entry) bool)
	SearchFeatures(lo, hi [4]float64, visit func(*Entry) bool)
}

// GatedSearcher is a Searcher that can additionally run a cheap exact
// gate over the candidate's feature vector between the range test and
// the visit, and report how many live entries passed the range test
// regardless of the gate (the filter-phase candidate count). Pushing the
// gate below the visit lets disk shards reject candidates straight off
// their columnar scan without materializing an Entry per rejection; the
// matcher type-asserts for this and falls back to plain Search* plus an
// outer gate otherwise. A nil gate admits everything. Iteration stops
// early if visit returns false (the returned count is then partial).
type GatedSearcher interface {
	Searcher
	GatedSearchLocation(q geom.MBR, gate func([4]float64) bool, visit func(*Entry) bool) int
	GatedSearchFeatures(lo, hi [4]float64, gate func([4]float64) bool, visit func(*Entry) bool) int
}

// TierStats reports the split of the archived population across the
// memory and disk tiers (monitoring endpoints, bounded-memory tests).
type TierStats struct {
	// Memory tier.
	MemEntries int
	MemBytes   int
	// In-flight demotions: entries handed to the background demoter
	// whose segment has not yet committed. They have left the memory
	// tier's accounting but are still resident (and snapshot-visible);
	// a batch that commits moves them into the Seg* totals. While a
	// batch is between its commit and its dequeue these counts briefly
	// overlap Seg* — treat them as monitoring-grade.
	DemotingEntries int
	DemotingBytes   int
	DemotingBatches int // queued demotion batches (demoter queue depth)
	// Disk tier (all zero for memory-only bases).
	Segments    int
	SegEntries  int // live records
	SegBytes    int // live encoded bytes
	SegDead     int // tombstoned records awaiting compaction
	Compactions uint64
	// Segment set composition: on-disk format versions and how many
	// segments serve reads from a memory mapping (vs the pread fallback).
	SegmentsV1     int
	SegmentsV2     int
	SegmentsV3     int
	SegmentsMapped int
	// Decoded-summary cache (internal/sumcache); all zero when the cache
	// is disabled. CacheBytes is the resident encoded-size charge and,
	// with MaxMemBytes set, shares that bound with MemBytes (the memory
	// tier demotes down to MaxMemBytes - CacheBudget).
	CacheHits    uint64
	CacheMisses  uint64
	CacheEvicted uint64
	CacheEntries int
	CacheBytes   int
	CacheBudget  int
}

// TierStats returns the current tier split.
func (b *Base) TierStats() TierStats {
	b.mu.Lock()
	ts := TierStats{MemEntries: b.memCount, MemBytes: b.memBytes}
	for _, batch := range b.demotePending {
		ts.DemotingEntries += batch.count
		ts.DemotingBytes += batch.bytes
	}
	ts.DemotingBatches = len(b.demotePending)
	store, cache := b.store, b.cache
	b.mu.Unlock()
	if store != nil {
		s := store.Stats()
		ts.Segments = s.Segments
		ts.SegEntries = s.LiveRecords
		ts.SegBytes = s.LiveBytes
		ts.SegDead = s.Records - s.LiveRecords
		ts.Compactions = s.Compactions
		ts.SegmentsV1 = s.SegmentsV1
		ts.SegmentsV2 = s.SegmentsV2
		ts.SegmentsV3 = s.SegmentsV3
		ts.SegmentsMapped = s.SegmentsMapped
	}
	if cache != nil {
		cs := cache.Stats()
		ts.CacheHits = cs.Hits
		ts.CacheMisses = cs.Misses
		ts.CacheEvicted = cs.Evicted
		ts.CacheEntries = cs.Entries
		ts.CacheBytes = int(cs.Bytes)
		ts.CacheBudget = cache.Budget()
	}
	return ts
}
