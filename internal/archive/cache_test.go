package archive

import (
	"bytes"
	"testing"

	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

// TestCacheConfigValidation: the cache requires a disk tier (memory-tier
// summaries are already decoded) and its budget is carved out of
// MaxMemBytes, so it must leave room for the tier itself.
func TestCacheConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 2, SummaryCacheBytes: 1 << 10}); err == nil {
		t.Fatal("SummaryCacheBytes without StorePath accepted")
	}
	if _, err := New(Config{
		Dim: 2, StorePath: t.TempDir(), MaxMemBytes: 4 << 10, SummaryCacheBytes: 4 << 10,
	}); err == nil {
		t.Fatal("SummaryCacheBytes == MaxMemBytes accepted")
	}
	b, err := New(Config{
		Dim: 2, StorePath: t.TempDir(), MaxMemBytes: 8 << 10, SummaryCacheBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = b.Close()
}

// TestCacheSharesMemBudget is the budget half of the residency contract:
// during demotion-heavy ingest with interleaved disk reads, the memory
// tier plus the decoded-summary cache never exceed MaxMemBytes — the
// cache's share is carved out of the bound, not added on top.
func TestCacheSharesMemBudget(t *testing.T) {
	const maxMem = 8 << 10
	const cacheBudget = 4 << 10
	sums := fixtureSummaries(t, 48, 96)
	b, err := New(Config{
		Dim: 2, StorePath: t.TempDir(),
		MaxMemBytes: maxMem, SummaryCacheBytes: cacheBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatalf("put %d: ok=%v err=%v", i, ok, err)
		}
		if i%6 != 5 {
			continue
		}
		// Settle in-flight demotions, then fault the whole disk tier into
		// the cache — the worst case for the shared bound.
		if err := b.DrainDemotions(); err != nil {
			t.Fatal(err)
		}
		snap := b.Snapshot()
		snap.All(func(e *Entry) bool {
			if _, err := e.LoadSummary(); err != nil {
				t.Fatalf("load %d: %v", e.ID, err)
			}
			return true
		})
		ts := b.TierStats()
		if ts.MemBytes+ts.CacheBytes > maxMem {
			t.Fatalf("after put %d: mem %d + cache %d exceeds MaxMemBytes %d",
				i, ts.MemBytes, ts.CacheBytes, maxMem)
		}
	}
	ts := b.TierStats()
	if ts.SegEntries == 0 {
		t.Fatalf("ingest never demoted: %+v", ts)
	}
	if sumcache.Enabled() {
		if ts.CacheBudget != cacheBudget {
			t.Fatalf("cache budget %d want %d", ts.CacheBudget, cacheBudget)
		}
		if ts.CacheMisses == 0 {
			t.Fatalf("disk loads never reached the cache: %+v", ts)
		}
	}
}

// TestCacheInvalidatedOnRemove: removing a disk-resident entry uncharges
// its cached decode — the summary must not stay resident (or billed)
// after the record is tombstoned.
func TestCacheInvalidatedOnRemove(t *testing.T) {
	if !sumcache.Enabled() {
		t.Skip("SGS_SUMCACHE=off")
	}
	sums := fixtureSummaries(t, 40, 97)
	// The cache stripes its budget across shards, so each shard's share
	// must fit whole summaries (a few hundred bytes each) for decodes to
	// be retained at all.
	b, err := New(Config{
		Dim: 2, StorePath: t.TempDir(),
		MaxMemBytes: 16 << 10, SummaryCacheBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatalf("put: ok=%v err=%v", ok, err)
		}
	}
	if err := b.DrainDemotions(); err != nil {
		t.Fatal(err)
	}
	if ts := b.TierStats(); ts.SegEntries == 0 {
		t.Fatal("setup: nothing on disk")
	}
	// id 0 is the oldest entry, demoted to disk; Get materializes it
	// through the cache.
	if e := b.Get(0); e == nil || e.Summary == nil {
		t.Fatal("setup: disk entry unreadable")
	}
	before := b.TierStats()
	if before.CacheEntries == 0 || before.CacheBytes == 0 {
		t.Fatalf("setup: nothing cached: %+v", before)
	}
	if !b.Remove(0) {
		t.Fatal("remove failed")
	}
	after := b.TierStats()
	if after.CacheEntries != before.CacheEntries-1 || after.CacheBytes >= before.CacheBytes {
		t.Fatalf("remove left the decode resident: before %+v after %+v", before, after)
	}
}

// TestCacheInvalidatedOnCompaction: compaction retires segments, and the
// cache keys decodes by segment — every entry decoded from a retired
// segment must be dropped (OnRetire), including the live ones, and
// reloads through the rewritten segment must be byte-identical.
func TestCacheInvalidatedOnCompaction(t *testing.T) {
	if !sumcache.Enabled() {
		t.Skip("SGS_SUMCACHE=off")
	}
	sums := fixtureSummaries(t, 40, 98)
	// A one-byte compaction target keeps every segment "full", so the
	// background compactor never merges them behind the test's back; the
	// only compaction that can fire is the tombstone-driven rewrite the
	// test provokes below.
	b, err := New(Config{
		Dim: 2, StorePath: t.TempDir(), StoreSegmentBytes: 1,
		MaxMemBytes: 16 << 10, SummaryCacheBytes: 12 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatalf("put: ok=%v err=%v", ok, err)
		}
	}
	if err := b.DrainDemotions(); err != nil {
		t.Fatal(err)
	}
	if ts := b.TierStats(); ts.Segments < 2 {
		t.Fatalf("setup: want multiple segments, got %d", ts.Segments)
	}
	// Fault the disk tier into the cache and keep reference copies.
	blobs := map[int64][]byte{}
	snap := b.Snapshot()
	snap.All(func(e *Entry) bool {
		sum, err := e.LoadSummary()
		if err != nil {
			t.Fatalf("load %d: %v", e.ID, err)
		}
		blobs[e.ID] = sgs.Marshal(sum)
		return true
	})
	loaded := b.TierStats()
	if loaded.CacheEntries == 0 || loaded.CacheEvicted != 0 {
		t.Fatalf("setup: want everything cached without eviction: %+v", loaded)
	}

	// Make the first segment tombstone-heavy (> half its bytes dead):
	// Remove invalidates each removed id as it goes, and the rewrite then
	// retires the segment, which must drop its surviving live decodes too.
	seg0 := b.store.View().Segments()[0]
	recs := seg0.Records()
	total, dead := 0, 0
	removed := 0
	for _, r := range recs {
		total += int(r.Len)
	}
	for _, r := range recs {
		if dead*2 > total {
			break
		}
		if !b.Remove(r.ID) {
			t.Fatalf("remove %d failed", r.ID)
		}
		dead += int(r.Len)
		removed++
	}
	if removed == len(recs) {
		t.Fatal("setup: removed the whole segment, nothing left to retire live")
	}
	if err := b.store.CompactNow(); err != nil {
		t.Fatal(err)
	}
	ts := b.TierStats()
	if ts.Compactions == 0 {
		t.Fatalf("tombstone-heavy segment was not rewritten: %+v", ts)
	}
	// The retired segment's live entries were resident before the rewrite
	// and must be gone after: exactly removed + survivors fewer decodes.
	wantEntries := loaded.CacheEntries - len(recs)
	if ts.CacheEntries != wantEntries {
		t.Fatalf("cache holds %d entries after retirement, want %d (%+v)",
			ts.CacheEntries, wantEntries, ts)
	}
	// Reloads decode from the rewritten segment, byte-identical.
	snap = b.Snapshot()
	seen := 0
	snap.All(func(e *Entry) bool {
		sum, err := e.LoadSummary()
		if err != nil {
			t.Fatalf("reload %d: %v", e.ID, err)
		}
		if !bytes.Equal(blobs[e.ID], sgs.Marshal(sum)) {
			t.Fatalf("entry %d differs after compaction", e.ID)
		}
		seen++
		return true
	})
	if seen != len(blobs)-removed {
		t.Fatalf("reload visited %d entries, want %d", seen, len(blobs)-removed)
	}
}
