package archive

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"streamsum/internal/sgs"
)

func TestAppenderRoundTrip(t *testing.T) {
	sums := fixtureSummaries(t, 12, 21)
	var log bytes.Buffer
	ap, err := NewAppender(&log)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Flush(); err != nil {
		t.Fatal(err)
	}
	if ap.Count() != 12 {
		t.Fatalf("Count = %d", ap.Count())
	}
	b, _ := New(Config{Dim: 2})
	n, torn, err := b.LoadAppended(bytes.NewReader(log.Bytes()))
	if err != nil || torn {
		t.Fatalf("n=%d torn=%v err=%v", n, torn, err)
	}
	if n != 12 || b.Len() != 12 {
		t.Fatalf("recovered %d, base has %d", n, b.Len())
	}
}

func TestAppenderTornTailRecovery(t *testing.T) {
	sums := fixtureSummaries(t, 6, 22)
	var log bytes.Buffer
	ap, err := NewAppender(&log)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Flush(); err != nil {
		t.Fatal(err)
	}
	full := log.Bytes()
	// Simulate a crash mid-write: truncate inside the last record.
	for _, cut := range []int{1, 2, 5, 20} {
		if cut >= len(full) {
			continue
		}
		torn := full[:len(full)-cut]
		b, _ := New(Config{Dim: 2})
		n, wasTorn, err := b.LoadAppended(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !wasTorn {
			t.Fatalf("cut %d: torn tail not detected", cut)
		}
		if n != 5 || b.Len() != 5 {
			t.Fatalf("cut %d: recovered %d records, want 5", cut, n)
		}
	}
}

func TestAppenderSelectionOnReplay(t *testing.T) {
	sums := fixtureSummaries(t, 10, 23)
	var log bytes.Buffer
	ap, _ := NewAppender(&log)
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	_ = ap.Flush()
	// Replay under a stricter policy: a population floor above some of the
	// fixtures filters them out.
	minPop := 0
	for _, s := range sums {
		if p := s.TotalPopulation(); p > minPop {
			minPop = p
		}
	}
	b, _ := New(Config{Dim: 2, MinPopulation: minPop}) // only the max survives
	n, torn, err := b.LoadAppended(bytes.NewReader(log.Bytes()))
	if err != nil || torn {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replayed %d records", n)
	}
	if b.Len() >= 10 || b.Len() < 1 {
		t.Fatalf("policy kept %d", b.Len())
	}
}

func TestLoadAppendedErrors(t *testing.T) {
	b, _ := New(Config{Dim: 2})
	// An empty file and a strict prefix of the magic are torn headers (a
	// crash can hit before the first flush), not corrupt files.
	if n, torn, err := b.LoadAppended(bytes.NewReader(nil)); err != nil || !torn || n != 0 {
		t.Errorf("empty log: n=%d torn=%v err=%v, want torn header", n, torn, err)
	}
	if n, torn, err := b.LoadAppended(bytes.NewReader([]byte("SGSL"))); err != nil || !torn || n != 0 {
		t.Errorf("partial magic: n=%d torn=%v err=%v, want torn header", n, torn, err)
	}
	// Bytes that disagree with the magic are a different file, not a torn
	// one — whether truncated or complete.
	if _, _, err := b.LoadAppended(bytes.NewReader([]byte("NOTALOG1"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := b.LoadAppended(bytes.NewReader([]byte("XGS"))); err == nil {
		t.Error("truncated bad magic accepted")
	}
	// Non-empty base refuses.
	sums := fixtureSummaries(t, 1, 24)
	if _, ok, _ := b.Put(sums[0]); !ok {
		t.Fatal("setup put failed")
	}
	var log bytes.Buffer
	ap, _ := NewAppender(&log)
	_ = ap.Flush()
	if _, _, err := b.LoadAppended(bytes.NewReader(log.Bytes())); err == nil {
		t.Error("non-empty base accepted")
	}
}

// failingWriter accepts limit bytes, then fails every write with errBoom
// (partial writes included, like a disk running full mid-buffer-flush).
type failingWriter struct {
	buf   bytes.Buffer
	limit int
	fails int
}

var errBoom = fmt.Errorf("boom: no space left")

func (w *failingWriter) Write(p []byte) (int, error) {
	room := w.limit - w.buf.Len()
	if room >= len(p) {
		return w.buf.Write(p)
	}
	if room > 0 {
		w.buf.Write(p[:room])
	} else {
		room = 0
	}
	w.fails++
	return room, errBoom
}

// TestAppenderFailStop covers the mis-framing hazard: after the first
// write error the appender must refuse every further Append/Flush with
// the latched error, so no record can land misaligned after a torn one —
// and whatever did reach the log must recover cleanly.
func TestAppenderFailStop(t *testing.T) {
	sums := fixtureSummaries(t, 12, 25)
	// Fail once the underlying writer has eaten ~1.5 records' worth past
	// the header, forcing the error to surface mid-stream.
	rec := len(sgsMarshalLen(sums[0]))
	fw := &failingWriter{limit: len(logMagic) + rec + rec/2}
	ap, err := NewAppender(fw)
	if err != nil {
		t.Fatal(err)
	}
	var first error
	appended := 0
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			first = err
			break
		}
		appended++
		if err := ap.Flush(); err != nil { // surface buffered write errors now
			first = err
			break
		}
	}
	if first == nil {
		t.Fatal("failing writer never surfaced an error")
	}
	if ap.Err() == nil {
		t.Fatal("error not latched")
	}
	// Every subsequent operation returns the latched error and writes
	// nothing more.
	size := fw.buf.Len()
	if err := ap.Append(sums[0]); err != first {
		t.Fatalf("Append after failure: %v, want latched %v", err, first)
	}
	if err := ap.Flush(); err != first {
		t.Fatalf("Flush after failure: %v, want latched %v", err, first)
	}
	if fw.buf.Len() != size {
		t.Fatal("appender kept writing after the latched error")
	}
	if ap.Count() != appended {
		t.Fatalf("Count = %d, want %d successful appends", ap.Count(), appended)
	}
	// The surviving log is a clean prefix: recovered without error, with
	// at most a torn tail.
	b, _ := New(Config{Dim: 2})
	n, _, err := b.LoadAppended(bytes.NewReader(fw.buf.Bytes()))
	if err != nil {
		t.Fatalf("recovery of fail-stop log errored: %v", err)
	}
	if n > appended {
		t.Fatalf("recovered %d records from %d successful appends", n, appended)
	}
}

// sgsMarshalLen returns one encoded record (length prefix + blob), used
// to size the failing writer.
func sgsMarshalLen(s *sgs.Summary) []byte {
	blob := sgs.Marshal(s)
	out := make([]byte, 4+len(blob))
	binary.LittleEndian.PutUint32(out, uint32(len(blob)))
	copy(out[4:], blob)
	return out
}

// TestLoadAppendedTruncationSweep truncates a valid log at every byte
// offset: recovery must always succeed (no error), return exactly the
// complete-record prefix, flag torn if and only if the cut fell inside a
// record or the header, and never materialize a corrupt entry.
func TestLoadAppendedTruncationSweep(t *testing.T) {
	sums := fixtureSummaries(t, 6, 26)
	var log bytes.Buffer
	ap, err := NewAppender(&log)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Flush(); err != nil {
		t.Fatal(err)
	}
	full := log.Bytes()

	// Record boundaries: header end, then each record end.
	bounds := map[int]int{len(logMagic): 0} // offset -> records complete there
	off := len(logMagic)
	for i, s := range sums {
		off += len(sgsMarshalLen(s))
		bounds[off] = i + 1
	}
	if off != len(full) {
		t.Fatalf("boundary math: %d != log size %d", off, len(full))
	}

	wantAt := func(cut int) (recs int, torn bool) {
		best := 0
		for b, n := range bounds {
			if b <= cut && n > best {
				best = n
			}
		}
		_, clean := bounds[cut]
		return best, !clean && cut != len(full)
	}

	for cut := 0; cut <= len(full); cut++ {
		b, _ := New(Config{Dim: 2})
		n, torn, err := b.LoadAppended(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		wantN, wantTorn := wantAt(cut)
		if n != wantN || torn != wantTorn {
			t.Fatalf("cut %d: n=%d torn=%v, want n=%d torn=%v", cut, n, torn, wantN, wantTorn)
		}
		if b.Len() != n {
			t.Fatalf("cut %d: base holds %d, recovered %d", cut, b.Len(), n)
		}
		// Recovered entries are the intact prefix, uncorrupted.
		i := 0
		b.All(func(e *Entry) bool {
			if e.Summary.NumCells() != sums[i].NumCells() ||
				e.Summary.TotalPopulation() != sums[i].TotalPopulation() {
				t.Fatalf("cut %d: record %d corrupt after recovery", cut, i)
			}
			i++
			return true
		})
	}
}
