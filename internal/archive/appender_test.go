package archive

import (
	"bytes"
	"testing"
)

func TestAppenderRoundTrip(t *testing.T) {
	sums := fixtureSummaries(t, 12, 21)
	var log bytes.Buffer
	ap, err := NewAppender(&log)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Flush(); err != nil {
		t.Fatal(err)
	}
	if ap.Count() != 12 {
		t.Fatalf("Count = %d", ap.Count())
	}
	b, _ := New(Config{Dim: 2})
	n, torn, err := b.LoadAppended(bytes.NewReader(log.Bytes()))
	if err != nil || torn {
		t.Fatalf("n=%d torn=%v err=%v", n, torn, err)
	}
	if n != 12 || b.Len() != 12 {
		t.Fatalf("recovered %d, base has %d", n, b.Len())
	}
}

func TestAppenderTornTailRecovery(t *testing.T) {
	sums := fixtureSummaries(t, 6, 22)
	var log bytes.Buffer
	ap, err := NewAppender(&log)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Flush(); err != nil {
		t.Fatal(err)
	}
	full := log.Bytes()
	// Simulate a crash mid-write: truncate inside the last record.
	for _, cut := range []int{1, 2, 5, 20} {
		if cut >= len(full) {
			continue
		}
		torn := full[:len(full)-cut]
		b, _ := New(Config{Dim: 2})
		n, wasTorn, err := b.LoadAppended(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !wasTorn {
			t.Fatalf("cut %d: torn tail not detected", cut)
		}
		if n != 5 || b.Len() != 5 {
			t.Fatalf("cut %d: recovered %d records, want 5", cut, n)
		}
	}
}

func TestAppenderSelectionOnReplay(t *testing.T) {
	sums := fixtureSummaries(t, 10, 23)
	var log bytes.Buffer
	ap, _ := NewAppender(&log)
	for _, s := range sums {
		if err := ap.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	_ = ap.Flush()
	// Replay under a stricter policy: a population floor above some of the
	// fixtures filters them out.
	minPop := 0
	for _, s := range sums {
		if p := s.TotalPopulation(); p > minPop {
			minPop = p
		}
	}
	b, _ := New(Config{Dim: 2, MinPopulation: minPop}) // only the max survives
	n, torn, err := b.LoadAppended(bytes.NewReader(log.Bytes()))
	if err != nil || torn {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replayed %d records", n)
	}
	if b.Len() >= 10 || b.Len() < 1 {
		t.Fatalf("policy kept %d", b.Len())
	}
}

func TestLoadAppendedErrors(t *testing.T) {
	b, _ := New(Config{Dim: 2})
	if _, _, err := b.LoadAppended(bytes.NewReader(nil)); err == nil {
		t.Error("empty log accepted")
	}
	if _, _, err := b.LoadAppended(bytes.NewReader([]byte("NOTALOG1"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Non-empty base refuses.
	sums := fixtureSummaries(t, 1, 24)
	if _, ok, _ := b.Put(sums[0]); !ok {
		t.Fatal("setup put failed")
	}
	var log bytes.Buffer
	ap, _ := NewAppender(&log)
	_ = ap.Flush()
	if _, _, err := b.LoadAppended(bytes.NewReader(log.Bytes())); err == nil {
		t.Error("non-empty base accepted")
	}
}
