package archive

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"streamsum/internal/dbscan"
	"streamsum/internal/geom"
	"streamsum/internal/grid"
	"streamsum/internal/sgs"
)

// fixtureSummaries builds n valid summaries from random clustered data.
func fixtureSummaries(t *testing.T, n int, seed int64) []*sgs.Summary {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	thetaR := 0.5
	geo, err := grid.NewGeometry(2, thetaR)
	if err != nil {
		t.Fatal(err)
	}
	var out []*sgs.Summary
	for len(out) < n {
		cx, cy := rng.Float64()*50, rng.Float64()*50
		var pts []geom.Point
		for i := 0; i < 80+rng.Intn(80); i++ {
			pts = append(pts, geom.Point{cx + rng.NormFloat64()*0.8, cy + rng.NormFloat64()*0.8})
		}
		ids := make([]int64, len(pts))
		for i := range ids {
			ids[i] = int64(i)
		}
		res, err := dbscan.Run(pts, ids, dbscan.Params{ThetaR: thetaR, ThetaC: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, cl := range res.Clusters {
			var cpts []geom.Point
			var isCore []bool
			for _, id := range cl.Members {
				cpts = append(cpts, pts[id])
				isCore = append(isCore, res.IsCore[id])
			}
			s, err := sgs.FromCluster(geo, cpts, isCore, int64(len(out)), 0)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestPutGetRemove(t *testing.T) {
	b, err := New(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	sums := fixtureSummaries(t, 10, 1)
	var ids []int64
	for _, s := range sums {
		id, ok, err := b.Put(s)
		if err != nil || !ok {
			t.Fatalf("Put: ok=%v err=%v", ok, err)
		}
		ids = append(ids, id)
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
	e := b.Get(ids[3])
	if e == nil || e.Summary.NumCells() != sums[3].NumCells() {
		t.Fatalf("Get returned %+v", e)
	}
	if b.Get(999) != nil {
		t.Fatal("Get(999) should be nil")
	}
	before := b.Bytes()
	if !b.Remove(ids[3]) {
		t.Fatal("Remove failed")
	}
	if b.Remove(ids[3]) {
		t.Fatal("double Remove succeeded")
	}
	if b.Len() != 9 || b.Bytes() >= before {
		t.Fatalf("Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
}

func TestPutValidation(t *testing.T) {
	b, _ := New(Config{Dim: 2})
	if _, _, err := b.Put(nil); err == nil {
		t.Error("nil summary accepted")
	}
	if _, _, err := b.Put(&sgs.Summary{Dim: 2, Side: 1}); err == nil {
		t.Error("empty summary accepted")
	}
	wrong := fixtureSummaries(t, 1, 2)[0]
	b3, _ := New(Config{Dim: 3})
	if _, _, err := b3.Put(wrong); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing dim accepted")
	}
	if _, err := New(Config{Dim: 2, Level: 1}); err == nil {
		t.Error("level without theta accepted")
	}
	if _, err := New(Config{Dim: 2, SampleRate: 1.5}); err == nil {
		t.Error("bad sample rate accepted")
	}
	if _, err := New(Config{Dim: 2, Level: -1}); err == nil {
		t.Error("negative level accepted")
	}
}

func TestSelectiveArchiving(t *testing.T) {
	sums := fixtureSummaries(t, 30, 3)
	// Feature predicate: population threshold.
	minPop := 0
	for _, s := range sums {
		if p := s.TotalPopulation(); p > minPop {
			minPop = p
		}
	}
	b, _ := New(Config{Dim: 2, MinPopulation: minPop + 1})
	for _, s := range sums {
		if _, ok, _ := b.Put(s); ok {
			t.Fatal("population filter failed")
		}
	}
	// Sampling keeps roughly the configured fraction.
	b2, _ := New(Config{Dim: 2, SampleRate: 0.5, Seed: 42})
	kept := 0
	for i := 0; i < 10; i++ {
		for _, s := range sums {
			if _, ok, _ := b2.Put(s); ok {
				kept++
			}
		}
	}
	if kept < 100 || kept > 200 {
		t.Fatalf("sampling kept %d of 300", kept)
	}
	// MinCells filter.
	b3, _ := New(Config{Dim: 2, MinCells: 1 << 20})
	if _, ok, _ := b3.Put(sums[0]); ok {
		t.Fatal("cell filter failed")
	}
}

func TestCapacityEviction(t *testing.T) {
	b, _ := New(Config{Dim: 2, Capacity: 5})
	sums := fixtureSummaries(t, 12, 4)
	var ids []int64
	for _, s := range sums {
		id, ok, err := b.Put(s)
		if err != nil || !ok {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	for _, id := range ids[:7] {
		if b.Get(id) != nil {
			t.Fatalf("evicted id %d still present", id)
		}
	}
	for _, id := range ids[7:] {
		if b.Get(id) == nil {
			t.Fatalf("recent id %d missing", id)
		}
	}
}

func TestResolutionSelection(t *testing.T) {
	sums := fixtureSummaries(t, 5, 5)
	// Fixed level.
	b, _ := New(Config{Dim: 2, Level: 1, Theta: 3})
	id, ok, err := b.Put(sums[0])
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got := b.Get(id).Summary.Level; got != 1 {
		t.Fatalf("stored level = %d", got)
	}
	// Byte budget.
	budget := 200
	b2, _ := New(Config{Dim: 2, ByteBudget: budget, Theta: 2})
	for _, s := range sums {
		id, ok, err := b2.Put(s)
		if err != nil || !ok {
			t.Fatal(err)
		}
		e := b2.Get(id)
		if e.Bytes > budget && e.Summary.NumCells() > 1 {
			t.Fatalf("stored %d bytes over budget %d with %d cells", e.Bytes, budget, e.Summary.NumCells())
		}
	}
}

func TestSearchLocationAndFeatures(t *testing.T) {
	b, _ := New(Config{Dim: 2})
	sums := fixtureSummaries(t, 20, 6)
	type info struct {
		id int64
		e  *Entry
	}
	var infos []info
	for _, s := range sums {
		id, ok, err := b.Put(s)
		if err != nil || !ok {
			t.Fatal(err)
		}
		infos = append(infos, info{id, b.Get(id)})
	}
	// Location search: querying an entry's own MBR must return it.
	for _, in := range infos[:5] {
		found := false
		b.SearchLocation(in.e.MBR, func(e *Entry) bool {
			if e.ID == in.id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("entry %d not found by its own MBR", in.id)
		}
	}
	// Feature search: a tight box around an entry's own features finds it.
	for _, in := range infos[:5] {
		v := in.e.Features.Vector()
		var lo, hi [4]float64
		for d := 0; d < 4; d++ {
			lo[d], hi[d] = v[d]*0.99, v[d]*1.01+1e-9
		}
		found := false
		b.SearchFeatures(lo, hi, func(e *Entry) bool {
			if e.ID == in.id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("entry %d not found by its own features", in.id)
		}
	}
	// All() visits everything in order.
	count := 0
	prev := int64(-1)
	b.All(func(e *Entry) bool {
		if e.ID <= prev {
			t.Fatal("All order not FIFO by id")
		}
		prev = e.ID
		count++
		return true
	})
	if count != 20 {
		t.Fatalf("All visited %d", count)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b, _ := New(Config{Dim: 2})
	sums := fixtureSummaries(t, 15, 7)
	for _, s := range sums {
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b2, _ := New(Config{Dim: 2})
	if err := b2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if b2.Len() != b.Len() || b2.Bytes() != b.Bytes() {
		t.Fatalf("loaded %d/%dB, want %d/%dB", b2.Len(), b2.Bytes(), b.Len(), b.Bytes())
	}
	// Same summaries, same indices (spot check via features).
	b.All(func(e *Entry) bool {
		e2 := b2.Get(e.ID)
		if e2 == nil || e2.Summary.NumCells() != e.Summary.NumCells() {
			t.Fatalf("entry %d differs after reload", e.ID)
		}
		return true
	})
	// Load into non-empty base fails.
	if err := b2.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Load into non-empty base accepted")
	}
	// Corrupt file fails.
	b3, _ := New(Config{Dim: 2})
	if err := b3.Load(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated file accepted")
	}
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] = 'X'
	b4, _ := New(Config{Dim: 2})
	if err := b4.Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestLoadCorruptRecordLeavesBaseEmpty: a record that parses but cannot
// be indexed (invalid Side → empty MBR) must be rejected with the base
// left empty, so a retry Load succeeds.
func TestLoadCorruptRecordLeavesBaseEmpty(t *testing.T) {
	bad := &sgs.Summary{Dim: 2, Side: -1, Cells: make([]sgs.Cell, 1)}
	bad.Cells[0].Coord.D = 2
	blob := sgs.Marshal(bad)
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], 1)
	buf.Write(n8[:])
	binary.LittleEndian.PutUint64(n8[:], uint64(len(blob)))
	buf.Write(n8[:])
	buf.Write(blob)

	b, _ := New(Config{Dim: 2})
	if err := b.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("unindexable record accepted")
	}
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Fatalf("failed Load left Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
	// The base is still usable: a good file loads afterwards.
	good := fixtureSummaries(t, 2, 41)
	src, _ := New(Config{Dim: 2})
	for _, s := range good {
		if _, ok, err := src.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
	}
	var ok bytes.Buffer
	if err := src.Save(&ok); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(bytes.NewReader(ok.Bytes())); err != nil {
		t.Fatalf("retry Load failed: %v", err)
	}
	if b.Len() != 2 {
		t.Fatalf("retry loaded %d", b.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	b, _ := New(Config{Dim: 2})
	sums := fixtureSummaries(t, 40, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, s := range sums {
			_, _, _ = b.Put(s)
		}
	}()
	for i := 0; i < 100; i++ {
		b.All(func(e *Entry) bool { return true })
		b.SearchFeatures([4]float64{0, 0, 0, 0},
			[4]float64{1e9, 1e9, 1e9, 1e9}, func(e *Entry) bool { return true })
	}
	<-done
	if b.Len() != 40 {
		t.Fatalf("Len = %d", b.Len())
	}
}
