// Package archive implements the Pattern Archiver and Pattern Base of the
// framework (§3.3, §6, §7.1).
//
// The archiver decides which extracted clusters enter the pattern base
// (selective archiving: sampling and feature predicates, §6.2) and at
// which resolution they are stored (budget- and accuracy-aware resolution
// selection over the multi-resolution SGS hierarchy, §6.1). The pattern
// base organizes the archived summaries under two indices: an R-tree over
// cluster MBRs (locational feature index) and a 4-D grid over the
// non-locational features (volume, status count, average density, average
// connectivity), so matching queries can locate candidates without
// scanning the archive (§7.1).
//
// # Concurrency: snapshot isolation
//
// The base separates the archiver's append path from the analyzer's query
// path. Writers (Put, PutBatch, Remove) mutate only generational
// bookkeeping under a single mutex: appends go to a small unindexed
// delta, removals to a tombstone set, and both fold into a fresh
// immutable generation — entries, FIFO order, R-tree, feature grid —
// once they outgrow an amortized threshold. Readers call Snapshot, which
// pins the current generation plus a private copy of the delta and
// tombstones, and then search entirely without locks: a matching query
// in the refine phase never blocks a shard's Put, and a Put never
// invalidates an iteration in progress.
//
// Consequences callers rely on:
//
//   - Entry values are immutable after Put returns; they are shared by
//     reference across the base and all snapshots.
//   - SearchLocation, SearchFeatures and All run their callbacks against
//     a snapshot, never under the base lock, so a callback may call Put
//     or Remove (the running iteration does not see the mutation).
//   - PutBatch archives one window's clusters under one lock
//     acquisition; it is byte-for-byte equivalent to a sequential Put
//     loop (same policy decisions, ids and evictions).
//   - A Snapshot taken once observes a single archive state across any
//     number of searches — the property the matcher's filter-and-refine
//     pipeline needs to stay deterministic.
//
// # The disk tier
//
// With Config.StorePath set, the base becomes two-tiered: beneath the
// in-memory generation sits an internal/segstore directory of immutable
// on-disk segments. Memory pressure (MaxMemBytes) and capacity pressure
// (Capacity) demote the oldest entries — always the oldest, so every
// disk entry predates every memory entry and FIFO order spans the tiers
// — as one segment per demotion batch. Snapshots pin the segment set
// along with the generation, and FilterShards exposes the tiers as
// disjoint Searchers (the memory tier plus one per segment) so the
// matcher's filter phase can probe them in parallel. Disk-resident
// entries surface with their footer-indexed features only (nil Summary);
// the refine phase loads their cells lazily via Entry.LoadSummary, so a
// query's resident cost is its candidates, not the history.
//
// # The residency contract
//
// With Config.SummaryCacheBytes set, every Entry.LoadSummary of a
// disk-resident entry consults a shared decoded-summary cache
// (internal/sumcache), so a summary decodes once per residency rather
// than once per query. The rules every caller relies on:
//
//   - A *sgs.Summary returned by LoadSummary (or materialized on an
//     Entry by Snapshot.Get) may be retained for any length of time by
//     any caller, cached or not — summaries are immutable after decode
//     and shared by reference, the same contract memory-tier entries
//     have. Nobody may mutate one.
//   - The cache's byte budget is carved out of MaxMemBytes: the memory
//     tier is bounded by MaxMemBytes minus the cache budget, so tier
//     plus cache never exceed the configured bound. The budget is
//     denominated in encoded summary bytes, the same unit the tier
//     accounts in.
//   - Cached decodes are keyed by segment and pin it: a segment (and
//     its mmap mapping) retired by compaction stays open until its last
//     cached decode is invalidated, which happens synchronously at
//     retirement (segstore.Options.OnRetire) — so the pin's lifetime in
//     practice is the residency, not the cache's. Remove invalidates
//     the removed id's decode the same way.
//   - The cache changes when decodes happen, never what they yield:
//     match and subscription results are byte-identical with the cache
//     on, off (SGS_SUMCACHE=off or a zero budget), or pathologically
//     small. Disabling it only changes repeated-query latency.
//
// Demotion batches flush on a background demoter goroutine: the segment
// payload write and fsync (segstore.PrepareFlush) run entirely outside
// the base mutex, so Put/PutBatch and snapshot creation never stall
// behind demotion I/O. A batch's entries leave the memory-tier
// accounting at collection but remain snapshot-visible — via the pending
// queue until the segment commits, via the pinned store view after — so
// every entry is readable in exactly one place at all times. If a flush
// fails, the batch's entries are restored where they came from and the
// error latches (Put fail-stops rather than silently growing past the
// bound). Blocking callers exist only at the edges: DrainDemotions and
// FlushMem wait for the queue; Remove of an id mid-demotion waits for
// its batch; a writer outrunning the disk blocks once the queue hits its
// small bound (backpressure — and note the yielded lock means a
// concurrent writer's PutBatch may interleave at that boundary).
//
// # Persistence
//
// Save/Load write and rebuild the whole base (indices are derived data);
// Appender/LoadAppended stream per-window records to a crash-safe log
// whose damaged tail is detected and discarded on replay. The Appender
// is fail-stop: after any write error it latches the error and refuses
// further appends, so a torn record can never be followed by a
// "successful" one that mis-frames the log. The disk tier persists
// itself: segments and the manifest commit atomically (see
// internal/segstore), FlushMem demotes the memory tier as one final
// segment at shutdown, and reopening a base over the same StorePath
// resumes with the history visible and id assignment continuing past
// everything ever committed to the store.
package archive
