package archive

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"streamsum/internal/sgs"
)

// Persistence: the pattern base constitutes the queryable Stream History
// (§3.3), so it must survive process restarts. The on-disk format is a
// small header followed by length-prefixed sgs.Marshal blobs in archive
// (FIFO) order. Indices are rebuilt on load — they are derived data.

var fileMagic = [8]byte{'S', 'G', 'S', 'B', 'A', 'S', 'E', '1'}

// ErrBadFile is returned when loading a corrupt pattern-base file.
var ErrBadFile = errors.New("archive: bad pattern base file")

// Save writes all archived summaries to w. It serializes a snapshot, so
// concurrent Puts neither block on nor corrupt the dump.
func (b *Base) Save(w io.Writer) error {
	snap := b.Snapshot()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(snap.Len()))
	if _, err := bw.Write(n8[:]); err != nil {
		return err
	}
	var werr error
	snap.All(func(e *Entry) bool {
		// Disk-resident entries stream through one at a time; the dump
		// never holds more than one of their summaries in memory.
		sum, err := e.LoadSummary()
		if err != nil {
			werr = err
			return false
		}
		blob := sgs.Marshal(sum)
		binary.LittleEndian.PutUint64(n8[:], uint64(len(blob)))
		if _, werr = bw.Write(n8[:]); werr != nil {
			return false
		}
		if _, werr = bw.Write(blob); werr != nil {
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// Load reads summaries written by Save into an empty pattern base created
// with the same dimensionality. Selection policies are not re-applied: the
// file's contents were already selected when first archived. Archive ids
// are reassigned densely. The whole file is parsed and validated before
// any state is committed, so a corrupt file leaves the base empty.
func (b *Base) Load(r io.Reader) error {
	if b.Len() != 0 {
		return fmt.Errorf("archive: Load requires an empty base")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFile, err)
	}
	if magic != fileMagic {
		return fmt.Errorf("%w: bad magic", ErrBadFile)
	}
	var n8 [8]byte
	if _, err := io.ReadFull(br, n8[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFile, err)
	}
	count := binary.LittleEndian.Uint64(n8[:])
	entries := make([]*Entry, 0, count)
	bytes := 0
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, n8[:]); err != nil {
			return fmt.Errorf("%w: truncated at record %d", ErrBadFile, i)
		}
		size := binary.LittleEndian.Uint64(n8[:])
		if size > 1<<30 {
			return fmt.Errorf("%w: record %d size %d", ErrBadFile, i, size)
		}
		blob := make([]byte, size)
		if _, err := io.ReadFull(br, blob); err != nil {
			return fmt.Errorf("%w: truncated record %d", ErrBadFile, i)
		}
		s, err := sgs.Unmarshal(blob)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrBadFile, i, err)
		}
		if s.NumCells() == 0 {
			return fmt.Errorf("%w: record %d is empty", ErrBadFile, i)
		}
		if s.Dim != b.cfg.Dim {
			return fmt.Errorf("%w: record %d dimension %d != base dimension %d", ErrBadFile, i, s.Dim, b.cfg.Dim)
		}
		id := int64(len(entries))
		s.ID = id
		e := &Entry{ID: id, Summary: s, MBR: s.MBR(), Features: s.Features(), Bytes: len(blob)}
		if e.MBR.IsEmpty() {
			return fmt.Errorf("%w: record %d has an invalid MBR", ErrBadFile, i)
		}
		entries = append(entries, e)
		bytes += len(blob)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.count != 0 {
		return fmt.Errorf("archive: Load requires an empty base")
	}
	b.delta = entries
	b.count = len(entries)
	b.bytes = bytes
	b.memCount = len(entries)
	b.memBytes = bytes
	b.nextID = int64(len(entries))
	b.snap = nil
	if err := b.rebuildLocked(); err != nil {
		// Keep the "corrupt file leaves the base empty" guarantee.
		b.delta, b.count, b.bytes, b.nextID = nil, 0, 0, 0
		b.memCount, b.memBytes = 0, 0
		b.frozen = newGeneration(b.cfg.Dim)
		return err
	}
	// A store-backed base re-establishes its memory bound after the bulk
	// load (demotion is otherwise amortized across Puts).
	return b.demoteLocked(0)
}
