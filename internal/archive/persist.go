package archive

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"streamsum/internal/sgs"
)

// Persistence: the pattern base constitutes the queryable Stream History
// (§3.3), so it must survive process restarts. The on-disk format is a
// small header followed by length-prefixed sgs.Marshal blobs in archive
// (FIFO) order. Indices are rebuilt on load — they are derived data.

var fileMagic = [8]byte{'S', 'G', 'S', 'B', 'A', 'S', 'E', '1'}

// ErrBadFile is returned when loading a corrupt pattern-base file.
var ErrBadFile = errors.New("archive: bad pattern base file")

// Save writes all archived summaries to w.
func (b *Base) Save(w io.Writer) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(len(b.entries)))
	if _, err := bw.Write(n8[:]); err != nil {
		return err
	}
	for _, id := range b.order {
		blob := sgs.Marshal(b.entries[id].Summary)
		binary.LittleEndian.PutUint64(n8[:], uint64(len(blob)))
		if _, err := bw.Write(n8[:]); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads summaries written by Save into an empty pattern base created
// with the same dimensionality. Selection policies are not re-applied: the
// file's contents were already selected when first archived. Archive ids
// are reassigned densely.
func (b *Base) Load(r io.Reader) error {
	if b.Len() != 0 {
		return fmt.Errorf("archive: Load requires an empty base")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFile, err)
	}
	if magic != fileMagic {
		return fmt.Errorf("%w: bad magic", ErrBadFile)
	}
	var n8 [8]byte
	if _, err := io.ReadFull(br, n8[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFile, err)
	}
	count := binary.LittleEndian.Uint64(n8[:])
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, n8[:]); err != nil {
			return fmt.Errorf("%w: truncated at record %d", ErrBadFile, i)
		}
		size := binary.LittleEndian.Uint64(n8[:])
		if size > 1<<30 {
			return fmt.Errorf("%w: record %d size %d", ErrBadFile, i, size)
		}
		blob := make([]byte, size)
		if _, err := io.ReadFull(br, blob); err != nil {
			return fmt.Errorf("%w: truncated record %d", ErrBadFile, i)
		}
		s, err := sgs.Unmarshal(blob)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrBadFile, i, err)
		}
		b.mu.Lock()
		id := b.nextID
		b.nextID++
		s.ID = id
		e := &Entry{ID: id, Summary: s, MBR: s.MBR(), Features: s.Features(), Bytes: len(blob)}
		if err := b.loc.Insert(id, e.MBR); err != nil {
			b.mu.Unlock()
			return err
		}
		b.feat.Insert(id, e.Features.Vector())
		b.entries[id] = e
		b.order = append(b.order, id)
		b.bytes += e.Bytes
		b.mu.Unlock()
	}
	return nil
}
