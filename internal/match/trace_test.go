package match

import (
	"math/rand"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
)

// buildTieredBase archives n clusters into a store-backed base and
// flushes them all to disk, so queries exercise the disk shards.
func buildTieredBase(t *testing.T, n int, seed int64) (*archive.Base, []*sgs.Summary) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := archive.New(archive.Config{
		Dim:               2,
		StorePath:         t.TempDir(),
		SummaryCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	var sums []*sgs.Summary
	for i := 0; i < n; i++ {
		pts := blob(rng, 150+rng.Intn(150), rng.Float64()*100, rng.Float64()*100, 0.5+rng.Float64())
		s := summarize(t, pts, int64(i))
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
		sums = append(sums, s)
	}
	if err := b.FlushMem(); err != nil {
		t.Fatal(err)
	}
	return b, sums
}

// TestTraceFilled pins the Query.Trace contract: phase times are
// recorded, disk shards are attributed as probed or skipped, and every
// disk-resident refine load is attributed to the cache or the disk.
func TestTraceFilled(t *testing.T) {
	b, sums := buildTieredBase(t, 20, 11)
	snap := b.Snapshot()

	var tr Trace
	matches, st, err := Run(snap, Query{Target: sums[0], Threshold: 0.2, Trace: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches for the target's own archived copy")
	}
	if tr.FilterNS <= 0 || tr.RefineNS <= 0 || tr.OrderNS <= 0 {
		t.Fatalf("phase times not recorded: %+v", tr)
	}
	segs := len(snap.FilterShards()) - 1 // minus the memory shard
	if tr.SegmentsProbed+tr.SegmentsSkipped != segs {
		t.Fatalf("probed %d + skipped %d != %d disk shards",
			tr.SegmentsProbed, tr.SegmentsSkipped, segs)
	}
	if tr.SegmentsProbed == 0 {
		t.Fatal("query that found matches probed no segments")
	}
	// Every refine candidate is disk-resident here, so each one is
	// attributed to exactly one load source.
	if tr.CacheHits+tr.DiskLoads != st.Refined {
		t.Fatalf("cache hits %d + disk loads %d != refined %d",
			tr.CacheHits, tr.DiskLoads, st.Refined)
	}

	// A repeat of the same query against the same snapshot must hit the
	// decoded-summary cache for everything it loaded before (skipped when
	// the cache is globally disabled via SGS_SUMCACHE=off).
	if sumcache.Enabled() {
		var tr2 Trace
		if _, _, err := Run(snap, Query{Target: sums[0], Threshold: 0.2, Trace: &tr2}); err != nil {
			t.Fatal(err)
		}
		if tr2.CacheHits != st.Refined || tr2.DiskLoads != 0 {
			t.Fatalf("repeat query: cache hits %d, disk loads %d, want %d and 0",
				tr2.CacheHits, tr2.DiskLoads, st.Refined)
		}
	}
}

// TestTraceZoneSkip drives a query whose feature range cannot intersect
// a far-away segment's zone and checks the skip is attributed.
func TestTraceZoneSkip(t *testing.T) {
	b, _ := buildTieredBase(t, 6, 12)
	// A position-sensitive query overlapping nothing at a remote location:
	// every segment zone must reject it.
	rng := rand.New(rand.NewSource(99))
	far := summarize(t, blob(rng, 200, 5000, 5000, 0.8), 100)
	w := EqualWeights()
	w.PositionSensitive = true
	var tr Trace
	if _, _, err := Run(b.Snapshot(), Query{Target: far, Threshold: 0.3, Weights: &w, Trace: &tr}); err != nil {
		t.Fatal(err)
	}
	if tr.SegmentsSkipped == 0 {
		t.Fatalf("remote query skipped no segments: %+v", tr)
	}
	if tr.SegmentsProbed != 0 {
		t.Fatalf("remote query probed %d segments, want 0", tr.SegmentsProbed)
	}
}
