package match

import (
	"math/rand"
	"testing"

	"streamsum/internal/archive"
	"streamsum/internal/sgs"
	"streamsum/internal/sumcache"
	"streamsum/internal/trace"
)

// buildTieredBase archives n clusters into a store-backed base and
// flushes them all to disk, so queries exercise the disk shards.
func buildTieredBase(t *testing.T, n int, seed int64) (*archive.Base, []*sgs.Summary) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := archive.New(archive.Config{
		Dim:               2,
		StorePath:         t.TempDir(),
		SummaryCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	var sums []*sgs.Summary
	for i := 0; i < n; i++ {
		pts := blob(rng, 150+rng.Intn(150), rng.Float64()*100, rng.Float64()*100, 0.5+rng.Float64())
		s := summarize(t, pts, int64(i))
		if _, ok, err := b.Put(s); err != nil || !ok {
			t.Fatal(err)
		}
		sums = append(sums, s)
	}
	if err := b.FlushMem(); err != nil {
		t.Fatal(err)
	}
	return b, sums
}

// runTraced runs one query recording into a standalone trace and
// returns the finished span tree.
func runTraced(t *testing.T, src Source, q Query) (trace.TraceData, []Match, Stats) {
	t.Helper()
	tr := trace.New(trace.Match, "query", trace.ID{})
	q.Trace = tr
	matches, st, err := Run(src, q)
	if err != nil {
		t.Fatal(err)
	}
	td, ok := tr.Finish()
	if !ok {
		t.Fatal("trace did not export")
	}
	return td, matches, st
}

// attr fetches an integer span attribute, failing the test if absent.
func attr(t *testing.T, sd *trace.SpanData, key string) int64 {
	t.Helper()
	if sd == nil {
		t.Fatal("span missing")
	}
	v, ok := sd.Int(key)
	if !ok {
		t.Fatalf("span %q has no attr %q: %+v", sd.Name, key, sd.Attrs)
	}
	return v
}

// TestTraceFilled pins the Query.Trace contract: the query records
// filter/refine/order phase spans with positive wall times, one child
// span per filter shard carrying segment identity and zone admission,
// and refine-phase cache/disk attribution as span attributes.
func TestTraceFilled(t *testing.T) {
	b, sums := buildTieredBase(t, 20, 11)
	snap := b.Snapshot()

	td, matches, st := runTraced(t, snap, Query{Target: sums[0], Threshold: 0.2})
	if len(matches) == 0 {
		t.Fatal("no matches for the target's own archived copy")
	}
	filter, refine, order := td.Span("filter"), td.Span("refine"), td.Span("order")
	if filter == nil || refine == nil || order == nil {
		t.Fatalf("phase spans missing: %+v", td.Spans)
	}
	if filter.DurNS <= 0 || refine.DurNS <= 0 || order.DurNS <= 0 {
		t.Fatalf("phase times not recorded: %d %d %d", filter.DurNS, refine.DurNS, order.DurNS)
	}

	shards := snap.FilterShards()
	if got := attr(t, filter, "shards"); got != int64(len(shards)) {
		t.Fatalf("filter shards attr %d, want %d", got, len(shards))
	}
	kids := td.Children(filter.ID)
	if len(kids) != len(shards) {
		t.Fatalf("%d per-shard child spans, want %d", len(kids), len(shards))
	}
	segs := len(shards) - 1 // minus the memory shard
	probed, skipped := attr(t, filter, "segments_probed"), attr(t, filter, "segments_skipped")
	if probed+skipped != int64(segs) {
		t.Fatalf("probed %d + skipped %d != %d disk shards", probed, skipped, segs)
	}
	if probed == 0 {
		t.Fatal("query that found matches probed no segments")
	}
	// Per-shard spans: exactly one memory shard labeled "mem" without a
	// zone attribute; segment shards carry file label, format, and a
	// zone_skip flag consistent with the aggregate counts.
	mem, zoneSkips := 0, int64(0)
	for i := range kids {
		label, ok := kids[i].Str("segment")
		if !ok {
			t.Fatalf("shard span without segment label: %+v", kids[i].Attrs)
		}
		if label == "mem" {
			mem++
			if _, ok := kids[i].Bool("zone_skip"); ok {
				t.Error("memory shard carries a zone_skip attribute")
			}
			continue
		}
		if f, ok := kids[i].Int("format"); !ok || f <= 0 {
			t.Errorf("segment shard %q format attr = %d %v", label, f, ok)
		}
		if skip, ok := kids[i].Bool("zone_skip"); !ok {
			t.Errorf("segment shard %q without zone_skip", label)
		} else if skip {
			zoneSkips++
		}
	}
	if mem != 1 {
		t.Fatalf("%d memory shard spans, want 1", mem)
	}
	if zoneSkips != skipped {
		t.Fatalf("per-shard zone skips %d != aggregate %d", zoneSkips, skipped)
	}

	// Every refine candidate is disk-resident here, so each one is
	// attributed to exactly one load source.
	hits, loads := attr(t, refine, "cache_hits"), attr(t, refine, "disk_loads")
	if hits+loads != int64(st.Refined) {
		t.Fatalf("cache hits %d + disk loads %d != refined %d", hits, loads, st.Refined)
	}
	if got := attr(t, order, "matches"); got != int64(len(matches)) {
		t.Fatalf("order matches attr %d, want %d", got, len(matches))
	}

	// A repeat of the same query against the same snapshot must hit the
	// decoded-summary cache for everything it loaded before (skipped when
	// the cache is globally disabled via SGS_SUMCACHE=off).
	if sumcache.Enabled() {
		td2, _, _ := runTraced(t, snap, Query{Target: sums[0], Threshold: 0.2})
		r2 := td2.Span("refine")
		if h, l := attr(t, r2, "cache_hits"), attr(t, r2, "disk_loads"); h != int64(st.Refined) || l != 0 {
			t.Fatalf("repeat query: cache hits %d, disk loads %d, want %d and 0", h, l, st.Refined)
		}
	}
}

// TestTraceZoneSkip drives a query whose feature range cannot intersect
// a far-away segment's zone and checks the skip is attributed.
func TestTraceZoneSkip(t *testing.T) {
	b, _ := buildTieredBase(t, 6, 12)
	// A position-sensitive query overlapping nothing at a remote location:
	// every segment zone must reject it.
	rng := rand.New(rand.NewSource(99))
	far := summarize(t, blob(rng, 200, 5000, 5000, 0.8), 100)
	w := EqualWeights()
	w.PositionSensitive = true
	td, _, _ := runTraced(t, b.Snapshot(), Query{Target: far, Threshold: 0.3, Weights: &w})
	filter := td.Span("filter")
	if got := attr(t, filter, "segments_skipped"); got == 0 {
		t.Fatalf("remote query skipped no segments: %+v", filter.Attrs)
	}
	if got := attr(t, filter, "segments_probed"); got != 0 {
		t.Fatalf("remote query probed %d segments, want 0", got)
	}
}

// TestTraceDeterminism: recording a trace must not change the query's
// results or statistics.
func TestTraceDeterminism(t *testing.T) {
	b, sums := buildTieredBase(t, 12, 13)
	snap := b.Snapshot()
	plain, pst, err := Run(snap, Query{Target: sums[3], Threshold: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	_, traced, tst := runTraced(t, snap, Query{Target: sums[3], Threshold: 0.35})
	if pst != tst {
		t.Fatalf("stats differ: %+v vs %+v", pst, tst)
	}
	if len(plain) != len(traced) {
		t.Fatalf("match counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i].ID != traced[i].ID || plain[i].Distance != traced[i].Distance {
			t.Fatalf("match %d differs: %+v vs %+v", i, plain[i], traced[i])
		}
	}
}
