package match

import (
	"container/heap"
	"math"

	"streamsum/internal/grid"
	"streamsum/internal/sgs"
)

// This file implements the refine phase: the grid-cell-level cluster match
// of §7.2. Two summaries are compared cell by cell under an alignment — a
// location-shifting vector in cell units. A skeletal grid cell of the
// target either has a corresponding cell in the candidate (their features
// are compared) or it does not (maximum difference 1, "its corresponding
// sub-region ... can be viewed as an empty grid").

// zeroAlign is the identity alignment used by position-sensitive queries.
func zeroAlign(dim int) grid.Coord {
	var c grid.Coord
	c.D = uint8(dim)
	return c
}

// CellDistance returns the grid-cell-level distance between summaries a
// and b under the given alignment: the mean, over the union of (aligned)
// occupied cells, of the per-cell difference; per-cell differences average
// the status, density and connectivity features. The result is in [0,1].
func CellDistance(a, b *sgs.Summary, align grid.Coord) float64 {
	if a.NumCells() == 0 && b.NumCells() == 0 {
		return 0
	}
	if a.NumCells() == 0 || b.NumCells() == 0 {
		return 1
	}
	matched := 0
	var sum float64
	for i := range a.Cells {
		ca := &a.Cells[i]
		cb := b.Find(ca.Coord.Add(align))
		if cb == nil {
			sum += 1
			continue
		}
		matched++
		sum += cellDiff(ca, cb)
	}
	// Cells of b with no counterpart in a.
	sum += float64(b.NumCells() - matched)
	union := a.NumCells() + b.NumCells() - matched
	return sum / float64(union)
}

// cellDiff compares the three cell-level features with equal weight.
func cellDiff(a, b *sgs.Cell) float64 {
	var status float64
	if a.Status != b.Status {
		status = 1
	}
	density := relDist(float64(a.Population), float64(b.Population))
	conn := relDist(float64(len(a.Conns)), float64(len(b.Conns)))
	return (status + density + conn) / 3
}

// alignItem is a priority-queue entry for the anytime search.
type alignItem struct {
	align grid.Coord
	dist  float64
}

type alignHeap []alignItem

func (h alignHeap) Len() int            { return len(h) }
func (h alignHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h alignHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *alignHeap) Push(x interface{}) { *h = append(*h, x.(alignItem)) }
func (h *alignHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BestAlignment runs the A*-style anytime search of §7.2 for the alignment
// minimizing CellDistance(a, b, align): it starts from the alignment that
// overlaps the two summaries' MBR centers, then repeatedly expands the most
// promising alignment's 2·dim axis neighbors, stopping after budget
// distance evaluations. It returns the best distance found and its
// alignment. Exhaustive optimality is not guaranteed — by design: the
// paper trades optimality for bounded online latency.
func BestAlignment(a, b *sgs.Summary, budget int) (float64, grid.Coord) {
	dim := a.Dim
	start := centerAlign(a, b)
	if budget < 1 {
		budget = 1
	}
	visited := map[grid.Coord]bool{start: true}
	h := &alignHeap{{align: start, dist: CellDistance(a, b, start)}}
	heap.Init(h)
	evals := 1
	best := (*h)[0]
	for h.Len() > 0 && evals < budget {
		cur := heap.Pop(h).(alignItem)
		if cur.dist < best.dist {
			best = cur
		}
		// Expand axis neighbors (the "nearby" alignments of §7.2).
		for d := 0; d < dim && evals < budget; d++ {
			for _, delta := range [2]int32{-1, 1} {
				nb := cur.align
				nb.C[d] += delta
				if visited[nb] {
					continue
				}
				visited[nb] = true
				nd := CellDistance(a, b, nb)
				evals++
				if nd < best.dist {
					best = alignItem{align: nb, dist: nd}
				}
				heap.Push(h, alignItem{align: nb, dist: nd})
				if evals >= budget {
					break
				}
			}
		}
	}
	return best.dist, best.align
}

// centerAlign computes the starting alignment: the cell-unit offset that
// best overlaps the two summaries' MBR centers ("we start with an
// alignment that makes two clusters well overlapped").
func centerAlign(a, b *sgs.Summary) grid.Coord {
	ca := a.MBR().Center()
	cb := b.MBR().Center()
	var off grid.Coord
	off.D = uint8(a.Dim)
	for d := 0; d < a.Dim; d++ {
		off.C[d] = int32(math.Round((cb[d] - ca[d]) / a.Side))
	}
	return off
}
