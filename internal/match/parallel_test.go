package match

import (
	"reflect"
	"sync"
	"testing"
)

// TestRunDeterministicAcrossWorkers asserts the acceptance criterion:
// match.Run returns byte-identical results at Workers 1, 2 and 8, for
// both metric modes.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	b, sums := buildBase(t, 40, 11)
	ps := EqualWeights()
	ps.PositionSensitive = true
	queries := []Query{
		{Target: sums[0], Threshold: 0.4},
		{Target: sums[1], Threshold: 1, Limit: 5},
		{Target: sums[2], Threshold: 0.4, Weights: &ps},
		{Target: sums[3], Threshold: 1, Weights: &ps, Limit: 3},
	}
	for qi, q := range queries {
		q.Workers = 1
		ref, refStats, err := Run(b, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			q.Workers = workers
			got, gotStats, err := Run(b, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("query %d: workers %d diverged from sequential:\n%+v\nvs\n%+v",
					qi, workers, ref, got)
			}
			if refStats != gotStats {
				t.Fatalf("query %d: stats diverged at workers %d: %+v vs %+v",
					qi, workers, refStats, gotStats)
			}
		}
	}
}

// TestRunOnPinnedSnapshot verifies a query against a pinned snapshot is
// immune to concurrent archiving: results before and after further Puts
// are identical.
func TestRunOnPinnedSnapshot(t *testing.T) {
	b, sums := buildBase(t, 20, 12)
	snap := b.Snapshot()
	q := Query{Target: sums[0], Threshold: 1, Limit: 10}
	before, beforeStats, err := Run(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums[:10] {
		if _, _, err := b.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	after, afterStats, err := Run(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) || beforeStats != afterStats {
		t.Fatal("pinned snapshot observed concurrent Puts")
	}
	// The live base does see them.
	_, liveStats, err := Run(b, q)
	if err != nil {
		t.Fatal(err)
	}
	if liveStats.IndexCandidates <= beforeStats.IndexCandidates {
		t.Fatalf("live base candidates %d not above snapshot's %d",
			liveStats.IndexCandidates, beforeStats.IndexCandidates)
	}
}

// TestRunConcurrentWithPuts drives matching queries while writer
// goroutines batch-append to the same base — under -race this proves
// the matcher never shares mutable state with the append path, and its
// completion proves there is no reader/writer deadlock.
func TestRunConcurrentWithPuts(t *testing.T) {
	b, sums := buildBase(t, 24, 13)
	base := b
	const writers, rounds = 3, 30

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, _, err := base.PutBatch(sums[(w+r)%16 : (w+r)%16+8]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var rg sync.WaitGroup
	for m := 0; m < 2; m++ {
		rg.Add(1)
		go func(m int) {
			defer rg.Done()
			for i := m; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := Query{Target: sums[i%len(sums)], Threshold: 0.5, Limit: 5, Workers: 2}
				if _, _, err := Run(base, q); err != nil {
					t.Error(err)
					return
				}
			}
		}(m)
	}
	rg.Wait()
	if base.Len() <= 24 {
		t.Fatalf("Len = %d, concurrent PutBatches lost", base.Len())
	}
}
